// Tests for the workload builders: plan validity, cost-model sanity,
// and end-to-end runs of the use-case pipelines on the platform.
#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "core/session.hpp"
#include "dataflow/stage.hpp"
#include "workloads/genomics.hpp"
#include "workloads/ml.hpp"
#include "workloads/mobility.hpp"
#include "workloads/tabular.hpp"

namespace evolve::workloads {
namespace {

TEST(TabularPlans, AllCompile) {
  for (const auto& plan :
       {scan_filter_aggregate("a", "o1"), join_aggregate("a", "b", "o2"),
        sessionize("a", "o3"), featurize("a", "o4")}) {
    EXPECT_NO_THROW(plan.validate());
    EXPECT_NO_THROW(dataflow::PhysicalPlan::compile(plan));
  }
}

TEST(TabularPlans, StageShapes) {
  EXPECT_EQ(dataflow::PhysicalPlan::compile(scan_filter_aggregate("a", "o"))
                .size(),
            2);
  EXPECT_EQ(dataflow::PhysicalPlan::compile(join_aggregate("a", "b", "o"))
                .size(),
            4);  // 2 scans + join + reduce... join and reduce are stages
  EXPECT_EQ(dataflow::PhysicalPlan::compile(featurize("a", "o")).size(), 1);
}

TEST(TabularPlans, SessionizeGrowsThenShrinks) {
  const auto physical = dataflow::PhysicalPlan::compile(sessionize("a", "o"));
  ASSERT_EQ(physical.size(), 2);
  EXPECT_GT(physical.stage(0).output_ratio, 1.0);  // flatMap explodes
  EXPECT_LT(physical.stage(1).output_ratio, 1.0);  // summaries shrink
}

TEST(SgdProgram, ComputeShrinksWithWorkers) {
  SgdModel model;
  model.epoch_compute = util::seconds(8);
  const auto p1 = sgd_program(model, 1);
  const auto p8 = sgd_program(model, 8);
  EXPECT_EQ(p1.compute_per_iteration, util::seconds(8));
  EXPECT_EQ(p8.compute_per_iteration, util::seconds(1));
  EXPECT_EQ(p8.allreduce_bytes, model.parameters_bytes);
  EXPECT_THROW(sgd_program(model, 0), std::invalid_argument);
  EXPECT_THROW(sgd_program(model, 4, hpc::CollectiveAlgo::kRing, 0),
               std::invalid_argument);
}

TEST(MobilityPipeline, ShapeAndDependencies) {
  MobilityScenario scenario;
  const auto wf = mobility_pipeline(scenario);
  EXPECT_EQ(wf.size(), 4);
  EXPECT_EQ(wf.step("route-analytics").depends_on,
            std::vector<std::string>{"validate"});
  EXPECT_EQ(wf.step("pattern-clustering").kind, workflow::StepKind::kHpc);
  EXPECT_EQ(wf.leaves(), std::vector<std::string>{"serve"});
}

TEST(GenomicsPipeline, ShapeAndDependencies) {
  GenomicsScenario scenario;
  const auto wf = genomics_pipeline(scenario);
  EXPECT_EQ(wf.size(), 4);
  EXPECT_EQ(wf.step("pattern-match").kind, workflow::StepKind::kAccel);
  EXPECT_EQ(wf.step("pattern-match").kernel, "pattern-match");
  EXPECT_EQ(wf.step("assembly").input_datasets,
            std::vector<std::string>{"clean-reads"});
  EXPECT_EQ(wf.leaves(), std::vector<std::string>{"publish"});
}

TEST(GenomicsPipeline, RunsEndToEndOnPlatform) {
  sim::Simulation sim;
  core::PlatformConfig config;
  config.compute_nodes = 6;
  config.storage_nodes = 4;
  config.accel_nodes = 2;
  core::Platform platform(sim, config);
  GenomicsScenario scenario;
  scenario.reads_bytes = 512 * util::kMiB;
  scenario.read_partitions = 16;
  scenario.qc_executors = 2;
  scenario.assembly_ranks = 4;
  stage_genomics_inputs(platform.catalog(), scenario);
  workflow::WorkflowResult result;
  platform.run_workflow(genomics_pipeline(scenario),
                        [&](const workflow::WorkflowResult& r) {
                          result = r;
                        });
  sim.run();
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(platform.catalog().materialized("clean-reads"));
  // QC output ~= 0.95 * keep_fraction of the input.
  const auto clean = platform.catalog().spec("clean-reads").total_bytes;
  EXPECT_NEAR(static_cast<double>(clean),
              512.0 * util::kMiB * 0.95 * scenario.qc_keep_fraction,
              512.0 * util::kMiB * 0.02);
}

TEST(MobilityInputs, StagedDatasetsMaterialized) {
  sim::Simulation sim;
  core::Platform platform(sim);
  MobilityScenario scenario;
  stage_mobility_inputs(platform.catalog(), scenario);
  EXPECT_TRUE(platform.catalog().materialized("gps-traces"));
  EXPECT_TRUE(platform.catalog().materialized("route-metadata"));
  EXPECT_EQ(platform.catalog().spec("gps-traces").partitions,
            scenario.trace_partitions);
}

}  // namespace
}  // namespace evolve::workloads
