#include "workflow/engine.hpp"
#include "workflow/workflow.hpp"

#include <gtest/gtest.h>

#include <map>

#include "sim/simulation.hpp"

namespace evolve::workflow {
namespace {

// A scripted runner: each step takes a configured duration and succeeds
// or fails per a script (list of outcomes per attempt).
class FakeRunner : public StepRunner {
 public:
  explicit FakeRunner(sim::Simulation& sim) : sim_(sim) {}

  void set_duration(const std::string& step, util::TimeNs duration) {
    durations_[step] = duration;
  }
  void fail_attempts(const std::string& step, int failures) {
    failures_[step] = failures;
  }

  void run_step(const Step& step, std::function<void(bool)> on_done) override {
    started_.push_back(step.name);
    util::TimeNs duration = util::millis(10);
    if (auto it = durations_.find(step.name); it != durations_.end()) {
      duration = it->second;
    }
    const bool ok = failures_[step.name]-- <= 0;
    sim_.after(duration, [on_done, ok] { on_done(ok); });
  }

  const std::vector<std::string>& started() const { return started_; }

 private:
  sim::Simulation& sim_;
  std::map<std::string, util::TimeNs> durations_;
  std::map<std::string, int> failures_;
  std::vector<std::string> started_;
};

Step simple(const std::string& name,
            std::vector<std::string> deps = {}) {
  Step step = custom_step(name, [](std::function<void(bool)> cb) { cb(true); });
  step.kind = StepKind::kContainer;  // FakeRunner ignores the kind
  step.depends_on = std::move(deps);
  return step;
}

TEST(Workflow, BuildsAndValidates) {
  Workflow wf("test");
  wf.add(simple("a")).add(simple("b", {"a"}));
  EXPECT_EQ(wf.size(), 2);
  EXPECT_TRUE(wf.has_step("a"));
  EXPECT_EQ(wf.step("b").depends_on, std::vector<std::string>{"a"});
  EXPECT_THROW(wf.step("c"), std::out_of_range);
  EXPECT_THROW(wf.add(simple("a")), std::invalid_argument);      // dup
  EXPECT_THROW(wf.add(simple("c", {"zzz"})), std::invalid_argument);
  EXPECT_THROW(wf.add(simple("")), std::invalid_argument);
}

TEST(Workflow, LeavesAreUnconsumedSteps) {
  Workflow wf("test");
  wf.add(simple("a")).add(simple("b", {"a"})).add(simple("c", {"a"}));
  const auto leaves = wf.leaves();
  EXPECT_EQ(leaves, (std::vector<std::string>{"b", "c"}));
}

TEST(WorkflowEngine, RunsLinearChainInOrder) {
  sim::Simulation sim;
  FakeRunner runner(sim);
  WorkflowEngine engine(sim, runner);
  Workflow wf("chain");
  wf.add(simple("a")).add(simple("b", {"a"})).add(simple("c", {"b"}));
  WorkflowResult result;
  engine.run(wf, [&](const WorkflowResult& r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.success);
  EXPECT_EQ(runner.started(),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_GE(result.steps.at("b").start_time,
            result.steps.at("a").finish_time);
  EXPECT_EQ(result.duration, util::millis(30));
}

TEST(WorkflowEngine, IndependentStepsRunConcurrently) {
  sim::Simulation sim;
  FakeRunner runner(sim);
  runner.set_duration("a", util::millis(50));
  runner.set_duration("b", util::millis(50));
  WorkflowEngine engine(sim, runner);
  Workflow wf("parallel");
  wf.add(simple("a")).add(simple("b"));
  WorkflowResult result;
  engine.run(wf, [&](const WorkflowResult& r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.duration, util::millis(50));  // not 100: parallel
}

TEST(WorkflowEngine, DiamondDependency) {
  sim::Simulation sim;
  FakeRunner runner(sim);
  WorkflowEngine engine(sim, runner);
  Workflow wf("diamond");
  wf.add(simple("a"))
      .add(simple("b", {"a"}))
      .add(simple("c", {"a"}))
      .add(simple("d", {"b", "c"}));
  WorkflowResult result;
  engine.run(wf, [&](const WorkflowResult& r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.success);
  EXPECT_GE(result.steps.at("d").start_time,
            result.steps.at("b").finish_time);
  EXPECT_GE(result.steps.at("d").start_time,
            result.steps.at("c").finish_time);
}

TEST(WorkflowEngine, RetriesFailingStep) {
  sim::Simulation sim;
  FakeRunner runner(sim);
  runner.fail_attempts("flaky", 2);
  WorkflowEngine engine(sim, runner);
  Workflow wf("retry");
  Step flaky = simple("flaky");
  flaky.max_retries = 3;
  wf.add(flaky);
  WorkflowResult result;
  engine.run(wf, [&](const WorkflowResult& r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.steps.at("flaky").attempts, 3);
  EXPECT_EQ(result.total_retries, 2);
}

TEST(WorkflowEngine, FailureBeyondRetriesFailsWorkflow) {
  sim::Simulation sim;
  FakeRunner runner(sim);
  runner.fail_attempts("bad", 100);
  WorkflowEngine engine(sim, runner);
  Workflow wf("fail");
  Step bad = simple("bad");
  bad.max_retries = 1;
  wf.add(bad);
  wf.add(simple("after", {"bad"}));
  WorkflowResult result;
  result.success = true;
  engine.run(wf, [&](const WorkflowResult& r) { result = r; });
  sim.run();
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.steps.at("bad").attempts, 2);
  // Dependent never launched.
  EXPECT_EQ(result.steps.at("after").attempts, 0);
}

TEST(WorkflowEngine, FailureDoesNotCancelInFlightSiblings) {
  sim::Simulation sim;
  FakeRunner runner(sim);
  runner.fail_attempts("bad", 100);
  runner.set_duration("bad", util::millis(1));
  runner.set_duration("slow", util::millis(100));
  WorkflowEngine engine(sim, runner);
  Workflow wf("mixed");
  wf.add(simple("bad")).add(simple("slow"));
  WorkflowResult result;
  engine.run(wf, [&](const WorkflowResult& r) { result = r; });
  sim.run();
  EXPECT_FALSE(result.success);
  // The slow sibling ran to completion before the workflow reported.
  EXPECT_TRUE(result.steps.at("slow").success);
  EXPECT_EQ(result.duration, util::millis(100));
}

TEST(WorkflowEngine, EmptyWorkflowSucceedsImmediately) {
  sim::Simulation sim;
  FakeRunner runner(sim);
  WorkflowEngine engine(sim, runner);
  Workflow wf("empty");
  WorkflowResult result;
  engine.run(wf, [&](const WorkflowResult& r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.duration, 0);
}

TEST(WorkflowEngine, TimeoutFailsSlowAttempt) {
  sim::Simulation sim;
  FakeRunner runner(sim);
  runner.set_duration("slow", util::seconds(10));
  WorkflowEngine engine(sim, runner);
  Workflow wf("timeout");
  Step slow = simple("slow");
  slow.timeout = util::seconds(1);
  wf.add(slow);
  WorkflowResult result;
  result.success = true;
  engine.run(wf, [&](const WorkflowResult& r) { result = r; });
  sim.run();
  EXPECT_FALSE(result.success);
  // The workflow reported at the timeout, not after the 10 s step.
  EXPECT_EQ(result.duration, util::seconds(1));
}

TEST(WorkflowEngine, TimeoutConsumesRetryThenSucceeds) {
  sim::Simulation sim;
  FakeRunner runner(sim);
  WorkflowEngine engine(sim, runner);
  Workflow wf("timeout-retry");
  Step step = simple("s");
  step.timeout = util::millis(50);  // default FakeRunner duration is 10ms
  step.max_retries = 1;
  wf.add(step);
  // First attempt artificially slow, so it times out; the retry (same
  // duration map) also... make only the first attempt slow via failures?
  // Instead: duration below timeout -> no timeouts at all; sanity path.
  WorkflowResult result;
  engine.run(wf, [&](const WorkflowResult& r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.steps.at("s").attempts, 1);
}

TEST(WorkflowEngine, LateResultAfterTimeoutIsIgnored) {
  sim::Simulation sim;
  FakeRunner runner(sim);
  runner.set_duration("slow", util::seconds(5));
  WorkflowEngine engine(sim, runner);
  Workflow wf("late");
  Step slow = simple("slow");
  slow.timeout = util::seconds(1);
  slow.max_retries = 0;
  wf.add(slow);
  int reports = 0;
  WorkflowResult result;
  engine.run(wf, [&](const WorkflowResult& r) {
    result = r;
    ++reports;
  });
  sim.run();  // runs past the late 5 s completion
  EXPECT_EQ(reports, 1);  // no double-finish from the stale callback
  EXPECT_FALSE(result.success);
}

TEST(WorkflowEngine, TimeoutRetriesCanSucceedLater) {
  // First attempt exceeds the timeout; FakeRunner is then reconfigured
  // to be fast, so the retry lands inside the deadline.
  sim::Simulation sim;
  FakeRunner runner(sim);
  runner.set_duration("flaky", util::seconds(5));
  WorkflowEngine engine(sim, runner);
  Workflow wf("recover");
  Step flaky = simple("flaky");
  flaky.timeout = util::seconds(1);
  flaky.max_retries = 2;
  wf.add(flaky);
  WorkflowResult result;
  engine.run(wf, [&](const WorkflowResult& r) { result = r; });
  sim.at(util::millis(1500), [&] {
    runner.set_duration("flaky", util::millis(10));
  });
  sim.run();
  EXPECT_TRUE(result.success);
  EXPECT_GE(result.steps.at("flaky").attempts, 2);
}

TEST(StepBuilders, PopulateKinds) {
  orch::PodSpec pod;
  pod.name = "p";
  EXPECT_EQ(container_step("c", pod, 1).kind, StepKind::kContainer);
  dataflow::LogicalPlan plan;
  plan.add_sink(plan.add_source("d"), "o");
  EXPECT_EQ(dataflow_step("d", plan).kind, StepKind::kDataflow);
  EXPECT_EQ(hpc_step("h", {}, 4).kind, StepKind::kHpc);
  EXPECT_EQ(accel_step("a", "fft", 1).kind, StepKind::kAccel);
  EXPECT_EQ(custom_step("x", [](std::function<void(bool)> cb) { cb(true); })
                .kind,
            StepKind::kCustom);
  EXPECT_STREQ(to_string(StepKind::kHpc), "hpc");
}

// Regression: with a 1 ns base backoff, retry 63's old delay was
// `1 << 63` — signed-shift overflow (UB) that wrapped to a delay in the
// past. The saturated backoff pins late retries at a large finite delay,
// so a step can burn through a deep retry budget and still succeed with
// a monotone, non-negative timeline.
TEST(WorkflowEngine, SurvivesRetryCountsPastTheShiftWidth) {
  sim::Simulation sim;
  FakeRunner runner(sim);
  runner.fail_attempts("stubborn", 63);
  runner.set_duration("stubborn", 1);
  WorkflowEngine engine(sim, runner);
  Workflow wf("deep-retry");
  Step stubborn = simple("stubborn");
  stubborn.max_retries = 63;
  stubborn.retry_backoff = 1;  // ns; doubles into saturation
  wf.add(stubborn);
  WorkflowResult result;
  engine.run(wf, [&](const WorkflowResult& r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.success);
  const StepResult& r = result.steps.at("stubborn");
  EXPECT_EQ(r.attempts, 64);
  EXPECT_GE(r.start_time, 0);
  EXPECT_GT(r.finish_time, r.start_time);
  EXPECT_GT(result.duration, 0);
}

}  // namespace
}  // namespace evolve::workflow
