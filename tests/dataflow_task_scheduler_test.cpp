#include "dataflow/task_scheduler.hpp"

#include <gtest/gtest.h>

#include "util/types.hpp"

namespace evolve::dataflow {
namespace {

TEST(TaskScheduler, AssignsToFreeSlots) {
  TaskScheduler sched(0);
  sched.add_executor(0, 2);
  sched.enqueue(1, {}, 0);
  sched.enqueue(2, {}, 0);
  sched.enqueue(3, {}, 0);
  const auto assignments = sched.assign(0);
  EXPECT_EQ(assignments.size(), 2u);
  EXPECT_EQ(sched.pending(), 1);
  EXPECT_EQ(sched.free_slots(), 0);
}

TEST(TaskScheduler, ReleaseFreesSlot) {
  TaskScheduler sched(0);
  sched.add_executor(0, 1);
  sched.enqueue(1, {}, 0);
  sched.enqueue(2, {}, 0);
  auto first = sched.assign(0);
  ASSERT_EQ(first.size(), 1u);
  sched.release(first[0].executor);
  const auto second = sched.assign(0);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].task, 2);
}

TEST(TaskScheduler, PrefersLocalExecutor) {
  TaskScheduler sched(util::seconds(1));
  sched.add_executor(5, 1);
  sched.add_executor(7, 1);
  sched.enqueue(1, {7}, 0);
  const auto assignments = sched.assign(0);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(sched.executor_node(assignments[0].executor), 7);
  EXPECT_TRUE(assignments[0].local);
  EXPECT_EQ(sched.local_assignments(), 1);
}

TEST(TaskScheduler, WaitsForLocalityUntilExpiry) {
  TaskScheduler sched(util::seconds(1));
  sched.add_executor(5, 1);  // not preferred
  sched.enqueue(1, {7}, 0);
  EXPECT_TRUE(sched.assign(0).empty());  // holds out for node 7
  EXPECT_EQ(sched.next_expiry(), util::seconds(1));
  const auto late = sched.assign(util::seconds(1));
  ASSERT_EQ(late.size(), 1u);
  EXPECT_FALSE(late[0].local);
  EXPECT_EQ(sched.executor_node(late[0].executor), 5);
}

TEST(TaskScheduler, ZeroWaitFallsBackImmediately) {
  TaskScheduler sched(0);
  sched.add_executor(5, 1);
  sched.enqueue(1, {7}, 0);
  const auto assignments = sched.assign(0);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_FALSE(assignments[0].local);
}

TEST(TaskScheduler, LocalSlotFreedDuringWaitGetsUsed) {
  TaskScheduler sched(util::seconds(10));
  const int preferred = sched.add_executor(7, 1);
  sched.add_executor(5, 4);
  // Occupy the preferred executor.
  sched.enqueue(1, {7}, 0);
  auto a1 = sched.assign(0);
  ASSERT_EQ(a1.size(), 1u);
  // Task 2 wants node 7; it waits rather than take node 5.
  sched.enqueue(2, {7}, 0);
  EXPECT_TRUE(sched.assign(util::millis(1)).empty());
  sched.release(preferred);
  const auto a2 = sched.assign(util::millis(2));
  ASSERT_EQ(a2.size(), 1u);
  EXPECT_TRUE(a2[0].local);
}

TEST(TaskScheduler, NoPreferenceHasNoExpiry) {
  TaskScheduler sched(util::seconds(1));
  sched.enqueue(1, {}, 0);
  EXPECT_EQ(sched.next_expiry(), -1);
}

TEST(TaskScheduler, ValidatesExecutors) {
  TaskScheduler sched(0);
  EXPECT_THROW(sched.add_executor(0, 0), std::invalid_argument);
}

TEST(TaskScheduler, FifoOrderAmongEqualTasks) {
  TaskScheduler sched(0);
  sched.add_executor(0, 1);
  for (TaskId t = 1; t <= 3; ++t) sched.enqueue(t, {}, 0);
  std::vector<TaskId> order;
  for (int i = 0; i < 3; ++i) {
    auto a = sched.assign(0);
    ASSERT_EQ(a.size(), 1u);
    order.push_back(a[0].task);
    sched.release(a[0].executor);
  }
  EXPECT_EQ(order, (std::vector<TaskId>{1, 2, 3}));
}

}  // namespace
}  // namespace evolve::dataflow
