// Hierarchical fair share: pool-tree math, fair queue ordering, minimal
// preemption victim sets, disruption budgets, and the background
// rebalancer.
#include "orch/fairshare.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "orch/controllers.hpp"
#include "orch/rebalancer.hpp"
#include "orch/scheduler.hpp"
#include "sim/simulation.hpp"
#include "util/types.hpp"

namespace evolve::orch {
namespace {

using cluster::cpu_mem;

cluster::Resources cores(std::int64_t n) { return cpu_mem(n * 1000, 0); }

PoolTree make_tree(std::int64_t capacity_cores) {
  PoolTree tree;
  tree.set_capacity(cpu_mem(capacity_cores * 1000, 1024 * util::kGiB));
  return tree;
}

TEST(PoolTree, EqualWeightsSplitEvenly) {
  PoolTree tree = make_tree(100);
  tree.add_pool({.name = "a"});
  tree.add_pool({.name = "b"});
  tree.assign_tenant("a", "a");
  tree.assign_tenant("b", "b");
  tree.add_demand("a", cores(100));
  tree.add_demand("b", cores(100));
  tree.recompute();
  EXPECT_NEAR(tree.fair_fraction("a"), 0.5, 1e-9);
  EXPECT_NEAR(tree.fair_fraction("b"), 0.5, 1e-9);
}

TEST(PoolTree, WeightsSkewTheSplit) {
  PoolTree tree = make_tree(100);
  tree.add_pool({.name = "a", .weight = 3.0});
  tree.add_pool({.name = "b", .weight = 1.0});
  tree.add_demand("a", cores(100));
  tree.add_demand("b", cores(100));
  tree.recompute();
  EXPECT_NEAR(tree.fair_fraction("a"), 0.75, 1e-9);
  EXPECT_NEAR(tree.fair_fraction("b"), 0.25, 1e-9);
}

TEST(PoolTree, IdlePoolDonatesToBusyOne) {
  PoolTree tree = make_tree(100);
  tree.add_pool({.name = "a"});
  tree.add_pool({.name = "b"});
  tree.add_demand("a", cores(10));  // wants far less than its half
  tree.add_demand("b", cores(200));
  tree.recompute();
  EXPECT_NEAR(tree.fair_fraction("a"), 0.1, 1e-9);
  EXPECT_NEAR(tree.fair_fraction("b"), 0.9, 1e-9);
}

TEST(PoolTree, GuaranteeFloorsTheShare) {
  PoolTree tree = make_tree(100);
  tree.add_pool({.name = "a", .weight = 1.0, .guarantee = cores(60)});
  tree.add_pool({.name = "b", .weight = 9.0});
  tree.add_demand("a", cores(100));
  tree.add_demand("b", cores(100));
  tree.recompute();
  // Weight alone would give "a" 10%; the guarantee floors it at 60%.
  EXPECT_GE(tree.fair_fraction("a"), 0.6 - 1e-9);
  EXPECT_NEAR(tree.fair_fraction("b"), 1.0 - tree.fair_fraction("a"), 1e-9);
}

TEST(PoolTree, LimitCapsTheShare) {
  PoolTree tree = make_tree(100);
  tree.add_pool({.name = "a", .limit = cores(20)});
  tree.add_pool({.name = "b"});
  tree.add_demand("a", cores(100));
  tree.add_demand("b", cores(100));
  tree.recompute();
  EXPECT_NEAR(tree.fair_fraction("a"), 0.2, 1e-9);
  EXPECT_NEAR(tree.fair_fraction("b"), 0.8, 1e-9);
}

TEST(PoolTree, HierarchySplitsWithinParent) {
  PoolTree tree = make_tree(100);
  tree.add_pool({.name = "prod", .weight = 3.0});
  tree.add_pool({.name = "research", .weight = 1.0});
  tree.add_pool({.name = "web", .parent = "prod", .weight = 1.0});
  tree.add_pool({.name = "api", .parent = "prod", .weight = 2.0});
  tree.assign_tenant("web", "web");
  tree.assign_tenant("api", "api");
  tree.assign_tenant("phd", "research");
  tree.add_demand("web", cores(100));
  tree.add_demand("api", cores(100));
  tree.add_demand("phd", cores(100));
  tree.recompute();
  // prod gets 75%, split 1:2 between web and api.
  EXPECT_NEAR(tree.fair_fraction("web"), 0.25, 1e-9);
  EXPECT_NEAR(tree.fair_fraction("api"), 0.5, 1e-9);
  EXPECT_NEAR(tree.fair_fraction("phd"), 0.25, 1e-9);
}

TEST(PoolTree, WithinLimitWalksAncestors) {
  PoolTree tree = make_tree(100);
  tree.add_pool({.name = "org", .limit = cores(30)});
  tree.add_pool({.name = "team", .parent = "org"});
  tree.assign_tenant("t", "team");
  EXPECT_TRUE(tree.within_limit("t", cores(30)));
  tree.charge("t", cores(25));
  EXPECT_TRUE(tree.within_limit("t", cores(5)));
  EXPECT_FALSE(tree.within_limit("t", cores(6)));  // org's 30-core cap
}

TEST(PoolTree, ScheduleKeyOrdersStarvedPoolsFirst) {
  PoolTree tree = make_tree(100);
  tree.add_pool({.name = "a"});
  tree.add_pool({.name = "b"});
  tree.add_demand("a", cores(50));
  tree.add_demand("b", cores(50));
  tree.charge("a", cores(80));
  tree.charge("b", cores(10));
  tree.recompute();
  EXPECT_LT(tree.schedule_key("b"), tree.schedule_key("a"));
  EXPECT_TRUE(tree.over_fair_share("a"));
  EXPECT_FALSE(tree.over_fair_share("b"));
  // Headroom for usage about to be released flips the verdict.
  EXPECT_FALSE(tree.over_fair_share("a", cores(40)));
}

TEST(PoolTree, UnknownTenantAutoCreatesPool) {
  PoolTree tree = make_tree(100);
  tree.add_pool({.name = "a"});
  tree.charge("walk-in", cores(10));
  EXPECT_TRUE(tree.has_pool("walk-in"));
  EXPECT_EQ(tree.pool_of("walk-in"), "walk-in");
  EXPECT_NEAR(tree.usage_fraction("walk-in"), 0.1, 1e-9);
}

// ---------------------------------------------------------------------
// Orchestrator integration.

struct FairFixture {
  explicit FairFixture(int compute = 1, OrchestratorConfig config = {})
      : cluster(cluster::make_testbed(compute, 0, 0)),
        orch(sim, cluster, SchedulingPolicy::spreading(cluster), config) {}

  sim::Simulation sim;
  cluster::Cluster cluster;
  Orchestrator orch;
};

PodSpec tenant_pod(const std::string& name, const std::string& tenant,
                   std::int64_t millicores) {
  PodSpec spec;
  spec.name = name;
  spec.tenant = tenant;
  spec.request = cpu_mem(millicores, util::kGiB);
  return spec;
}

TEST(FairScheduling, StarvedTenantJumpsTheQueue) {
  FairFixture f(1);
  PoolTree tree;
  f.orch.attach_pool_tree(&tree);
  // Tenant A holds 20 of 32 cores; only one of the two queued 10-core
  // pods fits now. A's pod was submitted first, but A is already well
  // over its fair share, so fair ordering runs B's pod first.
  f.orch.submit(tenant_pod("a-big", "a", 20000), /*duration=*/-1);
  f.sim.run();
  std::vector<std::string> order;
  auto record = [&order](const char* who) {
    return [&order, who](PodId, cluster::NodeId) { order.push_back(who); };
  };
  f.orch.submit(tenant_pod("a-next", "a", 10000), util::seconds(1),
                record("a"));
  f.orch.submit(tenant_pod("b-first", "b", 10000), util::seconds(1),
                record("b"));
  f.sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "b");
  EXPECT_EQ(order[1], "a");
}

TEST(Preemption, EvictsMinimalVictimSet) {
  OrchestratorConfig config;
  config.enable_preemption = true;
  FairFixture f(1, config);
  // Node: 32 cores. Victims: 4 + 4 + 24 cores of priority 0. A 20-core
  // high-priority pod must evict exactly the 24-core pod, not the small
  // ones the old largest-request-last ordering would have taken first.
  std::vector<PodPhase> phases(3, PodPhase::kPending);
  const std::int64_t sizes[] = {4000, 4000, 24000};
  for (int i = 0; i < 3; ++i) {
    f.orch.submit(tenant_pod("low-" + std::to_string(i), "low", sizes[i]),
                  /*duration=*/-1, {},
                  [&phases, i](PodId, PodPhase p) {
                    phases[static_cast<std::size_t>(i)] = p;
                  });
  }
  f.sim.run();
  PodSpec high = tenant_pod("high", "hi", 20000);
  high.priority = 5;
  bool high_started = false;
  f.orch.submit(high, util::seconds(1),
                [&](PodId, cluster::NodeId) { high_started = true; });
  f.sim.run();
  EXPECT_TRUE(high_started);
  EXPECT_EQ(f.orch.metrics().counter("preemptions"), 1);
  EXPECT_EQ(phases[0], PodPhase::kPending);  // still running (no finish)
  EXPECT_EQ(phases[1], PodPhase::kPending);
  EXPECT_EQ(phases[2], PodPhase::kFailed);   // only the 24-core victim
}

TEST(Preemption, NewestVictimEvictedOnTies) {
  OrchestratorConfig config;
  config.enable_preemption = true;
  FairFixture f(1, config);
  std::vector<PodPhase> phases(2, PodPhase::kPending);
  for (int i = 0; i < 2; ++i) {
    f.orch.submit(tenant_pod("twin-" + std::to_string(i), "low", 16000),
                  /*duration=*/-1, {},
                  [&phases, i](PodId, PodPhase p) {
                    phases[static_cast<std::size_t>(i)] = p;
                  });
  }
  f.sim.run();
  PodSpec high = tenant_pod("high", "hi", 16000);
  high.priority = 5;
  f.orch.submit(high, util::seconds(1));
  f.sim.run();
  EXPECT_EQ(phases[0], PodPhase::kPending);  // older twin survives
  EXPECT_EQ(phases[1], PodPhase::kFailed);   // newest goes first
}

TEST(Preemption, FairShareEvictsOverShareTenant) {
  OrchestratorConfig config;
  config.enable_preemption = true;
  config.enable_fair_preemption = true;
  FairFixture f(1, config);
  PoolTree tree;
  f.orch.attach_pool_tree(&tree);
  // Tenant A fills the node with equal-priority pods; tenant B arrives
  // with nothing. Priority preemption alone would never fire (equal
  // priorities); fair-share preemption reclaims B's half.
  std::vector<PodPhase> phases(2, PodPhase::kPending);
  for (int i = 0; i < 2; ++i) {
    f.orch.submit(tenant_pod("a-" + std::to_string(i), "a", 16000),
                  /*duration=*/-1, {},
                  [&phases, i](PodId, PodPhase p) {
                    phases[static_cast<std::size_t>(i)] = p;
                  });
  }
  f.sim.run();
  bool b_started = false;
  f.orch.submit(tenant_pod("b-0", "b", 16000), /*duration=*/-1,
                [&](PodId, cluster::NodeId) { b_started = true; });
  f.sim.run();
  EXPECT_TRUE(b_started);
  const int evicted =
      static_cast<int>(std::count(phases.begin(), phases.end(),
                                  PodPhase::kFailed));
  EXPECT_EQ(evicted, 1);  // minimal: half the node suffices
}

TEST(DisruptionBudget, MinAvailableHoldsTheFloor) {
  FairFixture f(1);
  std::vector<PodId> pods;
  for (int i = 0; i < 3; ++i) {
    PodSpec spec = tenant_pod("r-" + std::to_string(i), "t", 1000);
    spec.budget_group = "web";
    pods.push_back(f.orch.submit(spec, /*duration=*/-1));
  }
  f.sim.run();
  DisruptionBudget budget;
  budget.max_evictions_per_window = 10;
  budget.min_available = 2;
  f.orch.set_disruption_budget("web", budget);
  EXPECT_TRUE(f.orch.evict_for_rebalance(pods[0]));
  // Two replicas left: the floor refuses further voluntary evictions.
  EXPECT_FALSE(f.orch.evict_for_rebalance(pods[1]));
  EXPECT_EQ(f.orch.pod(pods[1]).phase, PodPhase::kRunning);
}

TEST(DisruptionBudget, WindowCapRefillsOverTime) {
  FairFixture f(1);
  std::vector<PodId> pods;
  for (int i = 0; i < 3; ++i) {
    PodSpec spec = tenant_pod("r-" + std::to_string(i), "t", 1000);
    spec.budget_group = "web";
    pods.push_back(f.orch.submit(spec, /*duration=*/-1));
  }
  f.sim.run();
  DisruptionBudget budget;
  budget.max_evictions_per_window = 1;
  budget.window = util::seconds(1);
  f.orch.set_disruption_budget("web", budget);
  EXPECT_TRUE(f.orch.evict_for_rebalance(pods[0]));
  EXPECT_FALSE(f.orch.evict_for_rebalance(pods[1]));  // window cap hit
  f.sim.after(util::seconds(2), [] {});
  f.sim.run();
  EXPECT_TRUE(f.orch.evict_for_rebalance(pods[1]));  // window rolled off
}

TEST(Preemption, GangKillReleasesQuotaExactlyOnce) {
  OrchestratorConfig config;
  config.enable_preemption = true;
  FairFixture f(2, config);
  f.orch.quotas().set_quota("mpi", cpu_mem(32000, 64 * util::kGiB));
  // Gang of two 16-core members, one per node (spreading).
  std::vector<PodSpec> gang(2);
  for (int i = 0; i < 2; ++i) {
    gang[i] = tenant_pod("g-" + std::to_string(i), "mpi", 16000);
  }
  int finished = 0;
  const auto ids = f.orch.submit_gang(gang, /*duration=*/-1, {},
                                      [&](PodId, PodPhase) { ++finished; });
  ASSERT_EQ(ids.size(), 2u);
  f.sim.run();
  // A full-node high-priority pod preempts one member; the all-or-
  // nothing cascade kills the other. Quota must return to zero — a
  // double release throws, a missed release would strand usage.
  PodSpec high = tenant_pod("high", "hi", 32000);
  high.priority = 10;
  bool high_started = false;
  f.orch.submit(high, util::seconds(1),
                [&](PodId, cluster::NodeId) { high_started = true; });
  f.sim.run();
  EXPECT_TRUE(high_started);
  EXPECT_EQ(finished, 2);
  EXPECT_EQ(f.orch.quotas().usage("mpi"), cpu_mem(0, 0));
  EXPECT_EQ(f.orch.quotas().unmatched_releases(), 0);
  // The tenant can immediately resubmit the same gang.
  EXPECT_EQ(f.orch.submit_gang(gang, util::seconds(1)).size(), 2u);
}

TEST(Rebalancer, SwapUnblocksStarvedPod) {
  FairFixture f(2);
  // web's 8-core replica lands on node 0; a pinned (budget-less)
  // 16-core pod takes node 1. A 28-core pod then fits nowhere, but
  // moving the web replica to node 1 frees node 0 for it.
  DeploymentController web(f.orch, "web",
                           tenant_pod("web", "web", 8000), 1);
  f.sim.run();
  f.orch.submit(tenant_pod("pinned", "ops", 16000), /*duration=*/-1);
  f.sim.run();
  bool big_started = false;
  cluster::NodeId big_node = cluster::kInvalidNode;
  f.orch.submit(tenant_pod("big", "ml", 28000), /*duration=*/-1,
                [&](PodId, cluster::NodeId n) {
                  big_started = true;
                  big_node = n;
                });
  f.sim.run();
  ASSERT_FALSE(big_started);  // fragmented: 24 + 16 free, needs 28

  RebalancerConfig config;
  config.starvation_threshold = 0;
  Rebalancer rebalancer(f.sim, f.orch, config);
  EXPECT_EQ(rebalancer.round_now(), 1);
  f.sim.run();
  EXPECT_TRUE(big_started);
  EXPECT_EQ(big_node, 0);
  EXPECT_EQ(web.running(), 1);  // replica recreated on the other node
  EXPECT_EQ(f.orch.metrics().counter("rebalance_evictions"), 1);
}

TEST(Rebalancer, RefusesWhenVictimFitsNowhereElse) {
  FairFixture f(1);
  DeploymentController web(f.orch, "web",
                           tenant_pod("web", "web", 16000), 1);
  f.sim.run();
  bool big_started = false;
  f.orch.submit(tenant_pod("big", "ml", 20000), /*duration=*/-1,
                [&](PodId, cluster::NodeId) { big_started = true; });
  f.sim.run();
  RebalancerConfig config;
  config.starvation_threshold = 0;
  Rebalancer rebalancer(f.sim, f.orch, config);
  // One node: the victim has no destination, so no eviction happens.
  EXPECT_EQ(rebalancer.round_now(), 0);
  f.sim.run();
  EXPECT_FALSE(big_started);
  EXPECT_EQ(web.running(), 1);
}

TEST(PoolTree, HistoricalUsageDecaysWithHalflife) {
  PoolTree tree = make_tree(100);
  tree.add_pool({.name = "a"});
  tree.add_pool({.name = "b"});
  tree.assign_tenant("a", "a");
  tree.assign_tenant("b", "b");
  tree.set_usage_halflife(util::seconds(10));

  // Tenant a bursts to the whole cluster for a while...
  tree.charge("a", cores(100));
  tree.advance_time(util::seconds(0));
  tree.advance_time(util::seconds(40));  // EWMA converges toward 1.0
  EXPECT_GT(tree.historical_fraction("a"), 0.9);
  EXPECT_NEAR(tree.historical_fraction("b"), 0.0, 1e-9);

  // ... then releases everything. Instantaneous usage is 0, but the
  // EWMA remembers the burst and halves every halflife.
  tree.release("a", cores(100));
  tree.advance_time(util::seconds(50));
  const double after_one = tree.historical_fraction("a");
  EXPECT_GT(after_one, 0.40);
  EXPECT_LT(after_one, 0.55);
  tree.advance_time(util::seconds(60));
  const double after_two = tree.historical_fraction("a");
  EXPECT_NEAR(after_two, after_one / 2.0, 0.05);
  tree.advance_time(util::seconds(200));
  EXPECT_LT(tree.historical_fraction("a"), 0.01);
}

TEST(PoolTree, ScheduleKeyChargesHistoricalUsageUntilItDecays) {
  PoolTree tree = make_tree(100);
  tree.add_pool({.name = "a"});
  tree.add_pool({.name = "b"});
  tree.set_usage_halflife(util::seconds(10));
  tree.add_demand("a", cores(50));
  tree.add_demand("b", cores(50));

  // a bursts, then goes idle; b never ran.
  tree.charge("a", cores(100));
  tree.advance_time(util::seconds(0));
  tree.advance_time(util::seconds(40));
  tree.release("a", cores(100));
  tree.advance_time(util::seconds(41));
  tree.recompute();

  // Without history both pools would tie at usage 0; with it, the
  // burster orders strictly after the tenant that never ran...
  EXPECT_GT(tree.schedule_key("a"), tree.schedule_key("b"));

  // ... and parity returns once the burst has decayed away.
  tree.advance_time(util::seconds(400));
  tree.recompute();
  EXPECT_NEAR(tree.schedule_key("a"), tree.schedule_key("b"), 1e-6);
}

TEST(PoolTree, ZeroHalflifeKeepsInstantaneousBehavior) {
  PoolTree tree = make_tree(100);
  tree.add_pool({.name = "a"});
  tree.charge("a", cores(80));
  tree.advance_time(util::seconds(100));  // no-op with halflife 0
  EXPECT_NEAR(tree.historical_fraction("a"), 0.0, 1e-12);
}

}  // namespace
}  // namespace evolve::orch
