#include "metrics/registry.hpp"

#include <gtest/gtest.h>

namespace evolve::metrics {
namespace {

TEST(Registry, CountersAccumulate) {
  Registry reg;
  EXPECT_EQ(reg.counter("a"), 0);
  reg.count("a");
  reg.count("a", 4);
  EXPECT_EQ(reg.counter("a"), 5);
  EXPECT_EQ(reg.counter("missing"), 0);
}

TEST(Registry, GaugesKeepLastValue) {
  Registry reg;
  reg.set_gauge("g", 1.5);
  reg.set_gauge("g", 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("g"), 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("missing"), 0.0);
}

TEST(Registry, HistogramsObserve) {
  Registry reg;
  reg.observe("h", 10);
  reg.observe("h", 20);
  EXPECT_TRUE(reg.has_histogram("h"));
  EXPECT_EQ(reg.histogram("h").count(), 2);
  EXPECT_FALSE(reg.has_histogram("nope"));
  EXPECT_EQ(reg.histogram("nope").count(), 0);
}

TEST(Registry, SeriesSample) {
  Registry reg;
  reg.sample("s", 0, 1.0);
  reg.sample("s", 10, 2.0);
  EXPECT_TRUE(reg.has_series("s"));
  EXPECT_EQ(reg.series("s").size(), 2u);
  EXPECT_DOUBLE_EQ(reg.series("missing").last(), 0.0);
}

TEST(Registry, RenderListsEverything) {
  Registry reg;
  reg.count("jobs_done", 3);
  reg.set_gauge("util", 0.8);
  reg.observe("latency", 100);
  reg.sample("load", 0, 1.0);
  const std::string text = reg.render();
  EXPECT_NE(text.find("counter jobs_done = 3"), std::string::npos);
  EXPECT_NE(text.find("gauge util"), std::string::npos);
  EXPECT_NE(text.find("histogram latency"), std::string::npos);
  EXPECT_NE(text.find("series load"), std::string::npos);
}

TEST(Registry, ResetClearsAll) {
  Registry reg;
  reg.count("c");
  reg.set_gauge("g", 1);
  reg.observe("h", 1);
  reg.sample("s", 0, 1);
  reg.reset();
  EXPECT_EQ(reg.counter("c"), 0);
  EXPECT_FALSE(reg.has_histogram("h"));
  EXPECT_FALSE(reg.has_series("s"));
}

}  // namespace
}  // namespace evolve::metrics
