// Queue-equivalence soak: the calendar EventQueue and the preserved
// binary-heap RefEventQueue must produce identical observable behaviour —
// pop order (time and payload), next_time values, cancel results, and
// size/empty — over 100 seeds of randomized push/pop/cancel churn whose
// times span every band (current heap, all four wheel levels, far heap).
//
// Handles are compared by *push index*, not raw EventId: slot-recycling
// timing legitimately differs between the engines, so ids may differ
// while the event streams are identical.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/ref_event_queue.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace evolve::sim {
namespace {

struct Op {
  enum Kind { kPush, kPop, kCancel, kPeek } kind;
  util::TimeNs time = 0;   // kPush
  std::size_t target = 0;  // kCancel: push index to cancel
};

std::vector<Op> make_ops(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Op> ops;
  std::size_t pushes = 0;
  util::TimeNs now = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t roll = rng.uniform_int(0, 9);
    if (roll < 5 || pushes == 0) {
      // Mix of near (same L0 bucket), mid (wheel levels), and far times;
      // occasional exact ties exercise the FIFO tie-break.
      const std::int64_t band = rng.uniform_int(0, 4);
      util::TimeNs dt = 0;
      switch (band) {
        case 0: dt = rng.uniform_int(0, 1'000); break;                // L0
        case 1: dt = rng.uniform_int(0, 4'000'000); break;            // L1/L2
        case 2: dt = rng.uniform_int(0, 15'000'000'000); break;       // L3
        case 3: dt = rng.uniform_int(0, 60'000'000'000); break;       // far
        default: dt = 0; break;                                       // tie
      }
      ops.push_back(Op{Op::kPush, now + dt, 0});
      ++pushes;
    } else if (roll < 7) {
      ops.push_back(Op{Op::kPop, 0, 0});
    } else if (roll < 9) {
      ops.push_back(
          Op{Op::kCancel, 0,
             static_cast<std::size_t>(rng.uniform_int(
                 0, static_cast<std::int64_t>(pushes) - 1))});
    } else {
      ops.push_back(Op{Op::kPeek, 0, 0});
    }
    // Keep `now` loosely advancing so pushes are not all front-loaded.
    if (roll < 5) now += rng.uniform_int(0, 2'000'000);
  }
  return ops;
}

TEST(QueueEquivalenceSoak, HundredSeedsIdenticalBehaviour) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const std::vector<Op> ops = make_ops(seed * 0x9e3779b97f4a7c15ULL);

    EventQueue cal;
    RefEventQueue ref;
    std::vector<EventId> cal_ids;
    std::vector<RefEventId> ref_ids;
    std::vector<std::uint64_t> cal_fired, ref_fired;

    std::uint64_t tag = 0;
    for (const Op& op : ops) {
      switch (op.kind) {
        case Op::kPush: {
          const std::uint64_t t = tag++;
          cal_ids.push_back(
              cal.push(op.time, [&cal_fired, t] { cal_fired.push_back(t); }));
          ref_ids.push_back(
              ref.push(op.time, [&ref_fired, t] { ref_fired.push_back(t); }));
          break;
        }
        case Op::kPop: {
          ASSERT_EQ(cal.empty(), ref.empty()) << "seed " << seed;
          if (cal.empty()) break;
          Event a = cal.pop();
          RefEvent b = ref.pop();
          ASSERT_EQ(a.time, b.time) << "seed " << seed;
          a.fn();
          b.fn();
          ASSERT_EQ(cal_fired.back(), ref_fired.back()) << "seed " << seed;
          break;
        }
        case Op::kCancel: {
          const bool a = cal.cancel(cal_ids[op.target]);
          const bool b = ref.cancel(ref_ids[op.target]);
          ASSERT_EQ(a, b) << "seed " << seed << " target " << op.target;
          break;
        }
        case Op::kPeek: {
          ASSERT_EQ(cal.empty(), ref.empty()) << "seed " << seed;
          if (!cal.empty()) {
            ASSERT_EQ(cal.next_time(), ref.next_time()) << "seed " << seed;
          }
          break;
        }
      }
      ASSERT_EQ(cal.size(), ref.size()) << "seed " << seed;
    }

    // Drain both queues to the end: the full execution streams must match.
    while (!cal.empty()) {
      ASSERT_FALSE(ref.empty()) << "seed " << seed;
      Event a = cal.pop();
      RefEvent b = ref.pop();
      ASSERT_EQ(a.time, b.time) << "seed " << seed;
      a.fn();
      b.fn();
    }
    ASSERT_TRUE(ref.empty()) << "seed " << seed;
    ASSERT_EQ(cal_fired, ref_fired) << "seed " << seed;
  }
}

}  // namespace
}  // namespace evolve::sim
