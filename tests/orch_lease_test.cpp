#include "orch/lease.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cluster/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "fault/partition.hpp"
#include "fault/wiring.hpp"
#include "net/fabric.hpp"
#include "orch/scheduler.hpp"
#include "sim/simulation.hpp"
#include "storage/io_model.hpp"
#include "storage/object_store.hpp"
#include "util/types.hpp"

namespace evolve::orch {
namespace {

using cluster::cpu_mem;
using util::TimeNs;

PodSpec small_pod(const std::string& name) {
  PodSpec spec;
  spec.name = name;
  spec.request = cpu_mem(1000, util::kGiB);
  return spec;
}

struct LeaseFixture {
  explicit LeaseFixture(int compute = 4, LeaseManagerConfig config = {})
      : cluster(cluster::make_testbed(compute, 0, 0, 2)),
        topology(cluster),
        fabric(sim, topology),
        orch(sim, cluster, SchedulingPolicy::spreading(cluster)),
        partitions(sim, fabric),
        leases(sim, fabric, orch, config) {}

  void stop_at(TimeNs when) {
    sim.at(when, [this] { leases.stop(); });
  }

  sim::Simulation sim;
  cluster::Cluster cluster;
  net::Topology topology;
  net::Fabric fabric;
  Orchestrator orch;
  fault::PartitionInjector partitions;
  LeaseManager leases;
};

TEST(LeaseManager, RejectsTtlNotExceedingRenewInterval) {
  LeaseFixture f;  // just for the dependencies
  LeaseManagerConfig bad;
  bad.renew_interval = util::seconds(2);
  bad.ttl = util::seconds(2);
  EXPECT_THROW(LeaseManager(f.sim, f.fabric, f.orch, bad),
               std::invalid_argument);
}

TEST(LeaseManager, HealthyNodesNeverExpire) {
  LeaseFixture f;
  f.leases.start();
  f.stop_at(util::seconds(30));
  f.sim.run();
  EXPECT_EQ(f.leases.expiries(), 0);
  EXPECT_EQ(f.leases.unreachable_count(), 0);
  EXPECT_EQ(f.fabric.stats().flows_in_flight, 0);
  for (const cluster::NodeId node : f.orch.managed_nodes()) {
    EXPECT_EQ(f.leases.epoch(node), 1);
  }
}

TEST(LeaseManager, ShortPartitionHealsWithoutEviction) {
  LeaseFixture f;
  f.orch.cordon(0);  // keep the pod off the lease leader
  const PodId pod = f.orch.submit(small_pod("p"), -1);
  f.leases.start();

  cluster::NodeId victim = cluster::kInvalidNode;
  f.sim.at(util::seconds(1), [&] {
    victim = f.orch.pod(pod).node;
    ASSERT_NE(victim, cluster::kInvalidNode);
    ASSERT_NE(victim, 0);
  });
  fault::PartitionId cut = 0;
  f.sim.at(util::seconds(5), [&] { cut = f.partitions.isolate({victim}); });
  // Grace is 10 s; heal at 9 s, well inside it.
  f.sim.at(util::seconds(9), [&] { f.partitions.heal(cut); });

  bool was_unreachable_mid_partition = false;
  bool pod_survived_mid_partition = false;
  f.sim.at(util::seconds(8), [&] {
    was_unreachable_mid_partition = f.leases.is_unreachable(victim) &&
                                    f.orch.is_unreachable(victim);
    pod_survived_mid_partition = f.orch.pod(pod).phase == PodPhase::kRunning;
  });
  f.stop_at(util::seconds(20));
  f.sim.run();

  EXPECT_TRUE(was_unreachable_mid_partition);
  EXPECT_TRUE(pod_survived_mid_partition);
  EXPECT_EQ(f.leases.expiries(), 1);
  EXPECT_EQ(f.leases.reconnects(), 1);
  EXPECT_EQ(f.leases.evictions(), 0);
  EXPECT_EQ(f.orch.pod(pod).phase, PodPhase::kRunning);  // no pod massacre
  EXPECT_FALSE(f.orch.is_unreachable(victim));
  EXPECT_EQ(f.leases.epoch(victim), 2);  // fencing epoch bumped anyway
  EXPECT_GT(f.leases.unreachable_node_seconds(), 1.0);
}

TEST(LeaseManager, GraceElapsedEvictsFencedPods) {
  LeaseManagerConfig config;
  config.grace = util::seconds(3);
  LeaseFixture f(4, config);
  f.orch.cordon(0);
  const PodId pod = f.orch.submit(small_pod("p"), -1);
  f.leases.start();

  cluster::NodeId victim = cluster::kInvalidNode;
  int evict_events = 0;
  f.leases.on_evict(
      [&](cluster::NodeId, std::int64_t, TimeNs) { ++evict_events; });
  f.sim.at(util::seconds(1), [&] { victim = f.orch.pod(pod).node; });
  fault::PartitionId cut = 0;
  f.sim.at(util::seconds(5), [&] { cut = f.partitions.isolate({victim}); });
  // Expiry lands by ~7 s, grace ends by ~10 s; heal long after, at 15 s.
  f.sim.at(util::seconds(15), [&] { f.partitions.heal(cut); });
  f.stop_at(util::seconds(25));
  f.sim.run();

  EXPECT_EQ(f.leases.expiries(), 1);
  EXPECT_EQ(f.leases.evictions(), 1);
  EXPECT_EQ(evict_events, 1);
  EXPECT_EQ(f.orch.pod(pod).phase, PodPhase::kFailed);
  // The healed node reconnected and is schedulable again.
  EXPECT_EQ(f.leases.reconnects(), 1);
  EXPECT_FALSE(f.orch.is_unreachable(victim));
}

TEST(Orchestrator, UnreachableGatesSchedulingWithoutEvicting) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(1, 0, 0, 1);
  Orchestrator orch(sim, cluster, SchedulingPolicy::spreading(cluster));

  // A running pod survives the transition to Unreachable (unlike
  // fail_node, which evicts).
  const PodId running = orch.submit(small_pod("survivor"), -1);
  sim.run();
  ASSERT_EQ(orch.pod(running).phase, PodPhase::kRunning);
  orch.mark_unreachable(0);
  EXPECT_TRUE(orch.is_unreachable(0));
  EXPECT_EQ(orch.pod(running).phase, PodPhase::kRunning);

  // New pods cannot land on an Unreachable node.
  const PodId pending = orch.submit(small_pod("blocked"), -1);
  sim.run();
  EXPECT_EQ(orch.pod(pending).phase, PodPhase::kPending);

  orch.clear_unreachable(0);
  sim.run();
  EXPECT_EQ(orch.pod(pending).phase, PodPhase::kRunning);

  // Only a node still Unreachable can be grace-evicted.
  orch.expire_unreachable(0);
  EXPECT_EQ(orch.pod(running).phase, PodPhase::kRunning);
}

TEST(LeaseManager, CrashPausesLeaseInsteadOfExpiring) {
  LeaseFixture f;
  fault::FaultInjector faults(f.sim);
  fault::connect(faults, f.orch);
  fault::connect(faults, f.leases);
  f.leases.start();

  faults.schedule_outage(2, util::seconds(3), util::seconds(5));
  f.stop_at(util::seconds(20));
  f.sim.run();

  // The downed node never became Unreachable: the crash path owned it.
  EXPECT_EQ(f.leases.expiries(), 0);
  EXPECT_EQ(f.leases.evictions(), 0);
  EXPECT_EQ(f.leases.epoch(2), 1);
  EXPECT_FALSE(f.orch.is_unreachable(2));
}

TEST(LeaseManager, ZombieWriteIsFencedByStaleEpoch) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(2, 3, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  storage::IoSubsystem io(sim, cluster);
  storage::ObjectStore store(sim, cluster, fabric, io,
                             cluster.nodes_with_label("role=storage"));
  store.create_bucket("data");
  Orchestrator orch(sim, cluster, SchedulingPolicy::spreading(cluster));
  fault::PartitionInjector partitions(sim, fabric);
  LeaseManager leases(sim, fabric, orch, {});
  fault::connect(leases, store);
  leases.start();

  // Writer node 1 takes its pre-partition epoch with it to the far side.
  const std::int64_t stale_epoch = leases.epoch(1);
  fault::PartitionId cut = 0;
  sim.at(util::seconds(2), [&] { cut = partitions.isolate({1}); });
  sim.at(util::seconds(12), [&] { partitions.heal(cut); });
  sim.at(util::seconds(20), [&] { leases.stop(); });
  sim.run();
  ASSERT_EQ(leases.expiries(), 1);
  ASSERT_EQ(leases.epoch(1), stale_epoch + 1);

  // The zombie write arrives stamped with the old epoch: rejected
  // synchronously, no bytes move, no callback fires.
  bool zombie_completed = false;
  EXPECT_FALSE(store.put_fenced(1, stale_epoch,
                                storage::ObjectKey{"data", "zombie"},
                                util::kMiB, [&] { zombie_completed = true; }));
  sim.run();
  EXPECT_FALSE(zombie_completed);
  EXPECT_FALSE(store.exists(storage::ObjectKey{"data", "zombie"}));
  EXPECT_EQ(store.writes_fenced(), 1);
  EXPECT_EQ(store.fence_epoch(1), stale_epoch + 1);

  // The same writer at the current epoch (post-reconnect) goes through.
  bool fresh_completed = false;
  EXPECT_TRUE(store.put_fenced(1, leases.epoch(1),
                               storage::ObjectKey{"data", "fresh"}, util::kMiB,
                               [&] { fresh_completed = true; }));
  sim.run();
  EXPECT_TRUE(fresh_completed);
  EXPECT_TRUE(store.exists(storage::ObjectKey{"data", "fresh"}));
}

}  // namespace
}  // namespace evolve::orch
