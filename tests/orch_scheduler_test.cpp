#include "orch/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "sim/simulation.hpp"
#include "util/types.hpp"

namespace evolve::orch {
namespace {

using cluster::cpu_mem;

struct OrchFixture {
  explicit OrchFixture(int compute = 2, OrchestratorConfig config = {})
      : cluster(cluster::make_testbed(compute, 0, 0)),
        orch(sim, cluster, SchedulingPolicy::spreading(cluster), config) {}

  sim::Simulation sim;
  cluster::Cluster cluster;
  Orchestrator orch;
};

PodSpec small_pod(const std::string& name) {
  PodSpec spec;
  spec.name = name;
  spec.request = cpu_mem(1000, util::kGiB);
  return spec;
}

TEST(SelectNode, PicksFeasibleBestScore) {
  OrchFixture f;
  std::vector<NodeStatus> nodes;
  for (cluster::NodeId n = 0; n < f.cluster.size(); ++n) {
    nodes.emplace_back(n, f.cluster.node(n).allocatable());
  }
  const auto policy = SchedulingPolicy::spreading(f.cluster);
  // Load node 0 heavily -> spreading should pick node 1.
  nodes[0].bind(99, cpu_mem(30000, 100 * util::kGiB));
  EXPECT_EQ(select_node(small_pod("p"), f.cluster, nodes, policy), 1);
}

TEST(SelectNode, ReturnsInvalidWhenNothingFits) {
  OrchFixture f;
  std::vector<NodeStatus> nodes;
  for (cluster::NodeId n = 0; n < f.cluster.size(); ++n) {
    nodes.emplace_back(n, f.cluster.node(n).allocatable());
  }
  PodSpec huge = small_pod("huge");
  huge.request = cpu_mem(1'000'000, util::kGiB);
  EXPECT_EQ(select_node(huge, f.cluster, nodes,
                        SchedulingPolicy::spreading(f.cluster)),
            cluster::kInvalidNode);
}

TEST(Orchestrator, PodRunsAndFinishes) {
  OrchFixture f;
  std::vector<std::string> events;
  const PodId id = f.orch.submit(
      small_pod("p"), util::seconds(1),
      [&](PodId, cluster::NodeId) { events.push_back("start"); },
      [&](PodId, PodPhase phase) {
        events.push_back(std::string("finish:") + to_string(phase));
      });
  ASSERT_NE(id, kInvalidPod);
  EXPECT_EQ(f.orch.pod(id).phase, PodPhase::kPending);
  f.sim.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "start");
  EXPECT_EQ(events[1], "finish:Succeeded");
  EXPECT_EQ(f.orch.pod(id).phase, PodPhase::kSucceeded);
  EXPECT_GE(f.orch.pod(id).finish_time,
            f.orch.pod(id).start_time + util::seconds(1));
}

TEST(Orchestrator, ManualFinishForOpenEndedPod) {
  OrchFixture f;
  bool started = false;
  const PodId id = f.orch.submit(
      small_pod("svc"), /*duration=*/-1,
      [&](PodId, cluster::NodeId) { started = true; });
  f.sim.run();
  EXPECT_TRUE(started);
  EXPECT_EQ(f.orch.pod(id).phase, PodPhase::kRunning);
  EXPECT_EQ(f.orch.running_count(), 1);
  f.orch.finish(id);
  EXPECT_EQ(f.orch.pod(id).phase, PodPhase::kSucceeded);
  EXPECT_EQ(f.orch.running_count(), 0);
}

TEST(Orchestrator, ResourcesReleasedAfterFinish) {
  OrchFixture f(1);
  const auto capacity = f.cluster.node(0).allocatable();
  const PodId id = f.orch.submit(small_pod("p"), util::seconds(1));
  f.sim.run();
  EXPECT_EQ(f.orch.pod(id).phase, PodPhase::kSucceeded);
  EXPECT_TRUE(f.orch.node_status(0).allocated().is_zero());
  EXPECT_EQ(f.orch.node_status(0).free(), capacity);
}

TEST(Orchestrator, QueuesWhenFullThenRunsLater) {
  OrchFixture f(1);
  // Node has 32 cores; each pod takes 20 -> only one fits at a time.
  PodSpec big = small_pod("big");
  big.request = cpu_mem(20000, util::kGiB);
  std::vector<util::TimeNs> finish_times;
  for (int i = 0; i < 2; ++i) {
    f.orch.submit(big, util::seconds(1), {},
                  [&](PodId, PodPhase) { finish_times.push_back(f.sim.now()); });
  }
  f.sim.run();
  ASSERT_EQ(finish_times.size(), 2u);
  // Second pod had to wait for the first to finish.
  EXPECT_GE(finish_times[1] - finish_times[0], util::seconds(1));
  EXPECT_GT(f.orch.metrics().histogram("pod_wait_ms").max(), 900);
}

TEST(Orchestrator, NodeSelectorRestrictsPlacement) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(2, 1, 0);
  Orchestrator orch(sim, cluster, SchedulingPolicy::spreading(cluster));
  PodSpec spec = small_pod("storage-only");
  spec.node_selector = {"role=storage"};
  cluster::NodeId placed = cluster::kInvalidNode;
  orch.submit(spec, util::seconds(1),
              [&](PodId, cluster::NodeId n) { placed = n; });
  sim.run();
  ASSERT_NE(placed, cluster::kInvalidNode);
  EXPECT_TRUE(cluster.node(placed).has_label("role=storage"));
}

TEST(Orchestrator, CancelPendingPod) {
  OrchFixture f(1);
  PodSpec huge = small_pod("huge");
  huge.request = cpu_mem(1'000'000, util::kGiB);  // never schedulable
  PodPhase final_phase = PodPhase::kPending;
  const PodId id = f.orch.submit(huge, util::seconds(1), {},
                                 [&](PodId, PodPhase p) { final_phase = p; });
  EXPECT_TRUE(f.orch.cancel(id));
  EXPECT_FALSE(f.orch.cancel(id));
  f.sim.run();
  EXPECT_EQ(final_phase, PodPhase::kFailed);
  EXPECT_EQ(f.orch.pending_count(), 0);
}

TEST(Orchestrator, CancelRunningPodFreesResources) {
  OrchFixture f(1);
  const PodId id = f.orch.submit(small_pod("svc"), -1);
  f.sim.run();
  EXPECT_EQ(f.orch.pod(id).phase, PodPhase::kRunning);
  EXPECT_TRUE(f.orch.cancel(id));
  EXPECT_EQ(f.orch.pod(id).phase, PodPhase::kFailed);
  EXPECT_TRUE(f.orch.node_status(f.orch.pod(id).node).allocated().is_zero());
}

TEST(Orchestrator, GangSchedulesAllOrNothing) {
  OrchFixture f(2);  // 2 nodes x 32 cores
  // Gang of 4 pods x 20 cores cannot fit (needs 80 of 64 cores).
  std::vector<PodSpec> gang;
  for (int i = 0; i < 4; ++i) {
    PodSpec spec = small_pod("gang-" + std::to_string(i));
    spec.request = cpu_mem(20000, util::kGiB);
    gang.push_back(spec);
  }
  int started = 0;
  const auto ids = f.orch.submit_gang(gang, util::seconds(1),
                                      [&](PodId, cluster::NodeId) { ++started; });
  ASSERT_EQ(ids.size(), 4u);
  f.sim.run();
  EXPECT_EQ(started, 0);  // none started: all-or-nothing held
  EXPECT_EQ(f.orch.pending_count(), 4);
  EXPECT_GT(f.orch.metrics().counter("gang_placement_failures"), 0);
}

TEST(Orchestrator, GangRunsWhenItFits) {
  OrchFixture f(2);
  std::vector<PodSpec> gang;
  for (int i = 0; i < 4; ++i) {
    PodSpec spec = small_pod("gang-" + std::to_string(i));
    spec.request = cpu_mem(10000, util::kGiB);
    gang.push_back(spec);
  }
  int started = 0, finished = 0;
  f.orch.submit_gang(gang, util::seconds(1),
                     [&](PodId, cluster::NodeId) { ++started; },
                     [&](PodId, PodPhase) { ++finished; });
  f.sim.run();
  EXPECT_EQ(started, 4);
  EXPECT_EQ(finished, 4);
}

TEST(Orchestrator, GangWaitsForResourcesThenRuns) {
  OrchFixture f(1);
  // Fill the node with a 1-second blocker, then submit a gang that only
  // fits once the blocker finishes.
  PodSpec blocker = small_pod("blocker");
  blocker.request = cpu_mem(30000, util::kGiB);
  f.orch.submit(blocker, util::seconds(1));
  std::vector<PodSpec> gang(2, small_pod("g"));
  for (auto& spec : gang) spec.request = cpu_mem(15000, util::kGiB);
  int started = 0;
  f.orch.submit_gang(gang, util::seconds(1),
                     [&](PodId, cluster::NodeId) { ++started; });
  f.sim.run();
  EXPECT_EQ(started, 2);
}

TEST(Orchestrator, QuotaRejectsOverLimitSubmit) {
  OrchFixture f;
  f.orch.quotas().set_quota("team-a", cpu_mem(1500, 2 * util::kGiB));
  PodSpec spec = small_pod("a1");
  spec.tenant = "team-a";
  EXPECT_NE(f.orch.submit(spec, util::seconds(1)), kInvalidPod);
  // Second pod exceeds the 1500m quota.
  PodSpec spec2 = small_pod("a2");
  spec2.tenant = "team-a";
  EXPECT_EQ(f.orch.submit(spec2, util::seconds(1)), kInvalidPod);
  EXPECT_EQ(f.orch.metrics().counter("admission_rejected"), 1);
  // Other tenants are unaffected.
  EXPECT_NE(f.orch.submit(small_pod("b1"), util::seconds(1)), kInvalidPod);
}

TEST(Orchestrator, QuotaReleasedOnFinish) {
  OrchFixture f;
  f.orch.quotas().set_quota("team-a", cpu_mem(1000, util::kGiB));
  PodSpec spec = small_pod("a");
  spec.tenant = "team-a";
  f.orch.submit(spec, util::seconds(1));
  f.sim.run();
  // After the first finishes, quota allows another.
  EXPECT_NE(f.orch.submit(spec, util::seconds(1)), kInvalidPod);
}

TEST(Orchestrator, PreemptionEvictsLowerPriority) {
  OrchestratorConfig config;
  config.enable_preemption = true;
  OrchFixture f(1, config);
  // Fill the node with low-priority pods.
  PodSpec low = small_pod("low");
  low.request = cpu_mem(16000, 32 * util::kGiB);
  low.priority = 0;
  std::vector<PodPhase> low_phases(2, PodPhase::kPending);
  for (int i = 0; i < 2; ++i) {
    f.orch.submit(low, /*duration=*/-1, {},
                  [&low_phases, i](PodId, PodPhase p) { low_phases[static_cast<std::size_t>(i)] = p; });
  }
  f.sim.run();
  // High-priority pod needs half the node.
  PodSpec high = small_pod("high");
  high.request = cpu_mem(16000, 32 * util::kGiB);
  high.priority = 10;
  bool high_started = false;
  f.orch.submit(high, util::seconds(1),
                [&](PodId, cluster::NodeId) { high_started = true; });
  f.sim.run();
  EXPECT_TRUE(high_started);
  EXPECT_GT(f.orch.metrics().counter("preemptions"), 0);
  const int failed = static_cast<int>(std::count(low_phases.begin(),
                                                 low_phases.end(),
                                                 PodPhase::kFailed));
  EXPECT_EQ(failed, 1);  // minimal victim set
}

TEST(Orchestrator, NoPreemptionWhenDisabled) {
  OrchFixture f(1);  // default config: preemption off
  PodSpec low = small_pod("low");
  low.request = cpu_mem(32000, 64 * util::kGiB);
  f.orch.submit(low, /*duration=*/-1);
  f.sim.run();
  PodSpec high = small_pod("high");
  high.request = cpu_mem(16000, 16 * util::kGiB);
  high.priority = 10;
  bool high_started = false;
  f.orch.submit(high, util::seconds(1),
                [&](PodId, cluster::NodeId) { high_started = true; });
  f.sim.run();
  EXPECT_FALSE(high_started);
  EXPECT_EQ(f.orch.metrics().counter("preemptions"), 0);
}

TEST(Orchestrator, HigherPriorityScheduledFirst) {
  OrchFixture f(1);
  PodSpec filler = small_pod("filler");
  filler.request = cpu_mem(30000, util::kGiB);
  std::vector<std::string> start_order;
  // Both pending behind the filler; high priority should start first.
  f.orch.submit(filler, util::seconds(1));
  PodSpec lo = small_pod("lo");
  lo.request = cpu_mem(25000, util::kGiB);
  PodSpec hi = small_pod("hi");
  hi.request = cpu_mem(25000, util::kGiB);
  hi.priority = 5;
  f.orch.submit(lo, util::seconds(1),
                [&](PodId, cluster::NodeId) { start_order.push_back("lo"); });
  f.orch.submit(hi, util::seconds(1),
                [&](PodId, cluster::NodeId) { start_order.push_back("hi"); });
  f.sim.run();
  ASSERT_EQ(start_order.size(), 2u);
  EXPECT_EQ(start_order[0], "hi");
}

TEST(Orchestrator, UtilizationTracked) {
  OrchFixture f(1);
  PodSpec spec = small_pod("u");
  spec.request = cpu_mem(16000, 64 * util::kGiB);  // half of everything
  f.orch.submit(spec, util::seconds(10));
  f.sim.run();
  // Utilization should be near 0.5 over the pod's lifetime.
  EXPECT_NEAR(f.orch.cpu_utilization(), 0.5, 0.05);
  EXPECT_NEAR(f.orch.memory_utilization(), 0.5, 0.05);
}

TEST(Orchestrator, WaitTimeIncludesSchedulingDelay) {
  OrchFixture f;
  const PodId id = f.orch.submit(small_pod("p"), util::seconds(1));
  f.sim.run();
  const auto& status = f.orch.pod(id);
  EXPECT_GE(status.start_time - status.submit_time,
            OrchestratorConfig{}.scheduling_interval);
}

TEST(Orchestrator, MetricsCountLifecycle) {
  OrchFixture f;
  f.orch.submit(small_pod("a"), util::seconds(1));
  f.orch.submit(small_pod("b"), util::seconds(1));
  f.sim.run();
  EXPECT_EQ(f.orch.metrics().counter("pods_submitted"), 2);
  EXPECT_EQ(f.orch.metrics().counter("pods_started"), 2);
  EXPECT_EQ(f.orch.metrics().counter("pods_succeeded"), 2);
}

}  // namespace
}  // namespace evolve::orch
