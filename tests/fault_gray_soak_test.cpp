// 100-seed gray-failure soak (ctest label: soak).
//
// Every seed runs the full mitigation stack at once — seeded bit-rot,
// checksummed + hedged reads, background scrubbing, and a degraded NIC —
// against a randomized GET workload, and asserts the three invariants
// the mitigation layers promise:
//   1. with checksums on, no corrupted payload ever reaches a caller;
//   2. every corrupted replica is eventually found and repaired;
//   3. hedge cancellation never leaks an in-flight fabric flow.
#include <gtest/gtest.h>

#include <string>

#include "cluster/cluster.hpp"
#include "fault/gray.hpp"
#include "fault/wiring.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace evolve::fault {
namespace {

constexpr int kObjects = 10;
constexpr int kGets = 60;

void run_seed(std::uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(4, 4, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  storage::IoSubsystem io(sim, cluster);
  storage::ObjectStoreConfig config;
  config.replicas = 2;
  config.hedged_reads = true;
  config.hedge_min_delay = util::millis(1);
  config.checksum_reads = true;
  config.scrub = true;
  config.scrub_interval = util::millis(100);
  storage::ObjectStore store(sim, cluster, fabric, io,
                             cluster.nodes_with_label("role=storage"),
                             config);
  GrayInjector gray(sim);
  connect(gray, fabric);
  connect(gray, store);

  store.create_bucket("b");
  for (int i = 0; i < kObjects; ++i) {
    store.preload({"b", "obj" + std::to_string(i)}, 2 * util::kMiB);
  }

  util::Rng rng(seed);
  // One storage NIC degrades mid-run; bit-rot strikes twice.
  NicDegradation nic;
  nic.bandwidth_factor = rng.uniform(0.1, 0.3);
  nic.loss = rng.uniform(0.0, 0.3);
  nic.extra_latency = util::micros(
      static_cast<double>(rng.uniform_int(0, 500)));
  const auto victim =
      store.servers()[static_cast<std::size_t>(rng.uniform_int(0, 3))];
  gray.schedule_nic_degradation(victim, nic, util::millis(5),
                                util::millis(150));
  gray.schedule_bitrot(util::millis(2), seed * 33 + 1, 6);
  gray.schedule_bitrot(util::millis(60), seed * 97 + 5, 6);

  const auto compute = cluster.nodes_with_label("role=compute");
  int completed = 0;
  int corrupted_seen = 0;
  for (int g = 0; g < kGets; ++g) {
    const auto client =
        compute[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    const int obj = rng.uniform_int(0, kObjects - 1);
    sim.at(util::micros(static_cast<double>(rng.uniform_int(0, 200'000))),
           [&, client, obj] {
      store.get(client, {"b", "obj" + std::to_string(obj)},
                [&](const storage::GetResult& r) {
                  ++completed;
                  if (r.corrupted) ++corrupted_seen;
                  EXPECT_TRUE(r.found);
                });
    });
  }
  sim.run();

  EXPECT_EQ(completed, kGets);
  EXPECT_EQ(corrupted_seen, 0);
  EXPECT_EQ(store.corrupted_reads_surfaced(), 0);
  // The scrubber (plus checksum failovers) repaired every rotten
  // replica before the sim drained.
  EXPECT_EQ(store.corrupted_replica_count(), 0);
  EXPECT_EQ(store.lost_objects(), 0);
  EXPECT_EQ(store.under_replicated_objects(), 0);
  // Hedge losers were cancelled without leaking flows. (Cancelled can
  // trail launched: a hedge branch that hit a rotten replica and ran
  // out of clean copies dies on its own instead of being cancelled.)
  EXPECT_EQ(fabric.stats().flows_in_flight, 0);
  EXPECT_LE(store.hedges_cancelled(), store.hedges_launched());
}

TEST(GraySoak, HundredSeedsHoldInvariants) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    run_seed(seed);
    if (::testing::Test::HasFailure()) break;  // first failing seed only
  }
}

}  // namespace
}  // namespace evolve::fault
