// Erasure-coding mode of the object store.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/cluster.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"
#include "trace/tracer.hpp"

namespace evolve::storage {
namespace {

struct EcFixture {
  explicit EcFixture(int storage_nodes = 6, ObjectStoreConfig config = ec42(),
                     int racks = 2)
      : cluster(cluster::make_testbed(2, storage_nodes, 0, racks)),
        topology(cluster),
        fabric(sim, topology),
        io(sim, cluster),
        store(sim, cluster, fabric, io,
              cluster.nodes_with_label("role=storage"), config) {
    store.create_bucket("data");
  }

  static ObjectStoreConfig ec42() {
    ObjectStoreConfig config;
    config.redundancy = Redundancy::kErasure;
    config.ec_data = 4;
    config.ec_parity = 2;
    return config;
  }

  sim::Simulation sim;
  cluster::Cluster cluster;
  net::Topology topology;
  net::Fabric fabric;
  storage::IoSubsystem io;
  ObjectStore store;
};

TEST(ErasureCoding, RequiresEnoughServers) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(1, 4, 0);  // only 4 servers for 4+2
  net::Topology topo(cluster);
  net::Fabric fabric(sim, topo);
  storage::IoSubsystem io(sim, cluster);
  EXPECT_THROW(ObjectStore(sim, cluster, fabric, io,
                           cluster.nodes_with_label("role=storage"),
                           EcFixture::ec42()),
               std::invalid_argument);
}

TEST(ErasureCoding, ValidatesParameters) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(1, 6, 0);
  net::Topology topo(cluster);
  net::Fabric fabric(sim, topo);
  storage::IoSubsystem io(sim, cluster);
  auto config = EcFixture::ec42();
  config.ec_data = 0;
  EXPECT_THROW(ObjectStore(sim, cluster, fabric, io,
                           cluster.nodes_with_label("role=storage"), config),
               std::invalid_argument);
}

TEST(ErasureCoding, LocateReturnsKPlusMServers) {
  EcFixture f;
  const auto holders = f.store.locate({"data", "obj"});
  EXPECT_EQ(holders.size(), 6u);  // 4 + 2
  std::set<cluster::NodeId> unique(holders.begin(), holders.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(ErasureCoding, StorageOverheadIsFractional) {
  EXPECT_DOUBLE_EQ(EcFixture::ec42().storage_overhead(), 1.5);
  ObjectStoreConfig replication;
  replication.replicas = 3;
  EXPECT_DOUBLE_EQ(replication.storage_overhead(), 3.0);
}

TEST(ErasureCoding, PutStoresFragmentsNotCopies) {
  EcFixture f;
  const ObjectKey key{"data", "obj"};
  bool done = false;
  f.store.put(0, key, 4 * util::kMiB, [&] { done = true; });
  f.sim.run();
  ASSERT_TRUE(done);
  // Each holder stores a 1 MiB fragment; total durable = 1.5x logical.
  util::Bytes total = 0;
  for (auto s : f.store.servers()) total += f.store.durable_bytes(s);
  EXPECT_EQ(total, 6 * util::kMiB);
  for (auto holder : f.store.locate(key)) {
    EXPECT_EQ(f.store.durable_bytes(holder), util::kMiB);
  }
}

TEST(ErasureCoding, GetReconstructsFullObject) {
  EcFixture f;
  const ObjectKey key{"data", "obj"};
  f.store.preload(key, 4 * util::kMiB);
  GetResult result;
  f.store.get(0, key, [&](const GetResult& r) { result = r; });
  f.sim.run();
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.size, 4 * util::kMiB);
  EXPECT_FALSE(result.tier.empty());
}

TEST(ErasureCoding, RemoveReclaimsFragments) {
  EcFixture f;
  const ObjectKey key{"data", "obj"};
  f.store.preload(key, 4 * util::kMiB);
  bool removed = false;
  f.store.remove(0, key, [&] { removed = true; });
  f.sim.run();
  EXPECT_TRUE(removed);
  for (auto s : f.store.servers()) EXPECT_EQ(f.store.durable_bytes(s), 0);
}

TEST(ErasureCoding, OverwriteKeepsAccountingConsistent) {
  EcFixture f;
  const ObjectKey key{"data", "obj"};
  f.store.put(0, key, 8 * util::kMiB, [] {});
  f.sim.run();
  f.store.put(0, key, 4 * util::kMiB, [] {});
  f.sim.run();
  util::Bytes total = 0;
  for (auto s : f.store.servers()) total += f.store.durable_bytes(s);
  EXPECT_EQ(total, 6 * util::kMiB);
}

TEST(ErasureCoding, GetMovesLessDataThanReplicationWrites) {
  // EC GET transfers ~size bytes (k fragments); replication PUT moved
  // R x size. Sanity-check the fabric byte counters.
  EcFixture f;
  const ObjectKey key{"data", "obj"};
  f.store.preload(key, 4 * util::kMiB);
  const auto before = f.fabric.stats().bytes_delivered;
  f.store.get(1, key, [](const GetResult&) {});
  f.sim.run();
  const auto moved = f.fabric.stats().bytes_delivered - before;
  EXPECT_EQ(moved, 4 * util::kMiB);  // k fragments of size/k
}

TEST(ErasureCoding, MultipartAssemblesFragments) {
  EcFixture f;
  const ObjectKey key{"data", "big"};
  const auto id = f.store.initiate_multipart(key);
  f.store.upload_part(0, id, 1, 2 * util::kMiB, [] {});
  f.store.upload_part(0, id, 2, 2 * util::kMiB, [] {});
  f.sim.run();
  bool completed = false;
  f.store.complete_multipart(id, [&] { completed = true; });
  f.sim.run();
  EXPECT_TRUE(completed);
  util::Bytes total = 0;
  for (auto s : f.store.servers()) total += f.store.durable_bytes(s);
  EXPECT_EQ(total, 6 * util::kMiB);  // 4 MiB * 1.5
}

TEST(ErasureCoding, PutSlowerThanSingleReplicaButCheaper) {
  // Compare EC(4+2) PUT against R=2 replication on identical clusters.
  auto put_time = [](ObjectStoreConfig config) {
    EcFixture f(6, config);
    util::TimeNs done = -1;
    f.store.put(0, {"data", "x"}, 64 * util::kMiB, [&] { done = f.sim.now(); });
    f.sim.run();
    util::Bytes durable = 0;
    for (auto s : f.store.servers()) durable += f.store.durable_bytes(s);
    return std::pair{done, durable};
  };
  ObjectStoreConfig replication;
  replication.replicas = 2;
  const auto [rep_time, rep_bytes] = put_time(replication);
  const auto [ec_time, ec_bytes] = put_time(EcFixture::ec42());
  // EC stores 25% fewer durable bytes than R=2...
  EXPECT_LT(ec_bytes, rep_bytes);
  // ...and its fan-out moves fragments, not full copies, so the PUT is
  // not slower than replication despite the encode cost.
  EXPECT_LT(ec_time, rep_time + util::millis(50));
}

// -- Rack-aware placement, degraded reads, loss boundary, rebuild ------

int max_fragments_in_one_rack(const cluster::Cluster& cluster,
                              const std::vector<cluster::NodeId>& holders) {
  std::map<int, int> per_rack;
  int worst = 0;
  for (cluster::NodeId n : holders) {
    worst = std::max(worst, ++per_rack[cluster.node(n).rack]);
  }
  return worst;
}

TEST(ErasureCoding, RackAwarePlacementBoundsFragmentsPerRack) {
  // 12 storage servers across 4 racks: no rack may hold more than
  // ceil(6 / 4) = 2 of a stripe's 6 fragments, for every key.
  EcFixture f(12, EcFixture::ec42(), /*racks=*/4);
  for (int i = 0; i < 64; ++i) {
    const auto holders = f.store.locate({"data", "obj" + std::to_string(i)});
    ASSERT_EQ(holders.size(), 6u);
    EXPECT_LE(max_fragments_in_one_rack(f.cluster, holders), 2) << "key " << i;
  }
}

TEST(ErasureCoding, ObliviousPlacementOverfillsSomeRack) {
  // With the spread disabled, pure HRW concentrates > cap fragments of
  // some stripe in one rack — the A/B control for the invariant above.
  auto config = EcFixture::ec42();
  config.rack_aware_placement = false;
  EcFixture f(12, config, /*racks=*/4);
  int worst = 0;
  for (int i = 0; i < 64; ++i) {
    const auto holders = f.store.locate({"data", "obj" + std::to_string(i)});
    worst = std::max(worst, max_fragments_in_one_rack(f.cluster, holders));
  }
  EXPECT_GT(worst, 2);
}

TEST(ErasureCoding, ReplicationPlacementAlsoSpreadsAcrossRacks) {
  ObjectStoreConfig config;
  config.replicas = 2;
  EcFixture f(8, config, /*racks=*/2);  // cap = ceil(2/2) = 1 per rack
  for (int i = 0; i < 64; ++i) {
    const auto holders = f.store.locate({"data", "obj" + std::to_string(i)});
    ASSERT_EQ(holders.size(), 2u);
    EXPECT_EQ(max_fragments_in_one_rack(f.cluster, holders), 1) << "key " << i;
  }
}

TEST(ErasureCoding, DegradedReadReconstructsThroughParity) {
  EcFixture f;
  const ObjectKey key{"data", "obj"};
  f.store.preload(key, 4 * util::kMiB);
  const auto holders = f.store.locate(key);
  // Kill the holders of data fragments 0 and 1 (= m dead): the GET must
  // still succeed, reading 2 data + 2 parity fragments and paying the
  // reconstruction cost.
  f.store.handle_node_failure(holders[0]);
  f.store.handle_node_failure(holders[1]);
  GetResult result;
  f.store.get(0, key, [&](const GetResult& r) { result = r; });
  f.sim.run();
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.size, 4 * util::kMiB);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.parity_fragments_used, 2);
  EXPECT_EQ(f.store.metrics().counter("ec_reconstructed_reads"), 1);
}

TEST(ErasureCoding, DegradedReadCostsMoreThanCleanRead) {
  auto timed_get = [](int dead_holders) {
    EcFixture f;
    const ObjectKey key{"data", "obj"};
    f.store.preload(key, 16 * util::kMiB);
    const auto holders = f.store.locate(key);
    for (int i = 0; i < dead_holders; ++i) {
      f.store.handle_node_failure(holders[static_cast<std::size_t>(i)]);
    }
    util::TimeNs done = -1;
    f.store.get(0, key, [&](const GetResult& r) {
      ASSERT_TRUE(r.found);
      done = f.sim.now();
    });
    f.sim.run_until(util::millis(400));  // before background repair fires
    return done;
  };
  const util::TimeNs clean = timed_get(0);
  const util::TimeNs degraded = timed_get(2);
  ASSERT_GT(clean, 0);
  ASSERT_GT(degraded, 0);
  EXPECT_GT(degraded, clean);  // reconstruction math is not free
}

TEST(ErasureCoding, ExactlyMDeadIsRecoverableMPlusOneIsLost) {
  // The loss boundary: EC(4,2) tolerates exactly m = 2 dead fragments.
  EcFixture f;  // 6 servers: repairs stall (no spare target), so the
                // stripe stays at whatever the failures leave it.
  const ObjectKey key{"data", "obj"};
  f.store.preload(key, 4 * util::kMiB);
  const auto holders = f.store.locate(key);

  f.store.handle_node_failure(holders[0]);
  f.store.handle_node_failure(holders[1]);
  auto stats = f.store.durability_stats();
  EXPECT_EQ(stats.objects_degraded, 1);
  EXPECT_EQ(stats.objects_lost, 0);
  EXPECT_EQ(stats.missing_fragments, 2);
  EXPECT_EQ(stats.objects_lost_total, 0);
  GetResult at_boundary;
  f.store.get(0, key, [&](const GetResult& r) { at_boundary = r; });
  f.sim.run();
  EXPECT_TRUE(at_boundary.found);  // m dead: still recoverable
  EXPECT_TRUE(at_boundary.degraded);

  f.store.handle_node_failure(holders[2]);  // m + 1 dead: lost
  stats = f.store.durability_stats();
  EXPECT_EQ(stats.objects_degraded, 0);
  EXPECT_EQ(stats.objects_lost, 1);
  EXPECT_EQ(stats.missing_fragments, 0);  // lost, no longer "at risk"
  EXPECT_EQ(stats.objects_lost_total, 1);
  GetResult past_boundary;
  f.store.get(0, key, [&](const GetResult& r) { past_boundary = r; });
  f.sim.run();
  EXPECT_FALSE(past_boundary.found);
  EXPECT_EQ(f.store.lost_objects(), 1);
}

TEST(ErasureCoding, AtRiskFragmentSecondsIntegratesMissingFragments) {
  auto config = EcFixture::ec42();
  config.repair = false;  // keep the stripe degraded for the whole run
  EcFixture f(6, config);
  const ObjectKey key{"data", "obj"};
  f.store.preload(key, 4 * util::kMiB);
  const auto holders = f.store.locate(key);
  f.sim.at(util::seconds(1),
           [&] { f.store.handle_node_failure(holders[0]); });
  f.sim.at(util::seconds(3),
           [&] { f.store.handle_node_failure(holders[1]); });
  f.sim.at(util::seconds(4), [] {});
  f.sim.run();
  // 1 missing fragment over [1s, 3s) + 2 missing over [3s, 4s) = 4.
  EXPECT_NEAR(f.store.at_risk_fragment_seconds(), 4.0, 1e-6);
  EXPECT_NEAR(f.store.durability_stats().at_risk_fragment_seconds, 4.0, 1e-6);
}

TEST(ErasureCoding, RebuildRestoresFullRedundancy) {
  // 8 servers: after one crash the stripe has a live spare target, so
  // background repair rebuilds the dead fragment and a later GET is no
  // longer degraded.
  EcFixture f(8);
  const ObjectKey key{"data", "obj"};
  f.store.preload(key, 4 * util::kMiB);
  const auto holders = f.store.locate(key);
  f.store.handle_node_failure(holders[3]);
  EXPECT_EQ(f.store.under_replicated_objects(), 1);
  f.sim.run();
  EXPECT_EQ(f.store.under_replicated_objects(), 0);
  EXPECT_EQ(f.store.metrics().counter("objects_repaired"), 1);
  GetResult result;
  f.store.get(0, key, [&](const GetResult& r) { result = r; });
  f.sim.run();
  EXPECT_TRUE(result.found);
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.parity_fragments_used, 0);
}

TEST(ErasureCoding, ThrottledRebuildPacesRepairTraffic) {
  auto run_rebuild = [](double cap_bytes_per_s) {
    auto config = EcFixture::ec42();
    config.rebuild_bandwidth_bytes_per_s = cap_bytes_per_s;
    config.repair_delay = util::millis(10);
    EcFixture f(8, config);
    for (int i = 0; i < 8; ++i) {
      f.store.preload({"data", "obj" + std::to_string(i)}, 4 * util::kMiB);
    }
    // One crash degrades several stripes at once: a rebuild storm.
    f.store.handle_node_failure(f.store.servers()[0]);
    f.sim.run();
    return std::tuple{f.store.rebuild_throttle_wait_seconds(),
                      f.store.under_replicated_objects(), f.sim.now()};
  };
  const auto [unthrottled_wait, unthrottled_left, unthrottled_t] =
      run_rebuild(0);
  // 4 MiB/s admits one 4 MiB reconstruction (k fragments) every 4s.
  const auto [throttled_wait, throttled_left, throttled_t] =
      run_rebuild(4.0 * util::kMiB);
  EXPECT_EQ(unthrottled_wait, 0.0);
  EXPECT_GT(throttled_wait, 0.0);
  // Both fully restore redundancy; the throttled run just takes longer.
  EXPECT_EQ(unthrottled_left, 0);
  EXPECT_EQ(throttled_left, 0);
  EXPECT_GT(throttled_t, unthrottled_t);
}

TEST(ErasureCoding, RepairsRunRiskFirst) {
  // Two stripes degrade: "aa" loses 2 fragments (zero spares left),
  // "bb" loses 1 (one spare). With one repair slot the queue must serve
  // "aa" first even though "bb" degraded no later.
  auto config = EcFixture::ec42();
  config.repair_concurrency = 1;
  config.repair_delay = util::millis(50);
  config.scrub = true;
  config.scrub_interval = util::millis(5);
  EcFixture f(12, config, /*racks=*/4);
  trace::Tracer tracer(f.sim);
  f.store.set_tracer(&tracer);
  const ObjectKey risky{"data", "aa"};
  const ObjectKey mild{"data", "bb"};
  f.store.preload(risky, 4 * util::kMiB);
  f.store.preload(mild, 4 * util::kMiB);
  // Degrade per-object (not per-server): bit-rot that the scrubber
  // detects and drops, queueing both stripes for repair.
  ASSERT_TRUE(f.store.corrupt_replica(mild, f.store.locate(mild)[0]));
  ASSERT_TRUE(f.store.corrupt_replica(risky, f.store.locate(risky)[0]));
  ASSERT_TRUE(f.store.corrupt_replica(risky, f.store.locate(risky)[1]));
  f.sim.run();
  std::vector<std::string> repair_keys;
  for (const auto& span : tracer.spans()) {
    if (span.name != "store.repair") continue;
    for (const auto& [k, v] : span.attrs) {
      if (k == "key") repair_keys.push_back(v);
    }
  }
  ASSERT_EQ(repair_keys.size(), 3u);
  EXPECT_EQ(repair_keys[0], "data/aa");  // zero spares goes first
  EXPECT_EQ(f.store.under_replicated_objects(), 0);
}

}  // namespace
}  // namespace evolve::storage
