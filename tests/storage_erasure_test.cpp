// Erasure-coding mode of the object store.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"

namespace evolve::storage {
namespace {

struct EcFixture {
  explicit EcFixture(int storage_nodes = 6, ObjectStoreConfig config = ec42())
      : cluster(cluster::make_testbed(2, storage_nodes, 0)),
        topology(cluster),
        fabric(sim, topology),
        io(sim, cluster),
        store(sim, cluster, fabric, io,
              cluster.nodes_with_label("role=storage"), config) {
    store.create_bucket("data");
  }

  static ObjectStoreConfig ec42() {
    ObjectStoreConfig config;
    config.redundancy = Redundancy::kErasure;
    config.ec_data = 4;
    config.ec_parity = 2;
    return config;
  }

  sim::Simulation sim;
  cluster::Cluster cluster;
  net::Topology topology;
  net::Fabric fabric;
  storage::IoSubsystem io;
  ObjectStore store;
};

TEST(ErasureCoding, RequiresEnoughServers) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(1, 4, 0);  // only 4 servers for 4+2
  net::Topology topo(cluster);
  net::Fabric fabric(sim, topo);
  storage::IoSubsystem io(sim, cluster);
  EXPECT_THROW(ObjectStore(sim, cluster, fabric, io,
                           cluster.nodes_with_label("role=storage"),
                           EcFixture::ec42()),
               std::invalid_argument);
}

TEST(ErasureCoding, ValidatesParameters) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(1, 6, 0);
  net::Topology topo(cluster);
  net::Fabric fabric(sim, topo);
  storage::IoSubsystem io(sim, cluster);
  auto config = EcFixture::ec42();
  config.ec_data = 0;
  EXPECT_THROW(ObjectStore(sim, cluster, fabric, io,
                           cluster.nodes_with_label("role=storage"), config),
               std::invalid_argument);
}

TEST(ErasureCoding, LocateReturnsKPlusMServers) {
  EcFixture f;
  const auto holders = f.store.locate({"data", "obj"});
  EXPECT_EQ(holders.size(), 6u);  // 4 + 2
  std::set<cluster::NodeId> unique(holders.begin(), holders.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(ErasureCoding, StorageOverheadIsFractional) {
  EXPECT_DOUBLE_EQ(EcFixture::ec42().storage_overhead(), 1.5);
  ObjectStoreConfig replication;
  replication.replicas = 3;
  EXPECT_DOUBLE_EQ(replication.storage_overhead(), 3.0);
}

TEST(ErasureCoding, PutStoresFragmentsNotCopies) {
  EcFixture f;
  const ObjectKey key{"data", "obj"};
  bool done = false;
  f.store.put(0, key, 4 * util::kMiB, [&] { done = true; });
  f.sim.run();
  ASSERT_TRUE(done);
  // Each holder stores a 1 MiB fragment; total durable = 1.5x logical.
  util::Bytes total = 0;
  for (auto s : f.store.servers()) total += f.store.durable_bytes(s);
  EXPECT_EQ(total, 6 * util::kMiB);
  for (auto holder : f.store.locate(key)) {
    EXPECT_EQ(f.store.durable_bytes(holder), util::kMiB);
  }
}

TEST(ErasureCoding, GetReconstructsFullObject) {
  EcFixture f;
  const ObjectKey key{"data", "obj"};
  f.store.preload(key, 4 * util::kMiB);
  GetResult result;
  f.store.get(0, key, [&](const GetResult& r) { result = r; });
  f.sim.run();
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.size, 4 * util::kMiB);
  EXPECT_FALSE(result.tier.empty());
}

TEST(ErasureCoding, RemoveReclaimsFragments) {
  EcFixture f;
  const ObjectKey key{"data", "obj"};
  f.store.preload(key, 4 * util::kMiB);
  bool removed = false;
  f.store.remove(0, key, [&] { removed = true; });
  f.sim.run();
  EXPECT_TRUE(removed);
  for (auto s : f.store.servers()) EXPECT_EQ(f.store.durable_bytes(s), 0);
}

TEST(ErasureCoding, OverwriteKeepsAccountingConsistent) {
  EcFixture f;
  const ObjectKey key{"data", "obj"};
  f.store.put(0, key, 8 * util::kMiB, [] {});
  f.sim.run();
  f.store.put(0, key, 4 * util::kMiB, [] {});
  f.sim.run();
  util::Bytes total = 0;
  for (auto s : f.store.servers()) total += f.store.durable_bytes(s);
  EXPECT_EQ(total, 6 * util::kMiB);
}

TEST(ErasureCoding, GetMovesLessDataThanReplicationWrites) {
  // EC GET transfers ~size bytes (k fragments); replication PUT moved
  // R x size. Sanity-check the fabric byte counters.
  EcFixture f;
  const ObjectKey key{"data", "obj"};
  f.store.preload(key, 4 * util::kMiB);
  const auto before = f.fabric.stats().bytes_delivered;
  f.store.get(1, key, [](const GetResult&) {});
  f.sim.run();
  const auto moved = f.fabric.stats().bytes_delivered - before;
  EXPECT_EQ(moved, 4 * util::kMiB);  // k fragments of size/k
}

TEST(ErasureCoding, MultipartAssemblesFragments) {
  EcFixture f;
  const ObjectKey key{"data", "big"};
  const auto id = f.store.initiate_multipart(key);
  f.store.upload_part(0, id, 1, 2 * util::kMiB, [] {});
  f.store.upload_part(0, id, 2, 2 * util::kMiB, [] {});
  f.sim.run();
  bool completed = false;
  f.store.complete_multipart(id, [&] { completed = true; });
  f.sim.run();
  EXPECT_TRUE(completed);
  util::Bytes total = 0;
  for (auto s : f.store.servers()) total += f.store.durable_bytes(s);
  EXPECT_EQ(total, 6 * util::kMiB);  // 4 MiB * 1.5
}

TEST(ErasureCoding, PutSlowerThanSingleReplicaButCheaper) {
  // Compare EC(4+2) PUT against R=2 replication on identical clusters.
  auto put_time = [](ObjectStoreConfig config) {
    EcFixture f(6, config);
    util::TimeNs done = -1;
    f.store.put(0, {"data", "x"}, 64 * util::kMiB, [&] { done = f.sim.now(); });
    f.sim.run();
    util::Bytes durable = 0;
    for (auto s : f.store.servers()) durable += f.store.durable_bytes(s);
    return std::pair{done, durable};
  };
  ObjectStoreConfig replication;
  replication.replicas = 2;
  const auto [rep_time, rep_bytes] = put_time(replication);
  const auto [ec_time, ec_bytes] = put_time(EcFixture::ec42());
  // EC stores 25% fewer durable bytes than R=2...
  EXPECT_LT(ec_bytes, rep_bytes);
  // ...and its fan-out moves fragments, not full copies, so the PUT is
  // not slower than replication despite the encode cost.
  EXPECT_LT(ec_time, rep_time + util::millis(50));
}

}  // namespace
}  // namespace evolve::storage
