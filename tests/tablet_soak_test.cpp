// 100-seed tablet soak (ctest label: soak).
//
// Every seed runs a Zipf-keyed read/write workload through the
// TabletClient against a 4-node tablet layer while the balancer splits,
// merges, and moves shards, a gray slow node stretches execution, a
// seeded random partition process stalls fabric traffic, and one tablet
// server loses its lease mid-run (fenced at the store) and later
// reconnects. Invariants per seed:
//   1. exactly-once: no acked write is lost or double-applied across
//      shard-map epochs — every apply happened once, and
//      acked == applied + superseded (the dup counter);
//   2. zombie writes never ack: fenced WAL commits surface kFenced,
//      and are never applied;
//   3. tracing is purely observational: the traced rerun of the same
//      seed produces a bit-identical fingerprint.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/gray.hpp"
#include "fault/partition.hpp"
#include "fault/wiring.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"
#include "tablet/balancer.hpp"
#include "tablet/service.hpp"
#include "trace/tracer.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace evolve::tablet {
namespace {

constexpr int kOps = 240;
constexpr std::int64_t kKeys = 2000;

struct Fingerprint {
  std::int64_t acked = 0;
  std::int64_t applied = 0;
  std::int64_t dups = 0;
  std::int64_t fenced = 0;
  std::int64_t flushes = 0;
  std::int64_t wal_commits = 0;
  std::int64_t moves = 0;
  std::int64_t epoch = 0;
  std::int64_t splits = 0;
  util::TimeNs completion_hash = 0;

  bool operator==(const Fingerprint& other) const {
    return std::tie(acked, applied, dups, fenced, flushes, wal_commits,
                    moves, epoch, splits, completion_hash) ==
           std::tie(other.acked, other.applied, other.dups, other.fenced,
                    other.flushes, other.wal_commits, other.moves,
                    other.epoch, other.splits, other.completion_hash);
  }
};

Fingerprint run_seed(std::uint64_t seed, bool traced) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(4, 4, 0, 2);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  storage::IoSubsystem io(sim, cluster);
  storage::ObjectStore store(sim, cluster, fabric, io,
                             cluster.nodes_with_label("role=storage"));

  TabletConfig config;
  config.keyspace = static_cast<std::uint64_t>(kKeys);
  config.initial_shards = 2;
  config.flush_bytes = 16 * util::kKiB;  // flush often
  config.flush_age = util::millis(200);
  TabletService service(sim, fabric, store,
                        cluster.nodes_with_label("role=compute"), config);
  service.record_applies(true);
  trace::Tracer tracer(sim);
  if (traced) service.set_tracer(&tracer);

  BalancerConfig bcfg;
  bcfg.split_ops = 30;
  bcfg.merge_ops = 2;
  bcfg.min_move_ops = 20;
  bcfg.imbalance_ratio = 1.3;
  TabletBalancer balancer(sim, service, bcfg);
  balancer.start();

  // Gray slow node + seeded random partitions + one lease loss.
  const auto tablet_nodes = cluster.nodes_with_label("role=compute");
  fault::GrayInjector gray(sim);
  fault::connect(gray, service);
  gray.schedule_slow_node(tablet_nodes[1], /*cpu_factor=*/3.0,
                          /*accel_factor=*/1.0, util::seconds(4),
                          util::seconds(6));
  fault::PartitionInjectorConfig pconfig;
  pconfig.seed = seed;
  fault::PartitionInjector partitions(sim, fabric, pconfig);
  partitions.random_partitions(/*mtbp_s=*/8.0, /*mean_duration_s=*/1.0,
                               util::seconds(12));

  const cluster::NodeId victim = tablet_nodes[0];
  sim.at(util::seconds(6), [&] {
    // Lease expiry: fence first (the store must reject the zombie's
    // epoch before the tablet layer reacts), then shed.
    store.fence_node(victim, 2);
    service.handle_lease_expired(victim, 2);
  });
  sim.at(util::seconds(10),
         [&] { service.handle_node_reconnected(victim, 2); });

  ClientConfig ccfg;
  ccfg.max_attempts = 8;
  TabletClient client(sim, service, ccfg);

  util::Rng rng(seed * 2654435761u + 7);
  std::int64_t acked_writes = 0;
  std::set<std::int64_t> acked_seqs;
  util::TimeNs completion_hash = 0;
  for (int op = 0; op < kOps; ++op) {
    const auto key = static_cast<std::uint64_t>(rng.zipf(kKeys, 1.1));
    const auto at = util::seconds(rng.uniform(0.0, 12.0));
    const bool write = rng.uniform(0.0, 1.0) < 0.6;
    const auto origin = tablet_nodes[static_cast<std::size_t>(
        rng.uniform_int(0, 3))];
    sim.at(at, [&, key, write, origin] {
      client.submit(write ? OpKind::kWrite : OpKind::kRead, key, origin,
                    [&, write](OpResult r) {
                      completion_hash += sim.now();
                      if (write && r.status == OpStatus::kOk) {
                        ++acked_writes;
                        acked_seqs.insert(r.seq);
                      }
                    });
    });
  }
  sim.at(util::seconds(14), [&] {
    balancer.stop();
    service.stop();
  });
  sim.run();

  // Invariant 1: exactly-once across epochs. Every apply landed once,
  // and every acked write either applied or was superseded by a newer
  // write to the same key that committed first (counted as a dup).
  for (const auto& [seq, times] : service.apply_counts()) {
    EXPECT_EQ(times, 1) << "seq " << seq << " applied " << times << "x";
  }
  EXPECT_EQ(acked_writes,
            static_cast<std::int64_t>(acked_seqs.size()));  // unique seqs
  EXPECT_EQ(static_cast<std::int64_t>(service.apply_counts().size()),
            service.applied_writes());
  // An acked seq missing from apply_counts must be a suppressed stale
  // apply (superseded by a newer same-key write), never a lost write:
  // the dup counter accounts for every one of them exactly.
  std::int64_t superseded = 0;
  for (std::int64_t seq : acked_seqs) {
    if (service.apply_counts().count(seq) == 0) ++superseded;
  }
  EXPECT_EQ(superseded, service.dup_writes());

  // Invariant 2: zombie writes surface as kFenced (never kOk) and are
  // rejected by the store before any byte lands.
  EXPECT_EQ(service.metrics().counter("op_fenced"),
            service.fenced_writes());

  // Liveness / cleanliness.
  EXPECT_FALSE(partitions.active());
  EXPECT_EQ(fabric.stats().flows_in_flight, 0);
  EXPECT_EQ(fabric.parked_flows(), 0);
  EXPECT_GT(service.shard_map().epoch(), 1);  // churn actually happened

  Fingerprint fp;
  fp.acked = acked_writes;
  fp.applied = service.applied_writes();
  fp.dups = service.dup_writes();
  fp.fenced = service.fenced_writes();
  fp.flushes = service.flushes();
  fp.wal_commits = service.wal_commits();
  fp.moves = service.moves_completed();
  fp.epoch = service.shard_map().epoch();
  fp.splits = service.shard_map().splits();
  fp.completion_hash = completion_hash;
  return fp;
}

TEST(TabletSoak, HundredSeedsExactlyOnceAndTraceInvariant) {
  std::int64_t total_moves = 0;
  std::int64_t total_fenced = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Fingerprint plain = run_seed(seed, /*traced=*/false);
    EXPECT_GT(plain.acked, 0);
    EXPECT_GT(plain.wal_commits, 0);
    total_moves += plain.moves;
    total_fenced += plain.fenced;
    // Invariant 3: tracing changes nothing.
    const Fingerprint traced = run_seed(seed, /*traced=*/true);
    EXPECT_TRUE(plain == traced);
    if (::testing::Test::HasFailure()) break;  // first failing seed only
  }
  // Across the fleet of seeds the interesting paths actually ran.
  EXPECT_GT(total_moves, 0);
  EXPECT_GT(total_fenced, 0);
}

}  // namespace
}  // namespace evolve::tablet
