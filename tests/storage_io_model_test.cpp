#include "storage/io_model.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sim/simulation.hpp"

namespace evolve::storage {
namespace {

cluster::StorageDeviceSpec test_device() {
  return cluster::StorageDeviceSpec{
      .name = "nvme",
      .capacity = util::kGiB,
      .read_bw_bytes_per_s = 1e9,
      .write_bw_bytes_per_s = 5e8,
      .access_latency = util::micros(100),
  };
}

TEST(ServiceTime, ReadFormula) {
  const auto dev = test_device();
  // 1e9 bytes at 1e9 B/s = 1s + 100us latency.
  EXPECT_EQ(service_time(dev, IoKind::kRead, 1'000'000'000),
            util::seconds(1) + util::micros(100));
}

TEST(ServiceTime, WriteUsesWriteBandwidth) {
  const auto dev = test_device();
  EXPECT_EQ(service_time(dev, IoKind::kWrite, 500'000'000),
            util::seconds(1) + util::micros(100));
}

TEST(ServiceTime, ZeroBytesIsJustLatency) {
  const auto dev = test_device();
  EXPECT_EQ(service_time(dev, IoKind::kRead, 0), util::micros(100));
}

TEST(ServiceTime, RejectsNegative) {
  EXPECT_THROW(service_time(test_device(), IoKind::kRead, -1),
               std::invalid_argument);
}

TEST(DeviceQueue, SingleRequestLatency) {
  sim::Simulation sim;
  DeviceQueue queue(sim, test_device());
  util::TimeNs done = -1;
  queue.submit(IoKind::kRead, 1'000'000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, util::millis(1) + util::micros(100));
  EXPECT_EQ(queue.completed_requests(), 1);
}

TEST(DeviceQueue, RequestsSerialize) {
  sim::Simulation sim;
  DeviceQueue queue(sim, test_device());
  std::vector<util::TimeNs> done;
  for (int i = 0; i < 3; ++i) {
    queue.submit(IoKind::kRead, 1'000'000, [&] { done.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  const util::TimeNs unit = util::millis(1) + util::micros(100);
  EXPECT_EQ(done[0], unit);
  EXPECT_EQ(done[1], 2 * unit);
  EXPECT_EQ(done[2], 3 * unit);
}

TEST(DeviceQueue, IdleGapsDoNotAccumulate) {
  sim::Simulation sim;
  DeviceQueue queue(sim, test_device());
  std::vector<util::TimeNs> done;
  queue.submit(IoKind::kRead, 1'000'000, [&] { done.push_back(sim.now()); });
  sim.at(util::seconds(10), [&] {
    queue.submit(IoKind::kRead, 1'000'000, [&] { done.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // Second request starts fresh at t=10s, not back-to-back.
  EXPECT_EQ(done[1], util::seconds(10) + util::millis(1) + util::micros(100));
}

TEST(IoSubsystem, FindsClusterDevices) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(1, 1, 0);
  IoSubsystem io(sim, cluster);
  EXPECT_TRUE(io.has_device(0, "nvme"));
  EXPECT_TRUE(io.has_device(0, "dram"));
  EXPECT_FALSE(io.has_device(0, "hdd"));  // compute node lacks HDD
  EXPECT_TRUE(io.has_device(1, "hdd"));   // storage node has one
  EXPECT_NO_THROW(io.device(1, "hdd"));
  EXPECT_THROW(io.device(0, "hdd"), std::out_of_range);
}

TEST(IoSubsystem, QueuesAreIndependentPerNode) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(2, 0, 0);
  IoSubsystem io(sim, cluster);
  util::TimeNs done0 = -1, done1 = -1;
  io.device(0, "nvme").submit(IoKind::kRead, 3'000'000'000,
                              [&] { done0 = sim.now(); });
  io.device(1, "nvme").submit(IoKind::kRead, 3'000'000'000,
                              [&] { done1 = sim.now(); });
  sim.run();
  // Both finish at the same time: no cross-node serialization.
  EXPECT_EQ(done0, done1);
}

}  // namespace
}  // namespace evolve::storage
