// Property tests for the fabric's max-min fair allocation: capacity
// conservation on every link, non-zero progress for every flow, and
// bottleneck-share lower bounds, across randomized flow sets.
#include <gtest/gtest.h>

#include <map>

#include "cluster/cluster.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace evolve::net {
namespace {

class MaxMinProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinProperty, CapacityConservedAndWorkConserving) {
  const int seed = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(12, 0, 0, 3);
  Topology topology(cluster);
  Fabric fabric(sim, topology);

  // Random live flow set (big payloads so nothing completes during the
  // check), including some loopback flows.
  struct Live {
    FlowId id;
    cluster::NodeId src;
    cluster::NodeId dst;
  };
  std::vector<Live> flows;
  const int count = static_cast<int>(rng.uniform_int(3, 24));
  for (int i = 0; i < count; ++i) {
    const auto src = static_cast<cluster::NodeId>(rng.uniform_int(0, 11));
    const auto dst = static_cast<cluster::NodeId>(rng.uniform_int(0, 11));
    const FlowId id = fabric.transfer(src, dst, 100 * util::kGiB, [] {});
    flows.push_back(Live{id, src, dst});
  }

  // 1. Every flow makes progress.
  for (const Live& flow : flows) {
    EXPECT_GT(fabric.flow_rate(flow.id), 0.0);
  }

  // 2. No link is oversubscribed; 3. loaded links that bound some flow
  // are fully used (work conservation at the bottleneck).
  std::map<LinkId, double> link_load;
  std::map<LinkId, int> link_flows;
  for (const Live& flow : flows) {
    for (LinkId l : topology.path(flow.src, flow.dst)) {
      link_load[l] += fabric.flow_rate(flow.id);
      ++link_flows[l];
    }
  }
  for (const auto& [link, load] : link_load) {
    const double capacity = topology.link(link).capacity_bytes_per_s;
    EXPECT_LE(load, capacity * (1 + 1e-9))
        << "link " << topology.link(link).name << " oversubscribed";
  }

  // 4. Max-min lower bound: every network flow gets at least the worst
  // equal share along its path (capacity / flows on that link).
  for (const Live& flow : flows) {
    const auto path = topology.path(flow.src, flow.dst);
    if (path.empty()) continue;  // loopback: fixed rate
    double worst_share = 1e30;
    for (LinkId l : path) {
      worst_share = std::min(worst_share,
                             topology.link(l).capacity_bytes_per_s /
                                 link_flows[l]);
    }
    EXPECT_GE(fabric.flow_rate(flow.id), worst_share * (1 - 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinProperty,
                         ::testing::Range(1, 21));  // 20 random flow sets

// Multi-path topologies: a larger testbed (24 hosts over 6 racks) where
// cross-rack flows traverse 4 links (host up, ToR up, ToR down, host down)
// and contend on rack uplinks as well as host links. The incremental
// grouped solver must satisfy the same fairness invariants, and must agree
// with the from-scratch reference solver on every rate.
class MaxMinMultiPath : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinMultiPath, InvariantsAndReferenceAgreement) {
  const int seed = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 3);
  sim::Simulation sim;
  sim::Simulation ref_sim;
  auto cluster = cluster::make_testbed(24, 0, 0, 6);
  Topology topology(cluster);
  Fabric fabric(sim, topology);
  Fabric reference(ref_sim, topology, FabricConfig{true});

  struct Live {
    FlowId id;
    FlowId ref_id;
    cluster::NodeId src;
    cluster::NodeId dst;
  };
  std::vector<Live> flows;
  const int count = static_cast<int>(rng.uniform_int(8, 48));
  for (int i = 0; i < count; ++i) {
    const auto src = static_cast<cluster::NodeId>(rng.uniform_int(0, 23));
    // Bias towards cross-rack destinations so most paths have 4 links.
    const auto dst = static_cast<cluster::NodeId>(rng.uniform_int(0, 23));
    const util::Bytes bytes = 100 * util::kGiB;
    flows.push_back(Live{fabric.transfer(src, dst, bytes, [] {}),
                         reference.transfer(src, dst, bytes, [] {}), src,
                         dst});
  }

  std::map<LinkId, double> link_load;
  std::map<LinkId, int> link_flows;
  for (const Live& flow : flows) {
    const double rate = fabric.flow_rate(flow.id);
    // Grouped solver agrees with the reference solver, flow by flow.
    EXPECT_NEAR(rate, reference.flow_rate(flow.ref_id), 1e-9 * rate + 1e-9);
    EXPECT_GT(rate, 0.0);
    for (LinkId l : topology.path(flow.src, flow.dst)) {
      link_load[l] += rate;
      ++link_flows[l];
    }
  }
  for (const auto& [link, load] : link_load) {
    EXPECT_LE(load, topology.link(link).capacity_bytes_per_s * (1 + 1e-9))
        << "link " << topology.link(link).name << " oversubscribed";
  }
  for (const Live& flow : flows) {
    const auto path = topology.path(flow.src, flow.dst);
    if (path.empty()) continue;
    double worst_share = 1e30;
    for (LinkId l : path) {
      worst_share = std::min(
          worst_share, topology.link(l).capacity_bytes_per_s / link_flows[l]);
    }
    EXPECT_GE(fabric.flow_rate(flow.id), worst_share * (1 - 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinMultiPath, ::testing::Range(1, 16));

TEST(MaxMinProperty, TinyFlowsCompleteAndDrainState) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(8, 0, 0, 2);
  Topology topology(cluster);
  Fabric fabric(sim, topology);
  int completed = 0;
  // 1-byte flows sharing links with multi-MiB flows: the tiny flows finish
  // almost immediately without stalling or corrupting the big flows.
  for (int i = 0; i < 4; ++i) {
    fabric.transfer(0, 2, 1, [&] { ++completed; });
    fabric.transfer(0, 2, 4 * util::kMiB, [&] { ++completed; });
    fabric.transfer(i, (i + 4) % 8, 0, [&] { ++completed; });  // zero-byte
  }
  sim.run();
  EXPECT_EQ(completed, 12);
  EXPECT_EQ(fabric.active_flows(), 0);
  EXPECT_EQ(fabric.stats().flows_in_flight, 0);
  EXPECT_EQ(fabric.stats().flows_completed, 12);
  EXPECT_EQ(fabric.stats().bytes_delivered,
            4 * (1 + 4 * util::kMiB));
}

TEST(MaxMinProperty, RatesStableAcrossIdenticalSolves) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(4, 0, 0);
  Topology topology(cluster);
  Fabric fabric(sim, topology);
  const FlowId a = fabric.transfer(0, 1, util::kGiB, [] {});
  const FlowId b = fabric.transfer(0, 2, util::kGiB, [] {});
  const double rate_a = fabric.flow_rate(a);
  // Adding and cancelling a flow must restore the previous allocation.
  const FlowId c = fabric.transfer(0, 3, util::kGiB, [] {});
  EXPECT_LT(fabric.flow_rate(a), rate_a);
  fabric.cancel(c);
  EXPECT_NEAR(fabric.flow_rate(a), rate_a, 1.0);
  EXPECT_NEAR(fabric.flow_rate(b), rate_a, 1.0);
}

}  // namespace
}  // namespace evolve::net
