#include "storage/dataset.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"

namespace evolve::storage {
namespace {

struct CatalogFixture {
  CatalogFixture()
      : cluster(cluster::make_testbed(2, 3, 0)),
        topology(cluster),
        fabric(sim, topology),
        io(sim, cluster),
        store(sim, cluster, fabric, io,
              cluster.nodes_with_label("role=storage")),
        catalog(store) {}

  sim::Simulation sim;
  cluster::Cluster cluster;
  net::Topology topology;
  net::Fabric fabric;
  IoSubsystem io;
  ObjectStore store;
  DatasetCatalog catalog;
};

TEST(DatasetSpec, PartitionBytesSumToTotal) {
  DatasetSpec spec{"d", 7, 1000};
  util::Bytes sum = 0;
  for (int i = 0; i < spec.partitions; ++i) sum += spec.partition_bytes(i);
  EXPECT_EQ(sum, 1000);
}

TEST(DatasetSpec, PartitionBytesNearlyEqual) {
  DatasetSpec spec{"d", 3, 100};
  EXPECT_EQ(spec.partition_bytes(0), 34);
  EXPECT_EQ(spec.partition_bytes(1), 33);
  EXPECT_EQ(spec.partition_bytes(2), 33);
  EXPECT_THROW(spec.partition_bytes(3), std::out_of_range);
  EXPECT_THROW(spec.partition_bytes(-1), std::out_of_range);
}

TEST(PartitionKey, StableNaming) {
  DatasetSpec spec{"traces", 100, 1000};
  EXPECT_EQ(partition_key(spec, 0).full(), "traces/part-00000");
  EXPECT_EQ(partition_key(spec, 42).full(), "traces/part-00042");
}

TEST(DatasetCatalog, DefineValidates) {
  CatalogFixture f;
  EXPECT_THROW(f.catalog.define(DatasetSpec{"", 1, 1}), std::invalid_argument);
  EXPECT_THROW(f.catalog.define(DatasetSpec{"x", 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(f.catalog.define(DatasetSpec{"x", 1, -1}),
               std::invalid_argument);
  f.catalog.define(DatasetSpec{"ok", 4, 100});
  EXPECT_TRUE(f.catalog.defined("ok"));
  EXPECT_FALSE(f.catalog.defined("nope"));
  EXPECT_THROW(f.catalog.spec("nope"), std::out_of_range);
}

TEST(DatasetCatalog, PreloadMaterializesInstantly) {
  CatalogFixture f;
  f.catalog.define(DatasetSpec{"logs", 8, 8 * util::kMiB});
  EXPECT_FALSE(f.catalog.materialized("logs"));
  f.catalog.preload("logs");
  EXPECT_TRUE(f.catalog.materialized("logs"));
  EXPECT_EQ(f.sim.now(), 0);  // no simulated time passed
  EXPECT_EQ(f.store.list("logs").size(), 8u);
}

TEST(DatasetCatalog, IngestTakesSimulatedTime) {
  CatalogFixture f;
  f.catalog.define(DatasetSpec{"in", 4, 64 * util::kMiB});
  bool done = false;
  f.catalog.ingest(0, "in", [&] { done = true; });
  f.sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(f.catalog.materialized("in"));
  EXPECT_GT(f.sim.now(), 0);
}

TEST(DatasetCatalog, LocationsCoverEveryPartition) {
  CatalogFixture f;
  f.catalog.define(DatasetSpec{"d", 16, util::kMiB});
  f.catalog.preload("d");
  const auto locations = f.catalog.locations("d");
  ASSERT_EQ(locations.size(), 16u);
  for (const auto& replicas : locations) {
    EXPECT_EQ(replicas.size(), 2u);
    for (auto node : replicas) {
      EXPECT_TRUE(f.cluster.node(node).has_label("role=storage"));
    }
  }
}

TEST(DatasetCatalog, NamesSorted) {
  CatalogFixture f;
  f.catalog.define(DatasetSpec{"b", 1, 1});
  f.catalog.define(DatasetSpec{"a", 1, 1});
  const auto names = f.catalog.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

}  // namespace
}  // namespace evolve::storage
