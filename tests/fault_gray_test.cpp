#include "fault/gray.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "dataflow/engine.hpp"
#include "dataflow/task_scheduler.hpp"
#include "fault/health.hpp"
#include "fault/wiring.hpp"
#include "net/fabric.hpp"
#include "orch/scheduler.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"
#include "util/types.hpp"

namespace evolve::fault {
namespace {

using util::TimeNs;

// ---------------------------------------------------------------- gray

TEST(GrayInjector, SlowdownAppliesAndClears) {
  sim::Simulation sim;
  GrayInjector gray(sim);
  std::vector<std::pair<double, TimeNs>> events;  // (cpu factor, at)
  gray.on_slowdown([&](cluster::NodeId node, double cpu, double accel) {
    EXPECT_EQ(node, 3);
    EXPECT_EQ(accel, cpu);
    events.emplace_back(cpu, sim.now());
  });
  gray.schedule_slow_node(3, 4.0, 4.0, util::seconds(1), util::seconds(2));
  sim.run_until(util::seconds(2));
  EXPECT_TRUE(gray.is_slowed(3));
  EXPECT_EQ(gray.degraded_since(3), util::seconds(1));
  sim.run();
  EXPECT_FALSE(gray.is_slowed(3));
  EXPECT_EQ(gray.degraded_since(3), -1);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], std::make_pair(4.0, util::seconds(1)));
  EXPECT_EQ(events[1], std::make_pair(1.0, util::seconds(3)));
  EXPECT_EQ(gray.degradations_injected(), 1);
}

TEST(GrayInjector, OverlappingSlowdownsCoalesce) {
  sim::Simulation sim;
  GrayInjector gray(sim);
  std::vector<std::pair<double, TimeNs>> events;
  gray.on_slowdown([&](cluster::NodeId, double cpu, double) {
    events.emplace_back(cpu, sim.now());
  });
  // [1s, 3s) @ 2x and [2s, 5s) @ 6x: the stronger factor wins while they
  // overlap, and the node only returns healthy when the last interval
  // ends.
  gray.schedule_slow_node(0, 2.0, 1.0, util::seconds(1), util::seconds(2));
  gray.schedule_slow_node(0, 6.0, 1.0, util::seconds(2), util::seconds(3));
  sim.run_until(util::seconds(4));
  EXPECT_TRUE(gray.is_slowed(0));
  EXPECT_EQ(gray.degraded_since(0), util::seconds(1));
  sim.run();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.front(), std::make_pair(2.0, util::seconds(1)));
  EXPECT_EQ(events.back(), std::make_pair(1.0, util::seconds(5)));
  for (std::size_t i = 0; i + 1 < events.size(); ++i) {
    EXPECT_GE(events[i].first, 1.0);
  }
}

TEST(GrayInjector, NicDegradationFoldsLossIntoCapacity) {
  sim::Simulation sim;
  GrayInjector gray(sim);
  std::vector<double> factors;
  gray.on_nic([&](cluster::NodeId node, const NicDegradation& nic) {
    EXPECT_EQ(node, 1);
    factors.push_back(nic.capacity_factor());
  });
  NicDegradation nic;
  nic.bandwidth_factor = 0.5;
  nic.loss = 0.2;
  nic.extra_latency = util::millis(1);
  gray.schedule_nic_degradation(1, nic, util::seconds(1), util::seconds(1));
  sim.run();
  ASSERT_EQ(factors.size(), 2u);
  EXPECT_DOUBLE_EQ(factors[0], 0.5 * 0.8);
  EXPECT_DOUBLE_EQ(factors[1], 1.0);
  EXPECT_FALSE(gray.is_nic_degraded(1));
}

TEST(GrayInjector, BitrotFiresSeededEvent) {
  sim::Simulation sim;
  GrayInjector gray(sim);
  std::vector<std::pair<std::uint64_t, int>> events;
  gray.on_bitrot([&](std::uint64_t seed, int replicas) {
    events.emplace_back(seed, replicas);
  });
  gray.schedule_bitrot(util::millis(10), 99, 4);
  sim.run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], std::make_pair(std::uint64_t{99}, 4));
  EXPECT_EQ(gray.bitrot_events(), 1);
}

// -------------------------------------------------------------- health

HealthScorerConfig fast_config() {
  HealthScorerConfig config;
  config.ewma_alpha = 0.5;
  config.min_samples = 3;
  config.min_peers = 2;
  return config;
}

TEST(HealthScorer, FlagsOutlierAgainstPeerMedian) {
  sim::Simulation sim;
  HealthScorer scorer(sim, fast_config());
  std::vector<cluster::NodeId> flagged;
  scorer.on_flag([&](cluster::NodeId node, TimeNs) {
    flagged.push_back(node);
  });
  for (int i = 0; i < 5; ++i) {
    scorer.record(0, util::millis(100));
    scorer.record(1, util::millis(100));
    scorer.record(2, util::millis(500));
  }
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], 2);
  EXPECT_TRUE(scorer.flagged(2));
  EXPECT_FALSE(scorer.flagged(0));
  EXPECT_NEAR(scorer.score(2), 5.0, 0.5);
  EXPECT_EQ(scorer.flags_raised(), 1);
}

TEST(HealthScorer, NeedsMinSamplesAndPeers) {
  sim::Simulation sim;
  HealthScorer scorer(sim, fast_config());
  int flags = 0;
  scorer.on_flag([&](cluster::NodeId, TimeNs) { ++flags; });
  // Only one peer ever reports: no median, no flag, score stays 0.
  for (int i = 0; i < 10; ++i) {
    scorer.record(0, util::millis(100));
    scorer.record(2, util::millis(900));
  }
  EXPECT_EQ(flags, 0);
  EXPECT_EQ(scorer.score(2), 0.0);
  // A second peer arrives but below min_samples: still no flag.
  scorer.record(1, util::millis(100));
  scorer.record(1, util::millis(100));
  EXPECT_EQ(flags, 0);
  scorer.record(1, util::millis(100));
  scorer.record(2, util::millis(900));
  EXPECT_EQ(flags, 1);
}

TEST(HealthScorer, HysteresisClearsOnlyBelowClearRatio) {
  sim::Simulation sim;
  HealthScorerConfig config = fast_config();
  config.flag_ratio = 2.0;
  config.clear_ratio = 1.3;
  HealthScorer scorer(sim, config);
  int clears = 0;
  scorer.on_clear([&](cluster::NodeId node, TimeNs) {
    EXPECT_EQ(node, 2);
    ++clears;
  });
  for (int i = 0; i < 5; ++i) {
    scorer.record(0, util::millis(100));
    scorer.record(1, util::millis(100));
    scorer.record(2, util::millis(400));
  }
  ASSERT_TRUE(scorer.flagged(2));
  // Recovery: fast samples pull the EWMA down. Between clear_ratio and
  // flag_ratio the flag must hold (hysteresis), below clear_ratio it
  // clears.
  while (scorer.flagged(2)) {
    ASSERT_GT(scorer.score(2), config.clear_ratio);
    scorer.record(2, util::millis(100));
  }
  EXPECT_EQ(clears, 1);
  EXPECT_LE(scorer.score(2), config.clear_ratio);
  EXPECT_EQ(scorer.flags_cleared(), 1);
}

TEST(HealthScorer, ResetNodeForgetsSilently) {
  sim::Simulation sim;
  HealthScorer scorer(sim, fast_config());
  int clears = 0;
  scorer.on_clear([&](cluster::NodeId, TimeNs) { ++clears; });
  for (int i = 0; i < 5; ++i) {
    scorer.record(0, util::millis(100));
    scorer.record(1, util::millis(100));
    scorer.record(2, util::millis(500));
  }
  ASSERT_TRUE(scorer.flagged(2));
  scorer.reset_node(2);
  EXPECT_FALSE(scorer.flagged(2));
  EXPECT_EQ(scorer.samples(2), 0);
  EXPECT_EQ(clears, 0);  // silent: no subscriber callback
}

// ---------------------------------------------------------- quarantine

struct QuarantineFixture {
  QuarantineFixture() : scorer(sim, fast_config()), controller(sim, scorer) {
    controller.on_change([this](cluster::NodeId, bool quarantined,
                                TimeNs at) {
      changes.emplace_back(quarantined ? "q" : "r", at);
    });
  }

  // Drives node 2's score above flag_ratio with healthy peers 0 and 1.
  void flag_node_2() {
    for (int i = 0; i < 5; ++i) {
      scorer.record(0, util::millis(100));
      scorer.record(1, util::millis(100));
      scorer.record(2, util::millis(500));
    }
  }

  sim::Simulation sim;
  HealthScorer scorer;
  QuarantineController controller;
  std::vector<std::pair<std::string, TimeNs>> changes;
};

TEST(QuarantineController, FlagQuarantinesThenProbesBackIn) {
  QuarantineFixture f;
  f.flag_node_2();
  EXPECT_TRUE(f.controller.is_quarantined(2));
  EXPECT_EQ(f.controller.quarantines(), 1);
  f.sim.run();  // probe delay elapses
  EXPECT_FALSE(f.controller.is_quarantined(2));
  EXPECT_EQ(f.controller.probes(), 1);
  // The probe resets the node's history so fresh samples decide.
  EXPECT_EQ(f.scorer.samples(2), 0);
  ASSERT_EQ(f.changes.size(), 2u);
  EXPECT_EQ(f.changes[0].first, "q");
  EXPECT_EQ(f.changes[1].first, "r");
  EXPECT_EQ(f.changes[1].second - f.changes[0].second,
            QuarantineConfig{}.probe_delay);
}

TEST(QuarantineController, RequarantineDoublesProbeDelay) {
  QuarantineFixture f;
  f.flag_node_2();
  f.sim.run();  // first probe releases node 2
  ASSERT_EQ(f.changes.size(), 2u);
  f.flag_node_2();  // still slow: re-flagged right after the probe
  EXPECT_TRUE(f.controller.is_quarantined(2));
  f.sim.run();
  ASSERT_EQ(f.changes.size(), 4u);
  const TimeNs first_delay = f.changes[1].second - f.changes[0].second;
  const TimeNs second_delay = f.changes[3].second - f.changes[2].second;
  EXPECT_EQ(second_delay, 2 * first_delay);
  EXPECT_EQ(f.controller.probes(), 2);
}

TEST(QuarantineController, ScoreRecoveryReleasesWithoutProbe) {
  QuarantineFixture f;
  f.flag_node_2();
  ASSERT_TRUE(f.controller.is_quarantined(2));
  // Running work drains fast: the score clears before the probe fires.
  while (f.scorer.flagged(2)) f.scorer.record(2, util::millis(100));
  EXPECT_FALSE(f.controller.is_quarantined(2));
  f.sim.run();  // the cancelled probe must not fire
  EXPECT_EQ(f.controller.probes(), 0);
  ASSERT_EQ(f.changes.size(), 2u);
  EXPECT_EQ(f.changes[1].first, "r");
}

TEST(QuarantineController, RecordsTimeToQuarantine) {
  QuarantineFixture f;
  f.sim.at(util::millis(100), [&] {
    f.controller.note_degradation_start(2, f.sim.now());
  });
  f.sim.at(util::millis(600), [&] { f.flag_node_2(); });
  f.sim.run_until(util::millis(700));
  EXPECT_TRUE(f.controller.is_quarantined(2));
  EXPECT_NEAR(f.controller.mean_time_to_quarantine_ms(), 500.0, 1e-6);
  f.sim.run();
}

TEST(QuarantineController, NoTimeToQuarantineWithoutKnownStart) {
  QuarantineFixture f;
  f.flag_node_2();
  EXPECT_EQ(f.controller.mean_time_to_quarantine_ms(), -1.0);
  f.sim.run();
}

// -------------------------------------------------------------- wiring

TEST(GrayWiring, TaskSchedulerQuarantineBlocksAssignment) {
  dataflow::TaskScheduler sched(0);
  sched.add_executor(5, 2);
  sched.set_node_quarantined(5, true);
  EXPECT_TRUE(sched.node_quarantined(5));
  sched.enqueue(1, {}, 0);
  EXPECT_TRUE(sched.assign(0).empty());
  sched.set_node_quarantined(5, false);
  const auto assignments = sched.assign(0);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(sched.executor_node(assignments[0].executor), 5);
}

TEST(GrayWiring, OrchestratorQuarantineDrainsAndRejoins) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(1, 0, 0);
  orch::Orchestrator orch(sim, cluster,
                          orch::SchedulingPolicy::spreading(cluster));
  orch::PodSpec spec;
  spec.name = "svc";
  spec.request = cluster::cpu_mem(1000, util::kGiB);
  const auto running = orch.submit(spec, /*duration=*/-1);
  sim.run();
  EXPECT_EQ(orch.pod(running).phase, orch::PodPhase::kRunning);

  orch.quarantine(0);
  EXPECT_TRUE(orch.is_quarantined(0));
  EXPECT_FALSE(orch.is_cordoned(0));  // distinct mechanisms
  // Draining: the running pod keeps running (unlike fail_node).
  EXPECT_EQ(orch.pod(running).phase, orch::PodPhase::kRunning);
  // New pods can't land on the quarantined node.
  spec.name = "pending";
  const auto waiting = orch.submit(spec, util::seconds(1));
  sim.run();
  EXPECT_EQ(orch.pod(waiting).phase, orch::PodPhase::kPending);

  orch.unquarantine(0);
  orch.schedule_now();
  sim.run();
  EXPECT_EQ(orch.pod(waiting).phase, orch::PodPhase::kSucceeded);
}

TEST(GrayWiring, NicDegradationSlowsTransfersAndRestores) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(4, 0, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  GrayInjector gray(sim);
  connect(gray, fabric);

  const util::Bytes bytes = 125 * util::kMiB;
  const double solo_s =
      static_cast<double>(bytes) / topology.config().host_link_bytes_per_s;

  NicDegradation nic;
  nic.bandwidth_factor = 0.5;
  nic.loss = 0.2;  // capacity factor 0.4 -> 2.5x slower
  gray.schedule_nic_degradation(0, nic, 0, util::seconds(30));

  TimeNs degraded_done = -1;
  fabric.transfer(0, 2, bytes, [&] { degraded_done = sim.now(); });
  sim.run_until(util::seconds(30));
  ASSERT_GT(degraded_done, 0);
  EXPECT_NEAR(util::to_seconds(degraded_done), solo_s / 0.4,
              0.02 * solo_s / 0.4 + 1e-3);

  sim.run();  // degradation clears
  const TimeNs start = sim.now();
  TimeNs healthy_done = -1;
  fabric.transfer(0, 2, bytes, [&] { healthy_done = sim.now(); });
  sim.run();
  ASSERT_GT(healthy_done, 0);
  EXPECT_NEAR(util::to_seconds(healthy_done - start), solo_s,
              0.02 * solo_s + 1e-3);
}

TEST(GrayWiring, NicExtraLatencyDelaysTransfers) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(4, 0, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  GrayInjector gray(sim);
  connect(gray, fabric);

  NicDegradation nic;
  nic.extra_latency = util::millis(5);
  gray.schedule_nic_degradation(0, nic, 0, util::seconds(30));
  sim.run_until(util::millis(1));  // degradation is applied
  const TimeNs start = sim.now();
  TimeNs done = -1;
  fabric.transfer(0, 2, 0, [&] { done = sim.now(); });
  sim.run_until(util::seconds(30));
  EXPECT_EQ(done - start, topology.latency(0, 2) + util::millis(5));
  sim.run();
}

TEST(GrayWiring, EngineSlowdownStretchesTaskServiceTime) {
  auto run_once = [](double factor) {
    sim::Simulation sim;
    auto cluster = cluster::make_testbed(2, 2, 0);
    net::Topology topology(cluster);
    net::Fabric fabric(sim, topology);
    storage::IoSubsystem io(sim, cluster);
    storage::ObjectStore store(sim, cluster, fabric, io,
                               cluster.nodes_with_label("role=storage"));
    storage::DatasetCatalog catalog(store);
    catalog.define(storage::DatasetSpec{"in", 4, 64 * util::kMiB});
    catalog.preload("in", /*warm_cache=*/true);
    dataflow::DataflowConfig config;
    config.locality_wait = 0;
    dataflow::DataflowEngine engine(sim, cluster, fabric, io, catalog,
                                    config);
    GrayInjector gray(sim);
    connect(gray, engine);
    if (factor > 1.0) {
      for (auto node : cluster.nodes_with_label("role=compute")) {
        gray.schedule_slow_node(node, factor, factor, 0, util::seconds(600));
      }
    }
    dataflow::LogicalPlan plan;
    plan.add_sink(plan.add_map(plan.add_source("in"), "crunch", 1.0, 20.0),
                  "out");
    std::vector<dataflow::ExecutorSpec> execs;
    for (auto node : cluster.nodes_with_label("role=compute")) {
      execs.push_back(dataflow::ExecutorSpec{node, 2});
    }
    dataflow::JobStats stats;
    engine.run(plan, execs,
               [&](const dataflow::JobStats& s) { stats = s; });
    sim.run_until(util::seconds(600));
    return stats.duration;
  };
  const TimeNs healthy = run_once(1.0);
  const TimeNs slowed = run_once(4.0);
  ASSERT_GT(healthy, 0);
  // Compute-dominated plan on a uniformly 4x-slowed cluster: the job
  // takes materially longer (not necessarily exactly 4x — I/O is not
  // slowed).
  EXPECT_GT(slowed, 2 * healthy);
}

TEST(GrayWiring, EngineFeedsScorerThroughTaskObserver) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(4, 2, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  storage::IoSubsystem io(sim, cluster);
  storage::ObjectStore store(sim, cluster, fabric, io,
                             cluster.nodes_with_label("role=storage"));
  storage::DatasetCatalog catalog(store);
  catalog.define(storage::DatasetSpec{"in", 16, 64 * util::kMiB});
  catalog.preload("in", /*warm_cache=*/true);
  dataflow::DataflowConfig config;
  config.locality_wait = 0;
  dataflow::DataflowEngine engine(sim, cluster, fabric, io, catalog, config);
  HealthScorer scorer(sim, fast_config());
  connect(engine, scorer);
  dataflow::LogicalPlan plan;
  plan.add_sink(plan.add_map(plan.add_source("in"), "m", 1.0, 1.0), "out");
  std::vector<dataflow::ExecutorSpec> execs;
  for (auto node : cluster.nodes_with_label("role=compute")) {
    execs.push_back(dataflow::ExecutorSpec{node, 2});
  }
  engine.run(plan, execs, [](const dataflow::JobStats&) {});
  sim.run();
  int sampled_nodes = 0;
  for (auto node : cluster.nodes_with_label("role=compute")) {
    if (scorer.samples(node) > 0) ++sampled_nodes;
  }
  EXPECT_GE(sampled_nodes, 2);
}

}  // namespace
}  // namespace evolve::fault
