#include "trace/tracer.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "trace/critical_path.hpp"
#include "trace/export.hpp"
#include "util/json.hpp"
#include "workloads/ml.hpp"
#include "workloads/tabular.hpp"

namespace evolve::trace {
namespace {

// ---------------------------------------------------------------------
// Tracer core invariants
// ---------------------------------------------------------------------

TEST(Tracer, SpansNestAndTimestamp) {
  sim::Simulation sim;
  Tracer tracer(sim);
  SpanId outer = kNoSpan, inner = kNoSpan;
  sim.at(10, [&] { outer = tracer.begin(Layer::kWorkflow, "outer"); });
  sim.at(20, [&] { inner = tracer.begin(Layer::kDataflow, "inner", outer); });
  sim.at(30, [&] { tracer.end(inner); });
  sim.at(50, [&] { tracer.end(outer); });
  sim.run();

  ASSERT_EQ(tracer.spans().size(), 2u);
  const Span& o = tracer.span(outer);
  const Span& i = tracer.span(inner);
  EXPECT_EQ(o.start, 10);
  EXPECT_EQ(o.end, 50);
  EXPECT_EQ(i.parent, outer);
  EXPECT_EQ(i.start, 20);
  EXPECT_EQ(i.end, 30);
  EXPECT_GE(i.start, o.start);  // children start within the parent
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(Tracer, ContextStackAdoptsParent) {
  sim::Simulation sim;
  Tracer tracer(sim);
  const SpanId top = tracer.begin(Layer::kWorkflow, "top");
  SpanId adopted = kNoSpan, explicit_root = kNoSpan;
  {
    ScopedContext ctx(&tracer, top);
    adopted = tracer.begin(Layer::kStorage, "adopted");
    // An explicit parent wins over the stack.
    explicit_root = tracer.begin(Layer::kNetwork, "nested", adopted);
  }
  EXPECT_EQ(tracer.span(adopted).parent, top);
  EXPECT_EQ(tracer.span(explicit_root).parent, adopted);
  // Outside the scope the stack is empty again: new spans are roots.
  const SpanId root = tracer.begin(Layer::kHpc, "root");
  EXPECT_EQ(tracer.span(root).parent, kNoSpan);
}

TEST(Tracer, EndIsIdempotentAndJobTaskInherit) {
  sim::Simulation sim;
  Tracer tracer(sim);
  const SpanId job = tracer.begin(Layer::kDataflow, "job");
  tracer.set_job(job, 7);
  tracer.set_task(job, 3);
  const SpanId child = tracer.begin(Layer::kShuffle, "child", job);
  EXPECT_EQ(tracer.span(child).job, 7);
  EXPECT_EQ(tracer.span(child).task, 3);

  sim.at(5, [&] { tracer.end(child); });
  sim.at(9, [&] { tracer.end(child); });  // second end must not move it
  sim.run();
  EXPECT_EQ(tracer.span(child).end, 5);
  tracer.end(kNoSpan);  // no-op, must not crash
}

TEST(Tracer, CloseOpenSpansSweepsLeftovers) {
  sim::Simulation sim;
  Tracer tracer(sim);
  const SpanId a = tracer.begin(Layer::kNetwork, "a");
  const SpanId b = tracer.begin(Layer::kNetwork, "b");
  sim.at(42, [&] { tracer.end(a); });
  sim.run();
  EXPECT_EQ(tracer.open_spans(), 1u);
  tracer.close_open_spans();
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_EQ(tracer.span(b).end, 42);  // closed at the drained clock
}

// ---------------------------------------------------------------------
// Critical path: hand-built tree with known attribution
// ---------------------------------------------------------------------

TEST(CriticalPath, LastFinisherAttributionOnKnownTree) {
  sim::Simulation sim;
  Tracer tracer(sim);
  SpanId root = kNoSpan, a = kNoSpan, b = kNoSpan, b1 = kNoSpan;
  sim.at(0, [&] { root = tracer.begin(Layer::kWorkflow, "root"); });
  sim.at(10, [&] { a = tracer.begin(Layer::kScheduler, "a", root); });
  sim.at(30, [&] { b = tracer.begin(Layer::kDataflow, "b", root); });
  sim.at(40, [&] { tracer.end(a); });
  sim.at(50, [&] { b1 = tracer.begin(Layer::kNetwork, "b1", b); });
  sim.at(60, [&] { tracer.end(b1); });
  sim.at(80, [&] { tracer.end(b); });
  sim.at(100, [&] { tracer.end(root); });
  sim.run();

  const CriticalPath path = critical_path(tracer, root);
  EXPECT_EQ(path.total, 100);
  // Walking back from t=100: [80,100] no child ran -> root's layer.
  // B was the last finisher before that: [30,80] minus B1's [50,60].
  // A covers [10,30] (it overlapped B only before B started). [0,10]
  // nothing ran -> root again.
  EXPECT_EQ(path.by_layer[static_cast<int>(Layer::kWorkflow)], 30);
  EXPECT_EQ(path.by_layer[static_cast<int>(Layer::kScheduler)], 20);
  EXPECT_EQ(path.by_layer[static_cast<int>(Layer::kDataflow)], 40);
  EXPECT_EQ(path.by_layer[static_cast<int>(Layer::kNetwork)], 10);

  // Segments partition [0, 100]: ordered, contiguous, gap-free.
  ASSERT_FALSE(path.segments.empty());
  EXPECT_EQ(path.segments.front().start, 0);
  EXPECT_EQ(path.segments.back().end, 100);
  util::TimeNs covered = 0;
  for (std::size_t s = 0; s < path.segments.size(); ++s) {
    EXPECT_LT(path.segments[s].start, path.segments[s].end);
    if (s > 0) {
      EXPECT_EQ(path.segments[s].start, path.segments[s - 1].end);
    }
    covered += path.segments[s].duration();
  }
  EXPECT_EQ(covered, path.total);
}

TEST(CriticalPath, LayerSumsEqualTotalAlways) {
  sim::Simulation sim;
  Tracer tracer(sim);
  SpanId root = kNoSpan;
  sim.at(0, [&] { root = tracer.begin(Layer::kWorkflow, "root"); });
  // An open child (never ended) must clamp to the root's end, not break
  // the partition.
  sim.at(5, [&] { tracer.begin(Layer::kStorage, "orphan", root); });
  sim.at(25, [&] { tracer.end(root); });
  sim.run();

  const CriticalPath path = critical_path(tracer, root);
  const util::TimeNs sum = std::accumulate(
      path.by_layer, path.by_layer + kLayerCount, util::TimeNs{0});
  EXPECT_EQ(sum, path.total);
  EXPECT_EQ(path.by_layer[static_cast<int>(Layer::kWorkflow)], 5);
  EXPECT_EQ(path.by_layer[static_cast<int>(Layer::kStorage)], 20);
}

// ---------------------------------------------------------------------
// End to end: a traced platform workflow
// ---------------------------------------------------------------------

workflow::Workflow small_pipeline() {
  workflow::Workflow wf("traced");
  wf.add(workflow::dataflow_step(
      "featurize", workloads::featurize("samples", "features"), 2, 2));
  auto train = workflow::hpc_step(
      "train", workloads::sgd_program(workloads::SgdModel{.epochs = 2}, 4),
      4);
  train.depends_on = {"featurize"};
  wf.add(train);
  auto score = workflow::accel_step("score", "dnn-infer", util::seconds(1));
  score.depends_on = {"train"};
  wf.add(score);
  return wf;
}

struct PipelineOutcome {
  workflow::WorkflowResult result;
  std::vector<Span> spans;  // empty when untraced
};

PipelineOutcome run_pipeline(bool traced) {
  sim::Simulation sim;
  core::Platform platform(sim);
  Tracer tracer(sim);
  if (traced) platform.set_tracer(&tracer);
  platform.catalog().define(
      storage::DatasetSpec{"samples", 8, 64 * util::kMiB});
  platform.catalog().preload("samples");
  PipelineOutcome out;
  platform.run_workflow(small_pipeline(),
                        [&](const workflow::WorkflowResult& r) {
                          out.result = r;
                        });
  sim.run();
  tracer.close_open_spans();
  // Spans copied out element-wise (the tracer's buffer is append-only
  // chunked storage, not a vector). The copies' interned `name` views die
  // with the local Tracer — callers only inspect counts/times, not names.
  out.spans.reserve(tracer.spans().size());
  for (const Span& s : tracer.spans()) out.spans.push_back(s);
  return out;
}

TEST(TracePlatform, CriticalPathSumsToEndToEndLatency) {
  sim::Simulation sim;
  core::Platform platform(sim);
  Tracer tracer(sim);
  platform.set_tracer(&tracer);
  platform.catalog().define(
      storage::DatasetSpec{"samples", 8, 64 * util::kMiB});
  platform.catalog().preload("samples");
  workflow::WorkflowResult result;
  platform.run_workflow(small_pipeline(),
                        [&](const workflow::WorkflowResult& r) {
                          result = r;
                        });
  sim.run();
  tracer.close_open_spans();

  ASSERT_TRUE(result.success);
  // Exactly one workflow root; its critical path covers the whole run.
  SpanId wf_root = kNoSpan;
  for (SpanId root : root_spans(tracer)) {
    if (tracer.span(root).name == "wf.run") {
      EXPECT_EQ(wf_root, kNoSpan);
      wf_root = root;
    }
  }
  ASSERT_NE(wf_root, kNoSpan);
  const CriticalPath path = critical_path(tracer, wf_root);
  EXPECT_EQ(path.total, result.duration);
  const util::TimeNs sum = std::accumulate(
      path.by_layer, path.by_layer + kLayerCount, util::TimeNs{0});
  EXPECT_EQ(sum, path.total);
  // The pipeline exercised dataflow, HPC, and the accelerator.
  EXPECT_GT(path.by_layer[static_cast<int>(Layer::kHpc)], 0);
  EXPECT_GT(path.by_layer[static_cast<int>(Layer::kAccel)], 0);

  // Every span is well-formed after the sweep: closed, start <= end,
  // parents exist and start no later than the child.
  for (const Span& span : tracer.spans()) {
    EXPECT_FALSE(span.open());
    EXPECT_LE(span.start, span.end);
    if (span.parent != kNoSpan) {
      EXPECT_LE(tracer.span(span.parent).start, span.start);
    }
  }
}

TEST(TracePlatform, TracingDoesNotPerturbTheSimulation) {
  const PipelineOutcome untraced = run_pipeline(false);
  const PipelineOutcome traced = run_pipeline(true);
  ASSERT_TRUE(untraced.result.success);
  ASSERT_TRUE(traced.result.success);
  EXPECT_TRUE(untraced.spans.empty());
  EXPECT_FALSE(traced.spans.empty());
  // Identical simulated outcomes, step by step.
  EXPECT_EQ(untraced.result.duration, traced.result.duration);
  ASSERT_EQ(untraced.result.steps.size(), traced.result.steps.size());
  for (const auto& [name, step] : untraced.result.steps) {
    const auto& other = traced.result.steps.at(name);
    EXPECT_EQ(step.start_time, other.start_time) << name;
    EXPECT_EQ(step.finish_time, other.finish_time) << name;
    EXPECT_EQ(step.attempts, other.attempts) << name;
  }
}

// ---------------------------------------------------------------------
// Exporter
// ---------------------------------------------------------------------

TEST(TraceExport, ChromeTraceIsStrictJsonWithExpectedEvents) {
  sim::Simulation sim;
  core::Platform platform(sim);
  Tracer live(sim);
  platform.set_tracer(&live);
  platform.catalog().define(
      storage::DatasetSpec{"samples", 8, 64 * util::kMiB});
  platform.catalog().preload("samples");
  platform.run_workflow(small_pipeline(),
                        [](const workflow::WorkflowResult&) {});
  sim.run();
  live.close_open_spans();

  const std::string json =
      chrome_trace_json({TraceProcess{"test/pipeline", &live}});
  const util::JsonCheck check = util::validate_json(json);
  EXPECT_TRUE(check.ok) << check.error << " at offset " << check.offset;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"wf.run\""), std::string::npos);
  EXPECT_NE(json.find("\"df.job\""), std::string::npos);
  EXPECT_NE(json.find("\"mpi.allreduce\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
}

TEST(TraceExport, CriticalPathTableRowsPerJob) {
  sim::Simulation sim;
  Tracer tracer(sim);
  SpanId root = kNoSpan;
  sim.at(0, [&] { root = tracer.begin(Layer::kDataflow, "df.job"); });
  sim.at(90, [&] { tracer.end(root); });
  sim.run();
  const core::Table table = critical_path_table(
      "crit", {{"job-a", critical_path(tracer, root)},
               {"job-b", critical_path(tracer, root)}});
  EXPECT_EQ(table.rows(), 2);
}

}  // namespace
}  // namespace evolve::trace
