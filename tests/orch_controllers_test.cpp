#include "orch/controllers.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sim/simulation.hpp"
#include "util/types.hpp"

namespace evolve::orch {
namespace {

using cluster::cpu_mem;

struct CtrlFixture {
  explicit CtrlFixture(int compute = 2, OrchestratorConfig config = {})
      : cluster(cluster::make_testbed(compute, 0, 0)),
        orch(sim, cluster, SchedulingPolicy::spreading(cluster), config) {}

  sim::Simulation sim;
  cluster::Cluster cluster;
  Orchestrator orch;
};

PodSpec web_pod() {
  PodSpec spec;
  spec.name = "web";
  spec.request = cpu_mem(1000, util::kGiB);
  return spec;
}

TEST(DeploymentController, MaintainsReplicas) {
  CtrlFixture f;
  DeploymentController deploy(f.orch, "web", web_pod(), 3);
  f.sim.run();
  EXPECT_EQ(deploy.live(), 3);
  EXPECT_EQ(f.orch.running_count(), 3);
}

TEST(DeploymentController, ScaleUpAndDown) {
  CtrlFixture f;
  DeploymentController deploy(f.orch, "web", web_pod(), 2);
  f.sim.run();
  deploy.scale(5);
  f.sim.run();
  EXPECT_EQ(f.orch.running_count(), 5);
  deploy.scale(1);
  f.sim.run();
  EXPECT_EQ(f.orch.running_count(), 1);
  EXPECT_THROW(deploy.scale(-1), std::invalid_argument);
}

TEST(DeploymentController, RestartsEvictedReplica) {
  OrchestratorConfig config;
  config.enable_preemption = true;
  CtrlFixture f(1, config);
  PodSpec big = web_pod();
  big.request = cpu_mem(16000, 32 * util::kGiB);
  DeploymentController deploy(f.orch, "svc", big, 2);  // fills the node
  f.sim.run();
  EXPECT_EQ(deploy.live(), 2);
  // A high-priority pod preempts one replica; the controller recreates it
  // once the high-priority pod finishes.
  PodSpec high = web_pod();
  high.request = cpu_mem(16000, 32 * util::kGiB);
  high.priority = 100;
  f.orch.submit(high, util::seconds(1));
  f.sim.run();
  EXPECT_GT(deploy.restarts(), 0);
  EXPECT_EQ(f.orch.running_count(), 2);  // both replicas live again
}

TEST(DeploymentController, StopTerminatesAll) {
  CtrlFixture f;
  DeploymentController deploy(f.orch, "web", web_pod(), 3);
  f.sim.run();
  deploy.stop();
  f.sim.run();
  EXPECT_EQ(deploy.live(), 0);
  EXPECT_EQ(f.orch.running_count(), 0);
}

TEST(DeploymentController, ScaleDownEvictsCompromisedReplicasFirst) {
  CtrlFixture f(3);
  PodSpec pod = web_pod();
  pod.anti_affinity_group = "web";  // one replica per node
  DeploymentController deploy(f.orch, "web", pod, 3);
  f.sim.run();
  ASSERT_EQ(f.orch.running_count(), 3);
  for (cluster::NodeId n = 0; n < 3; ++n) {
    ASSERT_EQ(f.orch.node_status(n).pod_count(), 1);
  }
  f.orch.cordon(0);
  f.orch.quarantine(1);
  // Quarantined ranks worse than cordoned: node 1 loses its replica
  // first, then node 0; the healthy node keeps its replica throughout.
  deploy.scale(2);
  f.sim.run();
  EXPECT_EQ(f.orch.node_status(1).pod_count(), 0);
  EXPECT_EQ(f.orch.node_status(0).pod_count(), 1);
  deploy.scale(1);
  f.sim.run();
  EXPECT_EQ(f.orch.node_status(0).pod_count(), 0);
  EXPECT_EQ(f.orch.node_status(2).pod_count(), 1);
}

TEST(DeploymentController, HealthyScaleDownIsDeterministic) {
  CtrlFixture f(2);
  DeploymentController deploy(f.orch, "web", web_pod(), 3);
  f.sim.run();
  // All replicas healthy: the tie breaks to the lowest (oldest) pod id,
  // so repeated runs always evict the same replica.
  deploy.scale(2);
  f.sim.run();
  EXPECT_EQ(f.orch.running_count(), 2);
  EXPECT_EQ(deploy.live(), 2);
}

TEST(DeploymentController, ObserverReplaysRunningReplicas) {
  CtrlFixture f(2);
  DeploymentController deploy(f.orch, "web", web_pod(), 2);
  f.sim.run();
  std::vector<std::pair<PodId, bool>> events;
  deploy.set_replica_observer(
      [&events](PodId pod, cluster::NodeId, bool up) {
        events.emplace_back(pod, up);
      });
  // Late subscription: both running replicas replayed as `up`.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].second);
  EXPECT_TRUE(events[1].second);
  EXPECT_EQ(deploy.running(), 2);

  deploy.scale(3);
  f.sim.run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(events[2].second);
  deploy.scale(2);
  f.sim.run();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_FALSE(events[3].second);  // the evicted replica went down
  EXPECT_EQ(deploy.running(), 2);
}

TEST(DeploymentController, ObserverSeesEvictionAndRestart) {
  CtrlFixture f(3);  // a third node hosts the anti-affine replacement
  PodSpec pod = web_pod();
  pod.anti_affinity_group = "web";
  DeploymentController deploy(f.orch, "web", pod, 2);
  f.sim.run();
  int ups = 0, downs = 0;
  deploy.set_replica_observer([&](PodId, cluster::NodeId, bool up) {
    up ? ++ups : ++downs;
  });
  ASSERT_EQ(ups, 2);  // replay
  f.orch.drain(0);
  f.sim.run();
  // The drained replica went down and its replacement came up.
  EXPECT_EQ(downs, 1);
  EXPECT_EQ(ups, 3);
  EXPECT_EQ(deploy.running(), 2);
}

TEST(JobController, RunsAllCompletions) {
  CtrlFixture f;
  bool completed = false;
  JobController job(f.orch, "batch", web_pod(), /*completions=*/6,
                    /*parallelism=*/2, util::millis(100),
                    [&] { completed = true; });
  job.start();
  f.sim.run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(job.succeeded(), 6);
  EXPECT_TRUE(job.done());
}

TEST(JobController, ParallelismBoundsInFlight) {
  CtrlFixture f(1);
  // Each pod uses 10 cores on a 32-core node; parallelism 2 means at most
  // 20 cores ever used by this job.
  PodSpec spec = web_pod();
  spec.request = cpu_mem(10000, util::kGiB);
  JobController job(f.orch, "batch", spec, 4, 2, util::millis(500));
  job.start();
  double peak_cores = 0;
  // Sample allocation as the sim progresses.
  for (int t = 1; t <= 40; ++t) {
    f.sim.run_until(util::millis(t * 50));
    peak_cores = std::max(
        peak_cores,
        static_cast<double>(f.orch.node_status(0).allocated().cpu_millicores));
  }
  f.sim.run();
  EXPECT_EQ(job.succeeded(), 4);
  EXPECT_LE(peak_cores, 20000.0);
}

TEST(JobController, ValidatesArguments) {
  CtrlFixture f;
  EXPECT_THROW(JobController(f.orch, "j", web_pod(), 0, 1, 0),
               std::invalid_argument);
  EXPECT_THROW(JobController(f.orch, "j", web_pod(), 1, 0, 0),
               std::invalid_argument);
  EXPECT_THROW(JobController(f.orch, "j", web_pod(), 1, 1, -1),
               std::invalid_argument);
  JobController job(f.orch, "j", web_pod(), 1, 1, 0);
  job.start();
  EXPECT_THROW(job.start(), std::logic_error);
}

}  // namespace
}  // namespace evolve::orch
