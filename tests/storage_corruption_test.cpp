// Silent corruption and hedged reads: checksummed GETs never surface
// bit-rot, the scrubber repairs it in the background, and hedges win
// against slow replicas without leaking fabric flows.
#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/gray.hpp"
#include "fault/wiring.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"
#include "util/types.hpp"

namespace evolve::storage {
namespace {

struct CorruptionFixture {
  explicit CorruptionFixture(ObjectStoreConfig config = {}, int storage = 3)
      : cluster(cluster::make_testbed(2, storage, 0)),
        topology(cluster),
        fabric(sim, topology),
        io(sim, cluster),
        store(sim, cluster, fabric, io,
              cluster.nodes_with_label("role=storage"), config) {
    store.create_bucket("b");
  }

  void put_objects(int count, util::Bytes size = util::kMiB) {
    for (int i = 0; i < count; ++i) {
      store.put(0, {"b", "obj" + std::to_string(i)}, size, [] {});
    }
    sim.run();
  }

  // Which storage servers hold a corrupted copy of `key`.
  std::set<cluster::NodeId> corrupted_holders(const ObjectKey& key) const {
    std::set<cluster::NodeId> out;
    for (auto server : store.servers()) {
      if (store.replica_corrupted(key, server)) out.insert(server);
    }
    return out;
  }

  sim::Simulation sim;
  cluster::Cluster cluster;
  net::Topology topology;
  net::Fabric fabric;
  IoSubsystem io;
  ObjectStore store;
};

ObjectStoreConfig full_replication() {
  ObjectStoreConfig config;
  config.replicas = 3;  // with 3 servers every server holds every object
  return config;
}

TEST(Corruption, CorruptReplicaValidatesHolder) {
  CorruptionFixture f(full_replication());
  f.put_objects(1);
  const ObjectKey key{"b", "obj0"};
  const auto servers = f.store.servers();
  EXPECT_TRUE(f.store.corrupt_replica(key, servers[0]));
  EXPECT_TRUE(f.store.replica_corrupted(key, servers[0]));
  EXPECT_FALSE(f.store.corrupt_replica({"b", "missing"}, servers[0]));
  // A compute node holds no replica.
  const auto compute = f.cluster.nodes_with_label("role=compute");
  EXPECT_FALSE(f.store.corrupt_replica(key, compute[0]));
  EXPECT_EQ(f.store.corrupted_replica_count(), 1);
}

TEST(Corruption, RandomCorruptionIsDeterministicPerSeed) {
  auto corrupted_set = [](std::uint64_t seed) {
    CorruptionFixture f;
    f.put_objects(12);
    f.store.corrupt_random_replicas(seed, 8);
    std::set<std::pair<std::string, cluster::NodeId>> out;
    for (int i = 0; i < 12; ++i) {
      const ObjectKey key{"b", "obj" + std::to_string(i)};
      for (auto server : f.corrupted_holders(key)) {
        out.emplace(key.name, server);
      }
    }
    return out;
  };
  const auto a = corrupted_set(7);
  EXPECT_EQ(a, corrupted_set(7));
  EXPECT_NE(a, corrupted_set(8));
  EXPECT_FALSE(a.empty());
}

TEST(Corruption, SpareLastCleanKeepsEveryObjectRecoverable) {
  CorruptionFixture f;  // default replicas = 2
  f.put_objects(10);
  // Ask for far more corruptions than replicas exist; the spare-last-
  // clean guard must leave every object at least one clean copy.
  f.store.corrupt_random_replicas(3, 1000);
  for (int i = 0; i < 10; ++i) {
    const ObjectKey key{"b", "obj" + std::to_string(i)};
    EXPECT_LE(f.corrupted_holders(key).size(), 1u) << key.name;
  }
}

TEST(Corruption, UncheckedReadsSurfaceCorruption) {
  CorruptionFixture f(full_replication());
  f.put_objects(1);
  const ObjectKey key{"b", "obj0"};
  for (auto server : f.store.servers()) f.store.corrupt_replica(key, server);
  GetResult result;
  f.store.get(0, key, [&](const GetResult& r) { result = r; });
  f.sim.run();
  EXPECT_TRUE(result.found);
  EXPECT_TRUE(result.corrupted);
  EXPECT_EQ(f.store.corrupted_reads_surfaced(), 1);
  EXPECT_EQ(f.store.checksum_failures(), 0);
}

TEST(Corruption, ChecksummedReadFailsOverToCleanReplica) {
  ObjectStoreConfig config = full_replication();
  config.checksum_reads = true;
  CorruptionFixture f(config);
  f.put_objects(1);
  const ObjectKey key{"b", "obj0"};
  // Probe which replica this client's GETs prefer, then rot exactly
  // that copy so the next read must detect and fail over.
  GetResult probe;
  f.store.get(0, key, [&](const GetResult& r) { probe = r; });
  f.sim.run();
  ASSERT_TRUE(probe.found);
  const cluster::NodeId rotten = probe.served_by;
  ASSERT_TRUE(f.store.corrupt_replica(key, rotten));

  GetResult result;
  f.store.get(0, key, [&](const GetResult& r) { result = r; });
  f.sim.run();
  EXPECT_TRUE(result.found);
  EXPECT_FALSE(result.corrupted);
  EXPECT_NE(result.served_by, rotten);
  EXPECT_EQ(f.store.checksum_failures(), 1);
  EXPECT_EQ(f.store.corrupted_reads_surfaced(), 0);
  // The checksum failure counts as replica loss: the rotten copy is
  // dropped and repair brings the object back to full replication.
  EXPECT_EQ(f.store.corrupted_replica_count(), 0);
  EXPECT_EQ(f.store.under_replicated_objects(), 0);
}

TEST(Corruption, AllReplicasRottenReportsNotFound) {
  ObjectStoreConfig config = full_replication();
  config.checksum_reads = true;
  CorruptionFixture f(config);
  f.put_objects(1);
  const ObjectKey key{"b", "obj0"};
  for (auto server : f.store.servers()) f.store.corrupt_replica(key, server);
  GetResult result;
  result.found = true;
  f.store.get(0, key, [&](const GetResult& r) { result = r; });
  f.sim.run();
  EXPECT_FALSE(result.found);
  EXPECT_FALSE(result.corrupted);
  EXPECT_EQ(f.store.corrupted_reads_surfaced(), 0);
  // One verification failure on the replica actually read; the failover
  // then knows every remaining copy is rotten and gives up rather than
  // simulating a pointless read of each.
  EXPECT_EQ(f.store.checksum_failures(), 1);
}

TEST(Corruption, ScrubberRepairsAllRotAndDrains) {
  ObjectStoreConfig config;
  config.replicas = 2;
  config.checksum_reads = true;
  config.scrub = true;
  config.scrub_interval = util::millis(100);
  CorruptionFixture f(config);
  f.put_objects(8, 4 * util::kMiB);
  const int corrupted = f.store.corrupt_random_replicas(11, 6);
  ASSERT_GT(corrupted, 0);
  EXPECT_EQ(f.store.corrupted_replica_count(), corrupted);
  f.sim.run();  // the scrubber must let the sim drain once rot is gone
  EXPECT_EQ(f.store.corrupted_replica_count(), 0);
  EXPECT_EQ(f.store.replicas_scrubbed(), corrupted);
  EXPECT_EQ(f.store.under_replicated_objects(), 0);
  EXPECT_EQ(f.store.lost_objects(), 0);
  // No GET ever ran: scrubbing alone found and repaired the rot.
  EXPECT_EQ(f.store.corrupted_reads_surfaced(), 0);
}

TEST(HedgedReads, AccountingBalancesAndFlowsDrain) {
  ObjectStoreConfig config;
  config.replicas = 2;
  config.hedged_reads = true;
  config.hedge_min_delay = util::millis(1);
  CorruptionFixture f(config);
  f.put_objects(6, 4 * util::kMiB);
  int completed = 0;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 6; ++i) {
      f.sim.after(util::millis(5) * round, [&f, &completed, i] {
        f.store.get(1, {"b", "obj" + std::to_string(i)},
                    [&](const GetResult& r) {
                      EXPECT_TRUE(r.found);
                      EXPECT_FALSE(r.corrupted);
                      ++completed;
                    });
      });
    }
  }
  f.sim.run();
  EXPECT_EQ(completed, 24);
  EXPECT_GT(f.store.hedges_launched(), 0);
  // Every decided race cancels exactly its losing branch.
  EXPECT_EQ(f.store.hedges_cancelled(), f.store.hedges_launched());
  // Cancelled hedge branches must not leak in-flight fabric flows.
  EXPECT_EQ(f.fabric.stats().flows_in_flight, 0);
}

TEST(HedgedReads, HedgeWinsAgainstDegradedPrimary) {
  ObjectStoreConfig config;
  config.replicas = 2;
  config.hedged_reads = true;
  config.hedge_min_delay = util::millis(1);
  CorruptionFixture f(config, /*storage=*/4);
  fault::GrayInjector gray(f.sim);
  fault::connect(gray, f.fabric);
  f.put_objects(8, 8 * util::kMiB);
  // Starve one storage server's NIC; hedges re-route GETs whose primary
  // sits behind it.
  fault::NicDegradation nic;
  nic.bandwidth_factor = 0.05;
  gray.schedule_nic_degradation(f.store.servers()[0], nic, f.sim.now(),
                                util::seconds(120));
  int completed = 0;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 8; ++i) {
      f.sim.after(util::millis(3) * round, [&f, &completed, i] {
        f.store.get(0, {"b", "obj" + std::to_string(i)},
                    [&](const GetResult& r) {
                      EXPECT_TRUE(r.found);
                      ++completed;
                    });
      });
    }
  }
  f.sim.run_until(util::seconds(120));
  EXPECT_EQ(completed, 64);
  EXPECT_GT(f.store.hedge_wins(), 0);
  EXPECT_GT(f.store.hedge_wasted_bytes(), 0);
  EXPECT_EQ(f.fabric.stats().flows_in_flight, 0);
  f.sim.run();
}

TEST(Corruption, OverwriteForgetsStaleRot) {
  CorruptionFixture f(full_replication());
  f.put_objects(1);
  const ObjectKey key{"b", "obj0"};
  f.store.corrupt_replica(key, f.store.servers()[0]);
  ASSERT_EQ(f.store.corrupted_replica_count(), 1);
  f.store.put(0, key, 2 * util::kMiB, [] {});  // fresh bytes overwrite rot
  f.sim.run();
  EXPECT_EQ(f.store.corrupted_replica_count(), 0);
  f.store.corrupt_replica(key, f.store.servers()[0]);
  f.store.remove(0, key, [] {});
  f.sim.run();
  EXPECT_EQ(f.store.corrupted_replica_count(), 0);
}

}  // namespace
}  // namespace evolve::storage
