// Randomized kill/restore soak: 100 seeds of MTBF/MTTR churn over a
// small converged cluster, then conservation invariants after the fault
// process drains — no leaked pods, no stuck allocations, durable bytes
// consistent with live replica metadata, nothing left under-replicated.
#include <gtest/gtest.h>

#include <string>

#include "cluster/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "fault/wiring.hpp"
#include "net/fabric.hpp"
#include "orch/scheduler.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"
#include "util/types.hpp"

namespace evolve {
namespace {

TEST(FaultSoak, InvariantsHoldAfterRandomChurn) {
  constexpr int kSeeds = 100;
  constexpr int kObjects = 24;
  constexpr int kPods = 24;

  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    sim::Simulation sim;
    auto cluster = cluster::make_testbed(4, 3, 0);
    net::Topology topology(cluster);
    net::Fabric fabric(sim, topology);
    storage::IoSubsystem io(sim, cluster);
    storage::ObjectStoreConfig sconfig;
    sconfig.replicas = 2;
    sconfig.repair_delay = util::millis(50);
    storage::ObjectStore store(sim, cluster, fabric, io,
                               cluster.nodes_with_label("role=storage"),
                               sconfig);
    orch::Orchestrator orch(sim, cluster,
                            orch::SchedulingPolicy::spreading(cluster));
    fault::FaultInjector injector(sim, fault::FaultInjectorConfig{seed});
    fault::connect(injector, orch);
    fault::connect(injector, store);

    store.create_bucket("soak");
    for (int i = 0; i < kObjects; ++i) {
      store.preload({"soak", "obj-" + std::to_string(i)}, 4 * util::kMiB);
    }
    for (int i = 0; i < kPods; ++i) {
      sim.at(util::millis(100) * i, [&orch, i] {
        orch::PodSpec spec;
        spec.name = "pod-" + std::to_string(i);
        spec.request = cluster::cpu_mem(2000, 4 * util::kGiB);
        orch.submit(spec, util::seconds(1));
      });
    }

    std::vector<cluster::NodeId> all_nodes;
    for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
      all_nodes.push_back(n);
    }
    injector.random_process(all_nodes, /*mtbf_s=*/8.0, /*mttr_s=*/2.0,
                            util::seconds(20));

    // Churn for the fault horizon, then let repairs and the queue drain.
    sim.run_until(util::seconds(60));
    orch.shutdown();
    sim.run();

    // Fault process drained: churn happened, every node recovered.
    EXPECT_GT(injector.failures_injected(), 0);
    EXPECT_EQ(injector.down_count(), 0);
    EXPECT_EQ(injector.failures_injected(), injector.recoveries());

    // Orchestrator: no pod still holds resources, nothing stuck queued.
    EXPECT_EQ(orch.running_count(), 0);
    EXPECT_EQ(orch.pending_count(), 0);
    for (auto node : all_nodes) {
      EXPECT_EQ(orch.node_status(node).pod_count(), 0)
          << "node " << node << " leaked pods";
      EXPECT_TRUE(orch.node_status(node).allocated().is_zero())
          << "node " << node << " leaked allocations";
    }

    // Store: durable bytes match live metadata on every server, and
    // every repairable object has been re-replicated. (Objects that lost
    // every replica are permanently gone; they must not count as
    // under-replicated.)
    for (auto server : store.servers()) {
      EXPECT_TRUE(store.server_alive(server));
      EXPECT_EQ(store.durable_bytes(server),
                store.expected_durable_bytes(server))
          << "server " << server << " durable bytes drifted";
    }
    EXPECT_EQ(store.under_replicated_objects(), 0);
    EXPECT_GE(store.lost_objects(), 0);
    EXPECT_LE(store.lost_objects(), kObjects);
  }
}

}  // namespace
}  // namespace evolve
