// Unit tests for the pure serving components: batch formation, routing
// policies, CoDel-style admission, open-loop generation, and the
// latency-aware scaling signal.
#include <gtest/gtest.h>

#include <vector>

#include "serve/admission.hpp"
#include "serve/batch.hpp"
#include "serve/generator.hpp"
#include "serve/router.hpp"
#include "serve/signal.hpp"
#include "sim/simulation.hpp"
#include "util/types.hpp"

namespace evolve::serve {
namespace {

QueuedRequest queued(RequestId id, int cls, util::TimeNs enqueued) {
  QueuedRequest q;
  q.id = id;
  q.cls = cls;
  q.enqueued = enqueued;
  return q;
}

// -- BatchFormer ------------------------------------------------------

TEST(BatchFormer, ValidatesConfig) {
  EXPECT_THROW(BatchFormer({/*max_batch=*/0, util::millis(1)}),
               std::invalid_argument);
  EXPECT_THROW(BatchFormer({1, /*max_linger=*/-1}), std::invalid_argument);
}

TEST(BatchFormer, EmptyQueueHasNothingToDo) {
  BatchFormer former({8, util::millis(1)});
  const auto plan = former.plan({}, util::millis(5));
  EXPECT_FALSE(plan.ready);
  EXPECT_EQ(plan.release_at, -1);
  EXPECT_TRUE(plan.take.empty());
}

TEST(BatchFormer, FullBatchReleasesImmediately) {
  BatchFormer former({3, util::millis(10)});
  std::deque<QueuedRequest> queue = {queued(1, 0, 0), queued(2, 0, 0),
                                     queued(3, 0, 0), queued(4, 0, 0)};
  const auto plan = former.plan(queue, 0);
  ASSERT_TRUE(plan.ready);
  EXPECT_EQ(plan.take, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(BatchFormer, ShortBatchWaitsForLingerDeadline) {
  BatchFormer former({8, util::millis(10)});
  std::deque<QueuedRequest> queue = {queued(1, 0, util::millis(2))};
  const auto early = former.plan(queue, util::millis(5));
  EXPECT_FALSE(early.ready);
  EXPECT_EQ(early.release_at, util::millis(12));
  const auto late = former.plan(queue, util::millis(12));
  ASSERT_TRUE(late.ready);
  EXPECT_EQ(late.take, (std::vector<std::size_t>{0}));
}

TEST(BatchFormer, CoalescesHeadClassOnlyPreservingPositions) {
  BatchFormer former({8, util::millis(0)});
  // Head class 7; the class-3 request in the middle keeps its slot.
  std::deque<QueuedRequest> queue = {queued(1, 7, 0), queued(2, 3, 0),
                                     queued(3, 7, 0), queued(4, 7, 0)};
  const auto plan = former.plan(queue, 0);
  ASSERT_TRUE(plan.ready);  // zero linger: always release
  EXPECT_EQ(plan.take, (std::vector<std::size_t>{0, 2, 3}));
}

TEST(BatchFormer, MaxBatchOneDisablesCoalescing) {
  BatchFormer former({1, util::millis(10)});
  std::deque<QueuedRequest> queue = {queued(1, 0, util::millis(9)),
                                     queued(2, 0, util::millis(9))};
  const auto plan = former.plan(queue, util::millis(9));
  ASSERT_TRUE(plan.ready);  // full at size 1, no linger wait
  EXPECT_EQ(plan.take, (std::vector<std::size_t>{0}));
}

// -- Router -----------------------------------------------------------

std::vector<ReplicaView> views(std::vector<std::pair<int, bool>> spec) {
  std::vector<ReplicaView> out;
  std::int64_t key = 100;
  for (const auto& [outstanding, available] : spec) {
    out.push_back({key++, outstanding, available});
  }
  return out;
}

TEST(Router, RoundRobinRotatesOverAvailable) {
  Router router(BalancePolicy::kRoundRobin);
  const auto replicas = views({{0, true}, {0, false}, {0, true}});
  EXPECT_EQ(router.pick(replicas), 0);
  EXPECT_EQ(router.pick(replicas), 2);  // skips the unavailable middle
  EXPECT_EQ(router.pick(replicas), 0);
}

TEST(Router, LeastOutstandingPicksMinDepthTieLowestKey) {
  Router router(BalancePolicy::kLeastOutstanding);
  EXPECT_EQ(router.pick(views({{5, true}, {2, true}, {9, true}})), 1);
  // Tie on depth 2: lowest key (the first) wins.
  EXPECT_EQ(router.pick(views({{2, true}, {2, true}})), 0);
  // The global minimum is unavailable: picks the best available.
  EXPECT_EQ(router.pick(views({{1, false}, {4, true}, {3, true}})), 2);
}

TEST(Router, NoAvailableReplicaReturnsMinusOne) {
  for (const auto policy :
       {BalancePolicy::kRoundRobin, BalancePolicy::kLeastOutstanding,
        BalancePolicy::kPowerOfTwo}) {
    Router router(policy);
    EXPECT_EQ(router.pick(views({{0, false}, {0, false}})), -1);
    EXPECT_EQ(router.pick({}), -1);
  }
}

TEST(Router, ExcludeForcesDistinctReplica) {
  // A hedge must not land on its primary, whatever the policy.
  for (const auto policy :
       {BalancePolicy::kRoundRobin, BalancePolicy::kLeastOutstanding,
        BalancePolicy::kPowerOfTwo}) {
    Router router(policy);
    const auto replicas = views({{0, true}, {9, true}});
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(router.pick(replicas, /*exclude=*/0), 1) << to_string(policy);
    }
    EXPECT_EQ(router.pick(views({{0, true}}), 0), -1);
  }
}

TEST(Router, PowerOfTwoPrefersShallowerOfTwoSamples) {
  // One deep replica among shallow ones: p2c picks it only when both
  // samples land on it, which the distinct-sample rule makes impossible
  // with two candidates and rare with many.
  Router router(BalancePolicy::kPowerOfTwo, /*seed=*/1234);
  const auto replicas = views({{50, true}, {0, true}, {0, true}, {0, true}});
  int deep_picks = 0;
  for (int i = 0; i < 200; ++i) {
    if (router.pick(replicas) == 0) ++deep_picks;
  }
  EXPECT_EQ(deep_picks, 0);  // the deep replica always loses its pairing
}

TEST(Router, PowerOfTwoIsSeedDeterministic) {
  const auto replicas =
      views({{3, true}, {1, true}, {4, true}, {1, true}, {5, true}});
  Router a(BalancePolicy::kPowerOfTwo, 42);
  Router b(BalancePolicy::kPowerOfTwo, 42);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.pick(replicas), b.pick(replicas));
  }
}

// -- AdmissionController ----------------------------------------------

AdmissionConfig admission_config() {
  AdmissionConfig c;
  c.enabled = true;
  c.target = util::millis(10);
  c.interval = util::millis(100);
  return c;
}

TEST(Admission, ValidatesConfig) {
  AdmissionConfig bad = admission_config();
  bad.interval = 0;
  EXPECT_THROW(AdmissionController{bad}, std::invalid_argument);
  bad = admission_config();
  bad.target = -1;
  EXPECT_THROW(AdmissionController{bad}, std::invalid_argument);
}

TEST(Admission, DisabledAlwaysAdmits) {
  AdmissionConfig config = admission_config();
  config.enabled = false;
  AdmissionController admission(config);
  for (int i = 0; i < 20; ++i) {
    admission.on_queue_delay(util::millis(i), util::seconds(1));
    EXPECT_TRUE(admission.admit(util::millis(i)));
  }
  EXPECT_EQ(admission.sheds(), 0);
}

TEST(Admission, ShedsOnlyAfterSustainedOverload) {
  AdmissionController admission(admission_config());
  // First above-target sojourn starts the clock, nothing more.
  admission.on_queue_delay(0, util::millis(50));
  EXPECT_FALSE(admission.shedding());
  EXPECT_TRUE(admission.admit(util::millis(50)));
  // Still above target but the interval has not elapsed.
  admission.on_queue_delay(util::millis(99), util::millis(50));
  EXPECT_FALSE(admission.shedding());
  // Past the interval: shedding engages.
  admission.on_queue_delay(util::millis(100), util::millis(50));
  EXPECT_TRUE(admission.shedding());
  EXPECT_FALSE(admission.admit(util::millis(100)));
}

TEST(Admission, LinearRampShrinksShedSpacing) {
  AdmissionController admission(admission_config());
  admission.on_queue_delay(0, util::millis(50));
  admission.on_queue_delay(util::millis(100), util::millis(50));
  // Shed 1 at t=100ms: next shed a full interval away.
  EXPECT_FALSE(admission.admit(util::millis(100)));
  EXPECT_TRUE(admission.admit(util::millis(150)));
  // Shed 2 at t=200ms: spacing halves to interval/2.
  EXPECT_FALSE(admission.admit(util::millis(200)));
  EXPECT_TRUE(admission.admit(util::millis(249)));
  // Shed 3 at t=250ms: spacing shrinks to interval/3.
  EXPECT_FALSE(admission.admit(util::millis(250)));
  EXPECT_TRUE(admission.admit(util::millis(283)));
  EXPECT_FALSE(admission.admit(util::millis(284)));
  EXPECT_EQ(admission.sheds(), 4);
}

TEST(Admission, OneGoodSojournEndsTheEpisode) {
  AdmissionController admission(admission_config());
  admission.on_queue_delay(0, util::millis(50));
  admission.on_queue_delay(util::millis(100), util::millis(50));
  EXPECT_FALSE(admission.admit(util::millis(100)));
  admission.on_queue_delay(util::millis(120), util::millis(1));
  EXPECT_FALSE(admission.shedding());
  EXPECT_TRUE(admission.admit(util::millis(120)));
  // Re-entering overload requires a fresh sustained interval.
  admission.on_queue_delay(util::millis(130), util::millis(50));
  EXPECT_FALSE(admission.shedding());
  admission.on_queue_delay(util::millis(230), util::millis(50));
  EXPECT_TRUE(admission.shedding());
}

// -- RequestGenerator -------------------------------------------------

GeneratorConfig generator_config() {
  GeneratorConfig c;
  c.phases = {{util::seconds(1), 200.0}};
  c.clients = {0, 1};
  c.horizon = util::seconds(1);
  c.seed = 99;
  return c;
}

TEST(Generator, ValidatesConfig) {
  sim::Simulation sim;
  auto sink = [](Request) {};
  GeneratorConfig bad = generator_config();
  bad.phases.clear();
  EXPECT_THROW(RequestGenerator(sim, bad, sink), std::invalid_argument);
  bad = generator_config();
  bad.phases = {{util::seconds(2), 100.0}, {util::seconds(1), 100.0}};
  EXPECT_THROW(RequestGenerator(sim, bad, sink), std::invalid_argument);
  bad = generator_config();
  bad.phases[0].rate_per_s = -1;
  EXPECT_THROW(RequestGenerator(sim, bad, sink), std::invalid_argument);
  bad = generator_config();
  bad.clients.clear();
  EXPECT_THROW(RequestGenerator(sim, bad, sink), std::invalid_argument);
  bad = generator_config();
  bad.horizon = 0;
  EXPECT_THROW(RequestGenerator(sim, bad, sink), std::invalid_argument);
  EXPECT_THROW(RequestGenerator(sim, generator_config(), nullptr),
               std::invalid_argument);
}

std::vector<Request> run_poisson(GeneratorConfig config) {
  sim::Simulation sim;
  std::vector<Request> out;
  RequestGenerator gen(sim, std::move(config),
                       [&out](Request r) { out.push_back(r); });
  gen.start();
  sim.run();
  return out;
}

TEST(Generator, SeedDeterminesEverything) {
  const auto a = run_poisson(generator_config());
  const auto b = run_poisson(generator_config());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 100u);  // ~200 expected
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].client, b[i].client);
    EXPECT_EQ(a[i].cls, b[i].cls);
    EXPECT_EQ(a[i].id, static_cast<RequestId>(i + 1));
  }
  auto other = generator_config();
  other.seed = 100;
  EXPECT_NE(run_poisson(other).size(), 0u);
}

TEST(Generator, PhaseRatesShapeTheArrivals) {
  GeneratorConfig config = generator_config();
  config.phases = {{util::seconds(1), 50.0}, {util::seconds(2), 500.0}};
  config.horizon = util::seconds(2);
  const auto arrivals = run_poisson(config);
  std::size_t low = 0, high = 0;
  for (const auto& r : arrivals) {
    (r.arrival < util::seconds(1) ? low : high)++;
    EXPECT_LT(r.arrival, config.horizon);
  }
  EXPECT_GT(low, 20u);         // ~50 expected
  EXPECT_GT(high, 5 * low);    // ~10x the low phase
}

TEST(Generator, ZeroRatePhaseIsSilent) {
  GeneratorConfig config = generator_config();
  config.phases = {{util::seconds(1), 0.0}, {util::seconds(2), 100.0}};
  config.horizon = util::seconds(2);
  const auto arrivals = run_poisson(config);
  ASSERT_FALSE(arrivals.empty());
  for (const auto& r : arrivals) {
    EXPECT_GE(r.arrival, util::seconds(1));
  }
}

TEST(Generator, ClassWeightsSelectClasses) {
  GeneratorConfig config = generator_config();
  config.class_weights = {0.0, 1.0};
  for (const auto& r : run_poisson(config)) {
    EXPECT_EQ(r.cls, 1);
  }
}

TEST(Generator, StopCancelsPendingArrivals) {
  sim::Simulation sim;
  std::int64_t seen = 0;
  RequestGenerator gen(sim, generator_config(),
                       [&seen](Request) { ++seen; });
  gen.start();
  sim.run_until(util::millis(100));
  const std::int64_t at_stop = seen;
  gen.stop();
  sim.run();
  EXPECT_EQ(seen, at_stop);
  EXPECT_EQ(gen.emitted(), at_stop);
}

TEST(Generator, TraceModeReplaysVerbatim) {
  sim::Simulation sim;
  std::vector<Request> trace(3);
  trace[0].arrival = util::millis(5);
  trace[0].client = 7;
  trace[0].cls = 1;
  trace[1].arrival = util::millis(5);
  trace[1].client = 8;
  trace[2].arrival = util::millis(9);
  trace[2].client = 7;
  std::vector<Request> out;
  RequestGenerator gen(sim, trace, [&out](Request r) { out.push_back(r); });
  gen.start();
  sim.run();
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].id, static_cast<RequestId>(i + 1));  // reassigned
    EXPECT_EQ(out[i].arrival, trace[i].arrival);
    EXPECT_EQ(out[i].client, trace[i].client);
    EXPECT_EQ(out[i].cls, trace[i].cls);
  }
}

TEST(Generator, TraceModeRejectsDecreasingArrivals) {
  sim::Simulation sim;
  std::vector<Request> trace(2);
  trace[0].arrival = util::millis(9);
  trace[1].arrival = util::millis(5);
  EXPECT_THROW(RequestGenerator(sim, trace, [](Request) {}),
               std::invalid_argument);
}

// -- ScalingSignal ----------------------------------------------------

ScalingSignalConfig signal_config() {
  ScalingSignalConfig c;
  c.window = util::seconds(1);
  c.delay_target = util::millis(10);
  c.max_pressure = 3.0;
  c.capacity_per_replica = 100.0;
  c.target_inflight_per_replica = 10.0;
  return c;
}

TEST(ScalingSignal, ValidatesConfig) {
  sim::Simulation sim;
  auto bad = signal_config();
  bad.window = 0;
  EXPECT_THROW(ScalingSignal(sim, bad), std::invalid_argument);
  bad = signal_config();
  bad.max_pressure = 0.5;
  EXPECT_THROW(ScalingSignal(sim, bad), std::invalid_argument);
  bad = signal_config();
  bad.capacity_per_replica = 0;
  EXPECT_THROW(ScalingSignal(sim, bad), std::invalid_argument);
}

TEST(ScalingSignal, IdleSignalIsZero) {
  sim::Simulation sim;
  ScalingSignal signal(sim, signal_config());
  EXPECT_EQ(signal.arrival_rate(), 0.0);
  EXPECT_EQ(signal.queue_delay_p99(), 0);
  EXPECT_EQ(signal.pressure(), 1.0);
  EXPECT_EQ(signal.load(), 0.0);
}

TEST(ScalingSignal, WindowedArrivalRateEvictsOldSamples) {
  sim::Simulation sim;
  ScalingSignal signal(sim, signal_config());
  for (int i = 0; i < 50; ++i) {
    sim.at(util::millis(10 * i), [&signal] { signal.on_arrival(); });
  }
  double rate_at_half = 0, rate_at_end = 0;
  sim.at(util::millis(500),
         [&] { rate_at_half = signal.arrival_rate(); });
  sim.at(util::seconds(3), [&] { rate_at_end = signal.arrival_rate(); });
  sim.run();
  // 50 arrivals in the first 500 ms: the short-history rate divides by
  // elapsed time (~100/s); 2.5 s later the window has evicted them all.
  EXPECT_NEAR(rate_at_half, 100.0, 5.0);
  EXPECT_EQ(rate_at_end, 0.0);
}

TEST(ScalingSignal, PressureInflatesDemandAndClamps) {
  sim::Simulation sim;
  ScalingSignal signal(sim, signal_config());
  sim.at(util::millis(100), [&signal] {
    for (int i = 0; i < 100; ++i) {
      signal.on_arrival();
      // p99 of the window sits at 100 ms = 10x the 10 ms target.
      signal.on_queue_delay(util::millis(100));
    }
  });
  double pressure = 0, load = 0;
  sim.at(util::millis(200), [&] {
    pressure = signal.pressure();
    load = signal.load();
  });
  sim.run_until(util::millis(300));
  EXPECT_EQ(pressure, 3.0);  // clamped at max_pressure
  // 100 arrivals over 200 ms of history = 500/s, inflated 3x.
  EXPECT_NEAR(load, 1500.0, 75.0);
}

TEST(ScalingSignal, BacklogFloorForcesLoadWithoutArrivals) {
  sim::Simulation sim;
  ScalingSignal signal(sim, signal_config());
  signal.set_inflight(40);
  // No arrivals at all: demand is 0, but 40 in flight against a target
  // of 10 per replica asks for 4 replicas' worth of capacity.
  EXPECT_EQ(signal.load(), 400.0);
  EXPECT_EQ(signal.inflight(), 40);
}

}  // namespace
}  // namespace evolve::serve
