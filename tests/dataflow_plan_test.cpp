#include "dataflow/plan.hpp"
#include "dataflow/stage.hpp"

#include <gtest/gtest.h>

namespace evolve::dataflow {
namespace {

LogicalPlan scan_filter_sink() {
  LogicalPlan plan;
  const int src = plan.add_source("events");
  const int filtered = plan.add_filter(src, "keep-errors", 0.1);
  plan.add_sink(filtered, "errors");
  return plan;
}

TEST(LogicalPlan, BuildsOperators) {
  const auto plan = scan_filter_sink();
  EXPECT_EQ(plan.size(), 3);
  EXPECT_EQ(plan.op(0).kind, OpKind::kSource);
  EXPECT_EQ(plan.op(1).kind, OpKind::kFilter);
  EXPECT_EQ(plan.op(2).kind, OpKind::kSink);
  EXPECT_NO_THROW(plan.validate());
  EXPECT_EQ(plan.sink(), 2);
}

TEST(LogicalPlan, ValidatesInputs) {
  LogicalPlan plan;
  EXPECT_THROW(plan.add_map(0, "m"), std::invalid_argument);  // no ops yet
  const int src = plan.add_source("d");
  EXPECT_THROW(plan.add_map(5, "m"), std::invalid_argument);
  EXPECT_THROW(plan.add_source(""), std::invalid_argument);
  EXPECT_THROW(plan.add_filter(src, "f", 1.5), std::invalid_argument);
  EXPECT_THROW(plan.add_map(src, "m", -1.0), std::invalid_argument);
}

TEST(LogicalPlan, SinkCannotBeConsumed) {
  LogicalPlan plan;
  const int src = plan.add_source("d");
  const int sink = plan.add_sink(src, "out");
  EXPECT_THROW(plan.add_map(sink, "m"), std::invalid_argument);
}

TEST(LogicalPlan, ValidateRejectsDanglingOperators) {
  LogicalPlan plan;
  const int src = plan.add_source("d");
  plan.add_map(src, "dangling");  // never consumed
  plan.add_sink(plan.add_map(src, "other"), "out");
  // "src" now consumed twice AND "dangling" unconsumed.
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(LogicalPlan, ValidateRequiresExactlyOneSink) {
  LogicalPlan plan;
  plan.add_source("d");
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(PhysicalPlan, NarrowChainIsOneStage) {
  const auto physical = PhysicalPlan::compile(scan_filter_sink());
  ASSERT_EQ(physical.size(), 1);
  const StageDef& stage = physical.stage(0);
  EXPECT_TRUE(stage.reads_source());
  EXPECT_TRUE(stage.writes_sink());
  EXPECT_EQ(stage.source_dataset, "events");
  EXPECT_EQ(stage.sink_dataset, "errors");
  EXPECT_EQ(stage.operators.size(), 3u);
  EXPECT_TRUE(stage.parents.empty());
}

TEST(PhysicalPlan, GroupBySplitsStages) {
  LogicalPlan plan;
  const int src = plan.add_source("events");
  const int mapped = plan.add_map(src, "extract");
  const int grouped = plan.add_group_by(mapped, "by-user", 16);
  plan.add_sink(grouped, "per-user");
  const auto physical = PhysicalPlan::compile(plan);
  ASSERT_EQ(physical.size(), 2);
  EXPECT_TRUE(physical.stage(0).reads_source());
  EXPECT_FALSE(physical.stage(0).writes_sink());
  EXPECT_EQ(physical.stage(1).parents, std::vector<int>{0});
  EXPECT_TRUE(physical.stage(1).writes_sink());
  EXPECT_EQ(physical.stage(1).requested_partitions, 16);
  EXPECT_EQ(physical.final_stage(), 1);
}

TEST(PhysicalPlan, JoinHasTwoParents) {
  LogicalPlan plan;
  const int left = plan.add_source("orders");
  const int right = plan.add_source("users");
  const int filtered = plan.add_filter(right, "active", 0.5);
  const int joined = plan.add_join(left, filtered, "orders-x-users", 8);
  plan.add_sink(joined, "enriched");
  const auto physical = PhysicalPlan::compile(plan);
  ASSERT_EQ(physical.size(), 3);
  const StageDef& join_stage = physical.stage(2);
  EXPECT_EQ(join_stage.parents.size(), 2u);
  EXPECT_FALSE(join_stage.reads_source());
  const auto children = physical.children();
  EXPECT_EQ(children[0], std::vector<int>{2});
  EXPECT_EQ(children[1], std::vector<int>{2});
  EXPECT_TRUE(children[2].empty());
}

TEST(PhysicalPlan, CostModelAggregatesChain) {
  LogicalPlan plan;
  const int src = plan.add_source("d");       // cpu 0.05, sel 1
  const int f = plan.add_filter(src, "f", 0.5, 0.2);
  const int m = plan.add_map(f, "m", 2.0, 1.0);
  plan.add_sink(m, "out");                     // cpu 0.05, sel 1
  const auto physical = PhysicalPlan::compile(plan);
  const StageDef& stage = physical.stage(0);
  // ratio = 1 * 0.5 * 2 * 1 = 1.0
  EXPECT_NEAR(stage.output_ratio, 1.0, 1e-12);
  // cpu = 0.05 + 1*0.2 + 0.5*1.0 + 1.0*0.05
  EXPECT_NEAR(stage.cpu_ns_per_byte, 0.05 + 0.2 + 0.5 + 0.05, 1e-12);
}

TEST(PhysicalPlan, DeepDagTopologicalOrder) {
  LogicalPlan plan;
  const int a = plan.add_source("a");
  const int b = plan.add_source("b");
  const int ga = plan.add_group_by(a, "ga", 4);
  const int j = plan.add_join(ga, b, "j", 4);
  const int r = plan.add_reduce_by_key(j, "r", 2);
  plan.add_sink(r, "out");
  const auto physical = PhysicalPlan::compile(plan);
  ASSERT_EQ(physical.size(), 5);
  // Parents always have smaller ids than children.
  for (const StageDef& stage : physical.stages()) {
    for (int parent : stage.parents) EXPECT_LT(parent, stage.id);
  }
  EXPECT_TRUE(physical.stage(physical.final_stage()).writes_sink());
}

TEST(OpKindHelpers, WideAndNames) {
  EXPECT_TRUE(is_wide(OpKind::kGroupBy));
  EXPECT_TRUE(is_wide(OpKind::kJoin));
  EXPECT_TRUE(is_wide(OpKind::kUnion));
  EXPECT_TRUE(is_wide(OpKind::kReduceByKey));
  EXPECT_FALSE(is_wide(OpKind::kMap));
  EXPECT_FALSE(is_wide(OpKind::kSource));
  EXPECT_STREQ(to_string(OpKind::kJoin), "join");
}

}  // namespace
}  // namespace evolve::dataflow
