#include "hpc/collectives.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace evolve::hpc {
namespace {

// Simulates a schedule symbolically: tracks which ranks hold the root's
// data (for bcast) to verify correctness independent of timing.
std::set<int> simulate_bcast(const Schedule& schedule, int p, int root) {
  std::set<int> holders = {root};
  for (const Round& round : schedule) {
    std::set<int> new_holders = holders;
    for (const Transfer& t : round.transfers) {
      EXPECT_TRUE(holders.count(t.src)) << "sender has no data yet";
      new_holders.insert(t.dst);
    }
    holders = new_holders;
  }
  (void)p;
  return holders;
}

// For reduce: tracks the set of contributions folded into each rank.
std::vector<std::set<int>> simulate_reduce(const Schedule& schedule, int p) {
  std::vector<std::set<int>> holdings(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) holdings[static_cast<std::size_t>(r)] = {r};
  for (const Round& round : schedule) {
    auto next = holdings;
    for (const Transfer& t : round.transfers) {
      for (int c : holdings[static_cast<std::size_t>(t.src)]) {
        next[static_cast<std::size_t>(t.dst)].insert(c);
      }
    }
    holdings = next;
  }
  return holdings;
}

class BcastAlgos
    : public ::testing::TestWithParam<std::tuple<int, CollectiveAlgo>> {};

TEST_P(BcastAlgos, EveryRankReceives) {
  const auto [p, algo] = GetParam();
  for (int root : {0, p / 2, p - 1}) {
    const auto schedule = bcast_schedule(p, root, 1024, algo);
    const auto holders = simulate_bcast(schedule, p, root);
    EXPECT_EQ(holders.size(), static_cast<std::size_t>(p))
        << "p=" << p << " root=" << root << " algo=" << to_string(algo);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BcastAlgos,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8, 13, 16, 32),
                       ::testing::Values(CollectiveAlgo::kLinear,
                                         CollectiveAlgo::kTree,
                                         CollectiveAlgo::kRing)));

TEST(BcastSchedule, TreeDepthIsLogarithmic) {
  EXPECT_EQ(schedule_depth(bcast_schedule(16, 0, 1, CollectiveAlgo::kTree)),
            4u);
  EXPECT_EQ(schedule_depth(bcast_schedule(17, 0, 1, CollectiveAlgo::kTree)),
            5u);
  EXPECT_EQ(schedule_depth(bcast_schedule(2, 0, 1, CollectiveAlgo::kTree)),
            1u);
}

TEST(BcastSchedule, LinearIsOneRound) {
  EXPECT_EQ(schedule_depth(bcast_schedule(16, 0, 1, CollectiveAlgo::kLinear)),
            1u);
}

TEST(BcastSchedule, SingleRankIsEmpty) {
  for (auto algo : {CollectiveAlgo::kLinear, CollectiveAlgo::kTree,
                    CollectiveAlgo::kRing, CollectiveAlgo::kRecursiveDoubling}) {
    EXPECT_TRUE(bcast_schedule(1, 0, 1024, algo).empty());
  }
}

TEST(BcastSchedule, ValidatesArgs) {
  EXPECT_THROW(bcast_schedule(0, 0, 1, CollectiveAlgo::kTree),
               std::invalid_argument);
  EXPECT_THROW(bcast_schedule(4, 4, 1, CollectiveAlgo::kTree),
               std::invalid_argument);
  EXPECT_THROW(bcast_schedule(4, -1, 1, CollectiveAlgo::kTree),
               std::invalid_argument);
  EXPECT_THROW(bcast_schedule(4, 0, -1, CollectiveAlgo::kTree),
               std::invalid_argument);
}

class ReduceAlgos
    : public ::testing::TestWithParam<std::tuple<int, CollectiveAlgo>> {};

TEST_P(ReduceAlgos, RootReceivesEveryContribution) {
  const auto [p, algo] = GetParam();
  for (int root : {0, p - 1}) {
    const auto schedule = reduce_schedule(p, root, 512, 0.1, algo);
    const auto holdings = simulate_reduce(schedule, p);
    EXPECT_EQ(holdings[static_cast<std::size_t>(root)].size(),
              static_cast<std::size_t>(p))
        << "p=" << p << " root=" << root;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ReduceAlgos,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7, 8, 16, 31),
                       ::testing::Values(CollectiveAlgo::kLinear,
                                         CollectiveAlgo::kTree)));

class AllreduceAlgos
    : public ::testing::TestWithParam<std::tuple<int, CollectiveAlgo>> {};

TEST_P(AllreduceAlgos, EveryRankHoldsFullResult) {
  const auto [p, algo] = GetParam();
  const auto schedule = allreduce_schedule(p, 1 << 20, 0.05, algo);
  // Ring moves chunks, so contribution tracking only works for the
  // whole-payload algorithms; for ring we check structure instead.
  if (algo == CollectiveAlgo::kRing) {
    if (p == 1) {
      EXPECT_TRUE(schedule.empty());
    } else {
      EXPECT_EQ(schedule_depth(schedule), static_cast<std::size_t>(2 * (p - 1)));
      for (const Round& round : schedule) {
        EXPECT_EQ(round.transfers.size(), static_cast<std::size_t>(p));
      }
    }
    return;
  }
  const auto holdings = simulate_reduce(schedule, p);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(holdings[static_cast<std::size_t>(r)].size(),
              static_cast<std::size_t>(p))
        << "rank " << r << " p=" << p << " algo=" << to_string(algo);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AllreduceAlgos,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 8, 12, 16, 33),
                       ::testing::Values(CollectiveAlgo::kLinear,
                                         CollectiveAlgo::kTree,
                                         CollectiveAlgo::kRing,
                                         CollectiveAlgo::kRecursiveDoubling)));

TEST(AllreduceSchedule, RingMovesLessDataPerLinkThanLinear) {
  const int p = 8;
  const util::Bytes bytes = 8 * 1024 * 1024;
  const auto ring = allreduce_schedule(p, bytes, 0, CollectiveAlgo::kRing);
  // Ring: per-rank send total = 2*(p-1)*bytes/p < 2*bytes.
  util::Bytes rank0_sent = 0;
  for (const Round& round : ring) {
    for (const Transfer& t : round.transfers) {
      if (t.src == 0) rank0_sent += t.bytes;
    }
  }
  EXPECT_LT(rank0_sent, 2 * bytes);
  // Linear: root receives (p-1)*bytes then sends (p-1)*bytes.
  const auto linear = allreduce_schedule(p, bytes, 0, CollectiveAlgo::kLinear);
  util::Bytes root_traffic = 0;
  for (const Round& round : linear) {
    for (const Transfer& t : round.transfers) {
      if (t.src == 0 || t.dst == 0) root_traffic += t.bytes;
    }
  }
  EXPECT_EQ(root_traffic, 2 * (p - 1) * bytes);
}

TEST(AllreduceSchedule, RecursiveDoublingDepth) {
  // Power of two: log2(p) rounds.
  EXPECT_EQ(schedule_depth(allreduce_schedule(8, 1, 0,
                                              CollectiveAlgo::kRecursiveDoubling)),
            3u);
  // Non-power-of-two adds fold-in and fold-out rounds.
  EXPECT_EQ(schedule_depth(allreduce_schedule(6, 1, 0,
                                              CollectiveAlgo::kRecursiveDoubling)),
            2u + 2u);
}

TEST(AllreduceSchedule, ComputeChargedWhenReduceCostSet) {
  const auto with = allreduce_schedule(4, 1000, 1.0, CollectiveAlgo::kTree);
  const auto without = allreduce_schedule(4, 1000, 0.0, CollectiveAlgo::kTree);
  util::TimeNs with_compute = 0, without_compute = 0;
  for (const auto& r : with) with_compute += r.compute;
  for (const auto& r : without) without_compute += r.compute;
  EXPECT_GT(with_compute, 0);
  EXPECT_EQ(without_compute, 0);
}

TEST(AllgatherSchedule, RingStructure) {
  const auto schedule = allgather_schedule(5, 100);
  EXPECT_EQ(schedule_depth(schedule), 4u);
  EXPECT_EQ(schedule_bytes(schedule), 4 * 5 * 100);
  EXPECT_TRUE(allgather_schedule(1, 100).empty());
}

TEST(BarrierSchedule, CoversAllRanksWithEmptyPayload) {
  const auto schedule = barrier_schedule(8);
  EXPECT_EQ(schedule_bytes(schedule), 0);
  const auto holders = simulate_bcast(
      Schedule(schedule.begin() + 3, schedule.end()), 8, 0);
  EXPECT_EQ(holders.size(), 8u);
  EXPECT_TRUE(barrier_schedule(1).empty());
}

TEST(ScheduleBytes, SumsTransfers) {
  Schedule schedule = {Round{{{0, 1, 10}, {1, 2, 20}}, 0},
                       Round{{{2, 0, 5}}, 0}};
  EXPECT_EQ(schedule_bytes(schedule), 35);
  EXPECT_EQ(schedule_bytes({}), 0);
}

}  // namespace
}  // namespace evolve::hpc
