#include "orch/quota.hpp"

#include <gtest/gtest.h>

#include "util/types.hpp"

namespace evolve::orch {
namespace {

using cluster::cpu_mem;

TEST(QuotaManager, UnlimitedByDefault) {
  QuotaManager quotas;
  EXPECT_TRUE(quotas.allows("anyone", cpu_mem(1'000'000, util::kGiB * 1000)));
  EXPECT_FALSE(quotas.quota("anyone").has_value());
}

TEST(QuotaManager, EnforcesLimit) {
  QuotaManager quotas;
  quotas.set_quota("t", cpu_mem(1000, util::kGiB));
  EXPECT_TRUE(quotas.allows("t", cpu_mem(1000, util::kGiB)));
  EXPECT_FALSE(quotas.allows("t", cpu_mem(1001, 0)));
  quotas.charge("t", cpu_mem(600, 0));
  EXPECT_TRUE(quotas.allows("t", cpu_mem(400, 0)));
  EXPECT_FALSE(quotas.allows("t", cpu_mem(401, 0)));
}

TEST(QuotaManager, ReleaseRestoresHeadroom) {
  QuotaManager quotas;
  quotas.set_quota("t", cpu_mem(1000, util::kGiB));
  quotas.charge("t", cpu_mem(1000, 0));
  EXPECT_FALSE(quotas.allows("t", cpu_mem(1, 0)));
  quotas.release("t", cpu_mem(1000, 0));
  EXPECT_TRUE(quotas.allows("t", cpu_mem(1000, 0)));
}

TEST(QuotaManager, ReleaseUnderflowThrows) {
  QuotaManager quotas;
  EXPECT_THROW(quotas.release("t", cpu_mem(1, 0)), std::logic_error);
  quotas.charge("t", cpu_mem(1, 0));
  EXPECT_THROW(quotas.release("t", cpu_mem(2, 0)), std::logic_error);
}

TEST(QuotaManager, ClearQuotaRemovesLimit) {
  QuotaManager quotas;
  quotas.set_quota("t", cpu_mem(1, 1));
  EXPECT_FALSE(quotas.allows("t", cpu_mem(2, 0)));
  quotas.clear_quota("t");
  EXPECT_TRUE(quotas.allows("t", cpu_mem(2, 0)));
}

TEST(QuotaManager, TenantsIndependent) {
  QuotaManager quotas;
  quotas.set_quota("a", cpu_mem(100, 0));
  quotas.charge("b", cpu_mem(1'000'000, 0));
  EXPECT_TRUE(quotas.allows("a", cpu_mem(100, 0)));
  EXPECT_EQ(quotas.usage("a"), cpu_mem(0, 0));
}

}  // namespace
}  // namespace evolve::orch
