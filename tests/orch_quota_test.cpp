#include "orch/quota.hpp"

#include <gtest/gtest.h>

#include "util/types.hpp"

namespace evolve::orch {
namespace {

using cluster::cpu_mem;

TEST(QuotaManager, UnlimitedByDefault) {
  QuotaManager quotas;
  EXPECT_TRUE(quotas.allows("anyone", cpu_mem(1'000'000, util::kGiB * 1000)));
  EXPECT_FALSE(quotas.quota("anyone").has_value());
}

TEST(QuotaManager, EnforcesLimit) {
  QuotaManager quotas;
  quotas.set_quota("t", cpu_mem(1000, util::kGiB));
  EXPECT_TRUE(quotas.allows("t", cpu_mem(1000, util::kGiB)));
  EXPECT_FALSE(quotas.allows("t", cpu_mem(1001, 0)));
  quotas.charge("t", cpu_mem(600, 0));
  EXPECT_TRUE(quotas.allows("t", cpu_mem(400, 0)));
  EXPECT_FALSE(quotas.allows("t", cpu_mem(401, 0)));
}

TEST(QuotaManager, ReleaseRestoresHeadroom) {
  QuotaManager quotas;
  quotas.set_quota("t", cpu_mem(1000, util::kGiB));
  quotas.charge("t", cpu_mem(1000, 0));
  EXPECT_FALSE(quotas.allows("t", cpu_mem(1, 0)));
  quotas.release("t", cpu_mem(1000, 0));
  EXPECT_TRUE(quotas.allows("t", cpu_mem(1000, 0)));
}

TEST(QuotaManager, ReleaseUnknownTenantIsCountedNoOp) {
  // A release for a tenant that never charged must not throw (a late
  // completion callback can outlive its tenant's accounting); it is
  // swallowed and counted for observability.
  QuotaManager quotas;
  quotas.release("t", cpu_mem(1, 0));
  EXPECT_EQ(quotas.unmatched_releases(), 1);
  EXPECT_EQ(quotas.usage("t"), cpu_mem(0, 0));
}

TEST(QuotaManager, ReleaseUnderflowThrows) {
  QuotaManager quotas;
  quotas.charge("t", cpu_mem(1, 0));
  EXPECT_THROW(quotas.release("t", cpu_mem(2, 0)), std::logic_error);
}

TEST(QuotaManager, NegativeRemainingClampsToDeny) {
  // Tightening a quota below current usage must deny all further
  // admissions (remaining clamps at zero, never goes negative) until
  // usage drains back under the limit.
  QuotaManager quotas;
  quotas.charge("t", cpu_mem(500, 0));
  quotas.set_quota("t", cpu_mem(100, util::kGiB));
  EXPECT_FALSE(quotas.allows("t", cpu_mem(1, 0)));
  // Memory headroom exists, but the CPU dimension is over-committed;
  // a request touching only memory is still admitted.
  EXPECT_TRUE(quotas.allows("t", cpu_mem(0, util::kGiB)));
  quotas.release("t", cpu_mem(450, 0));
  EXPECT_TRUE(quotas.allows("t", cpu_mem(50, 0)));
  EXPECT_FALSE(quotas.allows("t", cpu_mem(51, 0)));
}

TEST(QuotaManager, ClearQuotaRemovesLimit) {
  QuotaManager quotas;
  quotas.set_quota("t", cpu_mem(1, 1));
  EXPECT_FALSE(quotas.allows("t", cpu_mem(2, 0)));
  quotas.clear_quota("t");
  EXPECT_TRUE(quotas.allows("t", cpu_mem(2, 0)));
}

TEST(QuotaManager, TenantsIndependent) {
  QuotaManager quotas;
  quotas.set_quota("a", cpu_mem(100, 0));
  quotas.charge("b", cpu_mem(1'000'000, 0));
  EXPECT_TRUE(quotas.allows("a", cpu_mem(100, 0)));
  EXPECT_EQ(quotas.usage("a"), cpu_mem(0, 0));
}

}  // namespace
}  // namespace evolve::orch
