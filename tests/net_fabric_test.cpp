#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "sim/simulation.hpp"
#include "util/types.hpp"

namespace evolve::net {
namespace {

using util::Bytes;
using util::TimeNs;

struct FabricFixture {
  FabricFixture(int compute = 4, int racks = 2, TopologyConfig config = {})
      : cluster(cluster::make_testbed(compute, 0, 0, racks)),
        topology(cluster, config),
        fabric(sim, topology) {}

  sim::Simulation sim;
  cluster::Cluster cluster;
  Topology topology;
  Fabric fabric;
};

TEST(Fabric, SingleFlowGetsFullHostLink) {
  FabricFixture f;
  const Bytes bytes = 1250 * util::kMiB;  // 1.25e9 B/s link -> ~1.048s
  TimeNs done = -1;
  f.fabric.transfer(0, 2, bytes, [&] { done = f.sim.now(); });
  f.sim.run();
  ASSERT_GT(done, 0);
  const double expected_s =
      static_cast<double>(bytes) / f.topology.config().host_link_bytes_per_s;
  EXPECT_NEAR(util::to_seconds(done), expected_s, 0.001);
}

TEST(Fabric, ZeroByteTransferCompletesAfterLatency) {
  FabricFixture f;
  TimeNs done = -1;
  f.fabric.transfer(0, 1, 0, [&] { done = f.sim.now(); });
  f.sim.run();
  EXPECT_EQ(done, f.topology.latency(0, 1));
}

TEST(Fabric, TwoFlowsShareSenderLink) {
  FabricFixture f;
  const Bytes bytes = 125 * util::kMiB;
  std::vector<TimeNs> done;
  // Two flows from node 0 to two different same-rack receivers share 0's
  // uplink and each should get half the bandwidth.
  f.fabric.transfer(0, 2, bytes, [&] { done.push_back(f.sim.now()); });
  f.fabric.transfer(0, 2, bytes, [&] { done.push_back(f.sim.now()); });
  f.sim.run();
  ASSERT_EQ(done.size(), 2u);
  const double solo_s =
      static_cast<double>(bytes) / f.topology.config().host_link_bytes_per_s;
  EXPECT_NEAR(util::to_seconds(done.back()), 2 * solo_s, 0.01 * 2 * solo_s + 1e-4);
}

TEST(Fabric, DisjointFlowsDoNotInterfere) {
  FabricFixture f;
  const Bytes bytes = 125 * util::kMiB;
  std::vector<TimeNs> done;
  f.fabric.transfer(0, 2, bytes, [&] { done.push_back(f.sim.now()); });
  f.fabric.transfer(1, 3, bytes, [&] { done.push_back(f.sim.now()); });
  f.sim.run();
  ASSERT_EQ(done.size(), 2u);
  const double solo_s =
      static_cast<double>(bytes) / f.topology.config().host_link_bytes_per_s;
  for (TimeNs t : done) {
    EXPECT_NEAR(util::to_seconds(t), solo_s, 0.01 * solo_s + 1e-4);
  }
}

TEST(Fabric, TorUplinkBottlenecksCrossRackFlows) {
  // 8 hosts per rack; every rack-0 host sends cross-rack simultaneously.
  FabricFixture f(16, 2);
  const Bytes bytes = 125 * util::kMiB;
  int completed = 0;
  // Hosts 0,2,4,..,14 are rack 0; 1,3,..,15 rack 1 (round-robin layout).
  for (int i = 0; i < 8; ++i) {
    f.fabric.transfer(2 * i, 2 * i + 1, bytes, [&] { ++completed; });
  }
  f.sim.run();
  EXPECT_EQ(completed, 8);
  // 8 flows over a 5e9 B/s uplink: aggregate limited to uplink capacity.
  const double expected_s = 8.0 * static_cast<double>(bytes) /
                            f.topology.config().tor_uplink_bytes_per_s;
  EXPECT_NEAR(util::to_seconds(f.sim.now()), expected_s,
              0.02 * expected_s + 1e-3);
}

TEST(Fabric, LoopbackUsesMemoryBandwidth) {
  FabricFixture f;
  const Bytes bytes = 1600 * util::kMiB;
  TimeNs done = -1;
  f.fabric.transfer(1, 1, bytes, [&] { done = f.sim.now(); });
  f.sim.run();
  const double expected_s =
      static_cast<double>(bytes) / f.topology.config().loopback_bytes_per_s;
  EXPECT_NEAR(util::to_seconds(done), expected_s, 0.01 * expected_s + 1e-4);
}

TEST(Fabric, CancelPreventsCompletion) {
  FabricFixture f;
  bool fired = false;
  const FlowId id = f.fabric.transfer(0, 2, util::kGiB, [&] { fired = true; });
  EXPECT_TRUE(f.fabric.cancel(id));
  EXPECT_FALSE(f.fabric.cancel(id));
  f.sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(f.fabric.active_flows(), 0);
}

TEST(Fabric, CancelFreesBandwidthForSurvivor) {
  FabricFixture f;
  const Bytes bytes = 125 * util::kMiB;
  TimeNs done = -1;
  f.fabric.transfer(0, 2, bytes, [&] { done = f.sim.now(); });
  const FlowId victim = f.fabric.transfer(0, 2, 100 * util::kGiB, [] {});
  // Cancel the victim halfway through the survivor's solo time.
  const double solo_s =
      static_cast<double>(bytes) / f.topology.config().host_link_bytes_per_s;
  f.sim.after(util::seconds(solo_s / 2), [&] { f.fabric.cancel(victim); });
  f.sim.run();
  // Survivor: a quarter of its bytes at half rate during [0, solo/2], the
  // remaining 3/4 at full rate (3/4 solo) -> 1.25x solo total.
  EXPECT_NEAR(util::to_seconds(done), 1.25 * solo_s, 0.02 * solo_s + 1e-4);
}

TEST(Fabric, LateFlowSlowsEarlyFlow) {
  FabricFixture f;
  const Bytes bytes = 125 * util::kMiB;
  TimeNs done_first = -1;
  f.fabric.transfer(0, 2, bytes, [&] { done_first = f.sim.now(); });
  const double solo_s =
      static_cast<double>(bytes) / f.topology.config().host_link_bytes_per_s;
  f.sim.after(util::seconds(solo_s / 2), [&] {
    f.fabric.transfer(0, 2, 10 * bytes, [] {});
  });
  f.sim.run();
  // First flow: half at full rate, half at half rate -> 1.5x solo.
  EXPECT_NEAR(util::to_seconds(done_first), 1.5 * solo_s,
              0.02 * solo_s + 1e-4);
}

TEST(Fabric, StatsCount) {
  FabricFixture f;
  f.fabric.transfer(0, 2, 1000, [] {});
  f.fabric.transfer(0, 1, 0, [] {});
  f.sim.run();
  EXPECT_EQ(f.fabric.stats().flows_started, 2);
  EXPECT_EQ(f.fabric.stats().flows_completed, 2);
  EXPECT_EQ(f.fabric.stats().bytes_delivered, 1000);
  EXPECT_EQ(f.fabric.stats().bytes_remote, 1000);
}

TEST(Fabric, LoopbackBytesAreNotRemote) {
  FabricFixture f;
  f.fabric.transfer(1, 1, 5000, [] {});
  f.fabric.transfer(0, 2, 1000, [] {});
  f.sim.run();
  EXPECT_EQ(f.fabric.stats().bytes_delivered, 6000);
  EXPECT_EQ(f.fabric.stats().bytes_remote, 1000);
}

TEST(Fabric, ChainedTransfersFromCallbacks) {
  FabricFixture f;
  int completed = 0;
  std::function<void(int)> next = [&](int remaining) {
    ++completed;
    if (remaining > 0) {
      f.fabric.transfer(0, 2, 1000, [&next, remaining] { next(remaining - 1); });
    }
  };
  f.fabric.transfer(0, 2, 1000, [&next] { next(4); });
  f.sim.run();
  EXPECT_EQ(completed, 5);
}

TEST(Fabric, RejectsNegativeBytes) {
  FabricFixture f;
  EXPECT_THROW(f.fabric.transfer(0, 1, -5, [] {}), std::invalid_argument);
}

TEST(Fabric, FlowRateVisible) {
  FabricFixture f;
  const FlowId id = f.fabric.transfer(0, 2, util::kGiB, [] {});
  EXPECT_NEAR(f.fabric.flow_rate(id), f.topology.config().host_link_bytes_per_s,
              1.0);
  EXPECT_DOUBLE_EQ(f.fabric.flow_rate(9999), 0.0);
}

// Property check across flow counts: n same-path flows take ~n * solo time.
class FabricFairness : public ::testing::TestWithParam<int> {};

TEST_P(FabricFairness, NFlowsShareProportionally) {
  FabricFixture f;
  const int n = GetParam();
  const Bytes bytes = 25 * util::kMiB;
  int completed = 0;
  TimeNs last = 0;
  for (int i = 0; i < n; ++i) {
    f.fabric.transfer(0, 2, bytes, [&] {
      ++completed;
      last = f.sim.now();
    });
  }
  f.sim.run();
  EXPECT_EQ(completed, n);
  const double solo_s =
      static_cast<double>(bytes) / f.topology.config().host_link_bytes_per_s;
  EXPECT_NEAR(util::to_seconds(last), n * solo_s, 0.02 * n * solo_s + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(FlowCounts, FabricFairness,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

}  // namespace
}  // namespace evolve::net
