#include "hpc/batch_queue.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "util/types.hpp"

namespace evolve::hpc {
namespace {

using util::seconds;

HpcJobSpec job(const std::string& name, int nodes, double runtime_s,
               double walltime_s = 0) {
  HpcJobSpec spec;
  spec.name = name;
  spec.nodes = nodes;
  spec.runtime = seconds(runtime_s);
  spec.walltime = walltime_s > 0 ? seconds(walltime_s) : spec.runtime;
  return spec;
}

TEST(BatchQueue, ValidatesConstruction) {
  sim::Simulation sim;
  EXPECT_THROW(BatchQueue(sim, 0), std::invalid_argument);
}

TEST(BatchQueue, ValidatesJobs) {
  sim::Simulation sim;
  BatchQueue queue(sim, 4);
  EXPECT_THROW(queue.submit(job("bad", 0, 1)), std::invalid_argument);
  EXPECT_THROW(queue.submit(job("toobig", 5, 1)), std::invalid_argument);
  HpcJobSpec neg = job("neg", 1, 1);
  neg.runtime = -1;
  EXPECT_THROW(queue.submit(neg), std::invalid_argument);
}

TEST(BatchQueue, RunsJobImmediatelyWhenFree) {
  sim::Simulation sim;
  BatchQueue queue(sim, 4);
  std::vector<int> assigned;
  bool finished = false;
  queue.submit(job("a", 2, 10),
               [&](JobId, const std::vector<int>& nodes) { assigned = nodes; },
               [&](JobId) { finished = true; });
  sim.run();
  EXPECT_EQ(assigned.size(), 2u);
  EXPECT_TRUE(finished);
  EXPECT_EQ(sim.now(), seconds(10));
}

TEST(BatchQueue, FcfsBlocksBehindBigHead) {
  sim::Simulation sim;
  BatchQueue queue(sim, 4, QueuePolicy::kFcfs);
  std::vector<std::string> start_order;
  auto track = [&](const std::string& name) {
    return [&start_order, name](JobId, const std::vector<int>&) {
      start_order.push_back(name);
    };
  };
  queue.submit(job("running", 3, 100), track("running"));
  queue.submit(job("bighead", 4, 10), track("bighead"));   // must wait
  queue.submit(job("small", 1, 1), track("small"));        // could fit now
  sim.run();
  ASSERT_EQ(start_order.size(), 3u);
  // Strict FCFS: small waits behind bighead even though a node is free.
  EXPECT_EQ(start_order[1], "bighead");
  EXPECT_EQ(start_order[2], "small");
}

TEST(BatchQueue, EasyBackfillsShortJob) {
  sim::Simulation sim;
  BatchQueue queue(sim, 4, QueuePolicy::kEasyBackfill);
  std::vector<std::pair<std::string, util::TimeNs>> starts;
  auto track = [&](const std::string& name) {
    return [&starts, &sim, name](JobId, const std::vector<int>&) {
      starts.emplace_back(name, sim.now());
    };
  };
  queue.submit(job("running", 3, 100), track("running"));
  queue.submit(job("bighead", 4, 10), track("bighead"));
  // Short job fits in the free node and ends before the head's shadow
  // time (t=100) -> backfills immediately.
  queue.submit(job("short", 1, 5), track("short"));
  sim.run();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[1].first, "short");
  EXPECT_LT(starts[1].second, seconds(1));
  EXPECT_GT(queue.metrics().counter("backfilled_jobs"), 0);
}

TEST(BatchQueue, BackfillNeverDelaysHead) {
  sim::Simulation sim;
  BatchQueue queue(sim, 4, QueuePolicy::kEasyBackfill);
  util::TimeNs head_start = -1;
  queue.submit(job("running", 3, 100));
  queue.submit(job("bighead", 4, 10),
               [&](JobId, const std::vector<int>&) { head_start = sim.now(); });
  // This job would end after the shadow (t=100) and uses the reserved
  // node -> must NOT backfill.
  queue.submit(job("long", 1, 500));
  sim.run();
  EXPECT_EQ(head_start, seconds(100));
}

TEST(BatchQueue, BackfillAllowedWhenSparingReservation) {
  sim::Simulation sim;
  BatchQueue queue(sim, 8, QueuePolicy::kEasyBackfill);
  // 6 nodes busy until t=50; head needs 8; two nodes free now.
  queue.submit(job("running", 6, 50));
  util::TimeNs head_start = -1, long_start = -1;
  queue.submit(job("head", 8, 10),
               [&](JobId, const std::vector<int>&) { head_start = sim.now(); });
  // Long 1-node job: runs past the shadow (t=50) BUT the shadow frees 6
  // nodes; 2 free - 1 + 6 = 7 < 8 -> would delay head. Must wait.
  queue.submit(job("long", 2, 500),
               [&](JobId, const std::vector<int>&) { long_start = sim.now(); });
  sim.run();
  EXPECT_EQ(head_start, seconds(50));
  EXPECT_GE(long_start, head_start);
}

TEST(BatchQueue, WaitTimesRecorded) {
  sim::Simulation sim;
  BatchQueue queue(sim, 2);
  queue.submit(job("a", 2, 10));
  queue.submit(job("b", 2, 10));
  sim.run();
  const auto& hist = queue.metrics().histogram("job_wait_s");
  EXPECT_EQ(hist.count(), 2);
  EXPECT_GE(hist.max(), 10);
}

TEST(BatchQueue, UtilizationReflectsLoad) {
  sim::Simulation sim;
  BatchQueue queue(sim, 4);
  queue.submit(job("half", 2, 10));
  sim.run();
  EXPECT_NEAR(queue.utilization(), 0.5, 0.01);
}

TEST(BatchQueue, FreeNodesRestoredAfterCompletion) {
  sim::Simulation sim;
  BatchQueue queue(sim, 4);
  queue.submit(job("a", 4, 1));
  sim.run();
  EXPECT_EQ(queue.free_nodes(), 4);
  EXPECT_EQ(queue.running_jobs(), 0);
  EXPECT_EQ(queue.queued_jobs(), 0);
}

TEST(BatchQueue, PoolLimitHoldsGangWithoutBlockingOthers) {
  sim::Simulation sim;
  BatchQueue queue(sim, 4);
  orch::PoolTree tree;
  tree.set_capacity(cluster::cpu_mem(4000, 0));
  tree.add_pool({.name = "a", .limit = cluster::cpu_mem(2000, 0)});
  tree.add_pool({.name = "b"});
  queue.set_pool_tree(&tree, cluster::cpu_mem(1000, 0));

  auto tenant_job = [](const std::string& name, const std::string& tenant,
                       int nodes, double runtime_s) {
    HpcJobSpec spec = job(name, nodes, runtime_s);
    spec.tenant = tenant;
    return spec;
  };
  // Tenant a floods three 1-node jobs but is capped at 2 nodes; its
  // third job is held back without blocking tenant b behind it.
  std::vector<util::TimeNs> starts(4, -1);
  auto at = [&](std::size_t i) {
    return [&starts, i, &sim](JobId, const std::vector<int>&) {
      starts[i] = sim.now();
    };
  };
  queue.submit(tenant_job("a1", "a", 1, 10), at(0));
  queue.submit(tenant_job("a2", "a", 1, 10), at(1));
  queue.submit(tenant_job("a3", "a", 1, 10), at(2));
  queue.submit(tenant_job("b1", "b", 1, 1), at(3));
  sim.run();
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], 0);
  EXPECT_GE(starts[2], seconds(10));  // waited for a's usage to drain
  EXPECT_EQ(starts[3], 0);            // b sailed past the held gang
}

TEST(BatchQueue, FairOrderRunsStarvedTenantFirst) {
  sim::Simulation sim;
  BatchQueue queue(sim, 4);
  orch::PoolTree tree;
  tree.set_capacity(cluster::cpu_mem(4000, 0));
  queue.set_pool_tree(&tree, cluster::cpu_mem(1000, 0));

  auto tenant_job = [](const std::string& name, const std::string& tenant,
                       int nodes, double runtime_s) {
    HpcJobSpec spec = job(name, nodes, runtime_s);
    spec.tenant = tenant;
    return spec;
  };
  std::vector<std::string> start_order;
  auto track = [&](const std::string& name) {
    return [&start_order, name](JobId, const std::vector<int>&) {
      start_order.push_back(name);
    };
  };
  // Tenant a takes the whole machine and queues two more jobs; tenant
  // b's job arrives last but runs first once a node frees up, because
  // a is far over its share and b has none.
  for (int i = 0; i < 4; ++i) {
    queue.submit(tenant_job("a-run" + std::to_string(i), "a", 1, 2 + i));
  }
  queue.submit(tenant_job("a5", "a", 1, 1), track("a5"));
  queue.submit(tenant_job("a6", "a", 1, 1), track("a6"));
  queue.submit(tenant_job("b1", "b", 1, 1), track("b1"));
  sim.run();
  ASSERT_EQ(start_order.size(), 3u);
  EXPECT_EQ(start_order[0], "b1");
}

TEST(BatchQueue, JobStatusLifecycle) {
  sim::Simulation sim;
  BatchQueue queue(sim, 2);
  const JobId id = queue.submit(job("a", 1, 3));
  EXPECT_FALSE(queue.job(id).started);
  sim.run();
  const auto& status = queue.job(id);
  EXPECT_TRUE(status.started);
  EXPECT_TRUE(status.finished);
  EXPECT_EQ(status.finish_time - status.start_time, seconds(3));
  EXPECT_THROW(queue.job(999), std::out_of_range);
}

}  // namespace
}  // namespace evolve::hpc
