#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/report.hpp"
#include "util/backoff.hpp"

namespace evolve {
namespace {

// ---------------------------------------------------------------------
// Strict JSON validation
// ---------------------------------------------------------------------

TEST(ValidateJson, AcceptsRfc8259Documents) {
  for (const char* doc : {
           "{}",
           "[]",
           "null",
           "true",
           "-12.5e-3",
           "\"a \\\"quoted\\\" \\u00e9 string\"",
           R"({"a": [1, 2.5, -3e8], "b": {"c": null}, "d": ""})",
           "  [1, 2]  \n",
       }) {
    EXPECT_TRUE(util::validate_json(doc)) << doc;
  }
}

TEST(ValidateJson, RejectsNonJson) {
  for (const char* doc : {
           "",
           "{",
           "{\"a\": nan}",
           "{\"a\": NaN}",
           "{\"a\": inf}",
           "{\"a\": Infinity}",
           "{\"a\": -inf}",
           "[1, 2,]",     // trailing comma
           "{\"a\" 1}",   // missing colon
           "01",          // leading zero
           "1.",          // truncated fraction
           "\"unterminated",
           "\"bad \\x escape\"",
           "{} trailing",
           "'single'",
       }) {
    const util::JsonCheck check = util::validate_json(doc);
    EXPECT_FALSE(check.ok) << doc;
    EXPECT_FALSE(check.error.empty()) << doc;
  }
}

// ---------------------------------------------------------------------
// MetricsReport: non-finite doubles must still produce strict JSON
// ---------------------------------------------------------------------

TEST(MetricsReport, NonFiniteDoublesSerializeAsNull) {
  core::MetricsReport report("nonfinite");
  report.set("ok", 1.5);
  report.set("nan", std::nan(""));
  report.set("pos_inf", std::numeric_limits<double>::infinity());
  report.set("neg_inf", -std::numeric_limits<double>::infinity());
  report.set("count", std::int64_t{42});

  const std::string json = report.to_json();
  const util::JsonCheck check = util::validate_json(json);
  EXPECT_TRUE(check.ok) << check.error << " at offset " << check.offset
                        << " in " << json;
  EXPECT_NE(json.find("\"nan\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pos_inf\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"neg_inf\": null"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf,"), std::string::npos) << json;
}

TEST(MetricsReport, TypicalReportIsStrictJson) {
  core::MetricsReport report("typical");
  report.set("ratio", 0.3333333333333333);
  report.set("tiny", 1e-300);
  report.set("huge", 1e300);
  report.set("neg", -7.25);
  report.set("zero", 0.0);
  report.set("int", std::int64_t{-9007199254740993});
  const util::JsonCheck check = util::validate_json(report.to_json());
  EXPECT_TRUE(check.ok) << check.error;
}

// ---------------------------------------------------------------------
// Saturating exponential backoff (retry-path hardening)
// ---------------------------------------------------------------------

TEST(SaturatingBackoff, DoublesUntilSaturation) {
  const util::TimeNs base = util::millis(200);
  EXPECT_EQ(util::saturating_backoff(base, 1), base);
  EXPECT_EQ(util::saturating_backoff(base, 2), 2 * base);
  EXPECT_EQ(util::saturating_backoff(base, 5), 16 * base);
  // Monotone non-decreasing in the attempt count.
  util::TimeNs prev = 0;
  for (int attempt = 1; attempt <= 200; ++attempt) {
    const util::TimeNs delay = util::saturating_backoff(base, attempt);
    EXPECT_GE(delay, prev) << attempt;
    EXPECT_GT(delay, 0) << attempt;
    EXPECT_LE(delay, util::kMaxBackoff) << attempt;
    prev = delay;
  }
  EXPECT_EQ(prev, util::kMaxBackoff);
}

TEST(SaturatingBackoff, HighAttemptCountsSaturateWithoutOverflow) {
  // The old `base << (attempt - 1)` shifted past 63 bits here: signed
  // overflow (UB) that in practice produced a negative "delay in the
  // past". The saturated form must stay pinned at the cap.
  for (int attempt : {62, 64, 100, 1000, std::numeric_limits<int>::max()}) {
    EXPECT_EQ(util::saturating_backoff(1, attempt), util::kMaxBackoff);
    EXPECT_EQ(util::saturating_backoff(util::millis(200), attempt),
              util::kMaxBackoff);
  }
  // Even with the +25% jitter the retry paths add on top, the cap
  // cannot overflow a signed 64-bit time.
  EXPECT_GT(std::numeric_limits<util::TimeNs>::max() -
                util::kMaxBackoff / 4,
            util::kMaxBackoff);
}

TEST(SaturatingBackoff, DegenerateInputsAreSafe) {
  EXPECT_EQ(util::saturating_backoff(0, 5), 0);
  EXPECT_EQ(util::saturating_backoff(-10, 5), 0);
  EXPECT_EQ(util::saturating_backoff(util::millis(1), 0), 0);
  EXPECT_EQ(util::saturating_backoff(util::millis(1), -3), 0);
  // A huge base saturates immediately rather than shifting into the
  // sign bit.
  EXPECT_EQ(
      util::saturating_backoff(std::numeric_limits<util::TimeNs>::max(), 2),
      util::kMaxBackoff);
}

}  // namespace
}  // namespace evolve
