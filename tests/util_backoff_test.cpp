#include "util/backoff.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "util/types.hpp"

namespace evolve::util {
namespace {

TEST(SaturatingBackoff, DoublesFromBase) {
  EXPECT_EQ(saturating_backoff(100, 1), 100);
  EXPECT_EQ(saturating_backoff(100, 2), 200);
  EXPECT_EQ(saturating_backoff(100, 3), 400);
  EXPECT_EQ(saturating_backoff(millis(500), 4), millis(4000));
}

TEST(SaturatingBackoff, DegenerateInputsReturnZero) {
  EXPECT_EQ(saturating_backoff(0, 5), 0);
  EXPECT_EQ(saturating_backoff(-10, 5), 0);
  EXPECT_EQ(saturating_backoff(100, 0), 0);
  EXPECT_EQ(saturating_backoff(100, -1), 0);
}

TEST(SaturatingBackoff, ResultStaysWithinBaseAndCap) {
  for (TimeNs base : {TimeNs{1}, millis(1), seconds(1), kMaxBackoff / 2}) {
    for (int attempt = 1; attempt <= 128; ++attempt) {
      const TimeNs result = saturating_backoff(base, attempt);
      EXPECT_GE(result, base) << "base=" << base << " attempt=" << attempt;
      EXPECT_LE(result, kMaxBackoff)
          << "base=" << base << " attempt=" << attempt;
    }
  }
}

TEST(SaturatingBackoff, MonotoneNonDecreasingInAttempt) {
  for (TimeNs base : {TimeNs{1}, TimeNs{3}, millis(500), kMaxBackoff - 1}) {
    TimeNs prev = 0;
    for (int attempt = 1; attempt <= 200; ++attempt) {
      const TimeNs result = saturating_backoff(base, attempt);
      EXPECT_GE(result, prev) << "base=" << base << " attempt=" << attempt;
      prev = result;
    }
  }
}

TEST(SaturatingBackoff, SaturatesInsteadOfOverflowing) {
  // Past the clamped exponent the result pins to the cap — no UB, no
  // wraparound to negative values.
  const TimeNs huge = std::numeric_limits<TimeNs>::max() / 8;
  EXPECT_EQ(saturating_backoff(huge, 100), kMaxBackoff);
  EXPECT_EQ(saturating_backoff(1, 62), kMaxBackoff);
  EXPECT_EQ(saturating_backoff(1, std::numeric_limits<int>::max()),
            kMaxBackoff);
  EXPECT_EQ(saturating_backoff(kMaxBackoff, 2), kMaxBackoff);
}

}  // namespace
}  // namespace evolve::util
