#include "metrics/timeseries.hpp"

#include <gtest/gtest.h>

#include "util/types.hpp"

namespace evolve::metrics {
namespace {

using util::seconds;

TEST(TimeSeries, RecordsAndSummarizes) {
  TimeSeries ts;
  ts.record(0, 1.0);
  ts.record(10, 5.0);
  ts.record(20, 3.0);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.last(), 3.0);
  EXPECT_DOUBLE_EQ(ts.min(), 1.0);
  EXPECT_DOUBLE_EQ(ts.max(), 5.0);
}

TEST(TimeSeries, RejectsBackwardsTime) {
  TimeSeries ts;
  ts.record(10, 1.0);
  EXPECT_THROW(ts.record(5, 2.0), std::invalid_argument);
}

TEST(TimeSeries, AllowsEqualTimes) {
  TimeSeries ts;
  ts.record(10, 1.0);
  ts.record(10, 2.0);
  EXPECT_EQ(ts.size(), 2u);
}

TEST(TimeSeries, TimeWeightedMeanStepFunction) {
  TimeSeries ts;
  ts.record(0, 10.0);
  ts.record(seconds(1), 20.0);
  // 10 for 1s, 20 for 1s -> mean 15 over [0, 2s].
  EXPECT_NEAR(ts.time_weighted_mean(seconds(2)), 15.0, 1e-9);
}

TEST(TimeSeries, IntegralOfStep) {
  TimeSeries ts;
  ts.record(0, 4.0);
  ts.record(seconds(2), 0.0);
  EXPECT_NEAR(ts.integral(seconds(5)), 8.0, 1e-9);
}

TEST(TimeSeries, EmptyMeansZero) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(seconds(1)), 0.0);
  EXPECT_DOUBLE_EQ(ts.integral(seconds(1)), 0.0);
  EXPECT_DOUBLE_EQ(ts.last(), 0.0);
}

TEST(UsageTracker, TracksLevelAndPeak) {
  UsageTracker tracker(10.0);
  tracker.add(0, 4.0);
  tracker.add(seconds(1), 4.0);
  EXPECT_DOUBLE_EQ(tracker.current(), 8.0);
  EXPECT_DOUBLE_EQ(tracker.peak(), 8.0);
  tracker.add(seconds(2), -8.0);
  EXPECT_DOUBLE_EQ(tracker.current(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.peak(), 8.0);
}

TEST(UsageTracker, MeanUsageIsTimeWeighted) {
  UsageTracker tracker(10.0);
  tracker.add(0, 10.0);             // level 10 during [0, 1s)
  tracker.add(seconds(1), -10.0);   // level 0 during [1s, 2s)
  EXPECT_NEAR(tracker.mean_usage(seconds(2)), 5.0, 1e-9);
  EXPECT_NEAR(tracker.utilization(seconds(2)), 0.5, 1e-9);
}

TEST(UsageTracker, UtilizationZeroCapacity) {
  UsageTracker tracker(0.0);
  tracker.add(0, 5.0);
  EXPECT_DOUBLE_EQ(tracker.utilization(seconds(1)), 0.0);
}

TEST(UsageTracker, RejectsBackwardsTime) {
  UsageTracker tracker(1.0);
  tracker.add(10, 1.0);
  EXPECT_THROW(tracker.add(5, 1.0), std::invalid_argument);
}

TEST(UsageTracker, MeanExtendsToQueryTime) {
  UsageTracker tracker(4.0);
  tracker.add(0, 4.0);
  // Level still 4 at query time 10s even with no further samples.
  EXPECT_NEAR(tracker.mean_usage(seconds(10)), 4.0, 1e-9);
  EXPECT_NEAR(tracker.utilization(seconds(10)), 1.0, 1e-9);
}

}  // namespace
}  // namespace evolve::metrics
