#include "core/siloed.hpp"

#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "workloads/ml.hpp"
#include "workloads/mobility.hpp"
#include "workloads/tabular.hpp"

namespace evolve::core {
namespace {

PlatformConfig small_config() {
  PlatformConfig config;
  config.compute_nodes = 6;
  config.storage_nodes = 4;
  config.accel_nodes = 2;
  return config;
}

TEST(SiloedPlatform, PartitionsHardware) {
  sim::Simulation sim;
  SiloedPlatform silos(sim, small_config());
  EXPECT_EQ(silos.silo_nodes(Silo::kCloud).size(), 2u);
  EXPECT_EQ(silos.silo_nodes(Silo::kBigData).size(), 2u);
  EXPECT_EQ(silos.silo_nodes(Silo::kHpc).size(), 2u + 2u);  // + accel nodes
  EXPECT_EQ(silos.bigdata_store().servers().size(), 2u);
  EXPECT_EQ(silos.hpc_store().servers().size(), 2u);
}

TEST(SiloedPlatform, RequiresEnoughNodes) {
  sim::Simulation sim;
  PlatformConfig tiny;
  tiny.compute_nodes = 2;
  tiny.storage_nodes = 2;
  EXPECT_THROW(SiloedPlatform(sim, tiny), std::invalid_argument);
}

TEST(SiloedPlatform, StagingCopiesDataset) {
  sim::Simulation sim;
  SiloedPlatform silos(sim, small_config());
  silos.bigdata_catalog().define(
      storage::DatasetSpec{"features", 8, 64 * util::kMiB});
  silos.bigdata_catalog().preload("features");
  EXPECT_FALSE(silos.hpc_catalog().defined("features"));

  bool done = false;
  silos.stage_dataset("features", silos.hpc_catalog(), [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(silos.hpc_catalog().materialized("features"));
  EXPECT_EQ(silos.staged_bytes(), 64 * util::kMiB);
  EXPECT_EQ(silos.staging_operations(), 1);
  EXPECT_GT(sim.now(), 0);  // staging took simulated time
}

TEST(SiloedPlatform, StagingIsIdempotent) {
  sim::Simulation sim;
  SiloedPlatform silos(sim, small_config());
  silos.bigdata_catalog().define(storage::DatasetSpec{"d", 4, util::kMiB});
  silos.bigdata_catalog().preload("d");
  bool first = false, second = false;
  silos.stage_dataset("d", silos.hpc_catalog(), [&] { first = true; });
  sim.run();
  silos.stage_dataset("d", silos.hpc_catalog(), [&] { second = true; });
  sim.run();
  EXPECT_TRUE(first);
  EXPECT_TRUE(second);
  EXPECT_EQ(silos.staging_operations(), 1);  // second call was a no-op
}

TEST(SiloedPlatform, StagingUnknownDatasetThrows) {
  sim::Simulation sim;
  SiloedPlatform silos(sim, small_config());
  EXPECT_THROW(silos.stage_dataset("ghost", silos.hpc_catalog(), [] {}),
               std::invalid_argument);
}

TEST(SiloedPlatform, MobilityWorkflowRunsWithStaging) {
  sim::Simulation sim;
  SiloedPlatform silos(sim, small_config());
  workloads::MobilityScenario scenario;
  scenario.trace_bytes = 256 * util::kMiB;
  scenario.trace_partitions = 16;
  scenario.analytics_executors = 2;
  scenario.clustering_ranks = 2;
  workloads::stage_mobility_inputs(silos.bigdata_catalog(), scenario);

  workflow::WorkflowResult result;
  silos.run_workflow(workloads::mobility_pipeline(scenario),
                     [&](const workflow::WorkflowResult& r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.success);
  // The clustering step's input had to be staged into the HPC store.
  EXPECT_GT(silos.staged_bytes(), 0);
  EXPECT_TRUE(silos.hpc_catalog().materialized("route-stats"));
}

TEST(SiloedPlatform, ConvergedBeatsSiloedOnMobilityPipeline) {
  workloads::MobilityScenario scenario;
  scenario.trace_bytes = 512 * util::kMiB;
  scenario.trace_partitions = 16;
  scenario.analytics_executors = 2;
  scenario.clustering_ranks = 2;

  util::TimeNs converged_time = 0, siloed_time = 0;
  {
    sim::Simulation sim;
    Platform platform(sim, small_config());
    workloads::stage_mobility_inputs(platform.catalog(), scenario);
    platform.run_workflow(
        workloads::mobility_pipeline(scenario),
        [&](const workflow::WorkflowResult& r) {
          ASSERT_TRUE(r.success);
          converged_time = r.duration;
        });
    sim.run();
  }
  {
    sim::Simulation sim;
    SiloedPlatform silos(sim, small_config());
    workloads::stage_mobility_inputs(silos.bigdata_catalog(), scenario);
    silos.run_workflow(workloads::mobility_pipeline(scenario),
                       [&](const workflow::WorkflowResult& r) {
                         ASSERT_TRUE(r.success);
                         siloed_time = r.duration;
                       });
    sim.run();
  }
  EXPECT_GT(converged_time, 0);
  // Converged avoids the cross-silo staging copies.
  EXPECT_LT(converged_time, siloed_time);
}

TEST(SiloedPlatform, ContainerStepsRunInCloudSilo) {
  sim::Simulation sim;
  SiloedPlatform silos(sim, small_config());
  orch::PodSpec pod;
  pod.name = "web";
  pod.request = cluster::cpu_mem(1000, util::kGiB);
  workflow::Workflow wf("svc");
  wf.add(workflow::container_step("svc", pod, util::seconds(1)));
  workflow::WorkflowResult result;
  silos.run_workflow(wf, [&](const workflow::WorkflowResult& r) {
    result = r;
  });
  sim.run();
  EXPECT_TRUE(result.success);
  EXPECT_EQ(silos.orchestrator(Silo::kCloud).metrics().counter("pods_started"),
            1);
  EXPECT_EQ(
      silos.orchestrator(Silo::kBigData).metrics().counter("pods_started"),
      0);
}

}  // namespace
}  // namespace evolve::core
