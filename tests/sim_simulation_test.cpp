#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/types.hpp"

namespace evolve::sim {
namespace {

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation sim;
  util::TimeNs observed = -1;
  sim.at(100, [&] { observed = sim.now(); });
  sim.run();
  EXPECT_EQ(observed, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulation, AfterIsRelative) {
  Simulation sim;
  std::vector<util::TimeNs> times;
  sim.at(50, [&] {
    sim.after(25, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 75);
}

TEST(Simulation, RejectsPastAndNegative) {
  Simulation sim;
  sim.at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.at(5, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.after(-1, [] {}), std::invalid_argument);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.after(1, chain);
  };
  sim.after(1, chain);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(20, [&] { ++fired; });
  sim.at(30, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulation sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulation, StopHaltsRun) {
  Simulation sim;
  int fired = 0;
  sim.at(1, [&] {
    ++fired;
    sim.stop();
  });
  sim.at(2, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  int fired = 0;
  const EventId id = sim.at(10, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulation, DeferRunsAfterQueuedSameTimeEvents) {
  Simulation sim;
  std::vector<int> order;
  sim.at(5, [&] {
    sim.defer([&] { order.push_back(2); });
    order.push_back(1);
  });
  sim.at(5, [&] { order.push_back(0); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

TEST(Simulation, CountsExecutedEvents) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulation, SameTimeEventsRunInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    sim.at(42, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace evolve::sim
