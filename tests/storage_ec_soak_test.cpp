// 100-seed erasure-coding soak (ctest label: soak).
//
// Every seed drives an EC(4,2) store, rack-aware-placed across 4 racks,
// through the full correlated-failure gauntlet at once — seeded bit-rot
// with checksummed + hedged reads and scrubbing, a degraded storage NIC,
// and a whole-rack outage — against a randomized GET workload, and
// asserts the erasure-coding invariants:
//   1. no object is ever lost while at most m fragments per stripe are
//      dead (the rack cap guarantees an outage kills at most 2 of 6);
//   2. degraded reads still complete and return the correct sizes;
//   3. background rebuild restores full redundancy by the drain;
//   4. the run is deterministic, with tracing on or off.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "cluster/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "fault/gray.hpp"
#include "fault/wiring.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"
#include "trace/tracer.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace evolve::fault {
namespace {

constexpr int kObjects = 12;
constexpr int kGets = 80;
constexpr util::Bytes kObjectBytes = 3 * util::kMiB;

/// Deterministic end-of-run signature; must be identical across reruns
/// of one seed (traced or not).
using Signature = std::tuple<util::TimeNs, std::int64_t, std::int64_t,
                             std::int64_t, std::int64_t>;

Signature run_seed(std::uint64_t seed, bool traced) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               (traced ? " traced" : " untraced"));
  sim::Simulation sim;
  // 12 storage servers over 4 racks (3 per rack): the placement cap is
  // ceil(6/4) = 2 fragments per rack, so a rack outage kills at most
  // m = 2 fragments of any stripe.
  auto cluster = cluster::make_testbed(4, 12, 0, /*racks=*/4);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  storage::IoSubsystem io(sim, cluster);
  storage::ObjectStoreConfig config;
  config.redundancy = storage::Redundancy::kErasure;
  config.ec_data = 4;
  config.ec_parity = 2;
  config.hedged_reads = true;
  config.hedge_min_delay = util::millis(1);
  config.checksum_reads = true;
  config.scrub = true;
  config.scrub_interval = util::millis(20);
  config.repair_delay = util::millis(50);
  // Throttled but generous: each 3 MiB reconstruction admits in ~6ms,
  // so the bit-rot cleanup finishes well before the 400ms rack outage
  // (compounded corruption + outage could otherwise exceed m dead).
  config.rebuild_bandwidth_bytes_per_s = 512.0 * util::kMiB;
  storage::ObjectStore store(sim, cluster, fabric, io,
                             cluster.nodes_with_label("role=storage"),
                             config);
  trace::Tracer tracer(sim);
  if (traced) store.set_tracer(&tracer);
  FaultInjector injector(sim);
  connect(injector, store);
  GrayInjector gray(sim);
  connect(gray, fabric);
  connect(gray, store);

  store.create_bucket("b");
  for (int i = 0; i < kObjects; ++i) {
    store.preload({"b", "obj" + std::to_string(i)}, kObjectBytes);
  }

  util::Rng rng(seed);
  // Bit-rot strikes early (the scrubber + checksum failovers clean it
  // up well before the outage), one storage NIC crawls mid-run, and a
  // whole rack dies at 400ms and comes back at 600ms.
  gray.schedule_bitrot(util::millis(2), seed * 33 + 1, 6);
  gray.schedule_bitrot(util::millis(40), seed * 97 + 5, 6);
  NicDegradation nic;
  nic.bandwidth_factor = rng.uniform(0.1, 0.3);
  nic.extra_latency =
      util::micros(static_cast<double>(rng.uniform_int(0, 300)));
  const auto victim =
      store.servers()[static_cast<std::size_t>(rng.uniform_int(0, 11))];
  gray.schedule_nic_degradation(victim, nic, util::millis(5),
                                util::millis(250));
  const int rack = rng.uniform_int(0, 3);
  injector.schedule_rack_outage(cluster, rack, util::millis(400),
                                util::millis(200));

  const auto compute = cluster.nodes_with_label("role=compute");
  int completed = 0;
  int degraded_ok = 0;
  for (int g = 0; g < kGets; ++g) {
    const auto client =
        compute[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    const int obj = rng.uniform_int(0, kObjects - 1);
    sim.at(util::micros(static_cast<double>(rng.uniform_int(0, 900'000))),
           [&, client, obj] {
      store.get(client, {"b", "obj" + std::to_string(obj)},
                [&](const storage::GetResult& r) {
                  ++completed;
                  // Invariant 2: every GET succeeds at the right size,
                  // degraded (reconstructing through parity) or not.
                  EXPECT_TRUE(r.found);
                  EXPECT_EQ(r.size, kObjectBytes);
                  EXPECT_FALSE(r.corrupted);
                  if (r.degraded) ++degraded_ok;
                });
    });
  }
  sim.run();

  EXPECT_EQ(completed, kGets);
  // Invariant 1: the rack cap held, so the outage never exceeded m dead
  // fragments per stripe and nothing was lost.
  EXPECT_EQ(store.lost_objects(), 0);
  EXPECT_EQ(store.durability_stats().objects_lost, 0);
  EXPECT_EQ(store.corrupted_reads_surfaced(), 0);
  // Invariant 3: rebuild restored every stripe to full redundancy.
  EXPECT_EQ(store.under_replicated_objects(), 0);
  EXPECT_EQ(store.durability_stats().missing_fragments, 0);
  EXPECT_EQ(store.corrupted_replica_count(), 0);
  EXPECT_EQ(fabric.stats().flows_in_flight, 0);
  if (traced) tracer.close_open_spans();
  return Signature{sim.now(), store.metrics().counter("get_bytes"),
                   store.hedges_launched(),
                   store.metrics().counter("objects_repaired"),
                   fabric.stats().flows_started};
}

TEST(ErasureSoak, HundredSeedsSurviveRackOutagesWithoutLoss) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const Signature first = run_seed(seed, /*traced=*/false);
    // Invariant 4, every 10th seed: reruns reproduce the same simulated
    // timeline bit for bit, with observational tracing on or off.
    if (seed % 10 == 0) {
      EXPECT_EQ(run_seed(seed, /*traced=*/true), first)
          << "seed " << seed << " not deterministic under tracing";
    }
    if (::testing::Test::HasFailure()) break;  // first failing seed only
  }
}

}  // namespace
}  // namespace evolve::fault
