#include "tablet/service.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "storage/io_model.hpp"
#include "storage/object_store.hpp"
#include "tablet/balancer.hpp"
#include "tablet/shard_map.hpp"
#include "trace/tracer.hpp"

namespace evolve::tablet {
namespace {

// -- ShardMap -----------------------------------------------------------

TEST(ShardMap, SplitMergeMoveBumpEpoch) {
  ShardMap map(1000, 0);
  EXPECT_EQ(map.epoch(), 1);
  EXPECT_EQ(map.shard_count(), 1);
  EXPECT_EQ(map.shard_for(0).id, map.shard_for(999).id);

  const ShardId right = map.split(map.shard_for(0).id, 500);
  EXPECT_EQ(map.epoch(), 2);
  EXPECT_EQ(map.shard_count(), 2);
  EXPECT_EQ(map.shard_for(499).end, 500u);
  EXPECT_EQ(map.shard_for(500).id, right);
  EXPECT_EQ(map.shard_for(4000).id, right);  // keys clamp into the space

  map.move(right, 3);
  EXPECT_EQ(map.epoch(), 3);
  EXPECT_EQ(map.shard(right).node, 3);

  const ShardId left = map.shard_for(0).id;
  EXPECT_EQ(map.right_neighbor(left), right);
  map.merge(left, right);
  EXPECT_EQ(map.epoch(), 4);
  EXPECT_EQ(map.shard_count(), 1);
  EXPECT_EQ(map.shard_for(999).id, left);
  EXPECT_FALSE(map.has_shard(right));
}

TEST(ShardMap, RejectsBadSplitAndNonAdjacentMerge) {
  ShardMap map(100, 0);
  const ShardId root = map.shard_for(0).id;
  EXPECT_THROW(map.split(root, 0), std::invalid_argument);
  EXPECT_THROW(map.split(root, 100), std::invalid_argument);
  const ShardId b = map.split(root, 30);
  const ShardId c = map.split(b, 60);
  EXPECT_THROW(map.merge(root, c), std::invalid_argument);  // skips b
}

// -- Service fixture ----------------------------------------------------

struct TabletFixture {
  explicit TabletFixture(TabletConfig config = make_config(),
                         int compute = 3, int storage = 3)
      : cluster(cluster::make_testbed(compute, storage, 0)),
        topology(cluster),
        fabric(sim, topology),
        io(sim, cluster),
        store(sim, cluster, fabric, io,
              cluster.nodes_with_label("role=storage")),
        tablet_nodes(cluster.nodes_with_label("role=compute")),
        service(sim, fabric, store, tablet_nodes, config) {}

  static TabletConfig make_config() {
    TabletConfig config;
    config.keyspace = 1000;
    config.flush_age = 0;  // tests arm the age trigger explicitly
    return config;
  }

  sim::Simulation sim;
  cluster::Cluster cluster;
  net::Topology topology;
  net::Fabric fabric;
  storage::IoSubsystem io;
  storage::ObjectStore store;
  std::vector<cluster::NodeId> tablet_nodes;
  TabletService service;
};

TEST(TabletService, InitialShardsSpreadRoundRobin) {
  TabletConfig config = TabletFixture::make_config();
  config.initial_shards = 6;
  TabletFixture f(config);
  EXPECT_EQ(f.service.shard_map().shard_count(), 6);
  for (cluster::NodeId n : f.tablet_nodes) {
    EXPECT_EQ(f.service.shard_map().shards_on(n).size(), 2u);
  }
}

TEST(TabletService, WriteThenReadHitsMemtable) {
  TabletFixture f;
  const cluster::NodeId owner = f.service.shard_map().shard_for(42).node;
  OpResult wr, rd;
  f.service.submit(owner, OpKind::kWrite, 42, f.tablet_nodes[1],
                   [&](OpResult r) { wr = r; });
  f.sim.run();
  EXPECT_EQ(wr.status, OpStatus::kOk);
  EXPECT_GT(wr.seq, 0);
  EXPECT_EQ(f.service.wal_commits(), 1);
  EXPECT_EQ(f.service.applied_writes(), 1);

  f.service.submit(owner, OpKind::kRead, 42, f.tablet_nodes[1],
                   [&](OpResult r) { rd = r; });
  f.sim.run();
  EXPECT_EQ(rd.status, OpStatus::kOk);
  EXPECT_TRUE(rd.from_memtable);
  EXPECT_EQ(f.service.memtable_hits(), 1);
}

TEST(TabletService, ReadOfUnwrittenKeyIsNotFound) {
  TabletFixture f;
  const cluster::NodeId owner = f.service.shard_map().shard_for(7).node;
  OpResult rd;
  f.service.submit(owner, OpKind::kRead, 7, f.tablet_nodes[0],
                   [&](OpResult r) { rd = r; });
  f.sim.run();
  EXPECT_EQ(rd.status, OpStatus::kNotFound);
}

TEST(TabletService, WrongNodeAnswersWrongShard) {
  TabletConfig config = TabletFixture::make_config();
  config.initial_shards = 3;
  TabletFixture f(config);
  const cluster::NodeId owner = f.service.shard_map().shard_for(10).node;
  cluster::NodeId wrong = cluster::kInvalidNode;
  for (cluster::NodeId n : f.tablet_nodes) {
    if (n != owner) wrong = n;
  }
  OpResult r;
  f.service.submit(wrong, OpKind::kWrite, 10, f.tablet_nodes[0],
                   [&](OpResult res) { r = res; });
  f.sim.run();
  EXPECT_EQ(r.status, OpStatus::kWrongShard);
  EXPECT_EQ(f.service.wrong_shard(), 1);
  EXPECT_EQ(f.service.applied_writes(), 0);
}

TEST(TabletService, SizeTriggeredFlushCreatesGeneration) {
  TabletConfig config = TabletFixture::make_config();
  config.flush_bytes = 4 * config.value_bytes;
  config.flush_age = 0;  // size trigger only
  TabletFixture f(config);
  const cluster::NodeId owner = f.service.shard_map().shard_for(0).node;
  int done = 0;
  for (std::uint64_t k = 0; k < 8; ++k) {
    f.service.submit(owner, OpKind::kWrite, k, f.tablet_nodes[1],
                     [&](OpResult) { ++done; });
  }
  f.sim.run();
  EXPECT_EQ(done, 8);
  EXPECT_GE(f.service.flushes(), 1);
  // A key flushed out of the memtable now pays a store block read.
  OpResult rd;
  f.service.submit(owner, OpKind::kRead, 0, f.tablet_nodes[1],
                   [&](OpResult r) { rd = r; });
  f.sim.run();
  EXPECT_EQ(rd.status, OpStatus::kOk);
}

TEST(TabletService, AgeTriggeredFlushFires) {
  TabletConfig config = TabletFixture::make_config();
  config.flush_age = util::millis(50);
  TabletFixture f(config);
  const cluster::NodeId owner = f.service.shard_map().shard_for(5).node;
  f.service.submit(owner, OpKind::kWrite, 5, f.tablet_nodes[1],
                   [](OpResult) {});
  f.sim.run();
  EXPECT_EQ(f.service.flushes(), 1);
  EXPECT_EQ(f.store.metrics().counter("put_requests"), 2);  // WAL + gen
}

TEST(TabletService, SplitPartitionsStateAndMergeRejoins) {
  TabletFixture f;
  const cluster::NodeId owner = f.service.shard_map().shard_for(0).node;
  int done = 0;
  for (std::uint64_t k : {100u, 200u, 700u, 800u}) {
    f.service.submit(owner, OpKind::kWrite, k, f.tablet_nodes[1],
                     [&](OpResult) { ++done; });
  }
  f.sim.run();
  ASSERT_EQ(done, 4);

  const ShardId left = f.service.shard_map().shard_for(0).id;
  ASSERT_TRUE(f.service.split_shard(left, 500));
  EXPECT_EQ(f.service.shard_map().shard_count(), 2);
  const ShardId right = f.service.shard_map().shard_for(700).id;
  EXPECT_NE(left, right);

  // Both halves still serve their keys from memory.
  OpResult lo, hi;
  f.service.submit(owner, OpKind::kRead, 200, f.tablet_nodes[1],
                   [&](OpResult r) { lo = r; });
  f.service.submit(owner, OpKind::kRead, 800, f.tablet_nodes[1],
                   [&](OpResult r) { hi = r; });
  f.sim.run();
  EXPECT_EQ(lo.status, OpStatus::kOk);
  EXPECT_TRUE(lo.from_memtable);
  EXPECT_EQ(hi.status, OpStatus::kOk);
  EXPECT_TRUE(hi.from_memtable);

  ASSERT_TRUE(f.service.merge_shards(left, right));
  EXPECT_EQ(f.service.shard_map().shard_count(), 1);
  OpResult rd;
  f.service.submit(owner, OpKind::kRead, 800, f.tablet_nodes[1],
                   [&](OpResult r) { rd = r; });
  f.sim.run();
  EXPECT_EQ(rd.status, OpStatus::kOk);
}

TEST(TabletService, MoveCarriesStateAndAccountsUnavailability) {
  TabletFixture f;
  const ShardId shard = f.service.shard_map().shard_for(42).id;
  const cluster::NodeId source = f.service.shard_map().shard(shard).node;
  cluster::NodeId target = cluster::kInvalidNode;
  for (cluster::NodeId n : f.tablet_nodes) {
    if (n != source) target = n;
  }
  f.service.submit(source, OpKind::kWrite, 42, f.tablet_nodes[0],
                   [](OpResult) {});
  f.sim.run();

  ASSERT_TRUE(f.service.move_shard(shard, target));
  EXPECT_TRUE(f.service.shard_moving(shard));
  f.sim.run();
  EXPECT_FALSE(f.service.shard_moving(shard));
  EXPECT_EQ(f.service.shard_map().shard(shard).node, target);
  EXPECT_EQ(f.service.moves_completed(), 1);
  EXPECT_GT(f.service.move_unavail_seconds(), 0.0);

  // The moved tablet serves its key on the new owner.
  OpResult rd;
  f.service.submit(target, OpKind::kRead, 42, f.tablet_nodes[0],
                   [&](OpResult r) { rd = r; });
  f.sim.run();
  EXPECT_EQ(rd.status, OpStatus::kOk);
}

TEST(TabletService, QueueLimitBouncesOverflow) {
  TabletConfig config = TabletFixture::make_config();
  config.queue_limit = 2;
  TabletFixture f(config);
  const cluster::NodeId owner = f.service.shard_map().shard_for(0).node;
  int full = 0, completed = 0;
  for (int i = 0; i < 20; ++i) {
    f.service.submit(owner, OpKind::kRead, 1, f.tablet_nodes[1],
                     [&](OpResult r) {
                       if (r.status == OpStatus::kQueueFull) ++full;
                       if (r.status == OpStatus::kNotFound) ++completed;
                     });
  }
  f.sim.run();
  EXPECT_GT(full, 0);
  EXPECT_GT(completed, 0);
  EXPECT_EQ(full + completed, 20);
  EXPECT_EQ(f.service.shed_queue_full(), full);
}

// -- Fencing ------------------------------------------------------------

TEST(TabletService, LeaseExpiryFencesZombieWalCommit) {
  TabletConfig config = TabletFixture::make_config();
  config.wal_group_delay = util::millis(5);  // window to fence mid-commit
  TabletFixture f(config);
  const ShardId shard = f.service.shard_map().shard_for(42).id;
  const cluster::NodeId owner = f.service.shard_map().shard(shard).node;
  f.service.record_applies(true);

  OpResult wr;
  bool responded = false;
  f.service.submit(owner, OpKind::kWrite, 42, f.tablet_nodes[0],
                   [&](OpResult r) {
                     wr = r;
                     responded = true;
                   });
  // While the write sits in the WAL group, the node's lease expires: the
  // store fences the node at epoch 2 and the tablet layer sheds its
  // shards — but the node itself does not learn.
  f.sim.at(util::millis(2), [&] {
    f.store.fence_node(owner, 2);
    f.service.handle_lease_expired(owner, 2);
  });
  f.sim.run();

  ASSERT_TRUE(responded);
  EXPECT_EQ(wr.status, OpStatus::kFenced);
  EXPECT_EQ(f.service.fenced_writes(), 1);
  EXPECT_EQ(f.service.applied_writes(), 0);
  EXPECT_TRUE(f.service.apply_counts().empty());  // never applied
  EXPECT_EQ(f.store.metrics().counter("put_requests"), 0);
  // The shard re-opened on a surviving node.
  EXPECT_NE(f.service.shard_map().shard(shard).node, owner);
  EXPECT_FALSE(f.service.node_serving(owner));
}

TEST(TabletService, ReconnectedNodeWritesUnderNewEpoch) {
  TabletFixture f;
  const cluster::NodeId owner = f.service.shard_map().shard_for(1).node;
  f.store.fence_node(owner, 2);
  f.service.handle_lease_expired(owner, 2);
  f.sim.run();
  f.service.handle_node_reconnected(owner, 2);
  EXPECT_TRUE(f.service.node_serving(owner));

  // A fresh write routed to the key's current owner succeeds: fencing
  // rejected the zombie epoch, not the node forever.
  const cluster::NodeId now_owner = f.service.shard_map().shard_for(1).node;
  OpResult wr;
  f.service.submit(now_owner, OpKind::kWrite, 1, f.tablet_nodes[0],
                   [&](OpResult r) { wr = r; });
  f.sim.run();
  EXPECT_EQ(wr.status, OpStatus::kOk);
  EXPECT_EQ(f.service.fenced_writes(), 0);
}

TEST(TabletService, DrainMovesTabletsOffGracefully) {
  TabletConfig config = TabletFixture::make_config();
  config.initial_shards = 3;
  TabletFixture f(config);
  const cluster::NodeId drained = f.tablet_nodes[0];
  ASSERT_FALSE(f.service.shard_map().shards_on(drained).empty());
  f.service.set_node_drained(drained, true);
  f.sim.run();
  EXPECT_TRUE(f.service.shard_map().shards_on(drained).empty());
  EXPECT_FALSE(f.service.node_serving(drained));
  f.service.set_node_drained(drained, false);
  EXPECT_TRUE(f.service.node_serving(drained));
}

// -- TabletClient -------------------------------------------------------

TEST(TabletClient, RetriesWrongShardAfterMove) {
  TabletConfig config = TabletFixture::make_config();
  TabletFixture f(config);
  TabletClient client(f.sim, f.service);
  const std::int64_t before = client.cached_epoch();

  // Invalidate the client's cache: split, then move the upper half.
  const ShardId root = f.service.shard_map().shard_for(0).id;
  ASSERT_TRUE(f.service.split_shard(root, 500));
  const ShardId right = f.service.shard_map().shard_for(700).id;
  const cluster::NodeId source = f.service.shard_map().shard(right).node;
  cluster::NodeId target = cluster::kInvalidNode;
  for (cluster::NodeId n : f.tablet_nodes) {
    if (n != source) target = n;
  }
  ASSERT_TRUE(f.service.move_shard(right, target));
  f.sim.run();
  ASSERT_EQ(f.service.shard_map().shard(right).node, target);

  OpResult wr;
  client.submit(OpKind::kWrite, 700, f.tablet_nodes[0],
                [&](OpResult r) { wr = r; });
  f.sim.run();
  EXPECT_EQ(wr.status, OpStatus::kOk);
  EXPECT_GE(wr.attempts, 2);
  EXPECT_GE(client.wrong_shard_retries(), 1);
  EXPECT_GT(client.cached_epoch(), before);
  EXPECT_EQ(client.exhausted(), 0);
}

TEST(TabletClient, ExactlyOnceAcrossEpochChanges) {
  TabletConfig config = TabletFixture::make_config();
  config.initial_shards = 3;
  TabletFixture f(config);
  f.service.record_applies(true);
  TabletClient client(f.sim, f.service);

  int acked = 0;
  for (std::uint64_t k = 0; k < 60; ++k) {
    client.submit(OpKind::kWrite, (k * 37) % 1000, f.tablet_nodes[0],
                  [&](OpResult r) {
                    if (r.status == OpStatus::kOk) ++acked;
                  });
  }
  // Mid-stream topology churn: split + move while writes are in flight.
  f.sim.at(util::micros(300), [&] {
    const ShardId s = f.service.shard_map().shard_for(100).id;
    f.service.split_shard(s, f.service.split_point(s));
  });
  f.sim.at(util::micros(600), [&] {
    const ShardId s = f.service.shard_map().shard_for(900).id;
    const cluster::NodeId src = f.service.shard_map().shard(s).node;
    for (cluster::NodeId n : f.tablet_nodes) {
      if (n != src) {
        f.service.move_shard(s, n);
        break;
      }
    }
  });
  f.sim.run();

  EXPECT_GT(acked, 0);
  // Every applied seq landed exactly once; acked == applied here because
  // no fencing happened.
  for (const auto& [seq, times] : f.service.apply_counts()) {
    EXPECT_EQ(times, 1) << "seq " << seq << " applied " << times << "x";
  }
  EXPECT_EQ(f.service.dup_writes(), 0);
  EXPECT_EQ(static_cast<std::int64_t>(f.service.apply_counts().size()),
            f.service.applied_writes());
}

// -- Balancer -----------------------------------------------------------

TEST(TabletBalancer, SplitsHotShardAndMovesLoadOff) {
  TabletConfig config = TabletFixture::make_config();
  TabletFixture f(config);
  BalancerConfig bcfg;
  bcfg.split_ops = 10;
  bcfg.merge_ops = 2;  // below half of split_ops: no split/merge flapping
  bcfg.min_move_ops = 5;
  TabletBalancer balancer(f.sim, f.service, bcfg);

  const cluster::NodeId owner = f.service.shard_map().shard_for(0).node;
  for (std::uint64_t k = 0; k < 40; ++k) {
    f.service.submit(owner, OpKind::kWrite, k * 25, f.tablet_nodes[0],
                     [](OpResult) {});
  }
  f.sim.run();
  balancer.tick();
  EXPECT_EQ(balancer.splits_triggered(), 1);
  EXPECT_EQ(f.service.shard_map().shard_count(), 2);

  // Next window: load lands on both halves, and the imbalance (two hot
  // shards on one node, none elsewhere) triggers a move.
  for (std::uint64_t k = 0; k < 40; ++k) {
    f.service.submit(owner, OpKind::kWrite, k * 25, f.tablet_nodes[0],
                     [](OpResult) {});
  }
  f.sim.run();
  balancer.tick();
  f.sim.run();
  EXPECT_GE(balancer.moves_triggered(), 1);
  EXPECT_EQ(f.service.moves_completed(), balancer.moves_triggered());
}

TEST(TabletBalancer, MergesColdShardsAndSkipsHotKeyDominatedSplit) {
  TabletConfig config = TabletFixture::make_config();
  TabletFixture f(config);
  BalancerConfig bcfg;
  bcfg.split_ops = 10;
  bcfg.merge_ops = 5;
  TabletBalancer balancer(f.sim, f.service, bcfg);

  // One key takes all the traffic: the shard is hot but splitting would
  // not spread anything — the balancer must leave it whole.
  const cluster::NodeId owner = f.service.shard_map().shard_for(0).node;
  for (int i = 0; i < 40; ++i) {
    f.service.submit(owner, OpKind::kRead, 77, f.tablet_nodes[0],
                     [](OpResult) {});
  }
  f.sim.run();
  EXPECT_TRUE(f.service.hot_key_dominated(f.service.shard_map().shard_for(77).id));
  balancer.tick();
  EXPECT_EQ(balancer.splits_triggered(), 0);
  EXPECT_EQ(f.service.shard_map().shard_count(), 1);

  // Split manually, let the window go cold, and the halves merge back.
  ASSERT_TRUE(f.service.split_shard(f.service.shard_map().shard_for(0).id, 500));
  balancer.tick();  // cold window
  EXPECT_EQ(balancer.merges_triggered(), 1);
  EXPECT_EQ(f.service.shard_map().shard_count(), 1);
}

}  // namespace
}  // namespace evolve::tablet
