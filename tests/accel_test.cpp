#include "accel/device.hpp"
#include "accel/kernels.hpp"
#include "accel/pool.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sim/simulation.hpp"

namespace evolve::accel {
namespace {

TEST(AccelDevice, SingleTaskRunsAtFullSpeed) {
  sim::Simulation sim;
  DeviceConfig config;
  config.reconfiguration_latency = 0;
  AccelDevice device(sim, "fpga0", config);
  util::TimeNs done = -1;
  device.execute("k", util::millis(10), [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, util::millis(10));
  EXPECT_EQ(device.completed(), 1);
}

TEST(AccelDevice, FirstLoadChargesReconfiguration) {
  sim::Simulation sim;
  AccelDevice device(sim, "fpga0");
  util::TimeNs done = -1;
  device.execute("k", util::millis(10), [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, util::millis(10) + DeviceConfig{}.reconfiguration_latency);
  EXPECT_EQ(device.reconfigurations(), 1);
}

TEST(AccelDevice, SameKernelSkipsReconfiguration) {
  sim::Simulation sim;
  AccelDevice device(sim, "fpga0");
  int completions = 0;
  device.execute("k", util::millis(1), [&] {
    ++completions;
    device.execute("k", util::millis(1), [&] { ++completions; });
  });
  sim.run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(device.reconfigurations(), 1);
}

TEST(AccelDevice, KernelSwitchReconfigures) {
  sim::Simulation sim;
  AccelDevice device(sim, "fpga0");
  device.execute("a", util::millis(1), [&] {
    device.execute("b", util::millis(1), [] {});
  });
  sim.run();
  EXPECT_EQ(device.reconfigurations(), 2);
  EXPECT_EQ(device.loaded_kernel(), "b");
}

TEST(AccelDevice, TimeSharingDoublesWallTime) {
  sim::Simulation sim;
  DeviceConfig config;
  config.reconfiguration_latency = 0;
  AccelDevice device(sim, "fpga0", config);
  std::vector<util::TimeNs> done;
  device.execute("k", util::millis(10), [&] { done.push_back(sim.now()); });
  device.execute("k", util::millis(10), [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // Two equal tasks sharing the device: both finish at ~2x solo time.
  EXPECT_NEAR(static_cast<double>(done[1]),
              static_cast<double>(util::millis(20)), 1e5);
}

TEST(AccelDevice, ConcurrencyCapRejects) {
  sim::Simulation sim;
  DeviceConfig config;
  config.max_concurrency = 2;
  config.reconfiguration_latency = 0;
  AccelDevice device(sim, "fpga0", config);
  EXPECT_GE(device.execute("k", util::millis(1), [] {}), 0);
  EXPECT_GE(device.execute("k", util::millis(1), [] {}), 0);
  EXPECT_EQ(device.execute("k", util::millis(1), [] {}), -1);
  EXPECT_FALSE(device.has_capacity());
  sim.run();
  EXPECT_TRUE(device.has_capacity());
}

TEST(AccelDevice, ValidatesArguments) {
  sim::Simulation sim;
  AccelDevice device(sim, "fpga0");
  EXPECT_THROW(device.execute("k", -1, [] {}), std::invalid_argument);
  DeviceConfig bad;
  bad.max_concurrency = 0;
  EXPECT_THROW(AccelDevice(sim, "x", bad), std::invalid_argument);
}

TEST(KernelRegistry, StandardKernelsPresent) {
  const auto registry = KernelRegistry::standard();
  EXPECT_TRUE(registry.has("pattern-match"));
  EXPECT_TRUE(registry.has("dnn-infer"));
  EXPECT_TRUE(registry.has("fft"));
  EXPECT_TRUE(registry.has("encrypt"));
  EXPECT_FALSE(registry.has("nope"));
  EXPECT_THROW(registry.profile("nope"), std::out_of_range);
  EXPECT_GT(registry.profile("pattern-match").speedup, 1.0);
}

TEST(KernelRegistry, Validation) {
  KernelRegistry registry;
  EXPECT_THROW(registry.register_kernel({"", 2.0, 0}), std::invalid_argument);
  EXPECT_THROW(registry.register_kernel({"k", 0.0, 0}), std::invalid_argument);
  EXPECT_THROW(registry.register_kernel({"k", 1.0, -1}),
               std::invalid_argument);
  registry.register_kernel({"k", 2.0, 10});
  EXPECT_EQ(registry.names(), std::vector<std::string>{"k"});
}

struct PoolFixture {
  PoolFixture() : cluster(cluster::make_testbed(2, 0, 2)), pool(sim, cluster) {}
  sim::Simulation sim;
  cluster::Cluster cluster;
  AccelPool pool;
};

TEST(AccelPool, DiscoversDevices) {
  PoolFixture f;
  EXPECT_EQ(f.pool.device_count(), 4);  // 2 accel nodes x 2 cards
}

TEST(AccelPool, OffloadAppliesSpeedup) {
  PoolFixture f;
  util::TimeNs done = -1;
  // pattern-match: speedup 12, overhead 150us + reconfig 40ms.
  f.pool.offload("pattern-match", util::seconds(12), cluster::kInvalidNode,
                 [&] { done = f.sim.now(); });
  f.sim.run();
  const util::TimeNs expected = util::seconds(1) + util::micros(150) +
                                DeviceConfig{}.reconfiguration_latency;
  EXPECT_NEAR(static_cast<double>(done), static_cast<double>(expected), 1e6);
}

TEST(AccelPool, RejectsUnknownKernel) {
  PoolFixture f;
  EXPECT_THROW(f.pool.offload("nope", 1, cluster::kInvalidNode, [] {}),
               std::invalid_argument);
}

TEST(AccelPool, ThrowsWithoutDevices) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(2, 0, 0);
  AccelPool pool(sim, cluster);
  EXPECT_EQ(pool.device_count(), 0);
  EXPECT_THROW(pool.offload("fft", 1, cluster::kInvalidNode, [] {}),
               std::logic_error);
}

TEST(AccelPool, QueuesBeyondTotalCapacity) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(0, 0, 1);  // 1 node, 2 cards
  DeviceConfig config;
  config.max_concurrency = 1;
  config.reconfiguration_latency = 0;
  AccelPool pool(sim, cluster, KernelRegistry::standard(), config);
  int completions = 0;
  for (int i = 0; i < 5; ++i) {
    pool.offload("fft", util::seconds(6), cluster::kInvalidNode,
                 [&] { ++completions; });
  }
  EXPECT_GT(pool.queued(), 0);
  sim.run();
  EXPECT_EQ(completions, 5);
  EXPECT_EQ(pool.queued(), 0);
}

TEST(AccelPool, PrefersNearDevice) {
  PoolFixture f;
  const auto accel_nodes = f.cluster.nodes_with_label("role=accel");
  ASSERT_EQ(accel_nodes.size(), 2u);
  // Offload near the second accel node; its devices (2,3) should run it.
  f.pool.offload("fft", util::seconds(1), accel_nodes[1], [] {});
  EXPECT_EQ(f.pool.device(2).running() + f.pool.device(3).running(), 1);
  EXPECT_EQ(f.pool.device(0).running() + f.pool.device(1).running(), 0);
  f.sim.run();
}

TEST(AccelPool, AggregateThroughputSaturates) {
  // 1 card, concurrency 4: up to 4 tasks keep per-task slowdown linear;
  // beyond that tasks queue and total time grows.
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(0, 0, 1);
  DeviceConfig config;
  config.reconfiguration_latency = 0;
  config.max_concurrency = 4;
  AccelPool pool(sim, cluster, KernelRegistry::standard(), config);
  // The node has 2 cards -> total 8 concurrent slots.
  int completions = 0;
  for (int i = 0; i < 16; ++i) {
    pool.offload("fft", util::seconds(6), cluster::kInvalidNode,
                 [&] { ++completions; });
  }
  sim.run();
  EXPECT_EQ(completions, 16);
  // 16 tasks of 1s device time over 2 cards -> >= 8s of wall time.
  EXPECT_GE(sim.now(), util::seconds(8) - util::millis(1));
}

}  // namespace
}  // namespace evolve::accel
