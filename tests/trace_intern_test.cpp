// Tracer hot-path allocation test. This TU overrides the global
// new/delete with counting forwards to malloc/free, so it lives in its
// own test binary (evolve_alloc_tests) and must stay the only TU there
// that defines these operators.
//
// The claim under test (ISSUE satellite): once the tracer's name set and
// span chunks are warm, recording a span performs zero heap allocations
// — names are interned string_views and spans land in pre-reserved
// append-only chunks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/simulation.hpp"
#include "trace/tracer.hpp"

namespace {
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace evolve::trace {
namespace {

TEST(TracerAllocation, WarmSpanRecordingAllocatesNothing) {
  sim::Simulation sim;
  Tracer tracer(sim);

  constexpr int kWarm = 8;
  constexpr int kHot = 20'000;
  const char* names[] = {"serve.request", "serve.queue", "serve.exec",
                         "net.transfer"};

  // Warm-up: intern every name once and pre-reserve the span chunks.
  for (int i = 0; i < kWarm; ++i) {
    const SpanId id = tracer.begin(Layer::kServe, names[i % 4]);
    tracer.end(id);
  }
  tracer.reserve_spans(kWarm + kHot);
  EXPECT_EQ(tracer.interned_names(), 4u);

  const std::size_t before = g_allocs.load();
  for (int i = 0; i < kHot; ++i) {
    const SpanId id = tracer.begin(Layer::kServe, names[i % 4]);
    tracer.end(id);
  }
  const std::size_t after = g_allocs.load();

  EXPECT_EQ(after - before, 0u)
      << "span recording on a warm tracer must not allocate";
  EXPECT_EQ(tracer.spans().size(),
            static_cast<std::size_t>(kWarm + kHot));
  EXPECT_EQ(tracer.interned_names(), 4u);
}

TEST(TracerAllocation, RepeatedNamesShareInternedStorage) {
  sim::Simulation sim;
  Tracer tracer(sim);
  const SpanId a = tracer.begin(Layer::kNetwork, "net.transfer");
  tracer.end(a);
  const SpanId b = tracer.begin(Layer::kNetwork, "net.transfer");
  tracer.end(b);
  // Same interned backing bytes, not just equal content.
  EXPECT_EQ(tracer.span(a).name.data(), tracer.span(b).name.data());
  EXPECT_EQ(tracer.span(a).name, "net.transfer");
  EXPECT_EQ(tracer.interned_names(), 1u);
}

}  // namespace
}  // namespace evolve::trace
