#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace evolve::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntThrowsOnBadRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  const double rate = 4.0;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, NormalMeanAndStddev) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(17);
  for (double mean : {0.5, 3.0, 20.0, 100.0}) {
    const int n = 50000;
    double sum = 0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, ZipfSkewPrefersLowRanks) {
  Rng rng(19);
  const int n = 100;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[static_cast<std::size_t>(rng.zipf(n, 1.2))];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 10 * counts[n - 1] / 2 + 1);
}

TEST(Rng, ZipfZeroSkewIsUniformish) {
  Rng rng(23);
  const int n = 10;
  std::vector<int> counts(n, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    ++counts[static_cast<std::size_t>(rng.zipf(n, 0.0))];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / 10.0, trials * 0.01);
  }
}

TEST(Rng, ZipfBoundsRespected) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.zipf(7, 0.9);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedIndexHonorsWeights) {
  Rng rng(37);
  std::vector<double> weights = {1.0, 0.0, 9.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 20000.0, 0.9, 0.02);
}

TEST(Rng, WeightedIndexThrowsOnZeroMass) {
  Rng rng(1);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(weights), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.fork();
  // Child stream should not equal the parent continuation.
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, LognormalPositive) {
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(SplitMix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
  EXPECT_EQ(splitmix64(s2), b);
}

}  // namespace
}  // namespace evolve::util
