// Cross-module integration and determinism properties.
#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "core/session.hpp"
#include "core/siloed.hpp"
#include "core/unified_scheduler.hpp"
#include "storage/filesystem.hpp"
#include "workloads/mobility.hpp"
#include "workloads/tabular.hpp"
#include "workloads/trace.hpp"

namespace evolve {
namespace {

// ---- Determinism: same seed => byte-identical behaviour -------------

util::TimeNs run_mobility_once() {
  sim::Simulation sim;
  core::Platform platform(sim);
  workloads::MobilityScenario scenario;
  scenario.trace_bytes = 256 * util::kMiB;
  workloads::stage_mobility_inputs(platform.catalog(), scenario);
  util::TimeNs duration = -1;
  platform.run_workflow(workloads::mobility_pipeline(scenario),
                        [&](const workflow::WorkflowResult& r) {
                          duration = r.success ? r.duration : -1;
                        });
  sim.run();
  return duration;
}

TEST(Determinism, WorkflowReplaysIdentically) {
  const auto first = run_mobility_once();
  const auto second = run_mobility_once();
  ASSERT_GT(first, 0);
  EXPECT_EQ(first, second);
}

TEST(Determinism, TraceOutcomeReplaysIdentically) {
  auto run = [] {
    sim::Simulation sim;
    core::PlatformConfig config;
    config.compute_nodes = 9;
    config.storage_nodes = 2;
    config.accel_nodes = 0;
    core::Platform platform(sim, config);
    util::Rng rng(99);
    workloads::TraceParams params;
    params.jobs = 30;
    const auto trace = workloads::make_mixed_trace(rng, params);
    return core::run_trace_unified(sim, platform.orchestrator(), trace);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.mean_wait, b.mean_wait);
  EXPECT_EQ(a.cpu_utilization, b.cpu_utilization);
}

TEST(Determinism, DifferentSeedsDiverge) {
  auto run = [](std::uint64_t seed) {
    sim::Simulation sim;
    core::PlatformConfig config;
    config.compute_nodes = 9;
    config.storage_nodes = 2;
    config.accel_nodes = 0;
    core::Platform platform(sim, config);
    util::Rng rng(seed);
    workloads::TraceParams params;
    params.jobs = 30;
    const auto trace = workloads::make_mixed_trace(rng, params);
    return core::run_trace_unified(sim, platform.orchestrator(), trace);
  };
  EXPECT_NE(run(1).makespan, run(2).makespan);
}

// ---- Shared-substrate contention ------------------------------------

TEST(Contention, DataflowShuffleSlowsConcurrentCollective) {
  auto allreduce_time = [](bool with_background) {
    sim::Simulation sim;
    core::PlatformConfig config;
    // Disaggregated executors: the background job's reads and shuffle
    // must cross the same links the collective uses.
    config.locality_placement = false;
    config.dataflow.locality_wait = 0;
    core::Platform platform(sim, config);
    core::Session session(platform);
    if (with_background) {
      // A fat scan+shuffle saturating the shared fabric.
      platform.catalog().define(
          storage::DatasetSpec{"bg", 64, 8 * util::kGiB});
      platform.catalog().preload("bg", /*warm_cache=*/true);
      platform.run_dataflow(
          workloads::scan_filter_aggregate("bg", "bg-out", 32), 8, 4,
          [](const dataflow::JobStats&) {});
    }
    std::vector<cluster::NodeId> ranks;
    for (int i = 0; i < 8; ++i) ranks.push_back(i);
    hpc::Communicator comm(sim, platform.fabric(), ranks);
    util::TimeNs done = -1;
    // Start the collective after the background job has ramped up.
    sim.at(util::millis(500), [&] {
      comm.allreduce(32 * util::kMiB, hpc::CollectiveAlgo::kRing,
                     [&] { done = sim.now() - util::millis(500); });
    });
    sim.run();
    return done;
  };
  const auto solo = allreduce_time(false);
  const auto contended = allreduce_time(true);
  ASSERT_GT(solo, 0);
  ASSERT_GT(contended, 0);
  // The converged fabric is shared: storage/shuffle traffic visibly
  // slows the collective.
  EXPECT_GT(contended, solo + solo / 10);
}

// ---- Filesystem on the shared store ----------------------------------

TEST(Integration, FilesystemAndDatasetsShareTheStore) {
  sim::Simulation sim;
  core::Platform platform(sim);
  core::Session session(platform);
  storage::FileSystem fs(platform.store());

  fs.mkdirs("/models/v1");
  bool wrote = false;
  fs.write_file(0, "/models/v1/weights.bin", 64 * util::kMiB,
                [&] { wrote = true; });
  sim.run();
  EXPECT_TRUE(wrote);

  // A dataset job and the filesystem coexist in one namespace-separated
  // store; total durable bytes reflect both (R=2 replication).
  session.create_dataset("events", 8, 64 * util::kMiB);
  util::Bytes durable = 0;
  for (auto s : platform.store().servers()) {
    durable += platform.store().durable_bytes(s);
  }
  EXPECT_EQ(durable, 2 * (64 * util::kMiB + 64 * util::kMiB));
}

TEST(Integration, WorkflowCustomStepDrivesFilesystem) {
  sim::Simulation sim;
  core::Platform platform(sim);
  auto fs = std::make_shared<storage::FileSystem>(platform.store());
  fs->mkdir("/out");

  workflow::Workflow wf("fs-flow");
  wf.add(workflow::custom_step("write-report", [fs](auto done) {
    fs->write_file(0, "/out/report.bin", util::kMiB,
                   [done] { done(true); });
  }));
  auto verify = workflow::custom_step("verify", [fs](auto done) {
    done(fs->stat("/out/report.bin") == util::kMiB);
  });
  verify.depends_on = {"write-report"};
  wf.add(verify);

  workflow::WorkflowResult result;
  platform.run_workflow(wf, [&](const workflow::WorkflowResult& r) {
    result = r;
  });
  sim.run();
  EXPECT_TRUE(result.success);
}

// ---- Converged locality ablation at the platform level ---------------

TEST(Integration, LocalityPlacementReducesNetworkBytes) {
  auto fabric_bytes = [](bool locality) {
    sim::Simulation sim;
    core::PlatformConfig config;
    config.locality_placement = locality;
    if (!locality) config.dataflow.locality_wait = 0;
    core::Platform platform(sim, config);
    core::Session session(platform);
    session.create_dataset("hot", 16, 256 * util::kMiB, /*warm=*/true);
    session.run_dataflow(workloads::scan_filter_aggregate("hot", "out", 8),
                         4, 4);
    return platform.fabric().stats().bytes_remote;
  };
  const auto with_locality = fabric_bytes(true);
  const auto without = fabric_bytes(false);
  // Node-local reads use loopback; placement off the data nodes must
  // move more bytes across real network links.
  EXPECT_LT(with_locality, without);
}

}  // namespace
}  // namespace evolve
