#include "dataflow/engine.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"

namespace evolve::dataflow {
namespace {

struct EngineFixture {
  explicit EngineFixture(int compute = 4, int storage = 4,
                         DataflowConfig config = {})
      : cluster(cluster::make_testbed(compute, storage, 0)),
        topology(cluster),
        fabric(sim, topology),
        io(sim, cluster),
        store(sim, cluster, fabric, io,
              cluster.nodes_with_label("role=storage")),
        catalog(store),
        engine(sim, cluster, fabric, io, catalog, config) {}

  void stage_dataset(const std::string& name, int partitions,
                     util::Bytes total) {
    catalog.define(storage::DatasetSpec{name, partitions, total});
    catalog.preload(name);
  }

  std::vector<ExecutorSpec> executors_on(const std::string& label,
                                         int slots = 4) {
    std::vector<ExecutorSpec> out;
    for (auto node : cluster.nodes_with_label(label)) {
      out.push_back(ExecutorSpec{node, slots});
    }
    return out;
  }

  sim::Simulation sim;
  cluster::Cluster cluster;
  net::Topology topology;
  net::Fabric fabric;
  storage::IoSubsystem io;
  storage::ObjectStore store;
  storage::DatasetCatalog catalog;
  DataflowEngine engine;
};

LogicalPlan scan_aggregate(const std::string& in, const std::string& out,
                           int reducers = 8) {
  LogicalPlan plan;
  const int src = plan.add_source(in);
  const int mapped = plan.add_map(src, "parse", 0.8, 0.5);
  const int reduced = plan.add_reduce_by_key(mapped, "agg", reducers, 0.05);
  plan.add_sink(reduced, out);
  return plan;
}

TEST(DataflowEngine, RunsSingleStagePlan) {
  EngineFixture f;
  f.stage_dataset("in", 8, 64 * util::kMiB);
  LogicalPlan plan;
  plan.add_sink(plan.add_map(plan.add_source("in"), "noop", 1.0, 0.1), "out");
  JobStats stats;
  bool done = false;
  f.engine.run(plan, f.executors_on("role=compute"), [&](const JobStats& s) {
    stats = s;
    done = true;
  });
  f.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(stats.tasks, 8);
  EXPECT_EQ(stats.stages.size(), 1u);
  EXPECT_EQ(stats.bytes_read, 64 * util::kMiB);
  EXPECT_GT(stats.duration, 0);
  EXPECT_EQ(stats.bytes_shuffled, 0);
  // Output dataset registered and materialized.
  EXPECT_TRUE(f.catalog.defined("out"));
  EXPECT_TRUE(f.catalog.materialized("out"));
  EXPECT_NEAR(static_cast<double>(f.catalog.spec("out").total_bytes),
              static_cast<double>(64 * util::kMiB), 16.0);
}

TEST(DataflowEngine, ShuffleMovesBytes) {
  EngineFixture f;
  f.stage_dataset("in", 8, 64 * util::kMiB);
  JobStats stats;
  f.engine.run(scan_aggregate("in", "out"), f.executors_on("role=compute"),
               [&](const JobStats& s) { stats = s; });
  f.sim.run();
  EXPECT_EQ(stats.stages.size(), 2u);
  // Map output = 64MiB * 0.8; all of it crosses the shuffle.
  EXPECT_NEAR(static_cast<double>(stats.bytes_shuffled),
              64.0 * util::kMiB * 0.8, 1024.0);
  // Reduce output = shuffled * 0.05 written to the sink.
  EXPECT_NEAR(static_cast<double>(stats.bytes_written),
              64.0 * util::kMiB * 0.8 * 0.05, 1024.0);
}

TEST(DataflowEngine, StagesRunInDependencyOrder) {
  EngineFixture f;
  f.stage_dataset("in", 4, 16 * util::kMiB);
  JobStats stats;
  f.engine.run(scan_aggregate("in", "out", 4), f.executors_on("role=compute"),
               [&](const JobStats& s) { stats = s; });
  f.sim.run();
  ASSERT_EQ(stats.stages.size(), 2u);
  EXPECT_GE(stats.stages[1].start_time, stats.stages[0].finish_time);
}

TEST(DataflowEngine, JoinPlanCompletes) {
  EngineFixture f;
  f.stage_dataset("orders", 8, 32 * util::kMiB);
  f.stage_dataset("users", 4, 8 * util::kMiB);
  LogicalPlan plan;
  const int orders = plan.add_source("orders");
  const int users = plan.add_source("users");
  const int joined = plan.add_join(orders, users, "join", 8, 0.6);
  plan.add_sink(joined, "enriched");
  JobStats stats;
  f.engine.run(plan, f.executors_on("role=compute"),
               [&](const JobStats& s) { stats = s; });
  f.sim.run();
  EXPECT_EQ(stats.stages.size(), 3u);
  EXPECT_EQ(stats.tasks, 8 + 4 + 8);
  EXPECT_NEAR(static_cast<double>(stats.bytes_shuffled),
              40.0 * util::kMiB, 1024.0);
  EXPECT_TRUE(f.catalog.materialized("enriched"));
}

TEST(DataflowEngine, MoreExecutorsRunFasterOnComputeBoundPlan) {
  auto run_with = [](int executor_nodes) {
    DataflowConfig config;
    config.locality_wait = 0;  // executors are off the storage nodes anyway
    EngineFixture f(8, 4, config);
    f.stage_dataset("in", 32, 256 * util::kMiB);
    LogicalPlan plan;
    const int src = plan.add_source("in");
    // Compute-heavy transform: 20 ns/byte dominates I/O.
    const int heavy = plan.add_map(src, "featurize", 0.1, 20.0);
    plan.add_sink(heavy, "out");
    std::vector<ExecutorSpec> execs;
    for (int i = 0; i < executor_nodes; ++i) {
      execs.push_back(ExecutorSpec{i, 4});
    }
    util::TimeNs duration = 0;
    f.engine.run(plan, execs,
                 [&](const JobStats& s) { duration = s.duration; });
    f.sim.run();
    return duration;
  };
  const auto slow = run_with(1);
  const auto fast = run_with(8);
  // Speedup plateaus on the shared storage substrate (HDD reads), so we
  // assert a solid but sub-linear improvement.
  EXPECT_LT(static_cast<double>(fast), 0.7 * static_cast<double>(slow));
}

TEST(DataflowEngine, LocalityWithExecutorsOnStorageNodes) {
  DataflowConfig config;
  config.locality_wait = util::seconds(2);
  EngineFixture f(4, 4, config);
  f.stage_dataset("in", 16, 64 * util::kMiB);
  JobStats stats;
  // Executors co-located with the data (converged deployment).
  f.engine.run(scan_aggregate("in", "out", 8),
               f.executors_on("role=storage"),
               [&](const JobStats& s) { stats = s; });
  f.sim.run();
  // Every source task (stage 0) should land on a replica holder; reducer
  // tasks have no locality preference and are excluded.
  ASSERT_GE(stats.stages.size(), 1u);
  EXPECT_EQ(stats.stages[0].local_tasks, stats.stages[0].tasks);
  EXPECT_EQ(stats.stages[0].tasks, 16);
}

TEST(DataflowEngine, NoLocalityOnDisaggregatedExecutors) {
  EngineFixture f;
  f.stage_dataset("in", 16, 64 * util::kMiB);
  JobStats stats;
  f.engine.run(scan_aggregate("in", "out", 8),
               f.executors_on("role=compute"),
               [&](const JobStats& s) { stats = s; });
  f.sim.run();
  EXPECT_EQ(stats.local_tasks, 0);
}

TEST(DataflowEngine, RequiresExecutorsAndData) {
  EngineFixture f;
  f.stage_dataset("in", 4, util::kMiB);
  EXPECT_THROW(f.engine.run(scan_aggregate("in", "out"), {}, {}),
               std::invalid_argument);
  EXPECT_THROW(f.engine.run(scan_aggregate("missing", "out"),
                            f.executors_on("role=compute"), {}),
               std::invalid_argument);
  EXPECT_THROW(
      f.engine.run(scan_aggregate("in", "out"), {ExecutorSpec{999, 1}}, {}),
      std::invalid_argument);
}

TEST(DataflowEngine, ConcurrentJobsBothComplete) {
  EngineFixture f;
  f.stage_dataset("a", 8, 32 * util::kMiB);
  f.stage_dataset("b", 8, 32 * util::kMiB);
  int done = 0;
  f.engine.run(scan_aggregate("a", "out-a"), {ExecutorSpec{0, 4}},
               [&](const JobStats&) { ++done; });
  f.engine.run(scan_aggregate("b", "out-b"), {ExecutorSpec{1, 4}},
               [&](const JobStats&) { ++done; });
  f.sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(f.engine.metrics().counter("jobs_completed"), 2);
}

TEST(DataflowEngine, DefaultParallelismAppliesWhenUnset) {
  DataflowConfig config;
  config.default_parallelism = 5;
  EngineFixture f(4, 4, config);
  f.stage_dataset("in", 4, 16 * util::kMiB);
  JobStats stats;
  f.engine.run(scan_aggregate("in", "out", /*reducers=*/0),
               f.executors_on("role=compute"),
               [&](const JobStats& s) { stats = s; });
  f.sim.run();
  ASSERT_EQ(stats.stages.size(), 2u);
  EXPECT_EQ(stats.stages[1].tasks, 5);
}

TEST(DataflowEngine, ChainedJobsThroughCatalog) {
  EngineFixture f;
  f.stage_dataset("raw", 8, 64 * util::kMiB);
  bool second_done = false;
  f.engine.run(scan_aggregate("raw", "stage1", 8),
               f.executors_on("role=compute"), [&](const JobStats&) {
                 // Second job consumes the first job's output dataset.
                 f.engine.run(scan_aggregate("stage1", "stage2", 4),
                              f.executors_on("role=compute"),
                              [&](const JobStats&) { second_done = true; });
               });
  f.sim.run();
  EXPECT_TRUE(second_done);
  EXPECT_TRUE(f.catalog.materialized("stage2"));
}

}  // namespace
}  // namespace evolve::dataflow
