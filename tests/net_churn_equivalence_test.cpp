// Churn equivalence: the incremental grouped max-min solver must be
// indistinguishable from the original from-scratch reference solver.
//
// Both engines are driven over the same randomized arrival/cancel schedule
// (Poisson-ish arrival times with same-timestamp waves, zero/tiny/large
// payloads, mid-flight cancels) and must produce the identical completion
// callback order, identical completion timestamps, identical sampled rates,
// and identical aggregate stats. 100 randomized schedules.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace evolve::net {
namespace {

struct Arrival {
  util::TimeNs time;
  cluster::NodeId src;
  cluster::NodeId dst;
  util::Bytes bytes;
};
struct Cancel {
  util::TimeNs time;
  int target;  // index into the arrival order
};
struct Schedule {
  std::vector<Arrival> arrivals;
  std::vector<Cancel> cancels;
  std::vector<util::TimeNs> probes;
};

Schedule make_schedule(int seed) {
  util::Rng rng(static_cast<std::uint64_t>(seed) * 0x9e3779b9ULL + 17);
  Schedule s;
  const int flows = static_cast<int>(rng.uniform_int(20, 60));
  util::TimeNs t = 0;
  for (int i = 0; i < flows; ++i) {
    // 35% of arrivals share the previous timestamp: same-time waves that
    // exercise the batched recompute path.
    if (i == 0 || !rng.chance(0.35)) {
      t += static_cast<util::TimeNs>(rng.exponential(1.0 / 2e6));  // ~2ms mean
    }
    Arrival a;
    a.time = t;
    a.src = static_cast<cluster::NodeId>(rng.uniform_int(0, 11));
    a.dst = static_cast<cluster::NodeId>(rng.uniform_int(0, 11));
    switch (rng.uniform_int(0, 9)) {
      case 0: a.bytes = 0; break;                                // latency-only
      case 1: a.bytes = rng.uniform_int(1, 64); break;           // tiny
      case 2: a.bytes = rng.uniform_int(1, 4) * util::kMiB; break;
      default: a.bytes = rng.uniform_int(64, 512) * util::kKiB; break;
    }
    s.arrivals.push_back(a);
    if (rng.chance(0.2)) {
      s.cancels.push_back(Cancel{
          a.time + static_cast<util::TimeNs>(rng.exponential(1.0 / 1e6)) + 1,
          i});
    }
  }
  // Rate probes at off-wave instants (never colliding with an arrival, so
  // they observe post-flush state without forcing mid-wave recomputes).
  for (int i = 0; i < 5; ++i) {
    s.probes.push_back(
        static_cast<util::TimeNs>(rng.uniform_int(1, t > 2 ? t : 2)) * 2 + 1);
  }
  return s;
}

struct Trace {
  std::vector<int> completion_order;       // arrival indices, callback order
  std::vector<util::TimeNs> completion_times;
  std::vector<double> probed_rates;
  FlowStats stats;
};

Trace run_schedule(const Schedule& schedule, bool reference) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(12, 0, 0, 3);
  Topology topology(cluster);
  Fabric fabric(sim, topology, FabricConfig{reference});
  Trace trace;
  std::vector<FlowId> started(schedule.arrivals.size(), -1);
  for (std::size_t i = 0; i < schedule.arrivals.size(); ++i) {
    const Arrival& a = schedule.arrivals[i];
    sim.at(a.time, [&, i, a] {
      started[i] = fabric.transfer(a.src, a.dst, a.bytes, [&trace, i, &sim] {
        trace.completion_order.push_back(static_cast<int>(i));
        trace.completion_times.push_back(sim.now());
      });
    });
  }
  for (const Cancel& c : schedule.cancels) {
    sim.at(c.time, [&, c] {
      if (started[static_cast<std::size_t>(c.target)] >= 0) {
        fabric.cancel(started[static_cast<std::size_t>(c.target)]);
      }
    });
  }
  for (util::TimeNs probe : schedule.probes) {
    sim.at(probe, [&] {
      for (FlowId id : started) {
        if (id >= 0) trace.probed_rates.push_back(fabric.flow_rate(id));
      }
    });
  }
  sim.run();
  trace.stats = fabric.stats();
  return trace;
}

class ChurnEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ChurnEquivalence, IncrementalMatchesReference) {
  const Schedule schedule = make_schedule(GetParam());
  const Trace ref = run_schedule(schedule, /*reference=*/true);
  const Trace inc = run_schedule(schedule, /*reference=*/false);

  // Identical callback order and completion timestamps.
  ASSERT_EQ(ref.completion_order.size(), inc.completion_order.size());
  EXPECT_EQ(ref.completion_order, inc.completion_order);
  for (std::size_t i = 0; i < ref.completion_times.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(ref.completion_times[i]),
                static_cast<double>(inc.completion_times[i]), 2.0)
        << "completion " << i << " (arrival " << ref.completion_order[i]
        << ") drifted";
  }

  // Identical rates at every probe point.
  ASSERT_EQ(ref.probed_rates.size(), inc.probed_rates.size());
  for (std::size_t i = 0; i < ref.probed_rates.size(); ++i) {
    EXPECT_NEAR(ref.probed_rates[i], inc.probed_rates[i],
                1e-9 * ref.probed_rates[i] + 1e-9)
        << "probe " << i;
  }

  // Identical aggregate accounting.
  EXPECT_EQ(ref.stats.flows_started, inc.stats.flows_started);
  EXPECT_EQ(ref.stats.flows_completed, inc.stats.flows_completed);
  EXPECT_EQ(ref.stats.flows_cancelled, inc.stats.flows_cancelled);
  EXPECT_EQ(ref.stats.flows_in_flight, inc.stats.flows_in_flight);
  EXPECT_EQ(ref.stats.bytes_delivered, inc.stats.bytes_delivered);
  EXPECT_EQ(ref.stats.bytes_remote, inc.stats.bytes_remote);
  EXPECT_EQ(ref.stats.flows_in_flight, 0);

  // The whole point: the incremental engine recomputes no more often than
  // the from-scratch engine (strictly less whenever waves coalesce).
  EXPECT_LE(inc.stats.rate_recomputations, ref.stats.rate_recomputations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnEquivalence,
                         ::testing::Range(1, 101));  // 100 random schedules

// A same-timestamp wave of N arrivals coalesces into ONE recompute in the
// incremental engine (the reference engine recomputes N times).
TEST(ChurnEquivalence, WaveBatchingIsSublinear) {
  for (int n : {16, 64, 256}) {
    sim::Simulation sim;
    auto cluster = cluster::make_testbed(8, 0, 0, 2);
    Topology topology(cluster);
    Fabric fabric(sim, topology);
    std::vector<FlowId> ids;
    for (int i = 0; i < n; ++i) {
      ids.push_back(
          fabric.transfer(i % 8, (i + 1) % 8, 10 * util::kMiB, [] {}));
    }
    // Force the flush the deferred event would perform, then check that the
    // whole wave cost a single solve.
    EXPECT_GT(fabric.flow_rate(ids.front()), 0.0);
    EXPECT_EQ(fabric.stats().rate_recomputations, 1);
    EXPECT_EQ(fabric.active_flows(), n);
    sim.run();
    EXPECT_EQ(fabric.stats().flows_completed, n);
    EXPECT_EQ(fabric.stats().flows_in_flight, 0);
  }
}

// Zero-byte flows only count as completed once their latency-deferred
// callback actually fires.
TEST(ChurnEquivalence, ZeroByteCompletionCountsAtCallbackTime) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(4, 0, 0);
  Topology topology(cluster);
  Fabric fabric(sim, topology);
  bool fired = false;
  fabric.transfer(0, 1, 0, [&] { fired = true; });
  EXPECT_EQ(fabric.stats().flows_completed, 0);
  EXPECT_EQ(fabric.stats().flows_in_flight, 1);
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(fabric.stats().flows_completed, 1);
  EXPECT_EQ(fabric.stats().flows_in_flight, 0);
}

}  // namespace
}  // namespace evolve::net
