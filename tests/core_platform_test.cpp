#include "core/platform.hpp"
#include "core/session.hpp"

#include <gtest/gtest.h>

#include "workloads/ml.hpp"
#include "workloads/tabular.hpp"

namespace evolve::core {
namespace {

PlatformConfig small_config() {
  PlatformConfig config;
  config.compute_nodes = 6;
  config.storage_nodes = 4;
  config.accel_nodes = 2;
  return config;
}

TEST(Platform, BringsUpAllSubsystems) {
  sim::Simulation sim;
  Platform platform(sim, small_config());
  EXPECT_EQ(platform.cluster().size(), 12);
  EXPECT_EQ(platform.store().servers().size(), 4u);
  EXPECT_EQ(platform.accel().device_count(), 4);
  EXPECT_EQ(platform.orchestrator().running_count(), 0);
}

TEST(Platform, SessionDataflowRoundTrip) {
  sim::Simulation sim;
  Platform platform(sim, small_config());
  Session session(platform);
  session.create_dataset("events", 16, 128 * util::kMiB);
  const auto stats = session.run_dataflow(
      workloads::scan_filter_aggregate("events", "summary", 8), 4, 4);
  EXPECT_GT(stats.duration, 0);
  EXPECT_EQ(stats.bytes_read, 128 * util::kMiB);
  EXPECT_TRUE(platform.catalog().materialized("summary"));
  // Executor pods were released.
  EXPECT_EQ(platform.orchestrator().running_count(), 0);
}

TEST(Platform, SessionHpcRoundTrip) {
  sim::Simulation sim;
  Platform platform(sim, small_config());
  Session session(platform);
  const auto program = workloads::sgd_program(workloads::SgdModel{}, 4);
  const auto stats = session.run_hpc(program, 4);
  EXPECT_EQ(stats.iterations_completed, 10);
  EXPECT_GT(stats.total_time, 0);
  EXPECT_EQ(platform.orchestrator().running_count(), 0);
}

TEST(Platform, SessionAccelOffload) {
  sim::Simulation sim;
  Platform platform(sim, small_config());
  Session session(platform);
  const auto elapsed = session.run_accel("encrypt", util::seconds(15));
  // encrypt speedup 15x: ~1s device time (+ reconfig + overhead).
  EXPECT_LT(elapsed, util::seconds(2));
  EXPECT_GT(elapsed, util::seconds(1) - util::millis(1));
}

TEST(Platform, ExecutorsPreferDataNodes) {
  PlatformConfig config = small_config();
  config.dataflow.locality_wait = util::seconds(5);
  sim::Simulation sim;
  Platform platform(sim, config);
  Session session(platform);
  session.create_dataset("hot", 8, 64 * util::kMiB);
  const auto stats = session.run_dataflow(
      workloads::scan_filter_aggregate("hot", "out", 4), 4, 4);
  // With locality placement on, executor pods land on the storage nodes
  // holding replicas, so source tasks are node-local.
  EXPECT_EQ(stats.stages[0].local_tasks, stats.stages[0].tasks);
}

TEST(Platform, LocalityPlacementOffLosesLocality) {
  PlatformConfig config = small_config();
  config.locality_placement = false;
  config.dataflow.locality_wait = 0;
  sim::Simulation sim;
  Platform platform(sim, config);
  Session session(platform);
  session.create_dataset("hot", 8, 64 * util::kMiB);
  const auto stats = session.run_dataflow(
      workloads::scan_filter_aggregate("hot", "out", 4), 4, 4);
  EXPECT_LT(stats.stages[0].local_tasks, stats.stages[0].tasks);
}

TEST(Platform, WorkflowMixesAllStepKinds) {
  sim::Simulation sim;
  Platform platform(sim, small_config());
  Session session(platform);
  session.create_dataset("raw", 8, 32 * util::kMiB);

  workflow::Workflow wf("mixed");
  orch::PodSpec pod;
  pod.name = "prep";
  pod.request = cluster::cpu_mem(1000, util::kGiB);
  wf.add(workflow::container_step("prep", pod, util::seconds(1)));

  auto analytics = workflow::dataflow_step(
      "analytics", workloads::scan_filter_aggregate("raw", "agg", 4), 2, 4);
  analytics.depends_on = {"prep"};
  wf.add(analytics);

  auto train = workflow::hpc_step(
      "train", workloads::sgd_program(workloads::SgdModel{.epochs = 3}, 4), 4);
  train.depends_on = {"analytics"};
  wf.add(train);

  auto score = workflow::accel_step("score", "dnn-infer", util::seconds(4));
  score.depends_on = {"train"};
  wf.add(score);

  const auto result = session.run_workflow(wf);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.steps.size(), 4u);
  for (const auto& [name, step] : result.steps) {
    EXPECT_TRUE(step.success) << name;
  }
  EXPECT_TRUE(platform.catalog().materialized("agg"));
}

TEST(Platform, WorkflowStepFailsOnMissingDataset) {
  sim::Simulation sim;
  Platform platform(sim, small_config());
  Session session(platform);
  workflow::Workflow wf("broken");
  wf.add(workflow::dataflow_step(
      "analytics", workloads::scan_filter_aggregate("ghost", "out", 4), 2, 4));
  const auto result = session.run_workflow(wf);
  EXPECT_FALSE(result.success);
}

TEST(Platform, RunDataflowValidatesArgs) {
  sim::Simulation sim;
  Platform platform(sim, small_config());
  dataflow::LogicalPlan plan;
  plan.add_sink(plan.add_source("x"), "y");
  EXPECT_THROW(platform.run_dataflow(plan, 0, 4, {}), std::invalid_argument);
  EXPECT_THROW(platform.run_hpc({}, 0, {}), std::invalid_argument);
}

TEST(Platform, ConcurrentWorkflowsShareThePlatform) {
  sim::Simulation sim;
  Platform platform(sim, small_config());
  platform.catalog().define(storage::DatasetSpec{"a", 8, 32 * util::kMiB});
  platform.catalog().preload("a");
  platform.catalog().define(storage::DatasetSpec{"b", 8, 32 * util::kMiB});
  platform.catalog().preload("b");
  int done = 0;
  workflow::Workflow wf1("one");
  wf1.add(workflow::dataflow_step(
      "j1", workloads::scan_filter_aggregate("a", "out-a", 4), 2, 4));
  workflow::Workflow wf2("two");
  wf2.add(workflow::dataflow_step(
      "j2", workloads::scan_filter_aggregate("b", "out-b", 4), 2, 4));
  platform.run_workflow(wf1, [&](const workflow::WorkflowResult& r) {
    EXPECT_TRUE(r.success);
    ++done;
  });
  platform.run_workflow(wf2, [&](const workflow::WorkflowResult& r) {
    EXPECT_TRUE(r.success);
    ++done;
  });
  sim.run();
  EXPECT_EQ(done, 2);
}

}  // namespace
}  // namespace evolve::core
