#include "fault/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "fault/health.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "util/types.hpp"

namespace evolve::fault {
namespace {

using util::Bytes;
using util::TimeNs;

struct PartitionFixture {
  explicit PartitionFixture(int compute = 4, int racks = 2,
                            net::FabricConfig fabric_config = {})
      : cluster(cluster::make_testbed(compute, 0, 0, racks)),
        topology(cluster),
        fabric(sim, topology, fabric_config),
        injector(sim, fabric) {}

  sim::Simulation sim;
  cluster::Cluster cluster;
  net::Topology topology;
  net::Fabric fabric;
  PartitionInjector injector;
};

// make_testbed(4, 0, 0, 2) round-robins hosts over racks: hosts 0, 2 in
// rack 0 and hosts 1, 3 in rack 1 (see cluster::make_testbed). Derive
// the sides instead of hard-coding them so the test survives layout
// changes.
std::vector<cluster::NodeId> rack_hosts(const net::Topology& topo, int rack) {
  std::vector<cluster::NodeId> hosts;
  for (cluster::NodeId h = 0; h < topo.host_count(); ++h) {
    if (topo.rack_of(h) == rack) hosts.push_back(h);
  }
  return hosts;
}

TEST(Fabric, ReachabilityDefaultsToOpen) {
  PartitionFixture f;
  EXPECT_TRUE(f.fabric.reachable(0, 3));
  EXPECT_EQ(f.fabric.parked_flows(), 0);
}

TEST(Fabric, TransferAcrossPartitionParksUntilHeal) {
  PartitionFixture f;
  const auto side_a = rack_hosts(f.topology, 0);
  const auto side_b = rack_hosts(f.topology, 1);
  const PartitionId id = f.injector.split({side_a, side_b});

  EXPECT_FALSE(f.fabric.reachable(side_a[0], side_b[0]));
  EXPECT_TRUE(f.fabric.reachable(side_a[0], side_a[1]));
  EXPECT_TRUE(f.fabric.reachable(side_a[0], side_a[0]));  // loopback exempt

  TimeNs done = -1;
  f.fabric.transfer(side_a[0], side_b[0], util::kMiB,
                    [&] { done = f.sim.now(); });
  f.sim.run();
  EXPECT_EQ(done, -1);  // parked, not failed
  EXPECT_EQ(f.fabric.parked_flows(), 1);
  EXPECT_EQ(f.fabric.stats().flows_parked, 1);
  EXPECT_EQ(f.fabric.stats().flows_in_flight, 1);

  f.injector.heal(id);
  f.sim.run();
  EXPECT_GT(done, 0);
  EXPECT_EQ(f.fabric.parked_flows(), 0);
  EXPECT_EQ(f.fabric.stats().flows_resumed, 1);
  EXPECT_EQ(f.fabric.stats().flows_completed, 1);
  EXPECT_EQ(f.fabric.stats().flows_in_flight, 0);
}

TEST(Fabric, MidTransferPartitionStallsForItsDuration) {
  // Same flow with and without a mid-transfer partition: the partition
  // should push completion out by (almost exactly) its duration.
  const Bytes bytes = 1250 * util::kMiB;  // ~1.05 s solo
  TimeNs solo = -1;
  {
    PartitionFixture f;
    f.fabric.transfer(0, 1, bytes, [&] { solo = f.sim.now(); });
    f.sim.run();
  }
  ASSERT_GT(solo, 0);

  PartitionFixture f;
  const TimeNs cut = util::millis(200);
  const TimeNs heal = util::millis(700);
  TimeNs done = -1;
  f.fabric.transfer(0, 1, bytes, [&] { done = f.sim.now(); });
  f.sim.at(cut, [&] { f.injector.split({{0}, {1}}); });
  f.sim.at(heal, [&] { f.injector.heal_all(); });
  f.sim.run();
  ASSERT_GT(done, 0);
  EXPECT_NEAR(util::to_seconds(done), util::to_seconds(solo + (heal - cut)),
              0.002);
  EXPECT_EQ(f.fabric.stats().flows_parked, 1);
  EXPECT_EQ(f.fabric.stats().flows_resumed, 1);
}

TEST(Fabric, ReferenceSolverParksIdentically) {
  net::FabricConfig ref;
  ref.use_reference_solver = true;
  TimeNs done_ref = -1;
  TimeNs done_grouped = -1;
  for (int pass = 0; pass < 2; ++pass) {
    PartitionFixture f(4, 2, pass == 0 ? net::FabricConfig{} : ref);
    TimeNs& done = pass == 0 ? done_grouped : done_ref;
    f.fabric.transfer(0, 1, 500 * util::kMiB, [&] { done = f.sim.now(); });
    f.fabric.transfer(0, 1, 100 * util::kMiB, [] {});
    f.sim.at(util::millis(100), [&] { f.injector.split({{0}, {1}}); });
    f.sim.at(util::millis(400), [&] { f.injector.heal_all(); });
    f.sim.run();
    EXPECT_EQ(f.fabric.stats().flows_parked, 2);
    EXPECT_EQ(f.fabric.stats().flows_resumed, 2);
    EXPECT_EQ(f.fabric.stats().flows_in_flight, 0);
  }
  ASSERT_GT(done_grouped, 0);
  // The two solvers settle rates with different arithmetic orders;
  // completion must agree to within the solvers' usual tolerance.
  EXPECT_NEAR(util::to_seconds(done_grouped), util::to_seconds(done_ref),
              0.001);
}

TEST(Fabric, CancelParkedFlowDropsIt) {
  PartitionFixture f;
  f.injector.split({{0}, {1}});
  bool fired = false;
  const net::FlowId id =
      f.fabric.transfer(0, 1, util::kMiB, [&] { fired = true; });
  EXPECT_EQ(f.fabric.parked_flows(), 1);
  EXPECT_TRUE(f.fabric.cancel(id));
  EXPECT_EQ(f.fabric.parked_flows(), 0);
  EXPECT_EQ(f.fabric.stats().flows_in_flight, 0);
  f.injector.heal_all();
  f.sim.run();
  EXPECT_FALSE(fired);
}

TEST(Fabric, ZeroByteTransferAlsoParks) {
  PartitionFixture f;
  const PartitionId id = f.injector.split({{0}, {1}});
  TimeNs done = -1;
  f.fabric.transfer(0, 1, 0, [&] { done = f.sim.now(); });
  f.sim.run();
  EXPECT_EQ(done, -1);
  const TimeNs heal_at = util::millis(50);
  f.sim.at(heal_at, [&] { f.injector.heal(id); });
  f.sim.run();
  EXPECT_EQ(done, heal_at + f.topology.latency(0, 1));
}

TEST(PartitionInjector, BridgeNodesStillReachBothSides) {
  PartitionFixture f;
  // Hosts 0 and 1 split; hosts 2 and 3 are listed in no side, so they
  // bridge: a partial partition.
  f.injector.split({{0}, {1}});
  EXPECT_FALSE(f.fabric.reachable(0, 1));
  EXPECT_FALSE(f.fabric.reachable(1, 0));
  EXPECT_TRUE(f.fabric.reachable(0, 2));
  EXPECT_TRUE(f.fabric.reachable(2, 1));
  EXPECT_TRUE(f.fabric.reachable(3, 2));
}

TEST(PartitionInjector, IsolateRackCutsOnlyCrossRackPairs) {
  PartitionFixture f;
  f.injector.isolate_rack(0);
  const auto in_rack = rack_hosts(f.topology, 0);
  const auto out_rack = rack_hosts(f.topology, 1);
  ASSERT_GE(in_rack.size(), 2u);
  ASSERT_GE(out_rack.size(), 2u);
  EXPECT_FALSE(f.fabric.reachable(in_rack[0], out_rack[0]));
  EXPECT_FALSE(f.fabric.reachable(out_rack[0], in_rack[0]));
  EXPECT_TRUE(f.fabric.reachable(in_rack[0], in_rack[1]));  // intra-rack ok
  EXPECT_TRUE(f.fabric.reachable(out_rack[0], out_rack[1]));
}

TEST(PartitionInjector, AsymmetricBlocksOneDirectionOnly) {
  PartitionFixture f;
  const PartitionId id = f.injector.asymmetric({0}, {1});
  EXPECT_FALSE(f.fabric.reachable(0, 1));
  EXPECT_TRUE(f.fabric.reachable(1, 0));  // the reverse path still works
  EXPECT_TRUE(f.fabric.reachable(0, 2));

  TimeNs fwd = -1;
  TimeNs rev = -1;
  f.fabric.transfer(0, 1, util::kMiB, [&] { fwd = f.sim.now(); });
  f.fabric.transfer(1, 0, util::kMiB, [&] { rev = f.sim.now(); });
  f.sim.run();
  EXPECT_EQ(fwd, -1);
  EXPECT_GT(rev, 0);
  f.injector.heal(id);
  f.sim.run();
  EXPECT_GT(fwd, 0);
}

TEST(PartitionInjector, OverlappingEdictsComposeAndHealIndependently) {
  PartitionFixture f;
  const auto rack0 = rack_hosts(f.topology, 0);
  const auto rack1 = rack_hosts(f.topology, 1);
  const PartitionId rack_cut = f.injector.isolate_rack(0);
  const PartitionId node_cut = f.injector.isolate({rack1[0]});
  EXPECT_EQ(f.injector.active_partitions(), 2);

  // Both edicts in force: rack 0 cut off, and rack1[0] cut off from its
  // own rack-mate too.
  EXPECT_FALSE(f.fabric.reachable(rack0[0], rack1[0]));
  EXPECT_FALSE(f.fabric.reachable(rack1[0], rack1[1]));
  EXPECT_TRUE(f.fabric.reachable(rack0[0], rack0[1]));

  // Healing the rack cut must leave the node isolation intact.
  f.injector.heal(rack_cut);
  EXPECT_TRUE(f.fabric.reachable(rack0[0], rack1[1]));
  EXPECT_FALSE(f.fabric.reachable(rack1[0], rack1[1]));
  EXPECT_FALSE(f.fabric.reachable(rack0[0], rack1[0]));

  f.injector.heal(node_cut);
  EXPECT_TRUE(f.fabric.reachable(rack1[0], rack1[1]));
  EXPECT_FALSE(f.injector.active());
  EXPECT_EQ(f.injector.heals(), 2);
}

TEST(PartitionInjector, PartitionSecondsCoversTheUnion) {
  PartitionFixture f;
  // Two overlapping edicts: [1s, 4s] and [2s, 6s] -> union is 5 seconds.
  f.injector.schedule_rack_isolation(0, util::seconds(1), util::seconds(3));
  f.injector.schedule_split({{0}, {1}}, util::seconds(2), util::seconds(4));
  int starts = 0;
  int heals = 0;
  f.injector.on_partition([&](TimeNs) { ++starts; });
  f.injector.on_heal([&](TimeNs) { ++heals; });
  f.sim.run();
  EXPECT_EQ(starts, 2);
  EXPECT_EQ(heals, 2);
  EXPECT_NEAR(f.injector.partition_seconds(), 5.0, 1e-9);
  EXPECT_EQ(f.injector.partitions_injected(), 2);
}

TEST(PartitionInjector, RandomProcessIsSeededAndDeterministic) {
  auto run = [](std::uint64_t seed) {
    PartitionInjectorConfig config;
    config.seed = seed;
    sim::Simulation sim;
    auto cluster = cluster::make_testbed(4, 0, 0, 2);
    net::Topology topo(cluster);
    net::Fabric fabric(sim, topo);
    PartitionInjector injector(sim, fabric, config);
    injector.random_partitions(2.0, 1.0, util::seconds(60));
    sim.run();
    EXPECT_FALSE(injector.active());  // every injected partition healed
    return std::make_pair(injector.partitions_injected(),
                          injector.partition_seconds());
  };
  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_GT(a.first, 0);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// -- Satellite: FaultInjector overlap composition ----------------------

TEST(FaultInjector, OverlappingOutagesCoalesceWithPartitionsActive) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(4, 0, 0, 2);
  net::Topology topo(cluster);
  net::Fabric fabric(sim, topo);
  FaultInjector faults(sim);
  PartitionInjector partitions(sim, fabric);

  std::vector<std::pair<cluster::NodeId, bool>> transitions;
  faults.on_failure([&](cluster::NodeId node, TimeNs) {
    transitions.emplace_back(node, false);
  });
  faults.on_recovery([&](cluster::NodeId node, TimeNs) {
    transitions.emplace_back(node, true);
  });

  // Node 0 lives in rack 0. Rack outage [1s, 5s] overlaps a per-node
  // outage [3s, 7s]; a concurrent network partition [2s, 6s] must not
  // perturb the crash accounting at all (different failure planes).
  const int rack0 = topo.rack_of(0);
  faults.schedule_rack_outage(cluster, rack0, util::seconds(1),
                              util::seconds(4));
  faults.schedule_outage(0, util::seconds(3), util::seconds(4));
  partitions.schedule_rack_isolation(1, util::seconds(2), util::seconds(4));
  sim.run();

  // One failure and one recovery per rack-0 node: the overlapping
  // per-node outage extends node 0's downtime instead of double-firing.
  int node0_failures = 0;
  int node0_recoveries = 0;
  for (const auto& [node, up] : transitions) {
    if (node != 0) continue;
    up ? ++node0_recoveries : ++node0_failures;
  }
  EXPECT_EQ(node0_failures, 1);
  EXPECT_EQ(node0_recoveries, 1);
  EXPECT_EQ(faults.down_count(), 0);

  // Downtime union: node 0 down [1s, 7s] = 6s; its rack-mates down
  // [1s, 5s] = 4s each.
  const int rack_mates = static_cast<int>(
      std::count_if(transitions.begin(), transitions.end(),
                    [](const auto& t) { return !t.second; }));
  const double expected = 6.0 + 4.0 * (rack_mates - 1);
  EXPECT_NEAR(faults.downtime_node_seconds(), expected, 1e-9);
  EXPECT_NEAR(partitions.partition_seconds(), 4.0, 1e-9);
}

// -- Satellite: peer-median health regression --------------------------

TEST(HealthScorer, DownNodesDropOutOfPeerMedian) {
  sim::Simulation sim;
  HealthScorerConfig config;
  config.min_samples = 1;
  config.min_peers = 2;
  config.ewma_alpha = 1.0;  // score tracks the latest sample exactly
  HealthScorer scorer(sim, config);

  // Nodes 1..3 are slow history (100 ms); node 0 runs at 10 ms.
  for (cluster::NodeId n = 1; n <= 3; ++n) {
    scorer.record(n, util::millis(100));
  }
  scorer.record(0, util::millis(10));
  EXPECT_NEAR(scorer.score(0), 0.1, 1e-9);

  // Nodes 2 and 3 die. Without the down-exclusion their frozen 100 ms
  // EWMAs would keep the median at 100 ms and node 1 (now also at
  // 10 ms) would look healthy against dead peers; with it, the median
  // is formed from live nodes only.
  scorer.set_node_down(2, true);
  scorer.set_node_down(3, true);
  scorer.record(0, util::millis(10));
  scorer.record(1, util::millis(10));
  // Live peers of node 1: just node 0 -> below min_peers, so unknown.
  EXPECT_EQ(scorer.score(1), 0.0);

  // A third live node restores the median from live data.
  scorer.set_node_down(2, false);
  scorer.record(2, util::millis(10));
  EXPECT_NEAR(scorer.score(1), 1.0, 1e-9);
  EXPECT_FALSE(scorer.is_node_down(2));
  EXPECT_TRUE(scorer.is_node_down(3));
}

}  // namespace
}  // namespace evolve::fault
