#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "orch/controllers.hpp"
#include "orch/scheduler.hpp"
#include "sim/simulation.hpp"
#include "util/types.hpp"

namespace evolve::orch {
namespace {

using cluster::cpu_mem;

PodSpec spread_pod(const std::string& name, const std::string& group) {
  PodSpec spec;
  spec.name = name;
  spec.request = cpu_mem(1000, util::kGiB);
  spec.anti_affinity_group = group;
  return spec;
}

TEST(AntiAffinity, ReplicasLandOnDistinctNodes) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(4, 0, 0);
  Orchestrator orch(sim, cluster, SchedulingPolicy::binpacking(cluster));
  // Bin-packing would stack all pods on one node without anti-affinity.
  std::set<cluster::NodeId> nodes;
  for (int i = 0; i < 4; ++i) {
    orch.submit(spread_pod("web-" + std::to_string(i), "web"), -1,
                [&](PodId, cluster::NodeId n) { nodes.insert(n); });
  }
  sim.run();
  EXPECT_EQ(nodes.size(), 4u);
}

TEST(AntiAffinity, FifthReplicaWaitsOnFourNodes) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(4, 0, 0);
  Orchestrator orch(sim, cluster, SchedulingPolicy::spreading(cluster));
  int started = 0;
  for (int i = 0; i < 5; ++i) {
    orch.submit(spread_pod("web-" + std::to_string(i), "web"), -1,
                [&](PodId, cluster::NodeId) { ++started; });
  }
  sim.run();
  EXPECT_EQ(started, 4);
  EXPECT_EQ(orch.pending_count(), 1);
}

TEST(AntiAffinity, SlotFreesWhenReplicaDies) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(2, 0, 0);
  Orchestrator orch(sim, cluster, SchedulingPolicy::spreading(cluster));
  std::vector<PodId> pods;
  int started = 0;
  for (int i = 0; i < 3; ++i) {
    pods.push_back(orch.submit(spread_pod("db-" + std::to_string(i), "db"),
                               -1, [&](PodId, cluster::NodeId) { ++started; }));
  }
  sim.run();
  EXPECT_EQ(started, 2);  // only two nodes
  orch.finish(pods[0]);
  sim.run();
  EXPECT_EQ(started, 3);  // third replica takes the freed slot
}

TEST(AntiAffinity, DifferentGroupsCoexist) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(1, 0, 0);
  Orchestrator orch(sim, cluster, SchedulingPolicy::spreading(cluster));
  int started = 0;
  orch.submit(spread_pod("a", "group-a"), -1,
              [&](PodId, cluster::NodeId) { ++started; });
  orch.submit(spread_pod("b", "group-b"), -1,
              [&](PodId, cluster::NodeId) { ++started; });
  PodSpec plain = spread_pod("c", "");
  orch.submit(plain, -1, [&](PodId, cluster::NodeId) { ++started; });
  sim.run();
  EXPECT_EQ(started, 3);  // all on the single node: no conflicts
}

TEST(AntiAffinity, GangMembersSpread) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(4, 0, 0);
  Orchestrator orch(sim, cluster, SchedulingPolicy::binpacking(cluster));
  std::vector<PodSpec> gang;
  for (int i = 0; i < 4; ++i) {
    gang.push_back(spread_pod("rank-" + std::to_string(i), "ring"));
  }
  std::set<cluster::NodeId> nodes;
  orch.submit_gang(gang, util::seconds(1),
                   [&](PodId, cluster::NodeId n) { nodes.insert(n); });
  sim.run();
  EXPECT_EQ(nodes.size(), 4u);
}

TEST(AntiAffinity, GangTooWideForClusterHolds) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(2, 0, 0);
  Orchestrator orch(sim, cluster, SchedulingPolicy::spreading(cluster));
  std::vector<PodSpec> gang;
  for (int i = 0; i < 3; ++i) {
    gang.push_back(spread_pod("rank-" + std::to_string(i), "ring"));
  }
  int started = 0;
  orch.submit_gang(gang, util::seconds(1),
                   [&](PodId, cluster::NodeId) { ++started; });
  sim.run();
  EXPECT_EQ(started, 0);  // 3 spread-pods cannot fit 2 nodes: all held
  EXPECT_EQ(orch.pending_count(), 3);
}

TEST(AntiAffinity, DeploymentSurvivesDrainWithSpreading) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(4, 0, 0);
  Orchestrator orch(sim, cluster, SchedulingPolicy::spreading(cluster));
  PodSpec pod = spread_pod("api", "api");
  DeploymentController deploy(orch, "api", pod, 3);
  sim.run();
  EXPECT_EQ(deploy.live(), 3);
  // Drain one node; the replica must move to the remaining empty node.
  cluster::NodeId victim = cluster::kInvalidNode;
  for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
    if (orch.node_status(n).pod_count() > 0) {
      victim = n;
      break;
    }
  }
  orch.drain(victim);
  sim.run();
  EXPECT_EQ(orch.running_count(), 3);
  EXPECT_EQ(orch.node_status(victim).pod_count(), 0);
}

}  // namespace
}  // namespace evolve::orch
