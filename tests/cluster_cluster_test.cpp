#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "util/types.hpp"

namespace evolve::cluster {
namespace {

TEST(NodeSpec, AllocatableDerivesFromHardware) {
  NodeSpec node = make_compute_node("n0", 0);
  const Resources r = node.allocatable();
  EXPECT_EQ(r.cpu_millicores, 32000);
  EXPECT_EQ(r.memory_bytes, 128 * util::kGiB);
  EXPECT_EQ(r.accel_slots, 0);
}

TEST(NodeSpec, AccelSlotsScaleWithVirtualization) {
  NodeSpec node = make_accel_node("a0", 0);
  EXPECT_EQ(node.allocatable(1).accel_slots, 2);
  EXPECT_EQ(node.allocatable(4).accel_slots, 8);
}

TEST(NodeSpec, DeviceLookup) {
  NodeSpec node = make_storage_node("s0", 0);
  ASSERT_NE(node.device("nvme"), nullptr);
  ASSERT_NE(node.device("hdd"), nullptr);
  EXPECT_EQ(node.device("tape"), nullptr);
  EXPECT_GT(node.device("dram")->read_bw_bytes_per_s,
            node.device("nvme")->read_bw_bytes_per_s);
  EXPECT_GT(node.device("nvme")->read_bw_bytes_per_s,
            node.device("hdd")->read_bw_bytes_per_s);
}

TEST(NodeSpec, LabelCheck) {
  NodeSpec node = make_accel_node("a0", 1);
  EXPECT_TRUE(node.has_label("role=accel"));
  EXPECT_FALSE(node.has_label("role=compute"));
}

TEST(Cluster, AddAndFind) {
  Cluster cluster;
  const NodeId a = cluster.add_node(make_compute_node("alpha", 0));
  const NodeId b = cluster.add_node(make_storage_node("beta", 1));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(cluster.find("beta"), b);
  EXPECT_EQ(cluster.find("gamma"), kInvalidNode);
  EXPECT_EQ(cluster.node(a).name, "alpha");
  EXPECT_THROW(cluster.node(7), std::out_of_range);
}

TEST(Cluster, RejectsInvalidNodes) {
  Cluster cluster;
  NodeSpec bad;
  bad.name = "bad";
  bad.cores = 0;
  EXPECT_THROW(cluster.add_node(bad), std::invalid_argument);
  NodeSpec neg_rack = make_compute_node("n", 0);
  neg_rack.rack = -1;
  EXPECT_THROW(cluster.add_node(neg_rack), std::invalid_argument);
}

TEST(Cluster, LabelQuery) {
  Cluster cluster = make_testbed(2, 1, 1);
  EXPECT_EQ(cluster.nodes_with_label("role=compute").size(), 2u);
  EXPECT_EQ(cluster.nodes_with_label("role=storage").size(), 1u);
  EXPECT_EQ(cluster.nodes_with_label("role=accel").size(), 1u);
}

TEST(Cluster, RackCount) {
  Cluster cluster = make_testbed(4, 2, 2, 3);
  EXPECT_EQ(cluster.rack_count(), 3);
  EXPECT_EQ(cluster.size(), 8);
}

TEST(Cluster, TestbedSpreadsAcrossRacks) {
  Cluster cluster = make_testbed(4, 0, 0, 2);
  int rack0 = 0, rack1 = 0;
  for (const auto& node : cluster.nodes()) {
    (node.rack == 0 ? rack0 : rack1)++;
  }
  EXPECT_EQ(rack0, 2);
  EXPECT_EQ(rack1, 2);
}

TEST(Cluster, TotalAllocatableSums) {
  Cluster cluster = make_testbed(2, 0, 0);
  const Resources total = cluster.total_allocatable();
  EXPECT_EQ(total.cpu_millicores, 64000);
  EXPECT_EQ(total.memory_bytes, 256 * util::kGiB);
}

TEST(Cluster, TestbedRejectsZeroRacks) {
  EXPECT_THROW(make_testbed(1, 1, 1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace evolve::cluster
