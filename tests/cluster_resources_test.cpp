#include "cluster/resources.hpp"

#include <gtest/gtest.h>

#include "util/types.hpp"

namespace evolve::cluster {
namespace {

TEST(Resources, ArithmeticWorks) {
  Resources a = cpu_mem(1000, util::kGiB);
  Resources b = cpu_mem_accel(500, util::kGiB / 2, 1);
  Resources sum = a + b;
  EXPECT_EQ(sum.cpu_millicores, 1500);
  EXPECT_EQ(sum.memory_bytes, util::kGiB + util::kGiB / 2);
  EXPECT_EQ(sum.accel_slots, 1);
  Resources diff = sum - b;
  EXPECT_EQ(diff, a);
}

TEST(Resources, FitsChecksAllDimensions) {
  Resources capacity = cpu_mem_accel(4000, 8 * util::kGiB, 2);
  EXPECT_TRUE(capacity.fits(cpu_mem(4000, 8 * util::kGiB)));
  EXPECT_TRUE(capacity.fits(cpu_mem_accel(1, 1, 2)));
  EXPECT_FALSE(capacity.fits(cpu_mem(4001, 1)));
  EXPECT_FALSE(capacity.fits(cpu_mem(1, 8 * util::kGiB + 1)));
  EXPECT_FALSE(capacity.fits(cpu_mem_accel(1, 1, 3)));
}

TEST(Resources, ZeroFitsEverywhere) {
  Resources capacity;
  EXPECT_TRUE(capacity.fits(Resources{}));
  EXPECT_TRUE(capacity.is_zero());
}

TEST(Resources, AnyNegativeDetectsUnderflow) {
  Resources r = cpu_mem(100, 100);
  EXPECT_FALSE(r.any_negative());
  r -= cpu_mem(200, 0);
  EXPECT_TRUE(r.any_negative());
}

TEST(Resources, DominantShare) {
  Resources capacity = cpu_mem(1000, 1000);
  EXPECT_DOUBLE_EQ(cpu_mem(500, 100).dominant_share(capacity), 0.5);
  EXPECT_DOUBLE_EQ(cpu_mem(100, 900).dominant_share(capacity), 0.9);
  EXPECT_DOUBLE_EQ(Resources{}.dominant_share(capacity), 0.0);
  // Requesting a dimension the capacity lacks marks infeasible (>= 2).
  EXPECT_GE(cpu_mem_accel(0, 0, 1).dominant_share(capacity), 2.0);
}

TEST(Resources, ToStringMentionsAllFields) {
  const std::string text = cpu_mem_accel(1500, util::kGiB, 2).to_string();
  EXPECT_NE(text.find("cpu=1500m"), std::string::npos);
  EXPECT_NE(text.find("1.00 GiB"), std::string::npos);
  EXPECT_NE(text.find("accel=2"), std::string::npos);
}

}  // namespace
}  // namespace evolve::cluster
