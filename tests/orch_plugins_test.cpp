#include "orch/plugins.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "util/types.hpp"

namespace evolve::orch {
namespace {

using cluster::cpu_mem;

struct PluginFixture {
  PluginFixture() : cluster(cluster::make_testbed(2, 1, 1)) {
    for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
      nodes.emplace_back(n, cluster.node(n).allocatable());
    }
  }
  cluster::Cluster cluster;
  std::vector<NodeStatus> nodes;
};

TEST(ResourceFitFilter, ChecksFreeCapacity) {
  PluginFixture f;
  ResourceFitFilter filter;
  PodSpec pod;
  pod.request = cpu_mem(32000, util::kGiB);
  EXPECT_TRUE(filter.feasible(pod, f.cluster.node(0), f.nodes[0]));
  f.nodes[0].bind(1, cpu_mem(31000, 0));
  EXPECT_FALSE(filter.feasible(pod, f.cluster.node(0), f.nodes[0]));
}

TEST(NodeSelectorFilter, MatchesLabels) {
  PluginFixture f;
  NodeSelectorFilter filter;
  PodSpec pod;
  pod.node_selector = {"role=accel"};
  EXPECT_FALSE(filter.feasible(pod, f.cluster.node(0), f.nodes[0]));
  const auto accel_nodes = f.cluster.nodes_with_label("role=accel");
  ASSERT_EQ(accel_nodes.size(), 1u);
  EXPECT_TRUE(filter.feasible(pod, f.cluster.node(accel_nodes[0]),
                              f.nodes[static_cast<std::size_t>(accel_nodes[0])]));
}

TEST(NodeSelectorFilter, EmptySelectorMatchesAll) {
  PluginFixture f;
  NodeSelectorFilter filter;
  PodSpec pod;
  for (cluster::NodeId n = 0; n < f.cluster.size(); ++n) {
    EXPECT_TRUE(filter.feasible(pod, f.cluster.node(n),
                                f.nodes[static_cast<std::size_t>(n)]));
  }
}

TEST(LeastAllocatedScore, PrefersEmptyNode) {
  PluginFixture f;
  LeastAllocatedScore score;
  PodSpec pod;
  pod.request = cpu_mem(1000, util::kGiB);
  const double empty = score.score(pod, f.cluster.node(0), f.nodes[0]);
  f.nodes[1].bind(1, cpu_mem(16000, 64 * util::kGiB));
  const double busy = score.score(pod, f.cluster.node(1), f.nodes[1]);
  EXPECT_GT(empty, busy);
}

TEST(MostAllocatedScore, PrefersBusyNode) {
  PluginFixture f;
  MostAllocatedScore score;
  PodSpec pod;
  pod.request = cpu_mem(1000, util::kGiB);
  const double empty = score.score(pod, f.cluster.node(0), f.nodes[0]);
  f.nodes[1].bind(1, cpu_mem(16000, 64 * util::kGiB));
  const double busy = score.score(pod, f.cluster.node(1), f.nodes[1]);
  EXPECT_LT(empty, busy);
}

TEST(BalancedAllocationScore, PenalizesSkew) {
  PluginFixture f;
  BalancedAllocationScore score;
  PodSpec balanced;
  balanced.request = cpu_mem(16000, 64 * util::kGiB);  // 50% cpu, 50% mem
  PodSpec skewed;
  skewed.request = cpu_mem(32000, 0);  // 100% cpu, 0% mem
  EXPECT_GT(score.score(balanced, f.cluster.node(0), f.nodes[0]),
            score.score(skewed, f.cluster.node(0), f.nodes[0]));
}

TEST(LocalityScore, ExactRackAndNone) {
  PluginFixture f;
  LocalityScore score(f.cluster);
  PodSpec pod;
  pod.preferred_nodes = {0};  // rack 0
  EXPECT_DOUBLE_EQ(score.score(pod, f.cluster.node(0), f.nodes[0]), 1.0);
  // Node 2 is in rack 0 (round-robin: 0->r0, 1->r1, 2->r0, 3->r1).
  EXPECT_DOUBLE_EQ(score.score(pod, f.cluster.node(2), f.nodes[2]), 0.5);
  EXPECT_DOUBLE_EQ(score.score(pod, f.cluster.node(1), f.nodes[1]), 0.0);
}

TEST(LocalityScore, NoPreferenceScoresZero) {
  PluginFixture f;
  LocalityScore score(f.cluster);
  PodSpec pod;
  EXPECT_DOUBLE_EQ(score.score(pod, f.cluster.node(0), f.nodes[0]), 0.0);
}

TEST(PodSpreadScore, DecaysWithPodCount) {
  PluginFixture f;
  PodSpreadScore score;
  PodSpec pod;
  const double empty = score.score(pod, f.cluster.node(0), f.nodes[0]);
  f.nodes[0].bind(1, cpu_mem(1, 1));
  f.nodes[0].bind(2, cpu_mem(1, 1));
  const double busy = score.score(pod, f.cluster.node(0), f.nodes[0]);
  EXPECT_GT(empty, busy);
  EXPECT_DOUBLE_EQ(empty, 1.0);
}

TEST(SchedulingPolicy, FactoriesPopulatePlugins) {
  PluginFixture f;
  const auto spread = SchedulingPolicy::spreading(f.cluster);
  EXPECT_EQ(spread.filters.size(), 2u);
  EXPECT_GE(spread.scorers.size(), 3u);
  const auto pack = SchedulingPolicy::binpacking(f.cluster);
  EXPECT_EQ(pack.filters.size(), 2u);
  EXPECT_GE(pack.scorers.size(), 2u);
}

}  // namespace
}  // namespace evolve::orch
