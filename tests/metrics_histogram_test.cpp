#include "metrics/histogram.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace evolve::metrics {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0);
}

TEST(Histogram, SmallValuesExact) {
  Histogram h;
  for (int i = 0; i <= 10; ++i) h.record(i);
  EXPECT_EQ(h.count(), 11);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 10);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_EQ(h.p50(), 5);
}

TEST(Histogram, PercentilesMonotonic) {
  Histogram h;
  util::Rng rng(5);
  for (int i = 0; i < 10000; ++i) h.record(rng.uniform_int(0, 1000000));
  std::int64_t prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const auto v = h.percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(Histogram, LargeValueRelativeError) {
  Histogram h;
  const std::int64_t value = 123456789;
  h.record(value);
  const auto p = h.percentile(50);
  EXPECT_NEAR(static_cast<double>(p), static_cast<double>(value),
              static_cast<double>(value) * 0.02);
}

TEST(Histogram, MultiValuePercentileStaysNearTrueValue) {
  // Bulk at one large value, a small tail at another: the p99 must land
  // on the bulk's bucket (within the 1/64 relative bucket error), not be
  // inflated by bucket-midpoint mismatch. min/max clamping cannot rescue
  // a wrong answer here because both values are interior.
  Histogram h;
  h.record_n(30000, 9000);
  h.record_n(120000, 24);
  EXPECT_NEAR(static_cast<double>(h.p99()), 30000.0, 30000.0 / 64.0 + 1);
  EXPECT_NEAR(static_cast<double>(h.percentile(99.9)), 120000.0,
              120000.0 / 64.0 + 1);
}

TEST(Histogram, BucketRelativeErrorBoundedAcrossOctaves) {
  for (const std::int64_t value :
       {std::int64_t{100}, std::int64_t{1000}, std::int64_t{65537},
        std::int64_t{1000000}, std::int64_t{123456789012}}) {
    Histogram h;
    h.record_n(1, 50);  // half the mass far below
    h.record_n(value, 50);
    const auto p90 = h.percentile(90);
    EXPECT_NEAR(static_cast<double>(p90), static_cast<double>(value),
                static_cast<double>(value) / 64.0 + 1)
        << "value=" << value;
  }
}

TEST(Histogram, P999ReadsTheExtremeTail) {
  Histogram h;
  h.record_n(10, 9990);
  h.record_n(5000, 10);
  EXPECT_EQ(h.p50(), 10);
  EXPECT_EQ(h.p99(), 10);
  EXPECT_NEAR(static_cast<double>(h.p999()), 5000.0, 5000.0 / 64.0 + 1);
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h;
  h.record(-100);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.count(), 1);
}

TEST(Histogram, RecordNCounts) {
  Histogram h;
  h.record_n(7, 100);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.p50(), 7);
  h.record_n(9, 0);   // no-op
  h.record_n(9, -5);  // no-op
  EXPECT_EQ(h.count(), 100);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_NEAR(a.mean(), 505.0, 1.0);
}

TEST(Histogram, MergeEmptyIsNoop) {
  Histogram a, b;
  a.record(5);
  a.merge(b);
  EXPECT_EQ(a.count(), 1);
  b.merge(a);
  EXPECT_EQ(b.count(), 1);
  EXPECT_EQ(b.min(), 5);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(42);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 50; ++i) h.record(9);
  EXPECT_NEAR(h.stddev(), 0.0, 1e-9);
}

TEST(Histogram, StddevUniformApprox) {
  Histogram h;
  util::Rng rng(11);
  for (int i = 0; i < 100000; ++i) h.record(rng.uniform_int(0, 1000));
  // Uniform[0,1000] stddev ~= 1001/sqrt(12) ~= 289.
  EXPECT_NEAR(h.stddev(), 289.0, 10.0);
}

TEST(Histogram, PercentileBoundedByMinMax) {
  Histogram h;
  h.record(100);
  h.record(200);
  for (double p : {0.0, 50.0, 100.0}) {
    EXPECT_GE(h.percentile(p), 100);
    EXPECT_LE(h.percentile(p), 200);
  }
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h;
  h.record(1);
  EXPECT_NE(h.summary().find("n=1"), std::string::npos);
}

// Property sweep: quantile accuracy within ~2% relative error across
// magnitudes.
class HistogramAccuracy : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(HistogramAccuracy, SingleValueRoundTrips) {
  Histogram h;
  const std::int64_t value = GetParam();
  h.record(value);
  const auto back = h.percentile(50);
  const double tolerance = std::max<double>(1.0, static_cast<double>(value) * 0.02);
  EXPECT_NEAR(static_cast<double>(back), static_cast<double>(value), tolerance);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, HistogramAccuracy,
                         ::testing::Values(0, 1, 63, 64, 65, 1000, 4095, 4096,
                                           1 << 20, (std::int64_t{1} << 40) + 17));

// Regression: the naive E[x^2] - E[x]^2 variance cancels catastrophically
// once values carry a large offset (ns timestamps): both terms are ~1e24
// while their difference is ~1. The Welford form must stay exact-ish.
TEST(Histogram, StddevSurvivesLargeOffsets) {
  Histogram h;
  const std::int64_t offset = 1'000'000'000'000;  // ~16 min in ns
  h.record(offset);
  h.record(offset + 1);
  h.record(offset + 2);
  // Population stddev of {0,1,2} is sqrt(2/3).
  EXPECT_NEAR(h.stddev(), 0.816496580927726, 1e-6);
}

TEST(Histogram, StddevOfConstantLargeValuesIsZero) {
  Histogram h;
  h.record_n(1'234'567'890'123, 1000);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

TEST(Histogram, RecordNMatchesRepeatedRecord) {
  Histogram a, b;
  const std::int64_t offset = 5'000'000'000'000;
  for (int i = 0; i < 500; ++i) a.record(offset + (i % 7));
  for (int v = 0; v < 7; ++v) {
    b.record_n(offset + v, v < 3 ? 72 : 71);  // 500 total, same multiset
  }
  ASSERT_EQ(a.count(), b.count());
  // Batched (Chan) vs sequential (Welford) accumulation differ only by
  // FP ordering; at a 5e12 offset the naive form would be off by ~2.0.
  EXPECT_NEAR(a.stddev(), b.stddev(), 1e-2);
  EXPECT_NEAR(a.mean(), b.mean(), 1e-3);
}

TEST(Histogram, MergePreservesStddevAtLargeOffsets) {
  Histogram left, right, whole;
  const std::int64_t offset = 900'000'000'000'000;
  for (int i = 0; i < 100; ++i) {
    const std::int64_t v = offset + 10 * i;
    (i % 2 ? left : right).record(v);
    whole.record(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.stddev(), whole.stddev(), 1e-6);
  // And merging an empty histogram is a no-op.
  Histogram empty;
  const double before = left.stddev();
  left.merge(empty);
  EXPECT_DOUBLE_EQ(left.stddev(), before);
}

}  // namespace
}  // namespace evolve::metrics
