#include "hpc/communicator.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "hpc/job.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"

namespace evolve::hpc {
namespace {

struct CommFixture {
  explicit CommFixture(int nodes = 8, CommConfig config = {})
      : cluster(cluster::make_testbed(nodes, 0, 0)),
        topology(cluster),
        fabric(sim, topology) {
    std::vector<cluster::NodeId> ranks;
    for (int n = 0; n < nodes; ++n) ranks.push_back(n);
    comm = std::make_unique<Communicator>(sim, fabric, ranks, config);
  }

  sim::Simulation sim;
  cluster::Cluster cluster;
  net::Topology topology;
  net::Fabric fabric;
  std::unique_ptr<Communicator> comm;
};

TEST(Communicator, RequiresRanks) {
  CommFixture f;
  EXPECT_THROW(Communicator(f.sim, f.fabric, {}), std::invalid_argument);
}

TEST(Communicator, SendDeliversAfterTransferTime) {
  CommFixture f;
  util::TimeNs done = -1;
  f.comm->send(0, 1, 125 * util::kMiB, [&] { done = f.sim.now(); });
  f.sim.run();
  const double expected_s = 125.0 * util::kMiB / 1.25e9;
  EXPECT_NEAR(util::to_seconds(done), expected_s, 0.01 * expected_s);
  EXPECT_EQ(f.comm->metrics().counter("messages"), 1);
}

TEST(Communicator, BarrierCompletes) {
  CommFixture f;
  bool done = false;
  f.comm->barrier([&] { done = true; });
  f.sim.run();
  EXPECT_TRUE(done);
  EXPECT_GT(f.sim.now(), 0);
}

TEST(Communicator, NodeOfValidatesRank) {
  CommFixture f(4);
  EXPECT_EQ(f.comm->node_of(2), 2);
  EXPECT_THROW(f.comm->node_of(4), std::out_of_range);
  EXPECT_THROW(f.comm->node_of(-1), std::out_of_range);
}

TEST(Communicator, TreeBcastFasterThanLinearForManyRanks) {
  const util::Bytes bytes = 16 * util::kMiB;
  util::TimeNs linear_time = 0, tree_time = 0;
  {
    CommFixture f(16);
    f.comm->bcast(0, bytes, CollectiveAlgo::kLinear,
                  [&] { linear_time = f.sim.now(); });
    f.sim.run();
  }
  {
    CommFixture f(16);
    f.comm->bcast(0, bytes, CollectiveAlgo::kTree,
                  [&] { tree_time = f.sim.now(); });
    f.sim.run();
  }
  // Linear serializes 15 copies through the root's uplink; the tree
  // parallelizes across senders.
  EXPECT_LT(tree_time, linear_time / 2);
}

TEST(Communicator, RingAllreduceBeatsLinearAtLargeSize) {
  const util::Bytes bytes = 64 * util::kMiB;
  util::TimeNs ring_time = 0, linear_time = 0;
  {
    CommFixture f(8);
    f.comm->allreduce(bytes, CollectiveAlgo::kRing,
                      [&] { ring_time = f.sim.now(); });
    f.sim.run();
  }
  {
    CommFixture f(8);
    f.comm->allreduce(bytes, CollectiveAlgo::kLinear,
                      [&] { linear_time = f.sim.now(); });
    f.sim.run();
  }
  EXPECT_LT(ring_time, linear_time);
}

TEST(Communicator, RecursiveDoublingBeatsRingAtSmallSize) {
  const util::Bytes bytes = 1024;
  util::TimeNs rd_time = 0, ring_time = 0;
  {
    CommFixture f(16);
    f.comm->allreduce(bytes, CollectiveAlgo::kRecursiveDoubling,
                      [&] { rd_time = f.sim.now(); });
    f.sim.run();
  }
  {
    CommFixture f(16);
    f.comm->allreduce(bytes, CollectiveAlgo::kRing,
                      [&] { ring_time = f.sim.now(); });
    f.sim.run();
  }
  // Small messages are latency-bound: log2(16)=4 rounds beats 2*15 rounds.
  EXPECT_LT(rd_time, ring_time);
}

TEST(Communicator, AllgatherCompletes) {
  CommFixture f(4);
  bool done = false;
  f.comm->allgather(util::kMiB, [&] { done = true; });
  f.sim.run();
  EXPECT_TRUE(done);
}

TEST(Communicator, ReduceCompletes) {
  CommFixture f(5);
  bool done = false;
  f.comm->reduce(2, util::kMiB, CollectiveAlgo::kTree, [&] { done = true; });
  f.sim.run();
  EXPECT_TRUE(done);
}

TEST(Communicator, EmptyScheduleCompletesImmediately) {
  CommFixture f(1);
  bool done = false;
  f.comm->allreduce(util::kMiB, CollectiveAlgo::kRing, [&] { done = true; });
  f.sim.run();
  EXPECT_TRUE(done);
}

TEST(Communicator, IntraNodeRanksUseLoopback) {
  // Two ranks pinned to the same node: traffic never crosses the network.
  CommFixture f(2);
  Communicator local(f.sim, f.fabric, {0, 0});
  util::TimeNs done = -1;
  local.send(0, 1, 160 * util::kMiB, [&] { done = f.sim.now(); });
  f.sim.run();
  // Loopback runs at 16 GB/s vs 1.25 GB/s network.
  const double expected_s = 160.0 * util::kMiB / 16e9;
  EXPECT_NEAR(util::to_seconds(done), expected_s, 0.1 * expected_s);
}

TEST(RunMpiProgram, IteratesComputeAndAllreduce) {
  CommFixture f(4);
  MpiProgram program;
  program.iterations = 5;
  program.compute_per_iteration = util::millis(10);
  program.allreduce_bytes = util::kMiB;
  MpiRunStats stats;
  bool done = false;
  run_mpi_program(f.sim, *f.comm, program, [&](const MpiRunStats& s) {
    stats = s;
    done = true;
  });
  f.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(stats.iterations_completed, 5);
  EXPECT_EQ(stats.compute_time, util::millis(50));
  EXPECT_GT(stats.total_time, util::millis(50));  // communication adds time
}

TEST(RunMpiProgram, SpeedupShrinksComputeOnly) {
  CommFixture f(4);
  MpiProgram fast;
  fast.iterations = 3;
  fast.compute_per_iteration = util::millis(40);
  fast.allreduce_bytes = util::kMiB;
  fast.compute_speedup = 4.0;
  MpiRunStats stats;
  run_mpi_program(f.sim, *f.comm, fast,
                  [&](const MpiRunStats& s) { stats = s; });
  f.sim.run();
  EXPECT_EQ(stats.compute_time, util::millis(30));  // 3 x 10ms
}

TEST(RunMpiProgram, ZeroIterationsCompletesInstantly) {
  CommFixture f(2);
  MpiProgram program;
  program.iterations = 0;
  bool done = false;
  run_mpi_program(f.sim, *f.comm, program,
                  [&](const MpiRunStats& s) { done = (s.total_time == 0); });
  f.sim.run();
  EXPECT_TRUE(done);
}

TEST(RunMpiProgram, ValidatesArguments) {
  CommFixture f(2);
  MpiProgram bad;
  bad.iterations = -1;
  EXPECT_THROW(run_mpi_program(f.sim, *f.comm, bad, [](const MpiRunStats&) {}),
               std::invalid_argument);
  MpiProgram bad2;
  bad2.compute_speedup = 0;
  EXPECT_THROW(run_mpi_program(f.sim, *f.comm, bad2, [](const MpiRunStats&) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace evolve::hpc
