#include "core/monitor.hpp"

#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "core/session.hpp"
#include "workloads/tabular.hpp"

namespace evolve::core {
namespace {

TEST(ClusterMonitor, ValidatesConstruction) {
  sim::Simulation sim;
  EXPECT_THROW(ClusterMonitor(sim, 0), std::invalid_argument);
  ClusterMonitor monitor(sim, util::seconds(1));
  EXPECT_THROW(monitor.add_probe("x", {}), std::invalid_argument);
}

TEST(ClusterMonitor, SamplesOnInterval) {
  sim::Simulation sim;
  ClusterMonitor monitor(sim, util::seconds(1));
  double value = 0;
  monitor.add_probe("load", [&value] { return value; });
  monitor.start();
  sim.at(util::millis(1500), [&] { value = 7.0; });
  sim.run_until(util::millis(3500));
  monitor.stop();
  sim.run();
  const auto& series = monitor.registry().series("load");
  ASSERT_EQ(series.size(), 3u);  // t=1s, 2s, 3s
  EXPECT_DOUBLE_EQ(series.samples()[0].value, 0.0);
  EXPECT_DOUBLE_EQ(series.samples()[1].value, 7.0);
  EXPECT_EQ(monitor.samples_taken(), 3);
}

TEST(ClusterMonitor, StopHaltsSampling) {
  sim::Simulation sim;
  ClusterMonitor monitor(sim, util::seconds(1));
  monitor.add_probe("x", [] { return 1.0; });
  monitor.start();
  sim.run_until(util::millis(2500));
  monitor.stop();
  sim.run();  // must drain: no perpetual events
  EXPECT_EQ(monitor.samples_taken(), 2);
}

TEST(ClusterMonitor, WatchesARealPlatformRun) {
  sim::Simulation sim;
  Platform platform(sim);
  ClusterMonitor monitor(sim, util::millis(200));
  monitor.add_probe("running_pods", [&platform] {
    return static_cast<double>(platform.orchestrator().running_count());
  });
  monitor.add_probe("flows_started", [&platform] {
    return static_cast<double>(platform.fabric().stats().flows_started);
  });
  monitor.start();

  platform.catalog().define(storage::DatasetSpec{"d", 16, 256 * util::kMiB});
  platform.catalog().preload("d");
  bool done = false;
  platform.run_dataflow(workloads::scan_filter_aggregate("d", "o", 8), 4, 4,
                        [&](const dataflow::JobStats&) { done = true; });
  sim.run_until(util::seconds(30));
  monitor.stop();
  sim.run();
  ASSERT_TRUE(done);
  // The monitor saw the executors and the network traffic the job drove
  // (flows_started is cumulative, so sampling cannot miss it).
  EXPECT_GT(monitor.registry().series("running_pods").max(), 0.0);
  EXPECT_GT(monitor.registry().series("flows_started").max(), 0.0);
  // And saw them released afterwards.
  EXPECT_DOUBLE_EQ(monitor.registry().series("running_pods").last(), 0.0);
}

}  // namespace
}  // namespace evolve::core
