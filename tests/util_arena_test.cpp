#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/interner.hpp"

namespace evolve::util {
namespace {

TEST(Arena, AllocationsAreAlignedAndDistinct) {
  Arena arena(256);
  void* a = arena.allocate(13, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(1, 16);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 16, 0u);
  EXPECT_EQ(arena.allocations(), 3u);
}

TEST(Arena, GrowsPastBlockSizeAndOversizedRequests) {
  Arena arena(64);
  // Fill more than one block, plus one request bigger than a whole block.
  for (int i = 0; i < 10; ++i) arena.allocate(32, 8);
  void* big = arena.allocate(1024, 8);
  ASSERT_NE(big, nullptr);
  // Writable end to end.
  std::memset(big, 0xab, 1024);
  EXPECT_GE(arena.blocks(), 2u);
}

TEST(Arena, ResetRecyclesBlocksWithoutFreeingThem) {
  Arena arena(128);
  for (int i = 0; i < 20; ++i) arena.allocate(64, 8);
  const std::size_t blocks = arena.blocks();
  arena.reset();
  EXPECT_EQ(arena.blocks(), blocks);  // memory kept for reuse
  for (int i = 0; i < 20; ++i) arena.allocate(64, 8);
  EXPECT_EQ(arena.blocks(), blocks);  // refilled from the recycled blocks
}

struct Tracked {
  static int live;
  int value = 0;
  explicit Tracked(int v) : value(v) { ++live; }
  ~Tracked() { --live; }
};
int Tracked::live = 0;

TEST(Slab, AcquireReleaseRecyclesCells) {
  Slab<Tracked> slab(4);
  Tracked* a = slab.acquire(1);
  Tracked* b = slab.acquire(2);
  EXPECT_EQ(a->value, 1);
  EXPECT_EQ(b->value, 2);
  EXPECT_EQ(slab.live(), 2u);
  EXPECT_EQ(Tracked::live, 2);

  slab.release(a);
  EXPECT_EQ(slab.live(), 1u);
  EXPECT_EQ(Tracked::live, 1);
  // The freed cell is reused before any new cell is carved out.
  Tracked* c = slab.acquire(3);
  EXPECT_EQ(c, a);
  EXPECT_EQ(slab.capacity(), 2u);

  slab.release(b);
  slab.release(c);
  EXPECT_EQ(Tracked::live, 0);
}

TEST(Slab, PointersStayStableAcrossGrowth) {
  Slab<Tracked> slab(2);
  std::vector<Tracked*> objs;
  for (int i = 0; i < 100; ++i) objs.push_back(slab.acquire(i));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(objs[static_cast<std::size_t>(i)]->value, i);
  }
  for (Tracked* t : objs) slab.release(t);
  EXPECT_EQ(Tracked::live, 0);
  EXPECT_EQ(slab.capacity(), 100u);
}

TEST(ChunkedVector, AppendIndexIterateAcrossChunks) {
  ChunkedVector<int, 16> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 100; ++i) v.push_back(i * 3);
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(v[static_cast<std::size_t>(i)], i * 3);
  }
  int expected = 0;
  for (const int x : v) {
    EXPECT_EQ(x, expected * 3);
    ++expected;
  }
  EXPECT_EQ(expected, 100);
}

TEST(ChunkedVector, AddressesStayStableAcrossGrowth) {
  ChunkedVector<std::string, 8> v;
  v.push_back("first");
  const std::string* p = &v[0];
  for (int i = 0; i < 200; ++i) v.push_back("x" + std::to_string(i));
  EXPECT_EQ(p, &v[0]);  // no reallocation moved the element
  EXPECT_EQ(*p, "first");
}

TEST(ChunkedVector, ReservePreallocatesChunks) {
  ChunkedVector<int, 8> v;
  v.reserve(100);
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v[99], 99);
}

TEST(StringInterner, DeduplicatesAndReturnsStableViews) {
  StringInterner interner;
  const std::string_view a = interner.intern("serve.request");
  // Same content from different storage must return the same view.
  std::string copy = "serve.request";
  const std::string_view b = interner.intern(copy);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(interner.size(), 1u);

  const std::string_view c = interner.intern("serve.queue");
  EXPECT_NE(a.data(), c.data());
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(a, "serve.request");
  EXPECT_EQ(c, "serve.queue");
}

TEST(StringInterner, ViewsSurviveManyInsertions) {
  StringInterner interner;
  const std::string_view first = interner.intern("anchor");
  std::vector<std::string_view> views;
  for (int i = 0; i < 5000; ++i) {
    views.push_back(interner.intern("name-" + std::to_string(i)));
  }
  EXPECT_EQ(first, "anchor");  // storage never moved
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(views[static_cast<std::size_t>(i)],
              "name-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace evolve::util
