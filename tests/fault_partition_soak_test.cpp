// 100-seed network-partition soak (ctest label: soak).
//
// Every seed runs a seeded random rack-isolation process against a
// replicated object store serving a randomized PUT/GET workload, with a
// deterministic storage-node outage layered on top so partition parking,
// re-replication (with seeded repair jitter and a repair circuit
// breaker), and hedged reads all interact. Invariants per seed:
//   1. every operation eventually completes (a partition stalls traffic,
//      never fails it) and no object is ever lost;
//   2. park/resume never leaks a fabric flow;
//   3. the whole run is trace-deterministic: the same seed reproduces
//      the identical fingerprint, event for event.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "cluster/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "fault/partition.hpp"
#include "fault/wiring.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"
#include "util/circuit_breaker.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace evolve::fault {
namespace {

constexpr int kObjects = 8;
constexpr int kOps = 60;

struct Fingerprint {
  std::int64_t partitions = 0;
  double partition_seconds = 0;
  std::int64_t flows_parked = 0;
  std::int64_t flows_resumed = 0;
  std::int64_t flows_completed = 0;
  util::TimeNs completion_hash = 0;  // sum of op completion times

  bool operator==(const Fingerprint& other) const {
    return std::tie(partitions, partition_seconds, flows_parked,
                    flows_resumed, flows_completed, completion_hash) ==
           std::tie(other.partitions, other.partition_seconds,
                    other.flows_parked, other.flows_resumed,
                    other.flows_completed, other.completion_hash);
  }
};

Fingerprint run_seed(std::uint64_t seed) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(4, 6, 0, 3);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  storage::IoSubsystem io(sim, cluster);
  storage::ObjectStoreConfig config;
  config.replicas = 3;
  config.hedged_reads = true;
  config.hedge_min_delay = util::millis(5);
  config.repair_jitter = 0.25;  // seeded repair-wave desynchronization
  config.repair_seed = seed;
  storage::ObjectStore store(sim, cluster, fabric, io,
                             cluster.nodes_with_label("role=storage"),
                             config);
  util::CircuitBreaker breaker(sim);
  store.set_repair_breaker(&breaker);

  FaultInjector faults(sim);
  connect(faults, store);
  PartitionInjectorConfig pconfig;
  pconfig.seed = seed;
  PartitionInjector partitions(sim, fabric, pconfig);
  partitions.random_partitions(/*mtbp_s=*/6.0, /*mean_duration_s=*/2.0,
                               util::seconds(40));

  store.create_bucket("b");
  for (int i = 0; i < kObjects; ++i) {
    store.preload({"b", "obj" + std::to_string(i)}, util::kMiB);
  }

  util::Rng rng(seed * 1315423911u + 17);
  // One storage node takes a deterministic mid-run outage, so repair
  // traffic (jittered, breaker-gated) overlaps the partition schedule.
  const auto servers = store.servers();
  const auto victim =
      servers[static_cast<std::size_t>(rng.uniform_int(0, 5))];
  faults.schedule_outage(victim, util::seconds(8), util::seconds(10));

  const auto compute = cluster.nodes_with_label("role=compute");
  int completed = 0;
  util::TimeNs completion_hash = 0;
  for (int op = 0; op < kOps; ++op) {
    const auto client =
        compute[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    const int obj = rng.uniform_int(0, kObjects - 1);
    const auto at = util::seconds(rng.uniform(0.0, 30.0));
    if (op % 4 == 0) {
      sim.at(at, [&, client, op] {
        store.put(client, {"b", "put" + std::to_string(op)}, util::kMiB,
                  [&] {
                    ++completed;
                    completion_hash += sim.now();
                  });
      });
    } else {
      sim.at(at, [&, client, obj] {
        store.get(client, {"b", "obj" + std::to_string(obj)},
                  [&](const storage::GetResult& r) {
                    ++completed;
                    completion_hash += sim.now();
                    EXPECT_TRUE(r.found);
                  });
      });
    }
  }
  sim.run();

  EXPECT_EQ(completed, kOps);
  EXPECT_EQ(store.lost_objects(), 0);
  EXPECT_EQ(store.under_replicated_objects(), 0);
  EXPECT_FALSE(partitions.active());
  EXPECT_EQ(fabric.stats().flows_in_flight, 0);
  EXPECT_EQ(fabric.parked_flows(), 0);
  // Every park either resumed or was cancelled (hedge losers); none leak.
  EXPECT_GE(fabric.stats().flows_parked, fabric.stats().flows_resumed);

  Fingerprint fp;
  fp.partitions = partitions.partitions_injected();
  fp.partition_seconds = partitions.partition_seconds();
  fp.flows_parked = fabric.stats().flows_parked;
  fp.flows_resumed = fabric.stats().flows_resumed;
  fp.flows_completed = fabric.stats().flows_completed;
  fp.completion_hash = completion_hash;
  return fp;
}

TEST(PartitionSoak, HundredSeedsHoldInvariantsDeterministically) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Fingerprint first = run_seed(seed);
    EXPECT_GT(first.partitions, 0);
    // Trace determinism: the identical seed replays the identical run.
    const Fingerprint replay = run_seed(seed);
    EXPECT_TRUE(first == replay);
    if (::testing::Test::HasFailure()) break;  // first failing seed only
  }
}

}  // namespace
}  // namespace evolve::fault
