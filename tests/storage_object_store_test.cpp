#include "storage/object_store.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"

namespace evolve::storage {
namespace {

struct StoreFixture {
  explicit StoreFixture(int compute = 2, int storage = 3,
                        ObjectStoreConfig config = {})
      : cluster(cluster::make_testbed(compute, storage, 0)),
        topology(cluster),
        fabric(sim, topology),
        io(sim, cluster),
        store(sim, cluster, fabric, io,
              cluster.nodes_with_label("role=storage"), config) {
    store.create_bucket("data");
  }

  sim::Simulation sim;
  cluster::Cluster cluster;
  net::Topology topology;
  net::Fabric fabric;
  IoSubsystem io;
  ObjectStore store;
};

TEST(ObjectStore, RequiresServers) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(1, 1, 0);
  net::Topology topo(cluster);
  net::Fabric fabric(sim, topo);
  IoSubsystem io(sim, cluster);
  EXPECT_THROW(ObjectStore(sim, cluster, fabric, io, {}),
               std::invalid_argument);
}

TEST(ObjectStore, PutThenGetRoundTrips) {
  StoreFixture f;
  const ObjectKey key{"data", "obj1"};
  bool put_done = false;
  f.store.put(0, key, util::kMiB, [&] { put_done = true; });
  f.sim.run();
  ASSERT_TRUE(put_done);
  EXPECT_TRUE(f.store.exists(key));
  EXPECT_EQ(f.store.object_size(key), util::kMiB);

  GetResult result;
  f.store.get(0, key, [&](const GetResult& r) { result = r; });
  f.sim.run();
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.size, util::kMiB);
  EXPECT_NE(result.served_by, cluster::kInvalidNode);
}

TEST(ObjectStore, PutRequiresBucket) {
  StoreFixture f;
  EXPECT_THROW(f.store.put(0, ObjectKey{"nope", "x"}, 1, [] {}),
               std::invalid_argument);
}

TEST(ObjectStore, GetMissingObjectReportsNotFound) {
  StoreFixture f;
  GetResult result;
  result.found = true;
  f.store.get(0, ObjectKey{"data", "ghost"}, [&](const GetResult& r) {
    result = r;
  });
  f.sim.run();
  EXPECT_FALSE(result.found);
  EXPECT_EQ(f.store.metrics().counter("get_misses"), 1);
}

TEST(ObjectStore, ReplicationPlacesOnDistinctServers) {
  StoreFixture f;
  const ObjectKey key{"data", "replicated"};
  const auto replicas = f.store.locate(key);
  ASSERT_EQ(replicas.size(), 2u);
  EXPECT_NE(replicas[0], replicas[1]);
}

TEST(ObjectStore, LocateIsDeterministic) {
  StoreFixture f;
  const ObjectKey key{"data", "stable"};
  EXPECT_EQ(f.store.locate(key), f.store.locate(key));
}

TEST(ObjectStore, DurableBytesTrackedOnAllReplicas) {
  StoreFixture f;
  const ObjectKey key{"data", "acct"};
  f.store.put(0, key, 1000, [] {});
  f.sim.run();
  const auto replicas = f.store.locate(key);
  for (auto r : replicas) EXPECT_EQ(f.store.durable_bytes(r), 1000);
  util::Bytes elsewhere = 0;
  for (auto s : f.store.servers()) {
    if (s != replicas[0] && s != replicas[1]) {
      elsewhere += f.store.durable_bytes(s);
    }
  }
  EXPECT_EQ(elsewhere, 0);
}

TEST(ObjectStore, OverwriteReclaimsOldBytes) {
  StoreFixture f;
  const ObjectKey key{"data", "rewrite"};
  f.store.put(0, key, 1000, [] {});
  f.sim.run();
  f.store.put(0, key, 500, [] {});
  f.sim.run();
  for (auto r : f.store.locate(key)) {
    EXPECT_EQ(f.store.durable_bytes(r), 500);
  }
}

TEST(ObjectStore, RemoveFreesSpaceAndMetadata) {
  StoreFixture f;
  const ObjectKey key{"data", "temp"};
  f.store.put(0, key, 1000, [] {});
  f.sim.run();
  bool removed = false;
  f.store.remove(0, key, [&] { removed = true; });
  f.sim.run();
  EXPECT_TRUE(removed);
  EXPECT_FALSE(f.store.exists(key));
  for (auto s : f.store.servers()) EXPECT_EQ(f.store.durable_bytes(s), 0);
}

TEST(ObjectStore, ListFiltersByBucketAndPrefix) {
  StoreFixture f;
  f.store.create_bucket("other");
  f.store.preload(ObjectKey{"data", "a/1"}, 10);
  f.store.preload(ObjectKey{"data", "a/2"}, 10);
  f.store.preload(ObjectKey{"data", "b/1"}, 10);
  f.store.preload(ObjectKey{"other", "a/9"}, 10);
  EXPECT_EQ(f.store.list("data").size(), 3u);
  EXPECT_EQ(f.store.list("data", "a/").size(), 2u);
  EXPECT_EQ(f.store.list("other").size(), 1u);
  EXPECT_TRUE(f.store.list("missing").empty());
}

TEST(ObjectStore, SecondGetHitsFasterTier) {
  StoreFixture f;
  const ObjectKey key{"data", "hot"};
  f.store.preload(key, util::kMiB, /*warm_cache=*/false);
  GetResult first, second;
  f.store.get(0, key, [&](const GetResult& r) { first = r; });
  f.sim.run();
  f.store.get(0, key, [&](const GetResult& r) { second = r; });
  f.sim.run();
  EXPECT_EQ(first.tier, "hdd");   // cold read from durable home
  EXPECT_EQ(second.tier, "dram");  // admitted on first read
}

TEST(ObjectStore, WarmPreloadServesFromDram) {
  StoreFixture f;
  const ObjectKey key{"data", "warm"};
  f.store.preload(key, util::kMiB, /*warm_cache=*/true);
  GetResult result;
  f.store.get(0, key, [&](const GetResult& r) { result = r; });
  f.sim.run();
  EXPECT_EQ(result.tier, "dram");
}

TEST(ObjectStore, CacheDisabledAlwaysReadsDurable) {
  ObjectStoreConfig config;
  config.cache_on_get = false;
  config.cache_on_put = false;
  StoreFixture f(2, 3, config);
  const ObjectKey key{"data", "cold"};
  f.store.preload(key, util::kMiB);
  for (int i = 0; i < 2; ++i) {
    GetResult result;
    f.store.get(0, key, [&](const GetResult& r) { result = r; });
    f.sim.run();
    EXPECT_EQ(result.tier, "hdd");
  }
}

TEST(ObjectStore, LargerObjectsTakeLonger) {
  StoreFixture f;
  f.store.preload(ObjectKey{"data", "small"}, 64 * util::kKiB);
  f.store.preload(ObjectKey{"data", "large"}, 256 * util::kMiB);
  util::TimeNs t_small = 0, t_large = 0;
  const util::TimeNs start = f.sim.now();
  f.store.get(0, ObjectKey{"data", "small"},
              [&](const GetResult&) { t_small = f.sim.now() - start; });
  f.sim.run();
  const util::TimeNs start2 = f.sim.now();
  f.store.get(0, ObjectKey{"data", "large"},
              [&](const GetResult&) { t_large = f.sim.now() - start2; });
  f.sim.run();
  EXPECT_GT(t_large, 10 * t_small);
}

TEST(ObjectStore, GetLatencyRecorded) {
  StoreFixture f;
  f.store.preload(ObjectKey{"data", "m"}, util::kMiB);
  f.store.get(0, ObjectKey{"data", "m"}, [](const GetResult&) {});
  f.sim.run();
  EXPECT_EQ(f.store.metrics().histogram("get_latency_us").count(), 1);
  EXPECT_GT(f.store.metrics().histogram("get_latency_us").max(), 0);
}

TEST(ObjectStore, PreloadRejectsDuplicates) {
  StoreFixture f;
  f.store.preload(ObjectKey{"data", "dup"}, 1);
  EXPECT_THROW(f.store.preload(ObjectKey{"data", "dup"}, 1),
               std::invalid_argument);
}

TEST(ObjectStore, MultipartAssemblesObject) {
  StoreFixture f;
  const ObjectKey key{"data", "big"};
  const auto id = f.store.initiate_multipart(key);
  int parts_done = 0;
  f.store.upload_part(0, id, 1, 10 * util::kMiB, [&] { ++parts_done; });
  f.store.upload_part(0, id, 2, 10 * util::kMiB, [&] { ++parts_done; });
  f.sim.run();
  EXPECT_EQ(parts_done, 2);
  EXPECT_FALSE(f.store.exists(key));  // not visible until complete
  bool completed = false;
  f.store.complete_multipart(id, [&] { completed = true; });
  f.sim.run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(f.store.object_size(key), 20 * util::kMiB);
}

TEST(ObjectStore, MultipartRejectsDuplicateParts) {
  StoreFixture f;
  const auto id = f.store.initiate_multipart(ObjectKey{"data", "big"});
  f.store.upload_part(0, id, 1, 10, [] {});
  EXPECT_THROW(f.store.upload_part(0, id, 1, 10, [] {}),
               std::invalid_argument);
  EXPECT_THROW(f.store.upload_part(0, 999, 1, 10, [] {}),
               std::invalid_argument);
}

TEST(ObjectStore, ReplicaChoicePrefersLocalServer) {
  StoreFixture f;
  // Find an object whose replica set contains a specific server, then GET
  // from that very node; it must serve locally.
  for (int i = 0; i < 32; ++i) {
    const ObjectKey key{"data", "probe" + std::to_string(i)};
    f.store.preload(key, 1000);
    const auto replicas = f.store.locate(key);
    GetResult result;
    f.store.get(replicas[1], key, [&](const GetResult& r) { result = r; });
    f.sim.run();
    EXPECT_EQ(result.served_by, replicas[1]);
  }
}

// Placement balance: many objects spread roughly evenly over servers.
TEST(ObjectStore, PlacementIsBalanced) {
  StoreFixture f(2, 5);
  std::map<cluster::NodeId, int> primary_count;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto replicas =
        f.store.locate(ObjectKey{"data", "obj" + std::to_string(i)});
    ++primary_count[replicas[0]];
  }
  for (auto server : f.store.servers()) {
    EXPECT_GT(primary_count[server], n / 5 / 2) << "server " << server;
    EXPECT_LT(primary_count[server], n / 5 * 2) << "server " << server;
  }
}

TEST(ObjectStore, ReadBlockReadsOnlyTheBlock) {
  StoreFixture f;
  const ObjectKey key{"data", "gen0"};
  f.store.preload(key, 64 * util::kMiB);

  GetResult r;
  f.store.read_block(0, key, 16 * util::kKiB, [&](const GetResult& g) {
    r = g;
  });
  f.sim.run();
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.size, 16 * util::kKiB);  // the block, not the object
  EXPECT_NE(r.served_by, cluster::kInvalidNode);
  EXPECT_EQ(f.store.metrics().counter("block_read_requests"), 1);
}

TEST(ObjectStore, ReadBlockMissingObjectNotFound) {
  StoreFixture f;
  GetResult r;
  r.found = true;
  f.store.read_block(0, ObjectKey{"data", "ghost"}, 4 * util::kKiB,
                     [&](const GetResult& g) { r = g; });
  f.sim.run();
  EXPECT_FALSE(r.found);
}

TEST(ObjectStore, ReadBlockClampsToObjectSize) {
  StoreFixture f;
  const ObjectKey key{"data", "tiny"};
  f.store.preload(key, 512);
  GetResult r;
  f.store.read_block(0, key, 16 * util::kKiB, [&](const GetResult& g) {
    r = g;
  });
  f.sim.run();
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.size, 512);
}

// -- Delayed-repair hysteresis ------------------------------------------

ObjectStoreConfig hysteresis_config(util::TimeNs wait) {
  ObjectStoreConfig config;
  config.repair_hysteresis = wait;
  return config;
}

TEST(ObjectStore, SuspectClearedInWindowCostsNoRepair) {
  StoreFixture f(2, 3, hysteresis_config(util::seconds(5)));
  f.store.preload({"data", "obj"}, 8 * util::kMiB);
  const cluster::NodeId victim =
      f.cluster.nodes_with_label("role=storage").front();

  f.sim.at(util::seconds(1), [&] { f.store.suspect_node(victim); });
  f.sim.at(util::seconds(3), [&] {
    EXPECT_TRUE(f.store.node_suspect(victim));
    f.store.clear_suspect(victim);
  });
  f.sim.run();

  EXPECT_FALSE(f.store.node_suspect(victim));
  EXPECT_EQ(f.store.suspects_cleared(), 1);
  EXPECT_EQ(f.store.metrics().counter("repairs_started"), 0);
  EXPECT_TRUE(f.store.server_alive(victim));
  // The fragments were at risk for the 2 suspect-seconds even though no
  // repair was ever queued.
  EXPECT_GT(f.store.at_risk_fragment_seconds(), 0.0);
}

TEST(ObjectStore, SuspectExpiryEscalatesToFailure) {
  StoreFixture f(2, 3, hysteresis_config(util::seconds(5)));
  f.store.preload({"data", "obj"}, 8 * util::kMiB);
  const cluster::NodeId victim =
      f.cluster.nodes_with_label("role=storage").front();

  f.sim.at(util::seconds(1), [&] { f.store.suspect_node(victim); });
  f.sim.run();

  EXPECT_FALSE(f.store.node_suspect(victim));  // escalated out
  EXPECT_EQ(f.store.metrics().counter("suspects_escalated"), 1);
  EXPECT_FALSE(f.store.server_alive(victim));
  // The escalation re-replicated the victim's replicas elsewhere.
  EXPECT_GT(f.store.metrics().counter("repairs_started"), 0);
}

TEST(ObjectStore, ZeroHysteresisEscalatesImmediately) {
  StoreFixture f;  // repair_hysteresis = 0
  f.store.preload({"data", "obj"}, 8 * util::kMiB);
  const cluster::NodeId victim =
      f.cluster.nodes_with_label("role=storage").front();
  f.store.suspect_node(victim);
  EXPECT_FALSE(f.store.node_suspect(victim));
  EXPECT_FALSE(f.store.server_alive(victim));
}

TEST(ObjectStore, RecoveryClearsPendingSuspicion) {
  StoreFixture f(2, 3, hysteresis_config(util::seconds(5)));
  f.store.preload({"data", "obj"}, 8 * util::kMiB);
  const cluster::NodeId victim =
      f.cluster.nodes_with_label("role=storage").front();
  f.sim.at(util::seconds(1), [&] { f.store.suspect_node(victim); });
  f.sim.at(util::seconds(2), [&] { f.store.handle_node_recovery(victim); });
  f.sim.run();
  EXPECT_FALSE(f.store.node_suspect(victim));
  EXPECT_TRUE(f.store.server_alive(victim));
  EXPECT_EQ(f.store.metrics().counter("suspects_escalated"), 0);
}

}  // namespace
}  // namespace evolve::storage
