#include "storage/tiered_cache.hpp"

#include <gtest/gtest.h>

#include <string>

namespace evolve::storage {
namespace {

TieredCache three_tier(util::Bytes dram = 100, util::Bytes nvme = 1000,
                       util::Bytes hdd = 10000) {
  return TieredCache({TierConfig{"dram", dram}, TierConfig{"nvme", nvme},
                      TierConfig{"hdd", hdd}});
}

TEST(TieredCache, RejectsEmptyTiers) {
  EXPECT_THROW(TieredCache({}), std::invalid_argument);
}

TEST(TieredCache, PutLandsInTierZero) {
  auto cache = three_tier();
  EXPECT_TRUE(cache.put("a", 50));
  EXPECT_EQ(cache.peek("a"), 0);
  EXPECT_EQ(cache.used(0), 50);
}

TEST(TieredCache, GetHitReportsTierAndPromotes) {
  auto cache = three_tier();
  cache.put("a", 60);
  cache.put("b", 60);  // evicts "a" to nvme
  EXPECT_EQ(cache.peek("a"), 1);
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 1);            // found in nvme...
  EXPECT_EQ(cache.peek("a"), 0);  // ...now promoted to dram
}

TEST(TieredCache, MissCounts) {
  auto cache = three_tier();
  EXPECT_FALSE(cache.get("nope").has_value());
  EXPECT_EQ(cache.misses(), 1);
}

TEST(TieredCache, EvictionCascadesDown) {
  auto cache = three_tier(100, 100, 100);
  cache.put("a", 100);
  cache.put("b", 100);  // a -> nvme
  cache.put("c", 100);  // b -> nvme evicts a -> hdd
  EXPECT_EQ(cache.peek("c"), 0);
  EXPECT_EQ(cache.peek("b"), 1);
  EXPECT_EQ(cache.peek("a"), 2);
  cache.put("d", 100);  // c->nvme, b->hdd, a dropped
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_EQ(cache.drops(), 1);
  EXPECT_EQ(cache.peek("b"), 2);
}

TEST(TieredCache, LruOrderWithinTier) {
  auto cache = three_tier(100, 1000, 10000);
  cache.put("a", 40);
  cache.put("b", 40);
  ASSERT_TRUE(cache.get("a").has_value());  // refresh a
  cache.put("c", 40);                       // evicts b (LRU), not a
  EXPECT_EQ(cache.peek("a"), 0);
  EXPECT_EQ(cache.peek("b"), 1);
  EXPECT_EQ(cache.peek("c"), 0);
}

TEST(TieredCache, ObjectTooBigForAnyTierDrops) {
  auto cache = three_tier(100, 1000, 10000);
  EXPECT_FALSE(cache.put("huge", 20000));
  EXPECT_FALSE(cache.contains("huge"));
  EXPECT_EQ(cache.drops(), 1);
}

TEST(TieredCache, ObjectTooBigForTierZeroLandsLower) {
  auto cache = three_tier(100, 1000, 10000);
  EXPECT_TRUE(cache.put("mid", 500));
  EXPECT_EQ(cache.peek("mid"), 1);
  EXPECT_TRUE(cache.put("big", 5000));
  EXPECT_EQ(cache.peek("big"), 2);
}

TEST(TieredCache, BigObjectStaysInItsTierOnHit) {
  auto cache = three_tier(100, 1000, 10000);
  cache.put("big", 500);
  const auto hit = cache.get("big");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 1);
  EXPECT_EQ(cache.peek("big"), 1);  // can never fit dram; stays in nvme
}

TEST(TieredCache, EraseFreesSpace) {
  auto cache = three_tier();
  cache.put("a", 100);
  EXPECT_TRUE(cache.erase("a"));
  EXPECT_FALSE(cache.erase("a"));
  EXPECT_EQ(cache.used(0), 0);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TieredCache, PutOverwriteReplacesSize) {
  auto cache = three_tier();
  cache.put("a", 30);
  cache.put("a", 70);
  EXPECT_EQ(cache.used(0), 70);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TieredCache, StatsTrackHitsAndDemotions) {
  auto cache = three_tier(100, 100, 100);
  cache.put("a", 100);
  cache.put("b", 100);
  ASSERT_TRUE(cache.get("b").has_value());
  EXPECT_EQ(cache.stats(0).hits, 1);
  EXPECT_EQ(cache.stats(0).inserts, 2);
  EXPECT_EQ(cache.stats(0).demotions_out, 1);
  EXPECT_EQ(cache.stats(1).demotions_in, 1);
}

TEST(TieredCache, ZeroSizeObjectsAllowed) {
  auto cache = three_tier();
  EXPECT_TRUE(cache.put("empty", 0));
  EXPECT_TRUE(cache.get("empty").has_value());
}

TEST(TieredCache, NegativeSizeRejected) {
  auto cache = three_tier();
  EXPECT_THROW(cache.put("bad", -1), std::invalid_argument);
}

// Invariant sweep: usage never exceeds capacity under random workloads.
class TieredCacheInvariants : public ::testing::TestWithParam<int> {};

TEST_P(TieredCacheInvariants, UsageNeverExceedsCapacity) {
  auto cache = three_tier(500, 2000, 5000);
  const int seed = GetParam();
  // Deterministic pseudo-random workload from the seed.
  std::uint64_t state = static_cast<std::uint64_t>(seed);
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(next() % 100);
    switch (next() % 3) {
      case 0:
        cache.put(key, static_cast<util::Bytes>(next() % 600));
        break;
      case 1:
        cache.get(key);
        break;
      default:
        cache.erase(key);
        break;
    }
    for (int t = 0; t < cache.tier_count(); ++t) {
      ASSERT_LE(cache.used(t), cache.config(t).capacity);
      ASSERT_GE(cache.used(t), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TieredCacheInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99));

}  // namespace
}  // namespace evolve::storage
