#include "dataflow/shuffle.hpp"

#include <gtest/gtest.h>

namespace evolve::dataflow {
namespace {

TEST(ShuffleManager, RegisterAndComplete) {
  ShuffleManager shuffle;
  EXPECT_FALSE(shuffle.complete(0, 2));
  shuffle.register_output(0, 0, 1, 1000);
  shuffle.register_output(0, 1, 2, 500);
  EXPECT_TRUE(shuffle.complete(0, 2));
  EXPECT_EQ(shuffle.stage_output_bytes(0), 1500);
}

TEST(ShuffleManager, DuplicateRegistrationThrows) {
  ShuffleManager shuffle;
  shuffle.register_output(0, 0, 1, 10);
  EXPECT_THROW(shuffle.register_output(0, 0, 1, 10), std::logic_error);
  EXPECT_THROW(shuffle.register_output(0, 1, 1, -1), std::invalid_argument);
}

TEST(ShuffleManager, FetchPlanSplitsEvenly) {
  ShuffleManager shuffle;
  shuffle.register_output(0, 0, 3, 100);
  shuffle.register_output(0, 1, 4, 100);
  const auto plan0 = shuffle.fetch_plan(0, 0, 4);
  const auto plan3 = shuffle.fetch_plan(0, 3, 4);
  ASSERT_EQ(plan0.size(), 2u);
  ASSERT_EQ(plan3.size(), 2u);
  EXPECT_EQ(plan0[0].bytes, 25);
  EXPECT_EQ(plan3[0].bytes, 25);
  EXPECT_EQ(plan0[0].node, 3);
  EXPECT_EQ(plan0[1].node, 4);
}

TEST(ShuffleManager, FetchSharesSumToTotal) {
  ShuffleManager shuffle;
  shuffle.register_output(7, 0, 0, 1003);  // not divisible by 4
  util::Bytes total = 0;
  for (int r = 0; r < 4; ++r) {
    for (const auto& src : shuffle.fetch_plan(7, r, 4)) total += src.bytes;
  }
  EXPECT_EQ(total, 1003);
}

TEST(ShuffleManager, ZeroByteSharesDropped) {
  ShuffleManager shuffle;
  shuffle.register_output(0, 0, 1, 2);  // 2 bytes over 4 reducers
  EXPECT_EQ(shuffle.fetch_plan(0, 0, 4).size(), 1u);
  EXPECT_TRUE(shuffle.fetch_plan(0, 3, 4).empty());
}

TEST(ShuffleManager, FetchPlanValidatesArgs) {
  ShuffleManager shuffle;
  EXPECT_THROW(shuffle.fetch_plan(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(shuffle.fetch_plan(0, 2, 2), std::invalid_argument);
  EXPECT_TRUE(shuffle.fetch_plan(9, 0, 2).empty());  // unknown stage
}

TEST(ShuffleManager, ReleaseDropsStage) {
  ShuffleManager shuffle;
  shuffle.register_output(1, 0, 0, 100);
  shuffle.release(1);
  EXPECT_EQ(shuffle.stage_output_bytes(1), 0);
  EXPECT_FALSE(shuffle.complete(1, 1));
}

}  // namespace
}  // namespace evolve::dataflow
