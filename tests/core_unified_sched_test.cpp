#include "core/unified_scheduler.hpp"

#include <gtest/gtest.h>

#include "workloads/trace.hpp"

namespace evolve::core {
namespace {

PlatformConfig config_for_sched() {
  PlatformConfig config;
  config.compute_nodes = 9;
  config.storage_nodes = 4;
  config.accel_nodes = 0;
  return config;
}

workloads::TraceParams small_trace() {
  workloads::TraceParams params;
  params.jobs = 40;
  params.arrivals_per_second = 1.0;
  params.batch_median_s = 10.0;
  params.service_median_s = 20.0;
  params.gang_median_s = 15.0;
  params.max_gang_width = 4;
  return params;
}

TEST(UnifiedScheduler, TraceCompletesOnUnifiedCluster) {
  sim::Simulation sim;
  Platform platform(sim, config_for_sched());
  util::Rng rng(7);
  const auto trace = workloads::make_mixed_trace(rng, small_trace());
  const auto outcome =
      run_trace_unified(sim, platform.orchestrator(), trace);
  EXPECT_EQ(outcome.jobs_completed, 40);
  EXPECT_EQ(outcome.pods_failed, 0);
  EXPECT_GT(outcome.makespan, 0);
  EXPECT_GT(outcome.cpu_utilization, 0);
}

TEST(UnifiedScheduler, TraceCompletesOnSiloedCluster) {
  sim::Simulation sim;
  SiloedPlatform silos(sim, config_for_sched());
  util::Rng rng(7);
  const auto trace = workloads::make_mixed_trace(rng, small_trace());
  const auto outcome = run_trace_siloed(sim, silos, trace);
  EXPECT_EQ(outcome.jobs_completed, 40);
  EXPECT_GT(outcome.makespan, 0);
}

TEST(UnifiedScheduler, UnifiedWaitsNoWorseThanSiloed) {
  // Same trace, same hardware; static partitioning can only strand
  // capacity, so unified p95 wait should not exceed siloed p95 wait.
  util::Rng rng(21);
  workloads::TraceParams params = small_trace();
  params.jobs = 80;
  params.arrivals_per_second = 2.5;  // pressure
  const auto trace = workloads::make_mixed_trace(rng, params);

  ScheduleOutcome unified, siloed;
  {
    sim::Simulation sim;
    Platform platform(sim, config_for_sched());
    unified = run_trace_unified(sim, platform.orchestrator(), trace);
  }
  {
    sim::Simulation sim;
    SiloedPlatform silos(sim, config_for_sched());
    siloed = run_trace_siloed(sim, silos, trace);
  }
  EXPECT_LE(unified.p95_wait, siloed.p95_wait);
  EXPECT_LE(unified.makespan, siloed.makespan + util::seconds(1));
}

TEST(MixedTrace, DeterministicForSeed) {
  util::Rng a(5), b(5);
  const auto t1 = workloads::make_mixed_trace(a, small_trace());
  const auto t2 = workloads::make_mixed_trace(b, small_trace());
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].arrival, t2[i].arrival);
    EXPECT_EQ(t1[i].kind, t2[i].kind);
    EXPECT_EQ(t1[i].pods, t2[i].pods);
    EXPECT_EQ(t1[i].duration, t2[i].duration);
  }
}

TEST(MixedTrace, ArrivalsMonotonic) {
  util::Rng rng(9);
  const auto trace = workloads::make_mixed_trace(rng, small_trace());
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
  }
}

TEST(MixedTrace, Validation) {
  util::Rng rng(1);
  workloads::TraceParams bad;
  bad.jobs = 0;
  EXPECT_THROW(workloads::make_mixed_trace(rng, bad), std::invalid_argument);
  workloads::TraceParams bad2;
  bad2.arrivals_per_second = 0;
  EXPECT_THROW(workloads::make_mixed_trace(rng, bad2), std::invalid_argument);
}

}  // namespace
}  // namespace evolve::core
