#include "storage/filesystem.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"

namespace evolve::storage {
namespace {

struct FsFixture {
  FsFixture()
      : cluster(cluster::make_testbed(2, 2, 0)),
        topology(cluster),
        fabric(sim, topology),
        io(sim, cluster),
        store(sim, cluster, fabric, io,
              cluster.nodes_with_label("role=storage")),
        fs(store) {}

  sim::Simulation sim;
  cluster::Cluster cluster;
  net::Topology topology;
  net::Fabric fabric;
  storage::IoSubsystem io;
  ObjectStore store;
  FileSystem fs;
};

TEST(FsNormalize, CanonicalForms) {
  EXPECT_EQ(FileSystem::normalize("/"), "/");
  EXPECT_EQ(FileSystem::normalize("/a"), "/a");
  EXPECT_EQ(FileSystem::normalize("/a/"), "/a");
  EXPECT_EQ(FileSystem::normalize("//a//b//"), "/a/b");
}

TEST(FsNormalize, RejectsBadPaths) {
  EXPECT_THROW(FileSystem::normalize(""), std::invalid_argument);
  EXPECT_THROW(FileSystem::normalize("relative"), std::invalid_argument);
  EXPECT_THROW(FileSystem::normalize("/a/../b"), std::invalid_argument);
  EXPECT_THROW(FileSystem::normalize("/a/./b"), std::invalid_argument);
}

TEST(FileSystem, RootExists) {
  FsFixture f;
  EXPECT_TRUE(f.fs.exists("/"));
  EXPECT_TRUE(f.fs.is_dir("/"));
  EXPECT_FALSE(f.fs.is_file("/"));
  EXPECT_TRUE(f.fs.list("/").empty());
}

TEST(FileSystem, MkdirAndNesting) {
  FsFixture f;
  f.fs.mkdir("/data");
  f.fs.mkdir("/data/raw");
  EXPECT_TRUE(f.fs.is_dir("/data/raw"));
  EXPECT_THROW(f.fs.mkdir("/data"), std::invalid_argument);   // exists
  EXPECT_THROW(f.fs.mkdir("/a/b/c"), std::invalid_argument);  // no parent
  EXPECT_NO_THROW(f.fs.mkdir("/"));                           // root: no-op
}

TEST(FileSystem, MkdirsCreatesAncestors) {
  FsFixture f;
  f.fs.mkdirs("/a/b/c/d");
  EXPECT_TRUE(f.fs.is_dir("/a"));
  EXPECT_TRUE(f.fs.is_dir("/a/b/c/d"));
  f.fs.mkdirs("/a/b");  // idempotent
}

TEST(FileSystem, WriteAndReadRoundTrip) {
  FsFixture f;
  f.fs.mkdir("/data");
  bool written = false;
  f.fs.write_file(0, "/data/file.bin", util::kMiB, [&] { written = true; });
  f.sim.run();
  EXPECT_TRUE(written);
  EXPECT_TRUE(f.fs.is_file("/data/file.bin"));
  EXPECT_EQ(f.fs.stat("/data/file.bin"), util::kMiB);

  GetResult result;
  f.fs.read_file(0, "/data/file.bin",
                 [&](const GetResult& r) { result = r; });
  f.sim.run();
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.size, util::kMiB);
}

TEST(FileSystem, WriteRequiresParent) {
  FsFixture f;
  EXPECT_THROW(f.fs.write_file(0, "/missing/file", 1, [] {}),
               std::invalid_argument);
}

TEST(FileSystem, OverwriteUpdatesSize) {
  FsFixture f;
  f.fs.write_file(0, "/f", 100, [] {});
  f.sim.run();
  f.fs.write_file(0, "/f", 500, [] {});
  f.sim.run();
  EXPECT_EQ(f.fs.stat("/f"), 500);
  EXPECT_EQ(f.fs.file_count(), 1u);
}

TEST(FileSystem, CannotWriteOverDirectory) {
  FsFixture f;
  f.fs.mkdir("/d");
  EXPECT_THROW(f.fs.write_file(0, "/d", 1, [] {}), std::invalid_argument);
}

TEST(FileSystem, ListImmediateChildrenSorted) {
  FsFixture f;
  f.fs.mkdirs("/data/sub");
  f.fs.write_file(0, "/data/b.txt", 1, [] {});
  f.fs.write_file(0, "/data/a.txt", 1, [] {});
  f.fs.write_file(0, "/data/sub/deep.txt", 1, [] {});
  f.sim.run();
  const auto children = f.fs.list("/data");
  ASSERT_EQ(children.size(), 3u);
  EXPECT_EQ(children[0], "a.txt");
  EXPECT_EQ(children[1], "b.txt");
  EXPECT_EQ(children[2], "sub");  // no deep entries
  EXPECT_THROW(f.fs.list("/data/a.txt"), std::invalid_argument);
}

TEST(FileSystem, ReadMissingThrows) {
  FsFixture f;
  EXPECT_THROW(f.fs.read_file(0, "/nope", [](const GetResult&) {}),
               std::invalid_argument);
  f.fs.mkdir("/d");
  EXPECT_THROW(f.fs.read_file(0, "/d", [](const GetResult&) {}),
               std::invalid_argument);
}

TEST(FileSystem, RenameFileIsMetadataOnly) {
  FsFixture f;
  f.fs.write_file(0, "/old", util::kMiB, [] {});
  f.sim.run();
  const util::TimeNs before = f.sim.now();
  f.fs.rename("/old", "/new");
  EXPECT_EQ(f.sim.now(), before);  // no simulated time consumed
  EXPECT_FALSE(f.fs.exists("/old"));
  EXPECT_EQ(f.fs.stat("/new"), util::kMiB);
  // Data still readable under the new name.
  GetResult result;
  f.fs.read_file(0, "/new", [&](const GetResult& r) { result = r; });
  f.sim.run();
  EXPECT_TRUE(result.found);
}

TEST(FileSystem, RenameDirectoryMovesSubtree) {
  FsFixture f;
  f.fs.mkdirs("/a/b");
  f.fs.write_file(0, "/a/b/f1", 10, [] {});
  f.fs.write_file(0, "/a/top", 20, [] {});
  f.sim.run();
  f.fs.rename("/a", "/z");
  EXPECT_TRUE(f.fs.is_file("/z/b/f1"));
  EXPECT_TRUE(f.fs.is_file("/z/top"));
  EXPECT_FALSE(f.fs.exists("/a"));
}

TEST(FileSystem, RenameValidation) {
  FsFixture f;
  f.fs.mkdir("/a");
  f.fs.mkdir("/b");
  EXPECT_THROW(f.fs.rename("/missing", "/x"), std::invalid_argument);
  EXPECT_THROW(f.fs.rename("/a", "/b"), std::invalid_argument);  // exists
  EXPECT_THROW(f.fs.rename("/a", "/a/inside"), std::invalid_argument);
  EXPECT_THROW(f.fs.rename("/", "/x"), std::invalid_argument);
  EXPECT_THROW(f.fs.rename("/a", "/no/parent/x"), std::invalid_argument);
}

TEST(FileSystem, RemoveFileFreesStoreObject) {
  FsFixture f;
  f.fs.write_file(0, "/f", util::kMiB, [] {});
  f.sim.run();
  util::Bytes durable_before = 0;
  for (auto s : f.store.servers()) durable_before += f.store.durable_bytes(s);
  EXPECT_GT(durable_before, 0);
  f.fs.remove("/f");
  f.sim.run();
  util::Bytes durable_after = 0;
  for (auto s : f.store.servers()) durable_after += f.store.durable_bytes(s);
  EXPECT_EQ(durable_after, 0);
  EXPECT_FALSE(f.fs.exists("/f"));
}

TEST(FileSystem, RemoveDirectoryNeedsRecursive) {
  FsFixture f;
  f.fs.mkdir("/d");
  f.fs.write_file(0, "/d/f", 10, [] {});
  f.sim.run();
  EXPECT_THROW(f.fs.remove("/d"), std::invalid_argument);
  f.fs.remove("/d", /*recursive=*/true);
  EXPECT_FALSE(f.fs.exists("/d"));
  EXPECT_EQ(f.fs.file_count(), 0u);
  EXPECT_THROW(f.fs.remove("/"), std::invalid_argument);
  EXPECT_THROW(f.fs.remove("/ghost"), std::invalid_argument);
}

TEST(FileSystem, RemoveEmptyDirWithoutRecursive) {
  FsFixture f;
  f.fs.mkdir("/empty");
  f.fs.remove("/empty");
  EXPECT_FALSE(f.fs.exists("/empty"));
}

TEST(FileSystem, TotalsTrackFiles) {
  FsFixture f;
  f.fs.mkdir("/d");
  f.fs.write_file(0, "/d/a", 100, [] {});
  f.fs.write_file(0, "/d/b", 200, [] {});
  f.sim.run();
  EXPECT_EQ(f.fs.total_bytes(), 300);
  EXPECT_EQ(f.fs.file_count(), 2u);
}

TEST(FileSystem, SimilarPrefixesAreNotSubtrees) {
  FsFixture f;
  f.fs.mkdir("/ab");
  f.fs.mkdir("/abc");
  f.fs.write_file(0, "/abc/f", 1, [] {});
  f.sim.run();
  f.fs.remove("/ab");  // must not take /abc with it
  EXPECT_TRUE(f.fs.exists("/abc/f"));
  f.fs.rename("/abc", "/xyz");
  EXPECT_TRUE(f.fs.exists("/xyz/f"));
}

}  // namespace
}  // namespace evolve::storage
