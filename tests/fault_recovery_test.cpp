// End-to-end failure/recovery semantics: one injected node crash must
// propagate coherently through the orchestrator, dataflow engine, object
// store, batch queue, and workflow retry machinery.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "dataflow/engine.hpp"
#include "fault/fault_injector.hpp"
#include "fault/wiring.hpp"
#include "hpc/batch_queue.hpp"
#include "net/fabric.hpp"
#include "orch/scheduler.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"
#include "util/types.hpp"
#include "workflow/engine.hpp"
#include "workflow/workflow.hpp"

namespace evolve {
namespace {

// -- Dataflow + object store under injected crashes --------------------

struct FaultFixture {
  explicit FaultFixture(int compute = 4, int storage = 4,
                        dataflow::DataflowConfig dconfig = {},
                        storage::ObjectStoreConfig sconfig = {})
      : cluster(cluster::make_testbed(compute, storage, 0)),
        topology(cluster),
        fabric(sim, topology),
        io(sim, cluster),
        store(sim, cluster, fabric, io,
              cluster.nodes_with_label("role=storage"), sconfig),
        catalog(store),
        engine(sim, cluster, fabric, io, catalog, dconfig),
        injector(sim) {
    fault::connect(injector, engine);
    fault::connect(injector, store);
  }

  void stage_dataset(const std::string& name, int partitions,
                     util::Bytes total) {
    catalog.define(storage::DatasetSpec{name, partitions, total});
    catalog.preload(name);
  }

  std::vector<dataflow::ExecutorSpec> executors(int slots = 4) {
    std::vector<dataflow::ExecutorSpec> out;
    for (auto node : cluster.nodes_with_label("role=compute")) {
      out.push_back(dataflow::ExecutorSpec{node, slots});
    }
    return out;
  }

  sim::Simulation sim;
  cluster::Cluster cluster;
  net::Topology topology;
  net::Fabric fabric;
  storage::IoSubsystem io;
  storage::ObjectStore store;
  storage::DatasetCatalog catalog;
  dataflow::DataflowEngine engine;
  fault::FaultInjector injector;
};

dataflow::LogicalPlan scan_aggregate(const std::string& in,
                                     const std::string& out,
                                     int reducers = 8) {
  dataflow::LogicalPlan plan;
  const int src = plan.add_source(in);
  const int mapped = plan.add_map(src, "parse", 0.8, 0.5);
  const int reduced = plan.add_reduce_by_key(mapped, "agg", reducers, 0.05);
  plan.add_sink(reduced, out);
  return plan;
}

// Runs the canonical workload fault-free and reports its stage timings,
// so crash times can be aimed deterministically at a specific phase.
dataflow::JobStats baseline_stats() {
  FaultFixture f;
  f.stage_dataset("in", 8, 64 * util::kMiB);
  dataflow::JobStats stats;
  f.engine.run(scan_aggregate("in", "out"), f.executors(),
               [&](const dataflow::JobStats& s) { stats = s; });
  f.sim.run();
  return stats;
}

TEST(FaultRecovery, DataflowSurvivesComputeNodeCrash) {
  const auto base = baseline_stats();
  ASSERT_GT(base.duration, 0);

  FaultFixture f;
  f.stage_dataset("in", 8, 64 * util::kMiB);
  const auto victim = f.cluster.nodes_with_label("role=compute")[0];
  // Crash late in the map stage (tasks only launch once the locality
  // wait expires, so early kill times hit an idle cluster); recover
  // after the fault-free job would have finished.
  const util::TimeNs kill_at = base.stages[0].finish_time * 7 / 8;
  f.injector.schedule_outage(victim, kill_at, base.duration);
  dataflow::JobStats stats;
  bool done = false;
  f.engine.run(scan_aggregate("in", "out"), f.executors(),
               [&](const dataflow::JobStats& s) {
                 stats = s;
                 done = true;
               });
  f.sim.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(stats.failed);
  EXPECT_GE(stats.tasks_killed, 1);
  EXPECT_GE(stats.task_retries, 1);
  EXPECT_GE(stats.duration, base.duration);  // recovery is not free
  EXPECT_TRUE(f.catalog.materialized("out"));
  // Sink output survived intact despite the crash.
  EXPECT_NEAR(static_cast<double>(f.catalog.spec("out").total_bytes),
              64.0 * util::kMiB * 0.8 * 0.05, 1024.0);
  EXPECT_GE(f.engine.metrics().counter("tasks_killed"), 1);
  EXPECT_TRUE(f.engine.metrics().has_histogram("reschedule_latency_ms"));
}

TEST(FaultRecovery, LostMapOutputsReexecuteUpstreamTasks) {
  const auto base = baseline_stats();
  ASSERT_EQ(base.stages.size(), 2u);
  // Aim the crash at the middle of the reduce stage: the map stage has
  // finished, so its shuffle outputs on the victim are the only way the
  // failure can be felt upstream.
  const util::TimeNs mid_reduce =
      (base.stages[0].finish_time + base.duration) / 2;
  ASSERT_GT(mid_reduce, base.stages[0].finish_time);

  FaultFixture f;
  f.stage_dataset("in", 8, 64 * util::kMiB);
  const auto victim = f.cluster.nodes_with_label("role=compute")[0];
  f.injector.schedule_failure(victim, mid_reduce);
  dataflow::JobStats stats;
  bool done = false;
  f.engine.run(scan_aggregate("in", "out"), f.executors(),
               [&](const dataflow::JobStats& s) {
                 stats = s;
                 done = true;
               });
  f.sim.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(stats.failed);
  EXPECT_GE(stats.map_outputs_lost, 1);
  EXPECT_GE(stats.tasks_reexecuted, 1);
  EXPECT_TRUE(f.catalog.materialized("out"));
}

TEST(FaultRecovery, RecoveryDisabledFailsJobCleanly) {
  dataflow::DataflowConfig dconfig;
  dconfig.fault_recovery = false;
  storage::ObjectStoreConfig sconfig;
  sconfig.replicas = 1;
  sconfig.repair = false;
  FaultFixture f(4, 1, dconfig, sconfig);
  f.stage_dataset("in", 8, 64 * util::kMiB);
  // Kill the only storage server before any read completes: every source
  // task loses its input, and without recovery the job must abort.
  f.injector.schedule_failure(f.cluster.nodes_with_label("role=storage")[0],
                              util::millis(1));
  dataflow::JobStats stats;
  bool done = false;
  f.engine.run(scan_aggregate("in", "out"), f.executors(),
               [&](const dataflow::JobStats& s) {
                 stats = s;
                 done = true;
               });
  f.sim.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(stats.failed);
  EXPECT_EQ(stats.task_retries, 0);
  EXPECT_EQ(f.engine.metrics().counter("jobs_failed"), 1);
  EXPECT_FALSE(f.catalog.defined("out"));
}

TEST(FaultRecovery, RetryBudgetExhaustionFailsJob) {
  dataflow::DataflowConfig dconfig;
  dconfig.max_task_retries = 2;
  dconfig.retry_backoff = util::millis(10);
  storage::ObjectStoreConfig sconfig;
  sconfig.replicas = 1;
  sconfig.repair = false;
  FaultFixture f(4, 1, dconfig, sconfig);
  f.stage_dataset("in", 8, 64 * util::kMiB);
  // The storage server never comes back, so retries cannot succeed.
  f.injector.schedule_failure(f.cluster.nodes_with_label("role=storage")[0],
                              util::millis(1));
  dataflow::JobStats stats;
  bool done = false;
  f.engine.run(scan_aggregate("in", "out"), f.executors(),
               [&](const dataflow::JobStats& s) {
                 stats = s;
                 done = true;
               });
  f.sim.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(stats.failed);
  EXPECT_GE(stats.task_retries, dconfig.max_task_retries);
}

// -- Object store: degraded reads, background repair, loss -------------

TEST(FaultRecovery, ObjectStoreRepairsDegradedObjects) {
  storage::ObjectStoreConfig sconfig;
  sconfig.replicas = 2;
  sconfig.repair_delay = util::millis(10);
  FaultFixture f(1, 3, {}, sconfig);
  const auto client = f.cluster.nodes_with_label("role=compute")[0];
  const storage::ObjectKey key{"bench", "x"};
  f.store.create_bucket("bench");
  f.store.preload(key, 8 * util::kMiB);
  const auto holders = f.store.locate(key);
  ASSERT_EQ(holders.size(), 2u);

  f.store.handle_node_failure(holders[0]);
  EXPECT_EQ(f.store.under_replicated_objects(), 1);

  // Degraded read still succeeds from the surviving replica.
  storage::GetResult got;
  f.store.get(client, key, [&](const storage::GetResult& r) { got = r; });
  f.sim.run();
  EXPECT_TRUE(got.found);
  EXPECT_EQ(got.served_by, holders[1]);
  EXPECT_GE(f.store.metrics().counter("degraded_reads"), 1);

  // Background repair re-replicated onto the third server.
  EXPECT_EQ(f.store.under_replicated_objects(), 0);
  EXPECT_GE(f.store.metrics().counter("objects_repaired"), 1);
  EXPECT_GT(f.store.under_replicated_object_seconds(), 0.0);
  for (auto server : f.store.servers()) {
    EXPECT_EQ(f.store.durable_bytes(server),
              f.store.expected_durable_bytes(server))
        << "server " << server;
  }
  EXPECT_EQ(f.store.lost_objects(), 0);
}

TEST(FaultRecovery, ObjectStoreStalledRepairResumesOnRecovery) {
  storage::ObjectStoreConfig sconfig;
  sconfig.replicas = 2;
  sconfig.repair_delay = util::millis(10);
  FaultFixture f(1, 2, {}, sconfig);
  const storage::ObjectKey key{"bench", "x"};
  f.store.create_bucket("bench");
  f.store.preload(key, 8 * util::kMiB);
  const auto holders = f.store.locate(key);
  ASSERT_EQ(holders.size(), 2u);

  // With only two servers there is no spare repair target: the repair
  // stalls until the dead server rejoins (empty) and becomes one.
  f.store.handle_node_failure(holders[0]);
  f.sim.run();
  EXPECT_EQ(f.store.under_replicated_objects(), 1);

  f.store.handle_node_recovery(holders[0]);
  f.sim.run();
  EXPECT_EQ(f.store.under_replicated_objects(), 0);
  for (auto server : f.store.servers()) {
    EXPECT_EQ(f.store.durable_bytes(server),
              f.store.expected_durable_bytes(server));
  }
}

TEST(FaultRecovery, ObjectStoreReportsPermanentLoss) {
  storage::ObjectStoreConfig sconfig;
  sconfig.replicas = 2;
  FaultFixture f(1, 3, {}, sconfig);
  const auto client = f.cluster.nodes_with_label("role=compute")[0];
  const storage::ObjectKey key{"bench", "gone"};
  f.store.create_bucket("bench");
  f.store.preload(key, 4 * util::kMiB);
  const auto holders = f.store.locate(key);
  ASSERT_EQ(holders.size(), 2u);

  // Kill both replicas back-to-back, before repair can race in.
  f.store.handle_node_failure(holders[0]);
  f.store.handle_node_failure(holders[1]);
  EXPECT_EQ(f.store.lost_objects(), 1);
  EXPECT_EQ(f.store.under_replicated_objects(), 0);  // lost, not degraded

  storage::GetResult got;
  got.found = true;
  f.store.get(client, key, [&](const storage::GetResult& r) { got = r; });
  f.sim.run();
  EXPECT_FALSE(got.found);
  EXPECT_TRUE(f.store.exists(key));  // metadata survives for observability
  EXPECT_GE(f.store.metrics().counter("get_lost"), 1);
}

// -- Batch queue: gang aborts and checkpointed restarts ----------------

TEST(FaultRecovery, BatchQueueRestartsFromLastCheckpoint) {
  sim::Simulation sim;
  hpc::BatchFaultConfig fault;
  fault.checkpoint_interval = util::seconds(2);
  fault.restart_cost = util::millis(500);
  hpc::BatchQueue queue(sim, 4, hpc::QueuePolicy::kFcfs, 0, fault);
  hpc::HpcJobSpec spec;
  spec.name = "gang";
  spec.nodes = 2;
  spec.runtime = util::seconds(10);
  spec.walltime = util::seconds(20);
  bool finished = false;
  std::vector<int> assigned;
  const auto id = queue.submit(
      spec, [&](hpc::JobId, const std::vector<int>& nodes) {
        if (assigned.empty()) assigned = nodes;
      },
      [&](hpc::JobId) { finished = true; });

  sim.at(util::seconds(5), [&] {
    ASSERT_FALSE(assigned.empty());
    queue.handle_node_failure(assigned[0]);
  });
  sim.at(util::seconds(6), [&] { queue.handle_node_recovery(assigned[0]); });
  sim.run();

  ASSERT_TRUE(finished);
  const auto& job = queue.job(id);
  EXPECT_TRUE(job.finished);
  EXPECT_EQ(job.restarts, 1);
  // Failed 5s in with 2s checkpoints: 4s of progress survives, so the
  // restart runs 10 - 4 + 0.5 = 6.5s. Two spare nodes let it restart
  // immediately at t=5s.
  EXPECT_GE(job.finish_time, util::seconds(5) + util::millis(6500));
  EXPECT_LE(job.finish_time, util::seconds(5) + util::millis(6600));
  EXPECT_EQ(queue.metrics().counter("gang_aborts"), 1);
  EXPECT_EQ(queue.metrics().counter("jobs_restarted"), 1);
  // 5s elapsed, 4s checkpointed: exactly 1s of work was lost.
  ASSERT_GE(queue.metrics().histogram("work_lost_ms").count(), 1);
  EXPECT_EQ(queue.metrics().histogram("work_lost_ms").p50(), 1000);
  EXPECT_EQ(queue.down_nodes(), 0);
}

TEST(FaultRecovery, BatchQueueWithoutCheckpointsRestartsFromScratch) {
  sim::Simulation sim;
  hpc::BatchQueue queue(sim, 2, hpc::QueuePolicy::kFcfs, 0, {});
  hpc::HpcJobSpec spec;
  spec.nodes = 2;
  spec.runtime = util::seconds(4);
  spec.walltime = util::seconds(10);
  bool finished = false;
  const auto id = queue.submit(spec, {}, [&](hpc::JobId) { finished = true; });
  sim.at(util::seconds(3), [&] { queue.handle_node_failure(0); });
  sim.at(util::seconds(4), [&] { queue.handle_node_recovery(0); });
  sim.run();
  ASSERT_TRUE(finished);
  const auto& job = queue.job(id);
  EXPECT_EQ(job.restarts, 1);
  // 3s of progress lost entirely; full 4s reruns once node 0 is back.
  EXPECT_GE(job.finish_time, util::seconds(8));
}

// -- Workflow retry backoff (seeded jitter) ----------------------------

struct FlakyRunner : workflow::StepRunner {
  explicit FlakyRunner(sim::Simulation& sim, int failures)
      : sim(sim), failures(failures) {}
  void run_step(const workflow::Step&,
                std::function<void(bool)> on_done) override {
    attempt_times.push_back(sim.now());
    on_done(static_cast<int>(attempt_times.size()) > failures);
  }
  sim::Simulation& sim;
  int failures;
  std::vector<util::TimeNs> attempt_times;
};

std::vector<util::TimeNs> backoff_times(std::uint64_t seed) {
  sim::Simulation sim;
  FlakyRunner runner(sim, 2);
  workflow::WorkflowEngine engine(sim, runner, seed);
  workflow::Step step;
  step.name = "flaky";
  step.max_retries = 3;
  step.retry_backoff = util::millis(100);
  workflow::Workflow wf("wf");
  wf.add(step);
  workflow::WorkflowResult result;
  engine.run(wf, [&](const workflow::WorkflowResult& r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.steps.at("flaky").attempts, 3);
  return runner.attempt_times;
}

TEST(FaultRecovery, WorkflowRetriesBackOffExponentiallyWithJitter) {
  const auto times = backoff_times(1);
  ASSERT_EQ(times.size(), 3u);
  // Retry n waits base * 2^(n-1) stretched by up to +25% jitter.
  const util::TimeNs d1 = times[1] - times[0];
  const util::TimeNs d2 = times[2] - times[1];
  EXPECT_GE(d1, util::millis(100));
  EXPECT_LE(d1, util::millis(125));
  EXPECT_GE(d2, util::millis(200));
  EXPECT_LE(d2, util::millis(250));
}

TEST(FaultRecovery, WorkflowBackoffJitterIsSeededAndDeterministic) {
  EXPECT_EQ(backoff_times(1), backoff_times(1));
  EXPECT_NE(backoff_times(1), backoff_times(99));
}

// -- Orchestrator: crashes, recovery, and gang integrity ---------------

orch::PodSpec half_node_pod(const std::string& name) {
  orch::PodSpec spec;
  spec.name = name;
  // More than half a 32-core/128GiB testbed node: two such pods can
  // never share a node, so a 2-pod gang always spans two nodes.
  spec.request = cluster::cpu_mem(20'000, 80 * util::kGiB);
  return spec;
}

TEST(FaultRecovery, OrchestratorEvictsAndReadmitsAroundCrash) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(2, 0, 0);
  orch::Orchestrator orch(sim, cluster,
                          orch::SchedulingPolicy::spreading(cluster));
  const auto id = orch.submit(half_node_pod("p"), /*duration=*/-1);
  sim.run_until(util::seconds(1));
  ASSERT_EQ(orch.pod(id).phase, orch::PodPhase::kRunning);
  const auto node = orch.pod(id).node;

  orch.fail_node(node);
  EXPECT_EQ(orch.pod(id).phase, orch::PodPhase::kFailed);
  EXPECT_FALSE(orch.is_ready(node));
  EXPECT_EQ(orch.node_status(node).pod_count(), 0);
  EXPECT_TRUE(orch.node_status(node).allocated().is_zero());

  // While the node is NotReady, only the surviving node is schedulable:
  // two big pods cannot both run.
  const auto a = orch.submit(half_node_pod("a"), -1);
  const auto b = orch.submit(half_node_pod("b"), -1);
  sim.run_until(util::seconds(2));
  EXPECT_EQ((orch.pod(a).phase == orch::PodPhase::kRunning) +
                (orch.pod(b).phase == orch::PodPhase::kRunning),
            1);

  orch.recover_node(node);
  EXPECT_TRUE(orch.is_ready(node));
  sim.run_until(util::seconds(3));
  EXPECT_EQ(orch.pod(a).phase, orch::PodPhase::kRunning);
  EXPECT_EQ(orch.pod(b).phase, orch::PodPhase::kRunning);
  orch.shutdown();
}

TEST(FaultRecovery, DrainKillsWholeGang) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(2, 0, 0);
  orch::Orchestrator orch(sim, cluster,
                          orch::SchedulingPolicy::spreading(cluster));
  const auto ids = orch.submit_gang(
      {half_node_pod("g0"), half_node_pod("g1")}, /*duration=*/-1);
  ASSERT_EQ(ids.size(), 2u);
  sim.run_until(util::seconds(1));
  ASSERT_EQ(orch.pod(ids[0]).phase, orch::PodPhase::kRunning);
  ASSERT_EQ(orch.pod(ids[1]).phase, orch::PodPhase::kRunning);
  ASSERT_NE(orch.pod(ids[0]).node, orch.pod(ids[1]).node);

  // Draining the node hosting ONE member must take down the whole gang:
  // all-or-nothing placement implies all-or-nothing lifetimes.
  orch.drain(orch.pod(ids[0]).node);
  EXPECT_EQ(orch.pod(ids[0]).phase, orch::PodPhase::kFailed);
  EXPECT_EQ(orch.pod(ids[1]).phase, orch::PodPhase::kFailed);
  for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
    EXPECT_EQ(orch.node_status(n).pod_count(), 0);
    EXPECT_TRUE(orch.node_status(n).allocated().is_zero());
  }
  EXPECT_EQ(orch.running_count(), 0);
  orch.shutdown();
}

TEST(FaultRecovery, NodeCrashKillsWholeGang) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(2, 0, 0);
  orch::Orchestrator orch(sim, cluster,
                          orch::SchedulingPolicy::spreading(cluster));
  fault::FaultInjector injector(sim);
  fault::connect(injector, orch);
  const auto ids = orch.submit_gang(
      {half_node_pod("g0"), half_node_pod("g1")}, /*duration=*/-1);
  sim.run_until(util::seconds(1));
  ASSERT_EQ(orch.pod(ids[0]).phase, orch::PodPhase::kRunning);

  injector.kill(orch.pod(ids[1]).node);
  EXPECT_EQ(orch.pod(ids[0]).phase, orch::PodPhase::kFailed);
  EXPECT_EQ(orch.pod(ids[1]).phase, orch::PodPhase::kFailed);
  EXPECT_EQ(orch.running_count(), 0);
  orch.shutdown();
}

}  // namespace
}  // namespace evolve
