#include "orch/node_status.hpp"

#include <gtest/gtest.h>

#include "util/types.hpp"

namespace evolve::orch {
namespace {

using cluster::cpu_mem;

TEST(NodeStatus, BindTracksAllocation) {
  NodeStatus node(0, cpu_mem(4000, 8 * util::kGiB));
  node.bind(1, cpu_mem(1000, util::kGiB));
  EXPECT_EQ(node.allocated(), cpu_mem(1000, util::kGiB));
  EXPECT_EQ(node.free(), cpu_mem(3000, 7 * util::kGiB));
  EXPECT_TRUE(node.has_pod(1));
  EXPECT_EQ(node.pod_count(), 1);
}

TEST(NodeStatus, BindRejectsOvercommit) {
  NodeStatus node(0, cpu_mem(1000, util::kGiB));
  node.bind(1, cpu_mem(900, 0));
  EXPECT_THROW(node.bind(2, cpu_mem(200, 0)), std::logic_error);
}

TEST(NodeStatus, BindRejectsDuplicatePod) {
  NodeStatus node(0, cpu_mem(4000, util::kGiB));
  node.bind(1, cpu_mem(100, 0));
  EXPECT_THROW(node.bind(1, cpu_mem(100, 0)), std::logic_error);
}

TEST(NodeStatus, UnbindReleases) {
  NodeStatus node(0, cpu_mem(1000, util::kGiB));
  node.bind(1, cpu_mem(800, util::kGiB / 2));
  node.unbind(1, cpu_mem(800, util::kGiB / 2));
  EXPECT_TRUE(node.allocated().is_zero());
  EXPECT_FALSE(node.has_pod(1));
}

TEST(NodeStatus, UnbindUnknownPodThrows) {
  NodeStatus node(0, cpu_mem(1000, util::kGiB));
  EXPECT_THROW(node.unbind(7, cpu_mem(1, 1)), std::logic_error);
}

TEST(NodeStatus, FitsConsidersCurrentLoad) {
  NodeStatus node(0, cpu_mem(1000, 1000));
  EXPECT_TRUE(node.fits(cpu_mem(1000, 1000)));
  node.bind(1, cpu_mem(600, 100));
  EXPECT_FALSE(node.fits(cpu_mem(500, 100)));
  EXPECT_TRUE(node.fits(cpu_mem(400, 900)));
}

}  // namespace
}  // namespace evolve::orch
