// Tests for the extended collective set (scatter/gather/reduce-scatter/
// all-to-all) and batch-queue priorities, aging, and dependencies.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "hpc/batch_queue.hpp"
#include "hpc/collectives.hpp"
#include "hpc/communicator.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"

namespace evolve::hpc {
namespace {

// ---- Collective schedules ------------------------------------------

TEST(ScatterSchedule, LinearIsOneRound) {
  const auto schedule = scatter_schedule(8, 0, 100, CollectiveAlgo::kLinear);
  ASSERT_EQ(schedule.size(), 1u);
  EXPECT_EQ(schedule[0].transfers.size(), 7u);
  EXPECT_EQ(schedule_bytes(schedule), 7 * 100);
}

TEST(ScatterSchedule, TreeMovesLogRoundsAndExactBytes) {
  // Binomial scatter of per-rank blocks: each rank's block crosses the
  // tree once per level it descends; total bytes = sum of block moves.
  const auto schedule = scatter_schedule(8, 0, 100, CollectiveAlgo::kTree);
  EXPECT_EQ(schedule.size(), 3u);  // log2(8)
  // Round 1 moves 4 blocks, round 2 moves 2x2, round 3 moves 4x1.
  EXPECT_EQ(schedule_bytes(schedule), (4 + 2 + 2 + 1 + 1 + 1 + 1) * 100);
}

TEST(ScatterSchedule, TreeCoversEveryRank) {
  for (int p : {2, 3, 5, 8, 13, 16}) {
    for (int root : {0, p - 1}) {
      const auto schedule = scatter_schedule(p, root, 10);
      std::set<int> reached = {root};
      for (const Round& round : schedule) {
        for (const Transfer& t : round.transfers) {
          EXPECT_TRUE(reached.count(t.src)) << "p=" << p;
          reached.insert(t.dst);
        }
      }
      EXPECT_EQ(reached.size(), static_cast<std::size_t>(p)) << "p=" << p;
    }
  }
}

TEST(ScatterSchedule, SingleRankEmpty) {
  EXPECT_TRUE(scatter_schedule(1, 0, 100).empty());
}

TEST(GatherSchedule, MirrorsScatter) {
  const auto scatter = scatter_schedule(8, 2, 100);
  const auto gather = gather_schedule(8, 2, 100);
  ASSERT_EQ(scatter.size(), gather.size());
  EXPECT_EQ(schedule_bytes(scatter), schedule_bytes(gather));
  // First gather round = reversed last scatter round.
  const auto& first = gather.front().transfers;
  const auto& last = scatter.back().transfers;
  ASSERT_EQ(first.size(), last.size());
  EXPECT_EQ(first[0].src, last[0].dst);
  EXPECT_EQ(first[0].dst, last[0].src);
}

TEST(ReduceScatterSchedule, RingStructure) {
  const auto schedule = reduce_scatter_schedule(4, 4000, 0.5);
  ASSERT_EQ(schedule.size(), 3u);  // p-1 rounds
  for (const Round& round : schedule) {
    EXPECT_EQ(round.transfers.size(), 4u);
    EXPECT_GT(round.compute, 0);
    for (const Transfer& t : round.transfers) EXPECT_EQ(t.bytes, 1000);
  }
  EXPECT_TRUE(reduce_scatter_schedule(1, 100, 0.5).empty());
}

TEST(AlltoallSchedule, RotationCoversAllPairs) {
  const int p = 5;
  const auto schedule = alltoall_schedule(p, 10);
  EXPECT_EQ(schedule.size(), static_cast<std::size_t>(p - 1));
  std::set<std::pair<int, int>> pairs;
  for (const Round& round : schedule) {
    for (const Transfer& t : round.transfers) {
      EXPECT_NE(t.src, t.dst);
      EXPECT_TRUE(pairs.emplace(t.src, t.dst).second) << "duplicate pair";
    }
  }
  EXPECT_EQ(pairs.size(), static_cast<std::size_t>(p * (p - 1)));
  EXPECT_EQ(schedule_bytes(schedule), p * (p - 1) * 10);
}

TEST(ExtendedCollectives, RunOnCommunicator) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(8, 0, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  std::vector<cluster::NodeId> ranks;
  for (int i = 0; i < 8; ++i) ranks.push_back(i);
  Communicator comm(sim, fabric, ranks);
  int done = 0;
  comm.scatter(0, util::kMiB, [&] { ++done; });
  sim.run();
  comm.gather(0, util::kMiB, [&] { ++done; });
  sim.run();
  comm.reduce_scatter(8 * util::kMiB, [&] { ++done; });
  sim.run();
  comm.alltoall(util::kMiB, [&] { ++done; });
  sim.run();
  EXPECT_EQ(done, 4);
}

// ---- Batch queue: priorities, aging, dependencies -------------------

HpcJobSpec job(const std::string& name, int nodes, double runtime_s,
               int priority = 0) {
  HpcJobSpec spec;
  spec.name = name;
  spec.nodes = nodes;
  spec.runtime = util::seconds(runtime_s);
  spec.walltime = spec.runtime;
  spec.priority = priority;
  return spec;
}

TEST(BatchQueuePriority, HigherPriorityJumpsQueue) {
  sim::Simulation sim;
  BatchQueue queue(sim, 2);
  std::vector<std::string> order;
  auto track = [&](const std::string& name) {
    return [&order, name](JobId, const std::vector<int>&) {
      order.push_back(name);
    };
  };
  queue.submit(job("running", 2, 10), track("running"));
  sim.run_until(util::seconds(1));  // blocker is on the nodes
  queue.submit(job("low", 2, 1, 0), track("low"));
  queue.submit(job("high", 2, 1, 5), track("high"));
  sim.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "running");
  EXPECT_EQ(order[1], "high");
  EXPECT_EQ(order[2], "low");
}

TEST(BatchQueuePriority, EqualPriorityStaysFifo) {
  sim::Simulation sim;
  BatchQueue queue(sim, 2);
  std::vector<std::string> order;
  auto track = [&](const std::string& name) {
    return [&order, name](JobId, const std::vector<int>&) {
      order.push_back(name);
    };
  };
  queue.submit(job("running", 2, 10), track("running"));
  queue.submit(job("first", 2, 1), track("first"));
  queue.submit(job("second", 2, 1), track("second"));
  sim.run();
  EXPECT_EQ(order[1], "first");
  EXPECT_EQ(order[2], "second");
}

TEST(BatchQueuePriority, AgingPromotesStarvedJob) {
  sim::Simulation sim;
  // +1 priority per 10 s of waiting.
  BatchQueue queue(sim, 2, QueuePolicy::kFcfs, util::seconds(10));
  std::vector<std::pair<std::string, util::TimeNs>> starts;
  auto track = [&](const std::string& name) {
    return [&starts, &sim, name](JobId, const std::vector<int>&) {
      starts.emplace_back(name, sim.now());
    };
  };
  queue.submit(job("running", 2, 50), track("running"));
  queue.submit(job("old-low", 2, 1, 0), track("old-low"));
  // 40 s later a priority-3 job arrives; by then old-low has aged +4.
  sim.at(util::seconds(40), [&] {
    queue.submit(job("late-high", 2, 1, 3), track("late-high"));
  });
  sim.run();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[1].first, "old-low");
}

TEST(BatchQueueDeps, JobWaitsForDependency) {
  sim::Simulation sim;
  BatchQueue queue(sim, 4);
  std::vector<std::pair<std::string, util::TimeNs>> starts;
  auto track = [&](const std::string& name) {
    return [&starts, &sim, name](JobId, const std::vector<int>&) {
      starts.emplace_back(name, sim.now());
    };
  };
  const JobId first = queue.submit(job("producer", 1, 10), track("producer"));
  HpcJobSpec consumer = job("consumer", 1, 5);
  consumer.depends_on = {first};
  queue.submit(consumer, track("consumer"));
  sim.run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[1].first, "consumer");
  EXPECT_GE(starts[1].second, util::seconds(10));
}

TEST(BatchQueueDeps, DependencyDoesNotBlockOthers) {
  sim::Simulation sim;
  BatchQueue queue(sim, 2);
  std::vector<std::string> order;
  auto track = [&](const std::string& name) {
    return [&order, name](JobId, const std::vector<int>&) {
      order.push_back(name);
    };
  };
  const JobId long_job = queue.submit(job("long", 1, 100), track("long"));
  HpcJobSpec blocked = job("blocked", 1, 1);
  blocked.depends_on = {long_job};
  queue.submit(blocked, track("blocked"));
  queue.submit(job("free", 1, 1), track("free"));
  sim.run();
  ASSERT_EQ(order.size(), 3u);
  // "free" runs immediately on the spare node; "blocked" waits 100 s.
  EXPECT_EQ(order[1], "free");
  EXPECT_EQ(order[2], "blocked");
}

TEST(BatchQueueDeps, ChainedDependencies) {
  sim::Simulation sim;
  BatchQueue queue(sim, 4);
  std::vector<util::TimeNs> finishes;
  const JobId a = queue.submit(job("a", 1, 5));
  HpcJobSpec b = job("b", 1, 5);
  b.depends_on = {a};
  const JobId b_id = queue.submit(b, {}, [&](JobId) {
    finishes.push_back(sim.now());
  });
  HpcJobSpec c = job("c", 1, 5);
  c.depends_on = {b_id};
  queue.submit(c, {}, [&](JobId) { finishes.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(finishes.size(), 2u);
  EXPECT_EQ(finishes[1], util::seconds(15));
}

TEST(BatchQueueDeps, RejectsUnknownDependency) {
  sim::Simulation sim;
  BatchQueue queue(sim, 2);
  HpcJobSpec bad = job("bad", 1, 1);
  bad.depends_on = {999};
  EXPECT_THROW(queue.submit(bad), std::invalid_argument);
}

}  // namespace
}  // namespace evolve::hpc
