#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "dataflow/engine.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"

namespace evolve::dataflow {
namespace {

struct SpecFixture {
  explicit SpecFixture(DataflowConfig config)
      : cluster(cluster::make_testbed(4, 4, 0)),
        topology(cluster),
        fabric(sim, topology),
        io(sim, cluster),
        store(sim, cluster, fabric, io,
              cluster.nodes_with_label("role=storage")),
        catalog(store),
        engine(sim, cluster, fabric, io, catalog, config) {
    catalog.define(storage::DatasetSpec{"in", 16, 64 * util::kMiB});
    catalog.preload("in", /*warm_cache=*/true);
  }

  JobStats run_job() {
    LogicalPlan plan;
    const int src = plan.add_source("in");
    const int heavy = plan.add_map(src, "heavy", 0.5, 10.0);
    plan.add_sink(heavy, "out-" + std::to_string(++job_counter));
    JobStats stats;
    bool done = false;
    std::vector<ExecutorSpec> execs;
    for (auto node : cluster.nodes_with_label("role=compute")) {
      execs.push_back(ExecutorSpec{node, 2});
    }
    engine.run(plan, execs, [&](const JobStats& s) {
      stats = s;
      done = true;
    });
    sim.run();
    EXPECT_TRUE(done);
    return stats;
  }

  sim::Simulation sim;
  cluster::Cluster cluster;
  net::Topology topology;
  net::Fabric fabric;
  storage::IoSubsystem io;
  storage::ObjectStore store;
  storage::DatasetCatalog catalog;
  DataflowEngine engine;
  int job_counter = 0;
};

DataflowConfig straggler_config(bool speculation) {
  DataflowConfig config;
  config.locality_wait = 0;
  config.straggler_probability = 0.15;
  config.straggler_slowdown = 10.0;
  config.straggler_seed = 77;
  config.speculation = speculation;
  config.speculation_multiplier = 1.4;
  config.speculation_quantile = 0.5;
  return config;
}

TEST(Speculation, StragglersAreInjectedDeterministically) {
  SpecFixture a(straggler_config(false));
  SpecFixture b(straggler_config(false));
  const auto sa = a.run_job();
  const auto sb = b.run_job();
  EXPECT_GT(sa.stragglers_injected, 0);
  EXPECT_EQ(sa.stragglers_injected, sb.stragglers_injected);
  EXPECT_EQ(sa.duration, sb.duration);
}

TEST(Speculation, NoStragglersWhenProbabilityZero) {
  DataflowConfig config;
  config.locality_wait = 0;
  SpecFixture f(config);
  const auto stats = f.run_job();
  EXPECT_EQ(stats.stragglers_injected, 0);
  EXPECT_EQ(stats.speculative_launched, 0);
}

TEST(Speculation, DisabledMeansNoBackups) {
  SpecFixture f(straggler_config(false));
  const auto stats = f.run_job();
  EXPECT_GT(stats.stragglers_injected, 0);
  EXPECT_EQ(stats.speculative_launched, 0);
  EXPECT_EQ(stats.speculative_wins, 0);
}

TEST(Speculation, BackupsLaunchAndWin) {
  SpecFixture f(straggler_config(true));
  const auto stats = f.run_job();
  EXPECT_GT(stats.speculative_launched, 0);
  EXPECT_GT(stats.speculative_wins, 0);
}

TEST(Speculation, CutsJobDurationUnderStragglers) {
  SpecFixture off(straggler_config(false));
  SpecFixture on(straggler_config(true));
  const auto slow = off.run_job();
  const auto fast = on.run_job();
  // Same stragglers injected; backups should trim the tail.
  EXPECT_LT(fast.duration, slow.duration);
}

TEST(Speculation, TaskAccountingStaysConsistent) {
  SpecFixture f(straggler_config(true));
  const auto stats = f.run_job();
  // Every logical task completed exactly once regardless of copies.
  EXPECT_EQ(stats.tasks, 16);
  int stage_tasks = 0;
  for (const auto& stage : stats.stages) stage_tasks += stage.tasks;
  EXPECT_EQ(stage_tasks, stats.tasks);
  // Output integrity: the sink dataset matches the winner outputs only.
  EXPECT_NEAR(static_cast<double>(stats.bytes_written),
              64.0 * util::kMiB * 0.5, 4096.0);
}

TEST(Speculation, ValidatesConfig) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(1, 1, 0);
  net::Topology topo(cluster);
  net::Fabric fabric(sim, topo);
  storage::IoSubsystem io(sim, cluster);
  storage::ObjectStore store(sim, cluster, fabric, io,
                             cluster.nodes_with_label("role=storage"));
  storage::DatasetCatalog catalog(store);
  DataflowConfig bad;
  bad.straggler_probability = 1.5;
  EXPECT_THROW(DataflowEngine(sim, cluster, fabric, io, catalog, bad),
               std::invalid_argument);
  DataflowConfig bad2;
  bad2.straggler_slowdown = 0.5;
  EXPECT_THROW(DataflowEngine(sim, cluster, fabric, io, catalog, bad2),
               std::invalid_argument);
  DataflowConfig bad3;
  bad3.speculation_multiplier = 1.0;
  EXPECT_THROW(DataflowEngine(sim, cluster, fabric, io, catalog, bad3),
               std::invalid_argument);
}

}  // namespace
}  // namespace evolve::dataflow
