#include "util/retry_budget.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "util/circuit_breaker.hpp"
#include "util/types.hpp"

namespace evolve::util {
namespace {

TEST(RetryBudget, StartsWithInitialTokens) {
  RetryBudget budget;
  EXPECT_DOUBLE_EQ(budget.tokens(), 10.0);
  EXPECT_TRUE(budget.would_allow());
}

TEST(RetryBudget, DrainsAndDenies) {
  RetryBudgetConfig config;
  config.initial = 2.0;
  RetryBudget budget(config);
  EXPECT_TRUE(budget.try_retry());
  EXPECT_TRUE(budget.try_retry());
  EXPECT_FALSE(budget.try_retry());
  EXPECT_EQ(budget.retries_granted(), 2);
  EXPECT_EQ(budget.retries_denied(), 1);
  EXPECT_FALSE(budget.would_allow());
}

TEST(RetryBudget, SuccessesRefillAtDepositRatio) {
  RetryBudgetConfig config;
  config.initial = 0.0;
  RetryBudget budget(config);
  EXPECT_FALSE(budget.try_retry());
  // 10 successes at the default 0.1 ratio bank exactly one retry.
  for (int i = 0; i < 10; ++i) budget.record_success();
  EXPECT_TRUE(budget.try_retry());
  EXPECT_FALSE(budget.try_retry());
  EXPECT_EQ(budget.successes(), 10);
}

TEST(RetryBudget, BurstCapsTheBucket) {
  RetryBudgetConfig config;
  config.initial = 0.0;
  config.burst = 2.0;
  RetryBudget budget(config);
  for (int i = 0; i < 1000; ++i) budget.record_success();
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);
  EXPECT_TRUE(budget.try_retry());
  EXPECT_TRUE(budget.try_retry());
  EXPECT_FALSE(budget.try_retry());
}

TEST(RetryBudget, InitialClampedToBurst) {
  RetryBudgetConfig config;
  config.initial = 100.0;
  config.burst = 3.0;
  RetryBudget budget(config);
  EXPECT_DOUBLE_EQ(budget.tokens(), 3.0);
}

TEST(CircuitBreaker, OpensAfterConsecutiveFailures) {
  sim::Simulation sim;
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  CircuitBreaker breaker(sim, config);
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.times_opened(), 1);
  EXPECT_EQ(breaker.rejections(), 1);
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak) {
  sim::Simulation sim;
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  CircuitBreaker breaker(sim, config);
  breaker.record_failure();
  breaker.record_failure();
  breaker.record_success();
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, HalfOpenAdmitsProbeQuotaThenCloses) {
  sim::Simulation sim;
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown = seconds(5);
  config.probe_quota = 2;
  config.probe_successes_to_close = 2;
  CircuitBreaker breaker(sim, config);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  sim.after(seconds(5), [] {});
  sim.run();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.allow());
  EXPECT_TRUE(breaker.allow());
  EXPECT_FALSE(breaker.allow());  // probe quota spent
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, FailedProbeReopens) {
  sim::Simulation sim;
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown = seconds(5);
  CircuitBreaker breaker(sim, config);
  breaker.record_failure();

  sim.after(seconds(5), [] {});
  sim.run();
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.times_opened(), 2);

  // The second cooldown starts at the re-open, not the original trip.
  sim.after(seconds(5), [] {});
  sim.run();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
}

}  // namespace
}  // namespace evolve::util
