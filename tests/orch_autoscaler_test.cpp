#include "orch/autoscaler.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sim/simulation.hpp"
#include "util/types.hpp"

namespace evolve::orch {
namespace {

using cluster::cpu_mem;

struct HpaFixture {
  HpaFixture()
      : cluster(cluster::make_testbed(8, 0, 0)),
        orch(sim, cluster, SchedulingPolicy::spreading(cluster)) {
    PodSpec pod;
    pod.name = "web";
    pod.request = cpu_mem(1000, util::kGiB);
    deploy = std::make_unique<DeploymentController>(orch, "web", pod, 1);
  }

  AutoscalerConfig config() {
    AutoscalerConfig c;
    c.capacity_per_replica = 100.0;
    c.target_utilization = 1.0;
    c.min_replicas = 1;
    c.max_replicas = 10;
    c.interval = util::seconds(10);
    c.scale_down_window = util::seconds(30);
    return c;
  }

  sim::Simulation sim;
  cluster::Cluster cluster;
  Orchestrator orch;
  std::unique_ptr<DeploymentController> deploy;
  double load = 0;
};

TEST(Autoscaler, ValidatesConfig) {
  HpaFixture f;
  auto bad = f.config();
  bad.capacity_per_replica = 0;
  EXPECT_THROW(HorizontalAutoscaler(f.sim, *f.deploy, [] { return 0.0; }, bad),
               std::invalid_argument);
  auto bad2 = f.config();
  bad2.target_utilization = 1.5;
  EXPECT_THROW(
      HorizontalAutoscaler(f.sim, *f.deploy, [] { return 0.0; }, bad2),
      std::invalid_argument);
  auto bad3 = f.config();
  bad3.max_replicas = 0;
  bad3.min_replicas = 2;
  EXPECT_THROW(
      HorizontalAutoscaler(f.sim, *f.deploy, [] { return 0.0; }, bad3),
      std::invalid_argument);
  EXPECT_THROW(HorizontalAutoscaler(f.sim, *f.deploy, {}, f.config()),
               std::invalid_argument);
}

TEST(Autoscaler, ScalesUpWithLoad) {
  HpaFixture f;
  HorizontalAutoscaler hpa(f.sim, *f.deploy, [&f] { return f.load; },
                           f.config());
  hpa.start();
  f.load = 450.0;  // needs 5 replicas at 100/replica
  f.sim.run_until(util::seconds(25));
  EXPECT_EQ(f.deploy->desired(), 5);
  EXPECT_GT(hpa.scale_ups(), 0);
  hpa.stop();
  f.sim.run();
}

TEST(Autoscaler, RespectsMaxReplicas) {
  HpaFixture f;
  HorizontalAutoscaler hpa(f.sim, *f.deploy, [] { return 1e9; }, f.config());
  hpa.start();
  f.sim.run_until(util::seconds(25));
  EXPECT_EQ(f.deploy->desired(), 10);
  hpa.stop();
  f.sim.run();
}

TEST(Autoscaler, ScaleDownWaitsForStabilizationWindow) {
  HpaFixture f;
  HorizontalAutoscaler hpa(f.sim, *f.deploy, [&f] { return f.load; },
                           f.config());
  hpa.start();
  f.load = 800.0;
  f.sim.run_until(util::seconds(15));
  EXPECT_EQ(f.deploy->desired(), 8);
  // Load drops; scale-down must wait out the 30s window that still
  // contains the high recommendation.
  f.load = 100.0;
  f.sim.run_until(util::seconds(35));
  EXPECT_EQ(f.deploy->desired(), 8);  // held by stabilization
  f.sim.run_until(util::seconds(75));
  EXPECT_EQ(f.deploy->desired(), 1);  // window drained -> scaled down
  EXPECT_GT(hpa.scale_downs(), 0);
  hpa.stop();
  f.sim.run();
}

TEST(Autoscaler, TransientDipDoesNotFlap) {
  HpaFixture f;
  HorizontalAutoscaler hpa(f.sim, *f.deploy, [&f] { return f.load; },
                           f.config());
  hpa.start();
  f.load = 500.0;
  f.sim.run_until(util::seconds(15));
  const int before = f.deploy->desired();
  f.load = 50.0;  // one-interval dip
  f.sim.run_until(util::seconds(25));
  f.load = 500.0;
  f.sim.run_until(util::seconds(55));
  EXPECT_EQ(f.deploy->desired(), before);  // never scaled down
  hpa.stop();
  f.sim.run();
}

TEST(Autoscaler, StabilizationWindowBoundaryIsInclusive) {
  // The scale-down window keeps samples with t >= now - window: a high
  // recommendation exactly one window old still blocks the scale-down;
  // one tick past, it is evicted.
  HpaFixture f;
  HorizontalAutoscaler hpa(f.sim, *f.deploy, [&f] { return f.load; },
                           f.config());
  f.sim.at(0, [&] {
    f.load = 800.0;
    hpa.reconcile();
  });
  f.sim.run();
  EXPECT_EQ(f.deploy->desired(), 8);
  f.sim.at(util::seconds(30), [&] {
    f.load = 100.0;
    hpa.reconcile();  // the t=0 sample sits exactly on the boundary
  });
  f.sim.run();
  EXPECT_EQ(f.deploy->desired(), 8);  // still held
  f.sim.at(util::seconds(30) + 1, [&] { hpa.reconcile(); });
  f.sim.run();
  EXPECT_EQ(f.deploy->desired(), 1);  // boundary sample evicted
}

TEST(Autoscaler, RecommendationCeilingAtExactCapacity) {
  HpaFixture f;
  HorizontalAutoscaler hpa(f.sim, *f.deploy, [&f] { return f.load; },
                           f.config());
  // 100/replica at utilization 1: 300 is exactly 3 replicas, a hair
  // more must round up to 4.
  f.load = 300.0;
  hpa.reconcile();
  EXPECT_EQ(hpa.last_recommendation(), 3);
  f.load = 300.5;
  hpa.reconcile();
  EXPECT_EQ(hpa.last_recommendation(), 4);
}

TEST(Autoscaler, ZeroLoadClampsToMinNeverZero) {
  HpaFixture f;
  HorizontalAutoscaler hpa(f.sim, *f.deploy, [&f] { return f.load; },
                           f.config());
  hpa.start();
  f.load = 500.0;
  f.sim.run_until(util::seconds(15));
  EXPECT_EQ(f.deploy->desired(), 5);
  // Load vanishes entirely: after the stabilization window drains the
  // deployment settles at min_replicas, not zero.
  f.load = 0.0;
  f.sim.run_until(util::seconds(60));
  EXPECT_EQ(f.deploy->desired(), 1);
  EXPECT_EQ(hpa.last_recommendation(), 1);
  hpa.stop();
  f.sim.run();
}

TEST(Autoscaler, NegativeLoadTreatedAsMin) {
  HpaFixture f;
  HorizontalAutoscaler hpa(f.sim, *f.deploy, [] { return -50.0; },
                           f.config());
  hpa.reconcile();
  EXPECT_EQ(hpa.last_recommendation(), 1);
  EXPECT_EQ(f.deploy->desired(), 1);
}

TEST(Autoscaler, MinEqualsMaxPinsTheDeployment) {
  HpaFixture f;
  auto config = f.config();
  config.min_replicas = 4;
  config.max_replicas = 4;
  HorizontalAutoscaler hpa(f.sim, *f.deploy, [&f] { return f.load; }, config);
  hpa.start();
  f.load = 0.0;
  f.sim.run_until(util::seconds(15));
  EXPECT_EQ(f.deploy->desired(), 4);
  f.load = 1e6;
  f.sim.run_until(util::seconds(35));
  EXPECT_EQ(f.deploy->desired(), 4);
  hpa.stop();
  f.sim.run();
}

TEST(Autoscaler, HonorsMinReplicas) {
  HpaFixture f;
  auto config = f.config();
  config.min_replicas = 3;
  HorizontalAutoscaler hpa(f.sim, *f.deploy, [] { return 0.0; }, config);
  hpa.reconcile();
  EXPECT_EQ(hpa.last_recommendation(), 3);
}

TEST(OrchestratorDrain, CordonBlocksPlacement) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(2, 0, 0);
  Orchestrator orch(sim, cluster, SchedulingPolicy::spreading(cluster));
  orch.cordon(0);
  EXPECT_TRUE(orch.is_cordoned(0));
  for (int i = 0; i < 4; ++i) {
    PodSpec pod;
    pod.name = "p" + std::to_string(i);
    pod.request = cpu_mem(1000, util::kGiB);
    cluster::NodeId placed = cluster::kInvalidNode;
    orch.submit(pod, -1, [&](PodId, cluster::NodeId n) { placed = n; });
    sim.run();
    EXPECT_EQ(placed, 1);
  }
}

TEST(OrchestratorDrain, UncordonRestores) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(1, 0, 0);
  Orchestrator orch(sim, cluster, SchedulingPolicy::spreading(cluster));
  orch.cordon(0);
  PodSpec pod;
  pod.name = "p";
  pod.request = cpu_mem(1000, util::kGiB);
  bool started = false;
  orch.submit(pod, -1, [&](PodId, cluster::NodeId) { started = true; });
  sim.run();
  EXPECT_FALSE(started);
  orch.uncordon(0);
  sim.run();
  EXPECT_TRUE(started);
}

TEST(OrchestratorDrain, DrainEvictsAndDeploymentSelfHeals) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(3, 0, 0);
  Orchestrator orch(sim, cluster, SchedulingPolicy::spreading(cluster));
  PodSpec pod;
  pod.name = "web";
  pod.request = cpu_mem(4000, 8 * util::kGiB);
  DeploymentController deploy(orch, "web", pod, 6);
  sim.run();
  EXPECT_EQ(orch.running_count(), 6);

  // Find a node hosting replicas and drain it.
  cluster::NodeId victim = cluster::kInvalidNode;
  for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
    if (orch.node_status(n).pod_count() > 0) {
      victim = n;
      break;
    }
  }
  ASSERT_NE(victim, cluster::kInvalidNode);
  orch.drain(victim);
  sim.run();
  // All replicas live again, none on the drained node.
  EXPECT_EQ(orch.running_count(), 6);
  EXPECT_EQ(orch.node_status(victim).pod_count(), 0);
  EXPECT_GT(deploy.restarts(), 0);
  EXPECT_GT(orch.metrics().counter("evictions"), 0);
}

TEST(OrchestratorDrain, CordonValidatesNode) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(2, 0, 0);
  OrchestratorConfig config;
  config.nodes = {0};
  Orchestrator orch(sim, cluster, SchedulingPolicy::spreading(cluster),
                    config);
  EXPECT_THROW(orch.cordon(1), std::out_of_range);
}

}  // namespace
}  // namespace evolve::orch
