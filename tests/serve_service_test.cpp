// End-to-end tests for the request-serving Service: completion
// accounting, batching, shedding, drain-aware routing, hedging, replica
// lifecycle re-routing, and full-run determinism (traced or not).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/gray.hpp"
#include "fault/wiring.hpp"
#include "net/fabric.hpp"
#include "orch/controllers.hpp"
#include "orch/scheduler.hpp"
#include "serve/generator.hpp"
#include "serve/service.hpp"
#include "serve/signal.hpp"
#include "sim/simulation.hpp"
#include "trace/tracer.hpp"
#include "util/types.hpp"

namespace evolve::serve {
namespace {

// `compute == replicas` plus anti-affinity pins exactly one replica to
// every compute node, so node-targeted faults hit deterministically.
struct ServeFixture {
  explicit ServeFixture(int replicas)
      : cluster(cluster::make_testbed(replicas, 2, 0)),
        topology(cluster),
        fabric(sim, topology),
        orch(sim, cluster, orch::SchedulingPolicy::spreading(cluster)) {
    orch::PodSpec pod;
    pod.name = "api";
    pod.request = cluster::cpu_mem(2000, 4 * util::kGiB);
    pod.anti_affinity_group = "api";
    deploy = std::make_unique<orch::DeploymentController>(orch, "api", pod,
                                                          replicas);
    classes.resize(1);
    classes[0].name = "rank";
    classes[0].compute_cost = util::millis(2);
    classes[0].batch_setup = util::millis(1);
    classes[0].slo = util::millis(100);
  }

  Service& make_service(ServiceConfig config = {}) {
    service = std::make_unique<Service>(sim, fabric, *deploy, classes, config);
    return *service;
  }

  /// One request of class 0 from the first storage (client) node.
  Request request(util::TimeNs arrival) {
    Request req;
    req.id = next_id++;
    req.cls = 0;
    req.client = cluster.nodes_with_label("role=storage").front();
    req.arrival = arrival;
    return req;
  }

  /// Submits `n` requests spaced `gap` apart, starting `start` after
  /// the current simulation time.
  void offer(int n, util::TimeNs gap, util::TimeNs start = 0) {
    for (int i = 0; i < n; ++i) {
      const util::TimeNs at = sim.now() + start + gap * i;
      sim.at(at, [this, at] { service->submit(request(at)); });
    }
  }

  sim::Simulation sim;
  cluster::Cluster cluster;
  net::Topology topology;
  net::Fabric fabric;
  orch::Orchestrator orch;
  std::unique_ptr<orch::DeploymentController> deploy;
  std::vector<RequestClass> classes;
  std::unique_ptr<Service> service;
  RequestId next_id = 1;
};

void expect_clean(const ServeFixture& f) {
  EXPECT_EQ(f.service->outstanding(), 0);
  EXPECT_EQ(f.service->parked(), 0);
  EXPECT_EQ(f.fabric.stats().flows_in_flight, 0);
}

TEST(ServeService, CompletesAllAndAccountsExactly) {
  ServeFixture f(2);
  Service& svc = f.make_service();
  f.sim.run();  // replicas come up
  EXPECT_EQ(svc.replica_count(), 2);
  f.offer(40, util::millis(1));
  f.sim.run();
  const TenantStats& tenant = svc.tenant("default");
  EXPECT_EQ(tenant.arrived, 40);
  EXPECT_EQ(tenant.admitted, 40);
  EXPECT_EQ(tenant.completed, 40);
  EXPECT_EQ(tenant.shed(), 0);
  EXPECT_EQ(svc.metrics().counter("serve.completed"), 40);
  ASSERT_TRUE(svc.metrics().has_histogram("serve.latency_us"));
  EXPECT_EQ(svc.metrics().histogram("serve.latency_us").count(), 40);
  EXPECT_GT(svc.metrics().histogram("serve.latency_us").min(), 0);
  expect_clean(f);
}

TEST(ServeService, DynamicBatchingCoalesces) {
  ServeFixture f(1);
  ServiceConfig config;
  config.replica.batch.max_batch = 8;
  config.replica.batch.max_linger = util::millis(1);
  Service& svc = f.make_service(config);
  f.sim.run();
  f.offer(24, /*gap=*/0, util::millis(1));  // one simultaneous burst
  f.sim.run();
  EXPECT_EQ(svc.tenant("default").completed, 24);
  ASSERT_TRUE(svc.metrics().has_histogram("serve.batch_size"));
  EXPECT_GT(svc.metrics().histogram("serve.batch_size").mean(), 2.0);
  EXPECT_GE(svc.metrics().histogram("serve.batch_size").max(), 8);
  expect_clean(f);
}

TEST(ServeService, BatchOfOneNeverCoalesces) {
  ServeFixture f(1);
  ServiceConfig config;
  config.replica.batch.max_batch = 1;
  Service& svc = f.make_service(config);
  f.sim.run();
  f.offer(12, 0, util::millis(1));
  f.sim.run();
  EXPECT_EQ(svc.metrics().histogram("serve.batch_size").max(), 1);
  expect_clean(f);
}

TEST(ServeService, FullQueueShedsNeverLoses) {
  ServeFixture f(1);
  f.classes[0].compute_cost = util::millis(50);
  ServiceConfig config;
  config.replica.queue_limit = 2;
  config.replica.batch.max_batch = 1;
  Service& svc = f.make_service(config);
  f.sim.run();
  f.offer(20, util::micros(10), util::millis(1));
  f.sim.run();
  const TenantStats& tenant = svc.tenant("default");
  EXPECT_GT(tenant.shed_queue_full, 0);
  EXPECT_GT(tenant.completed, 0);
  EXPECT_EQ(tenant.completed + tenant.shed(), tenant.arrived);
  EXPECT_EQ(svc.metrics().counter("serve.shed_queue_full"),
            tenant.shed_queue_full);
  expect_clean(f);
}

TEST(ServeService, AdmissionShedsUnderSustainedOverload) {
  ServeFixture f(1);
  f.classes[0].compute_cost = util::millis(20);
  ServiceConfig config;
  config.replica.batch.max_batch = 1;
  config.admission.enabled = true;
  config.admission.target = util::millis(5);
  config.admission.interval = util::millis(5);
  Service& svc = f.make_service(config);
  f.sim.run();
  f.offer(100, util::millis(1), util::millis(1));
  f.sim.run();
  const TenantStats& tenant = svc.tenant("default");
  EXPECT_GT(tenant.shed_admission, 0);
  EXPECT_EQ(tenant.completed + tenant.shed(), tenant.arrived);
  EXPECT_EQ(tenant.admitted, tenant.arrived - tenant.shed_admission);
  EXPECT_GT(svc.admission().sheds(), 0);
  expect_clean(f);
}

TEST(ServeService, RouterAvoidsDrainedNode) {
  ServeFixture f(2);
  Service& svc = f.make_service();
  f.sim.run();
  std::set<cluster::NodeId> exec_nodes;
  svc.set_exec_observer(
      [&exec_nodes](cluster::NodeId node, util::TimeNs) {
        exec_nodes.insert(node);
      });
  const auto compute = f.cluster.nodes_with_label("role=compute");
  svc.set_node_drained(compute[0], true);
  EXPECT_TRUE(svc.is_node_drained(compute[0]));
  f.offer(20, util::millis(1));
  f.sim.run();
  EXPECT_EQ(svc.tenant("default").completed, 20);
  EXPECT_EQ(exec_nodes.count(compute[0]), 0u);  // never routed there
  EXPECT_EQ(exec_nodes.count(compute[1]), 1u);
  expect_clean(f);
}

TEST(ServeService, AllDrainedFallsBackDegraded) {
  ServeFixture f(2);
  Service& svc = f.make_service();
  f.sim.run();
  for (const auto node : f.cluster.nodes_with_label("role=compute")) {
    svc.set_node_drained(node, true);
  }
  f.offer(10, util::millis(1));
  f.sim.run();
  // Availability over purity: requests still complete, flagged degraded.
  EXPECT_EQ(svc.tenant("default").completed, 10);
  EXPECT_GT(svc.metrics().counter("serve.routed_degraded"), 0);
  expect_clean(f);
}

TEST(ServeService, GrayWiringStretchesExecution) {
  ServeFixture f(1);
  ServiceConfig config;
  config.replica.batch.max_batch = 1;
  Service& svc = f.make_service(config);
  fault::GrayInjector gray(f.sim);
  fault::connect(gray, svc);
  f.sim.run();
  std::vector<util::TimeNs> execs;
  svc.set_exec_observer([&execs](cluster::NodeId, util::TimeNs exec) {
    execs.push_back(exec);
  });
  const auto compute = f.cluster.nodes_with_label("role=compute");
  gray.schedule_slow_node(compute[0], /*cpu=*/4.0, /*accel=*/1.0,
                          f.sim.now() + util::millis(50), util::seconds(10));
  f.offer(1, 0, util::millis(1));    // healthy
  f.offer(1, 0, util::millis(100));  // slowed 4x
  f.sim.run();
  ASSERT_EQ(execs.size(), 2u);
  EXPECT_EQ(execs[1], 4 * execs[0]);
  expect_clean(f);
}

TEST(ServeService, HedgingRescuesRequestsOnSlowReplica) {
  ServeFixture f(2);
  ServiceConfig config;
  config.policy = BalancePolicy::kLeastOutstanding;
  config.replica.batch.max_batch = 1;
  config.hedging = true;
  config.hedge_min_delay = util::millis(2);
  config.hedge_min_samples = 1 << 20;  // pin the delay to hedge_min_delay
  Service& svc = f.make_service(config);
  f.sim.run();
  // One replica 50x slow: its 3 ms singleton batch takes 150 ms, far
  // past the 2 ms hedge delay; the hedge on the healthy replica wins.
  const auto compute = f.cluster.nodes_with_label("role=compute");
  svc.set_node_slowdown(compute[0], 50.0);
  f.offer(10, util::millis(20));
  f.sim.run();
  const TenantStats& tenant = svc.tenant("default");
  EXPECT_EQ(tenant.completed, 10);
  EXPECT_EQ(tenant.shed(), 0);
  EXPECT_GT(svc.hedges_launched(), 0);
  EXPECT_GT(svc.hedge_wins(), 0);
  EXPECT_GE(svc.hedges_launched(), svc.hedge_wins());
  expect_clean(f);
}

TEST(ServeService, NoHedgeWithoutASecondReplica) {
  ServeFixture f(1);
  ServiceConfig config;
  config.replica.batch.max_batch = 1;
  config.hedging = true;
  config.hedge_min_delay = util::micros(100);
  config.hedge_min_samples = 1 << 20;
  Service& svc = f.make_service(config);
  f.sim.run();
  const auto compute = f.cluster.nodes_with_label("role=compute");
  svc.set_node_slowdown(compute[0], 20.0);
  f.offer(5, util::millis(100));
  f.sim.run();
  EXPECT_EQ(svc.tenant("default").completed, 5);
  EXPECT_EQ(svc.hedges_launched(), 0);  // nowhere distinct to hedge to
  expect_clean(f);
}

TEST(ServeService, ScaleDownReroutesQueuedRequests) {
  ServeFixture f(3);
  f.classes[0].compute_cost = util::millis(10);
  ServiceConfig config;
  config.replica.batch.max_batch = 1;
  config.replica.queue_limit = 128;
  Service& svc = f.make_service(config);
  f.sim.run();
  EXPECT_EQ(svc.replica_count(), 3);
  f.offer(60, util::millis(1), util::millis(1));
  f.sim.at(f.sim.now() + util::millis(20), [&f] { f.deploy->scale(1); });
  f.sim.run();
  EXPECT_EQ(svc.replica_count(), 1);
  EXPECT_GT(svc.rerouted(), 0);
  const TenantStats& tenant = svc.tenant("default");
  EXPECT_EQ(tenant.completed + tenant.shed(), tenant.arrived);
  EXPECT_GT(tenant.completed, 0);
  expect_clean(f);
}

TEST(ServeService, ParkedRequestsWaitForAnyReplica) {
  ServeFixture f(1);
  Service& svc = f.make_service();
  f.sim.run();
  f.deploy->scale(0);
  f.sim.run();
  EXPECT_EQ(svc.replica_count(), 0);
  for (int i = 0; i < 3; ++i) {
    svc.submit(f.request(f.sim.now()));
  }
  EXPECT_EQ(svc.parked(), 3);
  f.sim.run();
  EXPECT_EQ(svc.parked(), 3);  // still nowhere to go
  f.deploy->scale(1);
  f.sim.run();
  EXPECT_EQ(svc.tenant("default").completed, 3);
  expect_clean(f);
}

TEST(ServeService, SignalSeesTheServingPath) {
  ServeFixture f(2);
  Service& svc = f.make_service();
  ScalingSignalConfig sconfig;
  sconfig.window = util::seconds(5);
  ScalingSignal signal(f.sim, sconfig);
  svc.attach_signal(&signal);
  f.sim.run();
  f.offer(50, util::millis(1));
  double mid_rate = 0;
  int mid_inflight = -1;
  f.sim.at(f.sim.now() + util::millis(30), [&] {
    mid_rate = signal.arrival_rate();
    mid_inflight = signal.inflight();
  });
  f.sim.run();
  EXPECT_GT(mid_rate, 0.0);
  EXPECT_GT(mid_inflight, 0);
  EXPECT_EQ(signal.inflight(), 0);  // everything drained
  expect_clean(f);
}

// A fuller scenario (Poisson arrivals, hedging, admission, one slow
// node) must be bit-deterministic, and attaching a tracer must observe
// without perturbing.
struct ScenarioResult {
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t hedges = 0;
  std::int64_t p99 = 0;
  std::size_t spans = 0;
};

ScenarioResult run_scenario(bool traced) {
  ServeFixture f(3);
  ServiceConfig config;
  config.policy = BalancePolicy::kPowerOfTwo;
  config.replica.batch.max_batch = 4;
  config.replica.batch.max_linger = util::micros(500);
  config.hedging = true;
  config.hedge_min_delay = util::millis(5);
  config.admission.enabled = true;
  config.admission.target = util::millis(20);
  config.admission.interval = util::millis(20);
  Service& svc = f.make_service(config);
  auto tracer = std::make_unique<trace::Tracer>(f.sim);
  if (traced) {
    f.fabric.set_tracer(tracer.get());
    svc.set_tracer(tracer.get());
  }
  const auto compute = f.cluster.nodes_with_label("role=compute");
  svc.set_node_slowdown(compute[0], 8.0);

  GeneratorConfig gen;
  gen.phases = {{util::seconds(2), 400.0}};
  gen.clients = f.cluster.nodes_with_label("role=storage");
  gen.horizon = util::seconds(2);
  gen.seed = 0xdead;
  RequestGenerator generator(f.sim, gen, svc.sink());
  generator.start();
  f.sim.run();

  ScenarioResult out;
  const TenantStats& tenant = svc.tenant("default");
  out.completed = tenant.completed;
  out.shed = tenant.shed();
  out.hedges = svc.hedges_launched();
  out.p99 = svc.metrics().histogram("serve.latency_us").p99();
  EXPECT_EQ(tenant.completed + tenant.shed(), tenant.arrived);
  expect_clean(f);
  if (traced) {
    tracer->close_open_spans();
    out.spans = tracer->spans().size();
  }
  return out;
}

TEST(ServeService, ScenarioIsDeterministicAndTracingIsObservational) {
  const ScenarioResult a = run_scenario(false);
  const ScenarioResult b = run_scenario(false);
  const ScenarioResult traced = run_scenario(true);
  EXPECT_GT(a.completed, 0);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.hedges, b.hedges);
  EXPECT_EQ(a.p99, b.p99);
  // The tracer records spans but changes no metric.
  EXPECT_EQ(a.completed, traced.completed);
  EXPECT_EQ(a.shed, traced.shed);
  EXPECT_EQ(a.hedges, traced.hedges);
  EXPECT_EQ(a.p99, traced.p99);
  EXPECT_GT(traced.spans, 0u);
}

}  // namespace
}  // namespace evolve::serve
