#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"
#include "util/types.hpp"

namespace evolve::fault {
namespace {

TEST(FaultInjector, ScheduledOutageFiresSubscribersInOrder) {
  sim::Simulation sim;
  FaultInjector injector(sim);
  std::vector<std::pair<std::string, util::TimeNs>> events;
  injector.on_failure([&](cluster::NodeId node, util::TimeNs at) {
    events.emplace_back("fail-a:" + std::to_string(node), at);
  });
  injector.on_failure([&](cluster::NodeId node, util::TimeNs at) {
    events.emplace_back("fail-b:" + std::to_string(node), at);
  });
  injector.on_recovery([&](cluster::NodeId node, util::TimeNs at) {
    events.emplace_back("up:" + std::to_string(node), at);
  });
  injector.schedule_outage(3, util::seconds(1), util::seconds(2));
  sim.run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], std::make_pair(std::string("fail-a:3"),
                                      util::seconds(1)));
  EXPECT_EQ(events[1], std::make_pair(std::string("fail-b:3"),
                                      util::seconds(1)));
  EXPECT_EQ(events[2], std::make_pair(std::string("up:3"),
                                      util::seconds(3)));
  EXPECT_EQ(injector.failures_injected(), 1);
  EXPECT_EQ(injector.recoveries(), 1);
  EXPECT_EQ(injector.down_count(), 0);
}

TEST(FaultInjector, KillAndRestoreAreIdempotent) {
  sim::Simulation sim;
  FaultInjector injector(sim);
  int failures = 0;
  int recoveries = 0;
  injector.on_failure([&](cluster::NodeId, util::TimeNs) { ++failures; });
  injector.on_recovery([&](cluster::NodeId, util::TimeNs) { ++recoveries; });
  injector.kill(0);
  injector.kill(0);  // already down: no-op
  EXPECT_TRUE(injector.is_down(0));
  EXPECT_EQ(failures, 1);
  injector.restore(0);
  injector.restore(0);  // already up: no-op
  EXPECT_FALSE(injector.is_down(0));
  EXPECT_EQ(recoveries, 1);
}

TEST(FaultInjector, DowntimeAccountingIncludesOpenIntervals) {
  sim::Simulation sim;
  FaultInjector injector(sim);
  injector.schedule_outage(0, util::seconds(1), util::seconds(2));
  injector.schedule_failure(1, util::seconds(2));
  sim.run_until(util::seconds(5));
  // Node 0: down [1s, 3s) = 2 node-s. Node 1: down [2s, now=5s) = 3 node-s.
  EXPECT_NEAR(injector.downtime_node_seconds(), 5.0, 1e-9);
  EXPECT_EQ(injector.down_count(), 1);
  injector.restore_all();
  EXPECT_EQ(injector.down_count(), 0);
  EXPECT_NEAR(injector.downtime_node_seconds(), 5.0, 1e-9);
}

TEST(FaultInjector, OverlappingOutagesCoalesce) {
  sim::Simulation sim;
  FaultInjector injector(sim);
  std::vector<std::pair<bool, util::TimeNs>> events;  // (down, at)
  injector.on_failure([&](cluster::NodeId, util::TimeNs at) {
    events.emplace_back(true, at);
  });
  injector.on_recovery([&](cluster::NodeId, util::TimeNs at) {
    events.emplace_back(false, at);
  });
  // [1s, 3s) and [2s, 5s) overlap: one failure at 1s, one recovery at
  // 5s, downtime = the union [1s, 5s) = 4 node-s (not 2 + 3 = 5).
  injector.schedule_outage(7, util::seconds(1), util::seconds(2));
  injector.schedule_outage(7, util::seconds(2), util::seconds(3));
  sim.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], std::make_pair(true, util::seconds(1)));
  EXPECT_EQ(events[1], std::make_pair(false, util::seconds(5)));
  EXPECT_EQ(injector.failures_injected(), 1);
  EXPECT_EQ(injector.recoveries(), 1);
  EXPECT_NEAR(injector.downtime_node_seconds(), 4.0, 1e-9);
}

TEST(FaultInjector, NestedOutageDoesNotRestoreEarly) {
  sim::Simulation sim;
  FaultInjector injector(sim);
  // [1s, 6s) fully contains [2s, 3s): the inner recovery must not bring
  // the node back at 3s.
  injector.schedule_outage(0, util::seconds(1), util::seconds(5));
  injector.schedule_outage(0, util::seconds(2), util::seconds(1));
  sim.run_until(util::seconds(4));
  EXPECT_TRUE(injector.is_down(0));
  sim.run();
  EXPECT_FALSE(injector.is_down(0));
  EXPECT_EQ(injector.failures_injected(), 1);
  EXPECT_EQ(injector.recoveries(), 1);
  EXPECT_NEAR(injector.downtime_node_seconds(), 5.0, 1e-9);
}

TEST(FaultInjector, RandomProcessIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulation sim;
    FaultInjector injector(sim, FaultInjectorConfig{seed});
    injector.random_process({0, 1, 2, 3}, /*mtbf_s=*/3.0, /*mttr_s=*/1.0,
                            util::seconds(60));
    sim.run();
    return std::make_pair(injector.failures_injected(),
                          injector.downtime_node_seconds());
  };
  const auto a = run_once(7);
  const auto b = run_once(7);
  const auto c = run_once(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_GT(a.first, 0);
}

TEST(FaultInjector, RackOutageDownsEveryHostInTheRackTogether) {
  sim::Simulation sim;
  FaultInjector injector(sim);
  // 2 compute + 4 storage across 2 racks: rack = node index % 2.
  const auto cluster = cluster::make_testbed(2, 4, 0, /*racks=*/2);
  injector.schedule_rack_outage(cluster, /*rack=*/1, util::seconds(1),
                                util::seconds(2));
  sim.run_until(util::seconds(2));
  for (cluster::NodeId node = 0; node < cluster.size(); ++node) {
    EXPECT_EQ(injector.is_down(node), cluster.node(node).rack == 1)
        << "node " << node;
  }
  sim.run();
  EXPECT_EQ(injector.down_count(), 0);
  EXPECT_EQ(injector.rack_outages_scheduled(), 1);
  EXPECT_EQ(injector.failures_injected(), 3);  // 1 compute + 2 storage
  EXPECT_EQ(injector.recoveries(), 3);
}

TEST(FaultInjector, RackOutageCoalescesWithNodeOutages) {
  sim::Simulation sim;
  FaultInjector injector(sim);
  const auto cluster = cluster::make_testbed(0, 4, 0, /*racks=*/2);
  // Node 0 (rack 0) is already down when its rack dies; it stays down
  // until the later of the two recoveries.
  injector.schedule_outage(0, util::seconds(1), util::seconds(4));
  injector.schedule_rack_outage(cluster, /*rack=*/0, util::seconds(2),
                                util::seconds(1));
  sim.run_until(util::seconds(4));
  EXPECT_TRUE(injector.is_down(0));   // node outage still holds it
  EXPECT_FALSE(injector.is_down(2));  // rack recovery at 3s released it
  sim.run();
  EXPECT_EQ(injector.down_count(), 0);
  EXPECT_EQ(injector.failures_injected(), 2);  // node 0 once, node 2 once
}

TEST(FaultInjector, RackOutageRejectsBadRack) {
  sim::Simulation sim;
  FaultInjector injector(sim);
  const auto cluster = cluster::make_testbed(2, 2, 0, /*racks=*/2);
  EXPECT_THROW(injector.schedule_rack_outage(cluster, 2, util::seconds(1),
                                             util::seconds(1)),
               std::invalid_argument);
  EXPECT_THROW(injector.schedule_rack_outage(cluster, -1, util::seconds(1),
                                             util::seconds(1)),
               std::invalid_argument);
}

TEST(FaultInjector, RandomProcessDrainsAfterHorizon) {
  sim::Simulation sim;
  FaultInjector injector(sim, FaultInjectorConfig{42});
  injector.random_process({0, 1, 2}, /*mtbf_s=*/2.0, /*mttr_s=*/0.5,
                          util::seconds(30));
  sim.run();  // no failures initiated past the horizon => queue drains
  EXPECT_EQ(injector.down_count(), 0);
  EXPECT_EQ(injector.failures_injected(), injector.recoveries());
}

}  // namespace
}  // namespace evolve::fault
