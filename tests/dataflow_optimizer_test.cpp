#include "dataflow/optimizer.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "dataflow/engine.hpp"
#include "dataflow/stage.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"

namespace evolve::dataflow {
namespace {

LogicalPlan map_then_filter() {
  LogicalPlan plan;
  const int src = plan.add_source("in");
  const int mapped = plan.add_map(src, "expensive", 1.0, 10.0);
  const int filtered = plan.add_filter(mapped, "keep-few", 0.1, 0.2);
  plan.add_sink(filtered, "out");
  return plan;
}

TEST(Optimizer, PushesFilterBelowMap) {
  OptimizerStats stats;
  const auto optimized = optimize(map_then_filter(), &stats);
  EXPECT_EQ(stats.filters_pushed, 1);
  optimized.validate();
  // Execution order: source -> filter -> map -> sink.
  const auto physical = PhysicalPlan::compile(optimized);
  ASSERT_EQ(physical.size(), 1);
  const auto& ops = physical.stage(0).operators;
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_EQ(optimized.op(ops[1]).kind, OpKind::kFilter);
  EXPECT_EQ(optimized.op(ops[2]).kind, OpKind::kMap);
}

TEST(Optimizer, OutputRatioUnchangedCostReduced) {
  const auto original = PhysicalPlan::compile(map_then_filter());
  const auto optimized =
      PhysicalPlan::compile(optimize(map_then_filter()));
  EXPECT_NEAR(original.stage(0).output_ratio,
              optimized.stage(0).output_ratio, 1e-12);
  // Map (10 ns/B) now sees 10% of the bytes: big compute saving.
  EXPECT_LT(optimized.stage(0).cpu_ns_per_byte,
            original.stage(0).cpu_ns_per_byte / 2);
}

TEST(Optimizer, PushesThroughChainsToFixpoint) {
  LogicalPlan plan;
  const int src = plan.add_source("in");
  const int m1 = plan.add_map(src, "m1", 1.0, 5.0);
  const int m2 = plan.add_flat_map(m1, "m2", 1.2, 5.0);
  const int f = plan.add_filter(m2, "f", 0.2, 0.1);
  plan.add_sink(f, "out");
  OptimizerStats stats;
  const auto optimized = optimize(plan, &stats);
  EXPECT_EQ(stats.filters_pushed, 2);  // past m2, then past m1
  const auto physical = PhysicalPlan::compile(optimized);
  const auto& ops = physical.stage(0).operators;
  EXPECT_EQ(optimized.op(ops[1]).kind, OpKind::kFilter);
}

TEST(Optimizer, DoesNotCrossWideOperators) {
  LogicalPlan plan;
  const int src = plan.add_source("in");
  const int grouped = plan.add_group_by(src, "g", 4);
  const int f = plan.add_filter(grouped, "f", 0.5);
  plan.add_sink(f, "out");
  OptimizerStats stats;
  const auto optimized = optimize(plan, &stats);
  EXPECT_EQ(stats.filters_pushed, 0);
  EXPECT_EQ(PhysicalPlan::compile(optimized).size(), 2);
}

TEST(Optimizer, NoopPlanUnchanged) {
  LogicalPlan plan;
  plan.add_sink(plan.add_source("in"), "out");
  OptimizerStats stats;
  const auto optimized = optimize(plan, &stats);
  EXPECT_EQ(stats.filters_pushed, 0);
  EXPECT_EQ(optimized.size(), plan.size());
}

TEST(FromOperators, RenumbersTopologically) {
  // Hand-build an edge-rewired operator set in non-topological id order.
  auto ops = map_then_filter().ops();
  // Swap filter (id 2) below map (id 1): sink(3) -> map(1) -> filter(2)
  // -> source(0).
  ops[2].inputs = {0};
  ops[1].inputs = {2};
  ops[3].inputs = {1};
  const auto rebuilt = LogicalPlan::from_operators(ops);
  rebuilt.validate();
  for (const Operator& op : rebuilt.ops()) {
    for (int input : op.inputs) EXPECT_LT(input, op.id);
  }
}

TEST(FromOperators, RejectsCycles) {
  auto ops = map_then_filter().ops();
  ops[1].inputs = {2};
  ops[2].inputs = {1};  // map <-> filter cycle
  EXPECT_THROW(LogicalPlan::from_operators(ops), std::invalid_argument);
}

TEST(Optimizer, OptimizedJobRunsFasterEndToEnd) {
  auto run = [](const LogicalPlan& plan) {
    sim::Simulation sim;
    auto cluster = cluster::make_testbed(4, 4, 0);
    net::Topology topology(cluster);
    net::Fabric fabric(sim, topology);
    storage::IoSubsystem io(sim, cluster);
    storage::ObjectStore store(sim, cluster, fabric, io,
                               cluster.nodes_with_label("role=storage"));
    storage::DatasetCatalog catalog(store);
    catalog.define(storage::DatasetSpec{"in", 16, 256 * util::kMiB});
    catalog.preload("in", /*warm_cache=*/true);
    DataflowConfig config;
    config.locality_wait = 0;
    DataflowEngine engine(sim, cluster, fabric, io, catalog, config);
    std::vector<ExecutorSpec> execs;
    for (auto node : cluster.nodes_with_label("role=compute")) {
      execs.push_back(ExecutorSpec{node, 4});
    }
    util::TimeNs duration = 0;
    engine.run(plan, execs,
               [&](const JobStats& s) { duration = s.duration; });
    sim.run();
    return duration;
  };
  const auto baseline = run(map_then_filter());
  const auto optimized = run(optimize(map_then_filter()));
  // The 10 ns/B map now sees 10% of the bytes; dataset I/O puts a floor
  // under the end-to-end gain.
  EXPECT_LT(static_cast<double>(optimized),
            0.75 * static_cast<double>(baseline));
}

}  // namespace
}  // namespace evolve::dataflow
