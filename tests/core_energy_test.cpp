#include "core/energy.hpp"

#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "core/session.hpp"
#include "workloads/tabular.hpp"

namespace evolve::core {
namespace {

TEST(Energy, IdleOnlyCluster) {
  PowerModel model;
  const auto report =
      estimate_energy(model, 10, util::seconds(100), 0.0);
  EXPECT_DOUBLE_EQ(report.idle_joules, 120.0 * 10 * 100);
  EXPECT_DOUBLE_EQ(report.cpu_joules, 0.0);
  EXPECT_DOUBLE_EQ(report.accel_joules, 0.0);
  EXPECT_DOUBLE_EQ(report.total_joules(), report.idle_joules);
}

TEST(Energy, ActiveCoresAddMarginalPower) {
  PowerModel model;
  // 8000 millicores active for 100 s at 5.5 W/core = 4400 J.
  const auto report =
      estimate_energy(model, 1, util::seconds(100), 8000.0);
  EXPECT_DOUBLE_EQ(report.cpu_joules, 5.5 * 8.0 * 100);
}

TEST(Energy, AccelBlendsIdleAndActive) {
  PowerModel model;
  const auto idle = estimate_energy(model, 0, util::seconds(10), 0, 2, 0.0);
  const auto busy = estimate_energy(model, 0, util::seconds(10), 0, 2, 1.0);
  EXPECT_DOUBLE_EQ(idle.accel_joules, 8.0 * 2 * 10);
  EXPECT_DOUBLE_EQ(busy.accel_joules, 28.0 * 2 * 10);
  const auto half = estimate_energy(model, 0, util::seconds(10), 0, 2, 0.5);
  EXPECT_DOUBLE_EQ(half.accel_joules, 18.0 * 2 * 10);
}

TEST(Energy, Validation) {
  PowerModel model;
  EXPECT_THROW(estimate_energy(model, -1, 1, 0), std::invalid_argument);
  EXPECT_THROW(estimate_energy(model, 1, -1, 0), std::invalid_argument);
  EXPECT_THROW(estimate_energy(model, 1, 1, -1), std::invalid_argument);
  EXPECT_THROW(estimate_energy(model, 1, 1, 0, 1, 1.5),
               std::invalid_argument);
  EXPECT_THROW(offload_energy_ratio(model, 0, 2.0), std::invalid_argument);
  EXPECT_THROW(offload_energy_ratio(model, 1, 0.0), std::invalid_argument);
}

TEST(Energy, OffloadRatioGrowsWithSpeedup) {
  PowerModel model;
  const double r4 = offload_energy_ratio(model, util::seconds(1), 4.0);
  const double r12 = offload_energy_ratio(model, util::seconds(1), 12.0);
  EXPECT_GT(r12, r4);
  // 12x speedup: cpu 5.5 J vs fpga 28/12 J -> ~2.36x efficiency.
  EXPECT_NEAR(r12, 5.5 / (28.0 / 12.0), 1e-9);
  // Multi-core CPU work makes offload look even better.
  EXPECT_GT(offload_energy_ratio(model, util::seconds(1), 12.0, 8), r12);
}

TEST(Energy, SummaryMentionsComponents) {
  PowerModel model;
  const auto report = estimate_energy(model, 2, util::seconds(10), 1000.0);
  EXPECT_NE(report.summary().find("kJ"), std::string::npos);
  EXPECT_NE(report.summary().find("idle"), std::string::npos);
}

TEST(Energy, PlatformRunYieldsPlausibleEnergy) {
  sim::Simulation sim;
  Platform platform(sim);
  Session session(platform);
  session.create_dataset("d", 16, 256 * util::kMiB);
  session.run_dataflow(workloads::scan_filter_aggregate("d", "o", 8), 4, 4);
  const auto report = estimate_energy(
      PowerModel{}, platform.cluster().size(), sim.now(),
      platform.orchestrator().mean_cpu_millicores(),
      platform.accel().device_count(), platform.accel().mean_utilization());
  EXPECT_GT(report.total_joules(), 0.0);
  EXPECT_GT(report.cpu_joules, 0.0);  // executors were billed
  EXPECT_GT(report.idle_joules, report.cpu_joules);  // short run: idle-bound
}

}  // namespace
}  // namespace evolve::core
