#include "util/small_fn.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>

namespace evolve::util {
namespace {

TEST(SmallFn, DefaultAndNullAreEmptyAndThrowOnCall) {
  SmallFn empty;
  EXPECT_FALSE(empty);
  EXPECT_THROW(empty(), std::bad_function_call);
  SmallFn null = nullptr;
  EXPECT_FALSE(null);
}

TEST(SmallFn, InvokesInlineCapture) {
  int hits = 0;
  SmallFn fn = [&hits] { ++hits; };
  ASSERT_TRUE(fn);
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, MoveTransfersOwnership) {
  int hits = 0;
  SmallFn a = [&hits] { ++hits; };
  SmallFn b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): testing moved state
  ASSERT_TRUE(b);
  b();
  EXPECT_EQ(hits, 1);

  SmallFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, HoldsMoveOnlyCaptures) {
  // The reason std::function could not be the event callback type: a
  // capture owning another callable (the tracer-wrap pattern in fabric).
  auto owned = std::make_unique<int>(41);
  int seen = 0;
  SmallFn inner = [&seen] { ++seen; };
  SmallFn fn = [p = std::move(owned), inner = std::move(inner), &seen]() mutable {
    seen += *p;
    inner();
  };
  fn();
  EXPECT_EQ(seen, 42);
}

TEST(SmallFn, LargeCapturesFallBackToHeapAndStillWork) {
  struct Big {
    std::int64_t data[16];  // 128 bytes, well past the inline budget
  };
  Big big{};
  big.data[0] = 7;
  big.data[15] = 9;
  std::int64_t sum = 0;
  SmallFn fn = [big, &sum] { sum = big.data[0] + big.data[15]; };
  SmallFn moved = std::move(fn);
  moved();
  EXPECT_EQ(sum, 16);
}

TEST(SmallFn, NonTrivialCaptureDestructorRunsExactlyOnce) {
  struct Probe {
    int* count;
    explicit Probe(int* c) : count(c) {}
    Probe(const Probe& o) : count(o.count) { ++*count; }
    Probe(Probe&& o) noexcept : count(o.count) { o.count = nullptr; }
    ~Probe() {
      if (count) --*count;
    }
    void operator()() const {}
  };
  int live = 1;
  {
    SmallFn fn{Probe(&live)};
    SmallFn other = std::move(fn);  // in-place move relocation
    other();
  }
  EXPECT_EQ(live, 0);  // destroyed exactly once, no double-destroy
}

TEST(SmallFn, AssignReplacesPreviousCallable) {
  int a = 0, b = 0;
  SmallFn fn = [&a] { ++a; };
  fn();
  fn = [&b] { ++b; };
  fn();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  fn = nullptr;
  EXPECT_FALSE(fn);
}

}  // namespace
}  // namespace evolve::util
