#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace evolve::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  q.push(1, [&] { ++fired; });
  const EventId id = q.push(2, [&] { ++fired; });
  q.push(3, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(1, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue q;
  const EventId id = q.push(1, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  const EventId a = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventId a = q.push(1, [] {});
  q.push(9, [] {});
  q.cancel(a);
  EXPECT_EQ(q.next_time(), 9);
}

TEST(EventQueue, EmptyThrowsOnAccess) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueue, CancelAllLeavesEmpty) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(q.push(i, [] {}));
  for (EventId id : ids) EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace evolve::sim
