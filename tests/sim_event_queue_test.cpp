#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace evolve::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  q.push(1, [&] { ++fired; });
  const EventId id = q.push(2, [&] { ++fired; });
  q.push(3, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(1, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue q;
  const EventId id = q.push(1, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  const EventId a = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventId a = q.push(1, [] {});
  q.push(9, [] {});
  q.cancel(a);
  EXPECT_EQ(q.next_time(), 9);
}

TEST(EventQueue, EmptyThrowsOnAccess) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueue, CancelAllLeavesEmpty) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(q.push(i, [] {}));
  for (EventId id : ids) EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StaleHandleAfterSlotReuseFails) {
  EventQueue q;
  // Run an event to recycle its slot, then push a new event that reuses it.
  const EventId old_id = q.push(1, [] {});
  q.pop();
  const EventId fresh = q.push(2, [] {});
  // The stale handle must not cancel the new occupant of the slot.
  EXPECT_FALSE(q.cancel(old_id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(fresh));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, HeavyChurnKeepsFifoOrder) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 4; ++i) {
      ids.push_back(q.push(100, [&order, round, i] {
        order.push_back(round * 4 + i);
      }));
    }
    // Cancel one of this round's events; its slot gets recycled next round.
    EXPECT_TRUE(q.cancel(ids[ids.size() - 2]));
  }
  while (!q.empty()) q.pop().fn();
  // Same-time events run in schedule order even across slot reuse.
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1], order[i]);
  }
  EXPECT_EQ(order.size(), 150u);
}

TEST(EventQueue, InterleavedPushPopCancelStaysConsistent) {
  EventQueue q;
  int fired = 0;
  std::vector<EventId> live;
  for (int t = 0; t < 200; ++t) {
    live.push_back(q.push(t, [&] { ++fired; }));
    if (t % 3 == 0 && !live.empty()) {
      q.cancel(live.front());
      live.erase(live.begin());
    }
    if (t % 5 == 0 && !q.empty()) q.pop().fn();
  }
  std::size_t remaining = q.size();
  while (!q.empty()) {
    q.pop().fn();
    --remaining;
  }
  EXPECT_EQ(remaining, 0u);
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace evolve::sim
