#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace evolve::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  q.push(1, [&] { ++fired; });
  const EventId id = q.push(2, [&] { ++fired; });
  q.push(3, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(1, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue q;
  const EventId id = q.push(1, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  const EventId a = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventId a = q.push(1, [] {});
  q.push(9, [] {});
  q.cancel(a);
  EXPECT_EQ(q.next_time(), 9);
}

TEST(EventQueue, EmptyThrowsOnAccess) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueue, CancelAllLeavesEmpty) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(q.push(i, [] {}));
  for (EventId id : ids) EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StaleHandleAfterSlotReuseFails) {
  EventQueue q;
  // Run an event to recycle its slot, then push a new event that reuses it.
  const EventId old_id = q.push(1, [] {});
  q.pop();
  const EventId fresh = q.push(2, [] {});
  // The stale handle must not cancel the new occupant of the slot.
  EXPECT_FALSE(q.cancel(old_id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(fresh));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, HeavyChurnKeepsFifoOrder) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 4; ++i) {
      ids.push_back(q.push(100, [&order, round, i] {
        order.push_back(round * 4 + i);
      }));
    }
    // Cancel one of this round's events; its slot gets recycled next round.
    EXPECT_TRUE(q.cancel(ids[ids.size() - 2]));
  }
  while (!q.empty()) q.pop().fn();
  // Same-time events run in schedule order even across slot reuse.
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1], order[i]);
  }
  EXPECT_EQ(order.size(), 150u);
}

TEST(EventQueue, InterleavedPushPopCancelStaysConsistent) {
  EventQueue q;
  int fired = 0;
  std::vector<EventId> live;
  for (int t = 0; t < 200; ++t) {
    live.push_back(q.push(t, [&] { ++fired; }));
    if (t % 3 == 0 && !live.empty()) {
      q.cancel(live.front());
      live.erase(live.begin());
    }
    if (t % 5 == 0 && !q.empty()) q.pop().fn();
  }
  std::size_t remaining = q.size();
  while (!q.empty()) {
    q.pop().fn();
    --remaining;
  }
  EXPECT_EQ(remaining, 0u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, OrdersAcrossWheelBandsAndFarHorizon) {
  // Times spanning every band: sub-microsecond (current heap), the four
  // wheel levels, and far beyond the ~17s wheel horizon. Negative times
  // are legal at queue level and sort first.
  EventQueue q;
  const std::vector<util::TimeNs> times = {
      60'000'000'000, 500, -3, 25'000, 3'000'000, 90'000'000,
      17'500'000'000, 0,   7,  1'000'000'000};
  std::vector<util::TimeNs> expected = times;
  std::sort(expected.begin(), expected.end());
  for (const util::TimeNs t : times) q.push(t, [] {});
  std::vector<util::TimeNs> popped;
  while (!q.empty()) popped.push_back(q.pop().time);
  EXPECT_EQ(popped, expected);
}

TEST(EventQueue, CancelHeavyStressStaysConsistent) {
  // Cancel-heavy churn across all wheel bands: every observer
  // (empty/next_time/pop) must agree while cancelled entries are being
  // lazily reclaimed, and survivors must pop in exact (time, seq) order.
  EventQueue q;
  std::vector<std::pair<util::TimeNs, EventId>> live;
  std::uint64_t mix = 0x9e3779b97f4a7c15ULL;
  auto next = [&mix] {
    mix ^= mix << 13;
    mix ^= mix >> 7;
    mix ^= mix << 17;
    return mix;
  };
  util::TimeNs now = 0;
  std::vector<util::TimeNs> popped;
  for (int round = 0; round < 3000; ++round) {
    // Pushes spread from "immediately" to far past the wheel horizon.
    const util::TimeNs t =
        now + static_cast<util::TimeNs>(next() % 30'000'000'000ULL);
    live.emplace_back(t, q.push(t, [] {}));
    // Cancel ~2 of every 3 scheduled events, oldest first.
    while (live.size() > 1 && next() % 3 != 0) {
      EXPECT_TRUE(q.cancel(live.front().second));
      live.erase(live.begin());
    }
    if (next() % 4 == 0 && !q.empty()) {
      const util::TimeNs head = q.next_time();
      const Event ev = q.pop();
      EXPECT_EQ(ev.time, head);  // observers agree on the live head
      EXPECT_GE(ev.time, now);
      now = ev.time;
      popped.push_back(ev.time);
      std::erase_if(live, [&](const auto& p) { return p.second == ev.id; });
    }
    EXPECT_EQ(q.size(), live.size());
    EXPECT_EQ(q.empty(), live.empty());
  }
  std::sort(live.begin(), live.end());
  for (const auto& [t, id] : live) {
    EXPECT_EQ(q.pop().time, t);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
}

TEST(EventQueue, CancelAllRecyclesSlotsPromptly) {
  // Once every event is cancelled, the queue reclaims in bulk: new pushes
  // reuse the old cancellation slots instead of growing the slot table,
  // even for events that were banked deep in the wheel / far heap.
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(q.push(static_cast<util::TimeNs>(i) * 1'000'000'000, [] {}));
  }
  for (EventId id : ids) EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  const std::size_t slots = q.slot_count();
  for (int i = 0; i < 64; ++i) q.push(i, [] {});
  EXPECT_EQ(q.slot_count(), slots);  // all recycled, none added
  while (!q.empty()) q.pop().fn();
}

TEST(EventQueue, MoveOnlyCallbacksWork) {
  // EventFn is move-only (util::SmallFn): it must accept captures that
  // std::function cannot hold, e.g. a lambda owning another EventFn.
  EventQueue q;
  int fired = 0;
  EventFn inner = [&fired] { fired += 10; };
  q.push(5, [inner = std::move(inner)]() mutable { inner(); });
  q.push(1, [&fired] { ++fired; });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 11);
}

}  // namespace
}  // namespace evolve::sim
