#include "util/strings.hpp"

#include <gtest/gtest.h>

#include "util/types.hpp"

namespace evolve::util {
namespace {

TEST(HumanBytes, Units) {
  EXPECT_EQ(human_bytes(0), "0 B");
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1024), "1.00 KiB");
  EXPECT_EQ(human_bytes(1536), "1.50 KiB");
  EXPECT_EQ(human_bytes(kMiB), "1.00 MiB");
  EXPECT_EQ(human_bytes(3 * kGiB), "3.00 GiB");
}

TEST(HumanBytes, Negative) { EXPECT_EQ(human_bytes(-1024), "-1.00 KiB"); }

TEST(HumanTime, Units) {
  EXPECT_EQ(human_time(500), "500 ns");
  EXPECT_EQ(human_time(1500), "1.50 us");
  EXPECT_EQ(human_time(millis(2.5)), "2.50 ms");
  EXPECT_EQ(human_time(seconds(3)), "3.00 s");
  EXPECT_EQ(human_time(seconds(90)), "1.50 min");
}

TEST(Fixed, Digits) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(3.0, 0), "3");
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("evolve/core", "evolve"));
  EXPECT_FALSE(starts_with("evo", "evolve"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Split, Basic) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Split, NoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(TimeConversions, RoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_millis(millis(7)), 7.0);
  EXPECT_EQ(micros(1), 1000);
}

}  // namespace
}  // namespace evolve::util
