#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace evolve::net {
namespace {

cluster::Cluster two_rack_cluster() {
  // 4 compute nodes spread over 2 racks: node 0,2 in rack 0; 1,3 in rack 1.
  return cluster::make_testbed(4, 0, 0, 2);
}

TEST(Topology, LoopbackPathIsEmpty) {
  const auto c = two_rack_cluster();
  Topology topo(c);
  EXPECT_TRUE(topo.path(0, 0).empty());
  EXPECT_EQ(topo.hops(0, 0), 0);
}

TEST(Topology, SameRackPathHasTwoLinks) {
  const auto c = two_rack_cluster();
  Topology topo(c);
  ASSERT_TRUE(topo.same_rack(0, 2));
  const auto path = topo.path(0, 2);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(topo.link(path[0]).name, "compute-0:up");
  EXPECT_EQ(topo.link(path[1]).name, "compute-2:down");
  EXPECT_EQ(topo.hops(0, 2), 1);
}

TEST(Topology, CrossRackPathHasFourLinks) {
  const auto c = two_rack_cluster();
  Topology topo(c);
  ASSERT_FALSE(topo.same_rack(0, 1));
  const auto path = topo.path(0, 1);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(topo.link(path[1]).name, "tor-0:up");
  EXPECT_EQ(topo.link(path[2]).name, "tor-1:down");
  EXPECT_EQ(topo.hops(0, 1), 2);
}

TEST(Topology, LatencyOrdering) {
  const auto c = two_rack_cluster();
  Topology topo(c);
  EXPECT_LT(topo.latency(0, 0), topo.latency(0, 2));
  EXPECT_LT(topo.latency(0, 2), topo.latency(0, 1));
}

TEST(Topology, LinkCountMatchesLayout) {
  const auto c = two_rack_cluster();
  Topology topo(c);
  // 2 links per host + 2 per rack.
  EXPECT_EQ(topo.link_count(), 2 * 4 + 2 * 2);
  EXPECT_EQ(topo.host_count(), 4);
  EXPECT_EQ(topo.rack_count(), 2);
}

TEST(Topology, CustomConfigPropagates) {
  const auto c = two_rack_cluster();
  TopologyConfig config;
  config.host_link_bytes_per_s = 999.0;
  config.tor_uplink_bytes_per_s = 777.0;
  Topology topo(c, config);
  EXPECT_DOUBLE_EQ(topo.link(topo.path(0, 2)[0]).capacity_bytes_per_s, 999.0);
  EXPECT_DOUBLE_EQ(topo.link(topo.path(0, 1)[1]).capacity_bytes_per_s, 777.0);
}

TEST(Topology, RejectsBadHostIds) {
  const auto c = two_rack_cluster();
  Topology topo(c);
  EXPECT_THROW(topo.path(-1, 0), std::out_of_range);
  EXPECT_THROW(topo.path(0, 99), std::out_of_range);
}

TEST(Topology, RejectsEmptyCluster) {
  cluster::Cluster empty;
  EXPECT_THROW(Topology topo(empty), std::invalid_argument);
}

}  // namespace
}  // namespace evolve::net
