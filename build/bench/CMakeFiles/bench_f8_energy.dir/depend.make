# Empty dependencies file for bench_f8_energy.
# This may be replaced when dependencies are built.
