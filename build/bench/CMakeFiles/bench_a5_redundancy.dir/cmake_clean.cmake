file(REMOVE_RECURSE
  "CMakeFiles/bench_a5_redundancy.dir/bench_a5_redundancy.cpp.o"
  "CMakeFiles/bench_a5_redundancy.dir/bench_a5_redundancy.cpp.o.d"
  "bench_a5_redundancy"
  "bench_a5_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
