# Empty dependencies file for bench_a5_redundancy.
# This may be replaced when dependencies are built.
