file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_tiers.dir/bench_a3_tiers.cpp.o"
  "CMakeFiles/bench_a3_tiers.dir/bench_a3_tiers.cpp.o.d"
  "bench_a3_tiers"
  "bench_a3_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
