# Empty dependencies file for bench_a3_tiers.
# This may be replaced when dependencies are built.
