file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_scaling.dir/bench_f1_scaling.cpp.o"
  "CMakeFiles/bench_f1_scaling.dir/bench_f1_scaling.cpp.o.d"
  "bench_f1_scaling"
  "bench_f1_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
