# Empty dependencies file for bench_f6_ml.
# This may be replaced when dependencies are built.
