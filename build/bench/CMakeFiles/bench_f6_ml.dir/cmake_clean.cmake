file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_ml.dir/bench_f6_ml.cpp.o"
  "CMakeFiles/bench_f6_ml.dir/bench_f6_ml.cpp.o.d"
  "bench_f6_ml"
  "bench_f6_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
