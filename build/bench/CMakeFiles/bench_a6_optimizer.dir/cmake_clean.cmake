file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_optimizer.dir/bench_a6_optimizer.cpp.o"
  "CMakeFiles/bench_a6_optimizer.dir/bench_a6_optimizer.cpp.o.d"
  "bench_a6_optimizer"
  "bench_a6_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
