# Empty dependencies file for bench_a6_optimizer.
# This may be replaced when dependencies are built.
