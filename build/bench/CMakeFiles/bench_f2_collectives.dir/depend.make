# Empty dependencies file for bench_f2_collectives.
# This may be replaced when dependencies are built.
