file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_collectives.dir/bench_f2_collectives.cpp.o"
  "CMakeFiles/bench_f2_collectives.dir/bench_f2_collectives.cpp.o.d"
  "bench_f2_collectives"
  "bench_f2_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
