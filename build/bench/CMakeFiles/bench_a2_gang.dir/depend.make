# Empty dependencies file for bench_a2_gang.
# This may be replaced when dependencies are built.
