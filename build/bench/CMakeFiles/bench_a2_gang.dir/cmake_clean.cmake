file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_gang.dir/bench_a2_gang.cpp.o"
  "CMakeFiles/bench_a2_gang.dir/bench_a2_gang.cpp.o.d"
  "bench_a2_gang"
  "bench_a2_gang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_gang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
