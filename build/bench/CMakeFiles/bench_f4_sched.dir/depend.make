# Empty dependencies file for bench_f4_sched.
# This may be replaced when dependencies are built.
