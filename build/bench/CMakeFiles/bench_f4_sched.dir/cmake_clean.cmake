file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_sched.dir/bench_f4_sched.cpp.o"
  "CMakeFiles/bench_f4_sched.dir/bench_f4_sched.cpp.o.d"
  "bench_f4_sched"
  "bench_f4_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
