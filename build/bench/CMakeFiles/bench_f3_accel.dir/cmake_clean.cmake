file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_accel.dir/bench_f3_accel.cpp.o"
  "CMakeFiles/bench_f3_accel.dir/bench_f3_accel.cpp.o.d"
  "bench_f3_accel"
  "bench_f3_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
