# Empty compiler generated dependencies file for bench_f3_accel.
# This may be replaced when dependencies are built.
