# Empty dependencies file for bench_t1_endtoend.
# This may be replaced when dependencies are built.
