# Empty dependencies file for bench_a1_delay.
# This may be replaced when dependencies are built.
