# Empty dependencies file for bench_a4_speculation.
# This may be replaced when dependencies are built.
