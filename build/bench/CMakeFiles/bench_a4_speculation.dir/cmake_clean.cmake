file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_speculation.dir/bench_a4_speculation.cpp.o"
  "CMakeFiles/bench_a4_speculation.dir/bench_a4_speculation.cpp.o.d"
  "bench_a4_speculation"
  "bench_a4_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
