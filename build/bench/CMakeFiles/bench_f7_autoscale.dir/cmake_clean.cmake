file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_autoscale.dir/bench_f7_autoscale.cpp.o"
  "CMakeFiles/bench_f7_autoscale.dir/bench_f7_autoscale.cpp.o.d"
  "bench_f7_autoscale"
  "bench_f7_autoscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_autoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
