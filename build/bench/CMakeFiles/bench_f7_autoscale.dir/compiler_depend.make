# Empty compiler generated dependencies file for bench_f7_autoscale.
# This may be replaced when dependencies are built.
