file(REMOVE_RECURSE
  "CMakeFiles/urban_mobility.dir/urban_mobility.cpp.o"
  "CMakeFiles/urban_mobility.dir/urban_mobility.cpp.o.d"
  "urban_mobility"
  "urban_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urban_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
