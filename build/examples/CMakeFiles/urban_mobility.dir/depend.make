# Empty dependencies file for urban_mobility.
# This may be replaced when dependencies are built.
