# Empty dependencies file for hpc_batch.
# This may be replaced when dependencies are built.
