file(REMOVE_RECURSE
  "CMakeFiles/hpc_batch.dir/hpc_batch.cpp.o"
  "CMakeFiles/hpc_batch.dir/hpc_batch.cpp.o.d"
  "hpc_batch"
  "hpc_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
