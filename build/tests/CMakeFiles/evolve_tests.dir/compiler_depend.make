# Empty compiler generated dependencies file for evolve_tests.
# This may be replaced when dependencies are built.
