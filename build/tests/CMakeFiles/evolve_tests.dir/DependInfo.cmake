
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/accel_test.cpp" "tests/CMakeFiles/evolve_tests.dir/accel_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/accel_test.cpp.o.d"
  "/root/repo/tests/cluster_cluster_test.cpp" "tests/CMakeFiles/evolve_tests.dir/cluster_cluster_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/cluster_cluster_test.cpp.o.d"
  "/root/repo/tests/cluster_resources_test.cpp" "tests/CMakeFiles/evolve_tests.dir/cluster_resources_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/cluster_resources_test.cpp.o.d"
  "/root/repo/tests/core_energy_test.cpp" "tests/CMakeFiles/evolve_tests.dir/core_energy_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/core_energy_test.cpp.o.d"
  "/root/repo/tests/core_monitor_test.cpp" "tests/CMakeFiles/evolve_tests.dir/core_monitor_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/core_monitor_test.cpp.o.d"
  "/root/repo/tests/core_platform_test.cpp" "tests/CMakeFiles/evolve_tests.dir/core_platform_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/core_platform_test.cpp.o.d"
  "/root/repo/tests/core_siloed_test.cpp" "tests/CMakeFiles/evolve_tests.dir/core_siloed_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/core_siloed_test.cpp.o.d"
  "/root/repo/tests/core_unified_sched_test.cpp" "tests/CMakeFiles/evolve_tests.dir/core_unified_sched_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/core_unified_sched_test.cpp.o.d"
  "/root/repo/tests/dataflow_engine_test.cpp" "tests/CMakeFiles/evolve_tests.dir/dataflow_engine_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/dataflow_engine_test.cpp.o.d"
  "/root/repo/tests/dataflow_optimizer_test.cpp" "tests/CMakeFiles/evolve_tests.dir/dataflow_optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/dataflow_optimizer_test.cpp.o.d"
  "/root/repo/tests/dataflow_plan_test.cpp" "tests/CMakeFiles/evolve_tests.dir/dataflow_plan_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/dataflow_plan_test.cpp.o.d"
  "/root/repo/tests/dataflow_shuffle_test.cpp" "tests/CMakeFiles/evolve_tests.dir/dataflow_shuffle_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/dataflow_shuffle_test.cpp.o.d"
  "/root/repo/tests/dataflow_speculation_test.cpp" "tests/CMakeFiles/evolve_tests.dir/dataflow_speculation_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/dataflow_speculation_test.cpp.o.d"
  "/root/repo/tests/dataflow_task_scheduler_test.cpp" "tests/CMakeFiles/evolve_tests.dir/dataflow_task_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/dataflow_task_scheduler_test.cpp.o.d"
  "/root/repo/tests/hpc_batch_queue_test.cpp" "tests/CMakeFiles/evolve_tests.dir/hpc_batch_queue_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/hpc_batch_queue_test.cpp.o.d"
  "/root/repo/tests/hpc_collectives_test.cpp" "tests/CMakeFiles/evolve_tests.dir/hpc_collectives_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/hpc_collectives_test.cpp.o.d"
  "/root/repo/tests/hpc_communicator_test.cpp" "tests/CMakeFiles/evolve_tests.dir/hpc_communicator_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/hpc_communicator_test.cpp.o.d"
  "/root/repo/tests/hpc_extended_test.cpp" "tests/CMakeFiles/evolve_tests.dir/hpc_extended_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/hpc_extended_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/evolve_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/metrics_histogram_test.cpp" "tests/CMakeFiles/evolve_tests.dir/metrics_histogram_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/metrics_histogram_test.cpp.o.d"
  "/root/repo/tests/metrics_registry_test.cpp" "tests/CMakeFiles/evolve_tests.dir/metrics_registry_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/metrics_registry_test.cpp.o.d"
  "/root/repo/tests/metrics_timeseries_test.cpp" "tests/CMakeFiles/evolve_tests.dir/metrics_timeseries_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/metrics_timeseries_test.cpp.o.d"
  "/root/repo/tests/net_fabric_test.cpp" "tests/CMakeFiles/evolve_tests.dir/net_fabric_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/net_fabric_test.cpp.o.d"
  "/root/repo/tests/net_maxmin_property_test.cpp" "tests/CMakeFiles/evolve_tests.dir/net_maxmin_property_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/net_maxmin_property_test.cpp.o.d"
  "/root/repo/tests/net_topology_test.cpp" "tests/CMakeFiles/evolve_tests.dir/net_topology_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/net_topology_test.cpp.o.d"
  "/root/repo/tests/orch_antiaffinity_test.cpp" "tests/CMakeFiles/evolve_tests.dir/orch_antiaffinity_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/orch_antiaffinity_test.cpp.o.d"
  "/root/repo/tests/orch_autoscaler_test.cpp" "tests/CMakeFiles/evolve_tests.dir/orch_autoscaler_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/orch_autoscaler_test.cpp.o.d"
  "/root/repo/tests/orch_controllers_test.cpp" "tests/CMakeFiles/evolve_tests.dir/orch_controllers_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/orch_controllers_test.cpp.o.d"
  "/root/repo/tests/orch_node_status_test.cpp" "tests/CMakeFiles/evolve_tests.dir/orch_node_status_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/orch_node_status_test.cpp.o.d"
  "/root/repo/tests/orch_plugins_test.cpp" "tests/CMakeFiles/evolve_tests.dir/orch_plugins_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/orch_plugins_test.cpp.o.d"
  "/root/repo/tests/orch_quota_test.cpp" "tests/CMakeFiles/evolve_tests.dir/orch_quota_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/orch_quota_test.cpp.o.d"
  "/root/repo/tests/orch_scheduler_test.cpp" "tests/CMakeFiles/evolve_tests.dir/orch_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/orch_scheduler_test.cpp.o.d"
  "/root/repo/tests/sim_event_queue_test.cpp" "tests/CMakeFiles/evolve_tests.dir/sim_event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/sim_event_queue_test.cpp.o.d"
  "/root/repo/tests/sim_simulation_test.cpp" "tests/CMakeFiles/evolve_tests.dir/sim_simulation_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/sim_simulation_test.cpp.o.d"
  "/root/repo/tests/storage_dataset_test.cpp" "tests/CMakeFiles/evolve_tests.dir/storage_dataset_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/storage_dataset_test.cpp.o.d"
  "/root/repo/tests/storage_erasure_test.cpp" "tests/CMakeFiles/evolve_tests.dir/storage_erasure_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/storage_erasure_test.cpp.o.d"
  "/root/repo/tests/storage_filesystem_test.cpp" "tests/CMakeFiles/evolve_tests.dir/storage_filesystem_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/storage_filesystem_test.cpp.o.d"
  "/root/repo/tests/storage_io_model_test.cpp" "tests/CMakeFiles/evolve_tests.dir/storage_io_model_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/storage_io_model_test.cpp.o.d"
  "/root/repo/tests/storage_object_store_test.cpp" "tests/CMakeFiles/evolve_tests.dir/storage_object_store_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/storage_object_store_test.cpp.o.d"
  "/root/repo/tests/storage_tiered_cache_test.cpp" "tests/CMakeFiles/evolve_tests.dir/storage_tiered_cache_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/storage_tiered_cache_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/evolve_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/util_rng_test.cpp.o.d"
  "/root/repo/tests/util_strings_test.cpp" "tests/CMakeFiles/evolve_tests.dir/util_strings_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/util_strings_test.cpp.o.d"
  "/root/repo/tests/workflow_test.cpp" "tests/CMakeFiles/evolve_tests.dir/workflow_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/workflow_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/evolve_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/evolve_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/evolve.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
