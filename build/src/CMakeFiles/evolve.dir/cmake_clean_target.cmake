file(REMOVE_RECURSE
  "libevolve.a"
)
