
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/device.cpp" "src/CMakeFiles/evolve.dir/accel/device.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/accel/device.cpp.o.d"
  "/root/repo/src/accel/kernels.cpp" "src/CMakeFiles/evolve.dir/accel/kernels.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/accel/kernels.cpp.o.d"
  "/root/repo/src/accel/pool.cpp" "src/CMakeFiles/evolve.dir/accel/pool.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/accel/pool.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/evolve.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/CMakeFiles/evolve.dir/cluster/node.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/cluster/node.cpp.o.d"
  "/root/repo/src/cluster/resources.cpp" "src/CMakeFiles/evolve.dir/cluster/resources.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/cluster/resources.cpp.o.d"
  "/root/repo/src/core/energy.cpp" "src/CMakeFiles/evolve.dir/core/energy.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/core/energy.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/CMakeFiles/evolve.dir/core/monitor.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/core/monitor.cpp.o.d"
  "/root/repo/src/core/platform.cpp" "src/CMakeFiles/evolve.dir/core/platform.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/core/platform.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/evolve.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/core/report.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/CMakeFiles/evolve.dir/core/session.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/core/session.cpp.o.d"
  "/root/repo/src/core/siloed.cpp" "src/CMakeFiles/evolve.dir/core/siloed.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/core/siloed.cpp.o.d"
  "/root/repo/src/core/unified_scheduler.cpp" "src/CMakeFiles/evolve.dir/core/unified_scheduler.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/core/unified_scheduler.cpp.o.d"
  "/root/repo/src/dataflow/engine.cpp" "src/CMakeFiles/evolve.dir/dataflow/engine.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/dataflow/engine.cpp.o.d"
  "/root/repo/src/dataflow/optimizer.cpp" "src/CMakeFiles/evolve.dir/dataflow/optimizer.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/dataflow/optimizer.cpp.o.d"
  "/root/repo/src/dataflow/plan.cpp" "src/CMakeFiles/evolve.dir/dataflow/plan.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/dataflow/plan.cpp.o.d"
  "/root/repo/src/dataflow/shuffle.cpp" "src/CMakeFiles/evolve.dir/dataflow/shuffle.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/dataflow/shuffle.cpp.o.d"
  "/root/repo/src/dataflow/stage.cpp" "src/CMakeFiles/evolve.dir/dataflow/stage.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/dataflow/stage.cpp.o.d"
  "/root/repo/src/dataflow/task_scheduler.cpp" "src/CMakeFiles/evolve.dir/dataflow/task_scheduler.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/dataflow/task_scheduler.cpp.o.d"
  "/root/repo/src/hpc/batch_queue.cpp" "src/CMakeFiles/evolve.dir/hpc/batch_queue.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/hpc/batch_queue.cpp.o.d"
  "/root/repo/src/hpc/collectives.cpp" "src/CMakeFiles/evolve.dir/hpc/collectives.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/hpc/collectives.cpp.o.d"
  "/root/repo/src/hpc/communicator.cpp" "src/CMakeFiles/evolve.dir/hpc/communicator.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/hpc/communicator.cpp.o.d"
  "/root/repo/src/hpc/job.cpp" "src/CMakeFiles/evolve.dir/hpc/job.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/hpc/job.cpp.o.d"
  "/root/repo/src/metrics/histogram.cpp" "src/CMakeFiles/evolve.dir/metrics/histogram.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/metrics/histogram.cpp.o.d"
  "/root/repo/src/metrics/registry.cpp" "src/CMakeFiles/evolve.dir/metrics/registry.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/metrics/registry.cpp.o.d"
  "/root/repo/src/metrics/timeseries.cpp" "src/CMakeFiles/evolve.dir/metrics/timeseries.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/metrics/timeseries.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/CMakeFiles/evolve.dir/net/fabric.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/net/fabric.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/evolve.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/net/topology.cpp.o.d"
  "/root/repo/src/orch/autoscaler.cpp" "src/CMakeFiles/evolve.dir/orch/autoscaler.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/orch/autoscaler.cpp.o.d"
  "/root/repo/src/orch/controllers.cpp" "src/CMakeFiles/evolve.dir/orch/controllers.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/orch/controllers.cpp.o.d"
  "/root/repo/src/orch/node_status.cpp" "src/CMakeFiles/evolve.dir/orch/node_status.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/orch/node_status.cpp.o.d"
  "/root/repo/src/orch/plugins.cpp" "src/CMakeFiles/evolve.dir/orch/plugins.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/orch/plugins.cpp.o.d"
  "/root/repo/src/orch/pod.cpp" "src/CMakeFiles/evolve.dir/orch/pod.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/orch/pod.cpp.o.d"
  "/root/repo/src/orch/quota.cpp" "src/CMakeFiles/evolve.dir/orch/quota.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/orch/quota.cpp.o.d"
  "/root/repo/src/orch/scheduler.cpp" "src/CMakeFiles/evolve.dir/orch/scheduler.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/orch/scheduler.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/evolve.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/evolve.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/sim/simulation.cpp.o.d"
  "/root/repo/src/storage/dataset.cpp" "src/CMakeFiles/evolve.dir/storage/dataset.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/storage/dataset.cpp.o.d"
  "/root/repo/src/storage/filesystem.cpp" "src/CMakeFiles/evolve.dir/storage/filesystem.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/storage/filesystem.cpp.o.d"
  "/root/repo/src/storage/io_model.cpp" "src/CMakeFiles/evolve.dir/storage/io_model.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/storage/io_model.cpp.o.d"
  "/root/repo/src/storage/object_store.cpp" "src/CMakeFiles/evolve.dir/storage/object_store.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/storage/object_store.cpp.o.d"
  "/root/repo/src/storage/tiered_cache.cpp" "src/CMakeFiles/evolve.dir/storage/tiered_cache.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/storage/tiered_cache.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/evolve.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/evolve.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/evolve.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/util/strings.cpp.o.d"
  "/root/repo/src/workflow/engine.cpp" "src/CMakeFiles/evolve.dir/workflow/engine.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/workflow/engine.cpp.o.d"
  "/root/repo/src/workflow/workflow.cpp" "src/CMakeFiles/evolve.dir/workflow/workflow.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/workflow/workflow.cpp.o.d"
  "/root/repo/src/workloads/genomics.cpp" "src/CMakeFiles/evolve.dir/workloads/genomics.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/workloads/genomics.cpp.o.d"
  "/root/repo/src/workloads/ml.cpp" "src/CMakeFiles/evolve.dir/workloads/ml.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/workloads/ml.cpp.o.d"
  "/root/repo/src/workloads/mobility.cpp" "src/CMakeFiles/evolve.dir/workloads/mobility.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/workloads/mobility.cpp.o.d"
  "/root/repo/src/workloads/tabular.cpp" "src/CMakeFiles/evolve.dir/workloads/tabular.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/workloads/tabular.cpp.o.d"
  "/root/repo/src/workloads/trace.cpp" "src/CMakeFiles/evolve.dir/workloads/trace.cpp.o" "gcc" "src/CMakeFiles/evolve.dir/workloads/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
