// F14 — Durability under correlated failure: redundancy policies,
// rack-aware placement, degraded reads, and throttled rebuild.
//
// One testbed (4 compute + 12 storage servers over 4 racks) runs a
// foreground GET workload while a storage node dies and then a whole
// rack goes dark. Two sweeps:
//
//   F14a  four redundancy policies (R2, R3, EC(4,2), EC(8,3)), each run
//         with unthrottled and throttled background rebuild: objects
//         lost, degraded reads and their p99, foreground-GET p99 with
//         the rebuild throttle off vs on, and at-risk fragment-seconds.
//   F14b  rack-aware vs rack-oblivious EC(4,2) placement under a
//         schedule that downs every rack in turn: the rack cap keeps
//         every stripe at <= m dead fragments (zero loss) while pure
//         HRW placement overfills some rack and loses objects.
//
// `--json` writes BENCH_f14_durability.json; every column is simulated
// and deterministic, so the baseline is diffed bit for bit in check.sh.
#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "fault/fault_injector.hpp"
#include "fault/wiring.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"
#include "util/strings.hpp"
#include "util/types.hpp"

using namespace evolve;

namespace {

constexpr int kComputeNodes = 4;
constexpr int kStorageNodes = 12;
constexpr int kRacks = 4;
constexpr util::Bytes kObjectBytes = 4 * util::kMiB;

struct Policy {
  std::string name;    // table label
  std::string prefix;  // json metric prefix
  storage::Redundancy redundancy;
  int replicas = 0;   // kReplication
  int ec_data = 0;    // kErasure
  int ec_parity = 0;
};

const std::vector<Policy> kPolicies = {
    {"R2", "r2", storage::Redundancy::kReplication, 2, 0, 0},
    {"R3", "r3", storage::Redundancy::kReplication, 3, 0, 0},
    {"EC(4,2)", "ec4_2", storage::Redundancy::kErasure, 0, 4, 2},
    {"EC(8,3)", "ec8_3", storage::Redundancy::kErasure, 0, 8, 3},
};

storage::ObjectStoreConfig make_config(const Policy& p) {
  storage::ObjectStoreConfig config;
  config.redundancy = p.redundancy;
  if (p.redundancy == storage::Redundancy::kReplication) {
    config.replicas = p.replicas;
  } else {
    config.ec_data = p.ec_data;
    config.ec_parity = p.ec_parity;
  }
  config.repair_delay = util::millis(50);
  return config;
}

struct PolicyResult {
  std::int64_t objects_lost = 0;
  std::int64_t degraded_reads = 0;
  double degraded_p99_us = 0;
  double get_p99_us = 0;
  double at_risk_fragment_s = 0;
  std::int64_t objects_repaired = 0;
  double rebuild_wait_s = 0;
};

/// F14a scenario: 32 objects, a storage-node crash at 100ms, a whole
/// rack dark from 600ms to 900ms, 160 foreground GETs over [0, 1.6s].
PolicyResult run_policy(const Policy& policy, double rebuild_bytes_per_s) {
  sim::Simulation sim;
  auto cluster =
      cluster::make_testbed(kComputeNodes, kStorageNodes, 0, kRacks);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  storage::IoSubsystem io(sim, cluster);
  auto config = make_config(policy);
  config.rebuild_bandwidth_bytes_per_s = rebuild_bytes_per_s;
  storage::ObjectStore store(sim, cluster, fabric, io,
                             cluster.nodes_with_label("role=storage"),
                             config);
  fault::FaultInjector injector(sim);
  fault::connect(injector, store);

  store.create_bucket("d");
  constexpr int kObjects = 32;
  for (int i = 0; i < kObjects; ++i) {
    store.preload({"d", "o" + std::to_string(i)}, kObjectBytes);
  }

  const auto servers = store.servers();
  injector.schedule_outage(servers[0], util::millis(100), util::seconds(2));
  injector.schedule_rack_outage(cluster, /*rack=*/2, util::millis(600),
                                util::millis(300));

  const auto compute = cluster.nodes_with_label("role=compute");
  constexpr int kGets = 160;
  for (int g = 0; g < kGets; ++g) {
    sim.at(util::micros(10'000.0 * g), [&, g] {
      store.get(compute[static_cast<std::size_t>(g % kComputeNodes)],
                {"d", "o" + std::to_string(g % kObjects)},
                [](const storage::GetResult&) {});
    });
  }
  sim.run();

  PolicyResult r;
  r.objects_lost = store.durability_stats().objects_lost;
  const auto& m = store.metrics();
  if (m.has_histogram("degraded_get_latency_us")) {
    const auto& h = m.histogram("degraded_get_latency_us");
    r.degraded_reads = h.count();
    r.degraded_p99_us = static_cast<double>(h.p99());
  }
  if (m.has_histogram("get_latency_us")) {
    r.get_p99_us =
        static_cast<double>(m.histogram("get_latency_us").p99());
  }
  r.at_risk_fragment_s = store.at_risk_fragment_seconds();
  r.objects_repaired = m.counter("objects_repaired");
  r.rebuild_wait_s = store.rebuild_throttle_wait_seconds();
  return r;
}

struct PlacementResult {
  int worst_frags_per_rack = 0;
  std::int64_t objects_lost = 0;
  std::int64_t objects_repaired = 0;
};

/// F14b scenario: EC(4,2) x 48 objects; every rack goes dark for 200ms
/// in turn, with two seconds between outages for rebuild to restore
/// full redundancy. Rack-aware placement caps every stripe at 2 (= m)
/// fragments per rack, so no outage can kill a stripe; pure HRW packs
/// 3+ fragments of some stripes into one rack and loses them.
PlacementResult run_placement(bool rack_aware) {
  sim::Simulation sim;
  auto cluster =
      cluster::make_testbed(kComputeNodes, kStorageNodes, 0, kRacks);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  storage::IoSubsystem io(sim, cluster);
  auto config =
      make_config({"", "", storage::Redundancy::kErasure, 0, 4, 2});
  config.rack_aware_placement = rack_aware;
  storage::ObjectStore store(sim, cluster, fabric, io,
                             cluster.nodes_with_label("role=storage"),
                             config);
  fault::FaultInjector injector(sim);
  fault::connect(injector, store);

  store.create_bucket("d");
  constexpr int kObjects = 48;
  PlacementResult r;
  for (int i = 0; i < kObjects; ++i) {
    const storage::ObjectKey key{"d", "o" + std::to_string(i)};
    store.preload(key, kObjectBytes);
    std::map<int, int> per_rack;
    for (auto n : store.locate(key)) {
      r.worst_frags_per_rack =
          std::max(r.worst_frags_per_rack, ++per_rack[cluster.node(n).rack]);
    }
  }
  for (int rack = 0; rack < kRacks; ++rack) {
    injector.schedule_rack_outage(cluster, rack, util::seconds(0.5 + 2 * rack),
                                  util::millis(200));
  }
  sim.run();
  r.objects_lost = store.durability_stats().objects_lost;
  r.objects_repaired = store.metrics().counter("objects_repaired");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  core::MetricsReport report("f14_durability");

  // --- F14a: redundancy policies, throttled vs unthrottled rebuild ----
  {
    core::Table table(
        "F14a: node crash + rack outage vs redundancy policy "
        "(4 MiB objects, 12 servers / 4 racks)",
        {"policy", "overhead", "lost", "degraded reads", "degraded p99",
         "get p99 (free)", "get p99 (throttled)", "at-risk frag-s",
         "throttle wait"});
    for (const auto& policy : kPolicies) {
      const PolicyResult free_run = run_policy(policy, 0);
      const PolicyResult capped =
          run_policy(policy, 32.0 * util::kMiB);  // 32 MiB/s rebuild cap
      table.add_row(
          {policy.name,
           util::fixed(make_config(policy).storage_overhead(), 2) + "x",
           std::to_string(free_run.objects_lost),
           std::to_string(free_run.degraded_reads),
           util::fixed(free_run.degraded_p99_us / 1000.0, 2) + " ms",
           util::fixed(free_run.get_p99_us / 1000.0, 2) + " ms",
           util::fixed(capped.get_p99_us / 1000.0, 2) + " ms",
           util::fixed(capped.at_risk_fragment_s, 2),
           util::fixed(capped.rebuild_wait_s, 3) + " s"});
      report.set(policy.prefix + "_objects_lost", free_run.objects_lost);
      report.set(policy.prefix + "_degraded_reads", free_run.degraded_reads);
      report.set(policy.prefix + "_degraded_p99_us", free_run.degraded_p99_us);
      report.set(policy.prefix + "_get_p99_us", free_run.get_p99_us);
      report.set(policy.prefix + "_get_p99_us_throttled", capped.get_p99_us);
      report.set(policy.prefix + "_at_risk_fragment_s_throttled",
                 capped.at_risk_fragment_s);
      report.set(policy.prefix + "_at_risk_fragment_s",
                 free_run.at_risk_fragment_s);
      report.set(policy.prefix + "_objects_repaired",
                 free_run.objects_repaired);
      report.set(policy.prefix + "_rebuild_wait_s_throttled",
                 capped.rebuild_wait_s);
    }
    table.print();
  }

  // --- F14b: rack-aware vs rack-oblivious EC(4,2) placement -----------
  std::cout << "\n";
  {
    const PlacementResult aware = run_placement(true);
    const PlacementResult oblivious = run_placement(false);
    core::Table table(
        "F14b: EC(4,2), every rack downed in turn (48 objects)",
        {"placement", "worst frags/rack", "objects lost", "repaired"});
    table.add_row({"rack-aware", std::to_string(aware.worst_frags_per_rack),
                   std::to_string(aware.objects_lost),
                   std::to_string(aware.objects_repaired)});
    table.add_row({"rack-oblivious",
                   std::to_string(oblivious.worst_frags_per_rack),
                   std::to_string(oblivious.objects_lost),
                   std::to_string(oblivious.objects_repaired)});
    table.print();
    report.set("aware_worst_frags_per_rack", aware.worst_frags_per_rack);
    report.set("aware_objects_lost", aware.objects_lost);
    report.set("aware_objects_repaired", aware.objects_repaired);
    report.set("oblivious_worst_frags_per_rack",
               oblivious.worst_frags_per_rack);
    report.set("oblivious_objects_lost", oblivious.objects_lost);
    report.set("oblivious_objects_repaired", oblivious.objects_repaired);
    std::cout << "\nShape check: the rack cap holds every stripe at <= 2 "
                 "fragments per rack,\nso rack-aware placement loses "
                 "nothing while oblivious HRW loses "
              << oblivious.objects_lost
              << " objects; the rebuild throttle trades slower repair "
                 "(at-risk fragment-seconds)\nfor a flatter foreground "
                 "GET p99.\n";
  }

  if (core::json_mode(argc, argv)) {
    std::cout << "wrote " << report.write() << "\n";
  }
  return 0;
}
