// F5 — Storage tiering and scaling: GET throughput and tier hit mix vs
// working-set size (tier-spill cliffs), and aggregate throughput vs
// number of storage servers.
//
// `--json` writes BENCH_f5_storage.json (all metrics are simulated and
// deterministic).
#include <iostream>

#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace evolve;

namespace {

struct Setup {
  sim::Simulation sim;
  cluster::Cluster cluster;
  net::Topology topology;
  net::Fabric fabric;
  storage::IoSubsystem io;
  storage::ObjectStore store;

  Setup(int compute, int storage_nodes, storage::ObjectStoreConfig config)
      : cluster(cluster::make_testbed(compute, storage_nodes, 0)),
        topology(cluster),
        fabric(sim, topology),
        io(sim, cluster),
        store(sim, cluster, fabric, io,
              cluster.nodes_with_label("role=storage"), config) {}
};

}  // namespace

int main(int argc, char** argv) {
  core::MetricsReport report("f5_storage");
  // --- Working-set sweep: hit mix and mean latency -------------------
  // Custom tier sizes (8 GiB DRAM cache + 24 GiB NVMe cache over HDD)
  // so the sweep crosses both capacity cliffs. A zipf warmup pass brings
  // the cache to steady state before measuring.
  {
    core::Table table(
        "F5a: zipfian GETs vs working-set size (8G dram + 24G nvme cache)",
        {"working set", "dram hits", "nvme hits", "hdd reads",
         "mean latency"});
    for (util::Bytes working_set :
         {4LL * util::kGiB, 16LL * util::kGiB, 48LL * util::kGiB,
          128LL * util::kGiB}) {
      sim::Simulation sim;
      cluster::Cluster cl;
      cl.add_node(cluster::make_compute_node("client", 0));
      auto server = cluster::make_storage_node("server", 0);
      server.devices[0].capacity = 8 * util::kGiB;    // dram cache
      server.devices[1].capacity = 24 * util::kGiB;   // nvme cache
      cl.add_node(server);
      net::Topology topology(cl);
      net::Fabric fabric(sim, topology);
      storage::IoSubsystem io(sim, cl);
      storage::ObjectStoreConfig config;
      config.replicas = 1;
      storage::ObjectStore store(sim, cl, fabric, io,
                                 cl.nodes_with_label("role=storage"), config);
      store.create_bucket("ws");
      const util::Bytes object = 4 * util::kMiB;
      const int objects = static_cast<int>(working_set / object);
      for (int i = 0; i < objects; ++i) {
        store.preload({"ws", "o" + std::to_string(i)}, object);
      }
      util::Rng rng(99);
      auto one_get = [&](bool) {
        const auto id = rng.zipf(objects, 0.9);
        store.get(0, {"ws", "o" + std::to_string(id)},
                  [](const storage::GetResult&) {});
        sim.run();
      };
      for (int i = 0; i < 3000; ++i) one_get(false);  // warmup
      store.metrics().reset();
      for (int i = 0; i < 2000; ++i) one_get(true);   // measured
      const auto& m = store.metrics();
      const auto mean_us = m.histogram("get_latency_us").mean();
      table.add_row(
          {util::human_bytes(working_set),
           std::to_string(m.counter("get_tier_dram")),
           std::to_string(m.counter("get_tier_nvme")),
           std::to_string(m.counter("get_tier_hdd")),
           util::human_time(static_cast<util::TimeNs>(mean_us * 1000))});
      const std::string prefix =
          "ws_" + std::to_string(working_set / util::kGiB) + "g";
      report.set(prefix + "_dram_hits", m.counter("get_tier_dram"));
      report.set(prefix + "_nvme_hits", m.counter("get_tier_nvme"));
      report.set(prefix + "_hdd_reads", m.counter("get_tier_hdd"));
      report.set(prefix + "_mean_latency_us", mean_us);
    }
    table.print();
  }

  // --- Server scaling -------------------------------------------------
  std::cout << "\n";
  {
    core::Table table(
        "F5b: aggregate GET throughput vs storage servers (16 clients)",
        {"servers", "time for 4 GiB", "throughput"});
    for (int servers : {1, 2, 4, 8}) {
      storage::ObjectStoreConfig config;
      config.replicas = 1;
      Setup s(16, servers, config);
      s.store.create_bucket("scale");
      const util::Bytes object = 16 * util::kMiB;
      const int objects = 256;  // 4 GiB total
      for (int i = 0; i < objects; ++i) {
        s.store.preload({"scale", "o" + std::to_string(i)}, object,
                        /*warm_cache=*/true);
      }
      int done = 0;
      for (int i = 0; i < objects; ++i) {
        s.store.get(i % 16, {"scale", "o" + std::to_string(i)},
                    [&](const storage::GetResult&) { ++done; });
      }
      s.sim.run();
      const double seconds = util::to_seconds(s.sim.now());
      const double gbps = 4.0 / seconds;
      table.add_row({std::to_string(servers), util::human_time(s.sim.now()),
                     util::fixed(gbps, 2) + " GiB/s"});
      const std::string prefix = "scale_" + std::to_string(servers);
      report.set(prefix + "_seconds", seconds);
      report.set(prefix + "_gib_per_s", gbps);
    }
    table.print();
  }
  std::cout << "\nShape check: latency climbs in steps as the working set "
               "spills DRAM\nthen NVMe; aggregate throughput scales with "
               "servers until client links bind.\n";
  if (core::json_mode(argc, argv)) {
    std::cout << "wrote " << report.write() << "\n";
  }
  return 0;
}
