// A6 — Ablation: logical-plan optimization (filter pushdown).
// Job time and compute cost with and without the optimizer, across
// filter selectivities.
#include <iostream>

#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "dataflow/engine.hpp"
#include "dataflow/optimizer.hpp"
#include "dataflow/stage.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "util/strings.hpp"

using namespace evolve;

namespace {

dataflow::LogicalPlan pipeline(double selectivity) {
  dataflow::LogicalPlan plan;
  const int src = plan.add_source("in");
  const int enriched = plan.add_map(src, "enrich", 1.0, 12.0);
  const int filtered = plan.add_filter(enriched, "predicate", selectivity, 0.2);
  const int reduced = plan.add_reduce_by_key(filtered, "rollup", 8, 0.1);
  plan.add_sink(reduced, "out");
  return plan;
}

util::TimeNs run_plan(const dataflow::LogicalPlan& plan) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(8, 4, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  storage::IoSubsystem io(sim, cluster);
  storage::ObjectStore store(sim, cluster, fabric, io,
                             cluster.nodes_with_label("role=storage"));
  storage::DatasetCatalog catalog(store);
  catalog.define(storage::DatasetSpec{"in", 32, util::kGiB});
  catalog.preload("in", /*warm_cache=*/true);
  dataflow::DataflowConfig config;
  config.locality_wait = 0;
  dataflow::DataflowEngine engine(sim, cluster, fabric, io, catalog, config);
  std::vector<dataflow::ExecutorSpec> execs;
  for (auto node : cluster.nodes_with_label("role=compute")) {
    execs.push_back(dataflow::ExecutorSpec{node, 4});
  }
  util::TimeNs duration = 0;
  engine.run(plan, execs,
             [&](const dataflow::JobStats& s) { duration = s.duration; });
  sim.run();
  return duration;
}

}  // namespace

int main() {
  core::Table table(
      "A6: filter pushdown (1 GiB scan, 12 ns/B transform, 8 reducers)",
      {"filter selectivity", "unoptimized", "optimized", "speedup"});
  for (double selectivity : {0.8, 0.5, 0.2, 0.05}) {
    const auto base = run_plan(pipeline(selectivity));
    dataflow::OptimizerStats stats;
    const auto optimized = run_plan(
        dataflow::optimize(pipeline(selectivity), &stats));
    table.add_row({util::fixed(selectivity, 2), util::human_time(base),
                   util::human_time(optimized),
                   util::fixed(static_cast<double>(base) /
                                   static_cast<double>(optimized),
                               2) +
                       "x"});
  }
  table.print();
  std::cout << "\nShape check: the more selective the filter, the more the "
               "pushed-down\npredicate saves (the transform runs on the "
               "survivors only); at selectivity\n~1 the rewrite is a no-op.\n";
  return 0;
}
