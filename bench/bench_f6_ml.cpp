// F6 — Distributed training: time per epoch vs worker count, CPU vs
// FPGA-assisted compute, and collective-algorithm choice.
#include <iostream>

#include "core/platform.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "util/strings.hpp"
#include "workloads/ml.hpp"

using namespace evolve;

namespace {

util::TimeNs epoch_time(int workers, double accel_speedup,
                        hpc::CollectiveAlgo algo) {
  core::PlatformConfig config;
  config.compute_nodes = 16;
  config.storage_nodes = 2;
  config.accel_nodes = 0;
  sim::Simulation sim;
  core::Platform platform(sim, config);
  core::Session session(platform);
  workloads::SgdModel model;
  model.parameters_bytes = 128 * util::kMiB;
  model.epochs = 5;
  model.epoch_compute = util::seconds(8);
  const auto stats = session.run_hpc(
      workloads::sgd_program(model, workers, algo, accel_speedup), workers);
  return stats.total_time / model.epochs;
}

}  // namespace

int main() {
  {
    core::Table table(
        "F6a: SGD epoch time vs workers (128 MiB gradients, ring)",
        {"workers", "cpu", "fpga (8x compute)", "fpga benefit"});
    for (int workers : {1, 2, 4, 8, 16}) {
      const auto cpu = epoch_time(workers, 1.0, hpc::CollectiveAlgo::kRing);
      const auto fpga = epoch_time(workers, 8.0, hpc::CollectiveAlgo::kRing);
      table.add_row({std::to_string(workers), util::human_time(cpu),
                     util::human_time(fpga),
                     util::fixed(static_cast<double>(cpu) /
                                     static_cast<double>(fpga),
                                 2) +
                         "x"});
    }
    table.print();
  }
  std::cout << "\n";
  {
    core::Table table("F6b: epoch time by collective algorithm (8 workers)",
                      {"algorithm", "cpu epoch", "fpga epoch"});
    for (auto [name, algo] :
         {std::pair{"linear", hpc::CollectiveAlgo::kLinear},
          std::pair{"tree", hpc::CollectiveAlgo::kTree},
          std::pair{"recursive-doubling",
                    hpc::CollectiveAlgo::kRecursiveDoubling},
          std::pair{"ring", hpc::CollectiveAlgo::kRing}}) {
      table.add_row({name, util::human_time(epoch_time(8, 1.0, algo)),
                     util::human_time(epoch_time(8, 8.0, algo))});
    }
    table.print();
  }
  std::cout << "\nShape check: compute shrinks with workers while the "
               "all-reduce grows,\nso scaling flattens; acceleration makes "
               "communication dominant sooner\n(larger relative benefit from "
               "ring at high worker counts).\n";
  return 0;
}
