// F11 — Gray failures: slow nodes, lossy links, silent corruption.
//
// Three gray-failure scenarios on the converged testbed, each run with
// the mitigation machinery on and off:
//
//   slow-node   one compute node runs 6x slower mid-run. Mitigation =
//               EWMA health scoring -> quarantine (drain + probe back
//               in) + health-driven speculative backups.
//   lossy-link  one storage server's NIC loses bandwidth and drops
//               packets. Mitigation = hedged reads (second replica read
//               after a p95-based delay, first finisher wins, loser
//               cancelled and accounted).
//   bit-rot     seeded corruption of stored replicas. Mitigation =
//               checksummed reads with transparent failover plus a
//               background scrubber that drops and re-replicates rotten
//               copies. With verification on, zero corrupted reads are
//               ever surfaced.
//
// `--json` writes BENCH_f11_gray.json; `--trace` writes
// TRACE_f11_gray.json with fault.degrade / fault.quarantine /
// store.hedge / store.scrub / df.speculate spans.
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "dataflow/engine.hpp"
#include "fault/gray.hpp"
#include "fault/health.hpp"
#include "fault/wiring.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/types.hpp"

using namespace evolve;

namespace {

constexpr int kComputeNodes = 8;
constexpr int kStorageNodes = 4;

// -- Scenario A: slow node --------------------------------------------

struct SlowNodeResult {
  double makespan_s = 0;
  int jobs_ok = 0;
  int jobs_failed = 0;
  std::int64_t quarantines = 0;
  std::int64_t probes = 0;
  std::int64_t speculations = 0;
  double time_to_quarantine_ms = -1;
};

SlowNodeResult run_slow_node(bool mitigate,
                             std::unique_ptr<trace::Tracer>* tracer_out) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(kComputeNodes, kStorageNodes, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  storage::IoSubsystem io(sim, cluster);
  storage::ObjectStore store(sim, cluster, fabric, io,
                             cluster.nodes_with_label("role=storage"));
  storage::DatasetCatalog catalog(store);

  dataflow::DataflowConfig dconfig;
  dconfig.locality_wait = 0;
  dconfig.health_speculation = mitigate;
  dataflow::DataflowEngine engine(sim, cluster, fabric, io, catalog, dconfig);

  fault::GrayInjector gray(sim);
  fault::connect(gray, engine);  // the slowdown itself hits either way

  // Tasks in one stage vary in input size, so per-node mean service
  // times are noisy; a 3x flag threshold sits safely between that noise
  // and the injected 6x slowdown.
  fault::HealthScorerConfig hconfig;
  hconfig.flag_ratio = 3.0;
  hconfig.clear_ratio = 1.5;
  hconfig.min_samples = 8;
  fault::HealthScorer scorer(sim, hconfig);
  fault::QuarantineController quarantine(sim, scorer);
  if (mitigate) {
    fault::connect(engine, scorer);
    fault::connect(quarantine, engine);
    fault::connect(gray, quarantine);
  }

  std::unique_ptr<trace::Tracer> tracer;
  if (tracer_out) {
    tracer = std::make_unique<trace::Tracer>(sim);
    fabric.set_tracer(tracer.get());
    store.set_tracer(tracer.get());
    engine.set_tracer(tracer.get());
    gray.set_tracer(tracer.get());
    quarantine.set_tracer(tracer.get());
  }

  const auto compute = cluster.nodes_with_label("role=compute");
  std::vector<dataflow::ExecutorSpec> executors;
  for (auto node : compute) executors.push_back({node, 4});

  SlowNodeResult result;
  util::TimeNs last_finish = 0;
  constexpr int kJobs = 6;
  for (int j = 0; j < kJobs; ++j) {
    const std::string in = "in" + std::to_string(j);
    catalog.define(storage::DatasetSpec{in, 24, 192 * util::kMiB});
    catalog.preload(in, /*warm_cache=*/true);
    sim.at(util::millis(150) * j, [&, j, in] {
      dataflow::LogicalPlan plan;
      const int src = plan.add_source(in);
      // Compute-heavy map: the 6x CPU slowdown dominates I/O, so the
      // slow node's tasks become genuine stragglers.
      const int mapped = plan.add_map(src, "featurize", 0.4, 25.0);
      const int reduced = plan.add_reduce_by_key(mapped, "agg", 8, 0.05);
      plan.add_sink(reduced, "out" + std::to_string(j));
      engine.run(plan, executors, [&](const dataflow::JobStats& s) {
        s.failed ? ++result.jobs_failed : ++result.jobs_ok;
        last_finish = std::max(last_finish, sim.now());
      });
    });
  }

  // compute[2] runs 6x slower from 300ms until well past the workload.
  gray.schedule_slow_node(compute[2], /*cpu=*/6.0, /*accel=*/6.0,
                          util::millis(300), util::seconds(60));

  sim.run();

  result.makespan_s = util::to_seconds(last_finish);
  result.quarantines = quarantine.quarantines();
  result.probes = quarantine.probes();
  result.speculations = engine.metrics().counter("health_speculations");
  result.time_to_quarantine_ms = quarantine.mean_time_to_quarantine_ms();
  if (tracer) {
    tracer->close_open_spans();
    *tracer_out = std::move(tracer);
  }
  return result;
}

// -- Scenarios B/C: storage GET workload ------------------------------

struct StorageResult {
  double get_mean_ms = 0;
  double get_p95_ms = 0;
  std::int64_t hedges = 0;
  std::int64_t hedge_wins = 0;
  std::int64_t hedges_cancelled = 0;
  double hedge_wasted_mib = 0;
  std::int64_t checksum_failures = 0;
  std::int64_t corrupted_reads = 0;
  std::int64_t replicas_scrubbed = 0;
  std::int64_t objects_repaired = 0;
  int corrupted_left = 0;
  std::int64_t flows_leaked = 0;
};

/// Shared GET-workload harness: preloads objects, streams seeded reads
/// from compute-node clients, and reports latency + mitigation stats.
StorageResult run_storage_scenario(
    bool lossy_nic, bool bitrot, bool mitigate,
    std::unique_ptr<trace::Tracer>* tracer_out) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(kComputeNodes, kStorageNodes, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  storage::IoSubsystem io(sim, cluster);

  storage::ObjectStoreConfig sconfig;
  sconfig.replicas = 2;
  sconfig.repair_delay = util::millis(100);
  if (lossy_nic && mitigate) {
    sconfig.hedged_reads = true;
  }
  if (bitrot && mitigate) {
    sconfig.checksum_reads = true;
    sconfig.scrub = true;
    sconfig.scrub_interval = util::millis(200);
  }
  const auto storage_nodes = cluster.nodes_with_label("role=storage");
  storage::ObjectStore store(sim, cluster, fabric, io, storage_nodes,
                             sconfig);

  fault::GrayInjector gray(sim);
  fault::connect(gray, fabric);
  fault::connect(gray, store);

  std::unique_ptr<trace::Tracer> tracer;
  if (tracer_out) {
    tracer = std::make_unique<trace::Tracer>(sim);
    fabric.set_tracer(tracer.get());
    store.set_tracer(tracer.get());
    gray.set_tracer(tracer.get());
  }

  constexpr int kObjects = 48;
  constexpr int kGets = 320;
  store.create_bucket("data");
  for (int i = 0; i < kObjects; ++i) {
    store.preload({"data", "obj-" + std::to_string(i)}, 4 * util::kMiB);
  }

  if (lossy_nic) {
    // storage[0]'s NIC: 30% of nominal bandwidth, 20% loss, +200us.
    fault::NicDegradation nic;
    nic.bandwidth_factor = 0.3;
    nic.loss = 0.2;
    nic.extra_latency = util::micros(200);
    gray.schedule_nic_degradation(storage_nodes[0], nic, util::millis(100),
                                  util::seconds(60));
  }
  if (bitrot) {
    gray.schedule_bitrot(util::millis(50), /*seed=*/0xb17507, /*replicas=*/24);
  }

  const auto compute = cluster.nodes_with_label("role=compute");
  util::Rng rng(0xf11);
  util::TimeNs at = util::millis(120);
  for (int g = 0; g < kGets; ++g) {
    const auto client =
        compute[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(compute.size()) - 1))];
    const std::string name =
        "obj-" + std::to_string(rng.uniform_int(0, kObjects - 1));
    sim.at(at, [&store, client, name] {
      store.get(client, {"data", name}, [](const storage::GetResult&) {});
    });
    at += util::micros(1500);
  }

  sim.run();

  StorageResult result;
  if (store.metrics().has_histogram("get_latency_us")) {
    const auto& h = store.metrics().histogram("get_latency_us");
    result.get_mean_ms = h.mean() / 1e3;
    result.get_p95_ms = static_cast<double>(h.p95()) / 1e3;
  }
  result.hedges = store.hedges_launched();
  result.hedge_wins = store.hedge_wins();
  result.hedges_cancelled = store.hedges_cancelled();
  result.hedge_wasted_mib =
      static_cast<double>(store.hedge_wasted_bytes()) / util::kMiB;
  result.checksum_failures = store.checksum_failures();
  result.corrupted_reads = store.corrupted_reads_surfaced();
  result.replicas_scrubbed = store.replicas_scrubbed();
  result.objects_repaired = store.metrics().counter("objects_repaired");
  result.corrupted_left = store.corrupted_replica_count();
  result.flows_leaked = fabric.stats().flows_in_flight;
  if (tracer) {
    tracer->close_open_spans();
    *tracer_out = std::move(tracer);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool tracing = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) tracing = true;
  }

  std::unique_ptr<trace::Tracer> slow_tr, lossy_tr, rot_tr;
  const SlowNodeResult slow_on =
      run_slow_node(true, tracing ? &slow_tr : nullptr);
  const SlowNodeResult slow_off = run_slow_node(false, nullptr);
  const StorageResult lossy_on =
      run_storage_scenario(true, false, true, tracing ? &lossy_tr : nullptr);
  const StorageResult lossy_off =
      run_storage_scenario(true, false, false, nullptr);
  const StorageResult rot_on =
      run_storage_scenario(false, true, true, tracing ? &rot_tr : nullptr);
  const StorageResult rot_off =
      run_storage_scenario(false, true, false, nullptr);

  core::Table slow("F11a: slow node (6x) — quarantine + speculation",
                   {"mitigation", "makespan", "jobs ok/fail", "quarantines",
                    "probes", "speculations", "time-to-quarantine"});
  auto srow = [&](const std::string& name, const SlowNodeResult& r) {
    slow.add_row({name, util::fixed(r.makespan_s, 2) + " s",
                  std::to_string(r.jobs_ok) + "/" +
                      std::to_string(r.jobs_failed),
                  std::to_string(r.quarantines), std::to_string(r.probes),
                  std::to_string(r.speculations),
                  r.time_to_quarantine_ms < 0
                      ? "-"
                      : util::fixed(r.time_to_quarantine_ms, 0) + " ms"});
  };
  srow("on", slow_on);
  srow("off", slow_off);
  slow.print();

  core::Table lossy("F11b: lossy NIC — hedged reads",
                    {"mitigation", "get mean", "get p95", "hedges", "wins",
                     "cancelled", "wasted"});
  auto lrow = [&](const std::string& name, const StorageResult& r) {
    lossy.add_row({name, util::fixed(r.get_mean_ms, 2) + " ms",
                   util::fixed(r.get_p95_ms, 2) + " ms",
                   std::to_string(r.hedges), std::to_string(r.hedge_wins),
                   std::to_string(r.hedges_cancelled),
                   util::fixed(r.hedge_wasted_mib, 1) + " MiB"});
  };
  lrow("on", lossy_on);
  lrow("off", lossy_off);
  std::cout << "\n";
  lossy.print();

  core::Table rot("F11c: bit-rot — checksums + scrubber",
                  {"mitigation", "corrupted reads", "checksum fails",
                   "scrubbed", "repaired", "corrupted left"});
  auto rrow = [&](const std::string& name, const StorageResult& r) {
    rot.add_row({name, std::to_string(r.corrupted_reads),
                 std::to_string(r.checksum_failures),
                 std::to_string(r.replicas_scrubbed),
                 std::to_string(r.objects_repaired),
                 std::to_string(r.corrupted_left)});
  };
  rrow("on", rot_on);
  rrow("off", rot_off);
  std::cout << "\n";
  rot.print();

  std::cout << "\nShape check: mitigation cuts the slow-node makespan ("
            << util::fixed(slow_off.makespan_s, 2) << " -> "
            << util::fixed(slow_on.makespan_s, 2)
            << " s), hedging cuts lossy-link p95 ("
            << util::fixed(lossy_off.get_p95_ms, 1) << " -> "
            << util::fixed(lossy_on.get_p95_ms, 1)
            << " ms), and with checksums on "
            << rot_on.corrupted_reads
            << " corrupted reads reach callers (vs "
            << rot_off.corrupted_reads << " without).\n";

  core::MetricsReport report("f11_gray");
  auto emit_slow = [&](const std::string& p, const SlowNodeResult& r) {
    report.set(p + "_makespan_s", r.makespan_s);
    report.set(p + "_jobs_ok", static_cast<std::int64_t>(r.jobs_ok));
    report.set(p + "_jobs_failed", static_cast<std::int64_t>(r.jobs_failed));
    report.set(p + "_quarantines", r.quarantines);
    report.set(p + "_probes", r.probes);
    report.set(p + "_speculations", r.speculations);
    report.set(p + "_time_to_quarantine_ms", r.time_to_quarantine_ms);
  };
  auto emit_store = [&](const std::string& p, const StorageResult& r) {
    report.set(p + "_get_mean_ms", r.get_mean_ms);
    report.set(p + "_get_p95_ms", r.get_p95_ms);
    report.set(p + "_hedges", r.hedges);
    report.set(p + "_hedge_wins", r.hedge_wins);
    report.set(p + "_hedges_cancelled", r.hedges_cancelled);
    report.set(p + "_hedge_wasted_mib", r.hedge_wasted_mib);
    report.set(p + "_checksum_failures", r.checksum_failures);
    report.set(p + "_corrupted_reads", r.corrupted_reads);
    report.set(p + "_replicas_scrubbed", r.replicas_scrubbed);
    report.set(p + "_objects_repaired", r.objects_repaired);
    report.set(p + "_corrupted_left",
               static_cast<std::int64_t>(r.corrupted_left));
    report.set(p + "_flows_leaked", r.flows_leaked);
  };
  emit_slow("slow_on", slow_on);
  emit_slow("slow_off", slow_off);
  emit_store("lossy_on", lossy_on);
  emit_store("lossy_off", lossy_off);
  emit_store("bitrot_on", rot_on);
  emit_store("bitrot_off", rot_off);
  report.set("slow_mitigation_speedup",
             slow_on.makespan_s > 0
                 ? slow_off.makespan_s / slow_on.makespan_s
                 : 0.0);
  report.set("lossy_hedge_win_rate",
             lossy_on.hedges > 0
                 ? static_cast<double>(lossy_on.hedge_wins) /
                       static_cast<double>(lossy_on.hedges)
                 : 0.0);

  if (tracing) {
    std::cout << "wrote "
              << trace::write_chrome_trace(
                     "f11_gray", {{"f11/slow-node", slow_tr.get()},
                                  {"f11/lossy-link", lossy_tr.get()},
                                  {"f11/bit-rot", rot_tr.get()}})
              << "\n";
  }
  if (core::json_mode(argc, argv)) {
    std::cout << "wrote " << report.write() << "\n";
  }
  return 0;
}
