// F15 — Hierarchical fair share under three-world contention: a serving
// deployment, a batch pod flood, and periodic MPI gangs oversubscribe an
// 8-node cluster. Priority-only scheduling (the baseline) lets the
// high-priority worlds squeeze batch out; the fair-share pool tree plus
// budget-gated preemption and the background rebalancer converge every
// tenant toward its share. Reported: per-tenant delivered share, Jain
// fairness index, worst-case queue wait (starvation), preemption churn.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "orch/controllers.hpp"
#include "orch/fairshare.hpp"
#include "orch/rebalancer.hpp"
#include "orch/scheduler.hpp"
#include "sim/simulation.hpp"
#include "util/strings.hpp"
#include "util/types.hpp"

using namespace evolve;

namespace {

constexpr int kNodes = 8;                       // 8 x 32 cores = 256 cores
constexpr util::TimeNs kHorizon = util::seconds(150);
const char* const kTenants[] = {"serving", "batch", "mpi"};

struct TenantOutcome {
  double core_seconds = 0;  // delivered CPU integral over the horizon
  double max_wait_s = 0;    // worst queue wait (starvation proxy)
};

struct RunOutcome {
  std::map<std::string, TenantOutcome> tenants;
  double jain = 0;
  double cpu_util = 0;
  std::int64_t preemptions = 0;
  std::int64_t rebalance_evictions = 0;
};

double overlap_core_seconds(const orch::PodStatus& status,
                            util::TimeNs horizon) {
  if (status.start_time < 0) return 0;
  util::TimeNs end = horizon;
  if (status.finish_time >= 0 && status.finish_time < horizon) {
    end = status.finish_time;
  }
  if (end <= status.start_time) return 0;
  const double seconds = (end - status.start_time) / double(util::kSecond);
  return seconds * (status.spec.request.cpu_millicores / 1000.0);
}

double jain_index(const std::vector<double>& shares) {
  double sum = 0, sum_sq = 0;
  for (double x : shares) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0) return 0;
  return (sum * sum) / (shares.size() * sum_sq);
}

RunOutcome run_world(bool fair_share) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(kNodes, 0, 0);
  orch::OrchestratorConfig config;
  config.enable_preemption = true;
  config.enable_fair_preemption = fair_share;
  orch::Orchestrator orch(sim, cluster,
                          orch::SchedulingPolicy::spreading(cluster), config);

  orch::PoolTree tree;
  orch::Rebalancer rebalancer(
      sim, orch,
      {.interval = util::millis(500),
       .starvation_threshold = util::seconds(1),
       .max_evictions_per_round = 2,
       .max_starving_considered = 8});
  if (fair_share) {
    // Equal-weight pools; serving also carries a 32-core guarantee
    // (an availability floor, below its weight share here).
    tree.add_pool({.name = "serving",
                   .guarantee = cluster::cpu_mem(32000, 0)});
    tree.add_pool({.name = "batch"});
    tree.add_pool({.name = "mpi"});
    for (const char* tenant : kTenants) tree.assign_tenant(tenant, tenant);
    orch.attach_pool_tree(&tree);
    rebalancer.start();
  }

  // World 1: serving. 8 replicas x 8 cores at priority 10, scaling to 18
  // at t=50s into an already-saturated cluster; protected by a
  // disruption budget in fair mode.
  orch::PodSpec replica;
  replica.tenant = "serving";
  replica.request = cluster::cpu_mem(8000, 8 * util::kGiB);
  replica.priority = 10;
  orch::DeploymentController frontend(orch, "frontend", replica, 8);
  sim.at(util::seconds(50), [&] { frontend.scale(18); });
  // Serving replicas are controller-owned; integrate their delivered CPU
  // through the replica observer (evicted replicas count up to the
  // moment they left).
  double serving_core_s = 0;
  std::map<orch::PodId, util::TimeNs> up_since;
  const double replica_cores = replica.request.cpu_millicores / 1000.0;
  frontend.set_replica_observer(
      [&](orch::PodId id, cluster::NodeId, bool up) {
        if (up) {
          up_since[id] = sim.now();
          return;
        }
        auto it = up_since.find(id);
        if (it == up_since.end()) return;
        serving_core_s +=
            (sim.now() - it->second) / double(util::kSecond) * replica_cores;
        up_since.erase(it);
      });
  if (fair_share) {
    frontend.set_disruption_budget({.max_evictions_per_window = 2,
                                    .window = util::seconds(5),
                                    .min_available = 8});
  }

  // Pod bookkeeping for tenants we submit directly.
  std::vector<orch::PodId> tracked;
  auto submit_batch = [&] {
    orch::PodSpec spec;
    spec.tenant = "batch";
    spec.request = cluster::cpu_mem(4000, 4 * util::kGiB);
    spec.priority = 0;
    const orch::PodId id = orch.submit(spec, util::seconds(25));
    if (id != orch::kInvalidPod) tracked.push_back(id);
  };
  auto submit_gang = [&] {
    std::vector<orch::PodSpec> members(4);
    for (auto& member : members) {
      member.tenant = "mpi";
      member.request = cluster::cpu_mem(16000, 16 * util::kGiB);
      member.priority = 5;
    }
    for (orch::PodId id : orch.submit_gang(members, util::seconds(10))) {
      tracked.push_back(id);
    }
  };

  // World 2: batch flood — 5 x 4-core pods every 2 s for 140 s
  // (~250 cores of steady demand: batch alone can eat the cluster).
  for (int t = 0; t < 140; t += 2) {
    sim.at(util::seconds(t), [&, n = 5] {
      for (int i = 0; i < n; ++i) submit_batch();
    });
  }
  // World 3: MPI gangs — 4 x 16 cores for 10 s, every 12 s (~53 cores of
  // average demand; all-or-nothing, so fragmentation starves it first).
  for (int t = 0; t < 143; t += 12) {
    sim.at(util::seconds(t), [&] { submit_gang(); });
  }

  sim.run_until(kHorizon);

  RunOutcome outcome;
  for (const char* tenant : kTenants) outcome.tenants[tenant];
  for (orch::PodId id : tracked) {
    const orch::PodStatus& status = orch.pod(id);
    TenantOutcome& t = outcome.tenants[status.spec.tenant];
    t.core_seconds += overlap_core_seconds(status, kHorizon);
    const util::TimeNs started_or_now =
        status.start_time >= 0 ? status.start_time : kHorizon;
    t.max_wait_s = std::max(
        t.max_wait_s, (started_or_now - status.submit_time) /
                          double(util::kSecond));
  }
  // Replicas still up at the horizon.
  for (const auto& [id, start] : up_since) {
    (void)id;
    serving_core_s +=
        (kHorizon - start) / double(util::kSecond) * replica_cores;
  }
  outcome.tenants["serving"].core_seconds += serving_core_s;

  std::vector<double> shares;
  for (const char* tenant : kTenants) {
    shares.push_back(outcome.tenants[tenant].core_seconds);
  }
  outcome.jain = jain_index(shares);
  outcome.cpu_util = orch.cpu_utilization();
  outcome.preemptions = orch.metrics().counter("preemptions");
  outcome.rebalance_evictions =
      orch.metrics().counter("rebalance_evictions");
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const RunOutcome priority = run_world(/*fair_share=*/false);
  const RunOutcome fair = run_world(/*fair_share=*/true);

  core::Table table(
      "F15: 3-world contention, priority-only vs hierarchical fair share "
      "(8 nodes, 150 s)",
      {"scheduler", "serving core-s", "batch core-s", "mpi core-s", "jain",
       "mpi max wait", "preemptions", "rebalance"});
  for (const auto& [name, outcome] :
       {std::pair{"priority", &priority}, std::pair{"fair-share", &fair}}) {
    table.add_row(
        {name,
         util::fixed(outcome->tenants.at("serving").core_seconds, 0),
         util::fixed(outcome->tenants.at("batch").core_seconds, 0),
         util::fixed(outcome->tenants.at("mpi").core_seconds, 0),
         util::fixed(outcome->jain, 3),
         util::fixed(outcome->tenants.at("mpi").max_wait_s, 1) + "s",
         std::to_string(outcome->preemptions),
         std::to_string(outcome->rebalance_evictions)});
  }
  table.print();
  std::cout << "\nShape check: under priority-only scheduling the "
               "all-or-nothing MPI gangs\nnever find room between the "
               "serving and batch worlds; the pool tree's\nreservation + "
               "budget-gated preemption pull every tenant toward its\n"
               "share (jain -> 1) at bounded preemption churn.\n";

  if (core::json_mode(argc, argv)) {
    core::MetricsReport report("f15_fairness");
    report.set("jain_fair", fair.jain);
    report.set("jain_priority", priority.jain);
    report.set("serving_core_s_fair",
               fair.tenants.at("serving").core_seconds);
    report.set("batch_core_s_fair", fair.tenants.at("batch").core_seconds);
    report.set("mpi_core_s_fair", fair.tenants.at("mpi").core_seconds);
    report.set("batch_core_s_priority",
               priority.tenants.at("batch").core_seconds);
    report.set("batch_max_wait_s_fair",
               fair.tenants.at("batch").max_wait_s);
    report.set("batch_max_wait_s_priority",
               priority.tenants.at("batch").max_wait_s);
    report.set("mpi_max_wait_s_fair", fair.tenants.at("mpi").max_wait_s);
    report.set("preemptions_fair", fair.preemptions);
    report.set("preemptions_priority", priority.preemptions);
    report.set("rebalance_evictions_fair", fair.rebalance_evictions);
    report.set("cpu_util_fair", fair.cpu_util);
    report.set("cpu_util_priority", priority.cpu_util);
    std::cout << "\nwrote " << report.write() << "\n";
  }
  return 0;
}
