// A2 — Ablation: gang scheduling vs independent rank placement for HPC
// jobs sharing a cluster with churning batch pods. Independent placement
// strands partially-allocated ranks that idle-wait for stragglers.
#include <iostream>

#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "orch/scheduler.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace evolve;

namespace {

struct Outcome {
  util::TimeNs mean_ready = 0;   // submit -> all ranks running
  util::TimeNs wasted = 0;       // rank-seconds idle before job start
  int jobs = 0;
};

Outcome run_mode(bool gang, std::uint64_t seed) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(8, 0, 0);
  orch::Orchestrator orch(sim, cluster,
                          orch::SchedulingPolicy::binpacking(cluster));
  util::Rng rng(seed);

  // Background churn: batch pods arriving continuously.
  double clock = 0;
  for (int i = 0; i < 150; ++i) {
    clock += rng.exponential(1.0);
    orch::PodSpec pod;
    pod.name = "batch";
    pod.request = cluster::cpu_mem(8000, 16 * util::kGiB);
    sim.at(util::seconds(clock), [&orch, pod, &rng]() mutable {
      orch.submit(pod, util::seconds(20));
    });
  }

  // Six MPI jobs of 8 ranks x 16 cores arriving through the churn.
  auto outcome = std::make_shared<Outcome>();
  auto total_ready = std::make_shared<util::TimeNs>(0);
  for (int j = 0; j < 6; ++j) {
    const util::TimeNs arrival = util::seconds(10 + 15 * j);
    sim.at(arrival, [&, arrival] {
      auto state = std::make_shared<std::vector<util::TimeNs>>();
      const int ranks = 8;
      auto on_start = [&sim, state, ranks, arrival, outcome,
                       total_ready](orch::PodId, cluster::NodeId) {
        state->push_back(sim.now());
        if (static_cast<int>(state->size()) == ranks) {
          const util::TimeNs ready = sim.now();
          for (util::TimeNs t : *state) outcome->wasted += ready - t;
          *total_ready += ready - arrival;
          ++outcome->jobs;
        }
      };
      std::vector<orch::PodSpec> specs;
      for (int r = 0; r < ranks; ++r) {
        orch::PodSpec spec;
        spec.name = "rank";
        spec.tenant = "hpc";
        spec.request = cluster::cpu_mem(16000, 32 * util::kGiB);
        specs.push_back(std::move(spec));
      }
      if (gang) {
        orch.submit_gang(specs, util::seconds(30), on_start);
      } else {
        for (auto& spec : specs) {
          orch.submit(spec, util::seconds(30) /* plus idle wait below */,
                      on_start);
        }
      }
    });
  }
  sim.run();
  if (outcome->jobs > 0) outcome->mean_ready = *total_ready / outcome->jobs;
  return *outcome;
}

}  // namespace

int main() {
  core::Table table(
      "A2: gang vs independent rank placement (8-rank jobs + churn)",
      {"placement", "jobs fully started", "mean time to all-ranks-ready",
       "stranded rank-time"});
  const auto gang = run_mode(true, 7);
  const auto indep = run_mode(false, 7);
  table.add_row({"gang (all-or-nothing)", std::to_string(gang.jobs) + "/6",
                 util::human_time(gang.mean_ready),
                 util::human_time(gang.wasted)});
  table.add_row({"independent pods", std::to_string(indep.jobs) + "/6",
                 util::human_time(indep.mean_ready),
                 util::human_time(indep.wasted)});
  table.print();
  std::cout << "\nShape check: gangs hold ranks back until all fit, so no "
               "rank-time is\nstranded; independent placement starts ranks "
               "piecemeal, wasting allocated\ncores while stragglers queue "
               "behind churn.\n";
  return 0;
}
