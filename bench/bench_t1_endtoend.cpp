// T1 — Use-case end-to-end times: converged EVOLVE platform vs siloed
// baseline, for three pipelines (urban mobility, ML training, analytics
// chain). Reproduces the paper's headline "convergence pays" table.
//
// With `--trace`, each converged run is span-traced end to end; the
// bench prints a per-layer critical-path attribution table (rows sum to
// the end-to-end time) and writes TRACE_t1_endtoend.json, loadable in
// Perfetto / chrome://tracing.
#include <cstring>
#include <iostream>
#include <memory>

#include "core/platform.hpp"
#include "core/report.hpp"
#include "core/siloed.hpp"
#include "trace/critical_path.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "util/strings.hpp"
#include "workloads/genomics.hpp"
#include "workloads/ml.hpp"
#include "workloads/mobility.hpp"
#include "workloads/tabular.hpp"

using namespace evolve;

namespace {

struct UseCase {
  std::string name;
  std::function<void(storage::DatasetCatalog&)> stage;
  std::function<workflow::Workflow()> build;
};

std::vector<UseCase> use_cases() {
  std::vector<UseCase> cases;

  // 1. Urban mobility (trace analytics + clustering).
  cases.push_back(UseCase{
      "urban-mobility",
      [](storage::DatasetCatalog& catalog) {
        workloads::MobilityScenario scenario;
        scenario.trace_bytes = 2 * util::kGiB;
        workloads::stage_mobility_inputs(catalog, scenario);
      },
      [] {
        workloads::MobilityScenario scenario;
        scenario.trace_bytes = 2 * util::kGiB;
        return workloads::mobility_pipeline(scenario);
      }});

  // 2. ML training: featurize -> SGD -> accel scoring.
  cases.push_back(UseCase{
      "ml-training",
      [](storage::DatasetCatalog& catalog) {
        catalog.define(storage::DatasetSpec{"samples", 32, util::kGiB});
        catalog.preload("samples");
      },
      [] {
        workflow::Workflow wf("ml-training");
        wf.add(workflow::dataflow_step(
            "featurize", workloads::featurize("samples", "features"), 4, 4));
        auto train = workflow::hpc_step(
            "train",
            workloads::sgd_program(workloads::SgdModel{.epochs = 8}, 8), 8);
        train.depends_on = {"featurize"};
        train.input_datasets = {"features"};
        wf.add(train);
        auto score =
            workflow::accel_step("score", "dnn-infer", util::seconds(10));
        score.depends_on = {"train"};
        wf.add(score);
        return wf;
      }});

  // 3. Analytics chain: two dependent dataflow jobs + HPC post-process.
  cases.push_back(UseCase{
      "analytics-chain",
      [](storage::DatasetCatalog& catalog) {
        catalog.define(storage::DatasetSpec{"events", 32, 2 * util::kGiB});
        catalog.define(storage::DatasetSpec{"catalog", 8, 128 * util::kMiB});
        catalog.preload("events");
        catalog.preload("catalog");
      },
      [] {
        workflow::Workflow wf("analytics-chain");
        wf.add(workflow::dataflow_step(
            "join", workloads::join_aggregate("events", "catalog", "joined"),
            6, 4));
        auto sessions = workflow::dataflow_step(
            "sessionize", workloads::sessionize("joined", "sessions"), 6, 4);
        sessions.depends_on = {"join"};
        wf.add(sessions);
        hpc::MpiProgram post;
        post.iterations = 10;
        post.compute_per_iteration = util::millis(150);
        post.allreduce_bytes = 4 * util::kMiB;
        auto hpc_post = workflow::hpc_step("simulate", post, 4);
        hpc_post.depends_on = {"sessionize"};
        hpc_post.input_datasets = {"sessions"};
        wf.add(hpc_post);
        return wf;
      }});

  // 4. Genomics: QC -> FPGA pattern match -> HPC assembly.
  cases.push_back(UseCase{
      "genomics",
      [](storage::DatasetCatalog& catalog) {
        workloads::GenomicsScenario scenario;
        scenario.reads_bytes = util::kGiB;
        scenario.read_partitions = 32;
        workloads::stage_genomics_inputs(catalog, scenario);
      },
      [] {
        workloads::GenomicsScenario scenario;
        scenario.reads_bytes = util::kGiB;
        scenario.read_partitions = 32;
        scenario.qc_executors = 4;
        scenario.assembly_ranks = 4;
        return workloads::genomics_pipeline(scenario);
      }});
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  bool tracing = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) tracing = true;
  }

  core::Table table(
      "T1: end-to-end use-case time, converged vs siloed (same hardware)",
      {"use case", "converged", "siloed", "staged", "speedup"});
  core::MetricsReport report("t1_endtoend");

  // Tracers outlive their simulations: spans are exported after the
  // loop, once every scenario has drained.
  std::vector<std::unique_ptr<trace::Tracer>> tracers;
  std::vector<trace::TraceProcess> processes;
  std::vector<std::pair<std::string, trace::CriticalPath>> paths;

  for (const UseCase& uc : use_cases()) {
    util::TimeNs converged = 0, siloed_time = 0;
    util::Bytes staged = 0;
    {
      sim::Simulation sim;
      core::Platform platform(sim);
      trace::Tracer* tracer = nullptr;
      if (tracing) {
        tracers.push_back(std::make_unique<trace::Tracer>(sim));
        tracer = tracers.back().get();
        platform.set_tracer(tracer);
      }
      uc.stage(platform.catalog());
      platform.run_workflow(uc.build(),
                            [&](const workflow::WorkflowResult& r) {
                              converged = r.success ? r.duration : -1;
                            });
      sim.run();
      if (tracer) {
        tracer->close_open_spans();
        processes.push_back(
            trace::TraceProcess{"t1/" + uc.name + " converged", tracer});
        for (trace::SpanId root : trace::root_spans(*tracer)) {
          // The workflow run is the only root with children.
          if (tracer->span(root).name == "wf.run") {
            paths.emplace_back(uc.name, trace::critical_path(*tracer, root));
            break;
          }
        }
      }
    }
    {
      sim::Simulation sim;
      core::SiloedPlatform silos(sim);
      uc.stage(silos.bigdata_catalog());
      silos.run_workflow(uc.build(), [&](const workflow::WorkflowResult& r) {
        siloed_time = r.success ? r.duration : -1;
      });
      sim.run();
      staged = silos.staged_bytes();
    }
    table.add_row({uc.name, util::human_time(converged),
                   util::human_time(siloed_time), util::human_bytes(staged),
                   util::fixed(static_cast<double>(siloed_time) /
                                   static_cast<double>(converged),
                               2) +
                       "x"});
    report.set(uc.name + "_converged_ns", converged);
    report.set(uc.name + "_siloed_ns", siloed_time);
    report.set(uc.name + "_staged_bytes", staged);
  }
  table.print();
  std::cout << "\nShape check: converged < siloed on every use case; the gap"
               "\ngrows with the volume of cross-silo data staged.\n";

  if (tracing) {
    std::cout << "\n";
    trace::critical_path_table(
        "T1 critical path: end-to-end latency by layer (converged)", paths)
        .print();
    std::cout << "\nwrote " << trace::write_chrome_trace("t1_endtoend",
                                                         processes)
              << "\n";
    for (const auto& [name, path] : paths) {
      trace::report_critical_path(report, name, path);
    }
  }
  if (core::json_mode(argc, argv)) {
    std::cout << "wrote " << report.write() << "\n";
  }
  return 0;
}
