// F10 — Cluster-wide fault injection and end-to-end recovery.
//
// One converged testbed (8 compute + 4 storage nodes) runs dataflow
// jobs, HPC gang jobs, and a replicated object store while a
// FaultInjector kills and restores nodes on a fixed schedule plus a
// seeded MTBF/MTTR process. Three scenarios compare the cost of
// failures and the value of the recovery machinery:
//
//   fault-free    no failures (the reference makespan)
//   recovery-on   task retries, background re-replication, checkpointed
//                 HPC restarts
//   recovery-off  lost tasks fail their job, no repair, HPC restarts
//                 from scratch
//
// `--json` writes BENCH_f10_faults.json for cross-PR tracking.
// `--trace` span-traces all three scenarios into TRACE_f10_faults.json
// (Perfetto / chrome://tracing), showing retries, re-replication and
// gang restarts as they interleave with the fault schedule.
#include <algorithm>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "dataflow/engine.hpp"
#include "fault/fault_injector.hpp"
#include "fault/wiring.hpp"
#include "hpc/batch_queue.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "util/strings.hpp"
#include "util/types.hpp"

using namespace evolve;

namespace {

constexpr int kComputeNodes = 8;
constexpr int kStorageNodes = 4;
constexpr int kDataflowJobs = 3;
constexpr int kHpcJobs = 4;
constexpr int kColdObjects = 32;

dataflow::LogicalPlan scan_aggregate(const std::string& in,
                                     const std::string& out) {
  dataflow::LogicalPlan plan;
  const int src = plan.add_source(in);
  const int mapped = plan.add_map(src, "parse", 0.8, 0.5);
  const int reduced = plan.add_reduce_by_key(mapped, "agg", 8, 0.05);
  plan.add_sink(reduced, out);
  return plan;
}

struct ScenarioResult {
  std::string name;
  double makespan_s = 0;
  int jobs_ok = 0;
  int jobs_failed = 0;
  std::int64_t tasks_killed = 0;
  std::int64_t tasks_reexecuted = 0;
  std::int64_t outputs_lost = 0;
  std::int64_t task_retries = 0;
  double resched_p50_ms = 0;
  double resched_p95_ms = 0;
  std::int64_t hpc_restarts = 0;
  std::int64_t gang_aborts = 0;
  double hpc_work_lost_s = 0;
  double underrep_obj_s = 0;
  std::int64_t objects_repaired = 0;
  std::int64_t degraded_reads = 0;
  std::int64_t lost_objects = 0;
  std::int64_t failures_injected = 0;
  double downtime_node_s = 0;
};

ScenarioResult run_scenario(const std::string& name, bool faults,
                            bool recovery,
                            std::unique_ptr<trace::Tracer>* tracer_out) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(kComputeNodes, kStorageNodes, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  storage::IoSubsystem io(sim, cluster);

  storage::ObjectStoreConfig sconfig;
  sconfig.replicas = 2;
  sconfig.repair = recovery;
  sconfig.repair_delay = util::millis(200);
  storage::ObjectStore store(sim, cluster, fabric, io,
                             cluster.nodes_with_label("role=storage"),
                             sconfig);
  storage::DatasetCatalog catalog(store);

  dataflow::DataflowConfig dconfig;
  dconfig.fault_recovery = recovery;
  dconfig.max_task_retries = 4;
  dconfig.retry_backoff = util::millis(100);
  dataflow::DataflowEngine engine(sim, cluster, fabric, io, catalog, dconfig);

  hpc::BatchFaultConfig hpc_fault;
  if (recovery) {
    hpc_fault.checkpoint_interval = util::millis(500);
    hpc_fault.restart_cost = util::millis(100);
  }
  hpc::BatchQueue queue(sim, kComputeNodes, hpc::QueuePolicy::kEasyBackfill, 0,
                        hpc_fault);

  const auto compute = cluster.nodes_with_label("role=compute");
  const auto storage_nodes = cluster.nodes_with_label("role=storage");

  fault::FaultInjector injector(sim, fault::FaultInjectorConfig{0xf10});
  fault::connect(injector, engine);
  fault::connect(injector, store);
  fault::connect(injector, queue, compute);

  std::unique_ptr<trace::Tracer> tracer;
  if (tracer_out) {
    tracer = std::make_unique<trace::Tracer>(sim);
    fabric.set_tracer(tracer.get());
    store.set_tracer(tracer.get());
    engine.set_tracer(tracer.get());
    queue.set_tracer(tracer.get());
  }

  // -- Workload: cold objects, dataflow jobs, HPC gangs ----------------
  store.create_bucket("cold");
  for (int i = 0; i < kColdObjects; ++i) {
    store.preload({"cold", "obj-" + std::to_string(i)}, 8 * util::kMiB);
  }

  ScenarioResult result;
  result.name = name;
  util::TimeNs last_finish = 0;

  std::vector<dataflow::ExecutorSpec> executors;
  for (auto node : compute) executors.push_back({node, 4});
  for (int j = 0; j < kDataflowJobs; ++j) {
    const std::string in = "in" + std::to_string(j);
    catalog.define(storage::DatasetSpec{in, 16, 256 * util::kMiB});
    catalog.preload(in);
    sim.at(util::millis(200) * j, [&, j, in] {
      engine.run(scan_aggregate(in, "out" + std::to_string(j)), executors,
                 [&](const dataflow::JobStats& s) {
                   s.failed ? ++result.jobs_failed : ++result.jobs_ok;
                   result.tasks_killed += s.tasks_killed;
                   result.tasks_reexecuted += s.tasks_reexecuted;
                   result.outputs_lost += s.map_outputs_lost;
                   result.task_retries += s.task_retries;
                   last_finish = std::max(last_finish, sim.now());
                 });
    });
  }
  for (int j = 0; j < kHpcJobs; ++j) {
    hpc::HpcJobSpec spec;
    spec.name = "gang-" + std::to_string(j);
    spec.nodes = 3;
    spec.runtime = util::seconds(2);
    spec.walltime = util::seconds(6);
    queue.submit(spec, {}, [&](hpc::JobId) {
      last_finish = std::max(last_finish, sim.now());
    });
  }

  // -- Fault plan: fixed outages plus a seeded MTBF/MTTR tail ----------
  if (faults) {
    injector.schedule_outage(compute[1], util::millis(800), util::millis(1500));
    injector.schedule_outage(compute[4], util::millis(2500), util::seconds(2));
    injector.schedule_outage(storage_nodes[0], util::seconds(1),
                             util::seconds(3));
    injector.schedule_outage(storage_nodes[1], util::seconds(6),
                             util::seconds(2));
    injector.random_process({compute[5], compute[6], compute[7]},
                            /*mtbf_s=*/15.0, /*mttr_s=*/1.5, util::seconds(8));
  }

  sim.run();

  result.makespan_s = util::to_seconds(last_finish);
  if (engine.metrics().has_histogram("reschedule_latency_ms")) {
    const auto& h = engine.metrics().histogram("reschedule_latency_ms");
    result.resched_p50_ms = static_cast<double>(h.p50());
    result.resched_p95_ms = static_cast<double>(h.p95());
  }
  result.hpc_restarts = queue.metrics().counter("jobs_restarted");
  result.gang_aborts = queue.metrics().counter("gang_aborts");
  if (queue.metrics().has_histogram("work_lost_ms")) {
    const auto& h = queue.metrics().histogram("work_lost_ms");
    result.hpc_work_lost_s = h.mean() * static_cast<double>(h.count()) / 1e3;
  }
  result.underrep_obj_s = store.under_replicated_object_seconds();
  result.objects_repaired = store.metrics().counter("objects_repaired");
  result.degraded_reads = store.metrics().counter("degraded_reads");
  result.lost_objects = store.lost_objects();
  result.failures_injected = injector.failures_injected();
  result.downtime_node_s = injector.downtime_node_seconds();
  if (tracer) {
    tracer->close_open_spans();
    *tracer_out = std::move(tracer);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool tracing = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) tracing = true;
  }
  std::unique_ptr<trace::Tracer> base_tr, rec_tr, off_tr;
  const ScenarioResult base =
      run_scenario("fault-free", false, true, tracing ? &base_tr : nullptr);
  const ScenarioResult rec =
      run_scenario("recovery-on", true, true, tracing ? &rec_tr : nullptr);
  const ScenarioResult off =
      run_scenario("recovery-off", true, false, tracing ? &off_tr : nullptr);

  core::Table table("F10: node failures across dataflow + HPC + storage",
                    {"scenario", "makespan", "jobs ok/fail", "killed",
                     "re-exec", "retries", "resched p95", "hpc restarts",
                     "work lost"});
  auto row = [&](const ScenarioResult& r) {
    table.add_row({r.name, util::fixed(r.makespan_s, 2) + " s",
                   std::to_string(r.jobs_ok) + "/" +
                       std::to_string(r.jobs_failed),
                   std::to_string(r.tasks_killed),
                   std::to_string(r.tasks_reexecuted),
                   std::to_string(r.task_retries),
                   util::fixed(r.resched_p95_ms, 0) + " ms",
                   std::to_string(r.hpc_restarts),
                   util::fixed(r.hpc_work_lost_s, 1) + " s"});
  };
  row(base);
  row(rec);
  row(off);
  table.print();

  core::Table stores("F10b: storage degradation and repair",
                     {"scenario", "underrep obj-s", "repaired",
                      "degraded reads", "lost", "node downtime"});
  auto srow = [&](const ScenarioResult& r) {
    stores.add_row({r.name, util::fixed(r.underrep_obj_s, 1),
                    std::to_string(r.objects_repaired),
                    std::to_string(r.degraded_reads),
                    std::to_string(r.lost_objects),
                    util::fixed(r.downtime_node_s, 1) + " node-s"});
  };
  srow(base);
  srow(rec);
  srow(off);
  std::cout << "\n";
  stores.print();
  std::cout << "\nShape check: recovery-on completes every job despite "
            << rec.failures_injected
            << " injected failures; recovery-off loses jobs and leaves "
               "objects under-replicated for the rest of the run.\n";

  core::MetricsReport report("f10_faults");
  auto emit = [&](const std::string& prefix, const ScenarioResult& r) {
    report.set(prefix + "_makespan_s", r.makespan_s);
    report.set(prefix + "_jobs_ok", static_cast<std::int64_t>(r.jobs_ok));
    report.set(prefix + "_jobs_failed",
               static_cast<std::int64_t>(r.jobs_failed));
    report.set(prefix + "_tasks_killed", r.tasks_killed);
    report.set(prefix + "_tasks_reexecuted", r.tasks_reexecuted);
    report.set(prefix + "_map_outputs_lost", r.outputs_lost);
    report.set(prefix + "_task_retries", r.task_retries);
    report.set(prefix + "_reschedule_p50_ms", r.resched_p50_ms);
    report.set(prefix + "_reschedule_p95_ms", r.resched_p95_ms);
    report.set(prefix + "_hpc_restarts", r.hpc_restarts);
    report.set(prefix + "_hpc_gang_aborts", r.gang_aborts);
    report.set(prefix + "_hpc_work_lost_s", r.hpc_work_lost_s);
    report.set(prefix + "_under_replicated_object_s", r.underrep_obj_s);
    report.set(prefix + "_objects_repaired", r.objects_repaired);
    report.set(prefix + "_degraded_reads", r.degraded_reads);
    report.set(prefix + "_objects_lost", r.lost_objects);
    report.set(prefix + "_failures_injected", r.failures_injected);
    report.set(prefix + "_downtime_node_s", r.downtime_node_s);
  };
  emit("baseline", base);
  emit("recovery", rec);
  emit("norecovery", off);
  report.set("recovery_makespan_overhead",
             base.makespan_s > 0 ? rec.makespan_s / base.makespan_s : 0.0);

  if (tracing) {
    std::cout << "wrote "
              << trace::write_chrome_trace(
                     "f10_faults",
                     {{"f10/fault-free", base_tr.get()},
                      {"f10/recovery-on", rec_tr.get()},
                      {"f10/recovery-off", off_tr.get()}})
              << "\n";
  }
  if (core::json_mode(argc, argv)) {
    std::cout << "wrote " << report.write() << "\n";
  }
  return 0;
}
