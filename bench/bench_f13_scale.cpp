// F13 — Kernel at scale: 1k -> 100k simulated node actors, 1M -> 20M
// events, driven through both event-queue kernels (hierarchical-wheel
// calendar queue with SmallFn callbacks vs the pre-calendar binary heap
// with std::function callbacks, preserved as sim::RefEventQueue).
//
// The workload is the kernel's worst honest case: per-node random
// ticks (~10ms mean), a cancel-heavy timeout that every tick re-arms
// (5-80ms out, so cancelled entries churn through the wheel bands), rare
// far-future timeouts (+30s, exercising the far heap), and same-time
// defer bursts (exercising the FIFO tie-break). Callback captures are
// ~40 bytes: inline for SmallFn, a heap allocation per event for
// std::function.
//
// Both engines execute the same RNG-driven event stream; an FNV-1a
// checksum over (time, node, kind) of every executed event proves it.
// Reports events/sec and wall-time per simulated hour; `--json` writes
// BENCH_f13_scale.json for the check.sh regression gate. Checksums,
// event counts, and end times are deterministic columns; wall-clock
// columns are host timing.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "sim/event_queue.hpp"
#include "sim/ref_event_queue.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/types.hpp"

using namespace evolve;

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

struct ScaleResult {
  double wall_s = 0;
  std::uint64_t executed = 0;
  std::uint64_t pushes = 0;
  std::uint64_t cancels = 0;
  std::uint64_t checksum = kFnvOffset;
  // Checksum snapshot after `partial_at` executed events (0 = unused);
  // lets a truncated reference run be compared against a full run.
  std::uint64_t partial_checksum = 0;
  util::TimeNs end_time = 0;
};

/// One simulated run: `nodes` actors, stop after `budget` executed
/// events. Queue is sim::EventQueue or sim::RefEventQueue; both expose
/// push/cancel/pop/empty with identical semantics.
template <typename Queue>
ScaleResult run_scale(int nodes, std::uint64_t budget,
                      std::uint64_t partial_at) {
  Queue queue;
  util::Rng rng(0xf13c0de ^ static_cast<std::uint64_t>(nodes));
  ScaleResult r;
  util::TimeNs now = 0;
  // Pending re-armable timeout per node (0 = none).
  std::vector<std::uint64_t> pending(static_cast<std::size_t>(nodes), 0);

  // The tick closure captures the driver pointers plus a 3-word salt so
  // the capture is ~40 bytes — inline for SmallFn, heap for std::function.
  struct Ctx {
    Queue* queue;
    util::Rng* rng;
    ScaleResult* r;
    util::TimeNs* now;
    std::vector<std::uint64_t>* pending;
    int nodes;
  };
  Ctx ctx{&queue, &rng, &r, &now, &pending, nodes};

  struct TickFn {
    Ctx* c;
    int node;
    std::uint64_t salt[3];

    void operator()() const {
      Ctx& ctx = *c;
      ScaleResult& r = *ctx.r;
      const util::TimeNs now = *ctx.now;
      r.checksum = (r.checksum ^ (static_cast<std::uint64_t>(now) * 3 +
                                  static_cast<std::uint64_t>(node))) *
                   kFnvPrime;
      // Re-arm this node's timeout: cancel the old one, push a new one
      // 5-80ms out (cancel-heavy wheel churn).
      auto& pending = (*ctx.pending)[static_cast<std::size_t>(node)];
      if (pending != 0 && ctx.queue->cancel(pending)) ++r.cancels;
      const util::TimeNs timeout_at =
          now + util::millis(5) +
          static_cast<util::TimeNs>(ctx.rng->uniform_int(0, 75'000'000));
      pending = ctx.queue->push(
          timeout_at, TimeoutFn{c, node, {salt[0] + 1, salt[1], salt[2]}});
      ++r.pushes;
      // Rare far-future work: lands past the wheel horizon.
      if (ctx.rng->uniform_int(0, 63) == 0) {
        ctx.queue->push(now + util::seconds(30),
                        TimeoutFn{c, node, {salt[0], salt[1] + 7, salt[2]}});
        ++r.pushes;
      }
      // Same-time defer burst: exercises the (time, seq) FIFO tie-break.
      if (ctx.rng->uniform_int(0, 7) == 0) {
        ctx.queue->push(now, BurstFn{c, node, {salt[0], salt[1], salt[2]}});
        ++r.pushes;
      }
      // Next tick: uniform 1ns-20ms (~10ms mean). Uniform rather than
      // exponential so the driver's per-event cost has no log() call —
      // shared driver work dilutes the kernel comparison.
      const auto dt =
          static_cast<util::TimeNs>(ctx.rng->uniform_int(1, 20'000'000));
      ctx.queue->push(now + dt, TickFn{c, node, {salt[0] ^ 0x9e37,
                                                 salt[1] + 1, salt[2]}});
      ++r.pushes;
    }

    struct TimeoutFn {
      Ctx* c;
      int node;
      std::uint64_t salt[3];
      void operator()() const {
        ScaleResult& r = *c->r;
        r.checksum = (r.checksum ^ (static_cast<std::uint64_t>(*c->now) * 5 +
                                    static_cast<std::uint64_t>(node))) *
                     kFnvPrime;
        auto& pending = (*c->pending)[static_cast<std::size_t>(node)];
        pending = 0;  // fired; the next tick arms a fresh one
      }
    };
    struct BurstFn {
      Ctx* c;
      int node;
      std::uint64_t salt[3];
      void operator()() const {
        ScaleResult& r = *c->r;
        r.checksum = (r.checksum ^ (static_cast<std::uint64_t>(*c->now) * 7 +
                                    static_cast<std::uint64_t>(node))) *
                     kFnvPrime;
      }
    };
  };

  for (int n = 0; n < nodes; ++n) {
    const auto start =
        static_cast<util::TimeNs>(rng.uniform_int(1, 20'000'000));
    queue.push(start, TickFn{&ctx, n, {static_cast<std::uint64_t>(n), 0, 0}});
    ++r.pushes;
  }

  const auto begin = std::chrono::steady_clock::now();
  while (r.executed < budget && !queue.empty()) {
    auto ev = queue.pop();
    now = ev.time;
    ev.fn();
    ++r.executed;
    if (r.executed == partial_at) r.partial_checksum = r.checksum;
  }
  const auto end = std::chrono::steady_clock::now();
  r.wall_s = std::chrono::duration<double>(end - begin).count();
  r.end_time = now;
  return r;
}

std::string hex_of(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string label_of(int nodes) {
  if (nodes % 1000 == 0) return std::to_string(nodes / 1000) + "k";
  return std::to_string(nodes);
}

double events_per_sec(const ScaleResult& r) {
  return r.wall_s > 0 ? static_cast<double>(r.executed) / r.wall_s : 0.0;
}

double wall_per_sim_hour(const ScaleResult& r) {
  const double sim_s = util::to_seconds(r.end_time);
  return sim_s > 0 ? r.wall_s * 3600.0 / sim_s : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  struct Point {
    int nodes;
    std::uint64_t events;
    std::uint64_t ref_events;  // reference run budget (may be truncated)
  };
  std::vector<Point> points;
  if (quick) {
    points = {{1'000, 200'000, 200'000}};
  } else {
    points = {{1'000, 1'000'000, 1'000'000},
              {10'000, 5'000'000, 5'000'000},
              {100'000, 20'000'000, 2'000'000}};
  }

  core::Table table("F13: kernel scale sweep, calendar queue vs binary heap",
                    {"nodes", "engine", "events", "wall", "events/sec",
                     "wall/sim-hour", "checksum"});
  core::MetricsReport report("f13_scale");
  report.set("quick", quick ? 1 : 0);

  double speedup_10k = 0;
  for (const Point& p : points) {
    const std::string label = label_of(p.nodes);
    const bool truncated = p.ref_events < p.events;
    const std::uint64_t partial_at = truncated ? p.ref_events : 0;

    const ScaleResult cal =
        run_scale<sim::EventQueue>(p.nodes, p.events, partial_at);
    const ScaleResult ref =
        run_scale<sim::RefEventQueue>(p.nodes, p.ref_events, 0);

    const std::uint64_t cal_cmp =
        truncated ? cal.partial_checksum : cal.checksum;
    const bool match = cal_cmp == ref.checksum;
    const double cal_eps = events_per_sec(cal);
    const double ref_eps = events_per_sec(ref);
    const double speedup = ref_eps > 0 ? cal_eps / ref_eps : 0.0;
    if (p.nodes == 10'000) speedup_10k = speedup;

    table.add_row({label, "calendar", std::to_string(cal.executed),
                   util::fixed(cal.wall_s * 1e3, 0) + " ms",
                   util::fixed(cal_eps / 1e6, 2) + "M",
                   util::fixed(wall_per_sim_hour(cal), 1) + " s",
                   hex_of(cal.checksum)});
    table.add_row({label, "binary-heap", std::to_string(ref.executed),
                   util::fixed(ref.wall_s * 1e3, 0) + " ms",
                   util::fixed(ref_eps / 1e6, 2) + "M",
                   util::fixed(wall_per_sim_hour(ref), 1) + " s",
                   hex_of(ref.checksum)});

    // Deterministic columns (identical on every host).
    report.set("cal_" + label + "_events",
               static_cast<std::int64_t>(cal.executed));
    report.set("cal_" + label + "_pushes",
               static_cast<std::int64_t>(cal.pushes));
    report.set("cal_" + label + "_cancels",
               static_cast<std::int64_t>(cal.cancels));
    report.set("cal_" + label + "_checksum",
               static_cast<std::int64_t>(cal.checksum));
    report.set("cal_" + label + "_end_time_ns",
               static_cast<std::int64_t>(cal.end_time));
    report.set("ref_" + label + "_events",
               static_cast<std::int64_t>(ref.executed));
    report.set("ref_" + label + "_checksum",
               static_cast<std::int64_t>(ref.checksum));
    report.set("match_" + label, match ? 1 : 0);
    // Host-timing columns (filtered out of bit-identity diffs).
    report.set("cal_" + label + "_wall_s", cal.wall_s);
    report.set("cal_" + label + "_events_per_sec", cal_eps);
    report.set("cal_" + label + "_wall_per_sim_hour_s",
               wall_per_sim_hour(cal));
    report.set("ref_" + label + "_wall_s", ref.wall_s);
    report.set("ref_" + label + "_events_per_sec", ref_eps);
    report.set("speedup_" + label, speedup);

    if (!match) {
      std::cout << "ERROR: engine checksums diverge at " << label
                << " nodes\n";
      return 1;
    }
  }
  table.print();
  if (!quick) {
    std::cout << "\nSpeedup at the 10k-node point (calendar vs binary heap): "
              << util::fixed(speedup_10k, 2) << "x\n";
  }
  std::cout << "Shape check: per-point checksums match across engines (same "
               "executed event stream); events/sec should stay roughly flat "
               "from 1k to 100k nodes for the calendar queue.\n";

  if (core::json_mode(argc, argv)) {
    std::cout << "wrote " << report.write() << "\n";
  }
  return 0;
}
