// T2 — Component micro-benchmarks: object-store GET/PUT latency by
// object size and serving tier, pod placement latency, and small-message
// collective latency. The paper's testbed-description table.
#include <iostream>

#include "core/platform.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "util/strings.hpp"

using namespace evolve;

namespace {

util::TimeNs time_get(core::Platform& platform, const storage::ObjectKey& key,
                      cluster::NodeId client) {
  util::TimeNs start = platform.sim().now();
  util::TimeNs done = -1;
  platform.store().get(client, key,
                       [&](const storage::GetResult&) {
                         done = platform.sim().now();
                       });
  platform.sim().run();
  return done - start;
}

}  // namespace

int main() {
  sim::Simulation sim;
  core::Platform platform(sim);

  // --- Object store GET latency by size and tier ----------------------
  core::Table get_table("T2a: object GET latency (remote client)",
                        {"size", "hdd (cold)", "dram (hot)"});
  platform.store().create_bucket("micro");
  for (util::Bytes size : {4 * util::kKiB, 64 * util::kKiB, util::kMiB,
                           16 * util::kMiB, 256 * util::kMiB}) {
    const storage::ObjectKey key{"micro", "obj-" + std::to_string(size)};
    platform.store().preload(key, size, /*warm_cache=*/false);
    const auto cold = time_get(platform, key, 0);   // from HDD
    const auto hot = time_get(platform, key, 0);    // now cached in DRAM
    get_table.add_row({util::human_bytes(size), util::human_time(cold),
                       util::human_time(hot)});
  }
  get_table.print();

  // --- PUT latency (replicated) ---------------------------------------
  core::Table put_table("T2b: object PUT latency (R=2 replication)",
                        {"size", "latency"});
  for (util::Bytes size : {4 * util::kKiB, util::kMiB, 64 * util::kMiB}) {
    const storage::ObjectKey key{"micro", "put-" + std::to_string(size)};
    const util::TimeNs start = sim.now();
    util::TimeNs done = -1;
    platform.store().put(0, key, size, [&] { done = sim.now(); });
    sim.run();
    put_table.add_row({util::human_bytes(size), util::human_time(done - start)});
  }
  std::cout << "\n";
  put_table.print();

  // --- Scheduler placement latency ------------------------------------
  core::Table sched_table("T2c: pod scheduling latency (idle cluster)",
                          {"metric", "value"});
  {
    orch::PodSpec pod;
    pod.name = "probe";
    pod.request = cluster::cpu_mem(1000, util::kGiB);
    util::TimeNs submit = sim.now(), started = -1;
    platform.orchestrator().submit(pod, 0, [&](orch::PodId, cluster::NodeId) {
      started = sim.now();
    });
    sim.run();
    sched_table.add_row({"submit -> running", util::human_time(started - submit)});
    sched_table.add_row(
        {"scheduling pass interval",
         util::human_time(orch::OrchestratorConfig{}.scheduling_interval)});
    sched_table.add_row(
        {"bind (image pull + start)",
         util::human_time(orch::OrchestratorConfig{}.bind_latency)});
  }
  std::cout << "\n";
  sched_table.print();

  // --- Collective small-message latency -------------------------------
  core::Table coll_table("T2d: 1 KiB collective latency (8 ranks)",
                         {"collective", "latency"});
  {
    std::vector<cluster::NodeId> ranks;
    for (int i = 0; i < 8; ++i) ranks.push_back(i);
    hpc::Communicator comm(sim, platform.fabric(), ranks);
    for (auto [name, algo] :
         {std::pair{"allreduce/tree", hpc::CollectiveAlgo::kTree},
          std::pair{"allreduce/recursive-doubling",
                    hpc::CollectiveAlgo::kRecursiveDoubling},
          std::pair{"allreduce/ring", hpc::CollectiveAlgo::kRing}}) {
      const util::TimeNs start = sim.now();
      util::TimeNs done = -1;
      comm.allreduce(util::kKiB, algo, [&] { done = sim.now(); });
      sim.run();
      coll_table.add_row({name, util::human_time(done - start)});
    }
    const util::TimeNs start = sim.now();
    util::TimeNs done = -1;
    comm.barrier([&] { done = sim.now(); });
    sim.run();
    coll_table.add_row({"barrier", util::human_time(done - start)});
  }
  std::cout << "\n";
  coll_table.print();
  return 0;
}
