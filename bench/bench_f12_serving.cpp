// F12 — Request serving: batching, load balancing, shedding, autoscaling.
//
// Four scenarios drive the request-serving subsystem end to end
// (open-loop Poisson arrivals -> admission -> router -> fabric ->
// bounded replica queue -> dynamic batch -> response), each as an
// on/off comparison so every mechanism's contribution is measurable:
//
//   steady     4 replicas at 600 req/s, where per-batch setup dominates
//              per-request cost. Dynamic batching on (max 8) vs off
//              (batch=1): amortizing setup is the difference between
//              keeping up and collapsing.
//   slow       6 replicas, one on a 4x gray-slowed node, at ~60% load.
//              Round-robin keeps feeding the straggler; power-of-two-
//              choices reads its outstanding depth and routes around
//              it; hedging additionally rescues the requests already
//              stuck there.
//   spike      3 replicas, a 6x arrival spike for 4 s. CoDel-style
//              admission shedding on vs off: shedding rejects the
//              overflow at the front door and keeps the *admitted* p99
//              inside the SLO; without it every queue fills and the
//              tail blows through the SLO before queue-full sheds kick
//              in anyway.
//   autoscale  2..12 replicas under a 20 s surge, scaled by the
//              latency-aware ScalingSignal (windowed arrival rate
//              inflated by p99 queue-delay pressure, plus an in-flight
//              backlog floor) driving the HorizontalAutoscaler.
//
// `--json` writes BENCH_f12_serving.json (fully simulation-
// deterministic); `--trace` additionally writes TRACE_f12_serving.json
// with serve.request / serve.queue / serve.batch / serve.exec /
// serve.hedge spans and must not change any metric.
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "fault/gray.hpp"
#include "fault/wiring.hpp"
#include "net/fabric.hpp"
#include "orch/autoscaler.hpp"
#include "orch/controllers.hpp"
#include "orch/scheduler.hpp"
#include "serve/generator.hpp"
#include "serve/service.hpp"
#include "serve/signal.hpp"
#include "sim/simulation.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "util/strings.hpp"
#include "util/types.hpp"

using namespace evolve;

namespace {

struct RunResult {
  std::int64_t arrived = 0;
  std::int64_t completed = 0;
  std::int64_t shed_admission = 0;
  std::int64_t shed_queue_full = 0;
  std::int64_t slo_violations = 0;
  std::int64_t goodput = 0;  // completed within SLO
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double mean_batch = 0;  // batch occupancy
  std::int64_t hedges = 0;
  std::int64_t hedge_wins = 0;
  std::int64_t hedges_cancelled = 0;
  std::int64_t wasted_exec = 0;
  std::int64_t rerouted = 0;
  std::int64_t flows_leaked = 0;
  // autoscale only
  int peak_replicas = 0;
  int final_replicas = 0;
  std::int64_t scale_ups = 0;
  std::int64_t scale_downs = 0;
};

void snapshot(const serve::Service& svc, RunResult* out) {
  const metrics::Registry& m = svc.metrics();
  out->arrived = m.counter("serve.requests");
  out->completed = m.counter("serve.completed");
  out->shed_admission = m.counter("serve.shed_admission");
  out->shed_queue_full = m.counter("serve.shed_queue_full");
  out->slo_violations = m.counter("serve.slo_violations");
  out->goodput = out->completed - out->slo_violations;
  if (m.has_histogram("serve.latency_us")) {
    const auto& h = m.histogram("serve.latency_us");
    out->p50_ms = static_cast<double>(h.p50()) / 1e3;
    out->p99_ms = static_cast<double>(h.p99()) / 1e3;
    out->p999_ms = static_cast<double>(h.p999()) / 1e3;
  }
  if (m.has_histogram("serve.batch_size")) {
    out->mean_batch = m.histogram("serve.batch_size").mean();
  }
  out->hedges = svc.hedges_launched();
  out->hedge_wins = svc.hedge_wins();
  out->hedges_cancelled = svc.hedges_cancelled();
  out->wasted_exec = svc.wasted_exec();
  out->rerouted = svc.rerouted();
}

// -- Scenario A: steady state, batching on/off ------------------------

RunResult run_steady(bool batching,
                     std::unique_ptr<trace::Tracer>* tracer_out) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(4, 2, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  orch::Orchestrator orch(sim, cluster,
                          orch::SchedulingPolicy::spreading(cluster));
  orch::PodSpec pod;
  pod.name = "api";
  pod.request = cluster::cpu_mem(2000, 4 * util::kGiB);
  pod.anti_affinity_group = "api";  // one replica per node
  orch::DeploymentController deploy(orch, "api", pod, 4);

  // Setup-heavy classes: 6 ms per batch, 1.5 ms per request. batch=1
  // gives 7.5 ms/request (133 req/s/replica, 533 aggregate — short of
  // the 600 req/s offered); batch=8 amortizes to 2.25 ms (444
  // req/s/replica).
  std::vector<serve::RequestClass> classes(2);
  classes[0].name = "rank";
  classes[0].tenant = "alpha";
  classes[1].name = "embed";
  classes[1].tenant = "beta";
  for (auto& klass : classes) {
    klass.compute_cost = util::millis(1.5);
    klass.batch_setup = util::millis(6);
    klass.slo = util::millis(100);
  }

  serve::ServiceConfig config;
  config.policy = serve::BalancePolicy::kPowerOfTwo;
  config.replica.queue_limit = 64;
  config.replica.batch.max_batch = batching ? 8 : 1;
  config.replica.batch.max_linger = util::millis(1);
  serve::Service service(sim, fabric, deploy, classes, config);

  std::unique_ptr<trace::Tracer> tracer;
  if (tracer_out) {
    tracer = std::make_unique<trace::Tracer>(sim);
    fabric.set_tracer(tracer.get());
    service.set_tracer(tracer.get());
  }

  serve::GeneratorConfig gen;
  gen.phases = {{util::seconds(10), 600.0}};
  gen.class_weights = {0.7, 0.3};
  gen.clients = cluster.nodes_with_label("role=storage");
  gen.horizon = util::seconds(10);
  gen.seed = 0xf12a;
  serve::RequestGenerator generator(sim, gen, service.sink());
  generator.start();

  sim.run();

  RunResult result;
  snapshot(service, &result);
  result.flows_leaked = fabric.stats().flows_in_flight;
  if (tracer) {
    tracer->close_open_spans();
    *tracer_out = std::move(tracer);
  }
  return result;
}

// -- Scenario B: slow replica, routing policy + hedging ---------------

RunResult run_slow_replica(serve::BalancePolicy policy, bool hedging,
                           std::unique_ptr<trace::Tracer>* tracer_out) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(6, 2, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  orch::Orchestrator orch(sim, cluster,
                          orch::SchedulingPolicy::spreading(cluster));
  orch::PodSpec pod;
  pod.name = "api";
  pod.request = cluster::cpu_mem(2000, 4 * util::kGiB);
  pod.anti_affinity_group = "api";
  orch::DeploymentController deploy(orch, "api", pod, 6);

  std::vector<serve::RequestClass> classes(1);
  classes[0].name = "rank";
  classes[0].compute_cost = util::millis(2);
  classes[0].batch_setup = util::millis(2);
  classes[0].slo = util::millis(100);

  serve::ServiceConfig config;
  config.policy = policy;
  config.replica.queue_limit = 64;
  config.replica.batch.max_batch = 4;
  config.replica.batch.max_linger = util::micros(500);
  config.hedging = hedging;
  serve::Service service(sim, fabric, deploy, classes, config);

  // One replica's node runs 4x slower from 1 s on: 16 ms per singleton
  // batch against a 6.7 ms per-replica arrival budget.
  const auto compute = cluster.nodes_with_label("role=compute");
  fault::GrayInjector gray(sim);
  fault::connect(gray, service);
  gray.schedule_slow_node(compute[0], /*cpu=*/4.0, /*accel=*/1.0,
                          util::seconds(1), util::seconds(60));

  std::unique_ptr<trace::Tracer> tracer;
  if (tracer_out) {
    tracer = std::make_unique<trace::Tracer>(sim);
    fabric.set_tracer(tracer.get());
    service.set_tracer(tracer.get());
    gray.set_tracer(tracer.get());
  }

  serve::GeneratorConfig gen;
  gen.phases = {{util::seconds(10), 900.0}};
  gen.clients = cluster.nodes_with_label("role=storage");
  gen.horizon = util::seconds(10);
  gen.seed = 0xf12b;
  serve::RequestGenerator generator(sim, gen, service.sink());
  generator.start();

  sim.run();

  RunResult result;
  snapshot(service, &result);
  result.flows_leaked = fabric.stats().flows_in_flight;
  if (tracer) {
    tracer->close_open_spans();
    *tracer_out = std::move(tracer);
  }
  return result;
}

// -- Scenario C: arrival spike, admission shedding on/off -------------

RunResult run_spike(bool shedding) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(3, 2, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  orch::Orchestrator orch(sim, cluster,
                          orch::SchedulingPolicy::spreading(cluster));
  orch::PodSpec pod;
  pod.name = "api";
  pod.request = cluster::cpu_mem(2000, 4 * util::kGiB);
  pod.anti_affinity_group = "api";
  orch::DeploymentController deploy(orch, "api", pod, 3);

  std::vector<serve::RequestClass> classes(1);
  classes[0].name = "rank";
  classes[0].compute_cost = util::millis(1.5);
  classes[0].batch_setup = util::millis(6);
  classes[0].slo = util::millis(100);

  serve::ServiceConfig config;
  config.policy = serve::BalancePolicy::kPowerOfTwo;
  config.replica.queue_limit = 128;
  config.replica.batch.max_batch = 8;
  config.replica.batch.max_linger = util::millis(1);
  config.admission.enabled = shedding;
  // Queueing may eat 15 ms of the 100 ms SLO; a 15 ms confirmation
  // interval engages the ramp before the bounded queues can build a
  // standing backlog that would itself blow the budget.
  config.admission.target = util::millis(15);
  config.admission.interval = util::millis(15);
  serve::Service service(sim, fabric, deploy, classes, config);

  // 300 req/s baseline, 1800 req/s spike for 4 s against ~1333 req/s of
  // fully-batched capacity, then recovery.
  serve::GeneratorConfig gen;
  gen.phases = {{util::seconds(4), 300.0},
                {util::seconds(8), 1800.0},
                {util::seconds(16), 300.0}};
  gen.clients = cluster.nodes_with_label("role=storage");
  gen.horizon = util::seconds(16);
  gen.seed = 0xf12c;
  serve::RequestGenerator generator(sim, gen, service.sink());
  generator.start();

  sim.run();

  RunResult result;
  snapshot(service, &result);
  result.flows_leaked = fabric.stats().flows_in_flight;
  return result;
}

// -- Scenario D: latency-aware autoscaling ----------------------------

RunResult run_autoscale() {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(12, 2, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  orch::Orchestrator orch(sim, cluster,
                          orch::SchedulingPolicy::spreading(cluster));
  orch::PodSpec pod;
  pod.name = "api";
  pod.request = cluster::cpu_mem(2000, 4 * util::kGiB);
  pod.anti_affinity_group = "api";
  orch::DeploymentController deploy(orch, "api", pod, 2);

  std::vector<serve::RequestClass> classes(1);
  classes[0].name = "rank";
  classes[0].compute_cost = util::millis(2);
  classes[0].batch_setup = util::millis(2);
  classes[0].slo = util::millis(100);

  serve::ServiceConfig config;
  config.policy = serve::BalancePolicy::kPowerOfTwo;
  config.replica.queue_limit = 128;
  config.replica.batch.max_batch = 4;
  config.replica.batch.max_linger = util::micros(500);
  // Brownout while capacity catches up: shed at the front door during
  // the minute it takes the autoscaler to observe, scale, and start
  // pods, instead of letting every queue saturate.
  config.admission.enabled = true;
  config.admission.target = util::millis(20);
  config.admission.interval = util::millis(20);
  serve::Service service(sim, fabric, deploy, classes, config);

  serve::ScalingSignalConfig sconfig;
  sconfig.window = util::seconds(5);
  sconfig.delay_target = util::millis(20);
  sconfig.capacity_per_replica = 400.0;  // full-batch replica throughput
  sconfig.target_inflight_per_replica = 16.0;
  serve::ScalingSignal signal(sim, sconfig);
  service.attach_signal(&signal);

  orch::AutoscalerConfig aconfig;
  aconfig.capacity_per_replica = 400.0;
  aconfig.target_utilization = 0.7;
  aconfig.min_replicas = 2;
  aconfig.max_replicas = 12;
  aconfig.interval = util::seconds(2);
  aconfig.scale_down_window = util::seconds(20);
  orch::HorizontalAutoscaler hpa(
      sim, deploy, [&signal] { return signal.load(); }, aconfig);
  hpa.start();

  // 300 req/s cruise, a 2000 req/s surge from 20 s to 40 s (needs ~8
  // replicas at 70% target utilization), then cruise again so the
  // stabilization window can walk the fleet back down.
  serve::GeneratorConfig gen;
  gen.phases = {{util::seconds(20), 300.0},
                {util::seconds(40), 2000.0},
                {util::seconds(70), 300.0}};
  gen.clients = cluster.nodes_with_label("role=storage");
  gen.horizon = util::seconds(70);
  gen.seed = 0xf12d;
  serve::RequestGenerator generator(sim, gen, service.sink());
  generator.start();

  int peak = deploy.desired();
  for (util::TimeNs t = 0; t < util::seconds(70); t += util::seconds(1)) {
    sim.at(t, [&deploy, &peak] { peak = std::max(peak, deploy.desired()); });
  }

  sim.run_until(util::seconds(71));
  hpa.stop();
  sim.run();

  RunResult result;
  snapshot(service, &result);
  result.flows_leaked = fabric.stats().flows_in_flight;
  result.peak_replicas = peak;
  result.final_replicas = deploy.desired();
  result.scale_ups = hpa.scale_ups();
  result.scale_downs = hpa.scale_downs();
  return result;
}

std::string ms(double v) { return util::fixed(v, 1) + " ms"; }

}  // namespace

int main(int argc, char** argv) {
  bool tracing = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) tracing = true;
  }

  std::unique_ptr<trace::Tracer> steady_tr, slow_tr;
  const RunResult batch_on = run_steady(true, tracing ? &steady_tr : nullptr);
  const RunResult batch_off = run_steady(false, nullptr);
  const RunResult slow_rr =
      run_slow_replica(serve::BalancePolicy::kRoundRobin, false, nullptr);
  const RunResult slow_p2c =
      run_slow_replica(serve::BalancePolicy::kPowerOfTwo, false, nullptr);
  const RunResult slow_p2c_hedge = run_slow_replica(
      serve::BalancePolicy::kPowerOfTwo, true, tracing ? &slow_tr : nullptr);
  const RunResult spike_shed = run_spike(true);
  const RunResult spike_noshed = run_spike(false);
  const RunResult autoscaled = run_autoscale();

  core::Table steady("F12a: 600 req/s on 4 replicas — dynamic batching",
                     {"batching", "completed", "goodput", "shed", "p50",
                      "p99", "mean batch"});
  auto steady_row = [&](const std::string& name, const RunResult& r) {
    steady.add_row({name, std::to_string(r.completed),
                    std::to_string(r.goodput),
                    std::to_string(r.shed_admission + r.shed_queue_full),
                    ms(r.p50_ms), ms(r.p99_ms), util::fixed(r.mean_batch, 2)});
  };
  steady_row("on (max 8)", batch_on);
  steady_row("off (batch=1)", batch_off);
  steady.print();

  core::Table slow("F12b: one 4x-slow replica of 6 — routing + hedging",
                   {"policy", "goodput", "shed", "p50", "p99", "p99.9",
                    "hedges", "wins"});
  auto slow_row = [&](const std::string& name, const RunResult& r) {
    slow.add_row({name, std::to_string(r.goodput),
                  std::to_string(r.shed_admission + r.shed_queue_full),
                  ms(r.p50_ms), ms(r.p99_ms), ms(r.p999_ms),
                  std::to_string(r.hedges), std::to_string(r.hedge_wins)});
  };
  slow_row("round-robin", slow_rr);
  slow_row("p2c", slow_p2c);
  slow_row("p2c + hedge", slow_p2c_hedge);
  std::cout << "\n";
  slow.print();

  core::Table spike("F12c: 6x arrival spike — CoDel admission shedding",
                    {"shedding", "completed", "goodput", "shed adm",
                     "shed full", "slo viol", "p99"});
  auto spike_row = [&](const std::string& name, const RunResult& r) {
    spike.add_row({name, std::to_string(r.completed),
                   std::to_string(r.goodput),
                   std::to_string(r.shed_admission),
                   std::to_string(r.shed_queue_full),
                   std::to_string(r.slo_violations), ms(r.p99_ms)});
  };
  spike_row("on", spike_shed);
  spike_row("off", spike_noshed);
  std::cout << "\n";
  spike.print();

  core::Table auto_t("F12d: 20 s surge — latency-aware autoscaling",
                     {"replicas", "peak", "final", "ups", "downs", "goodput",
                      "p99", "shed"});
  auto_t.add_row({"2..12", std::to_string(autoscaled.peak_replicas),
                  std::to_string(autoscaled.final_replicas),
                  std::to_string(autoscaled.scale_ups),
                  std::to_string(autoscaled.scale_downs),
                  std::to_string(autoscaled.goodput), ms(autoscaled.p99_ms),
                  std::to_string(autoscaled.shed_admission +
                                 autoscaled.shed_queue_full)});
  std::cout << "\n";
  auto_t.print();

  std::cout << "\nShape check: batching lifts goodput " << batch_off.goodput
            << " -> " << batch_on.goodput << ", p2c cuts slow-replica p99 "
            << ms(slow_rr.p99_ms) << " -> " << ms(slow_p2c.p99_ms)
            << " (hedged " << ms(slow_p2c_hedge.p99_ms)
            << "), shedding holds the spike's admitted p99 at "
            << ms(spike_shed.p99_ms) << " (vs " << ms(spike_noshed.p99_ms)
            << "), and the autoscaler rides the surge to "
            << autoscaled.peak_replicas << " replicas and back to "
            << autoscaled.final_replicas << ".\n";

  core::MetricsReport report("f12_serving");
  auto emit = [&](const std::string& p, const RunResult& r) {
    report.set(p + "_arrived", r.arrived);
    report.set(p + "_completed", r.completed);
    report.set(p + "_goodput", r.goodput);
    report.set(p + "_shed_admission", r.shed_admission);
    report.set(p + "_shed_queue_full", r.shed_queue_full);
    report.set(p + "_slo_violations", r.slo_violations);
    report.set(p + "_p50_ms", r.p50_ms);
    report.set(p + "_p99_ms", r.p99_ms);
    report.set(p + "_p999_ms", r.p999_ms);
    report.set(p + "_mean_batch", r.mean_batch);
    report.set(p + "_hedges", r.hedges);
    report.set(p + "_hedge_wins", r.hedge_wins);
    report.set(p + "_hedges_cancelled", r.hedges_cancelled);
    report.set(p + "_wasted_exec", r.wasted_exec);
    report.set(p + "_rerouted", r.rerouted);
    report.set(p + "_flows_leaked", r.flows_leaked);
  };
  emit("steady_batch_on", batch_on);
  emit("steady_batch_off", batch_off);
  emit("slow_rr", slow_rr);
  emit("slow_p2c", slow_p2c);
  emit("slow_p2c_hedge", slow_p2c_hedge);
  emit("spike_shed_on", spike_shed);
  emit("spike_shed_off", spike_noshed);
  emit("autoscale", autoscaled);
  report.set("autoscale_peak_replicas", autoscaled.peak_replicas);
  report.set("autoscale_final_replicas", autoscaled.final_replicas);
  report.set("autoscale_scale_ups", autoscaled.scale_ups);
  report.set("autoscale_scale_downs", autoscaled.scale_downs);

  if (tracing) {
    std::cout << "wrote "
              << trace::write_chrome_trace(
                     "f12_serving", {{"f12/steady-batching", steady_tr.get()},
                                     {"f12/slow-replica", slow_tr.get()}})
              << "\n";
  }
  if (core::json_mode(argc, argv)) {
    std::cout << "wrote " << report.write() << "\n";
  }
  return 0;
}
