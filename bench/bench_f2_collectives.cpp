// F2 — HPC collectives: allreduce latency vs message size and algorithm
// (16 nodes), and vs node count at a fixed 4 MiB payload.
#include <iostream>

#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "hpc/communicator.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "util/strings.hpp"

using namespace evolve;

namespace {

util::TimeNs allreduce_time(int nodes, util::Bytes bytes,
                            hpc::CollectiveAlgo algo) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(nodes, 0, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  std::vector<cluster::NodeId> ranks;
  for (int i = 0; i < nodes; ++i) ranks.push_back(i);
  hpc::Communicator comm(sim, fabric, ranks);
  util::TimeNs done = -1;
  comm.allreduce(bytes, algo, [&] { done = sim.now(); });
  sim.run();
  return done;
}

const std::vector<std::pair<const char*, hpc::CollectiveAlgo>> kAlgos = {
    {"linear", hpc::CollectiveAlgo::kLinear},
    {"tree", hpc::CollectiveAlgo::kTree},
    {"rec-dbl", hpc::CollectiveAlgo::kRecursiveDoubling},
    {"ring", hpc::CollectiveAlgo::kRing},
};

}  // namespace

int main() {
  {
    core::Table table("F2a: allreduce time vs message size (16 ranks)",
                      {"size", "linear", "tree", "rec-dbl", "ring"});
    for (util::Bytes bytes :
         {util::kKiB, 32 * util::kKiB, util::kMiB, 8 * util::kMiB,
          64 * util::kMiB}) {
      std::vector<std::string> row = {util::human_bytes(bytes)};
      for (const auto& [name, algo] : kAlgos) {
        row.push_back(util::human_time(allreduce_time(16, bytes, algo)));
      }
      table.add_row(row);
    }
    table.print();
  }
  std::cout << "\n";
  {
    core::Table table("F2b: 4 MiB allreduce vs rank count",
                      {"ranks", "linear", "tree", "rec-dbl", "ring"});
    for (int ranks : {2, 4, 8, 16, 32}) {
      std::vector<std::string> row = {std::to_string(ranks)};
      for (const auto& [name, algo] : kAlgos) {
        row.push_back(
            util::human_time(allreduce_time(ranks, 4 * util::kMiB, algo)));
      }
      table.add_row(row);
    }
    table.print();
  }
  std::cout << "\n";
  {
    // Extended collective set at a fixed 4 MiB payload, 16 ranks.
    core::Table table("F2c: extended collectives (16 ranks, 4 MiB payload)",
                      {"collective", "time"});
    auto timed = [](auto&& invoke) {
      sim::Simulation sim;
      auto cluster = cluster::make_testbed(16, 0, 0);
      net::Topology topology(cluster);
      net::Fabric fabric(sim, topology);
      std::vector<cluster::NodeId> ranks;
      for (int i = 0; i < 16; ++i) ranks.push_back(i);
      hpc::Communicator comm(sim, fabric, ranks);
      util::TimeNs done = -1;
      invoke(comm, [&sim, &done] { done = sim.now(); });
      sim.run();
      return done;
    };
    const util::Bytes mb4 = 4 * util::kMiB;
    table.add_row({"scatter (tree)",
                   util::human_time(timed([&](hpc::Communicator& c, auto cb) {
                     c.scatter(0, mb4 / 16, cb);
                   }))});
    table.add_row({"gather (tree)",
                   util::human_time(timed([&](hpc::Communicator& c, auto cb) {
                     c.gather(0, mb4 / 16, cb);
                   }))});
    table.add_row({"allgather (ring)",
                   util::human_time(timed([&](hpc::Communicator& c, auto cb) {
                     c.allgather(mb4 / 16, cb);
                   }))});
    table.add_row({"reduce-scatter (ring)",
                   util::human_time(timed([&](hpc::Communicator& c, auto cb) {
                     c.reduce_scatter(mb4, cb);
                   }))});
    table.add_row({"alltoall",
                   util::human_time(timed([&](hpc::Communicator& c, auto cb) {
                     c.alltoall(mb4 / 16, cb);
                   }))});
    table.add_row({"barrier",
                   util::human_time(timed([&](hpc::Communicator& c, auto cb) {
                     c.barrier(cb);
                   }))});
    table.print();
  }
  std::cout << "\nShape check: recursive doubling wins small messages "
               "(latency-bound);\nring wins large messages (bandwidth-"
               "optimal); linear degrades worst with scale.\n";
  return 0;
}
