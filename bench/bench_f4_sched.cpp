// F4 — Unified vs siloed scheduling: the same mixed trace (cloud
// services + batch analytics + HPC gangs) on one unified orchestrator vs
// three static partitions; utilization, waits, makespan; load sweep.
#include <iostream>

#include "core/report.hpp"
#include "core/unified_scheduler.hpp"
#include "util/strings.hpp"
#include "workloads/trace.hpp"

using namespace evolve;

namespace {

core::PlatformConfig sched_config() {
  core::PlatformConfig config;
  config.compute_nodes = 12;
  config.storage_nodes = 4;
  config.accel_nodes = 0;
  return config;
}

}  // namespace

int main() {
  core::Table table("F4: mixed trace, unified vs 3 static silos (12 nodes)",
                    {"load (jobs/s)", "deployment", "cpu util", "mean wait",
                     "p95 wait", "makespan"});
  for (double rate : {0.5, 1.5, 3.0}) {
    workloads::TraceParams params;
    params.jobs = 120;
    params.arrivals_per_second = rate;
    params.batch_median_s = 15.0;
    params.service_median_s = 30.0;
    params.gang_median_s = 25.0;
    params.max_gang_width = 6;

    util::Rng rng(1234);
    const auto trace = workloads::make_mixed_trace(rng, params);

    core::ScheduleOutcome unified, siloed;
    {
      sim::Simulation sim;
      core::Platform platform(sim, sched_config());
      unified = core::run_trace_unified(sim, platform.orchestrator(), trace);
    }
    {
      sim::Simulation sim;
      core::SiloedPlatform silos(sim, sched_config());
      siloed = core::run_trace_siloed(sim, silos, trace);
    }
    for (const auto& [name, outcome] :
         {std::pair{"unified", unified}, std::pair{"siloed", siloed}}) {
      table.add_row({util::fixed(rate, 1), name,
                     util::fixed(outcome.cpu_utilization * 100, 1) + "%",
                     util::human_time(outcome.mean_wait),
                     util::human_time(outcome.p95_wait),
                     util::human_time(outcome.makespan)});
    }
  }
  table.print();
  std::cout << "\nShape check: identical at low load; under pressure the "
               "unified\nscheduler borrows idle capacity across worlds -> "
               "lower waits and makespan,\nhigher effective utilization.\n";
  return 0;
}
