// F17 — Tablet serving under Zipf skew: splitting + balancing on vs off.
//
// One stateful serving scenario, run twice: a 4-node tablet layer
// (range-sharded KV over the object store, ack-after-durable WAL
// writes, memtable + flushed-generation reads) takes an open-loop
// Zipf-keyed workload of 6000 ops/s for 30 s. The Zipf draw
// concentrates ~85% of the traffic on the first quarter of the key
// space — one shard, one node — and a gray CPU slowdown (3x) hits that
// hot node mid-run, exactly the BigBench/Tzenetopoulos skew-plus-
// stragglers regime:
//
//   off  the static 4-shard layout pins the hot range to one node: its
//        serial executor saturates, the bounded per-shard queue sheds,
//        and the slowdown stretches p99 by an order of magnitude.
//   on   the TabletBalancer splits the hot shard at its access median
//        (hot-key-dominated shards move whole instead — splitting
//        cannot spread one key) and migrates shards off the busiest
//        node. Moves cost real unavailability (flush + handoff +
//        re-open, every second of it accounted), and routing staleness
//        costs WrongShard retries — yet p99 and goodput still come out
//        far ahead.
//
// Requests flow through the serve-layer integration: a seeded
// serve::RequestGenerator with key_dist=kZipf feeds serve::Requests
// into the TabletClient, whose cached epoch-stamped shard map routes,
// refreshes, and retries. The run reports completed / goodput
// (completions within SLO), read and overall p99, queue-full sheds,
// split/merge/move counts, move unavailability, and stale-route
// retries. The check.sh gate asserts balancing-on p99 < balancing-off
// p99 and balancing-on goodput > balancing-off goodput.
//
// `--json` writes BENCH_f17_tablets.json (fully simulation-
// deterministic); `--trace` additionally writes TRACE_f17_tablets.json
// with tablet.* spans from the balanced run's first 2 s.
#include <algorithm>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "fault/gray.hpp"
#include "fault/wiring.hpp"
#include "net/fabric.hpp"
#include "serve/generator.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"
#include "tablet/balancer.hpp"
#include "tablet/service.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "util/strings.hpp"
#include "util/types.hpp"

using namespace evolve;
using namespace evolve::tablet;

namespace {

constexpr util::TimeNs kHorizon = util::seconds(30);
constexpr util::TimeNs kSlowFrom = util::seconds(8);
constexpr util::TimeNs kSlowFor = util::seconds(17);
constexpr util::TimeNs kReadSlo = util::millis(10);
constexpr util::TimeNs kWriteSlo = util::millis(25);
constexpr std::uint64_t kKeys = 1 << 16;

struct RunResult {
  std::int64_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t goodput = 0;  // completed within the class SLO
  std::int64_t shed = 0;
  std::int64_t failed = 0;  // exhausted retries / unavailable
  std::vector<double> latencies_ms;
  std::vector<double> read_latencies_ms;
  double p99_ms = 0;
  double read_p99_ms = 0;
  std::int64_t splits = 0;
  std::int64_t merges = 0;
  std::int64_t moves = 0;
  double move_unavail_s = 0;
  std::int64_t wrong_shard_retries = 0;
  std::int64_t unavailable_retries = 0;
  std::int64_t memtable_hits = 0;
  std::int64_t block_reads = 0;
  std::int64_t flushes = 0;
  std::int64_t wal_commits = 0;
  std::int64_t final_shards = 0;
  std::int64_t flows_leaked = 0;
};

double p99_of(std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const std::size_t k = (v.size() - 1) * 99 / 100;
  std::nth_element(v.begin(), v.begin() + k, v.end());
  return v[k];
}

RunResult run(bool balancing, std::unique_ptr<trace::Tracer>* tracer_out) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(4, 4, 0, 2);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  storage::IoSubsystem io(sim, cluster);
  storage::ObjectStore store(sim, cluster, fabric, io,
                             cluster.nodes_with_label("role=storage"));

  TabletConfig config;
  config.keyspace = kKeys;
  config.initial_shards = 4;  // one per node: balanced by range, not load
  config.flush_bytes = 512 * util::kKiB;
  config.flush_age = util::millis(500);
  // Deep queues: overload shows up as tail latency, not fail-fast sheds
  // (shedding would censor the off-run's p99 downward).
  config.queue_limit = 512;
  TabletService service(sim, fabric, store,
                        cluster.nodes_with_label("role=compute"), config);

  std::unique_ptr<trace::Tracer> tracer;
  if (tracer_out) {
    tracer = std::make_unique<trace::Tracer>(sim);
    service.set_tracer(tracer.get());
    // Span volume control: trace only the first 2 s (splits + first
    // moves land there), then detach.
    sim.at(util::seconds(2), [&service] {
      trace::Tracer* t = service.tracer();
      service.set_tracer(nullptr);
      t->close_open_spans();  // boundary spans close here, not at horizon
    });
  }

  BalancerConfig bcfg;
  bcfg.interval = util::millis(250);
  bcfg.split_ops = 600;    // ~2.4k ops/s sustained marks a shard hot
  bcfg.merge_ops = 10;
  bcfg.min_move_ops = 150;
  bcfg.imbalance_ratio = 1.3;
  bcfg.max_shards = 32;
  TabletBalancer balancer(sim, service, bcfg);
  if (balancing) balancer.start();

  // The gray slowdown lands on the node that owns the hot range at t=0
  // (compute node 0 hosts shard 0 = the Zipf head).
  const auto tablet_nodes = cluster.nodes_with_label("role=compute");
  fault::GrayInjector gray(sim);
  fault::connect(gray, service);
  gray.schedule_slow_node(tablet_nodes[0], /*cpu_factor=*/3.0,
                          /*accel_factor=*/1.0, kSlowFrom, kSlowFor);

  ClientConfig ccfg;
  ccfg.max_attempts = 6;
  TabletClient client(sim, service, ccfg);

  RunResult result;
  serve::GeneratorConfig gen;
  gen.phases = {{kHorizon, 6000.0}};
  gen.class_weights = {0.7, 0.3};  // class 0 = read, class 1 = write
  gen.clients = cluster.nodes_with_label("role=storage");
  gen.horizon = kHorizon;
  gen.seed = 0xf17ab;
  gen.key_dist = serve::KeyDistribution::kZipf;
  gen.keys = kKeys;
  gen.zipf_s = 1.05;
  serve::RequestGenerator generator(sim, gen, [&](serve::Request req) {
    const bool is_write = req.cls == 1;
    const util::TimeNs start = sim.now();
    client.submit(req, is_write ? OpKind::kWrite : OpKind::kRead,
                  [&result, &sim, is_write, start](OpResult r) {
                    if (r.status == OpStatus::kOk ||
                        r.status == OpStatus::kNotFound) {
                      const util::TimeNs latency = sim.now() - start;
                      result.completed += 1;
                      const util::TimeNs slo =
                          is_write ? kWriteSlo : kReadSlo;
                      if (latency <= slo) result.goodput += 1;
                      result.latencies_ms.push_back(
                          util::to_millis(latency));
                      if (!is_write) {
                        result.read_latencies_ms.push_back(
                            util::to_millis(latency));
                      }
                    } else if (r.status == OpStatus::kQueueFull) {
                      result.shed += 1;
                    } else {
                      result.failed += 1;
                    }
                  });
  });
  generator.start();

  sim.at(kHorizon + util::seconds(2), [&] {
    balancer.stop();
    service.stop();
  });
  sim.run();

  result.offered = generator.emitted();
  result.p99_ms = p99_of(result.latencies_ms);
  result.read_p99_ms = p99_of(result.read_latencies_ms);
  // The constructor carves initial_shards via split(); report only the
  // balancer-initiated ones.
  result.splits = service.shard_map().splits() - (config.initial_shards - 1);
  result.merges = service.shard_map().merges();
  result.moves = service.moves_completed();
  result.move_unavail_s = service.move_unavail_seconds();
  result.wrong_shard_retries = client.wrong_shard_retries();
  result.unavailable_retries = client.unavailable_retries();
  result.memtable_hits = service.memtable_hits();
  result.block_reads = service.block_reads();
  result.flushes = service.flushes();
  result.wal_commits = service.wal_commits();
  result.final_shards = service.shard_map().shard_count();
  result.flows_leaked = fabric.stats().flows_in_flight;
  if (tracer) {
    tracer->close_open_spans();
    *tracer_out = std::move(tracer);
  }
  return result;
}

std::string ms(double v) { return util::fixed(v, 2) + " ms"; }

}  // namespace

int main(int argc, char** argv) {
  bool tracing = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) tracing = true;
  }

  std::unique_ptr<trace::Tracer> on_tr;
  RunResult off = run(false, nullptr);
  RunResult on = run(true, tracing ? &on_tr : nullptr);

  core::Table table(
      "F17: Zipf tablet serving + 3x gray slow node — balancing off vs on",
      {"balancing", "completed", "goodput", "shed", "p99", "read p99",
       "splits", "moves", "move unavail", "stale retries", "shards"});
  auto row = [&](const std::string& name, const RunResult& r) {
    table.add_row({name, std::to_string(r.completed),
                   std::to_string(r.goodput), std::to_string(r.shed),
                   ms(r.p99_ms), ms(r.read_p99_ms),
                   std::to_string(r.splits), std::to_string(r.moves),
                   util::fixed(r.move_unavail_s, 3) + " s",
                   std::to_string(r.wrong_shard_retries),
                   std::to_string(r.final_shards)});
  };
  row("off", off);
  row("on", on);
  table.print();

  std::cout << "\nShape check: splitting the hot range and balancing "
            << "shards drops p99 " << ms(off.p99_ms) << " -> "
            << ms(on.p99_ms) << " and lifts goodput " << off.goodput
            << " -> " << on.goodput << " (" << on.splits << " splits, "
            << on.moves << " moves costing "
            << util::fixed(on.move_unavail_s, 3)
            << " s of shard unavailability, " << on.wrong_shard_retries
            << " stale-route retries).\n";

  core::MetricsReport report("f17_tablets");
  auto emit = [&](const std::string& p, const RunResult& r) {
    report.set(p + "_offered", r.offered);
    report.set(p + "_completed", r.completed);
    report.set(p + "_goodput", r.goodput);
    report.set(p + "_shed", r.shed);
    report.set(p + "_failed", r.failed);
    report.set(p + "_p99_ms", r.p99_ms);
    report.set(p + "_read_p99_ms", r.read_p99_ms);
    report.set(p + "_splits", r.splits);
    report.set(p + "_merges", r.merges);
    report.set(p + "_moves", r.moves);
    report.set(p + "_move_unavail_s", r.move_unavail_s);
    report.set(p + "_wrong_shard_retries", r.wrong_shard_retries);
    report.set(p + "_unavailable_retries", r.unavailable_retries);
    report.set(p + "_memtable_hits", r.memtable_hits);
    report.set(p + "_block_reads", r.block_reads);
    report.set(p + "_flushes", r.flushes);
    report.set(p + "_wal_commits", r.wal_commits);
    report.set(p + "_final_shards", r.final_shards);
    report.set(p + "_flows_leaked", r.flows_leaked);
  };
  emit("off", off);
  emit("on", on);

  if (tracing) {
    std::cout << "wrote "
              << trace::write_chrome_trace(
                     "f17_tablets", {{"f17/balanced", on_tr.get()}})
              << "\n";
  }
  if (core::json_mode(argc, argv)) {
    std::cout << "wrote " << report.write() << "\n";
  }
  return 0;
}
