// A3 — Ablation: cache-capacity sweep. Fraction of the storage node's
// fast tiers granted to the object store, vs steady-state hit mix and
// GET latency on a zipfian read workload over a 32 GiB working set.
#include <iostream>

#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace evolve;

int main() {
  core::Table table(
      "A3: cache capacity sweep (32 GiB working set, zipf 0.9, steady state)",
      {"cache grant", "dram cap", "nvme cap", "dram", "nvme", "hdd",
       "mean GET", "p95 GET"});
  for (double fraction : {0.05, 0.15, 0.40, 1.00}) {
    sim::Simulation sim;
    cluster::Cluster cl;
    cl.add_node(cluster::make_compute_node("client", 0));
    auto server = cluster::make_storage_node("server", 0);
    server.devices[0].capacity = 8 * util::kGiB;   // dram tier
    server.devices[1].capacity = 24 * util::kGiB;  // nvme tier
    cl.add_node(server);
    net::Topology topology(cl);
    net::Fabric fabric(sim, topology);
    storage::IoSubsystem io(sim, cl);
    storage::ObjectStoreConfig config;
    config.replicas = 1;
    config.cache_capacity_fraction = fraction;
    storage::ObjectStore store(sim, cl, fabric, io,
                               cl.nodes_with_label("role=storage"), config);
    store.create_bucket("ws");
    const util::Bytes object = 4 * util::kMiB;
    const int objects = static_cast<int>(32LL * util::kGiB / object);
    for (int i = 0; i < objects; ++i) {
      store.preload({"ws", "o" + std::to_string(i)}, object);
    }
    util::Rng rng(4242);
    auto one_get = [&] {
      store.get(0, {"ws", "o" + std::to_string(rng.zipf(objects, 0.9))},
                [](const storage::GetResult&) {});
      sim.run();
    };
    for (int i = 0; i < 3000; ++i) one_get();  // warmup to steady state
    store.metrics().reset();
    for (int i = 0; i < 2000; ++i) one_get();
    const auto& m = store.metrics();
    const auto& lat = m.histogram("get_latency_us");
    table.add_row(
        {util::fixed(fraction * 100, 0) + "%",
         util::human_bytes(static_cast<util::Bytes>(8 * util::kGiB * fraction)),
         util::human_bytes(
             static_cast<util::Bytes>(24 * util::kGiB * fraction)),
         std::to_string(m.counter("get_tier_dram")),
         std::to_string(m.counter("get_tier_nvme")),
         std::to_string(m.counter("get_tier_hdd")),
         util::human_time(static_cast<util::TimeNs>(lat.mean() * 1000)),
         util::human_time(lat.p95() * 1000)});
  }
  table.print();
  std::cout << "\nShape check: growing the cache grant first moves reads "
               "from HDD to NVMe,\nthen concentrates the zipf head in DRAM; "
               "latency falls in two distinct steps.\n";
  return 0;
}
