// F16 — Network partitions and metastability defenses.
//
// One serving scenario, run twice: 8 round-robin replicas at
// 1800 req/s, three replica nodes cut off by a network partition from
// t=30 s to t=60 s. The fabric *parks* flows crossing the cut (a
// partition stalls traffic, it does not fail it), so an undefended
// router keeps feeding the black holes for the partition's whole
// duration: every swallowed request hedges onto the survivors
// (unbounded duplication), and the heal dumps thirty seconds of parked
// work onto three cold replicas at once — queue-full sheds, wasted
// exec, and a visible post-heal goodput dip: the heal-storm.
//
//   off  no leases, no retry budget, no ramp. ~27k flows park over the
//        partition; goodput stays degraded until well past the heal.
//   on   lease-based liveness (orch::LeaseManager) marks the expired
//        nodes Unreachable within the lease TTL and drains them from
//        the router, ending the leak ~2 s into the partition; a shared
//        util::RetryBudget caps the hedge storm; the post-heal
//        admission ramp re-admits the reconnected replicas gradually
//        instead of all at once.
//
// The run reports goodput (completions within SLO) and p99 in four
// windows — pre [0,30), during [30,60), recover [60,70), settled
// [70,90) — the recovery ratio recover/pre, and degraded-seconds (how
// many 1 s buckets after partition onset sat below 90% of the
// pre-partition goodput rate). The check.sh gate asserts defenses-on
// recovers to >= 90% of pre-partition goodput in the recovery window,
// beats defenses-off, and is degraded for only a few seconds while
// defenses-off is degraded for 10+.
//
// `--json` writes BENCH_f16_partitions.json (fully simulation-
// deterministic).
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "fault/partition.hpp"
#include "fault/wiring.hpp"
#include "net/fabric.hpp"
#include "orch/controllers.hpp"
#include "orch/lease.hpp"
#include "orch/scheduler.hpp"
#include "serve/generator.hpp"
#include "serve/service.hpp"
#include "sim/simulation.hpp"
#include "util/retry_budget.hpp"
#include "util/strings.hpp"
#include "util/types.hpp"

using namespace evolve;

namespace {

constexpr util::TimeNs kPartitionAt = util::seconds(30);
constexpr util::TimeNs kHealAt = util::seconds(60);
constexpr util::TimeNs kRecoverUntil = util::seconds(70);
constexpr util::TimeNs kHorizon = util::seconds(90);

struct WindowStats {
  double span_s = 1.0;
  std::int64_t completed = 0;
  std::int64_t goodput = 0;  // completed within SLO
  std::vector<double> latencies_ms;

  double goodput_rate() const { return static_cast<double>(goodput) / span_s; }

  double p99_ms() {
    if (latencies_ms.empty()) return 0.0;
    const std::size_t k = (latencies_ms.size() - 1) * 99 / 100;
    std::nth_element(latencies_ms.begin(), latencies_ms.begin() + k,
                     latencies_ms.end());
    return latencies_ms[k];
  }
};

struct RunResult {
  WindowStats pre, during, recover, settled;
  double recovery_ratio = 0;  // recovery-window goodput rate / pre rate
  // 1-second goodput buckets; degraded = below 90% of the pre-window
  // rate. With defenses the lease drain ends the degradation a TTL or so
  // into the partition; without them it lasts until the heal.
  std::vector<std::int64_t> per_second;
  std::int64_t degraded_seconds = 0;
  std::int64_t arrived = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t hedges = 0;
  std::int64_t hedges_suppressed = 0;
  std::int64_t wasted_exec = 0;
  std::int64_t expiries = 0;
  std::int64_t reconnects = 0;
  std::int64_t evictions = 0;
  std::int64_t flows_parked = 0;
  std::int64_t flows_leaked = 0;
};

RunResult run(bool defenses) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(8, 2, 0, 2);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  orch::Orchestrator orch(sim, cluster,
                          orch::SchedulingPolicy::spreading(cluster));
  orch::PodSpec pod;
  pod.name = "api";
  pod.request = cluster::cpu_mem(2000, 4 * util::kGiB);
  pod.anti_affinity_group = "api";  // one replica per compute node
  orch::DeploymentController deploy(orch, "api", pod, 8);

  // ~400 req/s per fully-batched replica; 1800 req/s offered leaves the
  // five partition survivors at ~90% load — enough headroom to serve
  // every request, none to absorb an unbounded hedge storm.
  std::vector<serve::RequestClass> classes(1);
  classes[0].name = "rank";
  classes[0].compute_cost = util::millis(2);
  classes[0].batch_setup = util::millis(2);
  classes[0].slo = util::millis(100);

  serve::ServiceConfig config;
  // Round-robin is the undefended baseline: nothing in the data path
  // reads queue depth, so routing around the partition is entirely the
  // lease layer's job (p2c's outstanding-count feedback would itself be
  // a partial defense and blur the comparison).
  config.policy = serve::BalancePolicy::kRoundRobin;
  config.replica.queue_limit = 64;
  config.replica.batch.max_batch = 4;
  config.replica.batch.max_linger = util::micros(500);
  config.hedging = true;
  serve::Service service(sim, fabric, deploy, classes, config);

  // Three non-leader replica nodes lose the network for 30 s.
  fault::PartitionInjector partitions(sim, fabric);
  fault::PartitionId cut = 0;
  sim.at(kPartitionAt, [&] { cut = partitions.isolate({1, 3, 5}); });
  sim.at(kHealAt, [&] { partitions.heal(cut); });

  orch::LeaseManagerConfig lease_config;
  // Grace exceeds the partition: pods are fenced, never massacred.
  lease_config.grace = util::seconds(120);
  orch::LeaseManager leases(sim, fabric, orch, lease_config);
  util::RetryBudget budget;
  if (defenses) {
    fault::connect(leases, service, /*ramp_window=*/util::seconds(5));
    service.set_retry_budget(&budget);
    leases.start();
    sim.at(kHorizon + util::seconds(5), [&leases] { leases.stop(); });
  }

  WindowStats pre{30.0}, during{30.0}, recover{10.0}, settled{20.0};
  std::vector<std::int64_t> per_second(
      static_cast<std::size_t>(kHorizon / util::kSecond) + 5, 0);
  service.set_completion_observer(
      [&](const serve::Request&, const serve::RequestClass&,
          util::TimeNs latency, bool slo_ok) {
        WindowStats* w = sim.now() < kPartitionAt    ? &pre
                         : sim.now() < kHealAt       ? &during
                         : sim.now() < kRecoverUntil ? &recover
                                                     : &settled;
        w->completed += 1;
        if (slo_ok) {
          w->goodput += 1;
          const auto bucket = static_cast<std::size_t>(sim.now() / util::kSecond);
          if (bucket < per_second.size()) per_second[bucket] += 1;
        }
        w->latencies_ms.push_back(util::to_millis(latency));
      });

  serve::GeneratorConfig gen;
  gen.phases = {{kHorizon, 1800.0}};
  gen.clients = cluster.nodes_with_label("role=storage");
  gen.horizon = kHorizon;
  gen.seed = 0xf16a;
  serve::RequestGenerator generator(sim, gen, service.sink());
  generator.start();

  sim.run();

  RunResult result;
  result.pre = std::move(pre);
  result.during = std::move(during);
  result.recover = std::move(recover);
  result.settled = std::move(settled);
  result.recovery_ratio =
      result.pre.goodput > 0
          ? result.recover.goodput_rate() / result.pre.goodput_rate()
          : 0.0;
  const metrics::Registry& m = service.metrics();
  result.arrived = m.counter("serve.requests");
  result.completed = m.counter("serve.completed");
  result.shed =
      m.counter("serve.shed_admission") + m.counter("serve.shed_queue_full");
  result.hedges = service.hedges_launched();
  result.hedges_suppressed = service.hedges_suppressed();
  result.wasted_exec = service.wasted_exec();
  if (defenses) {
    result.expiries = leases.expiries();
    result.reconnects = leases.reconnects();
    result.evictions = leases.evictions();
  }
  result.flows_parked = fabric.stats().flows_parked;
  result.flows_leaked = fabric.stats().flows_in_flight;
  result.per_second = std::move(per_second);
  const double threshold = 0.9 * result.pre.goodput_rate();
  for (std::size_t sec = static_cast<std::size_t>(kPartitionAt / util::kSecond);
       sec < static_cast<std::size_t>(kHorizon / util::kSecond); ++sec) {
    if (static_cast<double>(result.per_second[sec]) < threshold) {
      result.degraded_seconds += 1;
    }
  }
  return result;
}

std::string rate(const WindowStats& w) {
  return util::fixed(w.goodput_rate(), 0) + "/s";
}
std::string ms(double v) { return util::fixed(v, 1) + " ms"; }

}  // namespace

int main(int argc, char** argv) {
  RunResult off = run(false);
  RunResult on = run(true);

  core::Table table(
      "F16: 30 s partition of 3/8 replicas — defenses off vs on",
      {"defenses", "pre good", "during good", "recover good", "settled good",
       "recovery", "degraded s", "during p99", "recover p99", "hedges",
       "suppressed"});
  auto row = [&](const std::string& name, RunResult& r) {
    table.add_row({name, rate(r.pre), rate(r.during), rate(r.recover),
                   rate(r.settled), util::fixed(r.recovery_ratio, 3),
                   std::to_string(r.degraded_seconds),
                   ms(r.during.p99_ms()), ms(r.recover.p99_ms()),
                   std::to_string(r.hedges),
                   std::to_string(r.hedges_suppressed)});
  };
  row("off", off);
  row("on", on);
  table.print();

  std::cout << "\nShape check: defenses lift the during-partition goodput "
            << rate(off.during) << " -> " << rate(on.during)
            << " and the 10 s post-heal recovery ratio "
            << util::fixed(off.recovery_ratio, 3) << " -> "
            << util::fixed(on.recovery_ratio, 3) << " (leases expired "
            << on.expiries << ", reconnected " << on.reconnects
            << ", evicted " << on.evictions << ", hedges suppressed "
            << on.hedges_suppressed << ").\n";

  core::MetricsReport report("f16_partitions");
  auto emit = [&](const std::string& p, RunResult& r) {
    report.set(p + "_arrived", r.arrived);
    report.set(p + "_completed", r.completed);
    report.set(p + "_shed", r.shed);
    report.set(p + "_pre_goodput", r.pre.goodput);
    report.set(p + "_during_goodput", r.during.goodput);
    report.set(p + "_recover_goodput", r.recover.goodput);
    report.set(p + "_settled_goodput", r.settled.goodput);
    report.set(p + "_recovery_ratio", r.recovery_ratio);
    report.set(p + "_degraded_seconds", r.degraded_seconds);
    report.set(p + "_pre_p99_ms", r.pre.p99_ms());
    report.set(p + "_during_p99_ms", r.during.p99_ms());
    report.set(p + "_recover_p99_ms", r.recover.p99_ms());
    report.set(p + "_settled_p99_ms", r.settled.p99_ms());
    report.set(p + "_hedges", r.hedges);
    report.set(p + "_hedges_suppressed", r.hedges_suppressed);
    report.set(p + "_wasted_exec", r.wasted_exec);
    report.set(p + "_expiries", r.expiries);
    report.set(p + "_reconnects", r.reconnects);
    report.set(p + "_evictions", r.evictions);
    report.set(p + "_flows_parked", r.flows_parked);
    report.set(p + "_flows_leaked", r.flows_leaked);
  };
  emit("off", off);
  emit("on", on);

  if (core::json_mode(argc, argv)) {
    std::cout << "wrote " << report.write() << "\n";
  }
  return 0;
}
