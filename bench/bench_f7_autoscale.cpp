// F7 — Elasticity: a diurnal load curve served by (a) peak-provisioned,
// (b) mean-provisioned, and (c) autoscaled deployments. Reports replica
// usage and the time spent under-provisioned (SLO-risk proxy).
// `--json` writes BENCH_f7_autoscale.json (fully deterministic).
#include <cmath>
#include <iostream>
#include <string>

#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "metrics/timeseries.hpp"
#include "orch/autoscaler.hpp"
#include "sim/simulation.hpp"
#include "util/strings.hpp"

using namespace evolve;

namespace {

// Two-hour sinusoidal "day": load between 50 and 950 req/s.
double diurnal_load(util::TimeNs now) {
  const double t = util::to_seconds(now);
  const double period = 7200.0;
  return 500.0 + 450.0 * std::sin(2 * M_PI * t / period - M_PI / 2);
}

struct Outcome {
  double mean_replicas = 0;
  double peak_replicas = 0;
  double under_provisioned_pct = 0;  // time with capacity < load
  std::int64_t scale_events = 0;
};

Outcome run_strategy(const std::string& mode) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(8, 0, 0);
  orch::Orchestrator orch(sim, cluster,
                          orch::SchedulingPolicy::spreading(cluster));
  orch::PodSpec pod;
  pod.name = "api";
  pod.request = cluster::cpu_mem(2000, 4 * util::kGiB);
  const double per_replica = 100.0;  // req/s each

  int fixed = 0;
  if (mode == "peak") fixed = 10;
  if (mode == "mean") fixed = 5;
  orch::DeploymentController deploy(orch, "api", pod,
                                    fixed > 0 ? fixed : 1);
  orch::AutoscalerConfig config;
  config.capacity_per_replica = per_replica;
  config.target_utilization = 1.0;
  config.min_replicas = 1;
  config.max_replicas = 10;
  config.interval = util::seconds(30);
  config.scale_down_window = util::seconds(120);
  orch::HorizontalAutoscaler hpa(
      sim, deploy, [&sim] { return diurnal_load(sim.now()); }, config);
  if (mode == "autoscaled") hpa.start();

  metrics::TimeSeries replicas;
  metrics::TimeSeries shortfall;  // 1 when capacity < load
  const util::TimeNs horizon = util::seconds(7200);
  for (util::TimeNs t = 0; t < horizon; t += util::seconds(10)) {
    sim.at(t, [&, t] {
      const double capacity = deploy.desired() * per_replica;
      replicas.record(t, deploy.desired());
      shortfall.record(t, capacity < diurnal_load(t) ? 1.0 : 0.0);
    });
  }
  sim.run_until(horizon);
  hpa.stop();
  sim.run();

  Outcome out;
  out.mean_replicas = replicas.time_weighted_mean(horizon);
  out.peak_replicas = replicas.max();
  out.under_provisioned_pct = 100.0 * shortfall.time_weighted_mean(horizon);
  out.scale_events = hpa.scale_ups() + hpa.scale_downs();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  core::Table table("F7: diurnal load (50..950 req/s over 2 h simulated)",
                    {"strategy", "mean replicas", "peak", "under-prov time",
                     "scale events"});
  core::MetricsReport report("f7_autoscale");
  for (const std::string mode : {"peak", "mean", "autoscaled"}) {
    const auto out = run_strategy(mode);
    table.add_row({mode + (mode == "peak"   ? " (fixed 10)"
                           : mode == "mean" ? " (fixed 5)"
                                            : ""),
                   util::fixed(out.mean_replicas, 2),
                   util::fixed(out.peak_replicas, 0),
                   util::fixed(out.under_provisioned_pct, 1) + "%",
                   std::to_string(out.scale_events)});
    report.set(mode + "_mean_replicas", out.mean_replicas);
    report.set(mode + "_peak_replicas", out.peak_replicas);
    report.set(mode + "_under_provisioned_pct", out.under_provisioned_pct);
    report.set(mode + "_scale_events", out.scale_events);
  }
  table.print();
  std::cout << "\nShape check: peak provisioning never under-provisions but "
               "wastes ~2x\nreplicas; mean provisioning starves half the "
               "day; the autoscaler tracks the\ncurve with near-peak "
               "protection at near-mean cost.\n";
  if (core::json_mode(argc, argv)) {
    std::cout << "wrote " << report.write() << "\n";
  }
  return 0;
}
