// A1 — Ablation: delay scheduling. Sweep the locality wait and measure
// source-task locality and job runtime on a loaded converged cluster.
#include <iostream>

#include "core/platform.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "util/strings.hpp"
#include "workloads/tabular.hpp"

using namespace evolve;

int main() {
  core::Table table("A1: delay scheduling ablation (executors on data nodes)",
                    {"locality wait", "local source tasks", "job time"});
  for (util::TimeNs wait :
       {util::TimeNs{0}, util::millis(100), util::millis(500),
        util::seconds(3)}) {
    core::PlatformConfig config;
    config.compute_nodes = 4;
    config.storage_nodes = 4;
    config.accel_nodes = 0;
    config.dataflow.locality_wait = wait;
    sim::Simulation sim;
    core::Platform platform(sim, config);
    core::Session session(platform);
    session.create_dataset("events", 32, util::kGiB, /*warm_cache=*/true);

    // Busy executors: occupy slots so local placement requires waiting.
    // Two concurrent jobs over the same dataset contend for the
    // data-holding executors.
    dataflow::JobStats first, second;
    int done = 0;
    platform.run_dataflow(
        workloads::scan_filter_aggregate("events", "out-a", 8), 4, 2,
        [&](const dataflow::JobStats& s) {
          first = s;
          ++done;
        });
    platform.run_dataflow(
        workloads::scan_filter_aggregate("events", "out-b", 8), 4, 2,
        [&](const dataflow::JobStats& s) {
          second = s;
          ++done;
        });
    sim.run();
    const int local = first.stages[0].local_tasks +
                      second.stages[0].local_tasks;
    const int total = first.stages[0].tasks + second.stages[0].tasks;
    const util::TimeNs slower = std::max(first.duration, second.duration);
    table.add_row({util::human_time(wait),
                   std::to_string(local) + "/" + std::to_string(total),
                   util::human_time(slower)});
  }
  table.print();
  std::cout << "\nShape check: a short wait buys most of the locality; past "
               "the knee,\nlonger waits add idle time without more hits "
               "(classic delay-scheduling curve).\n";
  return 0;
}
