// A5 — Ablation: redundancy scheme. Replication (R=2, R=3) vs erasure
// coding (4+2, 8+3): durable-capacity overhead and PUT/GET latency by
// object size. `--json` writes BENCH_a5_redundancy.json.
#include <iostream>

#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "storage/object_store.hpp"
#include "util/strings.hpp"

using namespace evolve;

namespace {

struct Scheme {
  std::string name;
  storage::ObjectStoreConfig config;
};

std::vector<Scheme> schemes() {
  std::vector<Scheme> out;
  {
    storage::ObjectStoreConfig c;
    c.replicas = 2;
    out.push_back({"replication R=2", c});
  }
  {
    storage::ObjectStoreConfig c;
    c.replicas = 3;
    out.push_back({"replication R=3", c});
  }
  {
    storage::ObjectStoreConfig c;
    c.redundancy = storage::Redundancy::kErasure;
    c.ec_data = 4;
    c.ec_parity = 2;
    out.push_back({"erasure 4+2", c});
  }
  {
    storage::ObjectStoreConfig c;
    c.redundancy = storage::Redundancy::kErasure;
    c.ec_data = 8;
    c.ec_parity = 3;
    out.push_back({"erasure 8+3", c});
  }
  return out;
}

struct Measured {
  util::TimeNs put_latency;
  util::TimeNs get_cold;
  double overhead;
};

Measured measure(const storage::ObjectStoreConfig& config,
                 util::Bytes size) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(2, 12, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  storage::IoSubsystem io(sim, cluster);
  storage::ObjectStore store(sim, cluster, fabric, io,
                             cluster.nodes_with_label("role=storage"),
                             config);
  store.create_bucket("b");
  Measured m{};
  util::TimeNs start = sim.now();
  util::TimeNs done = -1;
  store.put(0, {"b", "obj"}, size, [&] { done = sim.now(); });
  sim.run();
  m.put_latency = done - start;
  util::Bytes durable = 0;
  for (auto s : store.servers()) durable += store.durable_bytes(s);
  m.overhead = static_cast<double>(durable) / static_cast<double>(size);
  // Cold GET from another client (drop caches by disabling admission).
  start = sim.now();
  store.get(1, {"b", "obj"}, [&](const storage::GetResult&) {
    m.get_cold = sim.now() - start;
  });
  sim.run();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  core::MetricsReport report("a5_redundancy");
  for (util::Bytes size : {4 * util::kMiB, 64 * util::kMiB}) {
    core::Table table("A5: redundancy schemes, " + util::human_bytes(size) +
                          " objects (12 storage servers)",
                      {"scheme", "capacity overhead", "PUT", "warm GET"});
    const std::string size_prefix =
        "mib_" + std::to_string(size / util::kMiB);
    int scheme_index = 0;
    for (const Scheme& scheme : schemes()) {
      const auto m = measure(scheme.config, size);
      table.add_row({scheme.name, util::fixed(m.overhead, 2) + "x",
                     util::human_time(m.put_latency),
                     util::human_time(m.get_cold)});
      const std::string prefix =
          size_prefix + "_scheme_" + std::to_string(scheme_index++);
      report.set(prefix + "_overhead", m.overhead);
      report.set(prefix + "_put_ms",
                 static_cast<double>(m.put_latency) / 1e6);
      report.set(prefix + "_get_cold_ms",
                 static_cast<double>(m.get_cold) / 1e6);
    }
    table.print();
    std::cout << "\n";
  }
  std::cout << "Shape check: erasure coding halves the capacity overhead of "
               "3-way\nreplication; GETs pay fan-in (k fragments) plus "
               "decode, PUTs pay encode but\nmove fragments instead of full "
               "copies.\n";
  if (core::json_mode(argc, argv)) {
    std::cout << "wrote " << report.write() << "\n";
  }
  return 0;
}
