// F3 — FPGA acceleration: per-kernel speedup vs CPU, and aggregate
// throughput as tenants share one device (time-sharing efficiency).
#include <iostream>

#include "accel/pool.hpp"
#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "sim/simulation.hpp"
#include "util/strings.hpp"

using namespace evolve;

int main() {
  // --- Per-kernel speedup ------------------------------------------
  {
    core::Table table("F3a: kernel offload speedup (1 s of CPU work)",
                      {"kernel", "cpu time", "offload time", "speedup"});
    const auto registry = accel::KernelRegistry::standard();
    for (const auto& name : registry.names()) {
      sim::Simulation sim;
      auto cluster = cluster::make_testbed(0, 0, 1);
      accel::AccelPool pool(sim, cluster);
      const util::TimeNs cpu = util::seconds(1);
      util::TimeNs done = -1;
      pool.offload(name, cpu, cluster::kInvalidNode,
                   [&] { done = sim.now(); });
      sim.run();
      table.add_row({name, util::human_time(cpu), util::human_time(done),
                     util::fixed(static_cast<double>(cpu) /
                                     static_cast<double>(done),
                                 2) +
                         "x"});
    }
    table.print();
  }

  // --- Sharing sweep ------------------------------------------------
  std::cout << "\n";
  {
    core::Table table(
        "F3b: one FPGA card shared by N tenants (fft, 1 s device work each)",
        {"tenants", "makespan", "aggregate throughput", "per-tenant slowdown"});
    for (int tenants : {1, 2, 4, 8, 16}) {
      sim::Simulation sim;
      auto cluster = cluster::make_testbed(0, 0, 1);
      // Use only device 0: direct device API isolates the sharing model.
      accel::DeviceConfig config;
      config.reconfiguration_latency = 0;
      config.max_concurrency = 4;
      accel::AccelDevice device(sim, "fpga0", config);
      int completed = 0;
      std::function<void()> feed = [&] {};
      int queued = tenants;
      std::function<void()> submit_next = [&] {
        while (queued > 0 && device.has_capacity()) {
          --queued;
          if (device.execute("fft", util::seconds(1), [&] {
                ++completed;
                submit_next();
              }) < 0) {
            ++queued;
            break;
          }
        }
      };
      submit_next();
      sim.run();
      const double makespan_s = util::to_seconds(sim.now());
      table.add_row(
          {std::to_string(tenants), util::human_time(sim.now()),
           util::fixed(completed / makespan_s, 2) + " jobs/s",
           util::fixed(makespan_s / static_cast<double>(1), 2) + "x"});
      (void)feed;
    }
    table.print();
  }
  std::cout << "\nShape check: aggregate throughput is flat at ~1 job/s "
               "(device-bound)\nonce the card saturates; adding tenants "
               "stretches per-tenant latency linearly.\n";
  return 0;
}
