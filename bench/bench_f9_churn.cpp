// F9 — Simulation-kernel churn: thousands of concurrent flows with Poisson
// arrivals and mid-flight cancels on a racked topology, run through both
// fabric engines (incremental grouped solver vs from-scratch reference).
//
// Reports wall-clock per simulated flow, solver recompute counts, and the
// speedup of the incremental kernel; `--json` also writes
// BENCH_f9_churn.json for cross-PR tracking.
#include <chrono>
#include <iostream>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace evolve;

namespace {

constexpr int kHosts = 16;
constexpr int kRacks = 4;

struct Arrival {
  util::TimeNs time;
  cluster::NodeId src;
  cluster::NodeId dst;
  util::Bytes bytes;
};

struct Schedule {
  std::vector<Arrival> arrivals;
  std::vector<std::pair<util::TimeNs, int>> cancels;  // (time, arrival index)
};

// One opening shuffle wave (all arrivals at t=0) followed by Poisson churn.
// With 16 hosts there are only 240 distinct directed paths, so a 4096-flow
// wave stresses exactly what flow grouping is for: many flows, few groups.
Schedule make_schedule(int wave, int churn) {
  util::Rng rng(0xf9f9f9f9ULL);
  Schedule s;
  for (int i = 0; i < wave; ++i) {
    const auto src = static_cast<cluster::NodeId>(rng.uniform_int(0, kHosts - 1));
    auto dst = static_cast<cluster::NodeId>(rng.uniform_int(0, kHosts - 1));
    if (dst == src) dst = static_cast<cluster::NodeId>((dst + 1) % kHosts);
    s.arrivals.push_back(Arrival{0, src, dst, 256 * util::kMiB});
  }
  util::TimeNs t = 0;
  for (int i = 0; i < churn; ++i) {
    t += static_cast<util::TimeNs>(rng.exponential(1.0 / 20e3));  // ~20us mean
    const auto src = static_cast<cluster::NodeId>(rng.uniform_int(0, kHosts - 1));
    auto dst = static_cast<cluster::NodeId>(rng.uniform_int(0, kHosts - 1));
    if (dst == src) dst = static_cast<cluster::NodeId>((dst + 1) % kHosts);
    const util::Bytes bytes = rng.uniform_int(1, 16) * util::kMiB;
    const int index = wave + i;
    s.arrivals.push_back(Arrival{t, src, dst, bytes});
    if (rng.chance(0.15)) {
      s.cancels.emplace_back(
          t + static_cast<util::TimeNs>(rng.exponential(1.0 / 1e6)) + 1, index);
    }
  }
  return s;
}

struct ChurnResult {
  double wall_s = 0;
  std::int64_t recomputations = 0;
  std::int64_t completed = 0;
  std::int64_t cancelled = 0;
  std::size_t events = 0;
  int peak_concurrent = 0;
};

ChurnResult run_churn(const Schedule& schedule, bool reference) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(kHosts, 0, 0, kRacks);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology, net::FabricConfig{reference});
  ChurnResult result;
  std::vector<net::FlowId> started(schedule.arrivals.size(), -1);
  for (std::size_t i = 0; i < schedule.arrivals.size(); ++i) {
    const Arrival& a = schedule.arrivals[i];
    sim.at(a.time, [&, i, a] {
      started[i] = fabric.transfer(a.src, a.dst, a.bytes, [] {});
      result.peak_concurrent =
          std::max(result.peak_concurrent, fabric.active_flows());
    });
  }
  for (const auto& [time, index] : schedule.cancels) {
    sim.at(time, [&fabric, &started, index = index] {
      if (started[static_cast<std::size_t>(index)] >= 0) {
        fabric.cancel(started[static_cast<std::size_t>(index)]);
      }
    });
  }
  const auto begin = std::chrono::steady_clock::now();
  result.events = sim.run();
  const auto end = std::chrono::steady_clock::now();
  result.wall_s = std::chrono::duration<double>(end - begin).count();
  result.recomputations = fabric.stats().rate_recomputations;
  result.completed = fabric.stats().flows_completed;
  result.cancelled = fabric.stats().flows_cancelled;
  return result;
}

// Recomputes needed to absorb a same-timestamp wave of `n` flows.
std::int64_t wave_recomputations(int n) {
  sim::Simulation sim;
  auto cluster = cluster::make_testbed(kHosts, 0, 0, kRacks);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  util::Rng rng(7);
  net::FlowId last = -1;
  for (int i = 0; i < n; ++i) {
    const auto src = static_cast<cluster::NodeId>(rng.uniform_int(0, kHosts - 1));
    auto dst = static_cast<cluster::NodeId>(rng.uniform_int(0, kHosts - 1));
    if (dst == src) dst = static_cast<cluster::NodeId>((dst + 1) % kHosts);
    last = fabric.transfer(src, dst, 64 * util::kMiB, [] {});
  }
  fabric.flow_rate(last);  // force the deferred flush
  return fabric.stats().rate_recomputations;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kWave = 4096;
  constexpr int kChurn = 2048;
  const Schedule schedule = make_schedule(kWave, kChurn);

  const ChurnResult inc = run_churn(schedule, /*reference=*/false);
  const ChurnResult ref = run_churn(schedule, /*reference=*/true);

  const auto flows = static_cast<double>(schedule.arrivals.size());
  const double inc_us_per_flow = inc.wall_s * 1e6 / flows;
  const double ref_us_per_flow = ref.wall_s * 1e6 / flows;
  const double speedup = ref_us_per_flow / inc_us_per_flow;

  core::Table table("F9: fabric churn, 4096-flow wave + 2048 Poisson arrivals",
                    {"engine", "wall", "us/flow", "recomputes", "events",
                     "peak flows"});
  auto row = [&](const char* name, const ChurnResult& r, double us) {
    table.add_row({name, util::fixed(r.wall_s * 1e3, 1) + " ms",
                   util::fixed(us, 2), std::to_string(r.recomputations),
                   std::to_string(r.events), std::to_string(r.peak_concurrent)});
  };
  row("incremental", inc, inc_us_per_flow);
  row("reference", ref, ref_us_per_flow);
  table.print();
  std::cout << "\nSpeedup (wall-clock per flow): " << util::fixed(speedup, 1)
            << "x\n";

  core::Table waves("F9b: recomputes to absorb one same-timestamp wave",
                    {"wave flows", "recomputes (incremental)",
                     "recomputes (eager would be)"});
  core::MetricsReport report("f9_churn");
  report.set("flows_total", static_cast<std::int64_t>(schedule.arrivals.size()));
  report.set("peak_concurrent", inc.peak_concurrent);
  report.set("incremental_wall_s", inc.wall_s);
  report.set("incremental_us_per_flow", inc_us_per_flow);
  report.set("incremental_us_per_event",
             inc.wall_s * 1e6 / static_cast<double>(inc.events));
  report.set("incremental_rate_recomputations", inc.recomputations);
  report.set("incremental_events", static_cast<std::int64_t>(inc.events));
  report.set("reference_wall_s", ref.wall_s);
  report.set("reference_us_per_flow", ref_us_per_flow);
  report.set("reference_us_per_event",
             ref.wall_s * 1e6 / static_cast<double>(ref.events));
  report.set("reference_rate_recomputations", ref.recomputations);
  report.set("reference_events", static_cast<std::int64_t>(ref.events));
  report.set("speedup_per_flow", speedup);
  for (int n : {1024, 2048, 4096}) {
    const std::int64_t solves = wave_recomputations(n);
    waves.add_row({std::to_string(n), std::to_string(solves),
                   std::to_string(n)});
    report.set("wave_" + std::to_string(n) + "_recomputations", solves);
  }
  std::cout << "\n";
  waves.print();
  std::cout << "\nShape check: completions "
            << inc.completed << "/" << ref.completed << ", cancels "
            << inc.cancelled << "/" << ref.cancelled
            << " (engines must agree); wave recomputes stay flat while the "
               "wave size doubles.\n";

  if (core::json_mode(argc, argv)) {
    std::cout << "wrote " << report.write() << "\n";
  }
  return 0;
}
