// F1 — Dataflow strong scaling: analytics job runtime vs executor count,
// with locality-aware converged placement vs disaggregated placement.
#include <iostream>

#include "core/platform.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "util/strings.hpp"
#include "workloads/tabular.hpp"

using namespace evolve;

namespace {

util::TimeNs run_job(bool locality, int executors) {
  core::PlatformConfig config;
  config.compute_nodes = 16;
  config.storage_nodes = 8;
  config.accel_nodes = 0;
  config.locality_placement = locality;
  if (!locality) config.dataflow.locality_wait = 0;
  sim::Simulation sim;
  core::Platform platform(sim, config);
  core::Session session(platform);
  // Warm dataset: the converged platform keeps hot data in the storage
  // nodes' fast tiers, so locality pays in cache reads, not HDD queueing.
  session.create_dataset("events", 64, 4 * util::kGiB, /*warm_cache=*/true);
  const auto stats = session.run_dataflow(
      workloads::scan_filter_aggregate("events", "out", 32), executors, 4);
  return stats.duration;
}

}  // namespace

int main(int argc, char** argv) {
  core::Table table(
      "F1: analytics strong scaling (4 GiB scan/filter/aggregate)",
      {"executors", "converged (local)", "disaggregated", "speedup vs 1",
       "local/remote ratio"});
  core::MetricsReport report("f1_scaling");
  util::TimeNs base_local = 0;
  for (int executors : {1, 2, 4, 8, 16}) {
    const auto local = run_job(true, executors);
    const auto remote = run_job(false, executors);
    if (executors == 1) base_local = local;
    table.add_row({std::to_string(executors), util::human_time(local),
                   util::human_time(remote),
                   util::fixed(static_cast<double>(base_local) /
                                   static_cast<double>(local),
                               2) +
                       "x",
                   util::fixed(static_cast<double>(remote) /
                                   static_cast<double>(local),
                               2) +
                       "x"});
    const std::string width = std::to_string(executors);
    report.set("local_ns_" + width, static_cast<std::int64_t>(local));
    report.set("remote_ns_" + width, static_cast<std::int64_t>(remote));
    report.set("speedup_" + width, static_cast<double>(base_local) /
                                       static_cast<double>(local));
  }
  table.print();
  std::cout << "\nShape check: runtime falls with executors until the "
               "storage substrate\nsaturates; locality-aware placement wins "
               "at every width.\n";
  if (core::json_mode(argc, argv)) {
    std::cout << "wrote " << report.write() << "\n";
  }
  return 0;
}
