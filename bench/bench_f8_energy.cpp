// F8 — Energy: (a) energy-to-completion of the mobility pipeline,
// converged vs siloed (same hardware; shorter makespan = fewer idle
// joules), and (b) per-kernel FPGA energy-efficiency factors (the
// EUROSERVER/NanoStreams-style headline numbers).
#include <iostream>

#include "accel/kernels.hpp"
#include "core/energy.hpp"
#include "core/platform.hpp"
#include "core/report.hpp"
#include "core/siloed.hpp"
#include "util/strings.hpp"
#include "workloads/mobility.hpp"

using namespace evolve;

int main() {
  const core::PowerModel model;

  {
    core::Table table(
        "F8a: energy to complete the mobility pipeline (14 nodes)",
        {"deployment", "makespan", "mean active cores", "energy",
         "vs converged"});
    workloads::MobilityScenario scenario;
    scenario.trace_bytes = 2 * util::kGiB;

    double converged_joules = 0;
    for (const std::string mode : {"converged", "siloed"}) {
      sim::Simulation sim;
      util::TimeNs makespan = 0;
      double mean_millicores = 0;
      int nodes = 0;
      if (mode == "converged") {
        core::Platform platform(sim);
        workloads::stage_mobility_inputs(platform.catalog(), scenario);
        platform.run_workflow(workloads::mobility_pipeline(scenario),
                              [&](const workflow::WorkflowResult& r) {
                                makespan = r.duration;
                              });
        sim.run();
        mean_millicores = platform.orchestrator().mean_cpu_millicores();
        nodes = platform.cluster().size();
      } else {
        core::SiloedPlatform silos(sim);
        workloads::stage_mobility_inputs(silos.bigdata_catalog(), scenario);
        silos.run_workflow(workloads::mobility_pipeline(scenario),
                           [&](const workflow::WorkflowResult& r) {
                             makespan = r.duration;
                           });
        sim.run();
        for (core::Silo silo : {core::Silo::kCloud, core::Silo::kBigData,
                                core::Silo::kHpc}) {
          mean_millicores += silos.orchestrator(silo).mean_cpu_millicores();
        }
        nodes = silos.cluster().size();
      }
      const auto report =
          core::estimate_energy(model, nodes, makespan, mean_millicores);
      if (mode == "converged") converged_joules = report.total_joules();
      table.add_row(
          {mode, util::human_time(makespan),
           util::fixed(mean_millicores / 1000.0, 1),
           util::fixed(report.total_joules() / 1000.0, 1) + " kJ",
           util::fixed(report.total_joules() / converged_joules, 2) + "x"});
    }
    table.print();
  }

  std::cout << "\n";
  {
    core::Table table(
        "F8b: FPGA offload energy efficiency (1 s CPU work, 8 cores)",
        {"kernel", "speedup", "cpu energy", "fpga energy", "efficiency"});
    const auto registry = accel::KernelRegistry::standard();
    for (const auto& name : registry.names()) {
      const auto& profile = registry.profile(name);
      const double cpu_j = model.per_core_watts * 8.0;  // 8 cores x 1 s
      const double fpga_j =
          model.fpga_active_watts * (1.0 / profile.speedup);
      table.add_row({name, util::fixed(profile.speedup, 1) + "x",
                     util::fixed(cpu_j, 1) + " J",
                     util::fixed(fpga_j, 1) + " J",
                     util::fixed(core::offload_energy_ratio(
                                     model, util::seconds(1),
                                     profile.speedup, 8),
                                 1) +
                         "x"});
    }
    table.print();
  }
  std::cout << "\nShape check: the converged platform finishes sooner on the "
               "same hardware,\nso it burns fewer idle joules per pipeline; "
               "FPGA offload yields multi-x\nenergy-efficiency factors "
               "(compare EUROSERVER/NanoStreams ~5x claims).\n";
  return 0;
}
