// A4 — Ablation: speculative execution under straggler injection.
// Sweep the straggler rate; compare job completion time and wasted work
// with speculation off vs on. `--json` writes BENCH_a4_speculation.json.
#include <iostream>

#include "cluster/cluster.hpp"
#include "core/report.hpp"
#include "dataflow/engine.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "util/strings.hpp"
#include "workloads/tabular.hpp"

using namespace evolve;

namespace {

dataflow::JobStats run_once(double straggler_rate, bool speculation) {
  dataflow::DataflowConfig config;
  config.locality_wait = 0;
  config.straggler_probability = straggler_rate;
  config.straggler_slowdown = 8.0;
  config.straggler_seed = 4242;
  config.speculation = speculation;
  config.speculation_multiplier = 1.4;
  config.speculation_quantile = 0.5;

  sim::Simulation sim;
  auto cluster = cluster::make_testbed(8, 4, 0);
  net::Topology topology(cluster);
  net::Fabric fabric(sim, topology);
  storage::IoSubsystem io(sim, cluster);
  storage::ObjectStore store(sim, cluster, fabric, io,
                             cluster.nodes_with_label("role=storage"));
  storage::DatasetCatalog catalog(store);
  catalog.define(storage::DatasetSpec{"in", 64, 512 * util::kMiB});
  catalog.preload("in", /*warm_cache=*/true);
  dataflow::DataflowEngine engine(sim, cluster, fabric, io, catalog, config);

  dataflow::LogicalPlan plan;
  const int src = plan.add_source("in");
  const int heavy = plan.add_map(src, "heavy", 0.4, 15.0);
  plan.add_sink(heavy, "out");
  std::vector<dataflow::ExecutorSpec> execs;
  for (auto node : cluster.nodes_with_label("role=compute")) {
    execs.push_back(dataflow::ExecutorSpec{node, 4});
  }
  dataflow::JobStats stats;
  engine.run(plan, execs, [&](const dataflow::JobStats& s) { stats = s; });
  sim.run();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  core::Table table(
      "A4: speculative execution vs stragglers (64 tasks, 8x slowdown)",
      {"straggler rate", "spec off", "spec on", "speedup", "backups",
       "backup wins"});
  core::MetricsReport report("a4_speculation");
  for (double rate : {0.0, 0.05, 0.15, 0.30}) {
    const auto off = run_once(rate, false);
    const auto on = run_once(rate, true);
    table.add_row({util::fixed(rate * 100, 0) + "%",
                   util::human_time(off.duration),
                   util::human_time(on.duration),
                   util::fixed(static_cast<double>(off.duration) /
                                   static_cast<double>(on.duration),
                               2) +
                       "x",
                   std::to_string(on.speculative_launched),
                   std::to_string(on.speculative_wins)});
    const std::string prefix =
        "rate_" + std::to_string(static_cast<int>(rate * 100));
    report.set(prefix + "_off_duration_ms",
               static_cast<double>(off.duration) / 1e6);
    report.set(prefix + "_on_duration_ms",
               static_cast<double>(on.duration) / 1e6);
    report.set(prefix + "_backups", on.speculative_launched);
    report.set(prefix + "_backup_wins", on.speculative_wins);
  }
  table.print();
  std::cout << "\nShape check: with no stragglers speculation is a no-op; "
               "as the straggler\nrate grows, backup copies clip the tail "
               "and the benefit widens.\n";
  if (core::json_mode(argc, argv)) {
    std::cout << "wrote " << report.write() << "\n";
  }
  return 0;
}
