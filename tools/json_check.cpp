// Strict JSON validation CLI used by scripts/check.sh to gate the
// emitted BENCH_*.json / TRACE_*.json files:
//
//   json_check file.json [more.json ...]
//
// Exits 0 when every file is a valid RFC 8259 document, 1 otherwise,
// printing the first offending byte offset per bad file.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "util/json.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: json_check <file.json> [...]\n";
    return 2;
  }
  int bad = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << argv[i] << ": cannot open\n";
      ++bad;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const auto check = evolve::util::validate_json(buffer.str());
    if (!check) {
      std::cerr << argv[i] << ": invalid JSON at byte " << check.offset
                << ": " << check.error << "\n";
      ++bad;
    } else {
      std::cout << argv[i] << ": ok\n";
    }
  }
  return bad == 0 ? 0 : 1;
}
