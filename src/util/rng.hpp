// Deterministic seeded random number generation for workload synthesis.
//
// The library never uses std::random_device or wall-clock entropy: every
// experiment is reproducible from its seed. The core generator is
// xoshiro256**, seeded through SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace evolve::util {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** deterministic PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 uniform bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponentially distributed value with the given rate (mean = 1/rate).
  double exponential(double rate);

  /// Standard normal via Box-Muller, then scaled.
  double normal(double mean, double stddev);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::int64_t poisson(double mean);

  /// Zipf-distributed rank in [0, n) with skew `s` (s=0 is uniform).
  std::int64_t zipf(std::int64_t n, double s);

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Bernoulli trial with probability p.
  bool chance(double p);

  /// Picks a random index weighted by `weights` (need not be normalized).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derives an independent child generator (stable across calls order).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
  // Cached Zipf normalization: recomputed when (n, s) changes.
  std::int64_t zipf_n_ = -1;
  double zipf_s_ = -1.0;
  double zipf_norm_ = 0.0;
};

}  // namespace evolve::util
