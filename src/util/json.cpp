#include "util/json.hpp"

#include <cctype>

namespace evolve::util {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonCheck run() {
    skip_ws();
    if (!value()) return fail_state_;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content after document");
    JsonCheck ok;
    ok.ok = true;
    ok.offset = pos_;
    return ok;
  }

 private:
  JsonCheck fail(const std::string& message) {
    if (fail_state_.error.empty()) {
      fail_state_.ok = false;
      fail_state_.offset = pos_;
      fail_state_.error = message;
    }
    return fail_state_;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool literal(const char* word) {
    const std::size_t start = pos_;
    for (const char* p = word; *p; ++p, ++pos_) {
      if (eof() || peek() != *p) {
        pos_ = start;
        fail(std::string("invalid literal; expected '") + word + "'");
        return false;
      }
    }
    return true;
  }

  bool value() {
    if (eof()) {
      fail("unexpected end of input; expected a value");
      return false;
    }
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') {
        fail("expected string key in object");
        return false;
      }
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') {
        fail("expected ':' after object key");
        return false;
      }
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eof()) {
        fail("unterminated object");
        return false;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      fail("expected ',' or '}' in object");
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eof()) {
        fail("unterminated array");
        return false;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      fail("expected ',' or ']' in array");
      return false;
    }
  }

  bool hex4() {
    for (int i = 0; i < 4; ++i) {
      if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
        fail("invalid \\u escape (need 4 hex digits)");
        return false;
      }
      ++pos_;
    }
    return true;
  }

  bool string() {
    ++pos_;  // opening quote
    while (true) {
      if (eof()) {
        fail("unterminated string");
        return false;
      }
      const unsigned char c = static_cast<unsigned char>(peek());
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (eof()) {
          fail("unterminated escape");
          return false;
        }
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"':
          case '\\':
          case '/':
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            break;
          case 'u':
            if (!hex4()) return false;
            break;
          default:
            --pos_;
            fail("invalid escape character in string");
            return false;
        }
        continue;
      }
      if (c < 0x20) {
        fail("unescaped control character in string");
        return false;
      }
      ++pos_;
    }
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("expected digit in number");
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
    }
    return true;
  }

  bool number() {
    if (peek() == '-') ++pos_;
    if (eof()) {
      fail("expected digit in number");
      return false;
    }
    if (peek() == '0') {
      ++pos_;  // no leading zeros
    } else if (std::isdigit(static_cast<unsigned char>(peek()))) {
      if (!digits()) return false;
    } else {
      fail("invalid value (NaN/Infinity are not JSON)");
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  JsonCheck fail_state_;
};

}  // namespace

JsonCheck validate_json(const std::string& text) {
  return Parser(text).run();
}

}  // namespace evolve::util
