// Small formatting helpers for reports and benchmark tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace evolve::util {

/// "1.50 GiB", "512 B", ... (binary units).
std::string human_bytes(Bytes bytes);

/// "12.3 ms", "1.20 s", "450 us", ...
std::string human_time(TimeNs t);

/// Fixed-point formatting with `digits` decimals.
std::string fixed(double value, int digits = 2);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// True if `text` starts with `prefix`.
bool starts_with(const std::string& text, const std::string& prefix);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> split(const std::string& text, char sep);

}  // namespace evolve::util
