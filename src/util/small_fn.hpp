// Move-only callable with inline small-buffer storage.
//
// The simulation kernel schedules tens of millions of events per run;
// with std::function every capture larger than the implementation's tiny
// internal buffer (16 bytes on libstdc++) costs one heap allocation and
// one free per event. SmallFn stores captures up to kInlineBytes inline
// — sized so the common kernel captures (`this` + a couple of ids, a
// small struct, a wrapped callback) never touch the heap — and falls
// back to a heap-owned callable only above that.
//
// Unlike std::function, SmallFn is move-only, which is what lets it
// accept move-only captures (e.g. a lambda that owns another SmallFn).
// Trivially copyable captures are flagged at construction and moved with
// a plain memcpy, so relocating events inside the queue's buckets and
// heaps never runs user code.
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>  // std::bad_function_call
#include <new>
#include <type_traits>
#include <utility>

namespace evolve::util {

class SmallFn {
 public:
  /// Inline capture budget. 48 bytes holds `this` + five 64-bit ids with
  /// room to spare; measured against the repo's own schedule sites.
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    assign<D>(std::forward<F>(fn));
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  SmallFn& operator=(F&& fn) {
    reset();
    assign<D>(std::forward<F>(fn));
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() {
    if (!invoke_) throw std::bad_function_call();
    invoke_(buf_);
  }

 private:
  enum class Op { kMove, kDestroy };
  using Invoke = void (*)(void*);
  // kMove: relocate from src buffer into dst buffer (dst uninitialized,
  // src left destroyed). kDestroy: destroy the callable in dst.
  using Manage = void (*)(Op, void* dst, void* src);

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(void*) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D, typename F>
  void assign(F&& fn) {
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); };
      if constexpr (std::is_trivially_copyable_v<D> &&
                    std::is_trivially_destructible_v<D>) {
        manage_ = nullptr;  // memcpy-relocatable, nothing to destroy
      } else {
        manage_ = [](Op op, void* dst, void* src) {
          if (op == Op::kMove) {
            D* from = std::launder(reinterpret_cast<D*>(src));
            ::new (dst) D(std::move(*from));
            from->~D();
          } else {
            std::launder(reinterpret_cast<D*>(dst))->~D();
          }
        };
      }
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(buf_)) =
          new D(std::forward<F>(fn));
      invoke_ = [](void* p) { (**reinterpret_cast<D**>(p))(); };
      manage_ = [](Op op, void* dst, void* src) {
        if (op == Op::kMove) {
          std::memcpy(dst, src, sizeof(D*));
        } else {
          delete *reinterpret_cast<D**>(dst);
        }
      };
    }
  }

  void move_from(SmallFn& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (invoke_) {
      if (manage_) {
        manage_(Op::kMove, buf_, other.buf_);
      } else {
        std::memcpy(buf_, other.buf_, kInlineBytes);
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void reset() {
    if (manage_) manage_(Op::kDestroy, buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  // Pointer-aligned, not max_align_t: keeps sizeof(SmallFn) == 64 with no
  // padding inside the queue's Entry. Captures needing stricter alignment
  // (e.g. SIMD members) take the heap path via fits_inline().
  alignas(void*) unsigned char buf_[kInlineBytes];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace evolve::util
