// String interning with stable storage.
//
// The tracer records a span name and layer label for every span; before
// interning each span copied its strings into a std::string (one or two
// heap allocations per span on the hot path). The interner stores each
// distinct string once in an arena and hands out std::string_view values
// that stay valid for the interner's lifetime, so recording a span with a
// previously-seen name allocates nothing.
#pragma once

#include <cstddef>
#include <string_view>
#include <unordered_map>

#include "util/arena.hpp"

namespace evolve::util {

class StringInterner {
 public:
  StringInterner() : arena_(16 * 1024) {}
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns a view of `s` backed by interner-owned storage; the view is
  /// valid as long as the interner lives. Re-interning an already-seen
  /// string is a hash lookup with no allocation.
  std::string_view intern(std::string_view s) {
    auto it = map_.find(s);
    if (it != map_.end()) return it->first;
    char* buf = static_cast<char*>(arena_.allocate(s.size(), 1));
    std::char_traits<char>::copy(buf, s.data(), s.size());
    std::string_view stable(buf, s.size());
    map_.emplace(stable, map_.size());
    return stable;
  }

  /// Number of distinct strings interned.
  std::size_t size() const { return map_.size(); }

 private:
  Arena arena_;
  // Keys are views into arena_ storage, so they never dangle.
  std::unordered_map<std::string_view, std::size_t> map_;
};

}  // namespace evolve::util
