// Strict JSON (RFC 8259) validation.
//
// The benches emit BENCH_*.json / TRACE_*.json files that downstream
// tooling ingests; a `nan` or a trailing comma slips through lenient
// parsers and then breaks the strict ones (Python's json, jq, Perfetto).
// This validator accepts exactly the RFC grammar — no NaN/Infinity, no
// comments, no trailing commas — and reports the first offending byte.
// It is shared by the unit tests and the `json_check` CLI used in
// scripts/check.sh.
#pragma once

#include <string>

namespace evolve::util {

struct JsonCheck {
  bool ok = false;
  std::size_t offset = 0;  // byte offset of the first error
  std::string error;       // empty when ok

  explicit operator bool() const { return ok; }
};

/// Validates that `text` is exactly one JSON document (surrounded only
/// by insignificant whitespace).
JsonCheck validate_json(const std::string& text);

}  // namespace evolve::util
