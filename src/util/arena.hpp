// Arena, slab, and chunked-buffer allocation for the simulation hot path.
//
// The kernel's highest-churn objects — serve in-flight records, fabric
// flow state, trace spans — used to live in node-based containers
// (std::map, per-element vectors), paying one malloc/free round trip per
// object. These three primitives remove that churn:
//
//  * Arena      — bump allocator over chained blocks; allocation is a
//                 pointer increment, individual frees do not exist, and
//                 reset() recycles every block at once.
//  * Slab<T>    — typed object pool: acquire() placement-news a T into an
//                 arena-backed cell (reusing a free-listed cell when one
//                 exists), release() destroys it and recycles the cell.
//                 Pointers are stable for the object's lifetime.
//  * ChunkedVector<T> — append-only storage in fixed-size chunks: no
//                 reallocation copies, stable element addresses, O(1)
//                 index. This is the "per-scenario append-only buffer"
//                 that trace span recording writes into.
//
// None of these are thread-safe; the simulation is single-threaded by
// design (determinism is the contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace evolve::util {

class Arena {
 public:
  explicit Arena(std::size_t block_bytes = 64 * 1024)
      : block_bytes_(block_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (power of two, at
  /// most alignof(std::max_align_t)). Never returns nullptr.
  void* allocate(std::size_t bytes, std::size_t align) {
    std::size_t p = (cursor_ + (align - 1)) & ~(align - 1);
    if (current_ == nullptr || p + bytes > block_end_) {
      new_block(bytes);
      p = cursor_;  // fresh blocks are max_align_t-aligned
    }
    cursor_ = p + bytes;
    ++allocations_;
    return current_ + p;
  }

  /// Recycles every block: the arena is empty again but keeps its memory.
  void reset() {
    free_blocks_.insert(free_blocks_.end(),
                        std::make_move_iterator(used_blocks_.begin()),
                        std::make_move_iterator(used_blocks_.end()));
    used_blocks_.clear();
    current_ = nullptr;
    cursor_ = 0;
    block_end_ = 0;
  }

  std::size_t allocations() const { return allocations_; }
  std::size_t blocks() const {
    return used_blocks_.size() + free_blocks_.size();
  }

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
  };

  void new_block(std::size_t need) {
    const std::size_t want = need > block_bytes_ ? need : block_bytes_;
    if (!free_blocks_.empty() && free_blocks_.back().size >= want) {
      used_blocks_.push_back(std::move(free_blocks_.back()));
      free_blocks_.pop_back();
    } else {
      Block b;
      b.size = want;
      // Plain new[]: guaranteed aligned for max_align_t, and must stay
      // plain so unique_ptr's delete[] pairs with it (an aligned new
      // here with a plain delete[] is undefined behaviour).
      b.data.reset(new unsigned char[want]);
      used_blocks_.push_back(std::move(b));
    }
    current_ = used_blocks_.back().data.get();
    block_end_ = used_blocks_.back().size;
    cursor_ = 0;
  }

  std::size_t block_bytes_;
  std::vector<Block> used_blocks_;
  std::vector<Block> free_blocks_;
  unsigned char* current_ = nullptr;
  std::size_t cursor_ = 0;
  std::size_t block_end_ = 0;
  std::size_t allocations_ = 0;
};

template <typename T>
class Slab {
 public:
  explicit Slab(std::size_t cells_per_block = 256)
      : arena_(cells_per_block * sizeof(Cell)) {}
  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;
  ~Slab() {
    // Live objects must be released by the owner before the slab dies;
    // cells themselves are plain storage and free with the arena.
  }

  template <typename... Args>
  T* acquire(Args&&... args) {
    Cell* cell;
    if (free_ != nullptr) {
      cell = free_;
      free_ = free_->next;
    } else {
      cell = static_cast<Cell*>(arena_.allocate(sizeof(Cell), alignof(Cell)));
      ++capacity_;
    }
    T* obj = ::new (static_cast<void*>(cell->storage))
        T(std::forward<Args>(args)...);
    ++live_;
    return obj;
  }

  void release(T* obj) {
    obj->~T();
    Cell* cell = reinterpret_cast<Cell*>(
        reinterpret_cast<unsigned char*>(obj) - offsetof(Cell, storage));
    cell->next = free_;
    free_ = cell;
    --live_;
  }

  std::size_t live() const { return live_; }
  /// Cells ever carved out of the arena (the pool's high-water mark).
  std::size_t capacity() const { return capacity_; }

 private:
  union Cell {
    Cell* next;
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
  };

  Arena arena_;
  Cell* free_ = nullptr;
  std::size_t live_ = 0;
  std::size_t capacity_ = 0;
};

template <typename T, std::size_t kChunkSize = 1024>
class ChunkedVector {
  static_assert(std::is_default_constructible_v<T>,
                "ChunkedVector elements are default-constructed per chunk");

 public:
  ChunkedVector() = default;
  ChunkedVector(const ChunkedVector&) = delete;
  ChunkedVector& operator=(const ChunkedVector&) = delete;

  T& push_back(T value) {
    T& cell = next_cell();
    cell = std::move(value);
    return cell;
  }

  T& operator[](std::size_t i) {
    return chunks_[i / kChunkSize][i % kChunkSize];
  }
  const T& operator[](std::size_t i) const {
    return chunks_[i / kChunkSize][i % kChunkSize];
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pre-allocates chunks so the next `n - size()` appends allocate
  /// nothing (the zero-allocation guarantee hot loops assert on).
  void reserve(std::size_t n) {
    while (chunks_.size() * kChunkSize < n) add_chunk();
  }

  template <typename Self>
  class Iter {
   public:
    Iter(Self* v, std::size_t i) : v_(v), i_(i) {}
    auto& operator*() const { return (*v_)[i_]; }
    auto* operator->() const { return &(*v_)[i_]; }
    Iter& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const Iter& o) const { return i_ == o.i_; }
    bool operator!=(const Iter& o) const { return i_ != o.i_; }

   private:
    Self* v_;
    std::size_t i_;
  };
  using iterator = Iter<ChunkedVector>;
  using const_iterator = Iter<const ChunkedVector>;

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, size_}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size_}; }

 private:
  T& next_cell() {
    if (size_ == chunks_.size() * kChunkSize) add_chunk();
    T& cell = (*this)[size_];
    ++size_;
    return cell;
  }

  void add_chunk() { chunks_.push_back(std::make_unique<T[]>(kChunkSize)); }

  std::vector<std::unique_ptr<T[]>> chunks_;
  std::size_t size_ = 0;
};

}  // namespace evolve::util
