// Circuit breaker: closed → open → half-open with a probe trickle.
//
// Complements RetryBudget (see retry_budget.hpp): the budget limits how
// *much* a layer retries, the breaker limits how *often* it hammers a
// dependency that is failing outright. After `failure_threshold`
// consecutive failures the breaker opens and rejects work for
// `cooldown`; it then half-opens and lets at most `probe_quota` probes
// through — `probe_successes_to_close` successes close it again, a
// single probe failure re-opens it for another cooldown. State advances
// lazily against the simulation clock (no scheduled events), so an idle
// breaker costs nothing and the whole machine is trivially
// deterministic.
#pragma once

#include <cstdint>

#include "sim/simulation.hpp"
#include "util/types.hpp"

namespace evolve::util {

struct CircuitBreakerConfig {
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 5;
  /// How long the open state rejects everything before probing.
  TimeNs cooldown = 5 * kSecond;
  /// Probes admitted per half-open round.
  int probe_quota = 3;
  /// Probe successes needed to close from half-open.
  int probe_successes_to_close = 2;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(sim::Simulation& sim,
                          CircuitBreakerConfig config = {})
      : sim_(sim), config_(config) {}

  /// True when the protected operation may proceed. Open: always false.
  /// Half-open: true for the first probe_quota calls of the round.
  bool allow() {
    advance();
    if (state_ == State::kClosed) return true;
    if (state_ == State::kHalfOpen && probes_used_ < config_.probe_quota) {
      ++probes_used_;
      return true;
    }
    ++rejected_;
    return false;
  }

  void record_success() {
    advance();
    if (state_ == State::kHalfOpen) {
      if (++probe_successes_ >= config_.probe_successes_to_close) reset();
      return;
    }
    consecutive_failures_ = 0;
  }

  void record_failure() {
    advance();
    if (state_ == State::kHalfOpen) {
      trip();  // a failed probe re-opens for another cooldown
      return;
    }
    if (state_ == State::kClosed &&
        ++consecutive_failures_ >= config_.failure_threshold) {
      trip();
    }
  }

  State state() const {
    const_cast<CircuitBreaker*>(this)->advance();
    return state_;
  }
  std::int64_t times_opened() const { return times_opened_; }
  std::int64_t rejections() const { return rejected_; }

 private:
  void advance() {
    if (state_ == State::kOpen && sim_.now() >= open_until_) {
      state_ = State::kHalfOpen;
      probes_used_ = 0;
      probe_successes_ = 0;
    }
  }

  void trip() {
    state_ = State::kOpen;
    open_until_ = sim_.now() + config_.cooldown;
    consecutive_failures_ = 0;
    ++times_opened_;
  }

  void reset() {
    state_ = State::kClosed;
    consecutive_failures_ = 0;
  }

  sim::Simulation& sim_;
  CircuitBreakerConfig config_;
  State state_ = State::kClosed;
  TimeNs open_until_ = 0;
  int consecutive_failures_ = 0;
  int probes_used_ = 0;
  int probe_successes_ = 0;
  std::int64_t times_opened_ = 0;
  std::int64_t rejected_ = 0;
};

}  // namespace evolve::util
