#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace evolve::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double rate) {
  if (rate <= 0) throw std::invalid_argument("exponential: rate <= 0");
  double u = next_double();
  while (u == 0.0) u = next_double();
  return -std::log(u) / rate;
}

double Rng::normal(double mean, double stddev) {
  double u1 = next_double();
  while (u1 == 0.0) u1 = next_double();
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

std::int64_t Rng::poisson(double mean) {
  if (mean < 0) throw std::invalid_argument("poisson: mean < 0");
  if (mean == 0) return 0;
  if (mean > 64.0) {
    const double v = normal(mean, std::sqrt(mean));
    return v < 0 ? 0 : static_cast<std::int64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  std::int64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= next_double();
  } while (p > limit);
  return k - 1;
}

std::int64_t Rng::zipf(std::int64_t n, double s) {
  if (n <= 0) throw std::invalid_argument("zipf: n <= 0");
  if (s == 0.0) return uniform_int(0, n - 1);
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_norm_ = 0.0;
    for (std::int64_t i = 1; i <= n; ++i) {
      zipf_norm_ += 1.0 / std::pow(static_cast<double>(i), s);
    }
  }
  // Inverse CDF by linear scan; adequate for the catalog sizes we model.
  const double target = next_double() * zipf_norm_;
  double acc = 0.0;
  for (std::int64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (acc >= target) return i - 1;
  }
  return n - 1;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::chance(double p) { return next_double() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0) throw std::invalid_argument("weighted_index: no mass");
  const double target = next_double() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (acc >= target) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace evolve::util
