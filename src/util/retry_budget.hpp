// Token-bucket retry budget: retries capped at a fraction of successes.
//
// Every layer in the platform retries on failure — dataflow tasks, serve
// hedges, store repairs, batch requeues. Retrying independently is what
// turns a healed partition into a metastable collapse: the backlog of
// failures converts into a synchronized retry wave whose added load
// keeps the goodput below the arrival rate even after the trigger is
// gone. A RetryBudget breaks the feedback loop by making retry capacity
// proportional to *observed success*: each success deposits
// `deposit_ratio` tokens (capped at `burst`), each retry withdraws one,
// and a layer whose budget is empty must shed/defer instead of retrying.
// During an outage successes stop, the budget drains, and the retry
// volume decays to the trickle the bucket's refill allows — so the
// moment the fault heals, real traffic (not amplified retries) fills the
// pipe.
//
// The budget is deliberately clock-free (pure success-ratio accounting),
// so it is deterministic and shareable across layers: wiring several
// subsystems to one budget gives the cluster a global retry ceiling.
#pragma once

#include <algorithm>
#include <cstdint>

namespace evolve::util {

struct RetryBudgetConfig {
  /// Tokens deposited per recorded success (0.1 = retries capped at
  /// ~10% of the success rate, the classic production setting).
  double deposit_ratio = 0.1;
  /// Bucket capacity: the largest retry burst a quiet period can bank.
  double burst = 10.0;
  /// Initial tokens (a full bucket lets startup retries through before
  /// the first successes land).
  double initial = 10.0;
};

class RetryBudget {
 public:
  explicit RetryBudget(RetryBudgetConfig config = {})
      : config_(config),
        tokens_(std::min(config.initial, config.burst)) {}

  /// A unit of real work completed; deposits deposit_ratio tokens.
  void record_success() {
    ++successes_;
    tokens_ = std::min(config_.burst, tokens_ + config_.deposit_ratio);
  }

  /// True when a retry may proceed (withdraws one token). False means
  /// the caller must defer or shed — not silently retry anyway.
  bool try_retry() {
    if (would_allow()) {
      tokens_ = std::max(0.0, tokens_ - 1.0);
      ++granted_;
      return true;
    }
    ++denied_;
    return false;
  }

  /// Non-consuming peek (e.g. to decide between hedge and wait). The
  /// epsilon absorbs accumulated deposit rounding: ten 0.1-deposits must
  /// bank exactly one retry even though 10 x 0.1 < 1.0 in binary.
  bool would_allow() const { return tokens_ >= 1.0 - 1e-9; }

  double tokens() const { return tokens_; }
  std::int64_t successes() const { return successes_; }
  std::int64_t retries_granted() const { return granted_; }
  std::int64_t retries_denied() const { return denied_; }

 private:
  RetryBudgetConfig config_;
  double tokens_;
  std::int64_t successes_ = 0;
  std::int64_t granted_ = 0;
  std::int64_t denied_ = 0;
};

}  // namespace evolve::util
