// Minimal leveled logger. Off by default so benchmarks stay quiet;
// tests and examples can raise the level for debugging.
#pragma once

#include <sstream>
#include <string>

namespace evolve::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

/// Stream-style helper: LOG_AT(kInfo, "orch") << "placed pod " << id;
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { log_line(level_, component_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace evolve::util

#define EVOLVE_LOG(level, component) \
  ::evolve::util::LogStream(::evolve::util::LogLevel::level, component)
