// Saturating exponential backoff.
//
// `base << (attempt - 1)` is the obvious formula, but shifting a signed
// 64-bit base left by enough attempts is undefined behaviour and in
// practice wraps to a negative delay — which a simulation happily
// schedules in the past. Every retry path uses this helper instead: it
// checks the available headroom with countl_zero and saturates at
// kMaxBackoff, which leaves room for the +25% jitter the retry paths add
// on top without overflowing.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace evolve::util {

/// Ceiling for backoff delays (~29 years of simulated time). Chosen as
/// int64_max/4 so `delay + delay/4` jitter can never overflow.
inline constexpr TimeNs kMaxBackoff =
    std::numeric_limits<TimeNs>::max() / 4;

/// base * 2^(attempt-1), saturated at kMaxBackoff. attempt is 1-based;
/// non-positive bases or attempts yield 0 (retry immediately).
inline TimeNs saturating_backoff(TimeNs base, int attempt) {
  if (base <= 0 || attempt <= 0) return 0;
  const int shift = attempt - 1;
  // countl_zero - 1 is the largest safe left shift for this base; stay
  // under kMaxBackoff (two bits below the sign bit) with another -2.
  const int headroom =
      std::countl_zero(static_cast<std::uint64_t>(base)) - 3;
  if (shift > headroom) return kMaxBackoff;
  const TimeNs delay = base << shift;
  return delay > kMaxBackoff ? kMaxBackoff : delay;
}

/// `delay` plus uniform [0, frac)·delay seeded jitter — the canonical
/// desynchronizer for retry/repair waves (a synchronized wave after mass
/// recovery is the seed of a metastable retry storm). kMaxBackoff leaves
/// headroom for frac <= 0.25 without overflow.
inline TimeNs jittered(TimeNs delay, Rng& rng, double frac = 0.25) {
  if (delay <= 0 || frac <= 0) return delay;
  return delay +
         static_cast<TimeNs>(rng.uniform(0.0, frac) *
                             static_cast<double>(delay));
}

}  // namespace evolve::util
