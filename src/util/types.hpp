// Basic shared aliases and small value types used across the EVOLVE library.
#pragma once

#include <cstdint>
#include <string>

namespace evolve::util {

/// Simulated time in integer nanoseconds (deterministic, no floating drift).
using TimeNs = std::int64_t;

/// Byte counts. Signed to make arithmetic on deltas safe.
using Bytes = std::int64_t;

inline constexpr TimeNs kNanosecond = 1;
inline constexpr TimeNs kMicrosecond = 1'000;
inline constexpr TimeNs kMillisecond = 1'000'000;
inline constexpr TimeNs kSecond = 1'000'000'000;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// Converts simulated nanoseconds to seconds as a double (for reporting).
constexpr double to_seconds(TimeNs t) { return static_cast<double>(t) / 1e9; }

/// Converts simulated nanoseconds to milliseconds as a double (for reporting).
constexpr double to_millis(TimeNs t) { return static_cast<double>(t) / 1e6; }

/// Converts (whole) seconds to simulated nanoseconds.
constexpr TimeNs seconds(double s) {
  return static_cast<TimeNs>(s * 1e9);
}

/// Converts milliseconds to simulated nanoseconds.
constexpr TimeNs millis(double ms) {
  return static_cast<TimeNs>(ms * 1e6);
}

/// Converts microseconds to simulated nanoseconds.
constexpr TimeNs micros(double us) {
  return static_cast<TimeNs>(us * 1e3);
}

}  // namespace evolve::util
