#include "util/strings.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace evolve::util {

std::string fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string human_bytes(Bytes bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  double v = static_cast<double>(bytes);
  bool negative = v < 0;
  if (negative) v = -v;
  int unit = 0;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  std::string body =
      unit == 0 ? fixed(v, 0) + " " + units[unit] : fixed(v, 2) + " " + units[unit];
  return negative ? "-" + body : body;
}

std::string human_time(TimeNs t) {
  double v = static_cast<double>(t);
  bool negative = v < 0;
  if (negative) v = -v;
  std::string body;
  if (v < 1e3) {
    body = fixed(v, 0) + " ns";
  } else if (v < 1e6) {
    body = fixed(v / 1e3, 2) + " us";
  } else if (v < 1e9) {
    body = fixed(v / 1e6, 2) + " ms";
  } else if (v < 60e9) {
    body = fixed(v / 1e9, 2) + " s";
  } else {
    body = fixed(v / 60e9, 2) + " min";
  }
  return negative ? "-" + body : body;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::ostringstream out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out << sep;
    out << parts[i];
  }
  return out.str();
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

}  // namespace evolve::util
