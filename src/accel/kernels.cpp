#include "accel/kernels.hpp"

#include <stdexcept>

namespace evolve::accel {

void KernelRegistry::register_kernel(KernelProfile profile) {
  if (profile.name.empty()) throw std::invalid_argument("kernel needs a name");
  if (profile.speedup <= 0) throw std::invalid_argument("speedup must be > 0");
  if (profile.invoke_overhead < 0) {
    throw std::invalid_argument("negative overhead");
  }
  profiles_[profile.name] = std::move(profile);
}

bool KernelRegistry::has(const std::string& name) const {
  return profiles_.count(name) != 0;
}

const KernelProfile& KernelRegistry::profile(const std::string& name) const {
  auto it = profiles_.find(name);
  if (it == profiles_.end()) {
    throw std::out_of_range("unknown kernel: " + name);
  }
  return it->second;
}

std::vector<std::string> KernelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(profiles_.size());
  for (const auto& [name, profile] : profiles_) out.push_back(name);
  return out;
}

KernelRegistry KernelRegistry::standard() {
  KernelRegistry registry;
  registry.register_kernel({"pattern-match", 12.0, util::micros(150)});
  registry.register_kernel({"dnn-infer", 8.0, util::micros(200)});
  registry.register_kernel({"fft", 6.0, util::micros(100)});
  registry.register_kernel({"encrypt", 15.0, util::micros(80)});
  return registry;
}

}  // namespace evolve::accel
