// Cluster-wide accelerator pool: device discovery, least-loaded
// dispatch, and queueing when every device is saturated.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel/device.hpp"
#include "accel/kernels.hpp"
#include "cluster/cluster.hpp"
#include "metrics/registry.hpp"
#include "sim/simulation.hpp"

namespace evolve::accel {

class AccelPool {
 public:
  /// Builds one AccelDevice per physical card in the cluster.
  AccelPool(sim::Simulation& sim, const cluster::Cluster& cluster,
            KernelRegistry registry = KernelRegistry::standard(),
            DeviceConfig device_config = {});

  int device_count() const { return static_cast<int>(devices_.size()); }
  const AccelDevice& device(int index) const;
  const KernelRegistry& kernels() const { return registry_; }

  /// Offloads `cpu_time` worth of CPU work through `kernel`. Queues if
  /// all devices are saturated. Prefers a device on `near_node`
  /// (PCIe-local), falling back to the least-loaded device anywhere.
  void offload(const std::string& kernel, util::TimeNs cpu_time,
               cluster::NodeId near_node, std::function<void()> on_done);

  /// CPU-only execution time for comparison (no offload).
  static util::TimeNs cpu_time_for(util::TimeNs cpu_time) { return cpu_time; }

  /// Device time `kernel` needs for `cpu_time` of CPU work.
  util::TimeNs device_work(const std::string& kernel,
                           util::TimeNs cpu_time) const;

  int queued() const { return static_cast<int>(queue_.size()); }
  metrics::Registry& metrics() { return metrics_; }

  /// Mean utilization across devices.
  double mean_utilization() const;

  /// Gray-failure slowdown for every device hosted on `node` (>= 1;
  /// 1 restores full speed).
  void set_node_slowdown(cluster::NodeId node, double factor) {
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      if (device_nodes_[i] == node) devices_[i]->set_slowdown(factor);
    }
  }

 private:
  struct PendingOffload {
    std::string kernel;
    util::TimeNs work;
    cluster::NodeId near_node;
    std::function<void()> on_done;
  };

  int pick_device(cluster::NodeId near_node) const;
  void dispatch(PendingOffload pending);
  void drain_queue();

  sim::Simulation& sim_;
  KernelRegistry registry_;
  std::vector<std::unique_ptr<AccelDevice>> devices_;
  std::vector<cluster::NodeId> device_nodes_;
  std::deque<PendingOffload> queue_;
  metrics::Registry metrics_;
};

}  // namespace evolve::accel
