// Accelerator kernel catalog: per-kernel speedup profiles vs CPU.
//
// Profiles follow the EVOLVE/VINEYARD accelerated workloads: genomics
// pattern matching, DNN inference, FFT, and encryption offload.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace evolve::accel {

struct KernelProfile {
  std::string name;
  double speedup = 1.0;            // device time = cpu time / speedup
  util::TimeNs invoke_overhead = 0;  // host->device control + DMA setup
};

class KernelRegistry {
 public:
  /// Registers or replaces a kernel profile.
  void register_kernel(KernelProfile profile);

  bool has(const std::string& name) const;
  const KernelProfile& profile(const std::string& name) const;
  std::vector<std::string> names() const;

  /// The standard EVOLVE kernel set.
  static KernelRegistry standard();

 private:
  std::map<std::string, KernelProfile> profiles_;
};

}  // namespace evolve::accel
