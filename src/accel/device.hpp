// FPGA device model: a fair-share processor.
//
// A device executes kernel invocations concurrently by splitting its
// throughput evenly (partial-reconfiguration time-sharing, as in the
// VINEYARD/EVOLVE accelerator stack). A task with `work` nanoseconds of
// device time finishes after `work * n` when n tasks share the device
// throughout. Switching to a different bitstream charges a
// reconfiguration penalty.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "metrics/timeseries.hpp"
#include "sim/simulation.hpp"
#include "util/types.hpp"

namespace evolve::accel {

using AccelTaskId = std::int64_t;

struct DeviceConfig {
  util::TimeNs reconfiguration_latency = util::millis(40);
  int max_concurrency = 4;  // virtual-device slots per card
};

class AccelDevice {
 public:
  AccelDevice(sim::Simulation& sim, std::string name,
              DeviceConfig config = {});

  /// Starts a kernel invocation needing `work` ns of exclusive device
  /// time. Returns an id, or -1 if the device is at max concurrency.
  AccelTaskId execute(const std::string& kernel, util::TimeNs work,
                      std::function<void()> on_done);

  int running() const { return static_cast<int>(tasks_.size()); }
  bool has_capacity() const {
    return running() < config_.max_concurrency;
  }
  const std::string& name() const { return name_; }
  const std::string& loaded_kernel() const { return loaded_kernel_; }
  std::int64_t completed() const { return completed_; }
  std::int64_t reconfigurations() const { return reconfigurations_; }

  /// Busy fraction since t=0.
  double utilization() const;

  /// Gray-failure slowdown: the device processes work `factor`x slower
  /// (>= 1; 1 restores full speed). In-flight kernels re-pace from now.
  void set_slowdown(double factor);
  double slowdown() const { return slowdown_; }

 private:
  struct Task {
    double remaining_work = 0;  // ns of device time still owed
    std::function<void()> on_done;
  };

  void settle();
  void reschedule();
  void on_completion();

  sim::Simulation& sim_;
  std::string name_;
  DeviceConfig config_;
  std::map<AccelTaskId, Task> tasks_;
  std::string loaded_kernel_;
  AccelTaskId next_id_ = 1;
  util::TimeNs last_settle_ = 0;
  double slowdown_ = 1.0;
  sim::EventId pending_event_ = 0;
  bool has_pending_event_ = false;
  std::int64_t completed_ = 0;
  std::int64_t reconfigurations_ = 0;
  metrics::UsageTracker busy_;
};

}  // namespace evolve::accel
