#include "accel/pool.hpp"

#include <climits>
#include <cmath>
#include <stdexcept>

namespace evolve::accel {

AccelPool::AccelPool(sim::Simulation& sim, const cluster::Cluster& cluster,
                     KernelRegistry registry, DeviceConfig device_config)
    : sim_(sim), registry_(std::move(registry)) {
  for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
    const auto& node = cluster.node(n);
    for (int card = 0; card < node.accel_devices; ++card) {
      devices_.push_back(std::make_unique<AccelDevice>(
          sim, node.name + "/fpga" + std::to_string(card), device_config));
      device_nodes_.push_back(n);
    }
  }
}

const AccelDevice& AccelPool::device(int index) const {
  return *devices_.at(static_cast<std::size_t>(index));
}

util::TimeNs AccelPool::device_work(const std::string& kernel,
                                    util::TimeNs cpu_time) const {
  const KernelProfile& profile = registry_.profile(kernel);
  return profile.invoke_overhead +
         static_cast<util::TimeNs>(
             std::ceil(static_cast<double>(cpu_time) / profile.speedup));
}

int AccelPool::pick_device(cluster::NodeId near_node) const {
  int best = -1;
  int best_load = INT_MAX;
  // First preference: least-loaded device with capacity on the near node.
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (device_nodes_[i] != near_node) continue;
    if (!devices_[i]->has_capacity()) continue;
    if (devices_[i]->running() < best_load) {
      best_load = devices_[i]->running();
      best = static_cast<int>(i);
    }
  }
  if (best >= 0) return best;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (!devices_[i]->has_capacity()) continue;
    if (devices_[i]->running() < best_load) {
      best_load = devices_[i]->running();
      best = static_cast<int>(i);
    }
  }
  return best;
}

void AccelPool::dispatch(PendingOffload pending) {
  const int index = pick_device(pending.near_node);
  if (index < 0) {
    queue_.push_back(std::move(pending));
    metrics_.set_gauge("queued", static_cast<double>(queue_.size()));
    return;
  }
  metrics_.count("offloads");
  auto on_done = std::move(pending.on_done);
  const auto id = devices_[static_cast<std::size_t>(index)]->execute(
      pending.kernel, pending.work,
      [this, cb = std::move(on_done)]() mutable {
        // Run the completion first, then admit queued work.
        cb();
        drain_queue();
      });
  if (id < 0) throw std::logic_error("picked device had no capacity");
}

void AccelPool::drain_queue() {
  while (!queue_.empty()) {
    // Try the head; if nothing has capacity it goes right back.
    PendingOffload pending = std::move(queue_.front());
    queue_.pop_front();
    const int index = pick_device(pending.near_node);
    if (index < 0) {
      queue_.push_front(std::move(pending));
      break;
    }
    dispatch(std::move(pending));
  }
  metrics_.set_gauge("queued", static_cast<double>(queue_.size()));
}

void AccelPool::offload(const std::string& kernel, util::TimeNs cpu_time,
                        cluster::NodeId near_node,
                        std::function<void()> on_done) {
  if (devices_.empty()) {
    throw std::logic_error("no accelerator devices in the cluster");
  }
  if (!registry_.has(kernel)) {
    throw std::invalid_argument("unknown kernel: " + kernel);
  }
  dispatch(PendingOffload{kernel, device_work(kernel, cpu_time), near_node,
                          std::move(on_done)});
}

double AccelPool::mean_utilization() const {
  if (devices_.empty()) return 0.0;
  double total = 0;
  for (const auto& device : devices_) total += device->utilization();
  return total / static_cast<double>(devices_.size());
}

}  // namespace evolve::accel
