#include "accel/device.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace evolve::accel {

AccelDevice::AccelDevice(sim::Simulation& sim, std::string name,
                         DeviceConfig config)
    : sim_(sim), name_(std::move(name)), config_(config), busy_(1.0) {
  if (config_.max_concurrency <= 0) {
    throw std::invalid_argument("device needs concurrency >= 1");
  }
}

void AccelDevice::settle() {
  const util::TimeNs now = sim_.now();
  if (now == last_settle_ || tasks_.empty()) {
    last_settle_ = now;
    return;
  }
  const double share = static_cast<double>(now - last_settle_) /
                       (static_cast<double>(tasks_.size()) * slowdown_);
  for (auto& [id, task] : tasks_) {
    task.remaining_work = std::max(0.0, task.remaining_work - share);
  }
  last_settle_ = now;
}

void AccelDevice::reschedule() {
  if (has_pending_event_) {
    sim_.cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (tasks_.empty()) return;
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& [id, task] : tasks_) {
    earliest = std::min(earliest, task.remaining_work);
  }
  // Each task drains at rate 1/(n * slowdown): wall = remaining * n * s.
  const double wall =
      earliest * static_cast<double>(tasks_.size()) * slowdown_;
  pending_event_ = sim_.after(
      static_cast<util::TimeNs>(std::ceil(wall)), [this] { on_completion(); });
  has_pending_event_ = true;
}

void AccelDevice::on_completion() {
  has_pending_event_ = false;
  settle();
  std::vector<std::function<void()>> done;
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    if (it->second.remaining_work <= 0.5) {
      done.push_back(std::move(it->second.on_done));
      it = tasks_.erase(it);
      ++completed_;
      busy_.add(sim_.now(), -1.0 / config_.max_concurrency);
    } else {
      ++it;
    }
  }
  reschedule();
  for (auto& cb : done) cb();
}

AccelTaskId AccelDevice::execute(const std::string& kernel, util::TimeNs work,
                                 std::function<void()> on_done) {
  if (work < 0) throw std::invalid_argument("negative kernel work");
  if (!has_capacity()) return -1;
  settle();
  util::TimeNs total = work;
  if (kernel != loaded_kernel_) {
    total += config_.reconfiguration_latency;
    loaded_kernel_ = kernel;
    ++reconfigurations_;
  }
  const AccelTaskId id = next_id_++;
  tasks_.emplace(id, Task{static_cast<double>(total), std::move(on_done)});
  busy_.add(sim_.now(), 1.0 / config_.max_concurrency);
  reschedule();
  return id;
}

double AccelDevice::utilization() const {
  return busy_.utilization(sim_.now());
}

void AccelDevice::set_slowdown(double factor) {
  if (factor < 1.0) throw std::invalid_argument("slowdown must be >= 1");
  settle();  // charge elapsed progress at the old pace first
  slowdown_ = factor;
  reschedule();
}

}  // namespace evolve::accel
