#include "workloads/mobility.hpp"

#include "cluster/resources.hpp"
#include "workloads/tabular.hpp"

namespace evolve::workloads {

void stage_mobility_inputs(storage::DatasetCatalog& catalog,
                           const MobilityScenario& scenario) {
  catalog.define(storage::DatasetSpec{"gps-traces",
                                      scenario.trace_partitions,
                                      scenario.trace_bytes});
  catalog.define(storage::DatasetSpec{"route-metadata",
                                      scenario.routes_partitions,
                                      scenario.routes_bytes});
  catalog.preload("gps-traces");
  catalog.preload("route-metadata");
}

workflow::Workflow mobility_pipeline(const MobilityScenario& scenario) {
  workflow::Workflow wf("urban-mobility");

  // 1. Validate & checkpoint incoming traces (cloud container).
  orch::PodSpec validator;
  validator.name = "trace-validator";
  validator.tenant = "mobility";
  validator.request = cluster::cpu_mem(2000, 4 * util::kGiB);
  auto validate =
      workflow::container_step("validate", validator, util::seconds(5));
  wf.add(validate);

  // 2. Analytics: join traces with route metadata, aggregate per route.
  auto analytics = workflow::dataflow_step(
      "route-analytics",
      join_aggregate("gps-traces", "route-metadata", "route-stats",
                     scenario.analytics_reducers),
      scenario.analytics_executors, 4);
  analytics.depends_on = {"validate"};
  analytics.input_datasets = {"gps-traces", "route-metadata"};
  wf.add(analytics);

  // 3. HPC clustering of mobility patterns over the aggregates.
  hpc::MpiProgram clustering;
  clustering.iterations = scenario.clustering_iterations;
  clustering.compute_per_iteration = scenario.clustering_compute;
  clustering.allreduce_bytes = 8 * util::kMiB;  // centroid exchange
  clustering.algo = hpc::CollectiveAlgo::kRing;
  auto cluster_step = workflow::hpc_step("pattern-clustering", clustering,
                                         scenario.clustering_ranks);
  cluster_step.depends_on = {"route-analytics"};
  cluster_step.input_datasets = {"route-stats"};
  wf.add(cluster_step);

  // 4. Publish results behind a serving container.
  orch::PodSpec server;
  server.name = "mobility-api";
  server.tenant = "mobility";
  server.request = cluster::cpu_mem(4000, 8 * util::kGiB);
  auto serve = workflow::container_step("serve", server, util::seconds(2));
  serve.depends_on = {"pattern-clustering"};
  wf.add(serve);

  return wf;
}

}  // namespace evolve::workloads
