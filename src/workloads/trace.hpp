// Mixed-workload trace synthesis for the scheduling experiments:
// Poisson/bursty arrivals of cloud services, batch analytics pods, and
// HPC gangs with log-normal service times.
#pragma once

#include <vector>

#include "core/unified_scheduler.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace evolve::workloads {

struct TraceParams {
  int jobs = 100;
  double arrivals_per_second = 2.0;
  /// Mix fractions (normalized internally).
  double service_fraction = 0.3;
  double batch_fraction = 0.5;
  double gang_fraction = 0.2;
  /// Service-time scale (log-normal median, seconds).
  double batch_median_s = 20.0;
  double service_median_s = 60.0;
  double gang_median_s = 40.0;
  int max_gang_width = 8;
};

/// Deterministic for a given rng seed.
std::vector<core::MixedJob> make_mixed_trace(util::Rng& rng,
                                             const TraceParams& params = {});

}  // namespace evolve::workloads
