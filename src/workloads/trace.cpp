#include "workloads/trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace evolve::workloads {

std::vector<core::MixedJob> make_mixed_trace(util::Rng& rng,
                                             const TraceParams& params) {
  if (params.jobs <= 0) throw std::invalid_argument("trace needs jobs");
  if (params.arrivals_per_second <= 0) {
    throw std::invalid_argument("arrival rate must be > 0");
  }
  const std::vector<double> mix = {params.service_fraction,
                                   params.batch_fraction,
                                   params.gang_fraction};
  std::vector<core::MixedJob> trace;
  trace.reserve(static_cast<std::size_t>(params.jobs));
  double clock_s = 0;
  for (int i = 0; i < params.jobs; ++i) {
    clock_s += rng.exponential(params.arrivals_per_second);
    core::MixedJob job;
    job.arrival = util::seconds(clock_s);
    switch (rng.weighted_index(mix)) {
      case 0: {
        job.kind = core::MixedJob::Kind::kService;
        job.pods = static_cast<int>(rng.uniform_int(1, 3));
        job.per_pod = cluster::cpu_mem(2000, 4 * util::kGiB);
        job.duration =
            util::seconds(rng.lognormal(std::log(params.service_median_s), 0.5));
        break;
      }
      case 1: {
        job.kind = core::MixedJob::Kind::kBatch;
        job.pods = static_cast<int>(rng.uniform_int(1, 4));
        job.per_pod = cluster::cpu_mem(4000, 8 * util::kGiB);
        job.duration =
            util::seconds(rng.lognormal(std::log(params.batch_median_s), 0.8));
        break;
      }
      default: {
        job.kind = core::MixedJob::Kind::kGang;
        job.pods = static_cast<int>(
            rng.uniform_int(2, std::max(2, params.max_gang_width)));
        job.per_pod = cluster::cpu_mem(8000, 16 * util::kGiB);
        job.duration =
            util::seconds(rng.lognormal(std::log(params.gang_median_s), 0.6));
        break;
      }
    }
    trace.push_back(job);
  }
  return trace;
}

}  // namespace evolve::workloads
