// The EVOLVE genomics use case: sequence-read QC, FPGA-accelerated
// pattern matching, and HPC assembly/consensus.
#pragma once

#include <string>

#include "storage/dataset.hpp"
#include "util/types.hpp"
#include "workflow/workflow.hpp"

namespace evolve::workloads {

struct GenomicsScenario {
  util::Bytes reads_bytes = 8 * util::kGiB;  // raw sequencing reads
  int read_partitions = 64;
  int qc_executors = 6;
  double qc_keep_fraction = 0.8;           // reads surviving QC
  /// CPU-equivalent time of the pattern-matching scan (offloaded to the
  /// "pattern-match" FPGA kernel).
  util::TimeNs pattern_match_cpu = util::seconds(90);
  int assembly_ranks = 8;
  int assembly_iterations = 20;
  util::TimeNs assembly_compute = util::millis(120);  // per rank per iter
};

/// Registers and preloads the raw-reads dataset.
void stage_genomics_inputs(storage::DatasetCatalog& catalog,
                           const GenomicsScenario& scenario);

/// QC filter -> accelerated pattern match -> HPC assembly -> publish.
workflow::Workflow genomics_pipeline(const GenomicsScenario& scenario);

}  // namespace evolve::workloads
