#include "workloads/tabular.hpp"

namespace evolve::workloads {

dataflow::LogicalPlan scan_filter_aggregate(const std::string& input,
                                            const std::string& output,
                                            int reducers,
                                            double filter_selectivity) {
  dataflow::LogicalPlan plan;
  const int src = plan.add_source(input);
  const int parsed = plan.add_map(src, "parse", 0.9, 0.6);
  const int filtered =
      plan.add_filter(parsed, "predicate", filter_selectivity, 0.2);
  const int reduced =
      plan.add_reduce_by_key(filtered, "aggregate", reducers, 0.1, 1.0);
  plan.add_sink(reduced, output);
  return plan;
}

dataflow::LogicalPlan join_aggregate(const std::string& left,
                                     const std::string& right,
                                     const std::string& output,
                                     int reducers) {
  dataflow::LogicalPlan plan;
  const int l = plan.add_source(left);
  const int lp = plan.add_map(l, "project-left", 0.7, 0.4);
  const int r = plan.add_source(right);
  const int rp = plan.add_map(r, "project-right", 0.7, 0.4);
  const int joined = plan.add_join(lp, rp, "key-join", reducers, 0.8, 1.5);
  const int reduced =
      plan.add_reduce_by_key(joined, "rollup", reducers, 0.05, 1.0);
  plan.add_sink(reduced, output);
  return plan;
}

dataflow::LogicalPlan sessionize(const std::string& input,
                                 const std::string& output, int reducers) {
  dataflow::LogicalPlan plan;
  const int src = plan.add_source(input);
  const int exploded = plan.add_flat_map(src, "explode-events", 1.6, 0.9);
  const int grouped =
      plan.add_group_by(exploded, "by-session", reducers, 0.9, 1.2);
  const int mapped = plan.add_map(grouped, "summarize", 0.2, 0.8);
  plan.add_sink(mapped, output);
  return plan;
}

dataflow::LogicalPlan featurize(const std::string& input,
                                const std::string& output,
                                double cpu_ns_per_byte) {
  dataflow::LogicalPlan plan;
  const int src = plan.add_source(input);
  const int features =
      plan.add_map(src, "featurize", 0.3, cpu_ns_per_byte);
  plan.add_sink(features, output);
  return plan;
}

}  // namespace evolve::workloads
