#include "workloads/ml.hpp"

#include <stdexcept>

namespace evolve::workloads {

hpc::MpiProgram sgd_program(const SgdModel& model, int workers,
                            hpc::CollectiveAlgo algo, double accel_speedup) {
  if (workers <= 0) throw std::invalid_argument("workers must be > 0");
  if (accel_speedup <= 0) throw std::invalid_argument("bad accel speedup");
  hpc::MpiProgram program;
  program.iterations = model.epochs;
  program.compute_per_iteration = model.epoch_compute / workers;
  program.allreduce_bytes = model.parameters_bytes;
  program.algo = algo;
  program.compute_speedup = accel_speedup;
  return program;
}

}  // namespace evolve::workloads
