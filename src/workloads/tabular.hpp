// Canonical tabular-analytics plans (TPC-style scan/filter/join/
// aggregate shapes) used across examples and benchmarks.
#pragma once

#include <string>

#include "dataflow/plan.hpp"

namespace evolve::workloads {

/// scan -> parse -> filter -> reduceByKey -> sink.
dataflow::LogicalPlan scan_filter_aggregate(const std::string& input,
                                            const std::string& output,
                                            int reducers = 16,
                                            double filter_selectivity = 0.2);

/// Two scans joined on a key, then aggregated.
dataflow::LogicalPlan join_aggregate(const std::string& left,
                                     const std::string& right,
                                     const std::string& output,
                                     int reducers = 16);

/// flatMap explosion -> groupBy (sessionization shape; data grows).
dataflow::LogicalPlan sessionize(const std::string& input,
                                 const std::string& output,
                                 int reducers = 16);

/// Compute-heavy featurization: map with high cpu cost, no shuffle.
dataflow::LogicalPlan featurize(const std::string& input,
                                const std::string& output,
                                double cpu_ns_per_byte = 12.0);

}  // namespace evolve::workloads
