// ML training workloads: distributed SGD shapes for the HPC runtime.
#pragma once

#include "hpc/collectives.hpp"
#include "hpc/job.hpp"
#include "util/types.hpp"

namespace evolve::workloads {

struct SgdModel {
  util::Bytes parameters_bytes = 64 * util::kMiB;  // gradient payload
  int epochs = 10;
  /// CPU time per worker per epoch at parallelism 1 over the full data.
  util::TimeNs epoch_compute = util::seconds(4);
};

/// Builds the per-iteration MPI program for `workers` data-parallel
/// workers: compute shrinks with workers (data parallel), gradients are
/// all-reduced each epoch.
hpc::MpiProgram sgd_program(const SgdModel& model, int workers,
                            hpc::CollectiveAlgo algo = hpc::CollectiveAlgo::kRing,
                            double accel_speedup = 1.0);

}  // namespace evolve::workloads
