#include "workloads/genomics.hpp"

#include "cluster/resources.hpp"

namespace evolve::workloads {

void stage_genomics_inputs(storage::DatasetCatalog& catalog,
                           const GenomicsScenario& scenario) {
  catalog.define(storage::DatasetSpec{"raw-reads", scenario.read_partitions,
                                      scenario.reads_bytes});
  catalog.preload("raw-reads");
}

workflow::Workflow genomics_pipeline(const GenomicsScenario& scenario) {
  workflow::Workflow wf("genomics");

  // 1. Quality control: trim adapters, drop low-quality reads.
  dataflow::LogicalPlan qc;
  const int src = qc.add_source("raw-reads");
  const int trimmed = qc.add_map(src, "trim-adapters", 0.95, 0.8);
  const int filtered =
      qc.add_filter(trimmed, "quality-filter", scenario.qc_keep_fraction, 0.5);
  qc.add_sink(filtered, "clean-reads");
  auto qc_step =
      workflow::dataflow_step("qc", qc, scenario.qc_executors, 4);
  qc_step.input_datasets = {"raw-reads"};
  wf.add(qc_step);

  // 2. FPGA-accelerated motif/pattern matching over the clean reads.
  auto match = workflow::accel_step("pattern-match", "pattern-match",
                                    scenario.pattern_match_cpu);
  match.depends_on = {"qc"};
  wf.add(match);

  // 3. Iterative assembly/consensus on the HPC partition.
  hpc::MpiProgram assembly;
  assembly.iterations = scenario.assembly_iterations;
  assembly.compute_per_iteration = scenario.assembly_compute;
  assembly.allreduce_bytes = 16 * util::kMiB;  // contig exchange
  assembly.algo = hpc::CollectiveAlgo::kRing;
  auto assemble =
      workflow::hpc_step("assembly", assembly, scenario.assembly_ranks);
  assemble.depends_on = {"pattern-match"};
  assemble.input_datasets = {"clean-reads"};
  wf.add(assemble);

  // 4. Publish results behind an API container.
  orch::PodSpec api;
  api.name = "genomics-api";
  api.tenant = "genomics";
  api.request = cluster::cpu_mem(2000, 4 * util::kGiB);
  auto publish = workflow::container_step("publish", api, util::seconds(2));
  publish.depends_on = {"assembly"};
  wf.add(publish);

  return wf;
}

}  // namespace evolve::workloads
