// The EVOLVE urban-mobility use case: bus/fleet trace analytics.
//
// Pipeline shape: ingest GPS traces -> dataflow join with route metadata
// and aggregation -> HPC clustering of mobility patterns -> publish a
// serving container. The converged platform runs all steps against one
// shared store; the siloed baseline must stage datasets between silos.
#pragma once

#include <string>

#include "storage/dataset.hpp"
#include "util/types.hpp"
#include "workflow/workflow.hpp"

namespace evolve::workloads {

struct MobilityScenario {
  util::Bytes trace_bytes = 2 * util::kGiB;  // raw GPS pings
  int trace_partitions = 32;
  util::Bytes routes_bytes = 64 * util::kMiB;  // route metadata
  int routes_partitions = 8;
  int analytics_reducers = 16;
  int analytics_executors = 6;
  int clustering_ranks = 8;
  int clustering_iterations = 15;
  util::TimeNs clustering_compute = util::millis(200);  // per rank per iter
};

/// Registers and preloads the scenario's input datasets into `catalog`.
void stage_mobility_inputs(storage::DatasetCatalog& catalog,
                           const MobilityScenario& scenario);

/// Builds the four-step converged workflow for the scenario.
/// `aggregated_name` is the dataset the analytics step produces and the
/// clustering step consumes.
workflow::Workflow mobility_pipeline(const MobilityScenario& scenario);

}  // namespace evolve::workloads
