// The pre-calendar binary-heap event queue, preserved verbatim as a
// reference implementation. It is not used by Simulation; it exists so
// the 100-seed equivalence soak and bench_f13_scale can compare the
// calendar queue's ordering and throughput against the exact kernel it
// replaced (std::function callbacks and all).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/types.hpp"

namespace evolve::sim {

using RefEventId = std::uint64_t;
using RefEventFn = std::function<void()>;

struct RefEvent {
  util::TimeNs time = 0;
  RefEventId id = 0;
  RefEventFn fn;
};

class RefEventQueue {
 public:
  RefEventId push(util::TimeNs time, RefEventFn fn);
  bool cancel(RefEventId id);
  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }
  util::TimeNs next_time() const;
  RefEvent pop();

 private:
  struct Entry {
    util::TimeNs time;
    std::uint64_t seq;
    std::uint32_t slot;
    RefEventFn fn;
  };
  struct Slot {
    std::uint32_t gen = 0;
    bool live = false;
  };

  static RefEventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<RefEventId>(gen) << 32) | slot;
  }

  static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void remove_top();
  void drop_dead_head() const;

  mutable std::vector<Entry> heap_;
  mutable std::vector<Slot> slots_;
  mutable std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace evolve::sim
