// The simulation kernel: a virtual clock plus an event queue.
//
// All EVOLVE subsystems (network fabric, storage devices, schedulers,
// dataflow/HPC runtimes) share one Simulation instance and advance the
// same clock, so cross-subsystem contention is modeled consistently.
#pragma once

#include <functional>
#include <stdexcept>

#include "sim/event_queue.hpp"
#include "util/types.hpp"

namespace evolve::sim {

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  util::TimeNs now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `time` (>= now).
  EventId at(util::TimeNs time, EventFn fn);

  /// Schedules `fn` after a relative delay (>= 0).
  EventId after(util::TimeNs delay, EventFn fn);

  /// Schedules `fn` to run at the current time, after already-queued
  /// same-time events (a "yield").
  EventId defer(EventFn fn) { return after(0, std::move(fn)); }

  /// Cancels a scheduled event. Returns false if it already ran.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue is empty or stop() is called.
  /// Returns the number of events executed.
  std::size_t run();

  /// Runs events with time <= `deadline`; the clock ends at
  /// min(deadline, last event time) or `deadline` if events remain.
  std::size_t run_until(util::TimeNs deadline);

  /// Executes exactly one event if any remain. Returns true if one ran.
  bool step();

  /// Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  /// True if there are pending events.
  bool has_events() const { return !queue_.empty(); }

  /// Number of events executed since construction.
  std::size_t events_executed() const { return executed_; }

 private:
  EventQueue queue_;
  util::TimeNs now_ = 0;
  bool stopped_ = false;
  std::size_t executed_ = 0;
};

}  // namespace evolve::sim
