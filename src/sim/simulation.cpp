#include "sim/simulation.hpp"

namespace evolve::sim {

EventId Simulation::at(util::TimeNs time, EventFn fn) {
  if (time < now_) throw std::invalid_argument("Simulation::at: time in past");
  return queue_.push(time, std::move(fn));
}

EventId Simulation::after(util::TimeNs delay, EventFn fn) {
  if (delay < 0) throw std::invalid_argument("Simulation::after: delay < 0");
  return queue_.push(now_ + delay, std::move(fn));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  Event event = queue_.pop();
  now_ = event.time;
  ++executed_;
  event.fn();
  return true;
}

std::size_t Simulation::run() {
  stopped_ = false;
  std::size_t count = 0;
  while (!stopped_ && step()) ++count;
  return count;
}

std::size_t Simulation::run_until(util::TimeNs deadline) {
  stopped_ = false;
  std::size_t count = 0;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    step();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

}  // namespace evolve::sim
