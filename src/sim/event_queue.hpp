// Priority queue of timestamped events with stable FIFO ordering for ties
// and O(log n) cancellation.
//
// Hot-path layout: callbacks live inline in the heap entries (no separate
// callback map), and cancellation is a generation-counted slot vector with
// a free list — cancel() flips one flag, pop() skips dead entries as they
// surface. push/pop perform no per-event node allocation beyond whatever
// the std::function itself owns.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/types.hpp"

namespace evolve::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

/// One scheduled callback. Ordering: earlier time first, then schedule
/// order, so same-time events run FIFO — this makes the whole simulation
/// deterministic.
struct Event {
  util::TimeNs time = 0;
  EventId id = 0;
  EventFn fn;
};

class EventQueue {
 public:
  /// Enqueues `fn` at absolute time `time`; returns a handle for cancel().
  EventId push(util::TimeNs time, EventFn fn);

  /// Marks an event as cancelled; it will be skipped when popped.
  /// Returns false if the event already ran or was already cancelled.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return live_count_ == 0; }

  /// Number of live events.
  std::size_t size() const { return live_count_; }

  /// Time of the earliest live event. Requires !empty().
  util::TimeNs next_time() const;

  /// Removes and returns the earliest live event. Requires !empty().
  Event pop();

 private:
  struct Entry {
    util::TimeNs time;
    std::uint64_t seq;   // monotonic schedule order; breaks time ties FIFO
    std::uint32_t slot;  // index into slots_
    EventFn fn;
  };
  // A slot is owned by exactly one heap entry from push() until that entry
  // physically leaves the heap; only then is it recycled (generation bump +
  // free list), so a stale EventId can never alias a newer event.
  struct Slot {
    std::uint32_t gen = 0;
    bool live = false;
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void remove_top();
  /// Pops cancelled entries off the heap top; recycles their slots.
  void drop_dead_head() const;

  // `mutable` so the const observers (next_time) can lazily reclaim
  // cancelled entries, mirroring the old tombstone-draining design.
  mutable std::vector<Entry> heap_;  // binary min-heap by (time, seq)
  mutable std::vector<Slot> slots_;
  mutable std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace evolve::sim
