// Priority queue of timestamped events with stable FIFO ordering for ties
// and O(log n) cancellation — implemented as a hierarchical timing-wheel
// calendar queue so push/pop are O(1) amortized at scale.
//
// Layout, nearest first:
//
//   current_  min-heap of the currently loaded band: every live entry with
//             time < loaded_end_. Pops come from here only, so the heap
//             stays tiny (one bucket's worth of events) and its top is
//             always the global (time, seq) minimum.
//   wheel     4 levels x 64 buckets, level-l bucket width 2^(10+6l) ns
//             (1.024us, 65.5us, 4.19ms, 268ms). A push lands in the finest
//             level whose active window covers its time; draining a
//             level-l bucket scatters it one level down, and the final
//             scatter feeds current_. Per-level uint64 occupancy bitmaps
//             make "find next non-empty bucket" a single countr_zero.
//   far_      min-heap for anything past the wheel horizon (~17s out);
//             refilled into level 3 when the wheel drains dry.
//
// Because every wheel/far entry is strictly later than loaded_end_ and
// bands advance only when current_ is empty, the pop sequence is the exact
// global (time, seq) order — bit-identical to the old binary heap.
//
// Cancellation is a generation-counted slot vector: cancel() flips one
// flag, and dead entries are physically reclaimed by settle() when they
// surface at the head of current_ (the one shared drain path for both
// next_time() and pop()), or wholesale by purge() the moment the live
// count hits zero.
//
// Callbacks are util::SmallFn: captures up to 48 bytes live inline in the
// entry, so push/pop perform no per-event heap allocation on the common
// capture sizes (std::function spills to the heap past 16 bytes).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/small_fn.hpp"
#include "util/types.hpp"

namespace evolve::sim {

using EventId = std::uint64_t;
using EventFn = util::SmallFn;

/// One scheduled callback. Ordering: earlier time first, then schedule
/// order, so same-time events run FIFO — this makes the whole simulation
/// deterministic.
struct Event {
  util::TimeNs time = 0;
  EventId id = 0;
  EventFn fn;
};

class EventQueue {
 public:
  /// Enqueues `fn` at absolute time `time`; returns a handle for cancel().
  EventId push(util::TimeNs time, EventFn fn);

  /// Marks an event as cancelled; it will be skipped when popped.
  /// Returns false if the event already ran or was already cancelled.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return live_count_ == 0; }

  /// Number of live events.
  std::size_t size() const { return live_count_; }

  /// Time of the earliest live event. Requires !empty().
  util::TimeNs next_time() const;

  /// Removes and returns the earliest live event. Requires !empty().
  Event pop();

  /// Cancellation slots ever created (introspection for tests).
  std::size_t slot_count() const { return slots_.size(); }

 private:
  static constexpr int kLevels = 4;
  static constexpr int kBucketsPerLevel = 64;
  /// Level-l bucket covers 2^kShift[l] ns.
  static constexpr std::array<int, kLevels> kShift = {10, 16, 22, 28};

  struct Entry {
    util::TimeNs time;
    std::uint64_t seq;   // monotonic schedule order; breaks time ties FIFO
    std::uint32_t slot;  // index into slots_
    EventFn fn;
  };
  // A slot is owned by exactly one entry from push() until that entry is
  // physically reclaimed; only then is it recycled (generation bump + free
  // list), so a stale EventId can never alias a newer event.
  struct Slot {
    std::uint32_t gen = 0;
    bool live = false;
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // Binary min-heap primitives shared by current_ and far_.
  static void heap_push(std::vector<Entry>& h, Entry&& e);
  static void heap_remove_top(std::vector<Entry>& h);
  static void sift_up(std::vector<Entry>& h, std::size_t i);
  static void sift_down(std::vector<Entry>& h, std::size_t i);

  /// End of level l's active window: first time not representable there.
  util::TimeNs window_end(int level) const {
    return static_cast<util::TimeNs>(
        static_cast<std::uint64_t>(window_base_[level] + kBucketsPerLevel)
        << kShift[level]);
  }

  /// Routes a new entry to current_, a wheel bucket, or far_. Takes the
  /// fields rather than an Entry so the entry is constructed exactly once,
  /// in its destination container.
  void place(util::TimeNs time, std::uint64_t seq, std::uint32_t slot,
             EventFn&& fn);
  /// Loads the next occupied band into current_ (cascading wheel levels
  /// and refilling from far_ as needed). False if nothing remains.
  bool advance();
  /// The one shared reclamation path: drains cancelled entries off the
  /// head of current_, recycling their slots, and advances bands until a
  /// live head surfaces or the queue is physically empty.
  void settle();
  /// Physically discards every entry (all are cancelled) and recycles
  /// their slots; resets the wheel to its initial windows.
  void purge();
  void recycle(std::uint32_t slot) {
    slots_[slot].live = false;
    free_slots_.push_back(slot);
  }

  std::vector<Entry> current_;  // min-heap by (time, seq); the loaded band
  std::vector<Entry> far_;      // min-heap; beyond the wheel horizon
  std::array<std::array<std::vector<Entry>, kBucketsPerLevel>, kLevels>
      buckets_;
  std::array<std::uint64_t, kLevels> occupancy_ = {0, 0, 0, 0};
  // Absolute index (in level-l bucket units) of each level's window start.
  // Invariant: the bucket currently draining at level l lies inside level
  // l+1's window, so placement never needs more than one window per level.
  std::array<std::int64_t, kLevels> window_base_ = {0, 0, 0, 0};
  // All entries with time < loaded_end_ are in current_; everything in the
  // wheel or far_ is at loaded_end_ or later. Grows monotonically (until a
  // purge of an all-cancelled queue, which is unobservable).
  util::TimeNs loaded_end_ = 0;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;
  std::size_t entry_count_ = 0;  // physical entries incl. cancelled
};

}  // namespace evolve::sim
