// Priority queue of timestamped events with stable FIFO ordering for ties
// and O(log n) cancellation via tombstones.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/types.hpp"

namespace evolve::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

/// One scheduled callback. Ordering: earlier time first, then lower sequence
/// number (schedule order) so same-time events run FIFO — this makes the
/// whole simulation deterministic.
struct Event {
  util::TimeNs time = 0;
  EventId id = 0;
  EventFn fn;
};

class EventQueue {
 public:
  /// Enqueues `fn` at absolute time `time`; returns a handle for cancel().
  EventId push(util::TimeNs time, EventFn fn);

  /// Marks an event as cancelled; it will be skipped when popped.
  /// Returns false if the event already ran or was already cancelled.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  bool empty() const;

  /// Number of live events.
  std::size_t size() const { return live_count_; }

  /// Time of the earliest live event. Requires !empty().
  util::TimeNs next_time() const;

  /// Removes and returns the earliest live event. Requires !empty().
  Event pop();

 private:
  struct Entry {
    util::TimeNs time;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  void drop_cancelled_head() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<EventId, EventFn> callbacks_;
  mutable std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace evolve::sim
