#include "sim/event_queue.hpp"

#include <bit>
#include <stdexcept>
#include <utility>

namespace evolve::sim {

void EventQueue::heap_push(std::vector<Entry>& h, Entry&& e) {
  h.push_back(std::move(e));
  sift_up(h, h.size() - 1);
}

void EventQueue::sift_up(std::vector<Entry>& h, std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(h[i], h[parent])) break;
    std::swap(h[i], h[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::vector<Entry>& h, std::size_t i) {
  const std::size_t n = h.size();
  for (;;) {
    std::size_t best = i;
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    if (left < n && before(h[left], h[best])) best = left;
    if (right < n && before(h[right], h[best])) best = right;
    if (best == i) return;
    std::swap(h[i], h[best]);
    i = best;
  }
}

void EventQueue::heap_remove_top(std::vector<Entry>& h) {
  h.front() = std::move(h.back());
  h.pop_back();
  if (!h.empty()) sift_down(h, 0);
}

void EventQueue::place(util::TimeNs time, std::uint64_t seq,
                       std::uint32_t slot, EventFn&& fn) {
  ++entry_count_;
  if (time < loaded_end_) {  // already inside the loaded band (or past)
    current_.emplace_back(time, seq, slot, std::move(fn));
    sift_up(current_, current_.size() - 1);
    return;
  }
  for (int level = 0; level < kLevels; ++level) {
    if (time < window_end(level)) {
      const int rel = static_cast<int>((time >> kShift[level]) &
                                       (kBucketsPerLevel - 1));
      occupancy_[level] |= std::uint64_t{1} << rel;
      buckets_[level][rel].emplace_back(time, seq, slot, std::move(fn));
      return;
    }
  }
  far_.emplace_back(time, seq, slot, std::move(fn));  // beyond the horizon
  sift_up(far_, far_.size() - 1);
}

bool EventQueue::advance() {
  // Every physical move below drops cancelled entries on the spot
  // (recycling their slots) instead of hauling dead 88-byte entries
  // through the remaining levels — in cancel-heavy workloads roughly
  // half of all scheduled timeouts die before their band ever loads.
  const auto dead = [this](const Entry& e) {
    if (slots_[e.slot].live) return false;
    recycle(e.slot);
    --entry_count_;
    return true;
  };
  for (;;) {
    if (occupancy_[0] != 0) {
      const int rel = std::countr_zero(occupancy_[0]);
      occupancy_[0] &= occupancy_[0] - 1;
      const std::int64_t abs_bucket = window_base_[0] + rel;
      loaded_end_ = static_cast<util::TimeNs>(
          static_cast<std::uint64_t>(abs_bucket + 1) << kShift[0]);
      auto& src = buckets_[0][rel];
      bool loaded = false;
      for (Entry& e : src) {
        if (dead(e)) continue;
        heap_push(current_, std::move(e));
        loaded = true;
      }
      src.clear();
      if (loaded) return true;
      continue;  // bucket was all debris; keep advancing
    }
    bool cascaded = false;
    for (int level = 1; level < kLevels; ++level) {
      if (occupancy_[level] == 0) continue;
      const int rel = std::countr_zero(occupancy_[level]);
      occupancy_[level] &= occupancy_[level] - 1;
      const std::int64_t abs_bucket = window_base_[level] + rel;
      // This bucket becomes the whole window one level down.
      window_base_[level - 1] = abs_bucket * kBucketsPerLevel;
      auto& src = buckets_[level][rel];
      for (Entry& e : src) {
        if (dead(e)) continue;
        const int down = static_cast<int>((e.time >> kShift[level - 1]) &
                                          (kBucketsPerLevel - 1));
        occupancy_[level - 1] |= std::uint64_t{1} << down;
        buckets_[level - 1][down].push_back(std::move(e));
      }
      src.clear();
      cascaded = true;
      break;
    }
    if (cascaded) continue;
    if (far_.empty()) return false;
    // Wheel ran dry: jump the top level's window to the earliest far
    // entry and pull everything inside it out of the heap. All far
    // entries are later than every previous window, so this keeps
    // loaded_end_ monotonic.
    window_base_[kLevels - 1] =
        (far_.front().time >> kShift[kLevels - 1]) & ~std::int64_t{63};
    const util::TimeNs horizon = window_end(kLevels - 1);
    while (!far_.empty() && far_.front().time < horizon) {
      Entry e = std::move(far_.front());
      heap_remove_top(far_);
      if (dead(e)) continue;
      const int rel = static_cast<int>((e.time >> kShift[kLevels - 1]) &
                                       (kBucketsPerLevel - 1));
      occupancy_[kLevels - 1] |= std::uint64_t{1} << rel;
      buckets_[kLevels - 1][rel].push_back(std::move(e));
    }
  }
}

void EventQueue::settle() {
  for (;;) {
    while (!current_.empty() && !slots_[current_.front().slot].live) {
      recycle(current_.front().slot);
      heap_remove_top(current_);
      --entry_count_;
    }
    if (!current_.empty()) return;
    if (!advance()) return;
  }
}

void EventQueue::purge() {
  auto discard = [this](std::vector<Entry>& v) {
    for (Entry& e : v) recycle(e.slot);
    v.clear();
  };
  discard(current_);
  discard(far_);
  for (auto& level : buckets_)
    for (auto& bucket : level) discard(bucket);
  occupancy_ = {0, 0, 0, 0};
  window_base_ = {0, 0, 0, 0};
  loaded_end_ = 0;
  entry_count_ = 0;
}

EventId EventQueue::push(util::TimeNs time, EventFn fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Slot{});
  }
  Slot& s = slots_[slot];
  ++s.gen;
  s.live = true;

  place(time, next_seq_++, slot, std::move(fn));
  ++live_count_;
  return make_id(slot, s.gen);
}

bool EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.gen != gen || !s.live) return false;
  s.live = false;  // entry is reclaimed lazily when it surfaces in settle()
  --live_count_;
  // Everything left is cancelled: reclaim in bulk so slots recycle
  // promptly even for events that were banked deep in the wheel.
  if (live_count_ == 0) purge();
  return true;
}

util::TimeNs EventQueue::next_time() const {
  // Reclamation does not change the observable queue state, so the const
  // observer shares the same drain path as pop().
  const_cast<EventQueue*>(this)->settle();
  if (current_.empty()) throw std::logic_error("EventQueue::next_time on empty");
  return current_.front().time;
}

Event EventQueue::pop() {
  settle();
  if (current_.empty()) throw std::logic_error("EventQueue::pop on empty");
  Entry& top = current_.front();
  Slot& s = slots_[top.slot];
  Event event{top.time, make_id(top.slot, s.gen), std::move(top.fn)};
  recycle(top.slot);
  heap_remove_top(current_);
  --entry_count_;
  --live_count_;
  return event;
}

}  // namespace evolve::sim
