#include "sim/event_queue.hpp"

#include <stdexcept>

namespace evolve::sim {

EventId EventQueue::push(util::TimeNs time, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{time, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  --live_count_;
  return true;
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled_head();
  return heap_.empty();
}

util::TimeNs EventQueue::next_time() const {
  drop_cancelled_head();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time on empty");
  return heap_.top().time;
}

Event EventQueue::pop() {
  drop_cancelled_head();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty");
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(entry.id);
  Event event{entry.time, entry.id, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return event;
}

}  // namespace evolve::sim
