#include "sim/ref_event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace evolve::sim {

RefEventId RefEventQueue::push(util::TimeNs time, RefEventFn fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Slot{});
  }
  Slot& s = slots_[slot];
  ++s.gen;
  s.live = true;

  heap_.push_back(Entry{time, next_seq_++, slot, std::move(fn)});
  sift_up(heap_.size() - 1);
  ++live_count_;
  return make_id(slot, s.gen);
}

bool RefEventQueue::cancel(RefEventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.gen != gen || !s.live) return false;
  s.live = false;
  --live_count_;
  return true;
}

void RefEventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) return;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void RefEventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = i;
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    if (left < n && before(heap_[left], heap_[best])) best = left;
    if (right < n && before(heap_[right], heap_[best])) best = right;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void RefEventQueue::remove_top() {
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void RefEventQueue::drop_dead_head() const {
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    if (slots_[top.slot].live) return;
    free_slots_.push_back(top.slot);
    const_cast<RefEventQueue*>(this)->remove_top();
  }
}

util::TimeNs RefEventQueue::next_time() const {
  drop_dead_head();
  if (heap_.empty())
    throw std::logic_error("RefEventQueue::next_time on empty");
  return heap_.front().time;
}

RefEvent RefEventQueue::pop() {
  drop_dead_head();
  if (heap_.empty()) throw std::logic_error("RefEventQueue::pop on empty");
  Entry& top = heap_.front();
  Slot& s = slots_[top.slot];
  RefEvent event{top.time, make_id(top.slot, s.gen), std::move(top.fn)};
  s.live = false;
  free_slots_.push_back(top.slot);
  remove_top();
  --live_count_;
  return event;
}

}  // namespace evolve::sim
