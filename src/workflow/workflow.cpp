#include "workflow/workflow.hpp"

#include <set>
#include <stdexcept>

namespace evolve::workflow {

const char* to_string(StepKind kind) {
  switch (kind) {
    case StepKind::kContainer: return "container";
    case StepKind::kDataflow: return "dataflow";
    case StepKind::kHpc: return "hpc";
    case StepKind::kAccel: return "accel";
    case StepKind::kCustom: return "custom";
  }
  return "?";
}

Step container_step(std::string name, orch::PodSpec pod,
                    util::TimeNs duration) {
  Step step;
  step.name = std::move(name);
  step.kind = StepKind::kContainer;
  step.pod = std::move(pod);
  step.pod_duration = duration;
  return step;
}

Step dataflow_step(std::string name, dataflow::LogicalPlan plan,
                   int executors, int slots) {
  Step step;
  step.name = std::move(name);
  step.kind = StepKind::kDataflow;
  step.plan = std::move(plan);
  step.dataflow_executors = executors;
  step.dataflow_slots = slots;
  return step;
}

Step hpc_step(std::string name, hpc::MpiProgram program, int ranks) {
  Step step;
  step.name = std::move(name);
  step.kind = StepKind::kHpc;
  step.mpi = program;
  step.hpc_ranks = ranks;
  return step;
}

Step accel_step(std::string name, std::string kernel, util::TimeNs cpu_time) {
  Step step;
  step.name = std::move(name);
  step.kind = StepKind::kAccel;
  step.kernel = std::move(kernel);
  step.accel_cpu_time = cpu_time;
  return step;
}

Step custom_step(std::string name,
                 std::function<void(std::function<void(bool)>)> action) {
  Step step;
  step.name = std::move(name);
  step.kind = StepKind::kCustom;
  step.custom = std::move(action);
  return step;
}

Workflow& Workflow::add(Step step) {
  if (step.name.empty()) throw std::invalid_argument("step needs a name");
  if (index_.count(step.name) != 0) {
    throw std::invalid_argument("duplicate step name: " + step.name);
  }
  for (const std::string& dep : step.depends_on) {
    if (index_.count(dep) == 0) {
      throw std::invalid_argument("step '" + step.name +
                                  "' depends on unknown step '" + dep + "'");
    }
  }
  index_[step.name] = steps_.size();
  steps_.push_back(std::move(step));
  return *this;
}

const Step& Workflow::step(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) throw std::out_of_range("unknown step: " + name);
  return steps_[it->second];
}

bool Workflow::has_step(const std::string& name) const {
  return index_.count(name) != 0;
}

std::vector<std::string> Workflow::leaves() const {
  std::set<std::string> has_dependent;
  for (const Step& step : steps_) {
    for (const std::string& dep : step.depends_on) has_dependent.insert(dep);
  }
  std::vector<std::string> out;
  for (const Step& step : steps_) {
    if (has_dependent.count(step.name) == 0) out.push_back(step.name);
  }
  return out;
}

}  // namespace evolve::workflow
