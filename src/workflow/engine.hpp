// Workflow execution: dependency-ordered step launches with retries.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "sim/simulation.hpp"
#include "trace/tracer.hpp"
#include "util/rng.hpp"
#include "workflow/workflow.hpp"

namespace evolve::workflow {

/// Implemented by the platform (evolve::core): executes one step and
/// reports success/failure.
class StepRunner {
 public:
  virtual ~StepRunner() = default;
  virtual void run_step(const Step& step,
                        std::function<void(bool)> on_done) = 0;
};

struct StepResult {
  util::TimeNs start_time = -1;
  util::TimeNs finish_time = -1;
  int attempts = 0;
  bool success = false;

  util::TimeNs duration() const {
    return (start_time >= 0 && finish_time >= 0) ? finish_time - start_time
                                                 : 0;
  }
};

struct WorkflowResult {
  bool success = false;
  util::TimeNs duration = 0;
  std::map<std::string, StepResult> steps;
  int total_retries = 0;
};

class WorkflowEngine {
 public:
  /// `seed` drives the retry-backoff jitter (deterministic per engine).
  WorkflowEngine(sim::Simulation& sim, StepRunner& runner,
                 std::uint64_t seed = 1)
      : sim_(sim), runner_(runner), rng_(seed) {}

  /// Runs `workflow`; independent steps execute concurrently. A step
  /// failing beyond its retry budget fails the workflow (running steps
  /// finish, no new ones launch).
  void run(const Workflow& workflow,
           std::function<void(const WorkflowResult&)> on_done);

  /// Attaches a span tracer: the workflow and its steps become
  /// kWorkflow spans, retry waits kScheduler spans; step bodies run
  /// with the step span as context so lower layers parent under it.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct RunState;
  void launch_ready(std::shared_ptr<RunState> run);
  void start_step(std::shared_ptr<RunState> run, std::size_t index);
  void step_finished(std::shared_ptr<RunState> run, std::size_t index,
                     bool success);
  void maybe_finish(std::shared_ptr<RunState> run);

  sim::Simulation& sim_;
  StepRunner& runner_;
  util::Rng rng_;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace evolve::workflow
