// Workflow DAGs mixing cloud, big-data, HPC, and accelerator steps —
// the converged-pipeline abstraction at the heart of EVOLVE.
//
// The workflow module is deliberately decoupled from the platform: steps
// are descriptions, and a StepRunner (implemented by evolve::core) knows
// how to execute each kind. This mirrors Argo driving Kubernetes/Spark/
// MPI operators.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dataflow/plan.hpp"
#include "hpc/collectives.hpp"
#include "hpc/job.hpp"
#include "orch/pod.hpp"
#include "util/types.hpp"

namespace evolve::workflow {

enum class StepKind { kContainer, kDataflow, kHpc, kAccel, kCustom };

const char* to_string(StepKind kind);

struct Step {
  std::string name;
  StepKind kind = StepKind::kContainer;
  std::vector<std::string> depends_on;
  int max_retries = 0;
  /// Per-attempt deadline; 0 disables. A timed-out attempt counts as a
  /// failure (and thus consumes a retry); its late result is ignored.
  util::TimeNs timeout = 0;
  /// Base delay before retry n doubles to `retry_backoff * 2^(n-1)`,
  /// plus up to +25% seeded jitter (see WorkflowEngine). 0 retries
  /// immediately (legacy behavior).
  util::TimeNs retry_backoff = 0;

  /// Datasets the step reads. On the converged platform these live in
  /// the shared store (no cost); a siloed platform must stage-copy them
  /// into the executing silo's store first.
  std::vector<std::string> input_datasets;

  // kContainer: a pod that runs for `pod_duration`.
  orch::PodSpec pod;
  util::TimeNs pod_duration = 0;

  // kDataflow: a logical plan plus executor sizing.
  dataflow::LogicalPlan plan;
  int dataflow_executors = 4;
  int dataflow_slots = 4;

  // kHpc: an iterative MPI program on `hpc_ranks` ranks.
  hpc::MpiProgram mpi;
  int hpc_ranks = 4;

  // kAccel: offload `accel_cpu_time` of CPU work through `kernel`.
  std::string kernel;
  util::TimeNs accel_cpu_time = 0;

  // kCustom: arbitrary async action; invoke the callback with success.
  std::function<void(std::function<void(bool)>)> custom;
};

/// Convenience builders.
Step container_step(std::string name, orch::PodSpec pod,
                    util::TimeNs duration);
Step dataflow_step(std::string name, dataflow::LogicalPlan plan,
                   int executors = 4, int slots = 4);
Step hpc_step(std::string name, hpc::MpiProgram program, int ranks);
Step accel_step(std::string name, std::string kernel,
                util::TimeNs cpu_time);
Step custom_step(std::string name,
                 std::function<void(std::function<void(bool)>)> action);

class Workflow {
 public:
  explicit Workflow(std::string name) : name_(std::move(name)) {}

  /// Adds a step; its name must be unique and its dependencies must
  /// already be present (this enforces acyclicity by construction).
  Workflow& add(Step step);

  const std::string& name() const { return name_; }
  const std::vector<Step>& steps() const { return steps_; }
  int size() const { return static_cast<int>(steps_.size()); }
  const Step& step(const std::string& name) const;
  bool has_step(const std::string& name) const;

  /// Step names with no dependents (workflow outputs).
  std::vector<std::string> leaves() const;

 private:
  std::string name_;
  std::vector<Step> steps_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace evolve::workflow
