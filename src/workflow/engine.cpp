#include "workflow/engine.hpp"

#include <vector>

#include "util/backoff.hpp"

namespace evolve::workflow {

struct WorkflowEngine::RunState {
  // Owns a copy: callers may pass a temporary Workflow whose lifetime
  // ends long before the (asynchronous) run completes.
  Workflow workflow;
  std::function<void(const WorkflowResult&)> on_done;
  WorkflowResult result;
  util::TimeNs start_time = 0;
  std::vector<int> pending_deps;   // per step
  std::vector<bool> launched;
  std::vector<bool> finished;
  int in_flight = 0;
  bool failed = false;
  bool done_reported = false;
  trace::SpanId wf_span = trace::kNoSpan;
  std::vector<trace::SpanId> step_spans;  // per step, kNoSpan until launch

  RunState(const Workflow& wf,
           std::function<void(const WorkflowResult&)> cb)
      : workflow(wf), on_done(std::move(cb)) {}
};

void WorkflowEngine::run(const Workflow& workflow,
                         std::function<void(const WorkflowResult&)> on_done) {
  auto run = std::make_shared<RunState>(workflow, std::move(on_done));
  run->start_time = sim_.now();
  const auto& steps = run->workflow.steps();
  run->pending_deps.resize(steps.size());
  run->launched.resize(steps.size(), false);
  run->finished.resize(steps.size(), false);
  run->step_spans.resize(steps.size(), trace::kNoSpan);
  if (tracer_) {
    run->wf_span = tracer_->begin(trace::Layer::kWorkflow, "wf.run");
    tracer_->annotate(run->wf_span, "name", run->workflow.name());
  }
  for (std::size_t i = 0; i < steps.size(); ++i) {
    run->pending_deps[i] = static_cast<int>(steps[i].depends_on.size());
    run->result.steps[steps[i].name] = StepResult{};
  }
  if (steps.empty()) {
    run->result.success = true;
    trace::end_span(tracer_, run->wf_span);
    run->on_done(run->result);
    return;
  }
  launch_ready(run);
}

void WorkflowEngine::launch_ready(std::shared_ptr<RunState> run) {
  if (run->failed) return;
  const auto& steps = run->workflow.steps();
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (!run->launched[i] && run->pending_deps[i] == 0) {
      run->launched[i] = true;
      start_step(run, i);
    }
  }
}

void WorkflowEngine::start_step(std::shared_ptr<RunState> run,
                                std::size_t index) {
  const Step& step = run->workflow.steps()[index];
  StepResult& result = run->result.steps[step.name];
  if (result.start_time < 0) result.start_time = sim_.now();
  ++result.attempts;
  ++run->in_flight;
  if (tracer_) {
    if (run->step_spans[index] == trace::kNoSpan) {
      run->step_spans[index] = tracer_->begin(trace::Layer::kWorkflow,
                                              "wf.step", run->wf_span);
      tracer_->annotate(run->step_spans[index], "step", step.name);
    }
    if (result.attempts > 1) {
      tracer_->annotate(run->step_spans[index], "attempts",
                        std::to_string(result.attempts));
    }
  }
  // An attempt's outcome is consumed exactly once: either the runner's
  // callback or the timeout, whichever fires first for *this* attempt.
  const int attempt = result.attempts;
  auto outcome = [this, run, index, attempt](bool success) {
    const Step& step = run->workflow.steps()[index];
    const StepResult& r = run->result.steps.at(step.name);
    if (run->finished[index] || r.attempts != attempt) return;  // stale
    step_finished(run, index, success);
  };
  if (step.timeout > 0) {
    sim_.after(step.timeout, [outcome] { outcome(false); });
  }
  // The step body's spans (pods, dataflow jobs, HPC runs) parent here.
  trace::ScopedContext tctx(tracer_, run->step_spans[index]);
  runner_.run_step(step, outcome);
}

void WorkflowEngine::step_finished(std::shared_ptr<RunState> run,
                                   std::size_t index, bool success) {
  const Step& step = run->workflow.steps()[index];
  StepResult& result = run->result.steps[step.name];
  --run->in_flight;
  if (!success && result.attempts <= step.max_retries) {
    ++run->result.total_retries;
    if (step.retry_backoff <= 0) {
      start_step(run, index);  // legacy: immediate retry
      return;
    }
    // Exponential backoff: base * 2^(n-1) for retry n, stretched by up
    // to +25% seeded jitter so co-failing steps fan back out. Saturates
    // rather than shifting past 63 bits (signed-shift UB that wraps to
    // a delay in the past).
    util::TimeNs delay =
        util::saturating_backoff(step.retry_backoff, result.attempts);
    delay += static_cast<util::TimeNs>(rng_.uniform(0.0, 0.25) *
                                       static_cast<double>(delay));
    trace::SpanId retry_span = trace::kNoSpan;
    if (tracer_) {
      retry_span = tracer_->begin(trace::Layer::kScheduler, "wf.retry_wait",
                                  run->step_spans[index]);
      tracer_->annotate(retry_span, "attempt",
                        std::to_string(result.attempts));
    }
    sim_.after(delay, [this, run, index, retry_span] {
      trace::end_span(tracer_, retry_span);
      if (run->failed || run->done_reported || run->finished[index]) return;
      start_step(run, index);
    });
    return;
  }
  result.success = success;
  result.finish_time = sim_.now();
  run->finished[index] = true;
  if (tracer_) {
    if (!success) {
      tracer_->annotate(run->step_spans[index], "outcome", "failed");
    }
    tracer_->end(run->step_spans[index]);
  }
  if (!success) {
    run->failed = true;
    maybe_finish(run);
    return;
  }
  // Unblock dependents.
  const auto& steps = run->workflow.steps();
  for (std::size_t i = 0; i < steps.size(); ++i) {
    for (const std::string& dep : steps[i].depends_on) {
      if (dep == step.name) --run->pending_deps[i];
    }
  }
  launch_ready(run);
  maybe_finish(run);
}

void WorkflowEngine::maybe_finish(std::shared_ptr<RunState> run) {
  if (run->done_reported || run->in_flight > 0) return;
  if (!run->failed) {
    for (std::size_t i = 0; i < run->finished.size(); ++i) {
      if (!run->finished[i]) return;  // something still blocked/unlaunched
    }
  }
  run->done_reported = true;
  run->result.success = !run->failed;
  run->result.duration = sim_.now() - run->start_time;
  if (tracer_) {
    // Steps abandoned mid-retry-wait by a failure elsewhere stay open;
    // close them so the workflow span nests cleanly.
    for (trace::SpanId span : run->step_spans) tracer_->end(span);
    if (run->failed) tracer_->annotate(run->wf_span, "outcome", "failed");
    tracer_->end(run->wf_span);
  }
  run->on_done(run->result);
}

}  // namespace evolve::workflow
