// Collective-communication schedules.
//
// Each algorithm is a pure function from (ranks, sizes) to a list of
// rounds; a round is a set of point-to-point transfers that proceed in
// parallel, optionally followed by local reduction compute. The
// Communicator executes rounds over the simulated fabric. Keeping the
// schedule builders pure makes the algorithms unit-testable without a
// simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace evolve::hpc {

enum class CollectiveAlgo {
  kLinear,             // naive: root exchanges with everyone
  kTree,               // binomial tree
  kRing,               // ring (bandwidth-optimal for large messages)
  kRecursiveDoubling,  // latency-optimal for small messages
};

const char* to_string(CollectiveAlgo algo);

struct Transfer {
  int src = 0;
  int dst = 0;
  util::Bytes bytes = 0;
};

struct Round {
  std::vector<Transfer> transfers;
  /// Local reduction time appended after the round's transfers complete.
  util::TimeNs compute = 0;
};

using Schedule = std::vector<Round>;

// All builders require p >= 1 and bytes >= 0; root in [0, p).
// `reduce_ns_per_byte` models the local combine cost of reductions.

Schedule bcast_schedule(int p, int root, util::Bytes bytes,
                        CollectiveAlgo algo);

Schedule reduce_schedule(int p, int root, util::Bytes bytes,
                         double reduce_ns_per_byte, CollectiveAlgo algo);

Schedule allreduce_schedule(int p, util::Bytes bytes,
                            double reduce_ns_per_byte, CollectiveAlgo algo);

/// Ring allgather: every rank contributes `bytes_per_rank`.
Schedule allgather_schedule(int p, util::Bytes bytes_per_rank);

/// Scatter: root distributes a distinct `bytes_per_rank` block to every
/// rank. kLinear = one round from root; kTree = binomial halving (root
/// forwards whole sub-blocks down the tree). Other algos map to kTree.
Schedule scatter_schedule(int p, int root, util::Bytes bytes_per_rank,
                          CollectiveAlgo algo = CollectiveAlgo::kTree);

/// Gather: mirror of scatter (blocks flow up to the root).
Schedule gather_schedule(int p, int root, util::Bytes bytes_per_rank,
                         CollectiveAlgo algo = CollectiveAlgo::kTree);

/// Ring reduce-scatter: each rank ends with one reduced 1/p chunk.
Schedule reduce_scatter_schedule(int p, util::Bytes bytes,
                                 double reduce_ns_per_byte);

/// All-to-all personalized exchange: every rank sends a distinct
/// `bytes_per_pair` block to every other rank (p-1 rotation rounds).
Schedule alltoall_schedule(int p, util::Bytes bytes_per_pair);

/// Barrier: tree reduce + tree bcast of empty messages.
Schedule barrier_schedule(int p);

/// Total bytes moved by a schedule (sanity metric for tests).
util::Bytes schedule_bytes(const Schedule& schedule);

/// Number of rounds.
inline std::size_t schedule_depth(const Schedule& schedule) {
  return schedule.size();
}

}  // namespace evolve::hpc
