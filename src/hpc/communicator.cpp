#include "hpc/communicator.hpp"

#include <memory>
#include <stdexcept>

namespace evolve::hpc {

Communicator::Communicator(sim::Simulation& sim, net::Fabric& fabric,
                           std::vector<cluster::NodeId> rank_nodes,
                           CommConfig config)
    : sim_(sim),
      fabric_(fabric),
      rank_nodes_(std::move(rank_nodes)),
      config_(config) {
  if (rank_nodes_.empty()) {
    throw std::invalid_argument("communicator needs at least one rank");
  }
}

cluster::NodeId Communicator::node_of(int rank) const {
  if (rank < 0 || rank >= size()) throw std::out_of_range("bad rank");
  return rank_nodes_[static_cast<std::size_t>(rank)];
}

void Communicator::send(int src, int dst, util::Bytes bytes,
                        Callback on_done) {
  const cluster::NodeId src_node = node_of(src);
  const cluster::NodeId dst_node = node_of(dst);
  metrics_.count("messages");
  metrics_.count("bytes_sent", bytes);
  sim_.after(config_.per_message_overhead,
             [this, src_node, dst_node, bytes, cb = std::move(on_done)]() mutable {
               fabric_.transfer(src_node, dst_node, bytes, std::move(cb));
             });
}

void Communicator::run_round(std::shared_ptr<const Schedule> schedule,
                             std::size_t index, Callback on_done) {
  if (index >= schedule->size()) {
    on_done();
    return;
  }
  const Round& round = (*schedule)[index];
  if (round.transfers.empty()) {
    sim_.after(round.compute, [this, schedule, index,
                               cb = std::move(on_done)]() mutable {
      run_round(schedule, index + 1, std::move(cb));
    });
    return;
  }
  auto remaining = std::make_shared<int>(
      static_cast<int>(round.transfers.size()));
  auto compute = round.compute;
  auto next = [this, schedule, index, remaining, compute,
               cb = std::move(on_done)]() mutable {
    if (--*remaining > 0) return;
    sim_.after(compute, [this, schedule, index, cb = std::move(cb)]() mutable {
      run_round(schedule, index + 1, std::move(cb));
    });
  };
  for (const Transfer& t : round.transfers) {
    send(t.src, t.dst, t.bytes, next);
  }
}

void Communicator::execute(const Schedule& schedule, Callback on_done) {
  auto shared = std::make_shared<const Schedule>(schedule);
  metrics_.count("collectives");
  run_round(std::move(shared), 0, std::move(on_done));
}

void Communicator::barrier(Callback on_done) {
  execute(barrier_schedule(size()), std::move(on_done));
}

void Communicator::bcast(int root, util::Bytes bytes, CollectiveAlgo algo,
                         Callback on_done) {
  execute(bcast_schedule(size(), root, bytes, algo), std::move(on_done));
}

void Communicator::reduce(int root, util::Bytes bytes, CollectiveAlgo algo,
                          Callback on_done) {
  execute(reduce_schedule(size(), root, bytes, config_.reduce_ns_per_byte,
                          algo),
          std::move(on_done));
}

void Communicator::allreduce(util::Bytes bytes, CollectiveAlgo algo,
                             Callback on_done) {
  execute(allreduce_schedule(size(), bytes, config_.reduce_ns_per_byte, algo),
          std::move(on_done));
}

void Communicator::allgather(util::Bytes bytes_per_rank, Callback on_done) {
  execute(allgather_schedule(size(), bytes_per_rank), std::move(on_done));
}

void Communicator::scatter(int root, util::Bytes bytes_per_rank,
                           Callback on_done) {
  execute(scatter_schedule(size(), root, bytes_per_rank),
          std::move(on_done));
}

void Communicator::gather(int root, util::Bytes bytes_per_rank,
                          Callback on_done) {
  execute(gather_schedule(size(), root, bytes_per_rank), std::move(on_done));
}

void Communicator::reduce_scatter(util::Bytes bytes, Callback on_done) {
  execute(
      reduce_scatter_schedule(size(), bytes, config_.reduce_ns_per_byte),
      std::move(on_done));
}

void Communicator::alltoall(util::Bytes bytes_per_pair, Callback on_done) {
  execute(alltoall_schedule(size(), bytes_per_pair), std::move(on_done));
}

}  // namespace evolve::hpc
