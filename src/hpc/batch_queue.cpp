#include "hpc/batch_queue.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/backoff.hpp"

namespace evolve::hpc {

BatchQueue::BatchQueue(sim::Simulation& sim, int total_nodes,
                       QueuePolicy policy, util::TimeNs aging_interval,
                       BatchFaultConfig fault)
    : sim_(sim),
      policy_(policy),
      aging_interval_(aging_interval),
      fault_(fault),
      usage_(static_cast<double>(total_nodes)) {
  if (total_nodes <= 0) {
    throw std::invalid_argument("batch queue needs nodes");
  }
  if (fault_.checkpoint_interval < 0 || fault_.restart_cost < 0) {
    throw std::invalid_argument("negative fault-config time");
  }
  for (int n = 0; n < total_nodes; ++n) free_.insert(n);
}

JobId BatchQueue::submit(HpcJobSpec spec, StartFn on_start,
                         FinishFn on_finish) {
  if (spec.nodes <= 0) throw std::invalid_argument("job needs >= 1 node");
  if (spec.nodes > static_cast<int>(usage_.capacity())) {
    throw std::invalid_argument("job larger than the machine");
  }
  if (spec.runtime < 0 || spec.walltime < 0) {
    throw std::invalid_argument("negative runtime");
  }
  for (JobId dep : spec.depends_on) {
    if (jobs_.count(dep) == 0) {
      throw std::invalid_argument("unknown dependency job id");
    }
  }
  if (spec.walltime < spec.runtime) spec.walltime = spec.runtime;
  const JobId id = next_id_++;
  JobRecord rec;
  rec.status.id = id;
  rec.status.spec = std::move(spec);
  rec.status.submit_time = sim_.now();
  rec.remaining = rec.status.spec.runtime;
  rec.on_start = std::move(on_start);
  rec.on_finish = std::move(on_finish);
  if (tracer_) {
    rec.trace_parent = tracer_->current();
    rec.wait_span = tracer_->begin(trace::Layer::kScheduler, "hpc.wait",
                                   rec.trace_parent);
    tracer_->annotate(rec.wait_span, "job", rec.status.spec.name);
    tracer_->annotate(rec.wait_span, "nodes",
                      std::to_string(rec.status.spec.nodes));
  }
  if (pool_tree_ != nullptr) {
    pool_tree_->add_demand(rec.status.spec.tenant,
                           job_resources(rec.status.spec));
  }
  jobs_.emplace(id, std::move(rec));
  queue_.push_back(id);
  metrics_.count("jobs_submitted");
  sim_.defer([this] { schedule_pass(); });
  return id;
}

const HpcJobStatus& BatchQueue::job(JobId id) const {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("unknown job");
  return it->second.status;
}

void BatchQueue::set_pool_tree(orch::PoolTree* tree,
                               cluster::Resources per_node) {
  pool_tree_ = tree;
  per_node_ = per_node;
}

cluster::Resources BatchQueue::job_resources(const HpcJobSpec& spec) const {
  cluster::Resources r = per_node_;
  r.cpu_millicores *= spec.nodes;
  r.memory_bytes *= spec.nodes;
  r.accel_slots *= spec.nodes;
  return r;
}

void BatchQueue::start_job(JobRecord& rec) {
  const int needed = rec.status.spec.nodes;
  rec.status.assigned_nodes.assign(free_.begin(),
                                   std::next(free_.begin(), needed));
  for (int node : rec.status.assigned_nodes) free_.erase(node);
  rec.status.started = true;
  rec.status.start_time = sim_.now();
  running_.insert(rec.status.id);
  usage_.add(sim_.now(), static_cast<double>(needed));
  if (pool_tree_ != nullptr) {
    const cluster::Resources r = job_resources(rec.status.spec);
    pool_tree_->remove_demand(rec.status.spec.tenant, r);
    pool_tree_->charge(rec.status.spec.tenant, r);
  }
  metrics_.count("jobs_started");
  metrics_.observe("job_wait_s",
                   (sim_.now() - rec.status.submit_time) / util::kSecond);
  if (tracer_) {
    tracer_->end(rec.wait_span);
    rec.run_span = tracer_->begin(trace::Layer::kHpc, "hpc.run",
                                  rec.trace_parent);
    tracer_->annotate(rec.run_span, "job", rec.status.spec.name);
    if (rec.status.restarts > 0) {
      tracer_->annotate(rec.run_span, "restart",
                        std::to_string(rec.status.restarts));
    }
  }
  const JobId id = rec.status.id;
  {
    // on_start launches the job body (e.g. run_mpi_program); parent its
    // spans under this incarnation's run span.
    trace::ScopedContext tctx(tracer_, rec.run_span);
    if (rec.on_start) rec.on_start(id, rec.status.assigned_nodes);
  }
  const std::int64_t incarnation = rec.incarnation;
  sim_.after(rec.remaining,
             [this, id, incarnation] { finish_job(id, incarnation); });
}

void BatchQueue::finish_job(JobId id, std::int64_t incarnation) {
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.status.finished) return;
  // A stale timer from an incarnation that was aborted by a node crash.
  if (it->second.incarnation != incarnation) return;
  JobRecord& rec = it->second;
  rec.status.finished = true;
  rec.status.finish_time = sim_.now();
  for (int node : rec.status.assigned_nodes) free_.insert(node);
  running_.erase(id);
  usage_.add(sim_.now(), -static_cast<double>(rec.status.spec.nodes));
  if (pool_tree_ != nullptr) {
    pool_tree_->release(rec.status.spec.tenant,
                        job_resources(rec.status.spec));
  }
  metrics_.count("jobs_finished");
  if (retry_budget_ != nullptr) retry_budget_->record_success();
  if (tracer_) tracer_->end(rec.run_span);
  if (rec.on_finish) rec.on_finish(id);
  schedule_pass();
}

util::TimeNs BatchQueue::shadow_time(int needed) const {
  // Sort running jobs by their estimated completion (start + walltime);
  // accumulate freed nodes until the head job fits.
  std::vector<std::pair<util::TimeNs, int>> completions;
  for (JobId id : running_) {
    const auto& status = jobs_.at(id).status;
    completions.emplace_back(status.start_time + status.spec.walltime,
                             status.spec.nodes);
  }
  std::sort(completions.begin(), completions.end());
  int available = static_cast<int>(free_.size());
  for (const auto& [when, nodes] : completions) {
    if (available >= needed) break;
    available += nodes;
    if (available >= needed) return when;
  }
  return sim_.now();  // fits now (or nothing running)
}

bool BatchQueue::dependencies_met(const JobRecord& rec) const {
  for (JobId dep : rec.status.spec.depends_on) {
    if (!jobs_.at(dep).status.finished) return false;
  }
  return true;
}

std::vector<JobId> BatchQueue::eligible_order() const {
  std::vector<JobId> order;
  order.reserve(queue_.size());
  for (JobId id : queue_) {
    const JobRecord& rec = jobs_.at(id);
    if (rec.hold_until > sim_.now()) continue;  // budget-denied hold
    if (dependencies_met(rec)) order.push_back(id);
  }
  auto effective = [this](JobId id) {
    const auto& status = jobs_.at(id).status;
    std::int64_t priority = status.spec.priority;
    if (aging_interval_ > 0) {
      priority += (sim_.now() - status.submit_time) / aging_interval_;
    }
    return priority;
  };
  if (pool_tree_ == nullptr) {
    std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
      return effective(a) > effective(b);
    });
    return order;
  }
  // Gang admission respects pool share: jobs whose start would push
  // their pool past a limit drop out of this pass (they do not hold up
  // other tenants), and the rest order by how under-served their pool
  // is right now.
  std::erase_if(order, [&](JobId id) {
    const HpcJobSpec& spec = jobs_.at(id).status.spec;
    return !pool_tree_->within_limit(spec.tenant, job_resources(spec));
  });
  pool_tree_->recompute();
  std::map<std::string, double> keys;
  for (JobId id : order) {
    const std::string& tenant = jobs_.at(id).status.spec.tenant;
    if (keys.count(tenant) == 0) {
      keys.emplace(tenant, pool_tree_->schedule_key(tenant));
    }
  }
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    const double ka = keys.at(jobs_.at(a).status.spec.tenant);
    const double kb = keys.at(jobs_.at(b).status.spec.tenant);
    if (ka != kb) return ka < kb;
    return effective(a) > effective(b);
  });
  return order;
}

void BatchQueue::schedule_pass() {
  bool progress = true;
  while (progress) {
    progress = false;
    const std::vector<JobId> order = eligible_order();
    if (order.empty()) break;

    // Head job starts whenever it fits.
    const JobId head = order.front();
    JobRecord& head_rec = jobs_.at(head);
    if (head_rec.status.spec.nodes <= static_cast<int>(free_.size())) {
      queue_.erase(std::remove(queue_.begin(), queue_.end(), head),
                   queue_.end());
      start_job(head_rec);
      progress = true;
      continue;
    }
    if (policy_ == QueuePolicy::kFcfs) break;

    // EASY backfill: a later job may start now iff it fits AND it does
    // not delay the head job's reservation — either it ends before the
    // head's shadow time, or it leaves enough nodes at the shadow.
    const util::TimeNs shadow = shadow_time(head_rec.status.spec.nodes);
    int freed_by_shadow = 0;
    for (JobId rid : running_) {
      const auto& status = jobs_.at(rid).status;
      if (status.start_time + status.spec.walltime <= shadow) {
        freed_by_shadow += status.spec.nodes;
      }
    }
    for (std::size_t i = 1; i < order.size(); ++i) {
      JobRecord& cand = jobs_.at(order[i]);
      const int nodes = cand.status.spec.nodes;
      if (nodes > static_cast<int>(free_.size())) continue;
      const bool ends_before_shadow =
          sim_.now() + cand.status.spec.walltime <= shadow;
      const bool spares_reservation =
          static_cast<int>(free_.size()) - nodes + freed_by_shadow >=
          head_rec.status.spec.nodes;
      if (!ends_before_shadow && !spares_reservation) continue;
      const JobId cid = order[i];
      queue_.erase(std::remove(queue_.begin(), queue_.end(), cid),
                   queue_.end());
      start_job(jobs_.at(cid));
      metrics_.count("backfilled_jobs");
      progress = true;
      break;  // restart the scan: free set changed
    }
  }
  metrics_.set_gauge("queued_jobs", static_cast<double>(queue_.size()));
}

void BatchQueue::handle_node_failure(int node) {
  if (node < 0 || node >= static_cast<int>(usage_.capacity())) return;
  if (!down_.insert(node).second) return;
  free_.erase(node);
  metrics_.count("node_failures");

  // Exclusive allocation: at most one running job touches the node.
  JobId victim = kInvalidJob;
  for (JobId id : running_) {
    const auto& assigned = jobs_.at(id).status.assigned_nodes;
    if (std::find(assigned.begin(), assigned.end(), node) != assigned.end()) {
      victim = id;
      break;
    }
  }
  if (victim == kInvalidJob) return;  // the node was idle

  JobRecord& rec = jobs_.at(victim);
  ++rec.incarnation;  // disarm the in-flight finish timer
  const util::TimeNs elapsed = sim_.now() - rec.status.start_time;
  util::TimeNs checkpointed = 0;
  if (fault_.checkpoint_interval > 0) {
    checkpointed =
        (elapsed / fault_.checkpoint_interval) * fault_.checkpoint_interval;
    checkpointed = std::min(checkpointed, rec.remaining);
  }
  // Gang abort: surviving members stop too; their nodes free up.
  for (int n : rec.status.assigned_nodes) {
    if (down_.count(n) == 0) free_.insert(n);
  }
  running_.erase(victim);
  usage_.add(sim_.now(), -static_cast<double>(rec.status.spec.nodes));
  if (pool_tree_ != nullptr) {
    // The aborted job stops charging its pool and becomes demand again.
    const cluster::Resources r = job_resources(rec.status.spec);
    pool_tree_->release(rec.status.spec.tenant, r);
    pool_tree_->add_demand(rec.status.spec.tenant, r);
  }
  rec.status.started = false;
  rec.status.start_time = -1;
  rec.status.assigned_nodes.clear();
  ++rec.status.restarts;
  rec.remaining = rec.remaining - checkpointed + fault_.restart_cost;
  if (tracer_) {
    if (rec.run_span != trace::kNoSpan) {
      tracer_->annotate(rec.run_span, "outcome", "gang_abort");
    }
    tracer_->end(rec.run_span);
    // New incarnation: queue-wait span for the requeued job.
    rec.wait_span = tracer_->begin(trace::Layer::kScheduler, "hpc.requeue",
                                   rec.trace_parent);
    tracer_->annotate(rec.wait_span, "job", rec.status.spec.name);
  }
  if (retry_budget_ != nullptr && !retry_budget_->try_retry()) {
    // Budget drained: hold the requeued job out of scheduling for a
    // backoff that saturates in its restart count — a mass gang-abort
    // then trickles back into the machine instead of stampeding it.
    const util::TimeNs hold =
        util::saturating_backoff(denied_hold_, rec.status.restarts);
    rec.hold_until = sim_.now() + hold;
    ++requeues_held_;
    metrics_.count("requeues_held");
    sim_.after(hold, [this] { schedule_pass(); });
  }
  queue_.push_front(victim);  // restarts take queue priority
  metrics_.count("gang_aborts");
  metrics_.count("jobs_restarted");
  metrics_.observe("work_lost_ms",
                   (elapsed - checkpointed) / util::kMillisecond);
  schedule_pass();
}

void BatchQueue::handle_node_recovery(int node) {
  if (down_.erase(node) == 0) return;
  free_.insert(node);
  metrics_.count("node_recoveries");
  schedule_pass();
}

double BatchQueue::utilization() const { return usage_.utilization(sim_.now()); }

}  // namespace evolve::hpc
