#include "hpc/job.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace evolve::hpc {

namespace {

struct RunState {
  sim::Simulation& sim;
  Communicator& comm;
  MpiProgram program;
  std::function<void(const MpiRunStats&)> on_done;
  MpiRunStats stats;
  util::TimeNs started = 0;
  util::TimeNs compute_step = 0;
  trace::Tracer* tracer = nullptr;
  trace::SpanId parent = trace::kNoSpan;

  void iterate(std::shared_ptr<RunState> self) {
    if (stats.iterations_completed >= program.iterations) {
      stats.total_time = sim.now() - started;
      on_done(stats);
      return;
    }
    // Compute phase: ranks run in parallel, so wall time advances by one
    // per-rank compute step.
    const trace::SpanId compute_span =
        trace::begin_span(tracer, trace::Layer::kHpc, "mpi.compute", parent);
    sim.after(compute_step, [this, self, compute_span] {
      stats.compute_time += compute_step;
      trace::end_span(tracer, compute_span);
      const trace::SpanId reduce_span = trace::begin_span(
          tracer, trace::Layer::kHpc, "mpi.allreduce", parent);
      if (reduce_span != trace::kNoSpan) {
        tracer->annotate(reduce_span, "bytes",
                         std::to_string(program.allreduce_bytes));
      }
      comm.allreduce(program.allreduce_bytes, program.algo,
                     [this, self, reduce_span] {
                       trace::end_span(tracer, reduce_span);
                       ++stats.iterations_completed;
                       iterate(self);
                     });
    });
  }
};

}  // namespace

void run_mpi_program(sim::Simulation& sim, Communicator& comm,
                     const MpiProgram& program,
                     std::function<void(const MpiRunStats&)> on_done,
                     trace::Tracer* tracer) {
  if (program.iterations < 0) {
    throw std::invalid_argument("negative iteration count");
  }
  if (program.compute_speedup <= 0) {
    throw std::invalid_argument("compute_speedup must be > 0");
  }
  auto state = std::make_shared<RunState>(RunState{
      sim, comm, program, std::move(on_done), {}, sim.now(), 0, tracer,
      tracer ? tracer->current() : trace::kNoSpan});
  state->compute_step = static_cast<util::TimeNs>(
      std::llround(static_cast<double>(program.compute_per_iteration) /
                   program.compute_speedup));
  state->iterate(state);
}

}  // namespace evolve::hpc
