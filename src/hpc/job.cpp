#include "hpc/job.hpp"

#include <cmath>
#include <stdexcept>

namespace evolve::hpc {

namespace {

struct RunState {
  sim::Simulation& sim;
  Communicator& comm;
  MpiProgram program;
  std::function<void(const MpiRunStats&)> on_done;
  MpiRunStats stats;
  util::TimeNs started = 0;
  util::TimeNs compute_step = 0;

  void iterate(std::shared_ptr<RunState> self) {
    if (stats.iterations_completed >= program.iterations) {
      stats.total_time = sim.now() - started;
      on_done(stats);
      return;
    }
    // Compute phase: ranks run in parallel, so wall time advances by one
    // per-rank compute step.
    sim.after(compute_step, [this, self] {
      stats.compute_time += compute_step;
      comm.allreduce(program.allreduce_bytes, program.algo, [this, self] {
        ++stats.iterations_completed;
        iterate(self);
      });
    });
  }
};

}  // namespace

void run_mpi_program(sim::Simulation& sim, Communicator& comm,
                     const MpiProgram& program,
                     std::function<void(const MpiRunStats&)> on_done) {
  if (program.iterations < 0) {
    throw std::invalid_argument("negative iteration count");
  }
  if (program.compute_speedup <= 0) {
    throw std::invalid_argument("compute_speedup must be > 0");
  }
  auto state = std::make_shared<RunState>(RunState{
      sim, comm, program, std::move(on_done), {}, sim.now(), 0});
  state->compute_step = static_cast<util::TimeNs>(
      std::llround(static_cast<double>(program.compute_per_iteration) /
                   program.compute_speedup));
  state->iterate(state);
}

}  // namespace evolve::hpc
