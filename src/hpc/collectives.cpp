#include "hpc/collectives.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace evolve::hpc {

const char* to_string(CollectiveAlgo algo) {
  switch (algo) {
    case CollectiveAlgo::kLinear: return "linear";
    case CollectiveAlgo::kTree: return "tree";
    case CollectiveAlgo::kRing: return "ring";
    case CollectiveAlgo::kRecursiveDoubling: return "recursive-doubling";
  }
  return "?";
}

namespace {

void check_args(int p, int root, util::Bytes bytes) {
  if (p < 1) throw std::invalid_argument("collective needs p >= 1");
  if (root < 0 || root >= p) throw std::invalid_argument("bad root rank");
  if (bytes < 0) throw std::invalid_argument("negative payload");
}

util::TimeNs reduce_cost(util::Bytes bytes, double ns_per_byte) {
  if (ns_per_byte <= 0) return 0;
  return static_cast<util::TimeNs>(
      std::ceil(static_cast<double>(bytes) * ns_per_byte));
}

int floor_pow2(int p) {
  int v = 1;
  while (v * 2 <= p) v *= 2;
  return v;
}

Schedule bcast_linear(int p, int root, util::Bytes bytes) {
  Round round;
  for (int r = 0; r < p; ++r) {
    if (r != root) round.transfers.push_back({root, r, bytes});
  }
  return round.transfers.empty() ? Schedule{} : Schedule{round};
}

Schedule bcast_tree(int p, int root, util::Bytes bytes) {
  Schedule schedule;
  for (int span = 1; span < p; span *= 2) {
    Round round;
    for (int rel = 0; rel < span; ++rel) {
      const int peer = rel + span;
      if (peer >= p) break;
      round.transfers.push_back(
          {(rel + root) % p, (peer + root) % p, bytes});
    }
    schedule.push_back(std::move(round));
  }
  return schedule;
}

Schedule reduce_linear(int p, int root, util::Bytes bytes,
                       double ns_per_byte) {
  Round round;
  for (int r = 0; r < p; ++r) {
    if (r != root) round.transfers.push_back({r, root, bytes});
  }
  if (round.transfers.empty()) return {};
  round.compute = reduce_cost(bytes * (p - 1), ns_per_byte);
  return {round};
}

Schedule reduce_tree(int p, int root, util::Bytes bytes,
                     double ns_per_byte) {
  // Mirror of the binomial bcast, leaves first.
  Schedule down = bcast_tree(p, root, bytes);
  Schedule schedule;
  for (auto it = down.rbegin(); it != down.rend(); ++it) {
    Round round;
    for (const Transfer& t : it->transfers) {
      round.transfers.push_back({t.dst, t.src, t.bytes});
    }
    round.compute = reduce_cost(bytes, ns_per_byte);
    schedule.push_back(std::move(round));
  }
  return schedule;
}

Schedule allreduce_ring(int p, util::Bytes bytes, double ns_per_byte) {
  if (p == 1) return {};
  const util::Bytes chunk =
      (bytes + p - 1) / p;  // equal chunks, rounded up
  Schedule schedule;
  // Reduce-scatter: p-1 rounds; every rank forwards one chunk to its
  // successor and combines the chunk it received.
  for (int step = 0; step < p - 1; ++step) {
    Round round;
    for (int r = 0; r < p; ++r) {
      round.transfers.push_back({r, (r + 1) % p, chunk});
    }
    round.compute = reduce_cost(chunk, ns_per_byte);
    schedule.push_back(std::move(round));
  }
  // Allgather: p-1 rounds of the same ring pattern, no compute.
  for (int step = 0; step < p - 1; ++step) {
    Round round;
    for (int r = 0; r < p; ++r) {
      round.transfers.push_back({r, (r + 1) % p, chunk});
    }
    schedule.push_back(std::move(round));
  }
  return schedule;
}

Schedule allreduce_recursive_doubling(int p, util::Bytes bytes,
                                      double ns_per_byte) {
  if (p == 1) return {};
  const int pow2 = floor_pow2(p);
  const int rest = p - pow2;  // ranks folded in/out around the core
  Schedule schedule;

  // Fold-in: rank 2i sends to 2i+1 for i < rest; odd ranks of those pairs
  // plus ranks >= 2*rest form the power-of-two core.
  if (rest > 0) {
    Round round;
    for (int i = 0; i < rest; ++i) {
      round.transfers.push_back({2 * i, 2 * i + 1, bytes});
    }
    round.compute = reduce_cost(bytes, ns_per_byte);
    schedule.push_back(std::move(round));
  }

  // Core participants in rank order.
  std::vector<int> core;
  core.reserve(static_cast<std::size_t>(pow2));
  for (int i = 0; i < rest; ++i) core.push_back(2 * i + 1);
  for (int r = 2 * rest; r < p; ++r) core.push_back(r);

  for (int span = 1; span < pow2; span *= 2) {
    Round round;
    for (int i = 0; i < pow2; ++i) {
      const int peer = i ^ span;
      if (i < peer) {
        // Pairwise exchange: both directions in the same round.
        round.transfers.push_back({core[static_cast<std::size_t>(i)],
                                   core[static_cast<std::size_t>(peer)],
                                   bytes});
        round.transfers.push_back({core[static_cast<std::size_t>(peer)],
                                   core[static_cast<std::size_t>(i)], bytes});
      }
    }
    round.compute = reduce_cost(bytes, ns_per_byte);
    schedule.push_back(std::move(round));
  }

  // Fold-out: results return to the even ranks of the folded pairs.
  if (rest > 0) {
    Round round;
    for (int i = 0; i < rest; ++i) {
      round.transfers.push_back({2 * i + 1, 2 * i, bytes});
    }
    schedule.push_back(std::move(round));
  }
  return schedule;
}

}  // namespace

Schedule bcast_schedule(int p, int root, util::Bytes bytes,
                        CollectiveAlgo algo) {
  check_args(p, root, bytes);
  switch (algo) {
    case CollectiveAlgo::kLinear:
      return bcast_linear(p, root, bytes);
    case CollectiveAlgo::kTree:
    case CollectiveAlgo::kRecursiveDoubling:
      return bcast_tree(p, root, bytes);
    case CollectiveAlgo::kRing: {
      // Pipeline around the ring: p-1 sequential hops.
      Schedule schedule;
      for (int step = 0; step < p - 1; ++step) {
        const int src = (root + step) % p;
        schedule.push_back(Round{{{src, (src + 1) % p, bytes}}, 0});
      }
      return schedule;
    }
  }
  throw std::invalid_argument("unknown bcast algorithm");
}

Schedule reduce_schedule(int p, int root, util::Bytes bytes,
                         double reduce_ns_per_byte, CollectiveAlgo algo) {
  check_args(p, root, bytes);
  switch (algo) {
    case CollectiveAlgo::kLinear:
      return reduce_linear(p, root, bytes, reduce_ns_per_byte);
    case CollectiveAlgo::kTree:
    case CollectiveAlgo::kRing:
    case CollectiveAlgo::kRecursiveDoubling:
      return reduce_tree(p, root, bytes, reduce_ns_per_byte);
  }
  throw std::invalid_argument("unknown reduce algorithm");
}

Schedule allreduce_schedule(int p, util::Bytes bytes,
                            double reduce_ns_per_byte, CollectiveAlgo algo) {
  check_args(p, 0, bytes);
  switch (algo) {
    case CollectiveAlgo::kLinear: {
      Schedule schedule = reduce_linear(p, 0, bytes, reduce_ns_per_byte);
      Schedule down = bcast_linear(p, 0, bytes);
      schedule.insert(schedule.end(), down.begin(), down.end());
      return schedule;
    }
    case CollectiveAlgo::kTree: {
      Schedule schedule = reduce_tree(p, 0, bytes, reduce_ns_per_byte);
      Schedule down = bcast_tree(p, 0, bytes);
      schedule.insert(schedule.end(), down.begin(), down.end());
      return schedule;
    }
    case CollectiveAlgo::kRing:
      return allreduce_ring(p, bytes, reduce_ns_per_byte);
    case CollectiveAlgo::kRecursiveDoubling:
      return allreduce_recursive_doubling(p, bytes, reduce_ns_per_byte);
  }
  throw std::invalid_argument("unknown allreduce algorithm");
}

Schedule allgather_schedule(int p, util::Bytes bytes_per_rank) {
  check_args(p, 0, bytes_per_rank);
  if (p == 1) return {};
  Schedule schedule;
  for (int step = 0; step < p - 1; ++step) {
    Round round;
    for (int r = 0; r < p; ++r) {
      round.transfers.push_back({r, (r + 1) % p, bytes_per_rank});
    }
    schedule.push_back(std::move(round));
  }
  return schedule;
}

namespace {

Schedule scatter_tree(int p, int root, util::Bytes bytes_per_rank) {
  // Binomial halving: in descending spans, a holder of block [r, r+2s)
  // forwards the upper half [r+s, r+2s) to relative rank r+s.
  Schedule schedule;
  int top_span = 1;
  while (top_span < p) top_span *= 2;
  for (int span = top_span / 2; span >= 1; span /= 2) {
    Round round;
    for (int r = 0; r < p; r += 2 * span) {
      const int peer = r + span;
      if (peer >= p) continue;
      const int block = std::min(2 * span, p - r) - span;  // ranks moved
      round.transfers.push_back({(r + root) % p, (peer + root) % p,
                                 block * bytes_per_rank});
    }
    if (!round.transfers.empty()) schedule.push_back(std::move(round));
  }
  return schedule;
}

}  // namespace

Schedule scatter_schedule(int p, int root, util::Bytes bytes_per_rank,
                          CollectiveAlgo algo) {
  check_args(p, root, bytes_per_rank);
  if (p == 1) return {};
  if (algo == CollectiveAlgo::kLinear) {
    Round round;
    for (int r = 0; r < p; ++r) {
      if (r != root) round.transfers.push_back({root, r, bytes_per_rank});
    }
    return {round};
  }
  return scatter_tree(p, root, bytes_per_rank);
}

Schedule gather_schedule(int p, int root, util::Bytes bytes_per_rank,
                         CollectiveAlgo algo) {
  // Exact mirror: reverse the scatter rounds and flip each transfer.
  Schedule down = scatter_schedule(p, root, bytes_per_rank, algo);
  Schedule schedule;
  for (auto it = down.rbegin(); it != down.rend(); ++it) {
    Round round;
    for (const Transfer& t : it->transfers) {
      round.transfers.push_back({t.dst, t.src, t.bytes});
    }
    schedule.push_back(std::move(round));
  }
  return schedule;
}

Schedule reduce_scatter_schedule(int p, util::Bytes bytes,
                                 double reduce_ns_per_byte) {
  check_args(p, 0, bytes);
  if (p == 1) return {};
  const util::Bytes chunk = (bytes + p - 1) / p;
  Schedule schedule;
  for (int step = 0; step < p - 1; ++step) {
    Round round;
    for (int r = 0; r < p; ++r) {
      round.transfers.push_back({r, (r + 1) % p, chunk});
    }
    round.compute = reduce_cost(chunk, reduce_ns_per_byte);
    schedule.push_back(std::move(round));
  }
  return schedule;
}

Schedule alltoall_schedule(int p, util::Bytes bytes_per_pair) {
  check_args(p, 0, bytes_per_pair);
  if (p == 1) return {};
  Schedule schedule;
  for (int offset = 1; offset < p; ++offset) {
    Round round;
    for (int r = 0; r < p; ++r) {
      round.transfers.push_back({r, (r + offset) % p, bytes_per_pair});
    }
    schedule.push_back(std::move(round));
  }
  return schedule;
}

Schedule barrier_schedule(int p) {
  check_args(p, 0, 0);
  Schedule schedule = reduce_tree(p, 0, 0, 0.0);
  Schedule down = bcast_tree(p, 0, 0);
  schedule.insert(schedule.end(), down.begin(), down.end());
  return schedule;
}

util::Bytes schedule_bytes(const Schedule& schedule) {
  util::Bytes total = 0;
  for (const Round& round : schedule) {
    for (const Transfer& t : round.transfers) total += t.bytes;
  }
  return total;
}

}  // namespace evolve::hpc
