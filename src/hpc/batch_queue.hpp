// Slurm-style batch queue with whole-node allocation.
//
// Jobs request N exclusive nodes for a bounded walltime estimate. Two
// policies: strict FCFS, and EASY backfill (later jobs may jump the queue
// if they cannot delay the head job's earliest possible start, computed
// from running jobs' walltime estimates).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "metrics/registry.hpp"
#include "metrics/timeseries.hpp"
#include "orch/fairshare.hpp"
#include "sim/simulation.hpp"
#include "trace/tracer.hpp"
#include "util/retry_budget.hpp"
#include "util/types.hpp"

namespace evolve::hpc {

using JobId = std::int64_t;
inline constexpr JobId kInvalidJob = -1;

enum class QueuePolicy { kFcfs, kEasyBackfill };

struct HpcJobSpec {
  std::string name;
  int nodes = 1;                 // exclusive nodes required
  util::TimeNs walltime = 0;     // user estimate (upper bound)
  util::TimeNs runtime = 0;      // actual runtime (<= walltime typically)
  int priority = 0;              // higher runs first
  std::vector<JobId> depends_on; // must finish before this job is eligible
  /// Fair-share pool-tree tenant; only meaningful with set_pool_tree().
  std::string tenant;
};

struct HpcJobStatus {
  JobId id = kInvalidJob;
  HpcJobSpec spec;
  util::TimeNs submit_time = 0;
  util::TimeNs start_time = -1;
  util::TimeNs finish_time = -1;
  std::vector<int> assigned_nodes;
  bool started = false;
  bool finished = false;
  int restarts = 0;  // times the job was requeued by a node failure
};

/// Failure semantics for gang (whole-node) jobs. A node crash aborts
/// every job touching it; aborted jobs requeue at the head and restart
/// from their last checkpoint.
struct BatchFaultConfig {
  /// Jobs checkpoint every interval; progress since the last checkpoint
  /// is lost on failure. 0 = no checkpointing (restart from scratch).
  util::TimeNs checkpoint_interval = 0;
  /// Fixed cost added to the remaining runtime on each restart
  /// (checkpoint load + re-initialization).
  util::TimeNs restart_cost = 0;
};

class BatchQueue {
 public:
  using StartFn = std::function<void(JobId, const std::vector<int>&)>;
  using FinishFn = std::function<void(JobId)>;

  /// `aging_interval`: waiting jobs gain +1 effective priority per
  /// interval (0 disables aging; ordering is then priority, then FIFO).
  BatchQueue(sim::Simulation& sim, int total_nodes,
             QueuePolicy policy = QueuePolicy::kFcfs,
             util::TimeNs aging_interval = 0, BatchFaultConfig fault = {});

  JobId submit(HpcJobSpec spec, StartFn on_start = {},
               FinishFn on_finish = {});

  const HpcJobStatus& job(JobId id) const;
  int free_nodes() const { return static_cast<int>(free_.size()); }
  int queued_jobs() const { return static_cast<int>(queue_.size()); }
  int running_jobs() const { return static_cast<int>(running_.size()); }

  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

  /// Node-level utilization since t=0.
  double utilization() const;

  /// Node crash: the node leaves the free pool and any gang job running
  /// on it aborts — surviving members' nodes free up, the job requeues
  /// at the head and will restart from its last checkpoint. Idempotent.
  void handle_node_failure(int node);
  /// Recovery: the node rejoins the free pool and the queue re-pumps.
  void handle_node_recovery(int node);
  bool node_alive(int node) const { return down_.count(node) == 0; }
  int down_nodes() const { return static_cast<int>(down_.size()); }

  /// Attaches a span tracer: jobs get kScheduler queue-wait spans and
  /// kHpc run spans (one per incarnation; gang aborts requeue). Null
  /// disables.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Attaches a fair-share pool tree (typically shared with the
  /// orchestrator so batch, HPC, and serving tenants contend in one
  /// share space). Each running job charges its tenant's pool
  /// `per_node * spec.nodes`; eligible jobs order by their pool's
  /// schedule key (most under-served tenant first, then priority/FIFO),
  /// and gang admission respects pool share: a job whose start would
  /// push its pool past a limit is held back — without blocking other
  /// tenants' jobs behind it. Null detaches.
  void set_pool_tree(orch::PoolTree* tree, cluster::Resources per_node);

  /// Attaches a (non-owned, possibly cross-layer shared) retry budget:
  /// fault-driven requeues then cost a token each; a job denied a token
  /// is held out of scheduling for `denied_hold << restarts` (saturating)
  /// before becoming eligible again — a mass gang-abort cannot restart
  /// the whole machine at once while the budget is drained. Finished
  /// jobs deposit. Null (default) disables.
  void set_retry_budget(util::RetryBudget* budget,
                        util::TimeNs denied_hold = util::seconds(1)) {
    retry_budget_ = budget;
    denied_hold_ = denied_hold;
  }
  std::int64_t requeues_held() const { return requeues_held_; }

 private:
  struct JobRecord {
    HpcJobStatus status;
    StartFn on_start;
    FinishFn on_finish;
    util::TimeNs remaining = 0;     // runtime left (restarts shrink it)
    util::TimeNs hold_until = 0;    // budget-denied requeue hold
    std::int64_t incarnation = 0;   // invalidates stale finish timers
    trace::SpanId wait_span = trace::kNoSpan;
    trace::SpanId run_span = trace::kNoSpan;
    trace::SpanId trace_parent = trace::kNoSpan;  // submitter's context
  };

  void schedule_pass();
  /// Queue order for this pass: eligible jobs (dependencies satisfied)
  /// sorted by effective priority desc, then submit order.
  std::vector<JobId> eligible_order() const;
  bool dependencies_met(const JobRecord& rec) const;
  void start_job(JobRecord& rec);
  void finish_job(JobId id, std::int64_t incarnation);
  /// Earliest time the head job could start, from running jobs' walltime
  /// estimates (the EASY "shadow time").
  util::TimeNs shadow_time(int needed) const;
  /// Pool-tree resource footprint of a job (`per_node * spec.nodes`).
  cluster::Resources job_resources(const HpcJobSpec& spec) const;

  sim::Simulation& sim_;
  QueuePolicy policy_;
  util::TimeNs aging_interval_;
  BatchFaultConfig fault_;
  std::set<int> free_;
  std::set<int> down_;
  std::map<JobId, JobRecord> jobs_;
  std::deque<JobId> queue_;
  std::set<JobId> running_;
  JobId next_id_ = 1;
  metrics::Registry metrics_;
  metrics::UsageTracker usage_;
  trace::Tracer* tracer_ = nullptr;
  orch::PoolTree* pool_tree_ = nullptr;
  cluster::Resources per_node_;  // one node's worth of pool-tree charge
  util::RetryBudget* retry_budget_ = nullptr;  // non-owned, optional
  util::TimeNs denied_hold_ = util::seconds(1);
  std::int64_t requeues_held_ = 0;
};

}  // namespace evolve::hpc
