// Iterative MPI-style programs: compute phase + allreduce per iteration
// (the dominant pattern of EVOLVE's HPC/ML workloads).
#pragma once

#include <functional>
#include <memory>

#include "hpc/communicator.hpp"
#include "trace/tracer.hpp"
#include "util/types.hpp"

namespace evolve::hpc {

struct MpiProgram {
  int iterations = 1;
  /// Per-rank compute time per iteration (before any accel speedup).
  util::TimeNs compute_per_iteration = 0;
  /// Gradient/halo exchange payload all-reduced each iteration.
  util::Bytes allreduce_bytes = 0;
  CollectiveAlgo algo = CollectiveAlgo::kRing;
  /// Multiplier < 1 accelerates compute (e.g. FPGA offload).
  double compute_speedup = 1.0;
};

struct MpiRunStats {
  util::TimeNs total_time = 0;
  util::TimeNs compute_time = 0;        // per-rank serial compute charged
  int iterations_completed = 0;
};

/// Runs `program` on `comm`; `on_done` receives the run stats.
/// The communicator must stay alive until completion. With a tracer,
/// each iteration's compute and allreduce phases become kHpc spans
/// parented by the caller's current trace context.
void run_mpi_program(sim::Simulation& sim, Communicator& comm,
                     const MpiProgram& program,
                     std::function<void(const MpiRunStats&)> on_done,
                     trace::Tracer* tracer = nullptr);

}  // namespace evolve::hpc
