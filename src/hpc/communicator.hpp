// MPI-style communicator executing point-to-point messages and collective
// schedules over the simulated fabric.
//
// Ranks map to cluster nodes (several ranks may share a node; intra-node
// traffic uses the loopback path). Collectives run round-by-round: all
// transfers of a round proceed in parallel, then local reduction compute
// is charged, then the next round starts.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "hpc/collectives.hpp"
#include "metrics/registry.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"
#include "util/types.hpp"

namespace evolve::hpc {

struct CommConfig {
  /// Software overhead charged per message on top of the fabric time.
  util::TimeNs per_message_overhead = util::micros(1);
  /// Local combine cost for reductions (ns per byte reduced).
  double reduce_ns_per_byte = 0.05;
};

class Communicator {
 public:
  using Callback = std::function<void()>;

  Communicator(sim::Simulation& sim, net::Fabric& fabric,
               std::vector<cluster::NodeId> rank_nodes,
               CommConfig config = {});

  int size() const { return static_cast<int>(rank_nodes_.size()); }
  cluster::NodeId node_of(int rank) const;
  const CommConfig& config() const { return config_; }

  /// Point-to-point message; `on_done` fires when it is fully received.
  void send(int src, int dst, util::Bytes bytes, Callback on_done);

  /// Executes a prebuilt schedule round-by-round.
  void execute(const Schedule& schedule, Callback on_done);

  // Convenience collective entry points.
  void barrier(Callback on_done);
  void bcast(int root, util::Bytes bytes, CollectiveAlgo algo,
             Callback on_done);
  void reduce(int root, util::Bytes bytes, CollectiveAlgo algo,
              Callback on_done);
  void allreduce(util::Bytes bytes, CollectiveAlgo algo, Callback on_done);
  void allgather(util::Bytes bytes_per_rank, Callback on_done);
  void scatter(int root, util::Bytes bytes_per_rank, Callback on_done);
  void gather(int root, util::Bytes bytes_per_rank, Callback on_done);
  void reduce_scatter(util::Bytes bytes, Callback on_done);
  void alltoall(util::Bytes bytes_per_pair, Callback on_done);

  metrics::Registry& metrics() { return metrics_; }

 private:
  void run_round(std::shared_ptr<const Schedule> schedule, std::size_t index,
                 Callback on_done);

  sim::Simulation& sim_;
  net::Fabric& fabric_;
  std::vector<cluster::NodeId> rank_nodes_;
  CommConfig config_;
  metrics::Registry metrics_;
};

}  // namespace evolve::hpc
