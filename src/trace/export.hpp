// Chrome trace-event JSON exporter and critical-path tables.
//
// `write_chrome_trace` emits the classic trace-event format ("X"
// complete events with ts/dur in microseconds), which Perfetto and
// chrome://tracing both load. Each traced process (one Tracer — e.g.
// one bench scenario with its own Simulation) maps to a pid; within a
// process each layer gets a band of tids, and spans are packed into
// lanes greedily so no two slices on the same tid overlap (a Perfetto
// rendering requirement the span tree alone does not guarantee).
#pragma once

#include <string>
#include <vector>

#include "core/report.hpp"
#include "trace/critical_path.hpp"
#include "trace/tracer.hpp"

namespace evolve::trace {

/// One traced process in the exported file.
struct TraceProcess {
  std::string name;       // e.g. "t1/urban-mobility converged"
  const Tracer* tracer = nullptr;
};

/// Serialises all processes into one trace-event JSON document.
std::string chrome_trace_json(const std::vector<TraceProcess>& processes);

/// Writes `TRACE_<name>.json` in the working directory; returns the path.
std::string write_chrome_trace(const std::string& name,
                               const std::vector<TraceProcess>& processes);

/// Renders per-layer critical-path attribution, one row per entry:
///   job | total | <layer> ... (value + percent per layer with any time)
/// Layers that contribute nowhere are omitted from the columns.
core::Table critical_path_table(
    const std::string& title,
    const std::vector<std::pair<std::string, CriticalPath>>& paths);

/// Adds `prefix`_crit_<layer>_ns metrics (plus `prefix`_crit_total_ns)
/// to a MetricsReport for cross-PR tracking of layer attribution.
void report_critical_path(core::MetricsReport& report,
                          const std::string& prefix,
                          const CriticalPath& path);

}  // namespace evolve::trace
