#include "trace/critical_path.hpp"

#include <algorithm>
#include <cassert>

namespace evolve::trace {
namespace {

// Child span lists, built once per extraction. Children are sorted by
// ascending end time so the walk can scan backwards for "latest child
// still running before t".
struct Tree {
  const Tracer* tracer;
  util::TimeNs horizon;  // substitute end for open spans
  std::vector<std::vector<SpanId>> children;  // children[id-1]

  util::TimeNs end_of(SpanId id) const {
    const Span& s = tracer->span(id);
    return s.open() ? horizon : s.end;
  }
};

Tree build_tree(const Tracer& tracer, util::TimeNs horizon) {
  Tree tree;
  tree.tracer = &tracer;
  tree.horizon = horizon;
  tree.children.resize(tracer.spans().size());
  for (const Span& span : tracer.spans()) {
    if (span.parent != kNoSpan) {
      tree.children[static_cast<std::size_t>(span.parent) - 1].push_back(
          span.id);
    }
  }
  for (auto& kids : tree.children) {
    std::sort(kids.begin(), kids.end(), [&](SpanId a, SpanId b) {
      const util::TimeNs ea = tree.end_of(a);
      const util::TimeNs eb = tree.end_of(b);
      return ea != eb ? ea < eb : a < b;
    });
  }
  return tree;
}

// Attributes [lo, hi] under `node`: find the child that was running
// latest within the window (last finisher), charge the gap after it to
// `node` itself, recurse into the child, and continue leftwards from the
// child's start until `lo` is reached.
void walk(const Tree& tree, SpanId node, util::TimeNs lo, util::TimeNs hi,
          std::vector<PathSegment>& out) {
  const Span& span = tree.tracer->span(node);
  const auto& kids = tree.children[static_cast<std::size_t>(node) - 1];
  util::TimeNs t = hi;
  while (t > lo) {
    // Last finisher active before t. Scanning by decreasing end time,
    // the effective end min(end, t) is non-increasing, so the first
    // child that started before t wins, and once effective ends drop to
    // lo no later child can contribute.
    SpanId pick = kNoSpan;
    util::TimeNs pick_end = 0;
    for (auto rit = kids.rbegin(); rit != kids.rend(); ++rit) {
      const util::TimeNs eff = std::min(t, tree.end_of(*rit));
      if (eff <= lo) break;
      if (tree.tracer->span(*rit).start >= t) continue;
      pick = *rit;
      pick_end = eff;
      break;
    }
    if (pick == kNoSpan) break;
    if (pick_end < t) {
      // Nobody ran in (pick_end, t]: the parent itself was the critical
      // work (scheduler gap, compute between I/O phases, ...).
      out.push_back({node, span.layer, span.name, pick_end, t});
    }
    const util::TimeNs pick_start =
        std::max(lo, tree.tracer->span(pick).start);
    walk(tree, pick, pick_start, pick_end, out);
    t = pick_start;
  }
  if (t > lo) out.push_back({node, span.layer, span.name, lo, t});
}

}  // namespace

CriticalPath critical_path(const Tracer& tracer, SpanId root) {
  const Span& span = tracer.span(root);
  assert(!span.open() && "critical_path requires a closed root span");
  CriticalPath path;
  path.root = root;
  path.total = span.end - span.start;

  const Tree tree = build_tree(tracer, span.end);
  walk(tree, root, span.start, span.end, path.segments);
  std::reverse(path.segments.begin(), path.segments.end());

  for (const PathSegment& seg : path.segments) {
    path.by_layer[static_cast<int>(seg.layer)] += seg.duration();
  }
  return path;
}

std::vector<SpanId> root_spans(const Tracer& tracer) {
  std::vector<SpanId> roots;
  for (const Span& span : tracer.spans()) {
    if (span.parent == kNoSpan) roots.push_back(span.id);
  }
  return roots;
}

}  // namespace evolve::trace
