#include "trace/tracer.hpp"

#include <cassert>

namespace evolve::trace {

const char* layer_name(Layer layer) {
  switch (layer) {
    case Layer::kWorkflow:
      return "workflow";
    case Layer::kScheduler:
      return "scheduler";
    case Layer::kCloud:
      return "cloud";
    case Layer::kDataflow:
      return "dataflow";
    case Layer::kShuffle:
      return "shuffle";
    case Layer::kHpc:
      return "hpc";
    case Layer::kStorage:
      return "storage";
    case Layer::kNetwork:
      return "network";
    case Layer::kAccel:
      return "accel";
    case Layer::kServe:
      return "serve";
    case Layer::kTablet:
      return "tablet";
  }
  return "unknown";
}

SpanId Tracer::begin(Layer layer, std::string_view name, SpanId parent) {
  Span span;
  span.id = static_cast<SpanId>(spans_.size()) + 1;
  span.parent = parent == kNoSpan ? current() : parent;
  span.layer = layer;
  span.name = names_.intern(name);
  span.start = sim_->now();
  if (span.parent != kNoSpan) {
    const Span& up = spans_[static_cast<std::size_t>(span.parent) - 1];
    span.job = up.job;
    span.task = up.task;
  }
  spans_.push_back(std::move(span));
  ++open_;
  return static_cast<SpanId>(spans_.size());
}

void Tracer::end(SpanId id) {
  if (id == kNoSpan) return;
  Span& span = mutable_span(id);
  if (!span.open()) return;
  span.end = sim_->now();
  --open_;
}

void Tracer::annotate(SpanId id, const std::string& key, std::string value) {
  if (id == kNoSpan) return;
  mutable_span(id).attrs.emplace_back(key, std::move(value));
}

void Tracer::set_job(SpanId id, std::int64_t job) {
  if (id == kNoSpan) return;
  mutable_span(id).job = job;
}

void Tracer::set_task(SpanId id, std::int64_t task) {
  if (id == kNoSpan) return;
  mutable_span(id).task = task;
}

const Span& Tracer::span(SpanId id) const {
  assert(id > 0 && static_cast<std::size_t>(id) <= spans_.size());
  return spans_[static_cast<std::size_t>(id) - 1];
}

Span& Tracer::mutable_span(SpanId id) {
  assert(id > 0 && static_cast<std::size_t>(id) <= spans_.size());
  return spans_[static_cast<std::size_t>(id) - 1];
}

void Tracer::close_open_spans() {
  if (open_ == 0) return;
  const util::TimeNs now = sim_->now();
  for (Span& span : spans_) {
    if (span.open()) span.end = now;
  }
  open_ = 0;
}

}  // namespace evolve::trace
