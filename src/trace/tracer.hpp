// Simulation-clock span tracer: the observability plane of the converged
// platform.
//
// A Span is one timed operation in one layer of the stack (scheduler
// wait, dataflow compute, shuffle fetch, storage GET, fabric transfer,
// ...). Spans form a tree: subsystems parent their spans either
// explicitly or through the tracer's context stack, which call sites
// push around synchronous calls into lower layers (ScopedContext).
//
// Subsystems hold a `Tracer*` that defaults to nullptr; every
// instrumentation site is guarded by that null check, so a run without a
// tracer costs one predicted branch per site and allocates nothing.
// Tracing is purely observational: it schedules no simulation events and
// draws no random numbers, so enabling it cannot change any simulated
// outcome.
//
// Recording is built for the hot path: span names are interned (a span
// holds a string_view into the interner's stable storage, so re-tracing a
// seen name copies no string), and spans live in an append-only chunked
// buffer — no reallocation copies, stable addresses, and zero heap
// allocations per span once the name set and chunks are warm.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"
#include "util/arena.hpp"
#include "util/interner.hpp"
#include "util/types.hpp"

namespace evolve::trace {

using SpanId = std::int64_t;
inline constexpr SpanId kNoSpan = 0;

/// The platform layer a span charges its time to. Critical-path
/// attribution sums span time per layer.
enum class Layer {
  kWorkflow,   // workflow engine: step orchestration, retry waits
  kScheduler,  // queue/placement wait: pod pending, batch queue, task wait
  kCloud,      // container (pod) execution
  kDataflow,   // dataflow task launch + compute
  kShuffle,    // shuffle spill + fetch (disk side)
  kHpc,        // MPI compute + collective phases
  kStorage,    // object store GET/PUT/repair (metadata + device tiers)
  kNetwork,    // fabric transfers
  kAccel,      // accelerator offload (queue + kernel)
  kServe,      // request serving: request/queue/batch/exec/hedge
  kTablet,     // stateful serving: tablet op/queue/exec/flush/wal/move
};
inline constexpr int kLayerCount = 11;

/// Stable lowercase name ("workflow", "scheduler", ...).
const char* layer_name(Layer layer);

struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  Layer layer = Layer::kWorkflow;
  std::string_view name;   // interned; owned by the Tracer
  std::int64_t job = -1;   // owning job/workflow id, when known
  std::int64_t task = -1;  // owning task/step index, when known
  util::TimeNs start = 0;
  util::TimeNs end = -1;  // -1 while the span is open
  std::vector<std::pair<std::string, std::string>> attrs;

  bool open() const { return end < 0; }
  util::TimeNs duration() const { return open() ? 0 : end - start; }
};

class Tracer {
 public:
  using SpanBuffer = util::ChunkedVector<Span, 1024>;

  explicit Tracer(sim::Simulation& sim) : sim_(&sim) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span at the current simulation time. A parent of kNoSpan
  /// adopts the context stack's top (or stays a root). The name is
  /// interned: recording a previously seen name allocates nothing.
  SpanId begin(Layer layer, std::string_view name, SpanId parent = kNoSpan);

  /// Closes a span at the current simulation time. Idempotent: closing
  /// an already-closed (or kNoSpan) span is a no-op, so shared shutdown
  /// paths need no bookkeeping.
  void end(SpanId id);

  /// Attaches a key=value attribute (exported into the trace JSON).
  void annotate(SpanId id, const std::string& key, std::string value);

  /// Tags the span (and nothing else) with a job / task id.
  void set_job(SpanId id, std::int64_t job);
  void set_task(SpanId id, std::int64_t task);

  // -- Context stack (synchronous parenting) --------------------------
  SpanId current() const { return stack_.empty() ? kNoSpan : stack_.back(); }
  void push(SpanId id) { stack_.push_back(id); }
  void pop() { stack_.pop_back(); }

  const SpanBuffer& spans() const { return spans_; }
  const Span& span(SpanId id) const;
  std::size_t open_spans() const { return open_; }

  /// Pre-allocates span chunks so the next `n` begins() allocate nothing.
  void reserve_spans(std::size_t n) { spans_.reserve(n); }
  /// Distinct span names seen (introspection for tests).
  std::size_t interned_names() const { return names_.size(); }

  /// Closes every still-open span at the current time (call once the
  /// simulation has drained; cancelled flows etc. land here).
  void close_open_spans();

  util::TimeNs now() const { return sim_->now(); }

 private:
  Span& mutable_span(SpanId id);

  sim::Simulation* sim_;
  SpanBuffer spans_;  // spans_[id - 1]; append-only, stable addresses
  util::StringInterner names_;
  std::vector<SpanId> stack_;
  std::size_t open_ = 0;
};

/// RAII context push; tolerates a null tracer or kNoSpan (no-op), so call
/// sites stay branch-free.
class ScopedContext {
 public:
  ScopedContext(Tracer* tracer, SpanId id)
      : tracer_(tracer && id != kNoSpan ? tracer : nullptr) {
    if (tracer_) tracer_->push(id);
  }
  ~ScopedContext() {
    if (tracer_) tracer_->pop();
  }
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  Tracer* tracer_;
};

/// Null-tolerant helpers: the uniform guard for instrumentation sites.
inline SpanId begin_span(Tracer* tracer, Layer layer, std::string_view name,
                         SpanId parent = kNoSpan) {
  return tracer ? tracer->begin(layer, name, parent) : kNoSpan;
}
inline void end_span(Tracer* tracer, SpanId id) {
  if (tracer && id != kNoSpan) tracer->end(id);
}

}  // namespace evolve::trace
