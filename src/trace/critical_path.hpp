// Per-job critical-path extraction over a span tree.
//
// Given a root span (e.g. one end-to-end job), walks the tree backwards
// from the root's end time, always descending into the child span that
// was still running latest (CRISP-style last-finisher attribution).
// Time inside a child is charged to the child's layer (recursively);
// gaps where no child was running are charged to the parent's own layer.
// The resulting segments partition [root.start, root.end] exactly, so
// the per-layer sums always add up to the end-to-end latency.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "trace/tracer.hpp"
#include "util/types.hpp"

namespace evolve::trace {

/// One contiguous stretch of the critical path, charged to one span.
struct PathSegment {
  SpanId span = kNoSpan;
  Layer layer = Layer::kWorkflow;
  std::string_view name;  // name of the charged span (interned by Tracer)
  util::TimeNs start = 0;
  util::TimeNs end = 0;

  util::TimeNs duration() const { return end - start; }
};

struct CriticalPath {
  SpanId root = kNoSpan;
  util::TimeNs total = 0;  // root end - root start
  std::vector<PathSegment> segments;  // ordered by start, gap-free
  util::TimeNs by_layer[kLayerCount] = {};  // sums exactly to `total`

  double layer_fraction(Layer layer) const {
    return total > 0 ? static_cast<double>(
                           by_layer[static_cast<int>(layer)]) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// Extracts the critical path under `root`. Open spans are treated as
/// ending at the root's end. Requires the root span to be closed.
CriticalPath critical_path(const Tracer& tracer, SpanId root);

/// Roots (spans with no parent) in span-id order.
std::vector<SpanId> root_spans(const Tracer& tracer);

}  // namespace evolve::trace
