#include "trace/export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <queue>
#include <utility>

#include "util/strings.hpp"

namespace evolve::trace {
namespace {

constexpr int kLaneBand = 1000;  // tids per layer band within a process

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string micros(util::TimeNs t) {
  // Trace-event ts/dur are microseconds; keep ns resolution as
  // fractions. Format with three decimals and strip the trailing zeros
  // to keep files compact.
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.3f",
                static_cast<double>(t) / 1e3);
  std::string out = buffer;
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  if (!out.empty() && out.back() == '.') out.pop_back();
  return out;
}

// Packs spans of one layer into lanes so slices on a tid never overlap
// (Perfetto draws same-tid overlaps on top of each other). Greedy
// first-fit by start time against a min-heap of lane end times.
std::vector<int> assign_lanes(const Tracer& tracer,
                              std::vector<SpanId>& spans,
                              util::TimeNs horizon) {
  std::sort(spans.begin(), spans.end(), [&](SpanId a, SpanId b) {
    const Span& sa = tracer.span(a);
    const Span& sb = tracer.span(b);
    return sa.start != sb.start ? sa.start < sb.start : a < b;
  });
  std::vector<int> lanes(spans.size());
  using LaneEnd = std::pair<util::TimeNs, int>;  // (end, lane)
  std::priority_queue<LaneEnd, std::vector<LaneEnd>, std::greater<>> heap;
  int next_lane = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& span = tracer.span(spans[i]);
    const util::TimeNs end = span.open() ? horizon : span.end;
    int lane;
    if (!heap.empty() && heap.top().first <= span.start) {
      lane = heap.top().second;
      heap.pop();
    } else {
      lane = next_lane++;
    }
    lanes[i] = lane;
    heap.emplace(end, lane);
  }
  return lanes;
}

void emit_event(std::string& out, bool& first, const std::string& body) {
  if (!first) out += ",\n";
  first = false;
  out += "  " + body;
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceProcess>& processes) {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  int pid = 0;
  for (const TraceProcess& process : processes) {
    ++pid;
    if (!process.tracer) continue;
    const Tracer& tracer = *process.tracer;
    emit_event(out, first,
               "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " +
                   std::to_string(pid) +
                   ", \"args\": {\"name\": \"" + escape(process.name) +
                   "\"}}");

    // Horizon for open spans: the latest closed end (or latest start).
    util::TimeNs horizon = 0;
    for (const Span& span : tracer.spans()) {
      horizon = std::max(horizon, span.open() ? span.start : span.end);
    }

    std::vector<SpanId> by_layer[kLayerCount];
    for (const Span& span : tracer.spans()) {
      by_layer[static_cast<int>(span.layer)].push_back(span.id);
    }
    for (int layer = 0; layer < kLayerCount; ++layer) {
      auto& spans = by_layer[layer];
      if (spans.empty()) continue;
      const std::vector<int> lanes = assign_lanes(tracer, spans, horizon);
      int max_lane = 0;
      for (std::size_t i = 0; i < spans.size(); ++i) {
        const Span& span = tracer.span(spans[i]);
        const int tid = layer * kLaneBand + lanes[i];
        max_lane = std::max(max_lane, lanes[i]);
        const util::TimeNs end = span.open() ? horizon : span.end;
        std::string body = "{\"ph\": \"X\", \"pid\": " +
                           std::to_string(pid) +
                           ", \"tid\": " + std::to_string(tid) +
                           ", \"name\": \"" + escape(span.name) +
                           "\", \"cat\": \"" +
                           layer_name(static_cast<Layer>(layer)) +
                           "\", \"ts\": " + micros(span.start) +
                           ", \"dur\": " + micros(end - span.start) +
                           ", \"args\": {\"span\": " +
                           std::to_string(span.id) +
                           ", \"parent\": " + std::to_string(span.parent);
        if (span.job >= 0) body += ", \"job\": " + std::to_string(span.job);
        if (span.task >= 0)
          body += ", \"task\": " + std::to_string(span.task);
        for (const auto& [key, value] : span.attrs) {
          body += ", \"" + escape(key) + "\": \"" + escape(value) + "\"";
        }
        body += "}}";
        emit_event(out, first, body);
      }
      for (int lane = 0; lane <= max_lane; ++lane) {
        std::string label = layer_name(static_cast<Layer>(layer));
        if (lane > 0) {
          label += '/';
          label += std::to_string(lane);
        }
        emit_event(
            out, first,
            "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " +
                std::to_string(pid) +
                ", \"tid\": " + std::to_string(layer * kLaneBand + lane) +
                ", \"args\": {\"name\": \"" + escape(label) + "\"}}");
      }
    }
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string write_chrome_trace(const std::string& name,
                               const std::vector<TraceProcess>& processes) {
  const std::string path = "TRACE_" + name + ".json";
  std::ofstream out(path, std::ios::trunc);
  out << chrome_trace_json(processes);
  return path;
}

core::Table critical_path_table(
    const std::string& title,
    const std::vector<std::pair<std::string, CriticalPath>>& paths) {
  bool used[kLayerCount] = {};
  for (const auto& [label, path] : paths) {
    for (int layer = 0; layer < kLayerCount; ++layer) {
      if (path.by_layer[layer] > 0) used[layer] = true;
    }
  }
  std::vector<std::string> columns = {"job", "total"};
  for (int layer = 0; layer < kLayerCount; ++layer) {
    if (used[layer]) columns.push_back(layer_name(static_cast<Layer>(layer)));
  }
  core::Table table(title, columns);
  for (const auto& [label, path] : paths) {
    std::vector<std::string> row = {label, util::human_time(path.total)};
    for (int layer = 0; layer < kLayerCount; ++layer) {
      if (!used[layer]) continue;
      const util::TimeNs t = path.by_layer[layer];
      if (t <= 0) {
        row.push_back("-");
      } else {
        const double pct =
            path.total > 0 ? 100.0 * static_cast<double>(t) /
                                 static_cast<double>(path.total)
                           : 0.0;
        row.push_back(util::human_time(t) + " (" + util::fixed(pct, 1) +
                      "%)");
      }
    }
    table.add_row(std::move(row));
  }
  return table;
}

void report_critical_path(core::MetricsReport& report,
                          const std::string& prefix,
                          const CriticalPath& path) {
  report.set(prefix + "_crit_total_ns", path.total);
  for (int layer = 0; layer < kLayerCount; ++layer) {
    if (path.by_layer[layer] <= 0) continue;
    report.set(prefix + "_crit_" +
                   layer_name(static_cast<Layer>(layer)) + "_ns",
               path.by_layer[layer]);
  }
}

}  // namespace evolve::trace
