#include "serve/batch.hpp"

#include <stdexcept>

namespace evolve::serve {

BatchFormer::BatchFormer(BatchConfig config) : config_(config) {
  if (config_.max_batch < 1) {
    throw std::invalid_argument("max_batch must be >= 1");
  }
  if (config_.max_linger < 0) {
    throw std::invalid_argument("max_linger must be >= 0");
  }
}

BatchPlan BatchFormer::plan(const std::deque<QueuedRequest>& queue,
                            util::TimeNs now) const {
  BatchPlan plan;
  if (queue.empty()) return plan;
  const int cls = queue.front().cls;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (queue[i].cls != cls) continue;
    plan.take.push_back(i);
    if (static_cast<int>(plan.take.size()) >= config_.max_batch) break;
  }
  const util::TimeNs deadline = queue.front().enqueued + config_.max_linger;
  if (static_cast<int>(plan.take.size()) >= config_.max_batch ||
      now >= deadline) {
    plan.ready = true;
    return plan;
  }
  plan.release_at = deadline;
  return plan;
}

}  // namespace evolve::serve
