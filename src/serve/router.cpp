#include "serve/router.hpp"

namespace evolve::serve {

const char* to_string(BalancePolicy policy) {
  switch (policy) {
    case BalancePolicy::kRoundRobin:
      return "round-robin";
    case BalancePolicy::kLeastOutstanding:
      return "least-outstanding";
    case BalancePolicy::kPowerOfTwo:
      return "p2c";
  }
  return "unknown";
}

Router::Router(BalancePolicy policy, std::uint64_t seed)
    : policy_(policy), rng_(seed) {}

int Router::least_outstanding(const std::vector<ReplicaView>& replicas,
                              int exclude) const {
  int best = -1;
  for (int i = 0; i < static_cast<int>(replicas.size()); ++i) {
    if (i == exclude || !replicas[i].available) continue;
    if (best < 0 || replicas[i].outstanding < replicas[best].outstanding ||
        (replicas[i].outstanding == replicas[best].outstanding &&
         replicas[i].key < replicas[best].key)) {
      best = i;
    }
  }
  return best;
}

int Router::pick(const std::vector<ReplicaView>& replicas, int exclude) {
  switch (policy_) {
    case BalancePolicy::kRoundRobin: {
      const std::size_t n = replicas.size();
      for (std::size_t step = 0; step < n; ++step) {
        const std::size_t i = (rr_next_ + step) % n;
        if (static_cast<int>(i) == exclude || !replicas[i].available) {
          continue;
        }
        rr_next_ = (i + 1) % n;
        return static_cast<int>(i);
      }
      return -1;
    }
    case BalancePolicy::kLeastOutstanding:
      return least_outstanding(replicas, exclude);
    case BalancePolicy::kPowerOfTwo: {
      std::vector<int> candidates;
      candidates.reserve(replicas.size());
      for (int i = 0; i < static_cast<int>(replicas.size()); ++i) {
        if (i != exclude && replicas[i].available) candidates.push_back(i);
      }
      if (candidates.empty()) return -1;
      if (candidates.size() <= 2) {
        return least_outstanding(replicas, exclude);
      }
      const auto n = static_cast<std::int64_t>(candidates.size());
      const int a = candidates[static_cast<std::size_t>(
          rng_.uniform_int(0, n - 1))];
      // Second sample over the remaining n-1, shifted past the first so
      // the two choices are always distinct.
      std::int64_t b_pos = rng_.uniform_int(0, n - 2);
      int b = candidates[static_cast<std::size_t>(b_pos)];
      if (b == a) b = candidates[static_cast<std::size_t>(n - 1)];
      if (replicas[b].outstanding < replicas[a].outstanding ||
          (replicas[b].outstanding == replicas[a].outstanding &&
           replicas[b].key < replicas[a].key)) {
        return b;
      }
      return a;
    }
  }
  return -1;
}

}  // namespace evolve::serve
