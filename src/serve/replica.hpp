// One serving replica: bounded FIFO queue, dynamic batching, execution.
//
// A ReplicaServer models one pod of a deployment serving requests on its
// node. Requests enter a bounded FIFO; the BatchFormer decides when the
// head batch is released (full, or the head lingered out); the batch
// then executes for `batch_setup + n * compute_cost` of work — on the
// replica's CPU share stretched by the node's gray slowdown factor, or
// offloaded to the accel pool when the class names a kernel (the pool
// applies kernel speedup, device queueing, and the device's own
// slowdown).
//
// Replicas are single-batch servers: one batch executes at a time, which
// is what makes queue sojourn the honest overload signal the admission
// controller consumes.
//
// Lifecycle: close() puts the replica in a terminal state (pod evicted
// or scaled down) and hands back the still-queued requests for
// re-routing; an executing batch is allowed to drain in simulation, and
// its completion is reported with `closed() == true` so the service can
// re-route those requests too. The owner must keep the object alive
// until it is idle (pending events capture `this`).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "accel/pool.hpp"
#include "serve/batch.hpp"
#include "serve/request.hpp"
#include "sim/simulation.hpp"
#include "trace/tracer.hpp"
#include "util/types.hpp"

namespace evolve::serve {

struct ReplicaConfig {
  int queue_limit = 64;  // bounded FIFO; overflow = shed
  BatchConfig batch;
};

class ReplicaServer {
 public:
  /// Fired once per request when it leaves the queue into a batch
  /// (sojourn = batch start - enqueue).
  using DequeueFn = std::function<void(RequestId, util::TimeNs sojourn)>;
  /// Fired when a batch finishes executing: the requests it carried, the
  /// class, and the per-batch execution time.
  using BatchDoneFn = std::function<void(std::int64_t replica_key,
                                         const std::vector<RequestId>& ids,
                                         int cls, util::TimeNs exec)>;

  ReplicaServer(sim::Simulation& sim, std::int64_t key, cluster::NodeId node,
                const std::vector<RequestClass>& classes,
                ReplicaConfig config, DequeueFn on_dequeue,
                BatchDoneFn on_batch_done);
  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  /// Enqueues a request copy. Returns false (shed) when the queue is at
  /// its limit or the replica is closed. `copy_span` parents the
  /// serve.queue / serve.exec spans.
  bool enqueue(RequestId id, int cls, trace::SpanId copy_span);

  /// Removes a still-queued copy (a hedge race was lost). Returns false
  /// when the copy is not in the queue (already executing or done).
  bool cancel_queued(RequestId id);

  /// Terminal: stops accepting, cancels the linger timer, and returns
  /// the queued requests (FIFO order) for the service to re-route.
  std::vector<QueuedRequest> close();

  std::int64_t key() const { return key_; }
  cluster::NodeId node() const { return node_; }
  bool closed() const { return closed_; }
  bool executing() const { return executing_; }
  /// True when no batch is executing and nothing is queued — a closed
  /// replica may be destroyed once idle.
  bool idle() const { return !executing_ && queue_.empty(); }
  int queue_depth() const { return static_cast<int>(queue_.size()); }

  std::int64_t batches_executed() const { return batches_; }
  std::int64_t requests_executed() const { return requests_executed_; }

  /// Gray-failure CPU slowdown (>= 1; applied at batch start).
  void set_slowdown(double factor) { slowdown_ = factor; }
  double slowdown() const { return slowdown_; }

  /// Attaches the accel pool used for classes with an accel kernel.
  void set_accel_pool(accel::AccelPool* pool) { pool_ = pool; }
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

 private:
  void maybe_start();
  void start_batch(std::vector<std::size_t> take);
  void finish_batch(std::vector<QueuedRequest> batch, int cls,
                    util::TimeNs exec, trace::SpanId batch_span,
                    std::vector<trace::SpanId> exec_spans);

  sim::Simulation& sim_;
  std::int64_t key_;
  cluster::NodeId node_;
  const std::vector<RequestClass>& classes_;
  ReplicaConfig config_;
  BatchFormer former_;
  DequeueFn on_dequeue_;
  BatchDoneFn on_batch_done_;
  std::deque<QueuedRequest> queue_;
  bool executing_ = false;
  bool closed_ = false;
  double slowdown_ = 1.0;
  sim::EventId linger_event_ = 0;
  bool linger_armed_ = false;
  util::TimeNs linger_deadline_ = -1;
  accel::AccelPool* pool_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  std::int64_t batches_ = 0;
  std::int64_t requests_executed_ = 0;
};

}  // namespace evolve::serve
