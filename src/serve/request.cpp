#include "serve/request.hpp"

namespace evolve::serve {

const char* to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kCompleted:
      return "completed";
    case Outcome::kShedAdmission:
      return "shed-admission";
    case Outcome::kShedQueueFull:
      return "shed-queue-full";
  }
  return "unknown";
}

}  // namespace evolve::serve
