// Latency-aware autoscaling signal.
//
// The original HorizontalAutoscaler scales against an oracle
// std::function<double()> load curve. The ScalingSignal replaces the
// oracle with observations from the serving path: a sliding window of
// arrivals (demand), a sliding window of queue-delay samples (tail
// pressure), and the instantaneous in-flight depth (backlog). load()
// returns a value in the autoscaler's native unit (req/s against
// `capacity_per_replica`):
//
//   load = max( arrival_rate * pressure,
//               capacity_per_replica * inflight / target_inflight_per_replica )
//
// where pressure = clamp(p99_queue_delay / delay_target, 1, max_pressure).
// The first term scales on demand, inflated when the observed p99 queue
// delay overshoots its target (latency-aware scale-up before queues
// collapse); the second is a backlog floor that forces scale-up even
// when arrivals stall because everything is stuck in queues.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>

#include "sim/simulation.hpp"
#include "util/types.hpp"

namespace evolve::serve {

struct ScalingSignalConfig {
  util::TimeNs window = util::seconds(10);       // sliding-window width
  util::TimeNs delay_target = util::millis(20);  // p99 queue-delay target
  double max_pressure = 3.0;                     // pressure clamp
  double capacity_per_replica = 100.0;  // same unit as AutoscalerConfig
  double target_inflight_per_replica = 16.0;
};

class ScalingSignal {
 public:
  explicit ScalingSignal(sim::Simulation& sim, ScalingSignalConfig config = {});
  ScalingSignal(const ScalingSignal&) = delete;
  ScalingSignal& operator=(const ScalingSignal&) = delete;

  // -- fed by the Service ---------------------------------------------
  void on_arrival();
  void on_queue_delay(util::TimeNs delay);
  void set_inflight(int depth) { inflight_ = depth; }

  // -- consumed by the autoscaler -------------------------------------
  /// Windowed arrival rate in req/s.
  double arrival_rate();
  /// p99 of the windowed queue-delay samples (0 while empty).
  util::TimeNs queue_delay_p99();
  /// clamp(p99 / delay_target, 1, max_pressure).
  double pressure();
  /// The synthetic load value to hand the HorizontalAutoscaler.
  double load();

  int inflight() const { return inflight_; }

 private:
  void evict(util::TimeNs now);

  sim::Simulation& sim_;
  ScalingSignalConfig config_;
  std::deque<util::TimeNs> arrivals_;
  std::deque<std::pair<util::TimeNs, util::TimeNs>> delays_;  // (time, delay)
  int inflight_ = 0;
};

}  // namespace evolve::serve
