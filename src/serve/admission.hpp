// SLO-driven load shedding: a CoDel-style admission controller.
//
// CoDel's insight transplanted to request admission: sustained queue
// *delay* (sojourn time), not queue length, is the overload signal. The
// controller watches the sojourn of every request leaving a queue for a
// batch. When sojourns stay above `target` for a full `interval`, it
// enters the shedding state and rejects arrivals with a ramp —
// successive sheds spaced `interval / shed_count` apart, so the shed
// rate grows until it matches the overload and relaxes the moment a
// sojourn dips back under target.
//
// Differences from queue-side CoDel, on purpose: we drop at *admission*
// (the router front door) rather than at dequeue, because a serving
// system wants to reject work before paying transfer and queue costs;
// the ramp is linear-in-count (shed rate ~ e^(t/interval)) instead of
// CoDel's sqrt law, because an admission controller must absorb a
// multiple-x arrival spike before the bounded queues saturate; and the
// shed-count history resets on recovery instead of being reused, which
// trades a slightly slower re-entry for simpler, fully deterministic
// state.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace evolve::serve {

struct AdmissionConfig {
  bool enabled = false;
  /// Queue-delay target: the share of the SLO budget queueing may consume.
  util::TimeNs target = util::millis(20);
  /// Sojourns must stay above target this long before shedding starts.
  util::TimeNs interval = util::millis(100);
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {});

  /// Feeds one observed queue sojourn (request enqueue -> batch start).
  void on_queue_delay(util::TimeNs now, util::TimeNs sojourn);

  /// Admission verdict for an arrival at `now`. False = shed it.
  bool admit(util::TimeNs now);

  bool shedding() const { return shedding_; }
  std::int64_t sheds() const { return sheds_; }

 private:
  AdmissionConfig config_;
  util::TimeNs first_above_deadline_ = -1;  // sustained-overload deadline
  bool shedding_ = false;
  util::TimeNs shed_next_ = 0;
  std::int64_t shed_count_ = 0;  // sheds in the current overload episode
  std::int64_t sheds_ = 0;       // lifetime total
};

}  // namespace evolve::serve
