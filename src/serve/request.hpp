// Request-serving model types: the cloud third of the converged stack
// finally gets a request path.
//
// A RequestClass describes one kind of traffic a service handles
// (per-tenant, with a size/compute cost and a latency SLO); a Request is
// one arrival of one class from one client node. The serving subsystem
// measures and defends tail latency per tenant: every terminal outcome
// is accounted against the class's tenant, and goodput means "completed
// within the SLO", not merely completed.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/node.hpp"
#include "util/types.hpp"

namespace evolve::serve {

using RequestId = std::int64_t;

/// One traffic class: what a request of this kind costs and what latency
/// it was promised. Compute cost splits into a per-request part and a
/// per-batch fixed setup (weight load, kernel launch) — the setup
/// amortization is exactly what dynamic batching buys.
struct RequestClass {
  std::string name;
  std::string tenant = "default";
  util::Bytes request_bytes = 16 * util::kKiB;
  util::Bytes response_bytes = 4 * util::kKiB;
  util::TimeNs compute_cost = util::millis(5);  // per-request CPU work
  util::TimeNs batch_setup = util::millis(4);   // per-batch fixed CPU work
  util::TimeNs slo = util::millis(100);         // end-to-end latency target
  /// Non-empty: batches offload through the accel pool under this kernel
  /// (device time = work / kernel speedup) instead of running on the
  /// replica's CPU share.
  std::string accel_kernel;
};

/// One arrival. `cls` indexes the owning service's class table. `key`
/// addresses stateful (tablet) backends; stateless services ignore it.
struct Request {
  RequestId id = 0;
  int cls = 0;
  cluster::NodeId client = cluster::kInvalidNode;
  util::TimeNs arrival = 0;
  std::uint64_t key = 0;
};

/// Terminal request outcomes (per-tenant accounting).
enum class Outcome {
  kCompleted,      // response delivered to the client
  kShedAdmission,  // rejected by the CoDel admission controller
  kShedQueueFull,  // bounced off a full replica queue
};

const char* to_string(Outcome outcome);

/// Per-tenant serving counters. Goodput counts only completions that met
/// the class SLO — the BigBench characterization's point that tail
/// latency, not mean, is what degrades under contention.
struct TenantStats {
  std::int64_t arrived = 0;
  std::int64_t admitted = 0;
  std::int64_t shed_admission = 0;
  std::int64_t shed_queue_full = 0;
  std::int64_t completed = 0;
  std::int64_t slo_violations = 0;

  std::int64_t shed() const { return shed_admission + shed_queue_full; }
  std::int64_t goodput() const { return completed - slo_violations; }
};

}  // namespace evolve::serve
