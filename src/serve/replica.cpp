#include "serve/replica.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace evolve::serve {

ReplicaServer::ReplicaServer(sim::Simulation& sim, std::int64_t key,
                             cluster::NodeId node,
                             const std::vector<RequestClass>& classes,
                             ReplicaConfig config, DequeueFn on_dequeue,
                             BatchDoneFn on_batch_done)
    : sim_(sim),
      key_(key),
      node_(node),
      classes_(classes),
      config_(config),
      former_(config.batch),
      on_dequeue_(std::move(on_dequeue)),
      on_batch_done_(std::move(on_batch_done)) {
  if (config_.queue_limit < 1) {
    throw std::invalid_argument("queue_limit must be >= 1");
  }
  if (!on_batch_done_) {
    throw std::invalid_argument("replica needs a batch-done callback");
  }
}

bool ReplicaServer::enqueue(RequestId id, int cls, trace::SpanId copy_span) {
  if (closed_) return false;
  if (static_cast<int>(queue_.size()) >= config_.queue_limit) return false;
  QueuedRequest entry;
  entry.id = id;
  entry.cls = cls;
  entry.enqueued = sim_.now();
  entry.span = copy_span;
  entry.queue_span =
      trace::begin_span(tracer_, trace::Layer::kServe, "serve.queue",
                        copy_span);
  queue_.push_back(entry);
  maybe_start();
  return true;
}

bool ReplicaServer::cancel_queued(RequestId id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id != id) continue;
    if (tracer_ && it->queue_span != trace::kNoSpan) {
      tracer_->annotate(it->queue_span, "cancelled", "1");
    }
    trace::end_span(tracer_, it->queue_span);
    queue_.erase(it);
    // The head may have changed; the linger deadline follows it.
    maybe_start();
    return true;
  }
  return false;
}

std::vector<QueuedRequest> ReplicaServer::close() {
  closed_ = true;
  if (linger_armed_) {
    sim_.cancel(linger_event_);
    linger_armed_ = false;
  }
  std::vector<QueuedRequest> orphans(queue_.begin(), queue_.end());
  for (QueuedRequest& entry : orphans) {
    if (tracer_ && entry.queue_span != trace::kNoSpan) {
      tracer_->annotate(entry.queue_span, "replica_closed", "1");
    }
    trace::end_span(tracer_, entry.queue_span);
    entry.queue_span = trace::kNoSpan;
  }
  queue_.clear();
  return orphans;
}

void ReplicaServer::maybe_start() {
  if (executing_ || closed_) return;
  const BatchPlan plan = former_.plan(queue_, sim_.now());
  if (plan.ready) {
    if (linger_armed_) {
      sim_.cancel(linger_event_);
      linger_armed_ = false;
    }
    start_batch(plan.take);
    return;
  }
  if (plan.release_at < 0) return;  // empty queue
  if (linger_armed_ && linger_deadline_ == plan.release_at) return;
  if (linger_armed_) sim_.cancel(linger_event_);
  linger_deadline_ = plan.release_at;
  linger_event_ = sim_.at(plan.release_at, [this] {
    linger_armed_ = false;
    maybe_start();
  });
  linger_armed_ = true;
}

void ReplicaServer::start_batch(std::vector<std::size_t> take) {
  const util::TimeNs now = sim_.now();
  std::vector<QueuedRequest> batch;
  batch.reserve(take.size());
  // Indices ascend; erase from the back so earlier indices stay valid.
  for (auto it = take.rbegin(); it != take.rend(); ++it) {
    batch.push_back(queue_[*it]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  std::reverse(batch.begin(), batch.end());  // restore FIFO order

  const int cls = batch.front().cls;
  const RequestClass& klass = classes_[static_cast<std::size_t>(cls)];
  const auto n = static_cast<std::int64_t>(batch.size());

  trace::SpanId batch_span = trace::begin_span(
      tracer_, trace::Layer::kServe, "serve.batch", trace::kNoSpan);
  if (tracer_ && batch_span != trace::kNoSpan) {
    tracer_->annotate(batch_span, "replica", std::to_string(key_));
    tracer_->annotate(batch_span, "node", std::to_string(node_));
    tracer_->annotate(batch_span, "size", std::to_string(n));
    tracer_->annotate(batch_span, "class", klass.name);
  }

  std::vector<trace::SpanId> exec_spans;
  exec_spans.reserve(batch.size());
  for (QueuedRequest& entry : batch) {
    trace::end_span(tracer_, entry.queue_span);
    entry.queue_span = trace::kNoSpan;
    if (on_dequeue_) on_dequeue_(entry.id, now - entry.enqueued);
    exec_spans.push_back(trace::begin_span(
        tracer_, trace::Layer::kServe, "serve.exec", entry.span));
  }

  executing_ = true;
  ++batches_;
  requests_executed_ += n;

  const util::TimeNs work = klass.batch_setup + n * klass.compute_cost;
  const util::TimeNs started = now;
  auto done = [this, batch = std::move(batch), cls, started, batch_span,
               exec_spans = std::move(exec_spans)]() mutable {
    finish_batch(std::move(batch), cls, sim_.now() - started, batch_span,
                 std::move(exec_spans));
  };
  if (!klass.accel_kernel.empty() && pool_ &&
      pool_->kernels().has(klass.accel_kernel)) {
    pool_->offload(klass.accel_kernel, work, node_, std::move(done));
  } else {
    const auto stretched =
        static_cast<util::TimeNs>(static_cast<double>(work) * slowdown_);
    sim_.after(stretched, std::move(done));
  }
}

void ReplicaServer::finish_batch(std::vector<QueuedRequest> batch, int cls,
                                 util::TimeNs exec, trace::SpanId batch_span,
                                 std::vector<trace::SpanId> exec_spans) {
  executing_ = false;
  for (trace::SpanId span : exec_spans) trace::end_span(tracer_, span);
  trace::end_span(tracer_, batch_span);
  std::vector<RequestId> ids;
  ids.reserve(batch.size());
  for (const QueuedRequest& entry : batch) ids.push_back(entry.id);
  on_batch_done_(key_, ids, cls, exec);
  maybe_start();
}

}  // namespace evolve::serve
