// Open-loop request generation: seeded Poisson phases or trace replay.
//
// Open-loop matters for tail-latency measurement: arrivals never wait
// for responses, so an overloaded service sees its queues actually
// build instead of the workload politely backing off (the coordinated-
// omission trap). The Poisson mode draws exponential interarrivals from
// a piecewise-constant rate curve (memorylessness makes restarting the
// draw at each phase boundary exact, not an approximation); the trace
// mode replays an explicit arrival list. Both are fully determined by
// the seed/trace, so every serving benchmark is bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "serve/request.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace evolve::serve {

/// One piece of the piecewise-constant rate curve: `rate_per_s` holds
/// until absolute time `until`. The last phase's rate extends to the
/// horizon.
struct ArrivalPhase {
  util::TimeNs until = 0;
  double rate_per_s = 0;
};

/// How request keys are drawn. kNone leaves every Request::key at 0 and
/// draws no random numbers, so stateless workloads keep their RNG stream
/// (and therefore every existing baseline) bit-identical.
enum class KeyDistribution {
  kNone,     // stateless: key stays 0, no draw
  kUniform,  // uniform over [0, keys)
  kZipf,     // Zipf(keys, zipf_s): key 0 hottest
};

struct GeneratorConfig {
  std::vector<ArrivalPhase> phases;  // ascending `until`; never empty
  /// Per-class mix weights (indexes the service's class table). Empty =
  /// single class 0.
  std::vector<double> class_weights;
  /// Client nodes issuing requests (uniform seeded pick per request).
  std::vector<cluster::NodeId> clients;
  std::uint64_t seed = 0x5eedf00d;
  util::TimeNs horizon = util::seconds(10);  // no arrivals at/after this
  /// Key sampling for stateful backends (off by default).
  KeyDistribution key_dist = KeyDistribution::kNone;
  std::uint64_t keys = 1;  // key-space size when key_dist != kNone
  double zipf_s = 1.1;     // skew for kZipf
};

class RequestGenerator {
 public:
  using Sink = std::function<void(Request)>;

  /// Poisson mode.
  RequestGenerator(sim::Simulation& sim, GeneratorConfig config, Sink sink);

  /// Trace mode: replays `trace` verbatim (ids are reassigned
  /// sequentially; `arrival` fields must be non-decreasing).
  RequestGenerator(sim::Simulation& sim, std::vector<Request> trace,
                   Sink sink);

  RequestGenerator(const RequestGenerator&) = delete;
  RequestGenerator& operator=(const RequestGenerator&) = delete;

  /// Arms the arrival process (idempotent).
  void start();
  /// Stops emitting (pending arrival events are cancelled).
  void stop();

  std::int64_t emitted() const { return emitted_; }

 private:
  double rate_at(util::TimeNs t) const;
  util::TimeNs phase_end(util::TimeNs t) const;
  void schedule_next(util::TimeNs from);
  void emit_trace_next();
  void emit(util::TimeNs at);

  sim::Simulation& sim_;
  GeneratorConfig config_;
  Sink sink_;
  util::Rng rng_;
  std::vector<Request> trace_;
  std::size_t trace_pos_ = 0;
  bool trace_mode_ = false;
  bool running_ = false;
  sim::EventId pending_ = 0;
  bool has_pending_ = false;
  RequestId next_id_ = 1;
  std::int64_t emitted_ = 0;
};

}  // namespace evolve::serve
