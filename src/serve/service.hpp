// The Service: a deployment turned into a real request-serving endpoint.
//
// Wires the whole request path together:
//
//   generator -> admission (CoDel shed) -> router (RR / least-out / p2c)
//     -> fabric transfer to the replica's node -> bounded FIFO queue
//     -> dynamic batch -> CPU share or accel offload -> response transfer
//
// Replicas track the DeploymentController one-to-one through its replica
// observer: a pod start brings a ReplicaServer up on the pod's node, an
// eviction/scale-down closes it and re-routes its queued requests. The
// router skips replicas on drained (quarantined) nodes, falling back to
// them only when nothing healthy is left — availability over purity.
// Gray CPU slowdowns stretch batch execution on the affected node.
//
// Hedging mirrors the ObjectStore's: when the primary copy has not
// completed after the service's own latency quantile (p95 by default), a
// duplicate is routed to a *different* replica; the first finisher wins,
// the loser is cancelled out of its queue (or its execution counted as
// wasted work). A request bounced off a full queue is shed, not retried
// — the bounded queue is the backpressure signal, and hedges are for
// slowness, not for overload.
//
// Every request emits serve.request / serve.queue / serve.exec spans
// (plus serve.hedge and replica-level serve.batch), with fabric
// transfers parented underneath, so the critical-path walk attributes
// request latency across serve/network layers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/arena.hpp"

#include "metrics/registry.hpp"
#include "net/fabric.hpp"
#include "orch/controllers.hpp"
#include "serve/admission.hpp"
#include "serve/replica.hpp"
#include "serve/request.hpp"
#include "serve/router.hpp"
#include "serve/signal.hpp"
#include "sim/simulation.hpp"
#include "trace/tracer.hpp"
#include "util/retry_budget.hpp"

namespace evolve::serve {

struct ServiceConfig {
  BalancePolicy policy = BalancePolicy::kPowerOfTwo;
  ReplicaConfig replica;
  AdmissionConfig admission;
  /// Duplicate slow requests to a second replica after the service's own
  /// latency quantile.
  bool hedging = false;
  double hedge_quantile = 95.0;
  util::TimeNs hedge_min_delay = util::millis(5);
  int hedge_min_samples = 32;
  /// Post-heal admission ramp (see ramp_node()): a freshly reconnected
  /// node's replicas start with this much virtual load, decaying
  /// linearly over the ramp window, so traffic returns gradually
  /// instead of as a thundering herd into a cold node.
  int ramp_max_penalty = 32;
  std::uint64_t seed = 0x5e12e;  // p2c sampling
};

class Service {
 public:
  /// node, batch execution time — feeds gray-failure health scoring.
  using ExecObserver = std::function<void(cluster::NodeId, util::TimeNs)>;
  using CompletionFn = std::function<void(
      const Request&, const RequestClass&, util::TimeNs latency, bool slo_ok)>;

  Service(sim::Simulation& sim, net::Fabric& fabric,
          orch::DeploymentController& deploy,
          std::vector<RequestClass> classes, ServiceConfig config = {});
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;
  ~Service();

  /// Accepts one request (the generator's sink).
  void submit(Request req);
  std::function<void(Request)> sink() {
    return [this](Request req) { submit(std::move(req)); };
  }

  // -- wiring hooks (fault/wiring.hpp) --------------------------------
  /// Gray CPU slowdown for replicas on `node` (>= 1; 1 = healthy).
  void set_node_slowdown(cluster::NodeId node, double factor);
  /// Quarantine drain: the router stops picking replicas on `node`.
  void set_node_drained(cluster::NodeId node, bool drained);
  bool is_node_drained(cluster::NodeId node) const {
    return drained_.count(node) != 0;
  }
  /// Post-heal admission ramp: for `window` after this call the router
  /// treats replicas on `node` as carrying extra virtual load
  /// (`ramp_max_penalty` decaying linearly to zero), so a healed node
  /// re-absorbs traffic gradually. Re-arming restarts the ramp.
  void ramp_node(cluster::NodeId node, util::TimeNs window);

  void set_accel_pool(accel::AccelPool* pool);
  void set_tracer(trace::Tracer* tracer);
  /// Latency-aware autoscaling: the service feeds the signal arrivals,
  /// queue delays, and in-flight depth.
  void attach_signal(ScalingSignal* signal);
  void set_exec_observer(ExecObserver fn) { exec_observer_ = std::move(fn); }
  void set_completion_observer(CompletionFn fn) {
    completion_observer_ = std::move(fn);
  }
  /// Attaches a (non-owned, possibly cross-layer shared) retry budget:
  /// hedges then cost a token each and are suppressed while the budget
  /// is empty; completed requests deposit. Null (default) disables.
  void set_retry_budget(util::RetryBudget* budget) { retry_budget_ = budget; }

  // -- introspection ---------------------------------------------------
  int replica_count() const { return static_cast<int>(replicas_.size()); }
  /// Requests assigned to replicas and not yet retired (in the network,
  /// queued, or executing).
  int outstanding() const { return total_outstanding_; }
  int parked() const { return static_cast<int>(parked_.size()); }
  int replica_queue_depth(std::int64_t key) const;

  const std::vector<RequestClass>& classes() const { return classes_; }
  const std::map<std::string, TenantStats>& tenants() const {
    return tenants_;
  }
  const TenantStats& tenant(const std::string& name) const;

  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }
  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

  std::int64_t hedges_launched() const { return hedges_launched_; }
  std::int64_t hedges_suppressed() const { return hedges_suppressed_; }
  std::int64_t hedge_wins() const { return hedge_wins_; }
  std::int64_t hedges_cancelled() const { return hedges_cancelled_; }
  std::int64_t wasted_exec() const { return wasted_exec_; }
  std::int64_t rerouted() const { return rerouted_; }

 private:
  struct Copy {
    std::int64_t replica = -1;  // key of the assigned replica
    trace::SpanId span = trace::kNoSpan;
    bool live = false;    // assigned and not yet retired
    bool parked = false;  // waiting for any replica to exist
  };
  struct InFlight {
    Request req;
    bool done = false;  // first finisher seen (or request shed)
    Copy copies[2];     // [0] primary, [1] hedge
    trace::SpanId root = trace::kNoSpan;
    sim::EventId hedge_event = 0;
    bool hedge_armed = false;
  };

  void on_replica_event(orch::PodId pod, cluster::NodeId node, bool up);
  ReplicaServer* replica(std::int64_t key);
  InFlight* record(RequestId id);
  TenantStats& tenant_of(const InFlight& rec);
  const RequestClass& class_of(const InFlight& rec) const {
    return classes_[static_cast<std::size_t>(rec.req.cls)];
  }

  /// Routes one copy; parks it when no replica exists. Returns false
  /// only when the copy could be neither routed nor parked (no distinct
  /// replica for a hedge).
  bool route_copy(InFlight& rec, int which, std::int64_t exclude_key);
  void deliver_to_replica(RequestId id, int which, std::int64_t key);
  void on_dequeue(RequestId id, util::TimeNs sojourn);
  void on_batch_done(std::int64_t key, const std::vector<RequestId>& ids,
                     int cls, util::TimeNs exec);
  void finalize(RequestId id, int which);
  void arm_hedge(InFlight& rec);
  void launch_hedge(RequestId id);
  /// Whole-request shed: accounts, closes spans, erases the record.
  void shed_request(InFlight& rec, Outcome outcome);
  void release_slot(std::int64_t key);
  int ramp_penalty(cluster::NodeId node);
  void note_inflight();
  void maybe_erase(RequestId id);
  void drain_parked();
  void sweep_retired();

  sim::Simulation& sim_;
  net::Fabric& fabric_;
  orch::DeploymentController& deploy_;
  std::vector<RequestClass> classes_;
  ServiceConfig config_;
  Router router_;
  AdmissionController admission_;

  std::map<std::int64_t, std::unique_ptr<ReplicaServer>> replicas_;
  /// Closed replicas still draining an executing batch (events capture
  /// their `this`); swept once idle.
  std::vector<std::unique_ptr<ReplicaServer>> retired_;
  std::map<std::int64_t, cluster::NodeId> replica_nodes_;  // all-time
  std::map<std::int64_t, int> outstanding_;
  std::map<cluster::NodeId, double> slowdown_;
  std::set<cluster::NodeId> drained_;
  struct Ramp {
    util::TimeNs start = 0;
    util::TimeNs end = 0;
  };
  /// Active post-heal admission ramps; entries expire lazily.
  std::map<cluster::NodeId, Ramp> ramp_;

  // In-flight records live on a slab (stable addresses, recycled cells —
  // no per-request map-node malloc/free); the unordered index is only
  // ever probed by id, never iterated, so ordering stays deterministic.
  util::Slab<InFlight> inflight_slab_;
  std::unordered_map<RequestId, InFlight*> inflight_;
  std::deque<std::pair<RequestId, int>> parked_;  // (request, copy index)

  std::map<std::string, TenantStats> tenants_;
  metrics::Registry metrics_;
  int total_outstanding_ = 0;

  accel::AccelPool* pool_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  ScalingSignal* signal_ = nullptr;
  ExecObserver exec_observer_;
  CompletionFn completion_observer_;
  util::RetryBudget* retry_budget_ = nullptr;  // non-owned, optional

  std::int64_t hedges_launched_ = 0;
  std::int64_t hedges_suppressed_ = 0;
  std::int64_t hedge_wins_ = 0;
  std::int64_t hedges_cancelled_ = 0;
  std::int64_t wasted_exec_ = 0;
  std::int64_t rerouted_ = 0;
};

}  // namespace evolve::serve
