#include "serve/generator.hpp"

#include <algorithm>
#include <stdexcept>

namespace evolve::serve {

RequestGenerator::RequestGenerator(sim::Simulation& sim,
                                   GeneratorConfig config, Sink sink)
    : sim_(sim),
      config_(std::move(config)),
      sink_(std::move(sink)),
      rng_(config_.seed) {
  if (!sink_) throw std::invalid_argument("generator needs a sink");
  if (config_.phases.empty()) {
    throw std::invalid_argument("generator needs at least one phase");
  }
  for (std::size_t i = 0; i < config_.phases.size(); ++i) {
    if (config_.phases[i].rate_per_s < 0) {
      throw std::invalid_argument("phase rates must be >= 0");
    }
    if (i > 0 && config_.phases[i].until <= config_.phases[i - 1].until) {
      throw std::invalid_argument("phase boundaries must ascend");
    }
  }
  if (config_.clients.empty()) {
    throw std::invalid_argument("generator needs client nodes");
  }
  if (config_.horizon <= 0) {
    throw std::invalid_argument("horizon must be > 0");
  }
}

RequestGenerator::RequestGenerator(sim::Simulation& sim,
                                   std::vector<Request> trace, Sink sink)
    : sim_(sim), sink_(std::move(sink)), rng_(0), trace_(std::move(trace)),
      trace_mode_(true) {
  if (!sink_) throw std::invalid_argument("generator needs a sink");
  for (std::size_t i = 1; i < trace_.size(); ++i) {
    if (trace_[i].arrival < trace_[i - 1].arrival) {
      throw std::invalid_argument("trace arrivals must be non-decreasing");
    }
  }
}

double RequestGenerator::rate_at(util::TimeNs t) const {
  for (const ArrivalPhase& phase : config_.phases) {
    if (t < phase.until) return phase.rate_per_s;
  }
  return config_.phases.back().rate_per_s;
}

util::TimeNs RequestGenerator::phase_end(util::TimeNs t) const {
  for (const ArrivalPhase& phase : config_.phases) {
    if (t < phase.until) return std::min(phase.until, config_.horizon);
  }
  return config_.horizon;
}

void RequestGenerator::start() {
  if (running_) return;
  running_ = true;
  if (trace_mode_) {
    emit_trace_next();
  } else {
    schedule_next(sim_.now());
  }
}

void RequestGenerator::stop() {
  running_ = false;
  if (has_pending_) {
    sim_.cancel(pending_);
    has_pending_ = false;
  }
}

void RequestGenerator::schedule_next(util::TimeNs from) {
  util::TimeNs t = from;
  while (t < config_.horizon) {
    const double rate = rate_at(t);
    const util::TimeNs bound = phase_end(t);
    if (rate <= 0) {
      t = bound;
      if (t >= config_.horizon) break;
      continue;
    }
    const auto dt = std::max<util::TimeNs>(
        1, static_cast<util::TimeNs>(rng_.exponential(rate) * 1e9));
    if (t + dt >= bound && bound < config_.horizon) {
      // Crossed into the next phase: memorylessness lets us restart the
      // exponential draw at the boundary with the new rate.
      t = bound;
      continue;
    }
    t += dt;
    if (t >= config_.horizon) break;
    pending_ = sim_.at(t, [this, t] {
      has_pending_ = false;
      if (!running_) return;
      emit(t);
      schedule_next(t);
    });
    has_pending_ = true;
    return;
  }
  running_ = false;
}

void RequestGenerator::emit_trace_next() {
  if (trace_pos_ >= trace_.size()) {
    running_ = false;
    return;
  }
  const Request& next = trace_[trace_pos_];
  pending_ = sim_.at(next.arrival, [this] {
    has_pending_ = false;
    if (!running_) return;
    Request req = trace_[trace_pos_++];
    req.id = next_id_++;
    req.arrival = sim_.now();
    ++emitted_;
    sink_(req);
    emit_trace_next();
  });
  has_pending_ = true;
}

void RequestGenerator::emit(util::TimeNs at) {
  Request req;
  req.id = next_id_++;
  req.arrival = at;
  if (config_.class_weights.empty()) {
    req.cls = 0;
  } else {
    req.cls = static_cast<int>(rng_.weighted_index(config_.class_weights));
  }
  req.client = config_.clients[static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(config_.clients.size()) - 1))];
  switch (config_.key_dist) {
    case KeyDistribution::kNone:
      break;  // no draw: stateless callers keep their RNG stream intact
    case KeyDistribution::kUniform:
      req.key = static_cast<std::uint64_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(config_.keys) - 1));
      break;
    case KeyDistribution::kZipf:
      req.key = static_cast<std::uint64_t>(
          rng_.zipf(static_cast<std::int64_t>(config_.keys), config_.zipf_s));
      break;
  }
  ++emitted_;
  sink_(req);
}

}  // namespace evolve::serve
