// Dynamic batch formation: max batch size + max linger time.
//
// The BatchFormer is pure decision logic over a replica's FIFO queue: it
// never touches the simulation clock or schedules events, so it is
// exhaustively unit-testable and trivially deterministic. The replica
// server owns the linger timer and re-plans on every enqueue, batch
// completion, and timer expiry.
//
// Coalescing rule: a batch is formed from the queue head's class. The
// former scans the whole queue in FIFO order collecting requests of that
// class (other classes keep their positions), and declares the batch
// ready when either `max_batch` compatible requests are waiting or the
// head request has lingered `max_linger`. A lone request therefore never
// waits more than the linger bound for company that isn't coming.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "serve/request.hpp"
#include "trace/tracer.hpp"
#include "util/types.hpp"

namespace evolve::serve {

struct BatchConfig {
  int max_batch = 8;                           // 1 disables coalescing
  util::TimeNs max_linger = util::micros(500);  // head-of-line wait bound
};

/// One queued request copy (the replica's FIFO element).
struct QueuedRequest {
  RequestId id = 0;
  int cls = 0;
  util::TimeNs enqueued = 0;
  trace::SpanId span = trace::kNoSpan;        // the copy's parent span
  trace::SpanId queue_span = trace::kNoSpan;  // serve.queue, open while queued
};

/// The former's verdict for the current queue state.
struct BatchPlan {
  bool ready = false;
  /// When !ready and the queue is non-empty: absolute time at which the
  /// head batch must be released even if still short (-1 = nothing to do).
  util::TimeNs release_at = -1;
  /// Queue indices (ascending) of the head-class requests to take.
  std::vector<std::size_t> take;
};

class BatchFormer {
 public:
  explicit BatchFormer(BatchConfig config);

  BatchPlan plan(const std::deque<QueuedRequest>& queue,
                 util::TimeNs now) const;

  const BatchConfig& config() const { return config_; }

 private:
  BatchConfig config_;
};

}  // namespace evolve::serve
