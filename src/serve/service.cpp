#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace evolve::serve {

Service::Service(sim::Simulation& sim, net::Fabric& fabric,
                 orch::DeploymentController& deploy,
                 std::vector<RequestClass> classes, ServiceConfig config)
    : sim_(sim),
      fabric_(fabric),
      deploy_(deploy),
      classes_(std::move(classes)),
      config_(config),
      router_(config.policy, config.seed),
      admission_(config.admission) {
  if (classes_.empty()) {
    throw std::invalid_argument("service needs at least one request class");
  }
  for (const RequestClass& klass : classes_) {
    tenants_.try_emplace(klass.tenant);
  }
  deploy_.set_replica_observer(
      [this](orch::PodId pod, cluster::NodeId node, bool up) {
        on_replica_event(pod, node, up);
      });
}

void Service::set_node_slowdown(cluster::NodeId node, double factor) {
  if (factor <= 1.0) {
    slowdown_.erase(node);
    factor = 1.0;
  } else {
    slowdown_[node] = factor;
  }
  for (auto& [key, rep] : replicas_) {
    if (rep->node() == node) rep->set_slowdown(factor);
  }
}

void Service::set_node_drained(cluster::NodeId node, bool drained) {
  if (drained) {
    drained_.insert(node);
  } else {
    drained_.erase(node);
  }
}

void Service::ramp_node(cluster::NodeId node, util::TimeNs window) {
  if (window <= 0 || config_.ramp_max_penalty <= 0) return;
  ramp_[node] = Ramp{sim_.now(), sim_.now() + window};
}

int Service::ramp_penalty(cluster::NodeId node) {
  if (ramp_.empty() || config_.ramp_max_penalty <= 0) return 0;
  const auto it = ramp_.find(node);
  if (it == ramp_.end()) return 0;
  const util::TimeNs now = sim_.now();
  if (now >= it->second.end) {
    ramp_.erase(it);
    return 0;
  }
  const double frac = static_cast<double>(now - it->second.start) /
                      static_cast<double>(it->second.end - it->second.start);
  return static_cast<int>(std::ceil(
      (1.0 - frac) * static_cast<double>(config_.ramp_max_penalty)));
}

void Service::set_accel_pool(accel::AccelPool* pool) {
  pool_ = pool;
  for (auto& [key, rep] : replicas_) rep->set_accel_pool(pool);
}

void Service::set_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  for (auto& [key, rep] : replicas_) rep->set_tracer(tracer);
}

void Service::attach_signal(ScalingSignal* signal) {
  signal_ = signal;
  note_inflight();
}

int Service::replica_queue_depth(std::int64_t key) const {
  auto it = replicas_.find(key);
  return it == replicas_.end() ? 0 : it->second->queue_depth();
}

const TenantStats& Service::tenant(const std::string& name) const {
  static const TenantStats kEmpty;
  auto it = tenants_.find(name);
  return it == tenants_.end() ? kEmpty : it->second;
}

Service::~Service() {
  // Records still in flight at teardown go back to the slab so their
  // owned members (request payload, callbacks) are destroyed.
  for (auto& [id, rec] : inflight_) inflight_slab_.release(rec);
}

Service::InFlight* Service::record(RequestId id) {
  auto it = inflight_.find(id);
  return it == inflight_.end() ? nullptr : it->second;
}

ReplicaServer* Service::replica(std::int64_t key) {
  auto it = replicas_.find(key);
  if (it != replicas_.end()) return it->second.get();
  for (auto& rep : retired_) {
    if (rep->key() == key) return rep.get();
  }
  return nullptr;
}

TenantStats& Service::tenant_of(const InFlight& rec) {
  return tenants_[class_of(rec).tenant];
}

void Service::submit(Request req) {
  if (req.cls < 0 || req.cls >= static_cast<int>(classes_.size())) {
    throw std::invalid_argument("request class out of range");
  }
  const util::TimeNs now = sim_.now();
  const RequestClass& klass = classes_[static_cast<std::size_t>(req.cls)];
  req.arrival = now;

  tenants_[klass.tenant].arrived += 1;
  metrics_.count("serve.requests");
  if (signal_) signal_->on_arrival();

  trace::SpanId root =
      trace::begin_span(tracer_, trace::Layer::kServe, "serve.request");
  if (tracer_ && root != trace::kNoSpan) {
    tracer_->set_job(root, req.id);
    tracer_->annotate(root, "class", klass.name);
    tracer_->annotate(root, "tenant", klass.tenant);
  }

  if (!admission_.admit(now)) {
    tenants_[klass.tenant].shed_admission += 1;
    metrics_.count("serve.shed_admission");
    if (tracer_ && root != trace::kNoSpan) {
      tracer_->annotate(root, "outcome", to_string(Outcome::kShedAdmission));
    }
    trace::end_span(tracer_, root);
    return;
  }
  tenants_[klass.tenant].admitted += 1;
  metrics_.count("serve.admitted");

  const RequestId id = req.id;
  auto [it, inserted] = inflight_.try_emplace(id, nullptr);
  if (!inserted) throw std::invalid_argument("duplicate request id");
  it->second = inflight_slab_.acquire();
  InFlight& rec = *it->second;
  rec.req = req;
  rec.root = root;

  route_copy(rec, 0, -1);
  // The record may have been erased (queue-full shed happens only after a
  // network hop, so not here; parking keeps it alive) — re-look-up anyway
  // to stay safe against future synchronous paths.
  InFlight* alive = record(id);
  if (alive && config_.hedging && !alive->done) arm_hedge(*alive);
}

bool Service::route_copy(InFlight& rec, int which, std::int64_t exclude_key) {
  Copy& copy = rec.copies[which];
  if (replicas_.empty()) {
    if (which != 0) return false;  // a hedge is never worth waiting for
    copy.parked = true;
    parked_.emplace_back(rec.req.id, which);
    metrics_.count("serve.parked");
    return true;
  }

  std::vector<ReplicaView> view;
  std::vector<std::int64_t> keys;
  view.reserve(replicas_.size());
  keys.reserve(replicas_.size());
  bool any_available = false;
  for (auto& [key, rep] : replicas_) {
    ReplicaView rv;
    rv.key = key;
    rv.outstanding = outstanding_[key] + ramp_penalty(rep->node());
    rv.available = drained_.count(rep->node()) == 0;
    any_available = any_available || rv.available;
    view.push_back(rv);
    keys.push_back(key);
  }
  if (!any_available) {
    // Every node is drained: availability beats purity.
    for (ReplicaView& rv : view) rv.available = true;
    metrics_.count("serve.routed_degraded");
  }
  int exclude_idx = -1;
  if (exclude_key >= 0) {
    auto pos = std::find(keys.begin(), keys.end(), exclude_key);
    if (pos != keys.end()) {
      exclude_idx = static_cast<int>(pos - keys.begin());
    }
  }
  const int idx = router_.pick(view, exclude_idx);
  if (idx < 0) return false;  // only the excluded replica was available

  const std::int64_t key = keys[static_cast<std::size_t>(idx)];
  copy.replica = key;
  copy.live = true;
  copy.parked = false;
  outstanding_[key] += 1;
  total_outstanding_ += 1;
  note_inflight();

  if (which == 0) {
    copy.span = rec.root;
  } else {
    copy.span = trace::begin_span(tracer_, trace::Layer::kServe,
                                  "serve.hedge", rec.root);
    if (tracer_ && copy.span != trace::kNoSpan) {
      tracer_->annotate(copy.span, "replica", std::to_string(key));
    }
  }

  const RequestClass& klass = class_of(rec);
  const cluster::NodeId target = replica_nodes_[key];
  const RequestId id = rec.req.id;
  trace::ScopedContext ctx(tracer_, copy.span);
  fabric_.transfer(rec.req.client, target, klass.request_bytes,
                   [this, id, which, key] {
                     deliver_to_replica(id, which, key);
                   });
  return true;
}

void Service::deliver_to_replica(RequestId id, int which, std::int64_t key) {
  InFlight* rec = record(id);
  if (!rec) return;  // the other copy finished and the record retired
  Copy& copy = rec->copies[which];
  if (!copy.live || copy.replica != key) return;

  if (rec->done) {
    // Won by the other copy while this one was still in the network.
    release_slot(key);
    copy.live = false;
    if (which == 1) hedges_cancelled_ += 1;
    maybe_erase(id);
    return;
  }

  ReplicaServer* rep = replica(key);
  if (!rep || rep->closed()) {
    // The replica went away while the request crossed the fabric.
    release_slot(key);
    copy.live = false;
    rerouted_ += 1;
    metrics_.count("serve.rerouted");
    if (!route_copy(*rec, which, -1)) maybe_erase(id);
    return;
  }

  if (!rep->enqueue(id, rec->req.cls, copy.span)) {
    // Bounded queue full: the request is shed, not retried — retrying
    // would just defeat the backpressure the bound exists to create.
    release_slot(key);
    copy.live = false;
    metrics_.count("serve.queue_full");
    Copy& other = rec->copies[1 - which];
    if (!other.live && !other.parked) {
      shed_request(*rec, Outcome::kShedQueueFull);
    } else {
      if (which == 1) trace::end_span(tracer_, copy.span);
      maybe_erase(id);
    }
  }
}

void Service::on_dequeue(RequestId /*id*/, util::TimeNs sojourn) {
  admission_.on_queue_delay(sim_.now(), sojourn);
  if (signal_) signal_->on_queue_delay(sojourn);
  metrics_.observe("serve.queue_delay_us", sojourn / util::kMicrosecond);
}

void Service::on_batch_done(std::int64_t key,
                            const std::vector<RequestId>& ids, int cls,
                            util::TimeNs exec) {
  metrics_.observe("serve.batch_size",
                   static_cast<std::int64_t>(ids.size()));
  metrics_.observe("serve.exec_us", exec / util::kMicrosecond);
  ReplicaServer* rep = replica(key);
  const bool closed = !rep || rep->closed();
  if (exec_observer_) {
    auto node_it = replica_nodes_.find(key);
    if (node_it != replica_nodes_.end()) exec_observer_(node_it->second, exec);
  }

  for (RequestId id : ids) {
    InFlight* rec = record(id);
    if (!rec) continue;
    int which = -1;
    for (int c = 0; c < 2; ++c) {
      if (rec->copies[c].live && rec->copies[c].replica == key) {
        which = c;
        break;
      }
    }
    if (which < 0) continue;
    Copy& copy = rec->copies[which];
    release_slot(key);

    if (rec->done) {
      // Lost the hedge race after already executing: pure wasted work.
      copy.live = false;
      wasted_exec_ += 1;
      metrics_.count("serve.wasted_exec");
      if (which == 1) trace::end_span(tracer_, copy.span);
      maybe_erase(id);
      continue;
    }

    if (closed) {
      // The pod was evicted mid-execution; the result died with it.
      copy.live = false;
      rerouted_ += 1;
      metrics_.count("serve.rerouted");
      if (!route_copy(*rec, which, -1)) maybe_erase(id);
      continue;
    }

    rec->done = true;
    if (which == 1) {
      hedge_wins_ += 1;
      metrics_.count("serve.hedge_wins");
    }
    if (rec->hedge_armed) {
      sim_.cancel(rec->hedge_event);
      rec->hedge_armed = false;
    }
    Copy& other = rec->copies[1 - which];
    if (other.live) {
      ReplicaServer* loser = replica(other.replica);
      if (loser && loser->cancel_queued(id)) {
        // Still queued: cancelled before it cost anything.
        release_slot(other.replica);
        other.live = false;
        hedges_cancelled_ += 1;
        metrics_.count("serve.hedges_cancelled");
        if ((1 - which) == 1) trace::end_span(tracer_, other.span);
      }
      // Executing or in the network: retires through its own path.
    }

    const RequestClass& klass = classes_[static_cast<std::size_t>(cls)];
    const cluster::NodeId from = replica_nodes_[key];
    const cluster::NodeId client = rec->req.client;
    trace::ScopedContext ctx(tracer_, copy.span);
    fabric_.transfer(from, client, klass.response_bytes,
                     [this, id, which] { finalize(id, which); });
  }
  // This callback runs inside the finishing replica's finish_batch — if
  // that replica was retired it may just have gone idle, but freeing it
  // here would pull the frame out from under it. Sweep after the event.
  bool any_idle = false;
  for (const auto& rep2 : retired_) any_idle = any_idle || rep2->idle();
  if (any_idle) sim_.defer([this] { sweep_retired(); });
}

void Service::finalize(RequestId id, int which) {
  InFlight* rec = record(id);
  if (!rec) return;
  Copy& copy = rec->copies[which];
  const util::TimeNs now = sim_.now();
  const util::TimeNs latency = now - rec->req.arrival;
  const RequestClass& klass = class_of(*rec);
  TenantStats& tenant = tenant_of(*rec);

  tenant.completed += 1;
  metrics_.count("serve.completed");
  if (retry_budget_ != nullptr) retry_budget_->record_success();
  metrics_.observe("serve.latency_us", latency / util::kMicrosecond);
  const bool slo_ok = latency <= klass.slo;
  if (!slo_ok) {
    tenant.slo_violations += 1;
    metrics_.count("serve.slo_violations");
  }
  if (tracer_ && rec->root != trace::kNoSpan) {
    tracer_->annotate(rec->root, "outcome", to_string(Outcome::kCompleted));
    if (which == 1) tracer_->annotate(rec->root, "won_by", "hedge");
  }
  if (which == 1) trace::end_span(tracer_, copy.span);
  trace::end_span(tracer_, rec->root);
  rec->root = trace::kNoSpan;
  copy.live = false;
  if (completion_observer_) {
    completion_observer_(rec->req, klass, latency, slo_ok);
  }
  maybe_erase(id);
}

void Service::arm_hedge(InFlight& rec) {
  util::TimeNs delay = config_.hedge_min_delay;
  const metrics::Histogram& latency = metrics_.histogram("serve.latency_us");
  if (latency.count() >= config_.hedge_min_samples) {
    delay = std::max<util::TimeNs>(
        latency.percentile(config_.hedge_quantile) * util::kMicrosecond,
        config_.hedge_min_delay);
  }
  const RequestId id = rec.req.id;
  rec.hedge_event = sim_.after(delay, [this, id] {
    InFlight* r = record(id);
    if (!r) return;
    r->hedge_armed = false;
    launch_hedge(id);
  });
  rec.hedge_armed = true;
}

void Service::launch_hedge(RequestId id) {
  InFlight* rec = record(id);
  if (!rec || rec->done) return;
  Copy& primary = rec->copies[0];
  if (!primary.live || primary.parked) return;  // dying or still parked
  if (replicas_.size() < 2) return;  // no distinct replica to hedge to
  if (retry_budget_ != nullptr && !retry_budget_->try_retry()) {
    // Empty cross-layer budget: a hedge is duplicate work the cluster
    // cannot afford right now — suppress rather than pile on.
    hedges_suppressed_ += 1;
    metrics_.count("serve.hedges_suppressed");
    return;
  }
  if (route_copy(*rec, 1, primary.replica)) {
    hedges_launched_ += 1;
    metrics_.count("serve.hedges_launched");
  }
}

void Service::shed_request(InFlight& rec, Outcome outcome) {
  TenantStats& tenant = tenant_of(rec);
  if (outcome == Outcome::kShedQueueFull) {
    tenant.shed_queue_full += 1;
    metrics_.count("serve.shed_queue_full");
  } else {
    tenant.shed_admission += 1;
    metrics_.count("serve.shed_admission");
  }
  if (rec.hedge_armed) {
    sim_.cancel(rec.hedge_event);
    rec.hedge_armed = false;
  }
  if (tracer_ && rec.root != trace::kNoSpan) {
    tracer_->annotate(rec.root, "outcome", to_string(outcome));
  }
  trace::end_span(tracer_, rec.copies[1].span);  // idempotent if ended
  trace::end_span(tracer_, rec.root);
  rec.done = true;
  rec.root = trace::kNoSpan;
  maybe_erase(rec.req.id);
}

void Service::release_slot(std::int64_t key) {
  auto it = outstanding_.find(key);
  if (it != outstanding_.end() && it->second > 0) it->second -= 1;
  total_outstanding_ -= 1;
  note_inflight();
}

void Service::note_inflight() {
  if (signal_) signal_->set_inflight(total_outstanding_);
  metrics_.set_gauge("serve.outstanding",
                     static_cast<double>(total_outstanding_));
}

void Service::maybe_erase(RequestId id) {
  auto it = inflight_.find(id);
  if (it == inflight_.end()) return;
  InFlight& rec = *it->second;
  if (!rec.done) return;
  for (const Copy& copy : rec.copies) {
    if (copy.live || copy.parked) return;
  }
  if (rec.hedge_armed) return;
  inflight_slab_.release(it->second);
  inflight_.erase(it);
}

void Service::on_replica_event(orch::PodId pod, cluster::NodeId node,
                               bool up) {
  const auto key = static_cast<std::int64_t>(pod);
  if (up) {
    auto rep = std::make_unique<ReplicaServer>(
        sim_, key, node, classes_, config_.replica,
        [this](RequestId id, util::TimeNs sojourn) { on_dequeue(id, sojourn); },
        [this](std::int64_t k, const std::vector<RequestId>& ids, int cls,
               util::TimeNs exec) { on_batch_done(k, ids, cls, exec); });
    auto slow = slowdown_.find(node);
    if (slow != slowdown_.end()) rep->set_slowdown(slow->second);
    rep->set_accel_pool(pool_);
    rep->set_tracer(tracer_);
    replica_nodes_[key] = node;
    outstanding_[key] = 0;
    replicas_[key] = std::move(rep);
    metrics_.count("serve.replica_up");
    drain_parked();
    return;
  }

  auto it = replicas_.find(key);
  if (it == replicas_.end()) return;
  std::unique_ptr<ReplicaServer> rep = std::move(it->second);
  replicas_.erase(it);
  metrics_.count("serve.replica_down");
  std::vector<QueuedRequest> orphans = rep->close();
  if (rep->idle()) {
    rep.reset();  // no pending events capture it; safe to free now
  } else {
    retired_.push_back(std::move(rep));  // drains its executing batch
  }
  for (const QueuedRequest& orphan : orphans) {
    InFlight* rec = record(orphan.id);
    if (!rec) continue;
    int which = -1;
    for (int c = 0; c < 2; ++c) {
      if (rec->copies[c].live && rec->copies[c].replica == key) which = c;
    }
    if (which < 0) continue;
    release_slot(key);
    rec->copies[which].live = false;
    if (rec->done) {
      maybe_erase(orphan.id);
      continue;
    }
    rerouted_ += 1;
    metrics_.count("serve.rerouted");
    if (!route_copy(*rec, which, -1)) maybe_erase(orphan.id);
  }
}

void Service::drain_parked() {
  std::deque<std::pair<RequestId, int>> pending;
  pending.swap(parked_);
  while (!pending.empty()) {
    auto [id, which] = pending.front();
    pending.pop_front();
    InFlight* rec = record(id);
    if (!rec || !rec->copies[which].parked) continue;  // shed while parked
    rec->copies[which].parked = false;
    if (replicas_.empty()) {
      // Still nothing to route to: park again, preserving FIFO order.
      rec->copies[which].parked = true;
      parked_.emplace_back(id, which);
      for (auto& rest : pending) parked_.push_back(rest);
      return;
    }
    route_copy(*rec, which, -1);
    if (config_.hedging) {
      InFlight* alive = record(id);
      if (alive && !alive->done && !alive->hedge_armed &&
          !alive->copies[1].live) {
        arm_hedge(*alive);
      }
    }
  }
}

void Service::sweep_retired() {
  retired_.erase(
      std::remove_if(retired_.begin(), retired_.end(),
                     [](const std::unique_ptr<ReplicaServer>& rep) {
                       return rep->idle();
                     }),
      retired_.end());
}

}  // namespace evolve::serve
