#include "serve/signal.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace evolve::serve {

ScalingSignal::ScalingSignal(sim::Simulation& sim, ScalingSignalConfig config)
    : sim_(sim), config_(config) {
  if (config_.window <= 0) throw std::invalid_argument("window must be > 0");
  if (config_.delay_target <= 0) {
    throw std::invalid_argument("delay_target must be > 0");
  }
  if (config_.max_pressure < 1.0) {
    throw std::invalid_argument("max_pressure must be >= 1");
  }
  if (config_.capacity_per_replica <= 0 ||
      config_.target_inflight_per_replica <= 0) {
    throw std::invalid_argument("capacities must be > 0");
  }
}

void ScalingSignal::evict(util::TimeNs now) {
  const util::TimeNs cutoff = now - config_.window;
  while (!arrivals_.empty() && arrivals_.front() < cutoff) {
    arrivals_.pop_front();
  }
  while (!delays_.empty() && delays_.front().first < cutoff) {
    delays_.pop_front();
  }
}

void ScalingSignal::on_arrival() {
  const util::TimeNs now = sim_.now();
  arrivals_.push_back(now);
  evict(now);
}

void ScalingSignal::on_queue_delay(util::TimeNs delay) {
  const util::TimeNs now = sim_.now();
  delays_.emplace_back(now, delay);
  evict(now);
}

double ScalingSignal::arrival_rate() {
  const util::TimeNs now = sim_.now();
  evict(now);
  // Before a full window has elapsed, divide by elapsed time so a burst
  // at t=0 is not diluted by a window that never existed.
  const double span_s =
      util::to_seconds(std::min<util::TimeNs>(config_.window, std::max<util::TimeNs>(now, 1)));
  return static_cast<double>(arrivals_.size()) / span_s;
}

util::TimeNs ScalingSignal::queue_delay_p99() {
  evict(sim_.now());
  if (delays_.empty()) return 0;
  std::vector<util::TimeNs> sorted;
  sorted.reserve(delays_.size());
  for (const auto& [t, d] : delays_) sorted.push_back(d);
  const auto rank = static_cast<std::size_t>(
      (static_cast<double>(sorted.size()) * 99.0) / 100.0);
  const std::size_t idx = std::min(rank, sorted.size() - 1);
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(idx),
                   sorted.end());
  return sorted[idx];
}

double ScalingSignal::pressure() {
  const double ratio =
      static_cast<double>(queue_delay_p99()) /
      static_cast<double>(config_.delay_target);
  return std::clamp(ratio, 1.0, config_.max_pressure);
}

double ScalingSignal::load() {
  const double demand = arrival_rate() * pressure();
  const double backlog = config_.capacity_per_replica *
                         static_cast<double>(inflight_) /
                         config_.target_inflight_per_replica;
  return std::max(demand, backlog);
}

}  // namespace evolve::serve
