// Replica selection: pluggable load-balancing policies.
//
// The Router is a pure policy engine over a snapshot of replica state
// (stable key, outstanding-request depth, availability). The Service
// builds the snapshot — outstanding counts every request assigned to a
// replica and not yet retired (in the network, queued, or executing) —
// and the router returns an index. Quarantined/drained replicas arrive
// with `available = false`; the router never picks them.
//
// Policies:
//   round-robin        rotates over available replicas, ignoring depth.
//   least-outstanding  global minimum depth; ties break to lowest key.
//   power-of-two       samples two distinct available replicas with the
//                      router's seeded RNG and keeps the shallower one —
//                      the classic two-choices result: near-least-loaded
//                      quality at O(1) sampled state, and the sampling
//                      noise itself avoids thundering herds on one
//                      momentarily-empty replica.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace evolve::serve {

enum class BalancePolicy { kRoundRobin, kLeastOutstanding, kPowerOfTwo };

const char* to_string(BalancePolicy policy);

/// Snapshot of one replica for a routing decision.
struct ReplicaView {
  std::int64_t key = 0;  // stable identity (pod id); ties break on it
  int outstanding = 0;   // assigned and not yet retired
  bool available = true; // false = drained/quarantined, never picked
};

class Router {
 public:
  explicit Router(BalancePolicy policy, std::uint64_t seed = 0x70e2);

  /// Picks a replica index in `replicas`, or -1 when none is available.
  /// `exclude` (an index, or -1) removes one replica from consideration —
  /// hedged requests must land on a different replica than the primary.
  int pick(const std::vector<ReplicaView>& replicas, int exclude = -1);

  BalancePolicy policy() const { return policy_; }

 private:
  int least_outstanding(const std::vector<ReplicaView>& replicas,
                        int exclude) const;

  BalancePolicy policy_;
  util::Rng rng_;
  std::size_t rr_next_ = 0;
};

}  // namespace evolve::serve
