#include "serve/admission.hpp"

#include <cmath>
#include <stdexcept>

namespace evolve::serve {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  if (config_.target < 0) throw std::invalid_argument("target must be >= 0");
  if (config_.interval <= 0) {
    throw std::invalid_argument("interval must be > 0");
  }
}

void AdmissionController::on_queue_delay(util::TimeNs now,
                                         util::TimeNs sojourn) {
  if (sojourn < config_.target) {
    // One good sojourn ends the overload episode.
    first_above_deadline_ = -1;
    shedding_ = false;
    shed_count_ = 0;
    return;
  }
  if (first_above_deadline_ < 0) {
    first_above_deadline_ = now + config_.interval;
    return;
  }
  if (now >= first_above_deadline_ && !shedding_) {
    shedding_ = true;
    shed_next_ = now;  // the next arrival is shed immediately
    shed_count_ = 0;
  }
}

bool AdmissionController::admit(util::TimeNs now) {
  if (!config_.enabled || !shedding_) return true;
  if (now < shed_next_) return true;
  ++shed_count_;
  ++sheds_;
  // Linear ramp: the k-th shed of an episode schedules the next one
  // interval/k away, so the shed *rate* grows like e^(t/interval) while
  // overload persists. Queue-side CoDel's gentler interval/sqrt(k) is
  // tuned for trimming a standing queue; an admission controller facing
  // a multiple-x arrival spike has to reach "reject most of the excess"
  // within a few intervals or the bounded queues saturate first.
  shed_next_ = now + std::max<util::TimeNs>(
                         1, config_.interval /
                                static_cast<util::TimeNs>(shed_count_));
  return false;
}

}  // namespace evolve::serve
