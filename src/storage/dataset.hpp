// Datasets: named, partitioned collections of objects in the store.
//
// This mirrors EVOLVE's shared-dataset abstraction (DataShim-style):
// big-data, HPC, and cloud steps all reference the same dataset by name
// and the platform resolves partitions to object replicas for
// locality-aware placement.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "storage/object_store.hpp"
#include "util/types.hpp"

namespace evolve::storage {

struct DatasetSpec {
  std::string name;           // also the bucket name
  int partitions = 1;
  util::Bytes total_bytes = 0;

  util::Bytes partition_bytes(int index) const;
};

/// Object key of one partition ("<name>/part-00042").
ObjectKey partition_key(const DatasetSpec& spec, int index);

class DatasetCatalog {
 public:
  explicit DatasetCatalog(ObjectStore& store) : store_(store) {}

  /// Registers a dataset definition.
  void define(DatasetSpec spec);

  bool defined(const std::string& name) const;
  const DatasetSpec& spec(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Stages every partition instantly (no simulated time).
  void preload(const std::string& name, bool warm_cache = false);

  /// Ingests every partition through real PUTs from `client`;
  /// `on_done` fires when the last partition is durable.
  void ingest(cluster::NodeId client, const std::string& name,
              std::function<void()> on_done);

  /// Replica locations per partition (primary first).
  std::vector<std::vector<cluster::NodeId>> locations(
      const std::string& name) const;

  /// True once every partition object exists in the store.
  bool materialized(const std::string& name) const;

  ObjectStore& store() { return store_; }

 private:
  ObjectStore& store_;
  std::map<std::string, DatasetSpec> specs_;
};

}  // namespace evolve::storage
