#include "storage/tiered_cache.hpp"

#include <stdexcept>

namespace evolve::storage {

TieredCache::TieredCache(std::vector<TierConfig> tiers) {
  if (tiers.empty()) throw std::invalid_argument("need at least one tier");
  for (auto& config : tiers) {
    if (config.capacity < 0) {
      throw std::invalid_argument("tier capacity must be >= 0");
    }
    Tier tier;
    tier.config = std::move(config);
    tiers_.push_back(std::move(tier));
  }
}

const TierStats& TieredCache::stats(int tier) const {
  return tiers_.at(static_cast<std::size_t>(tier)).stats;
}

const TierConfig& TieredCache::config(int tier) const {
  return tiers_.at(static_cast<std::size_t>(tier)).config;
}

util::Bytes TieredCache::used(int tier) const {
  return tiers_.at(static_cast<std::size_t>(tier)).stats.used;
}

bool TieredCache::contains(const std::string& key) const {
  return index_.count(key) != 0;
}

std::optional<int> TieredCache::peek(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return it->second.tier;
}

void TieredCache::make_room(int tier_index, util::Bytes needed) {
  Tier& tier = tiers_[static_cast<std::size_t>(tier_index)];
  while (tier.stats.used + needed > tier.config.capacity &&
         !tier.lru.empty()) {
    Entry victim = std::move(tier.lru.back());
    tier.lru.pop_back();
    tier.stats.used -= victim.size;
    index_.erase(victim.key);
    ++tier.stats.demotions_out;
    if (tier_index + 1 < tier_count()) {
      insert_into(tier_index + 1, std::move(victim), /*demotion=*/true);
    } else {
      ++drops_;
    }
  }
}

void TieredCache::insert_into(int tier_index, Entry entry, bool demotion) {
  Tier& tier = tiers_[static_cast<std::size_t>(tier_index)];
  if (entry.size > tier.config.capacity) {
    // Too big for this tier entirely: push further down or drop.
    if (tier_index + 1 < tier_count()) {
      insert_into(tier_index + 1, std::move(entry), demotion);
    } else {
      ++drops_;
    }
    return;
  }
  make_room(tier_index, entry.size);
  tier.stats.used += entry.size;
  if (demotion) {
    ++tier.stats.demotions_in;
  } else {
    ++tier.stats.inserts;
  }
  tier.lru.push_front(std::move(entry));
  index_[tier.lru.front().key] = Location{tier_index, tier.lru.begin()};
}

bool TieredCache::put(const std::string& key, util::Bytes size) {
  if (size < 0) throw std::invalid_argument("put: negative size");
  erase(key);
  bool fits_somewhere = false;
  for (const Tier& tier : tiers_) {
    if (size <= tier.config.capacity) {
      fits_somewhere = true;
      break;
    }
  }
  if (!fits_somewhere) {
    ++drops_;
    return false;
  }
  insert_into(0, Entry{key, size}, /*demotion=*/false);
  return true;
}

std::optional<int> TieredCache::get(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  const int found_tier = it->second.tier;
  ++tiers_[static_cast<std::size_t>(found_tier)].stats.hits;
  const std::list<Entry>::iterator entry_it = it->second.it;
  if (found_tier == 0) {
    // DRAM hit: refresh the LRU position by splicing in place — the index
    // entry stays untouched, so a hit performs zero rehashing.
    Tier& tier = tiers_[0];
    tier.lru.splice(tier.lru.begin(), tier.lru, entry_it);
    return found_tier;
  }
  // Promote to tier 0 when it can ever fit there; otherwise refresh here.
  // The entry is spliced through a holding list so the eviction cascade in
  // make_room can never select it, and its Location stays valid in place
  // (list iterators survive splice; the map value survives any rehash that
  // demotion-driven index inserts cause).
  Tier& old_tier = tiers_[static_cast<std::size_t>(found_tier)];
  const util::Bytes size = entry_it->size;
  const int target = size <= tiers_[0].config.capacity ? 0 : found_tier;
  std::list<Entry> holding;
  holding.splice(holding.begin(), old_tier.lru, entry_it);
  old_tier.stats.used -= size;
  it->second = Location{target, entry_it};  // `it` must not be used below
  make_room(target, size);
  Tier& dst = tiers_[static_cast<std::size_t>(target)];
  dst.lru.splice(dst.lru.begin(), holding, entry_it);
  dst.stats.used += size;
  ++dst.stats.inserts;
  return found_tier;
}

bool TieredCache::erase(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  Tier& tier = tiers_[static_cast<std::size_t>(it->second.tier)];
  tier.stats.used -= it->second.it->size;
  tier.lru.erase(it->second.it);
  index_.erase(it);
  return true;
}

}  // namespace evolve::storage
