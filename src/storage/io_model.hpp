// Storage-device service model.
//
// Each (node, device) pair gets a DeviceQueue that serializes requests:
// a request's service time is the device's fixed access latency plus
// size/bandwidth, and requests queue FIFO behind the device's busy time.
// This reproduces device-level contention (e.g. many shuffle spills
// hitting one NVMe) without per-sector detail.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>

#include "cluster/cluster.hpp"
#include "sim/simulation.hpp"
#include "util/types.hpp"

namespace evolve::storage {

enum class IoKind { kRead, kWrite };

/// Pure service-time formula (no queueing). Exposed for tests and for
/// quick analytic estimates.
util::TimeNs service_time(const cluster::StorageDeviceSpec& device,
                          IoKind kind, util::Bytes bytes);

/// FIFO queue in front of one device.
class DeviceQueue {
 public:
  DeviceQueue(sim::Simulation& sim, cluster::StorageDeviceSpec spec);

  /// Enqueues an I/O; `on_done` fires when it completes.
  void submit(IoKind kind, util::Bytes bytes, std::function<void()> on_done);

  const cluster::StorageDeviceSpec& spec() const { return spec_; }
  std::int64_t completed_requests() const { return completed_; }

  /// Time at which the device becomes idle given current queue.
  util::TimeNs busy_until() const { return busy_until_; }

 private:
  sim::Simulation& sim_;
  cluster::StorageDeviceSpec spec_;
  util::TimeNs busy_until_ = 0;
  std::int64_t completed_ = 0;
};

/// Per-cluster registry of device queues, keyed by (node, device name).
class IoSubsystem {
 public:
  IoSubsystem(sim::Simulation& sim, const cluster::Cluster& cluster);

  /// Returns the queue for a device; throws if the node lacks it.
  DeviceQueue& device(cluster::NodeId node, const std::string& name);

  /// True if the node has a device with this name.
  bool has_device(cluster::NodeId node, const std::string& name) const;

 private:
  std::map<std::pair<cluster::NodeId, std::string>, DeviceQueue> queues_;
};

}  // namespace evolve::storage
