// Per-node tiered cache (DRAM -> NVMe -> HDD) with LRU per tier and
// demotion cascades, mirroring the EVOLVE storage nodes' tiering.
//
// This class is a placement/bookkeeping structure: it decides which tier
// an object lives in. Timing is applied by the object store, which charges
// the device queue of the tier the cache reports.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace evolve::storage {

struct TierConfig {
  std::string name;          // must match a StorageDeviceSpec name
  util::Bytes capacity = 0;  // bytes usable for cached objects
};

struct TierStats {
  std::int64_t hits = 0;
  std::int64_t inserts = 0;
  std::int64_t demotions_in = 0;   // objects demoted into this tier
  std::int64_t demotions_out = 0;  // objects demoted out of this tier
  util::Bytes used = 0;
};

/// Multi-tier LRU. Tier 0 is fastest. An object lives in exactly one tier.
/// Inserts land in tier 0; eviction demotes the LRU object to the next
/// tier (possibly cascading); the last tier evicts to nowhere (drop).
class TieredCache {
 public:
  explicit TieredCache(std::vector<TierConfig> tiers);

  /// Inserts or refreshes an object in tier 0. Objects larger than tier 0
  /// land in the first tier that can ever hold them; objects larger than
  /// every tier are not cached (returns false).
  bool put(const std::string& key, util::Bytes size);

  /// Looks up an object. On a hit, promotes it to tier 0 (if it fits) and
  /// returns the tier index it was found in *before* promotion.
  std::optional<int> get(const std::string& key);

  /// Looks up without promoting or touching LRU order.
  std::optional<int> peek(const std::string& key) const;

  /// Removes an object from whatever tier holds it.
  bool erase(const std::string& key);

  /// Drops every cached object (node crash: volatile tiers are gone and
  /// restart starts cold). Cumulative hit/miss counters are preserved.
  void clear() {
    for (Tier& tier : tiers_) {
      tier.lru.clear();
      tier.stats.used = 0;
    }
    index_.clear();
  }

  bool contains(const std::string& key) const;

  int tier_count() const { return static_cast<int>(tiers_.size()); }
  const TierStats& stats(int tier) const;
  const TierConfig& config(int tier) const;
  util::Bytes used(int tier) const;

  std::int64_t misses() const { return misses_; }
  std::int64_t drops() const { return drops_; }

  /// Total objects across all tiers.
  std::size_t size() const { return index_.size(); }

 private:
  struct Entry {
    std::string key;
    util::Bytes size;
  };
  struct Tier {
    TierConfig config;
    TierStats stats;
    std::list<Entry> lru;  // front = most recent
  };
  struct Location {
    int tier;
    std::list<Entry>::iterator it;
  };

  /// Places an entry at the head of `tier`, evicting/demoting as needed.
  /// `demotion` marks whether this insert came from a higher tier.
  void insert_into(int tier, Entry entry, bool demotion);
  void make_room(int tier, util::Bytes needed);

  std::vector<Tier> tiers_;
  std::unordered_map<std::string, Location> index_;
  std::int64_t misses_ = 0;
  std::int64_t drops_ = 0;
};

}  // namespace evolve::storage
