#include "storage/filesystem.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace evolve::storage {

FileSystem::FileSystem(ObjectStore& store, std::string bucket)
    : store_(store), bucket_(std::move(bucket)) {
  if (bucket_.empty()) throw std::invalid_argument("filesystem needs bucket");
  store_.create_bucket(bucket_);
  nodes_["/"] = Node{true, "", 0};
}

std::string FileSystem::normalize(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    throw std::invalid_argument("path must be absolute: " + path);
  }
  std::vector<std::string> segments;
  for (const std::string& part : util::split(path, '/')) {
    if (part.empty()) continue;
    if (part == "." || part == "..") {
      throw std::invalid_argument("path must not contain . or ..: " + path);
    }
    segments.push_back(part);
  }
  if (segments.empty()) return "/";
  std::string out;
  for (const std::string& segment : segments) out += "/" + segment;
  return out;
}

std::string FileSystem::parent_of(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == 0 ? "/" : path.substr(0, pos);
}

const FileSystem::Node* FileSystem::find(const std::string& path) const {
  auto it = nodes_.find(path);
  return it == nodes_.end() ? nullptr : &it->second;
}

void FileSystem::require_parent(const std::string& path) const {
  const Node* parent = find(parent_of(path));
  if (parent == nullptr || !parent->directory) {
    throw std::invalid_argument("parent directory missing: " + path);
  }
}

std::string FileSystem::fresh_inode() {
  return "inode-" + std::to_string(next_inode_++);
}

void FileSystem::mkdir(const std::string& raw) {
  const std::string path = normalize(raw);
  if (path == "/") return;
  if (find(path) != nullptr) {
    throw std::invalid_argument("already exists: " + path);
  }
  require_parent(path);
  nodes_[path] = Node{true, "", 0};
}

void FileSystem::mkdirs(const std::string& raw) {
  const std::string path = normalize(raw);
  if (path == "/") return;
  std::string prefix;
  for (const std::string& part : util::split(path.substr(1), '/')) {
    prefix += "/" + part;
    const Node* node = find(prefix);
    if (node == nullptr) {
      nodes_[prefix] = Node{true, "", 0};
    } else if (!node->directory) {
      throw std::invalid_argument("not a directory: " + prefix);
    }
  }
}

bool FileSystem::exists(const std::string& path) const {
  return find(normalize(path)) != nullptr;
}

bool FileSystem::is_dir(const std::string& path) const {
  const Node* node = find(normalize(path));
  return node != nullptr && node->directory;
}

bool FileSystem::is_file(const std::string& path) const {
  const Node* node = find(normalize(path));
  return node != nullptr && !node->directory;
}

std::optional<util::Bytes> FileSystem::stat(const std::string& path) const {
  const Node* node = find(normalize(path));
  if (node == nullptr || node->directory) return std::nullopt;
  return node->size;
}

std::vector<std::string> FileSystem::list(const std::string& raw) const {
  const std::string path = normalize(raw);
  const Node* node = find(path);
  if (node == nullptr || !node->directory) {
    throw std::invalid_argument("not a directory: " + path);
  }
  const std::string prefix = path == "/" ? "/" : path + "/";
  std::vector<std::string> out;
  for (auto it = nodes_.lower_bound(prefix); it != nodes_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    if (it->first == path) continue;  // the directory itself (root case)
    const std::string rest = it->first.substr(prefix.size());
    if (!rest.empty() && rest.find('/') == std::string::npos) {
      out.push_back(rest);
    }
  }
  return out;  // std::map iteration is already sorted
}

void FileSystem::rename(const std::string& raw_from,
                        const std::string& raw_to) {
  const std::string from = normalize(raw_from);
  const std::string to = normalize(raw_to);
  if (from == "/") throw std::invalid_argument("cannot rename root");
  const Node* source = find(from);
  if (source == nullptr) throw std::invalid_argument("no such path: " + from);
  if (find(to) != nullptr) {
    throw std::invalid_argument("destination exists: " + to);
  }
  if (to.compare(0, from.size() + 1, from + "/") == 0) {
    throw std::invalid_argument("cannot move a directory into itself");
  }
  require_parent(to);

  // Collect the subtree [from, from/...] and re-key it.
  std::vector<std::pair<std::string, Node>> moved;
  const std::string prefix = from + "/";
  for (auto it = nodes_.find(from); it != nodes_.end();) {
    if (it->first != from &&
        it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    moved.emplace_back(it->first, it->second);
    it = nodes_.erase(it);
  }
  for (auto& [old_path, node] : moved) {
    nodes_[to + old_path.substr(from.size())] = std::move(node);
  }
}

void FileSystem::remove(const std::string& raw, bool recursive) {
  const std::string path = normalize(raw);
  if (path == "/") throw std::invalid_argument("cannot remove root");
  const Node* node = find(path);
  if (node == nullptr) throw std::invalid_argument("no such path: " + path);
  if (node->directory && !recursive && !list(path).empty()) {
    throw std::invalid_argument("directory not empty: " + path);
  }
  const std::string prefix = path + "/";
  for (auto it = nodes_.find(path); it != nodes_.end();) {
    if (it->first != path &&
        it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    if (!it->second.directory) {
      store_.remove(0, ObjectKey{bucket_, it->second.inode}, [] {});
    }
    it = nodes_.erase(it);
  }
}

void FileSystem::write_file(cluster::NodeId client, const std::string& raw,
                            util::Bytes size,
                            std::function<void()> on_done) {
  const std::string path = normalize(raw);
  require_parent(path);
  const Node* existing = find(path);
  if (existing != nullptr && existing->directory) {
    throw std::invalid_argument("is a directory: " + path);
  }
  std::string inode;
  if (existing != nullptr) {
    inode = existing->inode;  // overwrite in place
  } else {
    inode = fresh_inode();
  }
  nodes_[path] = Node{false, inode, size};
  store_.put(client, ObjectKey{bucket_, inode}, size, std::move(on_done));
}

void FileSystem::read_file(cluster::NodeId client, const std::string& raw,
                           std::function<void(const GetResult&)> on_done) {
  const std::string path = normalize(raw);
  const Node* node = find(path);
  if (node == nullptr || node->directory) {
    throw std::invalid_argument("no such file: " + path);
  }
  store_.get(client, ObjectKey{bucket_, node->inode}, std::move(on_done));
}

util::Bytes FileSystem::total_bytes() const {
  util::Bytes total = 0;
  for (const auto& [path, node] : nodes_) {
    if (!node.directory) total += node.size;
  }
  return total;
}

std::size_t FileSystem::file_count() const {
  std::size_t count = 0;
  for (const auto& [path, node] : nodes_) {
    if (!node.directory) ++count;
  }
  return count;
}

}  // namespace evolve::storage
