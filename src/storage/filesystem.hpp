// POSIX-like filesystem shim over the object store (the H3 FUSE layer
// analog): a hierarchical namespace whose files are store objects.
//
// Files map to immutable inode objects ("inode-<n>") so rename — of a
// file or a whole directory subtree — is a pure metadata operation, as
// in H3. Directory/namespace operations are synchronous bookkeeping;
// data operations (read/write) move real bytes through the store and
// take simulated time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "storage/object_store.hpp"

namespace evolve::storage {

class FileSystem {
 public:
  /// Files live in `bucket` of `store` (created if missing).
  FileSystem(ObjectStore& store, std::string bucket = "fs");

  /// Normalizes a path ("/a//b/" -> "/a/b"); throws on invalid paths
  /// (empty, not absolute, or containing "." / ".." segments).
  static std::string normalize(const std::string& path);

  // -- Namespace (synchronous metadata) --------------------------------
  void mkdir(const std::string& path);
  /// Creates all missing ancestors, like `mkdir -p`.
  void mkdirs(const std::string& path);
  bool exists(const std::string& path) const;
  bool is_dir(const std::string& path) const;
  bool is_file(const std::string& path) const;
  /// File size; nullopt for directories/missing paths.
  std::optional<util::Bytes> stat(const std::string& path) const;
  /// Immediate children names (not full paths), sorted.
  std::vector<std::string> list(const std::string& path) const;
  /// Renames a file or directory subtree (metadata-only).
  void rename(const std::string& from, const std::string& to);
  /// Removes a file, or a directory (recursive required if non-empty).
  /// Freed objects are deleted from the store asynchronously.
  void remove(const std::string& path, bool recursive = false);

  // -- Data (asynchronous, simulated time) ------------------------------
  /// Creates or overwrites a file of `size` bytes written from `client`.
  /// Parent directory must exist.
  void write_file(cluster::NodeId client, const std::string& path,
                  util::Bytes size, std::function<void()> on_done);
  /// Reads a file to `client`.
  void read_file(cluster::NodeId client, const std::string& path,
                 std::function<void(const GetResult&)> on_done);

  /// Total bytes across all files.
  util::Bytes total_bytes() const;
  std::size_t file_count() const;

 private:
  struct Node {
    bool directory = false;
    std::string inode;        // object name; empty for directories
    util::Bytes size = 0;
  };

  static std::string parent_of(const std::string& path);
  const Node* find(const std::string& path) const;
  void require_parent(const std::string& path) const;
  std::string fresh_inode();

  ObjectStore& store_;
  std::string bucket_;
  std::map<std::string, Node> nodes_;  // sorted: subtree = key range
  std::int64_t next_inode_ = 1;
};

}  // namespace evolve::storage
