#include "storage/io_model.hpp"

#include <cmath>
#include <stdexcept>

namespace evolve::storage {

util::TimeNs service_time(const cluster::StorageDeviceSpec& device,
                          IoKind kind, util::Bytes bytes) {
  if (bytes < 0) throw std::invalid_argument("service_time: negative bytes");
  const double bw = kind == IoKind::kRead ? device.read_bw_bytes_per_s
                                          : device.write_bw_bytes_per_s;
  if (bw <= 0) throw std::logic_error("device has no bandwidth");
  const double transfer_s = static_cast<double>(bytes) / bw;
  return device.access_latency +
         static_cast<util::TimeNs>(std::ceil(transfer_s * 1e9));
}

DeviceQueue::DeviceQueue(sim::Simulation& sim,
                         cluster::StorageDeviceSpec spec)
    : sim_(sim), spec_(std::move(spec)) {}

void DeviceQueue::submit(IoKind kind, util::Bytes bytes,
                         std::function<void()> on_done) {
  const util::TimeNs start = std::max(sim_.now(), busy_until_);
  const util::TimeNs done = start + service_time(spec_, kind, bytes);
  busy_until_ = done;
  sim_.at(done, [this, cb = std::move(on_done)]() mutable {
    ++completed_;
    cb();
  });
}

IoSubsystem::IoSubsystem(sim::Simulation& sim,
                         const cluster::Cluster& cluster) {
  for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
    for (const auto& dev : cluster.node(n).devices) {
      queues_.emplace(std::piecewise_construct,
                      std::forward_as_tuple(n, dev.name),
                      std::forward_as_tuple(sim, dev));
    }
  }
}

DeviceQueue& IoSubsystem::device(cluster::NodeId node,
                                 const std::string& name) {
  auto it = queues_.find({node, name});
  if (it == queues_.end()) {
    throw std::out_of_range("no device '" + name + "' on node " +
                            std::to_string(node));
  }
  return it->second;
}

bool IoSubsystem::has_device(cluster::NodeId node,
                             const std::string& name) const {
  return queues_.count({node, name}) != 0;
}

}  // namespace evolve::storage
