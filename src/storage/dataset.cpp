#include "storage/dataset.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

namespace evolve::storage {

util::Bytes DatasetSpec::partition_bytes(int index) const {
  if (index < 0 || index >= partitions) {
    throw std::out_of_range("partition index out of range");
  }
  // Even split; the first (total % partitions) partitions get one extra
  // byte so sizes sum exactly to total_bytes.
  const util::Bytes base = total_bytes / partitions;
  const util::Bytes extra = total_bytes % partitions;
  return base + (index < extra ? 1 : 0);
}

ObjectKey partition_key(const DatasetSpec& spec, int index) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "part-%05d", index);
  return ObjectKey{spec.name, buffer};
}

void DatasetCatalog::define(DatasetSpec spec) {
  if (spec.name.empty()) throw std::invalid_argument("dataset needs a name");
  if (spec.partitions <= 0) {
    throw std::invalid_argument("dataset needs >= 1 partition");
  }
  if (spec.total_bytes < 0) {
    throw std::invalid_argument("dataset size must be >= 0");
  }
  specs_[spec.name] = std::move(spec);
}

bool DatasetCatalog::defined(const std::string& name) const {
  return specs_.count(name) != 0;
}

const DatasetSpec& DatasetCatalog::spec(const std::string& name) const {
  auto it = specs_.find(name);
  if (it == specs_.end()) {
    throw std::out_of_range("unknown dataset: " + name);
  }
  return it->second;
}

std::vector<std::string> DatasetCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) out.push_back(name);
  return out;
}

void DatasetCatalog::preload(const std::string& name, bool warm_cache) {
  const DatasetSpec& ds = spec(name);
  store_.create_bucket(ds.name);
  for (int i = 0; i < ds.partitions; ++i) {
    store_.preload(partition_key(ds, i), ds.partition_bytes(i), warm_cache);
  }
}

void DatasetCatalog::ingest(cluster::NodeId client, const std::string& name,
                            std::function<void()> on_done) {
  const DatasetSpec& ds = spec(name);
  store_.create_bucket(ds.name);
  auto remaining = std::make_shared<int>(ds.partitions);
  for (int i = 0; i < ds.partitions; ++i) {
    store_.put(client, partition_key(ds, i), ds.partition_bytes(i),
               [remaining, on_done] {
                 if (--*remaining == 0) on_done();
               });
  }
}

std::vector<std::vector<cluster::NodeId>> DatasetCatalog::locations(
    const std::string& name) const {
  const DatasetSpec& ds = spec(name);
  std::vector<std::vector<cluster::NodeId>> out;
  out.reserve(static_cast<std::size_t>(ds.partitions));
  for (int i = 0; i < ds.partitions; ++i) {
    out.push_back(store_.locate(partition_key(ds, i)));
  }
  return out;
}

bool DatasetCatalog::materialized(const std::string& name) const {
  const DatasetSpec& ds = spec(name);
  for (int i = 0; i < ds.partitions; ++i) {
    if (!store_.exists(partition_key(ds, i))) return false;
  }
  return true;
}

}  // namespace evolve::storage
