#include "storage/object_store.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "util/rng.hpp"

namespace evolve::storage {

namespace {

/// Stateless 64-bit mix for rendezvous hashing.
std::uint64_t mix_hash(std::uint64_t seed) {
  return util::splitmix64(seed);
}

std::uint64_t string_hash(const std::string& text) {
  // FNV-1a, then a SplitMix finalizer for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return mix_hash(h);
}

}  // namespace

ObjectStore::ObjectStore(sim::Simulation& sim,
                         const cluster::Cluster& cluster, net::Fabric& fabric,
                         IoSubsystem& io, std::vector<cluster::NodeId> servers,
                         ObjectStoreConfig config)
    : sim_(sim),
      cluster_(cluster),
      fabric_(fabric),
      io_(io),
      servers_(std::move(servers)),
      config_(config) {
  if (servers_.empty()) {
    throw std::invalid_argument("object store needs at least one server");
  }
  if (config_.replicas < 1) {
    throw std::invalid_argument("replicas must be >= 1");
  }
  if (config_.redundancy == Redundancy::kErasure) {
    if (config_.ec_data < 1 || config_.ec_parity < 0) {
      throw std::invalid_argument("bad erasure-coding parameters");
    }
    if (config_.ec_data + config_.ec_parity >
        static_cast<int>(servers_.size())) {
      throw std::invalid_argument(
          "erasure coding needs at least k+m storage servers");
    }
  }
  if (config_.cache_capacity_fraction <= 0 ||
      config_.cache_capacity_fraction > 1.0) {
    throw std::invalid_argument("cache_capacity_fraction must be in (0, 1]");
  }
  for (cluster::NodeId node : servers_) {
    const auto& spec = cluster_.node(node);
    if (spec.devices.empty()) {
      throw std::invalid_argument("storage server '" + spec.name +
                                  "' has no devices");
    }
    ServerState state;
    state.node = node;
    state.durable_device = spec.devices.back().name;
    std::vector<TierConfig> tiers;
    for (std::size_t i = 0; i + 1 < spec.devices.size(); ++i) {
      tiers.push_back(TierConfig{
          spec.devices[i].name,
          static_cast<util::Bytes>(
              static_cast<double>(spec.devices[i].capacity) *
              config_.cache_capacity_fraction)});
      state.cache_tiers.push_back(spec.devices[i].name);
    }
    if (tiers.empty()) {
      // Single-device server: the durable device is also the only "cache".
      tiers.push_back(TierConfig{spec.devices.back().name, 0});
      state.cache_tiers.push_back(spec.devices.back().name);
    }
    state.cache = std::make_unique<TieredCache>(std::move(tiers));
    server_states_.emplace(node, std::move(state));
  }
}

ObjectStore::ServerState& ObjectStore::server_state(cluster::NodeId node) {
  auto it = server_states_.find(node);
  if (it == server_states_.end()) {
    throw std::out_of_range("node is not a storage server");
  }
  return it->second;
}

const ObjectStore::ServerState& ObjectStore::server_state(
    cluster::NodeId node) const {
  auto it = server_states_.find(node);
  if (it == server_states_.end()) {
    throw std::out_of_range("node is not a storage server");
  }
  return it->second;
}

void ObjectStore::create_bucket(const std::string& bucket) {
  if (bucket.empty()) throw std::invalid_argument("empty bucket name");
  buckets_[bucket] = true;
}

bool ObjectStore::bucket_exists(const std::string& bucket) const {
  return buckets_.count(bucket) != 0;
}

std::vector<cluster::NodeId> ObjectStore::ranked_servers(
    const ObjectKey& key) const {
  // Rendezvous hashing: rank live servers by hash(key, server).
  std::vector<std::pair<std::uint64_t, cluster::NodeId>> ranked;
  ranked.reserve(servers_.size());
  const std::uint64_t kh = string_hash(key.full());
  for (cluster::NodeId node : servers_) {
    if (dead_servers_.count(node) != 0) continue;
    ranked.emplace_back(mix_hash(kh ^ (0x9e3779b97f4a7c15ULL *
                                       static_cast<std::uint64_t>(node + 1))),
                        node);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<cluster::NodeId> out;
  out.reserve(ranked.size());
  for (const auto& [hash, node] : ranked) out.push_back(node);
  return out;
}

int ObjectStore::placed_copies() const {
  const int wanted = config_.redundancy == Redundancy::kReplication
                         ? config_.replicas
                         : config_.ec_data + config_.ec_parity;
  return std::min<int>(wanted, static_cast<int>(servers_.size()));
}

ObjectStore::Health ObjectStore::health(const ObjectMeta& meta) const {
  const int live = static_cast<int>(meta.replicas.size());
  const int min_live =
      config_.redundancy == Redundancy::kReplication ? 1 : config_.ec_data;
  if (live < min_live) return Health::kLost;
  if (live < placed_copies()) return Health::kDegraded;
  return Health::kFull;
}

std::vector<cluster::NodeId> ObjectStore::locate(const ObjectKey& key) const {
  auto ranked = ranked_servers(key);
  const int count =
      std::min<int>(placed_copies(), static_cast<int>(ranked.size()));
  ranked.resize(static_cast<std::size_t>(count));
  return ranked;
}

cluster::NodeId ObjectStore::choose_replica(
    const std::vector<cluster::NodeId>& replicas,
    cluster::NodeId client) const {
  for (cluster::NodeId r : replicas) {
    if (r == client) return r;
  }
  const auto& topo = fabric_.topology();
  for (cluster::NodeId r : replicas) {
    if (topo.same_rack(r, client)) return r;
  }
  return replicas.front();
}

void ObjectStore::write_durable(cluster::NodeId server, const ObjectKey& key,
                                util::Bytes size,
                                std::function<void()> on_done) {
  // A write that raced a crash lands nowhere: the crash handler already
  // dropped this server from the object's replica set (and wiped its
  // accounting), so skipping keeps durable_used consistent even if the
  // server has since recovered empty.
  if (dead_servers_.count(server) != 0) {
    sim_.defer(std::move(on_done));
    return;
  }
  if (auto it = objects_.find(key); it != objects_.end()) {
    const auto& replicas = it->second.replicas;
    if (std::find(replicas.begin(), replicas.end(), server) ==
        replicas.end()) {
      sim_.defer(std::move(on_done));
      return;
    }
  }
  ServerState& state = server_state(server);
  io_.device(server, state.durable_device)
      .submit(IoKind::kWrite, size, std::move(on_done));
  state.durable_used += size;
  if (config_.cache_on_put) {
    state.cache->put(key.full(), size);
  }
}

util::Bytes ObjectStore::per_server_bytes(util::Bytes size) const {
  if (config_.redundancy == Redundancy::kReplication) return size;
  return (size + config_.ec_data - 1) / config_.ec_data;  // fragment
}

void ObjectStore::put(cluster::NodeId client, const ObjectKey& key,
                      util::Bytes size, PutCallback on_done) {
  if (!bucket_exists(key.bucket)) {
    throw std::invalid_argument("bucket does not exist: " + key.bucket);
  }
  if (size < 0) throw std::invalid_argument("put: negative size");
  const auto replicas = locate(key);
  const std::size_t min_live =
      config_.redundancy == Redundancy::kReplication
          ? 1
          : static_cast<std::size_t>(config_.ec_data);
  if (replicas.size() < min_live) {
    throw std::runtime_error("put: not enough live storage servers");
  }
  const util::TimeNs start = sim_.now();
  metrics_.count("put_requests");
  metrics_.count("put_bytes", size);
  const trace::SpanId span =
      trace::begin_span(tracer_, trace::Layer::kStorage, "store.put");
  if (span != trace::kNoSpan) {
    tracer_->annotate(span, "key", key.full());
    tracer_->annotate(span, "bytes", std::to_string(size));
  }

  // If overwriting, reclaim the old durable bytes first.
  int version = 0;
  if (auto it = objects_.find(key); it != objects_.end()) {
    for (cluster::NodeId r : it->second.replicas) {
      ServerState& state = server_state(r);
      state.durable_used -= it->second.per_server_bytes;
      state.cache->erase(key.full());
    }
    if (health(it->second) == Health::kDegraded) shift_underrep(-1);
    version = it->second.version + 1;
    purge_corrupted(key);  // the overwrite replaces any rotten payload
  }
  const util::Bytes per_server = per_server_bytes(size);
  objects_[key] = ObjectMeta{size, per_server, replicas, version};
  // Born degraded when live servers cannot host every copy.
  if (health(objects_[key]) == Health::kDegraded) {
    shift_underrep(+1);
    enqueue_repair(key);
  }

  auto remaining = std::make_shared<int>(static_cast<int>(replicas.size()));
  auto finish = [this, remaining, start, span,
                 cb = std::move(on_done)]() mutable {
    if (--*remaining > 0) return;
    metrics_.observe("put_latency_us",
                     (sim_.now() - start) / util::kMicrosecond);
    trace::end_span(tracer_, span);
    cb();
  };
  const cluster::NodeId primary = replicas.front();

  if (config_.redundancy == Redundancy::kReplication) {
    // Metadata round, then client -> primary transfer, then fan-out
    // replication in parallel. Done when every replica is durable.
    sim_.after(config_.metadata_latency, [this, client, primary, key, size,
                                          replicas, span, finish]() mutable {
      trace::ScopedContext tctx(tracer_, span);
      fabric_.transfer(client, primary, size, [this, primary, key, size,
                                               replicas, span,
                                               finish]() mutable {
        write_durable(primary, key, size, finish);
        trace::ScopedContext tctx(tracer_, span);
        for (std::size_t i = 1; i < replicas.size(); ++i) {
          const cluster::NodeId replica = replicas[i];
          fabric_.transfer(primary, replica, size,
                           [this, replica, key, size, finish]() mutable {
                             write_durable(replica, key, size, finish);
                           });
        }
      });
    });
    return;
  }

  // Erasure coding: client -> primary (full body); primary encodes, then
  // distributes k+m-1 fragments; every fragment must be durable.
  const auto encode_ns = static_cast<util::TimeNs>(
      std::ceil(static_cast<double>(size) * config_.ec_ns_per_byte));
  sim_.after(config_.metadata_latency, [this, client, primary, key, size,
                                        per_server, encode_ns, replicas,
                                        span, finish]() mutable {
    trace::ScopedContext tctx(tracer_, span);
    fabric_.transfer(client, primary, size, [this, primary, key, per_server,
                                             encode_ns, replicas, span,
                                             finish]() mutable {
      sim_.after(encode_ns, [this, primary, key, per_server, replicas, span,
                             finish]() mutable {
        write_durable(primary, key, per_server, finish);
        trace::ScopedContext tctx(tracer_, span);
        for (std::size_t i = 1; i < replicas.size(); ++i) {
          const cluster::NodeId peer = replicas[i];
          fabric_.transfer(primary, peer, per_server,
                           [this, peer, key, per_server, finish]() mutable {
                             write_durable(peer, key, per_server, finish);
                           });
        }
      });
    });
  });
}

void ObjectStore::get(cluster::NodeId client, const ObjectKey& key,
                      GetCallback on_done) {
  const util::TimeNs start = sim_.now();
  metrics_.count("get_requests");
  const trace::SpanId span =
      trace::begin_span(tracer_, trace::Layer::kStorage, "store.get");
  if (span != trace::kNoSpan) tracer_->annotate(span, "key", key.full());
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    metrics_.count("get_misses");
    if (span != trace::kNoSpan) tracer_->annotate(span, "result", "miss");
    sim_.after(config_.metadata_latency,
               [this, span, cb = std::move(on_done)] {
                 trace::end_span(tracer_, span);
                 cb(GetResult{});
               });
    return;
  }
  if (health(it->second) == Health::kLost) {
    // Every replica (or too many fragments) died with its node: the
    // object is unreadable until someone re-writes it.
    metrics_.count("get_lost");
    if (span != trace::kNoSpan) tracer_->annotate(span, "result", "lost");
    sim_.after(config_.metadata_latency,
               [this, span, cb = std::move(on_done)] {
                 trace::end_span(tracer_, span);
                 cb(GetResult{});
               });
    return;
  }
  if (health(it->second) == Health::kDegraded) {
    metrics_.count("degraded_reads");
    if (span != trace::kNoSpan) tracer_->annotate(span, "degraded", "1");
  }
  const util::Bytes size = it->second.size;
  if (config_.redundancy == Redundancy::kErasure) {
    get_erasure(client, key, it->second, start, span, std::move(on_done));
    return;
  }
  // Replication path: the primary read (branch 0) optionally races a
  // hedge read (branch 1) fired after a latency-quantile delay.
  auto race = std::make_shared<ReadRace>();
  race->key = key;
  race->client = client;
  race->size = size;
  race->start = start;
  race->span = span;
  race->cb = std::move(on_done);
  race->inflight = 1;
  const cluster::NodeId server = choose_replica(it->second.replicas, client);
  if (span != trace::kNoSpan) {
    tracer_->annotate(span, "bytes", std::to_string(size));
  }
  sim_.after(config_.metadata_latency,
             [this, race, server] { run_read_branch(race, 0, server); });

  if (config_.hedged_reads && it->second.replicas.size() >= 2) {
    // Hedge after our own observed GET p-quantile (floor until the
    // histogram has warmed up).
    util::TimeNs delay = config_.hedge_min_delay;
    if (metrics_.has_histogram("get_latency_us")) {
      const metrics::Histogram& lat = metrics_.histogram("get_latency_us");
      if (lat.count() >= config_.hedge_min_samples) {
        delay = std::max<util::TimeNs>(
            lat.percentile(config_.hedge_quantile) * util::kMicrosecond,
            config_.hedge_min_delay);
      }
    }
    sim_.after(delay, [this, race] {
      if (race->decided) return;
      auto obj = objects_.find(race->key);
      if (obj == objects_.end()) return;
      // Prefer an untried clean replica; fall back to any untried one
      // (the checksum path fails over if it turns out rotten).
      cluster::NodeId target = cluster::kInvalidNode;
      for (cluster::NodeId r : obj->second.replicas) {
        if (race->tried.count(r) != 0) continue;
        if (replica_corrupted(race->key, r)) continue;
        target = r;
        break;
      }
      if (target == cluster::kInvalidNode) {
        for (cluster::NodeId r : obj->second.replicas) {
          if (race->tried.count(r) == 0) {
            target = r;
            break;
          }
        }
      }
      if (target == cluster::kInvalidNode) return;
      ++hedges_launched_;
      metrics_.count("hedges_launched");
      race->hedged = true;
      race->hedge_span = trace::begin_span(
          tracer_, trace::Layer::kStorage, "store.hedge", race->span);
      if (race->hedge_span != trace::kNoSpan) {
        tracer_->annotate(race->hedge_span, "server", std::to_string(target));
      }
      ++race->inflight;
      run_read_branch(race, 1, target);
    });
  }
}

void ObjectStore::run_read_branch(const std::shared_ptr<ReadRace>& race,
                                  int branch, cluster::NodeId server) {
  race->tried.insert(server);
  ServerState& state = server_state(server);
  const util::Bytes size = race->size;
  const std::string full = race->key.full();

  // Which tier serves the read?
  std::string tier_name;
  if (config_.cache_on_get) {
    if (auto tier = state.cache->get(full); tier.has_value()) {
      tier_name = state.cache_tiers[static_cast<std::size_t>(*tier)];
    } else {
      tier_name = state.durable_device;
      state.cache->put(full, size);  // admit on miss
    }
  } else {
    if (auto tier = state.cache->peek(full); tier.has_value()) {
      tier_name = state.cache_tiers[static_cast<std::size_t>(*tier)];
    } else {
      tier_name = state.durable_device;
    }
  }
  metrics_.count("get_tier_" + tier_name);
  metrics_.count("get_bytes", size);
  if (branch == 0 && race->span != trace::kNoSpan) {
    tracer_->annotate(race->span, "tier", tier_name);
  }

  GetResult& result = race->result[branch];
  result.found = true;
  result.size = size;
  result.served_by = server;
  result.tier = tier_name;

  io_.device(server, tier_name)
      .submit(IoKind::kRead, size, [this, race, branch, server] {
        if (race->decided) {
          --race->inflight;
          return;
        }
        // Checksum verification as the payload leaves the media.
        if (replica_corrupted(race->key, server)) {
          if (config_.checksum_reads) {
            ++checksum_failures_;
            metrics_.count("checksum_failures");
            drop_corrupted_replica(race->key, server);
            // Transparent failover to a clean replica we haven't tried.
            cluster::NodeId next = cluster::kInvalidNode;
            if (auto obj = objects_.find(race->key); obj != objects_.end()) {
              for (cluster::NodeId r : obj->second.replicas) {
                if (race->tried.count(r) == 0 &&
                    !replica_corrupted(race->key, r)) {
                  next = r;
                  break;
                }
              }
            }
            if (next != cluster::kInvalidNode) {
              run_read_branch(race, branch, next);
              return;
            }
            abandon_read_branch(race);
            return;
          }
          // No verification: the rotten payload is served as-is.
          race->result[branch].corrupted = true;
        }
        trace::ScopedContext tctx(
            tracer_, branch == 1 ? race->hedge_span : race->span);
        race->flow[branch] =
            fabric_.transfer(server, race->client, race->size,
                             [this, race, branch] {
                               finish_read_branch(race, branch);
                             });
        race->flow_active[branch] = true;
      });
}

void ObjectStore::finish_read_branch(const std::shared_ptr<ReadRace>& race,
                                     int branch) {
  race->flow_active[branch] = false;
  --race->inflight;
  if (race->decided) return;
  race->decided = true;

  GetResult result = race->result[branch];
  result.hedged = race->hedged;
  result.hedge_won = branch == 1;
  if (branch == 1) {
    ++hedge_wins_;
    metrics_.count("hedge_wins");
    if (race->span != trace::kNoSpan) {
      tracer_->annotate(race->span, "hedge_won", "1");
      tracer_->annotate(race->span, "tier", result.tier);
    }
  }
  if (result.corrupted) {
    ++corrupted_reads_surfaced_;
    metrics_.count("corrupted_reads_surfaced");
    if (race->span != trace::kNoSpan) {
      tracer_->annotate(race->span, "corrupted", "1");
    }
  }
  // The loser is cancelled: an active flow is torn off the fabric (its
  // bytes were wasted); a branch still in device I/O just fizzles.
  if (race->inflight > 0) {
    const int other = 1 - branch;
    ++hedges_cancelled_;
    metrics_.count("hedges_cancelled");
    if (race->flow_active[other]) {
      fabric_.cancel(race->flow[other]);
      race->flow_active[other] = false;
      --race->inflight;  // its completion callback will never run
      hedge_wasted_bytes_ += race->size;
      metrics_.count("hedge_wasted_bytes", race->size);
    }
  }
  trace::end_span(tracer_, race->hedge_span);
  metrics_.observe("get_latency_us",
                   (sim_.now() - race->start) / util::kMicrosecond);
  trace::end_span(tracer_, race->span);
  race->cb(result);
}

void ObjectStore::abandon_read_branch(const std::shared_ptr<ReadRace>& race) {
  --race->inflight;
  if (race->decided || race->inflight > 0) return;
  // Every branch ran out of clean replicas: with verification on the
  // read reports not-found rather than surfacing rotten bytes.
  race->decided = true;
  metrics_.count("get_unreadable");
  if (race->span != trace::kNoSpan) {
    tracer_->annotate(race->span, "result", "unreadable");
  }
  trace::end_span(tracer_, race->hedge_span);
  trace::end_span(tracer_, race->span);
  race->cb(GetResult{});
}

void ObjectStore::get_erasure(cluster::NodeId client, const ObjectKey& key,
                              const ObjectMeta& meta, util::TimeNs start,
                              trace::SpanId span, GetCallback on_done) {
  // Rank fragment holders by proximity to the client; read the k nearest.
  std::vector<cluster::NodeId> ranked = meta.replicas;
  const auto& topo = fabric_.topology();
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](cluster::NodeId a, cluster::NodeId b) {
                     auto rank = [&](cluster::NodeId n) {
                       if (n == client) return 0;
                       return topo.same_rack(n, client) ? 1 : 2;
                     };
                     return rank(a) < rank(b);
                   });
  const int k = config_.ec_data;
  ranked.resize(static_cast<std::size_t>(k));

  auto result = std::make_shared<GetResult>();
  result->found = true;
  result->size = meta.size;
  result->served_by = ranked.front();
  const util::Bytes fragment = meta.per_server_bytes;
  const auto decode_ns = static_cast<util::TimeNs>(std::ceil(
      static_cast<double>(meta.size) * config_.ec_ns_per_byte));

  // Tier is reported for the nearest fragment; all fragment reads go
  // through their server's cache independently.
  auto remaining = std::make_shared<int>(k);
  auto finish = [this, remaining, start, decode_ns, result, span,
                 cb = std::move(on_done)]() mutable {
    if (--*remaining > 0) return;
    sim_.after(decode_ns,
               [this, start, result, span, cb = std::move(cb)]() mutable {
                 metrics_.observe("get_latency_us",
                                  (sim_.now() - start) / util::kMicrosecond);
                 trace::end_span(tracer_, span);
                 cb(*result);
               });
  };
  for (int i = 0; i < k; ++i) {
    const cluster::NodeId server = ranked[static_cast<std::size_t>(i)];
    ServerState& state = server_state(server);
    std::string tier_name;
    if (config_.cache_on_get) {
      if (auto tier = state.cache->get(key.full()); tier.has_value()) {
        tier_name = state.cache_tiers[static_cast<std::size_t>(*tier)];
      } else {
        tier_name = state.durable_device;
        state.cache->put(key.full(), fragment);
      }
    } else {
      tier_name = state.durable_device;
    }
    metrics_.count("get_tier_" + tier_name);
    metrics_.count("get_bytes", fragment);
    if (i == 0) result->tier = tier_name;
    sim_.after(config_.metadata_latency, [this, server, client, fragment,
                                          tier_name, span, finish]() mutable {
      io_.device(server, tier_name)
          .submit(IoKind::kRead, fragment,
                  [this, server, client, fragment, span, finish]() mutable {
                    trace::ScopedContext tctx(tracer_, span);
                    fabric_.transfer(server, client, fragment, finish);
                  });
    });
  }
}

void ObjectStore::preload(const ObjectKey& key, util::Bytes size,
                          bool warm_cache) {
  if (!bucket_exists(key.bucket)) create_bucket(key.bucket);
  if (size < 0) throw std::invalid_argument("preload: negative size");
  if (exists(key)) {
    throw std::invalid_argument("preload: object already exists: " +
                                key.full());
  }
  const auto replicas = locate(key);
  const util::Bytes per_server = per_server_bytes(size);
  objects_[key] = ObjectMeta{size, per_server, replicas};
  for (cluster::NodeId r : replicas) {
    ServerState& state = server_state(r);
    state.durable_used += per_server;
    if (warm_cache) state.cache->put(key.full(), per_server);
  }
  if (health(objects_[key]) == Health::kDegraded) {
    shift_underrep(+1);
    enqueue_repair(key);
  }
}

void ObjectStore::remove(cluster::NodeId /*client*/, const ObjectKey& key,
                         PutCallback on_done) {
  auto it = objects_.find(key);
  if (it != objects_.end()) {
    for (cluster::NodeId r : it->second.replicas) {
      ServerState& state = server_state(r);
      state.durable_used -= it->second.per_server_bytes;
      state.cache->erase(key.full());
    }
    if (health(it->second) == Health::kDegraded) shift_underrep(-1);
    purge_corrupted(key);
    objects_.erase(it);
    metrics_.count("delete_requests");
  }
  sim_.after(config_.metadata_latency, std::move(on_done));
}

bool ObjectStore::exists(const ObjectKey& key) const {
  return objects_.count(key) != 0;
}

std::optional<util::Bytes> ObjectStore::object_size(
    const ObjectKey& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return std::nullopt;
  return it->second.size;
}

std::vector<std::string> ObjectStore::list(const std::string& bucket,
                                           const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [key, meta] : objects_) {
    if (key.bucket != bucket) continue;
    if (key.name.compare(0, prefix.size(), prefix) != 0) continue;
    out.push_back(key.name);
  }
  return out;
}

std::int64_t ObjectStore::initiate_multipart(const ObjectKey& key) {
  if (!bucket_exists(key.bucket)) {
    throw std::invalid_argument("bucket does not exist: " + key.bucket);
  }
  const std::int64_t id = next_upload_id_++;
  uploads_[id] = MultipartUpload{key, 0, {}};
  return id;
}

void ObjectStore::upload_part(cluster::NodeId client, std::int64_t upload_id,
                              int part_number, util::Bytes size,
                              PutCallback on_done) {
  auto it = uploads_.find(upload_id);
  if (it == uploads_.end()) {
    throw std::invalid_argument("unknown multipart upload");
  }
  if (it->second.parts.count(part_number) != 0) {
    throw std::invalid_argument("duplicate part number");
  }
  it->second.parts[part_number] = size;
  it->second.total += size;
  // Parts stream to the primary replica of the final key.
  const auto replicas = locate(it->second.key);
  const cluster::NodeId primary = replicas.front();
  sim_.after(config_.metadata_latency,
             [this, client, primary, size, cb = std::move(on_done)]() mutable {
               fabric_.transfer(client, primary, size, std::move(cb));
             });
}

void ObjectStore::complete_multipart(std::int64_t upload_id,
                                     PutCallback on_done) {
  auto it = uploads_.find(upload_id);
  if (it == uploads_.end()) {
    throw std::invalid_argument("unknown multipart upload");
  }
  const ObjectKey key = it->second.key;
  const util::Bytes total = it->second.total;
  const auto replicas = locate(key);
  uploads_.erase(it);
  const util::Bytes per_server = per_server_bytes(total);
  int version = 0;
  if (auto old = objects_.find(key); old != objects_.end()) {
    if (health(old->second) == Health::kDegraded) shift_underrep(-1);
    version = old->second.version + 1;
    purge_corrupted(key);
  }
  objects_[key] = ObjectMeta{total, per_server, replicas, version};
  if (health(objects_[key]) == Health::kDegraded) {
    shift_underrep(+1);
    enqueue_repair(key);
  }

  // Assembly: parts already live on the primary, which persists its
  // share and fans out full copies (replication) or fragments (EC).
  const auto encode_ns =
      config_.redundancy == Redundancy::kErasure
          ? static_cast<util::TimeNs>(std::ceil(static_cast<double>(total) *
                                                config_.ec_ns_per_byte))
          : 0;
  auto remaining = std::make_shared<int>(static_cast<int>(replicas.size()));
  auto finish = [remaining, cb = std::move(on_done)]() mutable {
    if (--*remaining > 0) return;
    cb();
  };
  const cluster::NodeId primary = replicas.front();
  sim_.after(config_.metadata_latency + encode_ns,
             [this, primary, key, per_server, replicas, finish]() mutable {
               write_durable(primary, key, per_server, finish);
               for (std::size_t i = 1; i < replicas.size(); ++i) {
                 const cluster::NodeId peer = replicas[i];
                 fabric_.transfer(
                     primary, peer, per_server,
                     [this, peer, key, per_server, finish]() mutable {
                       write_durable(peer, key, per_server, finish);
                     });
               }
             });
}

void ObjectStore::shift_underrep(int delta) {
  underrep_ns_ += static_cast<double>(underrep_count_) *
                  static_cast<double>(sim_.now() - underrep_last_);
  underrep_last_ = sim_.now();
  underrep_count_ += delta;
  metrics_.set_gauge("under_replicated_objects", underrep_count_);
}

double ObjectStore::under_replicated_object_seconds() const {
  const double pending = static_cast<double>(underrep_count_) *
                         static_cast<double>(sim_.now() - underrep_last_);
  return (underrep_ns_ + pending) / 1e9;
}

util::Bytes ObjectStore::expected_durable_bytes(cluster::NodeId server) const {
  util::Bytes total = 0;
  for (const auto& [key, meta] : objects_) {
    for (cluster::NodeId r : meta.replicas) {
      if (r == server) total += meta.per_server_bytes;
    }
  }
  return total;
}

void ObjectStore::handle_node_failure(cluster::NodeId node) {
  auto state_it = server_states_.find(node);
  if (state_it == server_states_.end()) return;  // not a storage server
  if (!dead_servers_.insert(node).second) return;
  metrics_.count("server_failures");
  // Media loss: everything the server held is gone, cache included —
  // and so is any bit-rot it carried.
  state_it->second.durable_used = 0;
  state_it->second.cache->clear();
  for (auto corrupt = corrupted_replicas_.begin();
       corrupt != corrupted_replicas_.end();) {
    if (corrupt->second == node) {
      scrub_inflight_.erase(*corrupt);
      corrupt = corrupted_replicas_.erase(corrupt);
    } else {
      ++corrupt;
    }
  }
  for (auto& [key, meta] : objects_) {
    auto rep = std::find(meta.replicas.begin(), meta.replicas.end(), node);
    if (rep == meta.replicas.end()) continue;
    const Health before = health(meta);
    meta.replicas.erase(rep);
    ++meta.version;
    const Health after = health(meta);
    if (before == Health::kDegraded && after != Health::kDegraded) {
      shift_underrep(-1);
    } else if (before != Health::kDegraded && after == Health::kDegraded) {
      shift_underrep(+1);
    }
    if (after == Health::kLost && before != Health::kLost) {
      ++lost_objects_;
      metrics_.count("objects_lost");
      metrics_.count("bytes_lost", meta.size);
    }
    if (after == Health::kDegraded) enqueue_repair(key);
  }
}

void ObjectStore::handle_node_recovery(cluster::NodeId node) {
  if (server_states_.count(node) == 0) return;
  if (dead_servers_.erase(node) == 0) return;
  metrics_.count("server_recoveries");
  // The node rejoins empty; repairs that had no live target re-arm.
  for (const ObjectKey& key : repair_stalled_) enqueue_repair(key);
  repair_stalled_.clear();
  pump_repairs();
}

bool ObjectStore::corrupt_replica(const ObjectKey& key,
                                  cluster::NodeId server) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return false;
  const auto& replicas = it->second.replicas;
  if (std::find(replicas.begin(), replicas.end(), server) == replicas.end()) {
    return false;
  }
  if (!corrupted_replicas_.insert({key, server}).second) return false;
  metrics_.count("replicas_corrupted");
  arm_scrub();
  return true;
}

int ObjectStore::corrupt_random_replicas(std::uint64_t seed, int count,
                                         bool spare_last_clean) {
  // Candidates in deterministic metadata order, sampled with a seeded RNG.
  std::vector<std::pair<ObjectKey, cluster::NodeId>> candidates;
  for (const auto& [key, meta] : objects_) {
    for (cluster::NodeId r : meta.replicas) {
      if (corrupted_replicas_.count({key, r}) != 0) continue;
      candidates.emplace_back(key, r);
    }
  }
  util::Rng rng(seed);
  int corrupted = 0;
  while (corrupted < count && !candidates.empty()) {
    const auto pick = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(candidates.size()) - 1));
    const auto [key, server] = candidates[pick];
    candidates.erase(candidates.begin() +
                     static_cast<std::ptrdiff_t>(pick));
    if (spare_last_clean) {
      int clean = 0;
      for (cluster::NodeId r : objects_.at(key).replicas) {
        if (corrupted_replicas_.count({key, r}) == 0) ++clean;
      }
      if (clean <= 1) continue;  // keep the object recoverable
    }
    corrupted_replicas_.insert({key, server});
    metrics_.count("replicas_corrupted");
    ++corrupted;
  }
  if (corrupted > 0) arm_scrub();
  return corrupted;
}

void ObjectStore::drop_corrupted_replica(const ObjectKey& key,
                                         cluster::NodeId server) {
  corrupted_replicas_.erase({key, server});
  auto it = objects_.find(key);
  if (it == objects_.end()) return;
  ObjectMeta& meta = it->second;
  auto rep = std::find(meta.replicas.begin(), meta.replicas.end(), server);
  if (rep == meta.replicas.end()) return;
  const Health before = health(meta);
  meta.replicas.erase(rep);
  ++meta.version;
  if (dead_servers_.count(server) == 0) {
    ServerState& state = server_state(server);
    state.durable_used -= meta.per_server_bytes;
    state.cache->erase(key.full());
  }
  metrics_.count("corrupted_replicas_dropped");
  const Health after = health(meta);
  if (before == Health::kDegraded && after != Health::kDegraded) {
    shift_underrep(-1);
  } else if (before != Health::kDegraded && after == Health::kDegraded) {
    shift_underrep(+1);
  }
  if (after == Health::kLost && before != Health::kLost) {
    ++lost_objects_;
    metrics_.count("objects_lost");
    metrics_.count("bytes_lost", meta.size);
  }
  if (after == Health::kDegraded) enqueue_repair(key);
}

void ObjectStore::purge_corrupted(const ObjectKey& key) {
  auto it = corrupted_replicas_.lower_bound(
      {key, std::numeric_limits<cluster::NodeId>::min()});
  while (it != corrupted_replicas_.end() && !(key < it->first) &&
         !(it->first < key)) {
    scrub_inflight_.erase(*it);
    it = corrupted_replicas_.erase(it);
  }
}

void ObjectStore::arm_scrub() {
  if (!config_.scrub || scrub_armed_) return;
  // Only corruption not already under verification needs a pass; the
  // scrubber stays idle otherwise, so the simulation drains.
  if (corrupted_replicas_.size() <= scrub_inflight_.size()) return;
  scrub_armed_ = true;
  sim_.after(config_.scrub_interval, [this] { scrub_pass(); });
}

void ObjectStore::scrub_pass() {
  scrub_armed_ = false;
  // Oracle-guided scrub: the simulator models the verification I/O and
  // the repair traffic for rotten replicas without simulating full-disk
  // scans of clean data.
  int budget = config_.scrub_replicas_per_pass;
  auto it = corrupted_replicas_.begin();
  while (it != corrupted_replicas_.end() && budget > 0) {
    if (scrub_inflight_.count(*it) != 0) {
      ++it;
      continue;
    }
    const auto [key, server] = *it;
    const auto obj = objects_.find(key);
    const bool live =
        obj != objects_.end() &&
        std::find(obj->second.replicas.begin(), obj->second.replicas.end(),
                  server) != obj->second.replicas.end() &&
        dead_servers_.count(server) == 0;
    if (!live) {
      // Stale entry (object deleted, replica already dropped, or the
      // server crashed): nothing on media left to verify.
      it = corrupted_replicas_.erase(it);
      continue;
    }
    --budget;
    scrub_inflight_.insert(*it);
    ++replicas_scrubbed_;
    metrics_.count("replicas_scrubbed");
    const trace::SpanId span = trace::begin_span(
        tracer_, trace::Layer::kStorage, "store.scrub", trace::kNoSpan);
    if (span != trace::kNoSpan) {
      tracer_->annotate(span, "key", key.full());
      tracer_->annotate(span, "server", std::to_string(server));
    }
    // Verification read off the durable device, then drop + re-replicate.
    io_.device(server, server_state(server).durable_device)
        .submit(IoKind::kRead, obj->second.per_server_bytes,
                [this, key, server, span] {
                  scrub_inflight_.erase({key, server});
                  drop_corrupted_replica(key, server);
                  trace::end_span(tracer_, span);
                  arm_scrub();
                });
    ++it;
  }
  arm_scrub();  // re-arm if more corruption than this pass could take
}

void ObjectStore::enqueue_repair(const ObjectKey& key) {
  if (!config_.repair) return;
  if (!repair_queued_.insert(key).second) return;
  repair_queue_.push_back(key);
  // Detection + scheduling grace before the repair traffic starts.
  sim_.after(config_.repair_delay, [this] { pump_repairs(); });
}

void ObjectStore::pump_repairs() {
  while (repairs_in_flight_ < config_.repair_concurrency &&
         !repair_queue_.empty()) {
    const ObjectKey key = repair_queue_.front();
    repair_queue_.pop_front();
    repair_queued_.erase(key);
    start_repair(key);
  }
}

void ObjectStore::start_repair(const ObjectKey& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return;  // deleted while queued
  ObjectMeta& meta = it->second;
  if (health(meta) != Health::kDegraded) return;  // repaired or lost
  // Target: the best-ranked live server not already holding a copy.
  cluster::NodeId target = cluster::kInvalidNode;
  for (cluster::NodeId node : ranked_servers(key)) {
    if (std::find(meta.replicas.begin(), meta.replicas.end(), node) ==
        meta.replicas.end()) {
      target = node;
      break;
    }
  }
  if (target == cluster::kInvalidNode) {
    repair_stalled_.insert(key);  // every live server already holds one
    return;
  }
  const int version = meta.version;
  const util::Bytes fragment = meta.per_server_bytes;
  ++repairs_in_flight_;
  metrics_.count("repairs_started");
  // Re-replication runs in the background, so the span is a root.
  const trace::SpanId span =
      trace::begin_span(tracer_, trace::Layer::kStorage, "store.repair",
                        trace::kNoSpan);
  if (span != trace::kNoSpan) {
    tracer_->annotate(span, "key", key.full());
    tracer_->annotate(span, "target", std::to_string(target));
  }

  if (config_.redundancy == Redundancy::kReplication) {
    // Stream one surviving copy to the target.
    const cluster::NodeId source = choose_replica(meta.replicas, target);
    io_.device(source, server_state(source).durable_device)
        .submit(IoKind::kRead, fragment,
                [this, key, source, target, fragment, version, span] {
                  trace::ScopedContext tctx(tracer_, span);
                  fabric_.transfer(source, target, fragment,
                                   [this, key, target, version, span] {
                                     trace::end_span(tracer_, span);
                                     finish_repair(key, target, version);
                                   });
                });
    return;
  }
  // Erasure coding: rebuild the fragment from k survivors, decode at
  // the target, then persist.
  const int k = config_.ec_data;
  std::vector<cluster::NodeId> sources = meta.replicas;
  const auto& topo = fabric_.topology();
  std::stable_sort(sources.begin(), sources.end(),
                   [&](cluster::NodeId a, cluster::NodeId b) {
                     auto rank = [&](cluster::NodeId n) {
                       if (n == target) return 0;
                       return topo.same_rack(n, target) ? 1 : 2;
                     };
                     return rank(a) < rank(b);
                   });
  sources.resize(static_cast<std::size_t>(k));
  const auto decode_ns = static_cast<util::TimeNs>(std::ceil(
      static_cast<double>(meta.size) * config_.ec_ns_per_byte));
  auto remaining = std::make_shared<int>(k);
  for (cluster::NodeId source : sources) {
    io_.device(source, server_state(source).durable_device)
        .submit(IoKind::kRead, fragment,
                [this, key, source, target, fragment, version, remaining,
                 decode_ns, span] {
                  trace::ScopedContext tctx(tracer_, span);
                  fabric_.transfer(
                      source, target, fragment,
                      [this, key, target, version, remaining, decode_ns,
                       span] {
                        if (--*remaining > 0) return;
                        sim_.after(decode_ns,
                                   [this, key, target, version, span] {
                                     trace::end_span(tracer_, span);
                                     finish_repair(key, target, version);
                                   });
                      });
                });
  }
}

void ObjectStore::finish_repair(const ObjectKey& key, cluster::NodeId target,
                                int version) {
  --repairs_in_flight_;
  auto it = objects_.find(key);
  const bool valid =
      it != objects_.end() && it->second.version == version &&
      dead_servers_.count(target) == 0 &&
      std::find(it->second.replicas.begin(), it->second.replicas.end(),
                target) == it->second.replicas.end();
  if (!valid) {
    // The replica set moved (another failure, overwrite, delete) or the
    // target died mid-repair; whoever moved it re-queued as needed.
    metrics_.count("repairs_abandoned");
    if (it != objects_.end() && health(it->second) == Health::kDegraded) {
      enqueue_repair(key);
    }
    pump_repairs();
    return;
  }
  ObjectMeta& meta = it->second;
  const Health before = health(meta);
  meta.replicas.push_back(target);
  ++meta.version;
  write_durable(target, key, meta.per_server_bytes, [] {});
  const Health after = health(meta);
  if (before == Health::kDegraded && after != Health::kDegraded) {
    shift_underrep(-1);
  }
  metrics_.count("objects_repaired");
  if (after == Health::kDegraded) enqueue_repair(key);  // more copies lost
  pump_repairs();
}

util::Bytes ObjectStore::durable_bytes(cluster::NodeId server) const {
  return server_state(server).durable_used;
}

const TieredCache& ObjectStore::cache(cluster::NodeId server) const {
  return *server_state(server).cache;
}

}  // namespace evolve::storage
